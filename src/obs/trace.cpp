#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "util/table.h"
#include "util/thread_annotations.h"

namespace yafim::obs {

namespace {

using steady = std::chrono::steady_clock;

i64 steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             steady::now().time_since_epoch())
      .count();
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

struct Tracer::ThreadBuffer {
  util::Mutex mutex;
  std::vector<TraceEvent> events YAFIM_GUARDED_BY(mutex);
  std::string name YAFIM_GUARDED_BY(mutex);
  /// Written once at registration (under Impl::mutex, before the buffer is
  /// published) and read only by the owning thread afterwards, so it needs
  /// no guard.
  u32 tid = 0;
};

struct Tracer::Impl {
  util::Mutex mutex;
  /// The list of buffers; each buffer's contents are behind its own mutex
  /// (two-level locking, always Impl::mutex before ThreadBuffer::mutex).
  std::vector<std::shared_ptr<ThreadBuffer>> buffers YAFIM_GUARDED_BY(mutex);
  std::vector<TraceEvent> drained YAFIM_GUARDED_BY(mutex);
  std::atomic<i64> epoch_ns{steady_now_ns()};
};

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::instance() {
  // Leaked: worker threads may trace during static destruction.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> t_buffer;
  if (!t_buffer) {
    t_buffer = std::make_shared<ThreadBuffer>();
    util::MutexLock lock(impl_->mutex);
    t_buffer->tid = static_cast<u32>(impl_->buffers.size());
    impl_->buffers.push_back(t_buffer);
  }
  return *t_buffer;
}

void Tracer::start() { set_enabled(true); }

void Tracer::stop() { set_enabled(false); }

void Tracer::reset() {
  util::MutexLock lock(impl_->mutex);
  for (auto& buffer : impl_->buffers) {
    util::MutexLock buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  impl_->drained.clear();
  impl_->epoch_ns.store(steady_now_ns(), std::memory_order_relaxed);
  CounterRegistry::instance().reset_all();
}

u64 Tracer::now_us() const {
  const i64 ns =
      steady_now_ns() - impl_->epoch_ns.load(std::memory_order_relaxed);
  return ns > 0 ? static_cast<u64>(ns) / 1000 : 0;
}

void Tracer::emit(TraceEvent event) {
  if (!enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  event.tid = buffer.tid;
  util::MutexLock lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

void Tracer::set_thread_name(const std::string& name) {
  ThreadBuffer& buffer = local_buffer();
  util::MutexLock lock(buffer.mutex);
  buffer.name = name;
}

void Tracer::drain() {
  const u64 ts = now_us();
  util::MutexLock lock(impl_->mutex);
  for (auto& buffer : impl_->buffers) {
    util::MutexLock buffer_lock(buffer->mutex);
    for (auto& event : buffer->events) {
      impl_->drained.push_back(std::move(event));
    }
    buffer->events.clear();
  }
  if (!enabled()) return;
  // Stepped counter samples so Perfetto draws bytes/hits over time.
  for (const auto& [name, value] : CounterRegistry::instance().snapshot()) {
    if (value == 0) continue;
    TraceEvent sample;
    sample.name = name;
    sample.cat = "counter";
    sample.phase = TraceEvent::Phase::kCounter;
    sample.ts_us = ts;
    sample.args.emplace_back("value", value);
    impl_->drained.push_back(std::move(sample));
  }
}

std::vector<TraceEvent> Tracer::events() {
  drain();
  util::MutexLock lock(impl_->mutex);
  return impl_->drained;
}

std::string Tracer::chrome_json() {
  const std::vector<TraceEvent> drained = events();

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto begin_event = [&] {
    if (!first) out += ",";
    first = false;
    out += "\n{";
  };

  // Thread-name metadata from the buffer registry.
  {
    util::MutexLock lock(impl_->mutex);
    for (const auto& buffer : impl_->buffers) {
      util::MutexLock buffer_lock(buffer->mutex);
      if (buffer->name.empty()) continue;
      begin_event();
      out += "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
             std::to_string(buffer->tid) + ",\"args\":{\"name\":\"";
      append_escaped(out, buffer->name);
      out += "\"}}";
    }
  }

  char buf[64];
  for (const TraceEvent& event : drained) {
    begin_event();
    out += "\"name\":\"";
    append_escaped(out, event.name);
    out += "\",\"cat\":\"";
    append_escaped(out, event.cat);
    out += "\"";
    switch (event.phase) {
      case TraceEvent::Phase::kComplete:
        std::snprintf(buf, sizeof(buf),
                      ",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu",
                      static_cast<unsigned long long>(event.ts_us),
                      static_cast<unsigned long long>(event.dur_us));
        out += buf;
        break;
      case TraceEvent::Phase::kInstant:
        std::snprintf(buf, sizeof(buf), ",\"ph\":\"i\",\"ts\":%llu,\"s\":\"p\"",
                      static_cast<unsigned long long>(event.ts_us));
        out += buf;
        break;
      case TraceEvent::Phase::kCounter:
        std::snprintf(buf, sizeof(buf), ",\"ph\":\"C\",\"ts\":%llu",
                      static_cast<unsigned long long>(event.ts_us));
        out += buf;
        break;
      case TraceEvent::Phase::kMeta:
        std::snprintf(buf, sizeof(buf), ",\"ph\":\"M\",\"ts\":%llu",
                      static_cast<unsigned long long>(event.ts_us));
        out += buf;
        break;
    }
    out += ",\"pid\":1,\"tid\":" + std::to_string(event.tid);
    if (!event.args.empty()) {
      out += ",\"args\":{";
      for (size_t i = 0; i < event.args.size(); ++i) {
        if (i) out += ",";
        out += "\"";
        append_escaped(out, event.args[i].first);
        out += "\":" + std::to_string(event.args[i].second);
      }
      out += "}";
    }
    out += "}";
  }

  // Final counter totals, stamped after the last event.
  u64 end_ts = 0;
  for (const TraceEvent& event : drained) {
    end_ts = std::max(end_ts, event.ts_us + event.dur_us);
  }
  for (const auto& [name, value] : CounterRegistry::instance().snapshot()) {
    if (value == 0) continue;
    begin_event();
    out += "\"name\":\"";
    append_escaped(out, name);
    out += "\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":" +
           std::to_string(end_ts) +
           ",\"pid\":1,\"tid\":0,\"args\":{\"value\":" +
           std::to_string(value) + "}";
    out += "}";
  }

  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) {
  const std::string json = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  return written == json.size() && close_rc == 0;
}

std::string Tracer::summary() {
  const std::vector<TraceEvent> drained = events();

  // Aggregate stage spans and their task spans by label (task events carry
  // the stage label as their name).
  struct StageAgg {
    u64 runs = 0;
    u64 wall_us = 0;
    u64 tasks = 0;
    u64 task_us = 0;
    u64 max_task_us = 0;
  };
  std::vector<std::string> order;
  std::unordered_map<std::string, StageAgg> stages;
  auto agg_of = [&](const std::string& label) -> StageAgg& {
    auto it = stages.find(label);
    if (it == stages.end()) {
      order.push_back(label);
      it = stages.emplace(label, StageAgg{}).first;
    }
    return it->second;
  };

  for (const TraceEvent& event : drained) {
    if (event.phase != TraceEvent::Phase::kComplete) continue;
    const std::string cat = event.cat;
    if (cat == "stage") {
      StageAgg& agg = agg_of(event.name);
      ++agg.runs;
      agg.wall_us += event.dur_us;
    } else if (cat == "task") {
      StageAgg& agg = agg_of(event.name);
      ++agg.tasks;
      agg.task_us += event.dur_us;
      agg.max_task_us = std::max(agg.max_task_us, event.dur_us);
    }
  }

  std::string out = "== trace summary: stages (wall-clock) ==\n";
  Table table({"stage", "runs", "tasks", "wall ms", "task ms", "avg task ms",
               "max task ms"});
  for (const std::string& label : order) {
    const StageAgg& agg = stages[label];
    const double avg_ms =
        agg.tasks ? agg.task_us / 1000.0 / static_cast<double>(agg.tasks)
                  : 0.0;
    table.add_row({label, Table::num(agg.runs), Table::num(agg.tasks),
                   Table::num(agg.wall_us / 1000.0, 3),
                   Table::num(agg.task_us / 1000.0, 3), Table::num(avg_ms, 3),
                   Table::num(agg.max_task_us / 1000.0, 3)});
  }
  out += table.to_ascii();

  out += "== counters ==\n";
  Table counters({"counter", "value"});
  for (const auto& [name, value] : CounterRegistry::instance().snapshot()) {
    if (value == 0) continue;
    counters.add_row({name, Table::num(value)});
  }
  out += counters.to_ascii();
  return out;
}

void instant(const char* cat, std::string name,
             std::vector<std::pair<std::string, u64>> args) {
  if (!enabled()) return;
  Tracer& tracer = Tracer::instance();
  TraceEvent event;
  event.name = std::move(name);
  event.cat = cat;
  event.phase = TraceEvent::Phase::kInstant;
  event.ts_us = tracer.now_us();
  event.args = std::move(args);
  tracer.emit(std::move(event));
}

}  // namespace yafim::obs
