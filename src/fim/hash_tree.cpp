#include "fim/hash_tree.h"

#include <algorithm>
#include <cmath>

#include "engine/bytes_of.h"

namespace yafim::fim {

u32 HashTree::default_branching(u64 num_candidates, u32 k) {
  if (num_candidates == 0 || k == 0) return 8;
  const double per_level =
      std::pow(static_cast<double>(num_candidates), 1.0 / k);
  const double fanout = std::ceil(2.0 * per_level);
  return static_cast<u32>(std::clamp(fanout, 8.0, 1024.0));
}

HashTree::HashTree(std::vector<Itemset> candidates, u32 branching,
                   u32 leaf_capacity)
    : candidates_(std::move(candidates)),
      branching_(branching),
      leaf_capacity_(leaf_capacity) {
  if (branching_ == 0) {
    const u32 k = candidates_.empty()
                      ? 1
                      : static_cast<u32>(candidates_.front().size());
    branching_ = default_branching(candidates_.size(), k);
  }
  YAFIM_CHECK(branching_ >= 2, "branching must be >= 2");
  YAFIM_CHECK(leaf_capacity_ >= 1, "leaf capacity must be >= 1");
  if (!candidates_.empty()) {
    k_ = static_cast<u32>(candidates_.front().size());
    YAFIM_CHECK(k_ >= 1, "candidates must be non-empty itemsets");
    for (const Itemset& c : candidates_) {
      YAFIM_CHECK(c.size() == k_, "all candidates must have equal size");
      YAFIM_DCHECK(is_canonical(c), "candidates must be canonical");
    }
  }

  nodes_.emplace_back();  // root starts as an empty leaf
  for (u32 i = 0; i < candidates_.size(); ++i) insert(i, 0);
  assign_leaf_ids();
}

void HashTree::insert(u32 candidate_id, u32 /*depth_hint*/) {
  u32 node_idx = kRoot;
  u32 depth = 0;
  // Descend through interior nodes along the candidate's own items.
  while (!nodes_[node_idx].leaf) {
    const Item item = candidates_[candidate_id][depth];
    const u32 slot = child_slot(item);
    u32 child = nodes_[node_idx].children[slot];
    if (child == kNone) {
      child = static_cast<u32>(nodes_.size());
      nodes_.emplace_back();  // new empty leaf (may invalidate references)
      nodes_[node_idx].children[slot] = child;
    }
    node_idx = child;
    ++depth;
  }
  nodes_[node_idx].bucket.push_back(candidate_id);
  if (nodes_[node_idx].bucket.size() > leaf_capacity_ && depth < k_) {
    split(node_idx, depth);
  }
}

void HashTree::split(u32 node_idx, u32 depth) {
  std::vector<u32> bucket = std::move(nodes_[node_idx].bucket);
  nodes_[node_idx].bucket.clear();
  nodes_[node_idx].leaf = false;
  nodes_[node_idx].children.assign(branching_, kNone);

  for (u32 candidate_id : bucket) {
    const Item item = candidates_[candidate_id][depth];
    const u32 slot = child_slot(item);
    u32 child = nodes_[node_idx].children[slot];
    if (child == kNone) {
      child = static_cast<u32>(nodes_.size());
      nodes_.emplace_back();
      nodes_[node_idx].children[slot] = child;
    }
    nodes_[child].bucket.push_back(candidate_id);
    // A just-split child can itself overflow when many candidates share a
    // hash path; recurse (bounded by depth < k).
    if (nodes_[child].bucket.size() > leaf_capacity_ && depth + 1 < k_) {
      split(child, depth + 1);
    }
  }
}

void HashTree::assign_leaf_ids() {
  num_leaves_ = 0;
  for (Node& node : nodes_) {
    if (node.leaf) node.leaf_id = num_leaves_++;
  }
}

u64 HashTree::serialized_bytes() const {
  u64 bytes = 16;  // header: k, sizes
  for (const Itemset& c : candidates_) bytes += engine::byte_size(c);
  for (const Node& node : nodes_) {
    bytes += 8 + node.bucket.size() * sizeof(u32) +
             node.children.size() * sizeof(u32);
  }
  return bytes;
}

}  // namespace yafim::fim
