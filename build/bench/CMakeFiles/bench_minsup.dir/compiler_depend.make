# Empty compiler generated dependencies file for bench_minsup.
# This may be replaced when dependencies are built.
