// Unit tests for itemset primitives and the FrequentItemsets result type.
#include <gtest/gtest.h>

#include "fim/itemset.h"
#include "fim/result.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

TEST(Itemset, IsCanonical) {
  EXPECT_TRUE(is_canonical({}));
  EXPECT_TRUE(is_canonical({5}));
  EXPECT_TRUE(is_canonical({1, 2, 9}));
  EXPECT_FALSE(is_canonical({2, 1}));
  EXPECT_FALSE(is_canonical({1, 1}));
}

TEST(Itemset, Canonicalize) {
  Itemset s{5, 1, 5, 3, 1};
  canonicalize(s);
  EXPECT_EQ(s, (Itemset{1, 3, 5}));
}

TEST(Itemset, ContainsAll) {
  const Transaction t{1, 3, 5, 7, 9};
  EXPECT_TRUE(contains_all(t, {}));
  EXPECT_TRUE(contains_all(t, {1}));
  EXPECT_TRUE(contains_all(t, {3, 7}));
  EXPECT_TRUE(contains_all(t, {1, 3, 5, 7, 9}));
  EXPECT_FALSE(contains_all(t, {2}));
  EXPECT_FALSE(contains_all(t, {1, 2}));
  EXPECT_FALSE(contains_all(t, {9, 10}));
  EXPECT_FALSE(contains_all({}, {1}));
}

TEST(Itemset, ContainsAllMatchesBruteForce) {
  Rng rng(12);
  for (int trial = 0; trial < 300; ++trial) {
    Transaction t;
    Itemset s;
    for (int i = 0; i < 12; ++i) {
      if (rng.bernoulli(0.5)) t.push_back(i);
      if (rng.bernoulli(0.25)) s.push_back(i);
    }
    bool expected = true;
    for (Item x : s) {
      if (std::find(t.begin(), t.end(), x) == t.end()) expected = false;
    }
    EXPECT_EQ(contains_all(t, s), expected);
  }
}

TEST(Itemset, ToString) {
  EXPECT_EQ(to_string({}), "{}");
  EXPECT_EQ(to_string({4}), "{4}");
  EXPECT_EQ(to_string({1, 2, 3}), "{1, 2, 3}");
}

TEST(ItemsetHash, StableAndSpread) {
  const ItemsetHash h;
  EXPECT_EQ(h({1, 2, 3}), h({1, 2, 3}));
  EXPECT_NE(h({1, 2, 3}), h({1, 2, 4}));
  EXPECT_NE(h({1, 2}), h({2, 1}));  // order-sensitive (canonical inputs)
  EXPECT_NE(h({}), h({0}));
  // Size-sensitivity: {0} vs {0,0} style degenerate collisions avoided.
  EXPECT_NE(h({0}), h({0, 0}));
}

TEST(FrequentItemsets, AddAndLookup) {
  FrequentItemsets fi(10, 100);
  fi.add({3}, 50);
  fi.add({1, 2}, 20);
  fi.add({1, 2, 3}, 12);
  EXPECT_EQ(fi.min_support_count(), 10u);
  EXPECT_EQ(fi.num_transactions(), 100u);
  EXPECT_EQ(fi.max_k(), 3u);
  EXPECT_EQ(fi.total(), 3u);
  EXPECT_EQ(fi.support_of({1, 2}), 20u);
  EXPECT_EQ(fi.support_of({9}), 0u);
  EXPECT_EQ(fi.support_of({}), 0u);
  EXPECT_TRUE(fi.contains({3}));
  EXPECT_FALSE(fi.contains({2, 3}));
  EXPECT_EQ(fi.level(2).size(), 1u);
  EXPECT_TRUE(fi.level(7).empty());
}

TEST(FrequentItemsets, DuplicateAddWithSameSupportIsIdempotent) {
  FrequentItemsets fi(1, 10);
  fi.add({1}, 5);
  fi.add({1}, 5);
  EXPECT_EQ(fi.total(), 1u);
}

TEST(FrequentItemsets, ConflictingSupportAborts) {
  FrequentItemsets fi(1, 10);
  fi.add({1}, 5);
  EXPECT_DEATH(fi.add({1}, 6), "conflicting supports");
}

TEST(FrequentItemsets, SortedIsDeterministic) {
  FrequentItemsets fi(1, 10);
  fi.add({2, 5}, 3);
  fi.add({9}, 8);
  fi.add({1, 7}, 4);
  fi.add({2}, 9);
  const auto sorted = fi.sorted();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].first, (Itemset{2}));
  EXPECT_EQ(sorted[1].first, (Itemset{9}));
  EXPECT_EQ(sorted[2].first, (Itemset{1, 7}));
  EXPECT_EQ(sorted[3].first, (Itemset{2, 5}));
}

TEST(FrequentItemsets, SameItemsetsComparison) {
  FrequentItemsets a(1, 10), b(1, 10), c(1, 10);
  a.add({1}, 5);
  a.add({1, 2}, 3);
  b.add({1, 2}, 3);
  b.add({1}, 5);
  c.add({1}, 5);
  EXPECT_TRUE(a.same_itemsets(b));
  EXPECT_FALSE(a.same_itemsets(c));
  // Different support, same sets:
  FrequentItemsets d(1, 10);
  d.add({1}, 6);
  d.add({1, 2}, 3);
  EXPECT_FALSE(a.same_itemsets(d));
}

TEST(MiningRun, TotalSecondsSumsPassesAndSetup) {
  MiningRun run;
  run.setup_seconds = 1.5;
  run.passes.push_back(PassStats{1, 10, 5, 2.0});
  run.passes.push_back(PassStats{2, 20, 4, 3.0});
  EXPECT_DOUBLE_EQ(run.total_seconds(), 6.5);
}

}  // namespace
}  // namespace yafim::fim
