// Deterministic data-corruption injection profile.
//
// The task-failure side of the fault model (engine/fault.h) kills task
// attempts; this profile attacks the *data plane*: bit flips in SimFS block
// replicas and in the backing bytes of cached RDD partitions. Like every
// other fault knob in the repository, draws are pure hashes of the profile
// seed plus stable coordinates -- (path, block, attempt) for DFS blocks,
// (rdd, partition, access#) for cached partitions -- so a given profile
// replays bit-identically regardless of host thread scheduling.
//
// It lives in the sim layer (not engine) because both SimFS (below the
// engine) and the fault injector (inside it) consult the same profile:
// engine/fault.h's FaultProfile embeds one, and SimFS defaults to the same
// YAFIM_FAULT_* environment, so one env profile corrupts the whole stack.
#pragma once

#include <string_view>

#include "util/common.h"

namespace yafim::sim {

/// All-zero (the default) disables corruption injection entirely.
struct CorruptionProfile {
  /// Seed salting every draw; shares YAFIM_FAULT_SEED with the task-level
  /// profile so one seed reproduces a whole faulty run.
  u64 seed = 0;

  /// Probability that one (path, block, attempt) DFS block replica read is
  /// served with a flipped bit. Detected by the block checksum; the read
  /// retries the next replica (attempt + 1).
  double block_p = 0.0;

  /// Probability that one access to a cached RDD partition finds its
  /// backing bytes corrupt. The cached copy is discarded and the partition
  /// recomputed from lineage.
  double cached_p = 0.0;

  bool enabled() const { return block_p > 0.0 || cached_p > 0.0; }

  /// Profile from YAFIM_FAULT_SEED, YAFIM_FAULT_CORRUPT_BLOCK_P and
  /// YAFIM_FAULT_CORRUPT_CACHED_P (unset variables keep the zero defaults,
  /// so an env-free process gets no injection).
  static CorruptionProfile from_env();

  /// Is replica `attempt` of block `block` of the file with path hash
  /// `path_hash` corrupt? Pure function of the profile and arguments.
  bool draw_block(u64 path_hash, u64 block, u32 attempt) const;

  /// Which bit of a `block_bytes`-byte block gets flipped (same coordinates
  /// as draw_block, so the damage is reproducible too).
  u64 flip_bit(u64 path_hash, u64 block, u32 attempt, u64 block_bytes) const;

  /// Is access number `access` to cached partition (rdd, partition)
  /// corrupt? Pure function of the profile and arguments.
  bool draw_cached(u64 rdd, u32 partition, u64 access) const;
};

}  // namespace yafim::sim
