// Wall-clock tracing: per-stage and per-task spans with steady-clock
// timestamps and thread ids, exported as Chrome trace-event JSON
// (chrome://tracing, Perfetto) or a compact per-stage summary table.
//
// Design (mirrors Spark's event log + UI at minispark scale):
//  * Each thread appends TraceEvents to its own buffer; the only lock taken
//    on the hot path is that buffer's private mutex, which is uncontended
//    except at the instant the driver drains it (action/stage boundaries).
//  * The global enabled flag (obs/metrics.h) gates everything: when tracing
//    is off a Span construct/destruct is a relaxed load and a branch, and no
//    allocation or clock read happens.
//  * The Tracer is a process-wide singleton so instrumentation points deep
//    in the engine (thread pool, RDD cache, hash tree) need no plumbing.
//    Tests and the CLI reset() it around a traced region.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/common.h"

namespace yafim::obs {

struct TraceEvent {
  enum class Phase : u8 {
    kComplete,  ///< Chrome "X": a span with ts + dur
    kInstant,   ///< Chrome "i": a point-in-time marker
    kCounter,   ///< Chrome "C": sampled counter value
    kMeta,      ///< Chrome "M": metadata (thread names)
  };

  std::string name;
  /// Category; must point at a string literal (stored unowned).
  const char* cat = "";
  Phase phase = Phase::kComplete;
  /// Microseconds since the tracer epoch (start()/reset()).
  u64 ts_us = 0;
  u64 dur_us = 0;
  /// Small dense thread id (0 = first thread seen, usually the driver).
  u32 tid = 0;
  /// Numeric span arguments (counts, bytes); rendered into Chrome "args".
  std::vector<std::pair<std::string, u64>> args;
};

class Tracer {
 public:
  static Tracer& instance();

  /// Reset the epoch and enable collection.
  void start();
  /// Stop collecting (buffered events are kept until reset()).
  void stop();

  /// Drop all collected events and zero every counter in the registry.
  void reset();

  /// Microseconds since the epoch.
  u64 now_us() const;

  /// Append an event to the calling thread's buffer. No-op when disabled
  /// (callers on hot paths should pre-check enabled() to skip building the
  /// event at all).
  void emit(TraceEvent event);

  /// Name the calling thread in the exported trace ("driver", "pool-3").
  void set_thread_name(const std::string& name);

  /// Move per-thread buffers into the central log and append one counter
  /// sample per nonzero counter. The engine calls this at stage boundaries;
  /// exporters call it implicitly.
  void drain();

  /// Drained snapshot (drains first). Events are in per-thread order;
  /// global order is reconstructed from timestamps by consumers.
  std::vector<TraceEvent> events();

  /// Full Chrome trace-event JSON ({"traceEvents":[...]}).
  std::string chrome_json();
  /// Write chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path);

  /// Per-stage wall-clock summary table plus counter totals -- the "Spark
  /// UI" for a traced run.
  std::string summary();

 private:
  Tracer();
  struct Impl;
  struct ThreadBuffer;
  ThreadBuffer& local_buffer();
  Impl* impl_;
};

/// RAII span. Captures the start timestamp at construction and emits one
/// complete event when it ends (explicitly or at scope exit). Inert when
/// tracing is disabled at construction time.
class Span {
 public:
  Span(const char* cat, std::string name) : cat_(cat) {
    if (!enabled()) return;
    active_ = true;
    name_ = std::move(name);
    start_us_ = Tracer::instance().now_us();
  }
  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  /// Attach a numeric argument (shown in the trace viewer's detail pane).
  void arg(std::string key, u64 value) {
    if (active_) args_.emplace_back(std::move(key), value);
  }

  void end() {
    if (!active_) return;
    active_ = false;
    Tracer& tracer = Tracer::instance();
    TraceEvent event;
    event.name = std::move(name_);
    event.cat = cat_;
    event.phase = TraceEvent::Phase::kComplete;
    event.ts_us = start_us_;
    event.dur_us = tracer.now_us() - start_us_;
    event.args = std::move(args_);
    tracer.emit(std::move(event));
  }

 private:
  const char* cat_;
  std::string name_;
  u64 start_us_ = 0;
  bool active_ = false;
  std::vector<std::pair<std::string, u64>> args_;
};

/// Emit a point-in-time marker (fault injection, executor kill).
void instant(const char* cat, std::string name,
             std::vector<std::pair<std::string, u64>> args = {});

}  // namespace yafim::obs
