// Clang thread-safety annotations behind a shim, plus annotated lock types.
//
// The engine's locking invariants (leaf node-cache locks, the injector's
// registry lock, the tracer's two-level buffer locks) were previously
// enforced only by comments and TSan runs. These macros let clang prove them
// at compile time (-Wthread-safety, gated by the YAFIM_THREAD_SAFETY CMake
// option); under gcc they expand to nothing, so the default build is
// unaffected.
//
// libstdc++'s std::mutex carries no annotations, so annotated code uses the
// util::Mutex / util::MutexLock / util::CondVar wrappers below. They are
// zero-cost shims over the std primitives (CondVar uses
// std::condition_variable_any so it can wait on Mutex as a BasicLockable;
// waiters spell the predicate loop out manually, which is what the analysis
// can see through).
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define YAFIM_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define YAFIM_THREAD_ANNOTATION__(x)
#endif

#define YAFIM_CAPABILITY(x) YAFIM_THREAD_ANNOTATION__(capability(x))
#define YAFIM_SCOPED_CAPABILITY YAFIM_THREAD_ANNOTATION__(scoped_lockable)
#define YAFIM_GUARDED_BY(x) YAFIM_THREAD_ANNOTATION__(guarded_by(x))
#define YAFIM_PT_GUARDED_BY(x) YAFIM_THREAD_ANNOTATION__(pt_guarded_by(x))
#define YAFIM_REQUIRES(...) \
  YAFIM_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define YAFIM_ACQUIRE(...) \
  YAFIM_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define YAFIM_RELEASE(...) \
  YAFIM_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define YAFIM_TRY_ACQUIRE(...) \
  YAFIM_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define YAFIM_EXCLUDES(...) \
  YAFIM_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define YAFIM_NO_THREAD_SAFETY_ANALYSIS \
  YAFIM_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace yafim::util {

/// std::mutex with the capability annotation the analysis needs.
class YAFIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() YAFIM_ACQUIRE() { m_.lock(); }
  void unlock() YAFIM_RELEASE() { m_.unlock(); }
  bool try_lock() YAFIM_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII lock over util::Mutex (std::lock_guard analogue).
class YAFIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) YAFIM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() YAFIM_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable waiting on util::Mutex. No predicate overload on
/// purpose: the analysis cannot look inside a predicate lambda, so waiters
/// write `while (!cond) cv.wait(mutex);` which it can check.
class CondVar {
 public:
  void wait(Mutex& mutex) YAFIM_REQUIRES(mutex) { cv_.wait(mutex); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace yafim::util
