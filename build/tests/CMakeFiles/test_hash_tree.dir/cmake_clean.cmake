file(REMOVE_RECURSE
  "CMakeFiles/test_hash_tree.dir/test_hash_tree.cpp.o"
  "CMakeFiles/test_hash_tree.dir/test_hash_tree.cpp.o.d"
  "test_hash_tree"
  "test_hash_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
