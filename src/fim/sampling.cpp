#include "fim/sampling.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "engine/rdd.h"
#include "fim/apriori_seq.h"
#include "fim/bitmap.h"
#include "fim/candidate_gen.h"
#include "fim/count_core.h"
#include "fim/hash_tree.h"
#include "util/stopwatch.h"

namespace yafim::fim {

namespace {

/// Identity hash for sample ids: sample s lands in reduce partition
/// s % num_samples of the gather shuffle, so each local-mine task owns
/// whole samples.
struct SampleIdHash {
  size_t operator()(u32 sample) const { return sample; }
};

/// What one local-mine task reports back to the driver per sample.
struct LocalResult {
  u32 sample_id = 0;
  u64 sample_size = 0;
  /// Locally frequent itemsets at the relaxed threshold, all levels.
  std::vector<Itemset> frequent;
  /// Negative border of the local result (empty for disjoint splits).
  std::vector<Itemset> border;
};

/// Serialized-size estimate for the engine's partition pricing (found by
/// ADL from engine::byte_size).
u64 byte_size(const LocalResult& r) {
  return sizeof(r.sample_id) + sizeof(r.sample_size) +
         engine::byte_size(r.frequent) + engine::byte_size(r.border);
}

void price_passes(engine::Context& ctx, size_t first_stage, MiningRun& run) {
  sim::SimReport slice;
  const auto& stages = ctx.report().stages();
  for (size_t i = first_stage; i < stages.size(); ++i) slice.add(stages[i]);
  const std::vector<double> by_pass = slice.pass_seconds(ctx.cost_model());
  run.setup_seconds = by_pass.empty() ? 0.0 : by_pass[0];
  for (PassStats& pass : run.passes) {
    pass.sim_seconds = pass.k < by_pass.size() ? by_pass[pass.k] : 0.0;
  }
}

}  // namespace

std::vector<Itemset> negative_border(const FrequentItemsets& frequent,
                                     const std::vector<Item>& universe) {
  std::vector<Itemset> border;
  // Level 1: the empty set is trivially frequent, so every non-frequent
  // *universe* item is minimal. The universe must come from the full
  // dataset -- an item the sample never drew is exactly the kind of miss
  // the border exists to catch.
  for (Item item : universe) {
    if (!frequent.contains(Itemset{item})) border.push_back(Itemset{item});
  }
  // Level k: apriori_gen's join+prune emits precisely the k-itemsets all
  // of whose (k-1)-subsets are frequent; those not themselves frequent
  // are minimal misses. Downward closure of `frequent` makes "all
  // (k-1)-subsets frequent" equivalent to "all proper subsets frequent".
  for (u32 k = 2; k <= frequent.max_k() + 1; ++k) {
    const SupportMap& prev = frequent.level(k - 1);
    if (prev.empty()) break;
    std::vector<Itemset> prev_sets;
    prev_sets.reserve(prev.size());
    for (const auto& [itemset, support] : prev) {
      (void)support;
      prev_sets.push_back(itemset);
    }
    for (Itemset& candidate : apriori_gen(prev_sets, k)) {
      if (!frequent.contains(candidate)) border.push_back(std::move(candidate));
    }
  }
  return border;
}

SamplingRun sampling_mine(engine::Context& ctx, simfs::SimFS& fs,
                          const std::string& input_path,
                          const SamplingOptions& options) {
  YAFIM_CHECK(options.min_support > 0.0 && options.min_support <= 1.0,
              "relative support must be in (0, 1]");
  YAFIM_CHECK(options.num_samples >= 1 && options.num_samples <= 64,
              "num_samples must be in [1, 64]");
  const bool disjoint = options.strategy == SplitStrategy::kDisjointSplits;
  YAFIM_CHECK(disjoint || (options.sample_fraction > 0.0 &&
                           options.sample_fraction <= 1.0),
              "sample_fraction must be in (0, 1]");
  YAFIM_CHECK(options.relax > 0.0 && options.relax <= 1.0,
              "relax must be in (0, 1]");
  // Disjoint splits are the SON special case: locally mining below the
  // full relative threshold buys nothing (completeness already holds at
  // r = 1) and would only inflate the candidate union.
  const double relax = disjoint ? 1.0 : options.relax;

  const size_t first_stage = ctx.report().stages().size();
  ctx.set_spill_fs(&fs);

  // ---- Phase 0: load + stage the dataset (same shape as yafim_mine) ----
  ctx.set_pass(0);
  const std::vector<u8> raw = fs.read(input_path);
  TransactionDB db = TransactionDB::deserialize(raw);
  const u32 load_tasks =
      options.partitions ? options.partitions : ctx.default_partitions();
  const u64 parse_records = db.size();
  auto parse_stage = [&ctx, &raw, parse_records,
                      load_tasks](const std::string& label) {
    sim::StageRecord stage;
    stage.label = label;
    stage.kind = sim::StageKind::kSparkStage;
    stage.pass = ctx.pass();
    stage.tasks = sim::split_work(
        parse_records * (1 + ctx.cluster().record_parse_work), load_tasks);
    stage.dfs_read_bytes = raw.size();
    return stage;
  };
  ctx.record(parse_stage("load:textFile+parse"));

  const u64 num_transactions = db.size();
  const u64 min_count = min_count_ceil(options.min_support, num_transactions);
  SamplingRun sres;
  MiningRun& run = sres.run;
  run.itemsets = FrequentItemsets(min_count, num_transactions);
  sres.sample_sizes.assign(options.num_samples, 0);
  if (num_transactions == 0) {
    sres.exact = true;
    return sres;
  }

  // Full-dataset item universe, snapshotted at the driver while the DB is
  // still in hand: level-1 negative borders must range over items a
  // sample may never have drawn.
  std::vector<Item> universe;
  {
    engine::work::Scope universe_scope;
    std::vector<u8> seen;
    for (const Transaction& t : db.transactions()) {
      engine::work::add(t.size());
      for (Item item : t) {
        if (item >= seen.size()) seen.resize(item + 1, 0);
        seen[item] = 1;
      }
    }
    for (u32 item = 0; item < seen.size(); ++item) {
      if (seen[item]) universe.push_back(item);
    }
    sim::StageRecord stage;
    stage.label = "twophase:universe";
    stage.kind = sim::StageKind::kOverhead;
    stage.pass = 0;
    stage.driver_work = universe_scope.measured();
    ctx.record(std::move(stage));
  }

  auto transactions =
      ctx.parallelize(db.release(), options.partitions)
          .map([](const Transaction& t) { return t; })
          .named("transactions");
  if (options.cache_transactions) {
    transactions.persist();
    ctx.memory_budget().note_cached(raw.size());
  }

  // ---- Pass 1: draw every sample and mine it locally, in one scan ------
  ctx.set_pass(1);
  const u32 num_samples = options.num_samples;
  auto tagged = (disjoint ? transactions.disjoint_splits(num_samples)
                          : transactions.sample_each(
                                num_samples, options.sample_fraction,
                                options.seed))
                    .named("twophase:tagged");
  const double local_support = options.min_support * relax;
  const bool with_border = !disjoint;
  const bool use_hash_tree = options.use_hash_tree;
  const u32 branching = options.branching;
  const u32 leaf_capacity = options.leaf_capacity;
  const std::vector<LocalResult> locals =
      tagged
          .group_by_key(num_samples, SampleIdHash{}, "twophase:gather")
          .map_partitions(
              [universe, local_support, with_border, use_hash_tree, branching,
               leaf_capacity](
                  const std::vector<std::pair<u32, std::vector<Transaction>>>&
                      part) {
                std::vector<LocalResult> out;
                for (const auto& [sample_id, txns] : part) {
                  LocalResult result;
                  result.sample_id = sample_id;
                  result.sample_size = txns.size();
                  TransactionDB sample{std::vector<Transaction>(txns)};
                  AprioriOptions opt;
                  opt.min_support = local_support;
                  // The relaxed local threshold goes through the same ceil
                  // helper as every global threshold (fim/dataset.h).
                  opt.min_count = min_count_ceil(local_support, txns.size());
                  opt.use_hash_tree = use_hash_tree;
                  opt.branching = branching;
                  opt.leaf_capacity = leaf_capacity;
                  const MiningRun mined = apriori_mine(sample, opt);
                  // apriori_mine runs outside the engine's work meter;
                  // charge one sample scan per level as its task cost.
                  engine::work::add(result.sample_size *
                                    mined.passes.size());
                  for (const auto& [itemset, support] :
                       mined.itemsets.sorted()) {
                    (void)support;
                    result.frequent.push_back(itemset);
                  }
                  if (with_border) {
                    result.border = negative_border(mined.itemsets, universe);
                  }
                  out.push_back(std::move(result));
                }
                return out;
              })
          .named("twophase:local-mine")
          .collect("twophase:local-mine");

  // ---- Driver: union candidates + borders, build the counting batch ----
  ctx.set_pass(2);
  engine::work::Scope union_scope;
  struct CandidateInfo {
    bool locally_frequent = false;
    u64 border_mask = 0;  // bit s set: in sample s's negative border
  };
  std::unordered_map<Itemset, CandidateInfo, ItemsetHash, ItemsetEq> cand;
  u64 seen_samples = 0;
  for (const LocalResult& local : locals) {
    seen_samples |= u64{1} << local.sample_id;
    sres.sample_sizes[local.sample_id] = local.sample_size;
    for (const Itemset& itemset : local.frequent) {
      cand[itemset].locally_frequent = true;
    }
    for (const Itemset& itemset : local.border) {
      cand[itemset].border_mask |= u64{1} << local.sample_id;
    }
  }
  if (with_border) {
    // A sample that drew nothing produces no LocalResult at all; its
    // frequent set is empty, so its border is every universe item.
    for (u32 s = 0; s < num_samples; ++s) {
      if (seen_samples & (u64{1} << s)) continue;
      for (Item item : universe) {
        cand[Itemset{item}].border_mask |= u64{1} << s;
      }
    }
  }
  for (const auto& [itemset, info] : cand) {
    (void)itemset;
    if (info.locally_frequent) {
      ++sres.candidate_union;
    } else {
      ++sres.border_union;
    }
  }
  run.passes.push_back(PassStats{1, sres.candidate_union, 0, 0.0});

  u32 max_size = 0;
  for (const auto& [itemset, info] : cand) {
    (void)info;
    max_size = std::max<u32>(max_size, static_cast<u32>(itemset.size()));
  }
  std::vector<std::vector<Itemset>> by_size(max_size);
  for (const auto& [itemset, info] : cand) {
    (void)info;
    by_size[itemset.size() - 1].push_back(itemset);
  }
  // Canonical candidate order inside each tree: keeps tree shapes (and so
  // probe work, stage pricing and the dense id layout) independent of the
  // unordered_map's iteration order.
  for (auto& level : by_size) std::sort(level.begin(), level.end());
  auto trees = std::make_shared<std::vector<HashTree>>();
  u64 tree_bytes = 0;
  for (auto& level : by_size) {
    if (level.empty()) continue;
    trees->emplace_back(std::move(level), options.branching,
                        options.leaf_capacity);
    tree_bytes += trees->back().serialized_bytes();
  }
  {
    sim::StageRecord stage;
    stage.label = "twophase:union+buildHashTree";
    stage.kind = sim::StageKind::kOverhead;
    stage.pass = 2;
    stage.driver_work = union_scope.measured();
    ctx.record(std::move(stage));
  }

  // ---- Pass 2: one full-data verification pass over the whole batch ----
  std::vector<CountPair> verified;
  if (!trees->empty()) {
    const bool partitioned =
        options.broadcast_mode == BroadcastMode::kPartitioned ||
        (options.broadcast_mode == BroadcastMode::kAuto &&
         !ctx.memory_budget().broadcast_fits(tree_bytes));
    std::optional<engine::RDD<VerticalBitmapIndex>> vertical;
    const bool bitmap_mode =
        options.count_mode == CountMode::kVerticalBitmap;
    if (bitmap_mode && !partitioned) {
      // One verification pass only: build the index inline, don't persist
      // (a cached copy would never be reused).
      vertical.emplace(
          transactions
              .map_partitions([](const std::vector<Transaction>& part) {
                std::vector<VerticalBitmapIndex> out;
                out.emplace_back(part);
                return out;
              })
              .named("vertical:bitmaps"));
    }
    if (!options.cache_transactions) {
      ctx.record(parse_stage("verify:recompute lineage"));
    }
    const u64 id_space = HashTree::assign_id_offsets(*trees);
    CountCoreOptions count_opt;
    count_opt.count_mode = options.count_mode;
    count_opt.use_hash_tree = options.use_hash_tree;
    count_opt.partitioned = partitioned;
    count_opt.broadcast_shards = options.broadcast_shards;
    count_opt.branching = options.branching;
    count_opt.leaf_capacity = options.leaf_capacity;
    count_opt.kmin = 1;  // the batch spans every level, singletons included
    count_opt.min_count = min_count;
    count_opt.pass_name = "verify";
    Stopwatch count_clock;
    verified = count_candidate_trees(ctx, transactions, trees, tree_bytes,
                                     id_space, &vertical, count_opt);
    run.count_host_seconds += count_clock.seconds();
  }

  // ---- Exactness: Toivonen's certificate -------------------------------
  u64 survivor_masks = 0;  // OR of border masks over verified itemsets
  u64 verified_candidates = 0;
  for (auto& [itemset, support] : verified) {
    const auto it = cand.find(itemset);
    YAFIM_CHECK(it != cand.end(), "verified itemset missing from batch");
    if (it->second.locally_frequent) ++verified_candidates;
    if (it->second.border_mask != 0) {
      ++sres.border_survivors;
      survivor_masks |= it->second.border_mask;
    }
    run.itemsets.add(std::move(itemset), support);
  }
  sres.false_candidates = sres.candidate_union - verified_candidates;
  if (disjoint) {
    // SON property: the splits cover the data, so every globally frequent
    // itemset is locally frequent somewhere -- complete by construction.
    sres.exact = true;
  } else {
    // Exact iff some sample kept its whole border below MinSup: that
    // sample's frequent set then contains every globally frequent itemset.
    const u64 all_samples =
        num_samples == 64 ? ~u64{0} : (u64{1} << num_samples) - 1;
    sres.exact = survivor_masks != all_samples;
  }
  if (!sres.exact) {
    const double eps = options.min_support * (1.0 - relax);
    double bound = 1.0;
    for (u64 m : sres.sample_sizes) {
      bound *= std::exp(-2.0 * static_cast<double>(m) * eps * eps);
    }
    sres.miss_bound = std::min(1.0, bound);
  }
  run.passes.push_back(PassStats{2, sres.candidate_union + sres.border_union,
                                 verified.size(), 0.0});
  run.passes[0].frequent = verified.size();

  ctx.set_pass(0);
  price_passes(ctx, first_stage, run);
  return sres;
}

SamplingRun sampling_mine(engine::Context& ctx, simfs::SimFS& fs,
                          const TransactionDB& db,
                          const SamplingOptions& options) {
  const std::string path = "hdfs://staging/sampling-input";
  fs.write(path, db.serialize());
  return sampling_mine(ctx, fs, path, options);
}

}  // namespace yafim::fim
