file(REMOVE_RECURSE
  "CMakeFiles/bench_minsup.dir/bench_minsup.cpp.o"
  "CMakeFiles/bench_minsup.dir/bench_minsup.cpp.o.d"
  "bench_minsup"
  "bench_minsup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minsup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
