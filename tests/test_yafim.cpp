// Tests for YAFIM on the RDD engine: exactness against the sequential
// reference (the paper's correctness claim), pass statistics, ablation
// modes, and the structure of the recorded simulated-cost stages.
#include <gtest/gtest.h>

#include "fim/apriori_seq.h"
#include "fim/yafim.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

engine::Context::Options small_cluster() {
  engine::Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(3);
  opts.host_threads = 4;
  return opts;
}

TransactionDB random_db(u32 universe, int transactions, double density,
                        u64 seed) {
  Rng rng(seed);
  std::vector<Transaction> tx;
  for (int i = 0; i < transactions; ++i) {
    Transaction t;
    for (u32 item = 0; item < universe; ++item) {
      if (rng.bernoulli(density)) t.push_back(item);
    }
    if (t.empty()) t.push_back(static_cast<Item>(rng.below(universe)));
    tx.push_back(std::move(t));
  }
  return TransactionDB(std::move(tx));
}

TEST(Yafim, MatchesSequentialApriori) {
  const auto db = random_db(16, 200, 0.35, 100);
  AprioriOptions sopt;
  sopt.min_support = 0.2;
  const auto seq = apriori_mine(db, sopt);

  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  YafimOptions opt;
  opt.min_support = 0.2;
  const auto run = yafim_mine(ctx, fs, db, opt);

  EXPECT_TRUE(run.itemsets.same_itemsets(seq.itemsets))
      << "yafim=" << run.itemsets.total() << " seq=" << seq.itemsets.total();
  EXPECT_GT(run.itemsets.total(), 0u);
}

TEST(Yafim, EmptyDatabase) {
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  YafimOptions opt;
  opt.min_support = 0.5;
  const auto run = yafim_mine(ctx, fs, TransactionDB(), opt);
  EXPECT_EQ(run.itemsets.total(), 0u);
  EXPECT_TRUE(run.passes.empty());
}

TEST(Yafim, NothingFrequent) {
  // Every item unique: nothing reaches 50% support over 4 transactions.
  TransactionDB db({{1}, {2}, {3}, {4}});
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  YafimOptions opt;
  opt.min_support = 0.5;
  const auto run = yafim_mine(ctx, fs, db, opt);
  EXPECT_EQ(run.itemsets.total(), 0u);
  ASSERT_EQ(run.passes.size(), 1u);
  EXPECT_EQ(run.passes[0].frequent, 0u);
}

TEST(Yafim, PassStatsConsistentWithResult) {
  const auto db = random_db(14, 150, 0.4, 7);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  YafimOptions opt;
  opt.min_support = 0.25;
  const auto run = yafim_mine(ctx, fs, db, opt);

  // The final pass may count candidates and find none frequent, so the
  // pass list is max_k or max_k + 1 entries long.
  ASSERT_GE(run.passes.size(), run.itemsets.max_k());
  ASSERT_LE(run.passes.size(), run.itemsets.max_k() + 1u);
  for (size_t i = 0; i < run.passes.size(); ++i) {
    const auto& pass = run.passes[i];
    EXPECT_EQ(pass.k, i + 1);
    EXPECT_EQ(pass.frequent, run.itemsets.level(pass.k).size());
    EXPECT_GE(pass.candidates, pass.frequent);
    EXPECT_GT(pass.sim_seconds, 0.0);
  }
  EXPECT_GT(run.total_seconds(), 0.0);
  EXPECT_GE(run.setup_seconds, 0.0);
}

TEST(Yafim, AblationsPreserveExactness) {
  const auto db = random_db(14, 150, 0.4, 42);
  AprioriOptions sopt;
  sopt.min_support = 0.25;
  const auto seq = apriori_mine(db, sopt);

  for (const bool use_hash_tree : {true, false}) {
    for (const bool cache : {true, false}) {
      engine::Context ctx(small_cluster());
      simfs::SimFS fs(ctx.cluster());
      YafimOptions opt;
      opt.min_support = 0.25;
      opt.use_hash_tree = use_hash_tree;
      opt.cache_transactions = cache;
      const auto run = yafim_mine(ctx, fs, db, opt);
      EXPECT_TRUE(run.itemsets.same_itemsets(seq.itemsets))
          << "hash_tree=" << use_hash_tree << " cache=" << cache;
    }
  }
}

TEST(Yafim, NoCacheCostsMoreSimTime) {
  const auto db = random_db(14, 400, 0.4, 9);
  double cached_s = 0, uncached_s = 0;
  {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    YafimOptions opt;
    opt.min_support = 0.25;
    cached_s = yafim_mine(ctx, fs, db, opt).total_seconds();
  }
  {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    YafimOptions opt;
    opt.min_support = 0.25;
    opt.cache_transactions = false;
    uncached_s = yafim_mine(ctx, fs, db, opt).total_seconds();
  }
  EXPECT_GT(uncached_s, cached_s);
}

TEST(Yafim, BroadcastBytesRecordedEachPass) {
  const auto db = random_db(12, 150, 0.5, 11);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  YafimOptions opt;
  opt.min_support = 0.3;
  const auto run = yafim_mine(ctx, fs, db, opt);
  ASSERT_GT(run.passes.size(), 1u);  // must reach phase II for broadcasts
  EXPECT_GT(ctx.report().total_broadcast_bytes(), 0u);
  // DFS was read exactly once (the phase-0 load).
  EXPECT_EQ(ctx.report().total_dfs_read_bytes(), db.serialize().size());
}

TEST(Yafim, NaiveShipModeStillExactButSlower) {
  const auto db = random_db(12, 200, 0.5, 13);
  AprioriOptions sopt;
  sopt.min_support = 0.3;
  const auto seq = apriori_mine(db, sopt);

  double broadcast_s = 0, naive_s = 0;
  {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    YafimOptions opt;
    opt.min_support = 0.3;
    broadcast_s = yafim_mine(ctx, fs, db, opt).total_seconds();
  }
  {
    auto opts = small_cluster();
    opts.share_mode = engine::ShareMode::kNaiveShip;
    engine::Context ctx(opts);
    simfs::SimFS fs(ctx.cluster());
    YafimOptions opt;
    opt.min_support = 0.3;
    const auto run = yafim_mine(ctx, fs, db, opt);
    naive_s = run.total_seconds();
    EXPECT_TRUE(run.itemsets.same_itemsets(seq.itemsets));
  }
  EXPECT_GT(naive_s, broadcast_s);
}

TEST(Yafim, MineFromExplicitDfsPath) {
  const auto db = random_db(10, 100, 0.5, 17);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  fs.write("hdfs://data/tx", db.serialize());
  YafimOptions opt;
  opt.min_support = 0.3;
  const auto run = yafim_mine(ctx, fs, "hdfs://data/tx", opt);
  EXPECT_GT(run.itemsets.total(), 0u);
}

TEST(Yafim, PartitionCountOptionRespected) {
  const auto db = random_db(10, 64, 0.5, 19);
  // Exact task counts: ambient straggler injection would add speculative
  // task copies to the stage record, so opt out of the env fault profile.
  engine::Context::Options opts = small_cluster();
  opts.fault = engine::FaultProfile{};
  engine::Context ctx(opts);
  simfs::SimFS fs(ctx.cluster());
  YafimOptions opt;
  opt.min_support = 0.3;
  opt.partitions = 4;
  const auto run = yafim_mine(ctx, fs, db, opt);
  EXPECT_GT(run.itemsets.total(), 0u);
  // The phase-1 map-combine stage must have exactly 4 tasks.
  bool found = false;
  for (const auto& stage : ctx.report().stages()) {
    if (stage.label == "phase1:count:map-combine") {
      EXPECT_EQ(stage.tasks.size(), 4u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Yafim, CombinedPassesStayExact) {
  const auto db = random_db(14, 250, 0.75, 23);
  AprioriOptions sopt;
  sopt.min_support = 0.25;
  const auto seq = apriori_mine(db, sopt);
  ASSERT_GE(seq.itemsets.max_k(), 4u);

  for (u32 combine : {1u, 2u, 3u, 8u}) {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    YafimOptions opt;
    opt.min_support = 0.25;
    opt.combine_passes = combine;
    const auto run = yafim_mine(ctx, fs, db, opt);
    EXPECT_TRUE(run.itemsets.same_itemsets(seq.itemsets))
        << "combine=" << combine;
    // Every level still gets a PassStats entry with exact counts.
    for (const auto& pass : run.passes) {
      EXPECT_EQ(pass.frequent, run.itemsets.level(pass.k).size());
    }
  }
}

TEST(Yafim, CombinedPassesCutStageCount) {
  const auto db = random_db(14, 250, 0.75, 29);
  u64 stages_plain = 0, stages_combined = 0;
  {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    YafimOptions opt;
    opt.min_support = 0.25;
    yafim_mine(ctx, fs, db, opt);
    stages_plain = ctx.report().stages().size();
  }
  {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    YafimOptions opt;
    opt.min_support = 0.25;
    opt.combine_passes = 3;
    yafim_mine(ctx, fs, db, opt);
    stages_combined = ctx.report().stages().size();
  }
  EXPECT_LT(stages_combined, stages_plain);
}

/// Parameterised exactness sweep across densities / supports / seeds.
class YafimSweep
    : public ::testing::TestWithParam<std::tuple<double, double, u32>> {};

TEST_P(YafimSweep, AlwaysMatchesReference) {
  const auto [density, min_support, seed] = GetParam();
  const auto db = random_db(15, 120, density, seed);
  AprioriOptions sopt;
  sopt.min_support = min_support;
  const auto seq = apriori_mine(db, sopt);

  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  YafimOptions opt;
  opt.min_support = min_support;
  const auto run = yafim_mine(ctx, fs, db, opt);
  EXPECT_TRUE(run.itemsets.same_itemsets(seq.itemsets));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, YafimSweep,
    ::testing::Combine(::testing::Values(0.2, 0.5, 0.75),
                       ::testing::Values(0.1, 0.3, 0.55),
                       ::testing::Values(1u, 2u)));

}  // namespace
}  // namespace yafim::fim
