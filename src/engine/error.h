// Structured errors for invalid engine API usage, following the SimFSError
// convention (simfs/simfs.h): library code throws a typed exception the
// caller can catch and classify -- it never aborts the process on bad
// input. YAFIM_CHECK remains reserved for internal invariants whose
// violation means the engine itself is broken.
#pragma once

#include <stdexcept>
#include <string>

namespace yafim::engine {

enum class EngineErrorKind {
  /// reduce() called on an RDD with no elements (mirrors Spark's throw).
  kEmptyReduce,
  /// first() called on an RDD with no elements (mirrors Spark's throw).
  kEmptyFirst,
  /// collect_as_map() saw the same key in two pairs.
  kDuplicateKey,
  /// sum_arrays() fed arrays of differing widths.
  kArrayWidthMismatch,
};

class EngineError : public std::runtime_error {
 public:
  EngineError(EngineErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  EngineErrorKind kind() const { return kind_; }

 private:
  EngineErrorKind kind_;
};

}  // namespace yafim::engine
