#include "fim/apriori_seq.h"

#include <algorithm>
#include <unordered_map>

#include "fim/candidate_gen.h"
#include "fim/hash_tree.h"

namespace yafim::fim {

MiningRun apriori_mine(const TransactionDB& db,
                       const AprioriOptions& options) {
  const u64 min_count = options.min_count
                            ? options.min_count
                            : db.min_support_count(options.min_support);
  MiningRun run;
  run.itemsets = FrequentItemsets(min_count, db.size());

  // L1: one pass over D counting single items.
  std::unordered_map<Item, u64> item_counts;
  for (const Transaction& t : db.transactions()) {
    for (Item i : t) ++item_counts[i];
  }
  std::vector<Itemset> frequent;
  for (const auto& [item, count] : item_counts) {
    if (count >= min_count) {
      run.itemsets.add(Itemset{item}, count);
      frequent.push_back(Itemset{item});
    }
  }
  run.passes.push_back(
      PassStats{1, item_counts.size(), frequent.size(), 0.0});

  // Lk from L(k-1) until no candidates survive.
  for (u32 k = 2; !frequent.empty(); ++k) {
    std::vector<Itemset> candidates = apriori_gen(frequent, k);
    if (candidates.empty()) break;

    std::vector<u64> counts(candidates.size(), 0);
    if (options.use_hash_tree) {
      HashTree tree(candidates, options.branching, options.leaf_capacity);
      HashTree::Probe probe;
      for (const Transaction& t : db.transactions()) {
        tree.for_each_contained(t, probe, [&](u32 ci) { ++counts[ci]; });
      }
    } else {
      for (const Transaction& t : db.transactions()) {
        for (size_t ci = 0; ci < candidates.size(); ++ci) {
          if (contains_all(t, candidates[ci])) ++counts[ci];
        }
      }
    }

    frequent.clear();
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      if (counts[ci] >= min_count) {
        run.itemsets.add(candidates[ci], counts[ci]);
        frequent.push_back(candidates[ci]);
      }
    }
    run.passes.push_back(
        PassStats{k, candidates.size(), frequent.size(), 0.0});
  }
  return run;
}

}  // namespace yafim::fim
