#include "fim/big_fim.h"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_set>

#include "fim/hash_tree.h"
#include "fim/mr_apriori.h"
#include "fim/mr_encode.h"
#include "fim/tidlist_mining.h"
#include "mapreduce/job.h"

namespace yafim::fim {

namespace {

using CountPair = std::pair<Itemset, u64>;
/// Phase-2 intermediate value: one extension item's local tidlist.
using ExtTids = std::pair<Item, TidList>;
/// Phase-2 input record: (global tid, transaction).
using IndexedTx = std::pair<u64, Transaction>;
/// Phase-2 output record: the frequent itemsets of one prefix's subtree.
using Subtree = std::vector<CountPair>;

void price_passes(engine::Context& ctx, size_t first_stage, MiningRun& run) {
  sim::SimReport slice;
  const auto& stages = ctx.report().stages();
  for (size_t i = first_stage; i < stages.size(); ++i) slice.add(stages[i]);
  const std::vector<double> by_pass = slice.pass_seconds(ctx.cost_model());
  run.setup_seconds = by_pass.empty() ? 0.0 : by_pass[0];
  for (PassStats& pass : run.passes) {
    pass.sim_seconds = pass.k < by_pass.size() ? by_pass[pass.k] : 0.0;
  }
}

}  // namespace

BigFimRun big_fim_mine(engine::Context& ctx, simfs::SimFS& fs,
                       const std::string& input_path,
                       const BigFimOptions& options) {
  YAFIM_CHECK(options.switch_level >= 1, "switch_level must be >= 1");
  const size_t first_stage = ctx.report().stages().size();
  BigFimRun big;
  MiningRun& run = big.run;

  // ---- Phase 1: breadth-first Apriori jobs up to switch_level ----------
  MrAprioriOptions phase1;
  phase1.min_support = options.min_support;
  phase1.num_mappers = options.num_mappers;
  phase1.num_reducers = options.num_reducers;
  phase1.work_dir = options.work_dir + "/phase1";
  phase1.max_levels = options.switch_level;
  MiningRun apriori_run = mr_apriori_mine(ctx, fs, input_path, phase1);
  run.itemsets = FrequentItemsets(apriori_run.itemsets.min_support_count(),
                                  apriori_run.itemsets.num_transactions());
  for (const auto& [itemset, support] : apriori_run.itemsets.sorted()) {
    run.itemsets.add(itemset, support);
  }
  run.passes = apriori_run.passes;
  const u64 min_count = run.itemsets.min_support_count();

  // Prefixes for the depth-first phase; frequent items bound extensions.
  std::vector<Itemset> prefixes;
  for (const auto& [itemset, support] : run.itemsets.level(
           options.switch_level)) {
    (void)support;
    prefixes.push_back(itemset);
  }
  big.prefixes = prefixes.size();
  if (prefixes.empty()) {
    ctx.set_pass(0);
    price_passes(ctx, first_stage, run);
    return big;  // the lattice ended before the switch
  }
  auto frequent_items = std::make_shared<std::unordered_set<Item>>();
  for (const auto& [itemset, support] : run.itemsets.level(1)) {
    (void)support;
    frequent_items->insert(itemset[0]);
  }

  // ---- Phase 2: one job -- build per-prefix extension tidlists in the
  // mappers, merge and mine each prefix's subtree in the reducers. -------
  const u32 phase2_pass = options.switch_level + 1;
  ctx.set_pass(phase2_pass);
  engine::work::Scope driver_scope;
  auto prefix_tree = std::make_shared<const HashTree>(prefixes);
  {
    sim::StageRecord gen;
    gen.label = "bigfim:build prefix tree";
    gen.kind = sim::StageKind::kOverhead;
    gen.pass = phase2_pass;
    gen.driver_work = driver_scope.measured();
    ctx.record(std::move(gen));
  }

  mr::JobSpec<IndexedTx, Itemset, ExtTids, Subtree, ItemsetHash> job;
  job.name = "bigfim:phase2";
  job.decode_input = [](const std::vector<u8>& bytes) {
    std::vector<Transaction> tx = TransactionDB::deserialize(bytes).release();
    std::vector<IndexedTx> indexed;
    indexed.reserve(tx.size());
    for (u64 tid = 0; tid < tx.size(); ++tid) {
      indexed.emplace_back(tid, std::move(tx[tid]));
    }
    return indexed;
  };
  job.map_partition_fn = [prefix_tree, frequent_items](
                             std::span<const IndexedTx> split,
                             mr::Emitter<Itemset, ExtTids>& emit) {
    // local[prefix id][extension item] -> tids within this split.
    std::map<u32, std::map<Item, TidList>> local;
    HashTree::Probe probe;
    for (const auto& [tid, t] : split) {
      prefix_tree->for_each_contained(t, probe, [&](u32 ci) {
        const Itemset& prefix = prefix_tree->candidate(ci);
        auto from = std::upper_bound(t.begin(), t.end(), prefix.back());
        for (auto it = from; it != t.end(); ++it) {
          engine::work::add(1);
          if (!frequent_items->count(*it)) continue;
          local[ci][*it].push_back(static_cast<u32>(tid));
        }
      });
    }
    for (auto& [ci, extensions] : local) {
      for (auto& [item, tids] : extensions) {
        emit.emit(prefix_tree->candidate(ci),
                  ExtTids(item, std::move(tids)));
      }
    }
  };
  job.reduce_fn = [min_count](const Itemset& prefix,
                              std::vector<ExtTids>& values)
      -> std::optional<Subtree> {
    // Merge each extension item's tidlist shards (shards are disjoint but
    // arrive in arbitrary mapper order).
    std::map<Item, TidList> merged;
    for (auto& [item, tids] : values) {
      TidList& into = merged[item];
      into.insert(into.end(), tids.begin(), tids.end());
    }
    std::vector<std::pair<Item, TidList>> extensions;
    for (auto& [item, tids] : merged) {
      engine::work::add(tids.size());
      std::sort(tids.begin(), tids.end());
      if (tids.size() >= min_count) {
        extensions.emplace_back(item, std::move(tids));
      }
    }
    if (extensions.empty()) return std::nullopt;
    Subtree out;
    mine_tidlist_class(prefix, extensions, min_count, out);
    if (out.empty()) return std::nullopt;
    return out;
  };
  job.encode_output = [](const std::vector<Subtree>& subtrees) {
    std::vector<CountPair> flat;
    for (const Subtree& s : subtrees) {
      flat.insert(flat.end(), s.begin(), s.end());
    }
    return encode_counts(flat);
  };
  job.num_mappers = options.num_mappers;
  job.num_reducers = options.num_reducers;
  job.distributed_cache_bytes =
      prefix_tree->serialized_bytes() + 8 * frequent_items->size();

  mr::JobRunner runner(ctx, fs);
  auto result = runner.run(job, input_path, options.work_dir + "/deep");
  big.tidlist_shuffle_bytes = result.shuffle_bytes;

  u64 deep = 0;
  for (const Subtree& subtree : result.output) {
    for (const auto& [itemset, support] : subtree) {
      run.itemsets.add(itemset, support);
      ++deep;
    }
  }
  run.passes.push_back(PassStats{phase2_pass, big.prefixes, deep, 0.0});

  ctx.set_pass(0);
  price_passes(ctx, first_stage, run);
  return big;
}

BigFimRun big_fim_mine(engine::Context& ctx, simfs::SimFS& fs,
                       const TransactionDB& db, const BigFimOptions& options) {
  const std::string path = "hdfs://staging/bigfim-input";
  fs.write(path, db.serialize());
  return big_fim_mine(ctx, fs, path, options);
}

}  // namespace yafim::fim
