// Fault injection for lineage-based recovery.
//
// RDDs are fault-tolerant through lineage: when a cached partition is lost
// (its executor died), the engine recomputes just that partition from its
// parents instead of restoring a replica. This module lets tests and demos
// inject those losses deterministically.
//
// Cached RDD nodes register themselves here; kill_executor(node) drops every
// cached partition whose simulated placement (partition % nodes) maps to
// that node. fail_partition() targets one (rdd, partition) pair.
#pragma once

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "sim/cluster.h"
#include "util/common.h"

namespace yafim::engine {

/// Type-erased view of an RDD's partition cache, implemented by RDDNode<T>.
class CacheHolder {
 public:
  virtual ~CacheHolder() = default;
  virtual u32 holder_id() const = 0;
  virtual u32 holder_partitions() const = 0;
  /// Drop the cached copy of one partition. Returns true if a cached copy
  /// was present and dropped.
  virtual bool drop_cached(u32 partition) = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(u32 nodes) : nodes_(nodes) {}

  /// Called by RDDNode when persist() is enabled / the node dies.
  void register_holder(CacheHolder* holder);
  void unregister_holder(CacheHolder* holder);

  /// Drop one cached partition of one RDD. Returns false if no such RDD is
  /// registered.
  bool fail_partition(u32 rdd_id, u32 partition);

  /// Simulate the death of one executor node: every cached partition placed
  /// on it (partition % nodes == node) is dropped. Returns the number of
  /// partitions lost.
  u64 kill_executor(u32 node);

  /// Number of partitions recomputed due to injected loss (bumped by the
  /// RDD cache on a post-loss recompute).
  u64 recomputations() const {
    return recomputations_.load(std::memory_order_relaxed);
  }
  void note_recomputation() {
    recomputations_.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::CounterId::kLineageRecomputes);
  }

 private:
  u32 nodes_;
  std::mutex mutex_;
  std::unordered_map<u32, CacheHolder*> holders_;
  std::atomic<u64> recomputations_{0};
};

}  // namespace yafim::engine
