file(REMOVE_RECURSE
  "CMakeFiles/yafim_datagen.dir/datagen/benchmarks.cpp.o"
  "CMakeFiles/yafim_datagen.dir/datagen/benchmarks.cpp.o.d"
  "CMakeFiles/yafim_datagen.dir/datagen/dense.cpp.o"
  "CMakeFiles/yafim_datagen.dir/datagen/dense.cpp.o.d"
  "CMakeFiles/yafim_datagen.dir/datagen/medical.cpp.o"
  "CMakeFiles/yafim_datagen.dir/datagen/medical.cpp.o.d"
  "CMakeFiles/yafim_datagen.dir/datagen/quest.cpp.o"
  "CMakeFiles/yafim_datagen.dir/datagen/quest.cpp.o.d"
  "libyafim_datagen.a"
  "libyafim_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yafim_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
