// Memory-pressure-aware execution tests.
//
// The broadcast ceiling must bend, not break: when a pass's candidate trees
// outgrow the executor-memory budget (engine::MemoryBudget), the miners
// degrade to the partitioned candidate store; when shuffle buffers outgrow
// theirs, map outputs spill to simfs (optionally yz-compressed). Every
// degradation must be invisible in the mined output -- bit-identical
// FrequentItemsets across full / partitioned / spilling runs, including a
// checkpoint resume that lands mid-degradation -- and visible in the
// always-on counters and the linter (YL002 downgraded error -> note when
// the fallback engages). Also pins the Context::broadcast live-fraction
// pricing round-up under executor blacklisting.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "engine/broadcast.h"
#include "engine/context.h"
#include "engine/lint.h"
#include "engine/rdd.h"
#include "fim/apriori_seq.h"
#include "fim/checkpoint.h"
#include "fim/hash_tree.h"
#include "fim/mr_apriori.h"
#include "fim/yafim.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

constexpr CountMode kAllModes[] = {CountMode::kItemsetKey,
                                   CountMode::kCandidateId,
                                   CountMode::kVerticalBitmap};

engine::Context::Options small_cluster() {
  engine::Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(3);
  opts.host_threads = 4;
  // Pin injection off so exact counter assertions hold even when the whole
  // binary runs under the CI fault matrix; faulty cases opt in explicitly.
  opts.fault = engine::FaultProfile{};
  return opts;
}

TransactionDB random_db(u32 universe, int transactions, double density,
                        u64 seed) {
  Rng rng(seed);
  std::vector<Transaction> tx;
  for (int i = 0; i < transactions; ++i) {
    Transaction t;
    for (u32 item = 0; item < universe; ++item) {
      if (rng.bernoulli(density)) t.push_back(item);
    }
    if (t.empty()) t.push_back(static_cast<Item>(rng.below(universe)));
    tx.push_back(std::move(t));
  }
  return TransactionDB(std::move(tx));
}

MiningRun run_yafim(const TransactionDB& db, const YafimOptions& opt,
                    engine::Context::Options copts = small_cluster()) {
  engine::Context ctx(copts);
  simfs::SimFS fs(ctx.cluster(), copts.fault.corrupt);
  return yafim_mine(ctx, fs, db, opt);
}

// ---- candidate sharding primitives --------------------------------------

TEST(CandidateShard, DeterministicAndInRange) {
  for (u32 nshards : {1u, 2u, 7u, 64u}) {
    for (Item item = 0; item < 100; ++item) {
      const u32 s = candidate_shard(item, nshards);
      EXPECT_LT(s, nshards);
      EXPECT_EQ(s, candidate_shard(item, nshards));
    }
  }
}

TEST(ShardHashTree, PartitionsCandidatesByFirstItemWithGlobalIds) {
  std::vector<Itemset> cands = {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}};
  HashTree tree(cands, /*branching=*/4, /*leaf_capacity=*/2);
  tree.set_id_offset(100);
  const u32 nshards = 4;
  const auto shards = shard_hash_tree(tree, nshards, 4, 2);
  ASSERT_EQ(shards.size(), nshards);

  u32 total = 0;
  std::vector<bool> seen_id(cands.size(), false);
  for (u32 s = 0; s < nshards; ++s) {
    ASSERT_EQ(shards[s].tree.size(), shards[s].global_ids.size());
    for (u32 ci = 0; ci < shards[s].tree.size(); ++ci) {
      const auto items = shards[s].tree.candidate_items(ci);
      // Every candidate landed on the shard its first item hashes to...
      EXPECT_EQ(candidate_shard(items[0], nshards), s);
      // ...and carries its original batch-global dense id.
      const u64 gid = shards[s].global_ids[ci];
      ASSERT_GE(gid, 100u);
      ASSERT_LT(gid, 100u + cands.size());
      EXPECT_FALSE(seen_id[gid - 100]) << "duplicate global id " << gid;
      seen_id[gid - 100] = true;
      EXPECT_EQ(tree.candidate(static_cast<u32>(gid - 100)),
                shards[s].tree.candidate(ci));
      ++total;
    }
  }
  EXPECT_EQ(total, cands.size());
}

TEST(ShardHashTree, SingleShardIsTheWholeTree) {
  std::vector<Itemset> cands = {{0, 1}, {5, 6}, {9, 11}};
  HashTree tree(cands, 4, 2);
  const auto shards = shard_hash_tree(tree, 1, 4, 2);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].tree.size(), cands.size());
}

// ---- bit-identity: partitioned broadcast --------------------------------

TEST(MemoryPressure, PartitionedBroadcastBitIdenticalAcrossCountModes) {
  const auto db = random_db(16, 250, 0.35, 42);
  AprioriOptions sopt;
  sopt.min_support = 0.2;
  const auto seq = apriori_mine(db, sopt);
  ASSERT_GT(seq.itemsets.total(), 0u);

  YafimOptions base;
  base.min_support = 0.2;
  base.count_mode = CountMode::kItemsetKey;
  base.broadcast_mode = BroadcastMode::kFull;

  for (u32 combine : {1u, 2u}) {
    // Speculative levels from combined passes add zero-frequent pass
    // entries, so the per-pass comparison must hold `combine` fixed.
    YafimOptions full_opt = base;
    full_opt.combine_passes = combine;
    const auto full = run_yafim(db, full_opt);
    EXPECT_TRUE(full.itemsets.same_itemsets(seq.itemsets))
        << "combine=" << combine;
    for (CountMode mode : kAllModes) {
      YafimOptions opt = full_opt;
      opt.count_mode = mode;
      opt.broadcast_mode = BroadcastMode::kPartitioned;
      const auto part = run_yafim(db, opt);
      EXPECT_TRUE(part.itemsets.same_itemsets(full.itemsets))
          << count_mode_name(mode) << " combine=" << combine;
      // Same candidate levels generated and verified in every mode.
      ASSERT_EQ(part.passes.size(), full.passes.size());
      for (size_t i = 0; i < part.passes.size(); ++i) {
        EXPECT_EQ(part.passes[i].candidates, full.passes[i].candidates);
        EXPECT_EQ(part.passes[i].frequent, full.passes[i].frequent);
      }
    }
  }
}

/// Shard-count boundary cases for the partitioned store: a single shard
/// (degenerate -- the "partitioned" plan with the whole tree in one place)
/// and far more shards than distinct first items (most shards hold no
/// candidates and receive no transactions). Both must merge per-shard dense
/// arrays via sum_arrays into exactly the counts the itemset-keyed shuffle
/// produces.
TEST(MemoryPressure, ShardCountBoundaryCasesMatchItemsetKeyCounts) {
  const auto db = random_db(16, 220, 0.35, 9);
  YafimOptions faithful;
  faithful.min_support = 0.2;
  faithful.count_mode = CountMode::kItemsetKey;
  faithful.broadcast_mode = BroadcastMode::kFull;
  const auto reference = run_yafim(db, faithful);

  for (u32 shards : {1u, 3u, 257u}) {
    YafimOptions opt = faithful;
    opt.count_mode = CountMode::kCandidateId;
    opt.broadcast_mode = BroadcastMode::kPartitioned;
    opt.broadcast_shards = shards;
    const auto run = run_yafim(db, opt);
    // same_itemsets compares support counts cell by cell, so agreement here
    // means every shard-boundary merge produced the exact reference count.
    EXPECT_TRUE(run.itemsets.same_itemsets(reference.itemsets))
        << "shards=" << shards;
  }
}

TEST(MemoryPressure, AutoModeFallsBackUnderTinyBudgetAndStaysExact) {
  const auto db = random_db(16, 250, 0.35, 42);
  YafimOptions ref_opt;
  ref_opt.min_support = 0.2;
  const auto reference = run_yafim(db, ref_opt);

  auto copts = small_cluster();
  copts.cluster.executor_memory_bytes = 1024;  // smaller than any real tree
  engine::Context ctx(copts);
  simfs::SimFS fs(ctx.cluster());
  YafimOptions opt = ref_opt;
  opt.broadcast_mode = BroadcastMode::kAuto;
  const auto run = yafim_mine(ctx, fs, db, opt);
  EXPECT_TRUE(run.itemsets.same_itemsets(reference.itemsets));
  EXPECT_GT(ctx.memory_budget().broadcast_fallbacks(), 0u);
}

TEST(MemoryPressure, MrAprioriPartitionedSubJobsBitIdentical) {
  const auto db = random_db(16, 250, 0.35, 42);
  YafimOptions ref_opt;
  ref_opt.min_support = 0.2;
  const auto reference = run_yafim(db, ref_opt);

  for (CountMode mode : kAllModes) {
    auto copts = small_cluster();
    copts.cluster.executor_memory_bytes = 2048;
    engine::Context ctx(copts);
    simfs::SimFS fs(ctx.cluster());
    MrAprioriOptions opt;
    opt.min_support = 0.2;
    opt.count_mode = mode;
    opt.broadcast_mode = BroadcastMode::kAuto;
    const auto run = mr_apriori_mine(ctx, fs, db, opt);
    EXPECT_TRUE(run.itemsets.same_itemsets(reference.itemsets))
        << count_mode_name(mode);
    EXPECT_GT(ctx.memory_budget().broadcast_fallbacks(), 0u)
        << count_mode_name(mode);
  }
}

// ---- bit-identity: shuffle spill ----------------------------------------

TEST(MemoryPressure, ShuffleSpillBitIdenticalAndCounted) {
  const auto db = random_db(16, 300, 0.35, 5);
  YafimOptions opt;
  opt.min_support = 0.2;
  opt.count_mode = CountMode::kCandidateId;
  const auto reference = run_yafim(db, opt);

  auto copts = small_cluster();
  copts.cluster.shuffle_buffer_bytes = 512;  // force spill on every shuffle
  engine::Context ctx(copts);
  simfs::SimFS fs(ctx.cluster());
  const auto run = yafim_mine(ctx, fs, db, opt);
  EXPECT_TRUE(run.itemsets.same_itemsets(reference.itemsets));

  const engine::MemoryBudget& mb = ctx.memory_budget();
  EXPECT_GT(mb.spill_blocks_written(), 0u);
  // Every spilled block was read back (restore is not optional).
  EXPECT_EQ(mb.spill_blocks_read(), mb.spill_blocks_written());
  // Sparse count arrays are zero-heavy: the yz codec must actually shrink
  // them, and the stored-bytes ledger must see the compressed size.
  EXPECT_GT(mb.spill_bytes_raw(), 0u);
  EXPECT_LT(mb.spill_bytes_stored(), mb.spill_bytes_raw());
}

TEST(MemoryPressure, UncompressedSpillAlsoExact) {
  const auto db = random_db(16, 300, 0.35, 5);
  YafimOptions opt;
  opt.min_support = 0.2;
  opt.count_mode = CountMode::kCandidateId;
  const auto reference = run_yafim(db, opt);

  auto copts = small_cluster();
  copts.cluster.shuffle_buffer_bytes = 512;
  engine::Context ctx(copts);
  ctx.set_spill_compress(false);
  simfs::SimFS fs(ctx.cluster());
  const auto run = yafim_mine(ctx, fs, db, opt);
  EXPECT_TRUE(run.itemsets.same_itemsets(reference.itemsets));
  const engine::MemoryBudget& mb = ctx.memory_budget();
  EXPECT_GT(mb.spill_blocks_written(), 0u);
  EXPECT_EQ(mb.spill_bytes_stored(), mb.spill_bytes_raw());
}

TEST(MemoryPressure, MrAprioriSpillsUnderShuffleBudget) {
  const auto db = random_db(16, 250, 0.35, 42);
  MrAprioriOptions opt;
  opt.min_support = 0.2;
  engine::Context ref_ctx(small_cluster());
  simfs::SimFS ref_fs(ref_ctx.cluster());
  const auto reference = mr_apriori_mine(ref_ctx, ref_fs, db, opt);

  auto copts = small_cluster();
  copts.cluster.shuffle_buffer_bytes = 256;
  engine::Context ctx(copts);
  simfs::SimFS fs(ctx.cluster());
  const auto run = mr_apriori_mine(ctx, fs, db, opt);
  EXPECT_TRUE(run.itemsets.same_itemsets(reference.itemsets));
  EXPECT_GT(ctx.memory_budget().spill_blocks_written(), 0u);
}

// ---- deterministic memory fault axis ------------------------------------

TEST(MemoryPressure, MemShrinkAxisDegradesMidRunDeterministically) {
  const auto db = random_db(16, 200, 0.45, 100);
  YafimOptions opt;
  opt.min_support = 0.2;
  const auto reference = run_yafim(db, opt);
  ASSERT_GE(reference.passes.size(), 3u);

  auto run_shrunk = [&](u64* fallbacks, u64* shrinks) {
    auto copts = small_cluster();
    // Generous before the fault, effectively nothing on node 1 after it:
    // passes 1..2 broadcast in full, later passes must fall back.
    copts.cluster.executor_memory_bytes = 64ull << 20;
    copts.fault.mem_shrink_pass = 3;
    copts.fault.mem_shrink_factor = 1e-9;
    copts.fault.mem_shrink_node = 1;
    engine::Context ctx(copts);
    simfs::SimFS fs(ctx.cluster());
    const auto run = yafim_mine(ctx, fs, db, opt);
    *fallbacks = ctx.memory_budget().broadcast_fallbacks();
    *shrinks = ctx.memory_budget().mem_shrinks_applied();
    return run;
  };

  u64 fallbacks_a = 0, shrinks_a = 0, fallbacks_b = 0, shrinks_b = 0;
  const auto a = run_shrunk(&fallbacks_a, &shrinks_a);
  EXPECT_TRUE(a.itemsets.same_itemsets(reference.itemsets));
  EXPECT_EQ(shrinks_a, 1u) << "the shrink applies exactly once";
  EXPECT_GT(fallbacks_a, 0u) << "post-shrink passes must fall back";

  // Same seed -> same degradation point -> same counters and output.
  const auto b = run_shrunk(&fallbacks_b, &shrinks_b);
  EXPECT_TRUE(b.itemsets.same_itemsets(a.itemsets));
  EXPECT_EQ(fallbacks_b, fallbacks_a);
  EXPECT_EQ(shrinks_b, shrinks_a);
}

// ---- checkpoint resume mid-degradation ----------------------------------

TEST(MemoryPressure, ResumeMidDegradationIsBitIdentical) {
  // Crash after pass 2; the memory fault lands at pass 3, so the resumed
  // process mines its very first live pass already under pressure. The
  // rebuilt MemoryBudget must re-apply the shrink (begin_pass consults the
  // axis on every boundary) and the partitioned passes must reproduce the
  // uninterrupted run bit for bit.
  const auto db = random_db(16, 200, 0.45, 100);
  auto shrunk_opts = [] {
    auto copts = small_cluster();
    copts.cluster.executor_memory_bytes = 64ull << 20;
    copts.fault.mem_shrink_pass = 3;
    copts.fault.mem_shrink_factor = 1e-9;
    copts.fault.mem_shrink_node = 0;
    return copts;
  };

  YafimOptions opt;
  opt.min_support = 0.2;
  opt.broadcast_mode = BroadcastMode::kAuto;

  // Uninterrupted reference under the same fault profile.
  engine::Context ref_ctx(shrunk_opts());
  simfs::SimFS ref_fs(ref_ctx.cluster());
  const auto reference = yafim_mine(ref_ctx, ref_fs, db, opt);
  ASSERT_GE(reference.passes.size(), 3u) << "need k >= 3 to land mid-fault";
  ASSERT_GT(ref_ctx.memory_budget().broadcast_fallbacks(), 0u);

  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "ck_mem_degrade";
  std::filesystem::remove_all(dir);
  DirCheckpointStore store(dir.string());
  opt.checkpoint = &store;
  opt.stop_after_pass = 2;
  {
    engine::Context ctx(shrunk_opts());
    simfs::SimFS fs(ctx.cluster());
    const auto partial = yafim_mine(ctx, fs, db, opt);
    EXPECT_EQ(partial.passes.back().k, 2u);
    // The crash happened before the fault's pass: no fallback yet.
    EXPECT_EQ(ctx.memory_budget().broadcast_fallbacks(), 0u);
  }
  opt.stop_after_pass = 0;
  engine::Context ctx(shrunk_opts());
  simfs::SimFS fs(ctx.cluster());
  const auto resumed = yafim_mine(ctx, fs, db, opt);
  EXPECT_EQ(resumed.resumed_pass, 2u);
  EXPECT_EQ(resumed.itemsets.sorted(), reference.itemsets.sorted());
  EXPECT_GT(ctx.memory_budget().broadcast_fallbacks(), 0u);
}

TEST(MemoryPressure, BroadcastModeChangesCheckpointFingerprint) {
  // A snapshot mined under one broadcast mode must not be resumed by a run
  // configured with another (the degradation decision is part of the plan).
  const auto db = random_db(16, 200, 0.45, 100);
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "ck_mode_fingerprint";
  std::filesystem::remove_all(dir);
  DirCheckpointStore store(dir.string());

  YafimOptions opt;
  opt.min_support = 0.2;
  opt.checkpoint = &store;
  opt.broadcast_mode = BroadcastMode::kFull;
  {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    (void)yafim_mine(ctx, fs, db, opt);
  }
  opt.broadcast_mode = BroadcastMode::kPartitioned;
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  const auto rerun = yafim_mine(ctx, fs, db, opt);
  EXPECT_EQ(rerun.resumed_pass, 0u)
      << "foreign-mode snapshots must not match";
}

// ---- linter: YL002 error vs note ----------------------------------------

TEST(MemoryPressure, FallbackDowngradesYl002ToNote) {
  const auto db = random_db(16, 250, 0.35, 42);
  auto copts = small_cluster();
  copts.cluster.executor_memory_bytes = 1024;
  copts.lint.enabled = true;
  engine::Context ctx(copts);
  simfs::SimFS fs(ctx.cluster());
  YafimOptions opt;
  opt.min_support = 0.2;
  opt.broadcast_mode = BroadcastMode::kAuto;
  (void)yafim_mine(ctx, fs, db, opt);
  ctx.linter().finalize();

  bool saw_note = false;
  for (const auto& diag : ctx.linter().diagnostics()) {
    if (diag.rule != "YL002") continue;
    EXPECT_EQ(diag.severity, engine::LintSeverity::kNote) << diag.message;
    saw_note = true;
  }
  EXPECT_TRUE(saw_note) << "fallback must still be visible as a YL002 note";
  EXPECT_FALSE(ctx.linter().any_at_least(engine::LintSeverity::kWarn));
}

TEST(MemoryPressure, FullModeKeepsYl002Error) {
  const auto db = random_db(16, 250, 0.35, 42);
  auto copts = small_cluster();
  copts.cluster.executor_memory_bytes = 1024;
  copts.lint.enabled = true;
  engine::Context ctx(copts);
  simfs::SimFS fs(ctx.cluster());
  YafimOptions opt;
  opt.min_support = 0.2;
  opt.broadcast_mode = BroadcastMode::kFull;
  (void)yafim_mine(ctx, fs, db, opt);
  ctx.linter().finalize();

  bool saw_error = false;
  for (const auto& diag : ctx.linter().diagnostics()) {
    if (diag.rule == "YL002" &&
        diag.severity == engine::LintSeverity::kError) {
      saw_error = true;
    }
  }
  EXPECT_TRUE(saw_error);
  EXPECT_TRUE(ctx.linter().any_at_least(engine::LintSeverity::kWarn));
}

// ---- broadcast pricing under blacklisting -------------------------------

TEST(BroadcastPricing, LiveFractionRoundsUpNotDown) {
  // 4 nodes, 1 blacklisted -> 3/4 of the payload is shipped. Truncating
  // division used to undercharge every payload whose bytes don't divide the
  // node count -- to zero for payloads under `nodes` bytes.
  auto opts = small_cluster();
  opts.cluster = sim::ClusterConfig::with_nodes(4);
  opts.fault.blacklist_after = 1;
  engine::Context ctx(opts);
  ctx.fault_injector().note_task_failure(0);
  ASSERT_EQ(ctx.fault_injector().live_nodes(), 3u);

  auto priced = [&](u64 payload_bytes) {
    const u64 before = ctx.report().total_broadcast_bytes();
    auto b = ctx.broadcast(int{7}, payload_bytes, "pricing-probe");
    (void)b;
    // Pending broadcast bytes attach to the next recorded stage.
    (void)ctx.parallelize(std::vector<int>{1, 2, 3}, 2).collect();
    return ctx.report().total_broadcast_bytes() - before;
  };

  EXPECT_EQ(priced(1), 1u);     // was 0 with truncation
  EXPECT_EQ(priced(5), 4u);     // ceil(5 * 3 / 4), was 3
  EXPECT_EQ(priced(100), 75u);  // exact multiples are unchanged
}

TEST(BroadcastPricing, HealthyClusterChargesFullPayload) {
  auto opts = small_cluster();
  opts.cluster = sim::ClusterConfig::with_nodes(4);
  engine::Context ctx(opts);
  auto b = ctx.broadcast(int{7}, 999, "pricing-probe");
  (void)b;
  (void)ctx.parallelize(std::vector<int>{1, 2, 3}, 2).collect();
  EXPECT_EQ(ctx.report().total_broadcast_bytes(), 999u);
}

}  // namespace
}  // namespace yafim::fim
