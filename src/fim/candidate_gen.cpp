#include "fim/candidate_gen.h"

#include <algorithm>
#include <unordered_map>

#include "engine/work.h"
#include "obs/metrics.h"

namespace yafim::fim {

bool all_subsets_present(
    const Itemset& candidate,
    const std::unordered_map<Itemset, u64, ItemsetHash, ItemsetEq>& prev) {
  // Drop each position in turn; the two trailing drops are exactly the two
  // join parents, which are present by construction, but re-checking them
  // is cheap and keeps this function usable standalone.
  Itemset subset(candidate.size() - 1);
  for (size_t skip = 0; skip < candidate.size(); ++skip) {
    size_t w = 0;
    for (size_t i = 0; i < candidate.size(); ++i) {
      if (i != skip) subset[w++] = candidate[i];
    }
    engine::work::add(1);
    if (!prev.count(subset)) return false;
  }
  return true;
}

std::vector<Itemset> apriori_gen(const std::vector<Itemset>& prev_frequent,
                                 u32 k) {
  YAFIM_CHECK(k >= 2, "apriori_gen starts at k = 2");
  std::vector<Itemset> sorted = prev_frequent;
  for (const Itemset& s : sorted) {
    YAFIM_CHECK(s.size() == k - 1, "prev_frequent must be (k-1)-itemsets");
  }
  std::sort(sorted.begin(), sorted.end());

  std::unordered_map<Itemset, u64, ItemsetHash, ItemsetEq> prev_set;
  prev_set.reserve(sorted.size());
  for (const Itemset& s : sorted) prev_set.emplace(s, 1);

  std::vector<Itemset> candidates;
  u64 pruned = 0;
  // Self-join: a and b share their first k-2 items and a < b lexic.; since
  // `sorted` is lexicographic, the joinable partners of sorted[i] form a
  // contiguous run starting at i+1.
  for (size_t i = 0; i < sorted.size(); ++i) {
    for (size_t j = i + 1; j < sorted.size(); ++j) {
      engine::work::add(1);
      const Itemset& a = sorted[i];
      const Itemset& b = sorted[j];
      if (!std::equal(a.begin(), a.end() - 1, b.begin())) break;

      Itemset candidate = a;
      candidate.push_back(b.back());
      YAFIM_DCHECK(is_canonical(candidate), "join produced non-canonical set");
      if (k == 2 || all_subsets_present(candidate, prev_set)) {
        candidates.push_back(std::move(candidate));
      } else {
        ++pruned;
      }
    }
  }
  obs::count(obs::CounterId::kCandidatesGenerated, candidates.size());
  obs::count(obs::CounterId::kCandidatesPruned, pruned);
  // The join over a sorted input emits candidates in lexicographic order
  // already; assert instead of re-sorting.
  YAFIM_DCHECK(std::is_sorted(candidates.begin(), candidates.end()),
               "candidate output must be sorted");
  return candidates;
}

}  // namespace yafim::fim
