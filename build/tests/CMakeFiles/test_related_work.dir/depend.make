# Empty dependencies file for test_related_work.
# This may be replaced when dependencies are built.
