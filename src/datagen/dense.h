// Dense categorical dataset generator.
//
// The paper's MushRoom, Chess and Pumsb_star benchmarks are categorical
// datasets: every transaction has one value per attribute, so transactions
// all have the same length and the data is extremely dense -- the regime
// where Apriori's level-wise candidate explosion shows. We regenerate that
// shape with a latent-pattern model:
//
//   * each attribute a has a small value domain; a transaction normally
//     carries a skew-sampled value of every attribute;
//   * "planted" patterns (specific attribute=value combinations) are
//     embedded jointly with a given probability, which plants a frequent
//     itemset lattice of known depth at the benchmark's support threshold.
//
// The planted sets give the generator predictable mining depth (tested as a
// property: every subset of a planted pattern must be mined as frequent).
#pragma once

#include <vector>

#include "fim/dataset.h"
#include "util/common.h"

namespace yafim::datagen {

struct PlantedPattern {
  /// (attribute, value) pairs; values must be within the attribute domain.
  std::vector<std::pair<u32, u32>> cells;
  /// Probability a transaction carries the full pattern.
  double prob = 0.0;
};

struct DenseSpec {
  u64 num_transactions = 1000;
  /// Domain size of each attribute; item universe = sum of domains.
  std::vector<u32> attr_values;
  /// Zipf-like skew of the per-attribute value pick (higher = more skewed
  /// toward value 0; 1.0 = uniform).
  double value_skew = 2.0;
  std::vector<PlantedPattern> planted;
  u64 seed = 1;
};

/// Item id of attribute `a` taking value `v` under `spec`.
fim::Item dense_item(const DenseSpec& spec, u32 attribute, u32 value);

/// The itemset a planted pattern corresponds to.
fim::Itemset planted_itemset(const DenseSpec& spec, const PlantedPattern& p);

fim::TransactionDB generate_dense(const DenseSpec& spec);

}  // namespace yafim::datagen
