// The algorithm landscape of the paper's related work (§III), measured on
// one substrate: total simulated time, job/stage structure, and traffic
// for every parallel miner in the repository, on the same datasets.
//
//   k-phase MapReduce:  MRApriori (= SPC), FPC, DPC       [16, 17]
//   one-phase MapReduce: SON/PSON (2 jobs)                [15]
//   MapReduce hybrid:    BigFIM (k jobs + 1 Eclat job)    [24]
//   in-memory dataflow:  Dist-Eclat                       [24]
//                        YAFIM (this paper)
//
// All eight produce identical itemsets (CHECKed here, proven in tests).
#include "common.h"
#include "fim/apriori_seq.h"
#include "fim/big_fim.h"
#include "fim/dist_eclat.h"
#include "fim/pfp.h"
#include "fim/son.h"
#include "fim/spc_fpc_dpc.h"

using namespace yafim;
using namespace yafim::benchharness;

namespace {

struct Row {
  std::string algorithm;
  std::string family;
  double seconds = 0;
  u64 jobs_or_passes = 0;
  u64 shuffle_mb = 0;
  u64 broadcast_mb = 0;
};

template <typename MineFn>
Row measure(const char* name, const char* family,
            const fim::FrequentItemsets& reference, MineFn mine) {
  engine::Context ctx(
      engine::Context::Options{.cluster = sim::ClusterConfig::paper()});
  simfs::SimFS fs(ctx.cluster());
  const fim::MiningRun run = mine(ctx, fs);
  YAFIM_CHECK(run.itemsets.same_itemsets(reference),
              "engines disagree -- correctness bug");
  u32 jobs = 0;
  for (const auto& stage : ctx.report().stages()) {
    if (stage.fixed_overhead_s > 0) ++jobs;
  }
  Row row;
  row.algorithm = name;
  row.family = family;
  row.seconds = run.total_seconds();
  row.jobs_or_passes = jobs ? jobs : run.passes.size();
  row.shuffle_mb = ctx.report().total_shuffle_bytes() >> 20;
  row.broadcast_mb = ctx.report().total_broadcast_bytes() >> 20;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv, /*default_scale=*/0.5);

  std::printf("== Related-work algorithm landscape (12 nodes x 4 cores, "
              "scale=%.2f) ==\n",
              args.scale);
  std::printf("jobs = MR job startups paid (passes for pure-dataflow "
              "miners)\n\n");

  std::vector<datagen::BenchmarkDataset> benches;
  benches.push_back(datagen::make_mushroom(args.scale));
  benches.push_back(datagen::make_medical(args.scale));

  for (const auto& bench : benches) {
    const double sup = bench.paper_min_support;
    fim::AprioriOptions ref_opt;
    ref_opt.min_support = sup;
    const auto reference = fim::apriori_mine(bench.db, ref_opt).itemsets;

    std::printf("%s: Sup = %s, %llu frequent itemsets, depth %u\n",
                bench.name.c_str(), support_pct(sup).c_str(),
                (unsigned long long)reference.total(), reference.max_k());
    Table table({"algorithm", "family", "jobs", "shuffle MB", "bcast MB",
                 "total(s)", "vs YAFIM"});

    std::vector<Row> rows;
    rows.push_back(measure("YAFIM", "Spark RDD", reference,
                           [&](auto& ctx, auto& fs) {
                             fim::YafimOptions opt;
                             opt.min_support = sup;
                             return fim::yafim_mine(ctx, fs, bench.db, opt);
                           }));
    rows.push_back(measure("PFP (MLlib's)", "Spark RDD", reference,
                           [&](auto& ctx, auto& fs) {
                             fim::PfpOptions opt;
                             opt.min_support = sup;
                             return fim::pfp_mine(ctx, fs, bench.db, opt).run;
                           }));
    rows.push_back(measure("Dist-Eclat", "Spark RDD", reference,
                           [&](auto& ctx, auto& fs) {
                             fim::DistEclatOptions opt;
                             opt.min_support = sup;
                             return fim::dist_eclat_mine(ctx, fs, bench.db,
                                                         opt)
                                 .run;
                           }));
    rows.push_back(measure("MRApriori/SPC", "k-phase MR", reference,
                           [&](auto& ctx, auto& fs) {
                             fim::MrAprioriOptions opt;
                             opt.min_support = sup;
                             return fim::mr_apriori_mine(ctx, fs, bench.db,
                                                         opt);
                           }));
    rows.push_back(measure("FPC", "k-phase MR", reference,
                           [&](auto& ctx, auto& fs) {
                             fim::LinOptions opt;
                             opt.min_support = sup;
                             opt.strategy =
                                 fim::CombineStrategy::kFixedPasses;
                             return fim::lin_mine(ctx, fs, bench.db, opt).run;
                           }));
    rows.push_back(measure("DPC", "k-phase MR", reference,
                           [&](auto& ctx, auto& fs) {
                             fim::LinOptions opt;
                             opt.min_support = sup;
                             opt.strategy = fim::CombineStrategy::kDynamic;
                             return fim::lin_mine(ctx, fs, bench.db, opt).run;
                           }));
    rows.push_back(measure("SON/PSON", "one-phase MR", reference,
                           [&](auto& ctx, auto& fs) {
                             fim::SonOptions opt;
                             opt.min_support = sup;
                             return fim::son_mine(ctx, fs, bench.db, opt).run;
                           }));
    rows.push_back(measure("BigFIM", "hybrid MR", reference,
                           [&](auto& ctx, auto& fs) {
                             fim::BigFimOptions opt;
                             opt.min_support = sup;
                             return fim::big_fim_mine(ctx, fs, bench.db, opt)
                                 .run;
                           }));

    const double yafim_s = rows[0].seconds;
    for (const Row& row : rows) {
      table.add_row({row.algorithm, row.family,
                     Table::num(row.jobs_or_passes),
                     Table::num(row.shuffle_mb),
                     Table::num(row.broadcast_mb), Table::num(row.seconds),
                     Table::num(row.seconds / yafim_s, 2) + "x"});
    }
    print_table(table, args);
    std::printf("\n");
  }
  return 0;
}
