file(REMOVE_RECURSE
  "CMakeFiles/test_candidate_gen.dir/test_candidate_gen.cpp.o"
  "CMakeFiles/test_candidate_gen.dir/test_candidate_gen.cpp.o.d"
  "test_candidate_gen"
  "test_candidate_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_candidate_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
