
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_related_work.cpp" "tests/CMakeFiles/test_related_work.dir/test_related_work.cpp.o" "gcc" "tests/CMakeFiles/test_related_work.dir/test_related_work.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/yafim_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yafim_fim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yafim_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yafim_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yafim_simfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yafim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yafim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
