// Batch-boundary snapshots for the streaming miner, through the YFCK
// checkpoint machinery (fim/checkpoint.h).
//
// Same store interface and the same codec discipline as the per-pass miner
// snapshots -- magic, version, fingerprint, trailing XXH64 validated before
// any parsing -- but a distinct version (2) and its own record layout: a
// streaming snapshot carries running supports and the hysteresis frontier
// rather than completed Apriori levels, plus the backpressure knobs and
// per-batch statistics. The fingerprint folds in the window/batch
// parameters and broadcast mode, so a snapshot taken under one streaming
// configuration never resumes a different one.
//
// Recovery invariant: a snapshot is written exactly at a batch boundary
// (after merge + reverify of batch b, before ingest of b+1), so restoring
// it and replaying the source to `source_offset` reconstructs the precise
// driver state the uninterrupted run had at that boundary. Mid-batch kills
// replay the whole batch from the previous boundary -- per-batch work is
// deterministic, so the replay is bit-identical and exactly-once at the
// granularity of observable state.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "fim/checkpoint.h"
#include "fim/itemset.h"
#include "util/common.h"

namespace yafim::stream {

inline constexpr u32 kStreamSnapshotVersion = 2;

/// Per-batch accounting, persisted so a resumed run reports the same
/// series as the uninterrupted one.
struct StreamBatchStats {
  u64 batch = 0;            ///< 1-based batch index
  u64 transactions = 0;     ///< transactions ingested this batch
  u64 new_candidates = 0;   ///< candidates re-verified over full history
  u32 window_factor = 1;    ///< effective window factor during the batch
  double sim_seconds = 0.0; ///< simulated mining latency of the batch
};

/// Everything the streaming miner needs to continue after batch `batch`.
struct StreamCheckpointState {
  u64 fingerprint = 0;
  u64 batch = 0;          ///< last completed batch (1-based)
  u64 source_offset = 0;  ///< absolute transactions ingested so far

  u64 total_transactions = 0;
  u64 min_support_count = 0;

  // Backpressure controller state + lifetime stats.
  u32 window_factor = 1;
  double reverify_slack = 0.0;
  u64 widenings = 0;
  u64 slack_raises = 0;
  u64 reverifications = 0;

  /// Running exact supports: every item ever seen, and every k>=2 itemset
  /// currently tracked (in the candidate universe).
  std::vector<std::pair<fim::Itemset, u64>> supports;
  /// Hysteresis frontier: itemsets currently counted as frequent.
  std::vector<fim::Itemset> frontier;

  std::vector<StreamBatchStats> batches;
};

/// Canonical snapshot name for batch b ("batch-000012.ck"). Zero-padded so
/// lexicographic order is batch order, like the per-pass names.
std::string stream_snapshot_name(u64 batch);

/// Serialize (versioned, checksummed, deterministic bytes).
std::vector<u8> encode_stream_snapshot(const StreamCheckpointState& state);

/// Parse and validate; nullopt on damage, foreign version, or fingerprint
/// mismatch -- never a partial state.
std::optional<StreamCheckpointState> decode_stream_snapshot(
    std::span<const u8> bytes, u64 expected_fingerprint);

/// Persist under stream_snapshot_name(state.batch).
void save_stream_snapshot(fim::CheckpointStore& store,
                          const StreamCheckpointState& state);

/// Newest valid snapshot, probing from the highest batch down; damaged or
/// mismatched snapshots are counted into `*rejected` and skipped.
std::optional<StreamCheckpointState> load_latest_stream_snapshot(
    fim::CheckpointStore& store, u64 expected_fingerprint,
    u32* rejected = nullptr);

}  // namespace yafim::stream
