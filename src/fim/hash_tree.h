// The candidate hash tree of Agrawal & Srikant's Apriori, which the paper
// builds over Ck and broadcasts to all workers each iteration to speed up
// subset(Ck, t) (Fig. 2, Algorithm 3).
//
// Interior nodes at depth d hash a transaction item (item % branching) to a
// child; leaves hold buckets of candidate ids. Enumerating the candidates
// contained in a transaction walks every path the transaction's items can
// take and containment-checks the reached leaves, visiting each leaf at most
// once per transaction (stamp-based dedup in Probe).
#pragma once

#include <vector>

#include "engine/work.h"
#include "fim/itemset.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace yafim::fim {

/// How the per-pass counting stage keys its shuffle (shared by both
/// miners; see DESIGN "counting data structures").
enum class CountMode {
  /// Paper-faithful: shuffle keyed on full Itemset vectors.
  kItemsetKey,
  /// Dense: count into fixed-width arrays indexed by candidate id
  /// (tree-local index + the tree's batch-global id offset); itemsets are
  /// materialized from the broadcast tree only for MinSup survivors.
  kCandidateId,
};

inline const char* count_mode_name(CountMode mode) {
  return mode == CountMode::kItemsetKey ? "itemset_key" : "candidate_id";
}

/// Deterministic hash for dense candidate ids (std::hash<u32> is
/// implementation-defined; shuffle partitioning must not depend on it).
struct DenseIdHash {
  size_t operator()(u32 id) const {
    return static_cast<size_t>(mix64(u64{id} + 0x9e3779b97f4a7c15ULL));
  }
};

class HashTree {
 public:
  /// All candidates must be canonical and of equal size k >= 1.
  /// `branching` is the interior fan-out (0 = auto-size from the candidate
  /// count, see default_branching()); `leaf_capacity` the bucket size that
  /// triggers a split (leaves at depth k never split).
  explicit HashTree(std::vector<Itemset> candidates, u32 branching = 0,
                    u32 leaf_capacity = 16);

  /// Fan-out that keeps depth-k leaves near leaf-capacity occupancy:
  /// roughly 2 * n^(1/k), clamped to [8, 1024]. With a fixed small fan-out
  /// a large C2 degenerates to huge leaves that every probe has to scan.
  static u32 default_branching(u64 num_candidates, u32 k);

  u32 k() const { return k_; }
  u32 size() const { return static_cast<u32>(candidates_.size()); }
  u32 num_leaves() const { return num_leaves_; }
  u32 num_nodes() const { return static_cast<u32>(nodes_.size()); }

  const Itemset& candidate(u32 idx) const { return candidates_[idx]; }
  const std::vector<Itemset>& candidates() const { return candidates_; }

  /// Batch-global id base for this tree's candidates: when several levels
  /// are counted in one pass (combine_passes), tree-local index `ci` maps
  /// to global id `id_offset() + ci` in the shared counting array.
  u64 id_offset() const { return id_offset_; }
  void set_id_offset(u64 offset) { id_offset_ = offset; }

  /// Assign consecutive id ranges to a batch of trees (offset of tree i =
  /// sum of sizes of trees 0..i-1) and return the total id-space width.
  static u64 assign_id_offsets(std::vector<HashTree>& trees) {
    u64 offset = 0;
    for (HashTree& tree : trees) {
      tree.set_id_offset(offset);
      offset += tree.size();
    }
    return offset;
  }

  /// Estimated wire size when broadcast to workers (candidate payload plus
  /// node structure).
  u64 serialized_bytes() const;

  /// Per-thread scratch for containment enumeration. Reusable across
  /// probes and across trees; never share one Probe between threads.
  /// The visit counters are probe-local running totals, flushed to the obs
  /// counter registry once per probed transaction (one relaxed atomic add
  /// instead of one per node) when tracing is enabled.
  struct Probe {
    std::vector<u64> leaf_stamp;
    u64 counter = 0;
    u64 nodes_visited = 0;
    u64 candidate_checks = 0;
  };

  /// Invoke fn(candidate_id) once for every candidate contained in `t`.
  /// Adds engine work units for every node visit and candidate check, so
  /// stage task costs reflect real probe effort.
  template <typename Fn>
  void for_each_contained(const Transaction& t, Probe& probe, Fn&& fn) const {
    if (candidates_.empty() || t.size() < k_) return;
    ++probe.counter;
    if (probe.leaf_stamp.size() < num_leaves_) {
      probe.leaf_stamp.resize(num_leaves_, 0);
    }
    const u64 nodes_before = probe.nodes_visited;
    const u64 checks_before = probe.candidate_checks;
    walk(kRoot, t, 0, 0, probe, fn);
    if (obs::enabled()) {
      obs::count(obs::CounterId::kHashTreeNodesVisited,
                 probe.nodes_visited - nodes_before);
      obs::count(obs::CounterId::kHashTreeCandChecks,
                 probe.candidate_checks - checks_before);
    }
  }

  /// Reference containment enumeration without the tree (linear scan over
  /// all candidates); the property tests check the tree against this.
  template <typename Fn>
  void for_each_contained_linear(const Transaction& t, Fn&& fn) const {
    for (u32 i = 0; i < candidates_.size(); ++i) {
      engine::work::add(1);
      if (contains_all(t, candidates_[i])) fn(i);
    }
    obs::count(obs::CounterId::kHashTreeCandChecks, candidates_.size());
  }

 private:
  static constexpr u32 kNone = 0xffffffffu;
  static constexpr u32 kRoot = 0;

  struct Node {
    bool leaf = true;
    /// Dense leaf numbering used by Probe stamps (leaves only).
    u32 leaf_id = 0;
    /// Candidate ids (leaves only).
    std::vector<u32> bucket;
    /// Child node indices, `branching` entries (interior only).
    std::vector<u32> children;
  };

  u32 child_slot(Item item) const { return item % branching_; }
  void insert(u32 candidate_id, u32 depth_hint);
  void split(u32 node_idx, u32 depth);
  void assign_leaf_ids();

  template <typename Fn>
  void walk(u32 node_idx, const Transaction& t, size_t pos, u32 depth,
            Probe& probe, Fn& fn) const {
    const Node& node = nodes_[node_idx];
    engine::work::add(1);
    ++probe.nodes_visited;
    if (node.leaf) {
      if (probe.leaf_stamp[node.leaf_id] == probe.counter) return;
      probe.leaf_stamp[node.leaf_id] = probe.counter;
      for (u32 ci : node.bucket) {
        engine::work::add(1);
        ++probe.candidate_checks;
        if (contains_all(t, candidates_[ci])) fn(ci);
      }
      return;
    }
    // Choose the next transaction item; keep enough items in reserve to
    // complete a k-path (candidates have exactly k items).
    const size_t remaining_needed = k_ - depth;
    for (size_t i = pos; i + remaining_needed <= t.size(); ++i) {
      const u32 child = node.children[child_slot(t[i])];
      if (child != kNone) walk(child, t, i + 1, depth + 1, probe, fn);
    }
  }

  std::vector<Itemset> candidates_;
  u64 id_offset_ = 0;
  u32 k_ = 0;
  u32 branching_ = 8;
  u32 leaf_capacity_ = 16;
  u32 num_leaves_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace yafim::fim
