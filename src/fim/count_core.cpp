#include "fim/count_core.h"

#include <algorithm>

#include "engine/broadcast.h"
#include "obs/metrics.h"
#include "sim/metrics.h"

namespace yafim::fim {

namespace {

/// Identity hash for shard ids, so shard s deterministically lands in
/// reduce partition s of the routing shuffle (shard -> executor placement).
struct ShardIdHash {
  size_t operator()(u32 shard) const { return shard; }
};

}  // namespace

std::vector<CountPair> count_candidate_trees(
    engine::Context& ctx, engine::RDD<Transaction>& transactions,
    const std::shared_ptr<std::vector<HashTree>>& trees, u64 tree_bytes,
    u64 id_space, std::optional<engine::RDD<VerticalBitmapIndex>>* vertical,
    const CountCoreOptions& opt) {
  const bool use_hash_tree = opt.use_hash_tree;
  const u64 min_count = opt.min_count;
  const std::string& pass_name = opt.pass_name;
  const u32 pass = ctx.pass();

  std::vector<CountPair> level;
  if (!opt.partitioned && opt.count_mode == CountMode::kItemsetKey) {
    // Paper-faithful: every hit copies the itemset out of the tree and
    // the shuffle is keyed on it.
    auto broadcast_trees =
        ctx.broadcast(trees, tree_bytes, pass_name + ":trees");
    level =
        transactions
            .flat_map([broadcast_trees, use_hash_tree](const Transaction& t) {
              std::vector<Itemset> occurrences;
              for (const HashTree& tree : **broadcast_trees) {
                auto on_hit = [&](u32 ci) {
                  occurrences.push_back(tree.candidate(ci));
                };
                if (use_hash_tree) {
                  static thread_local HashTree::Probe probe;
                  tree.for_each_contained(t, probe, on_hit);
                } else {
                  tree.for_each_contained_linear(t, on_hit);
                }
              }
              return occurrences;
            })
            .map([](const Itemset& c) { return CountPair(c, 1); })
            .reduce_by_key([](u64 a, u64 b) { return a + b; }, 0,
                           ItemsetHash{}, pass_name + ":count")
            .named(pass_name + ":counts")
            .filter([min_count](const CountPair& kv) {
              return kv.second >= min_count;
            })
            .named(pass_name + ":frequent")
            .collect(pass_name + ":collect");
    return level;
  }

  // All dense paths count into one id-indexed array per partition, merge
  // the arrays element-wise across the shuffle, and materialize itemsets
  // from the driver-side trees only for MinSup survivors.
  std::vector<u64> counts;
  if (opt.partitioned) {
    // Partitioned candidate store: the trees are sharded by candidate
    // prefix and each shard is shipped to one executor group; transactions
    // are re-partitioned to the shards their viable prefix items reach.
    // Shard probes write the same batch-global dense cells a broadcast
    // probe would, so the merged counts -- and everything downstream -- are
    // bit-identical to the full path.
    ctx.linter().note_broadcast_fallback(tree_bytes, pass_name + ":trees");
    ctx.memory_budget().note_fallback(tree_bytes);
    const u32 nshards = std::max<u32>(
        1, opt.broadcast_shards ? opt.broadcast_shards
                                : ctx.default_partitions());
    engine::work::Scope shard_scope;
    auto store = std::make_shared<std::vector<std::vector<TreeShard>>>(nshards);
    u64 shard_bytes = 0;
    for (const HashTree& tree : *trees) {
      std::vector<TreeShard> shards =
          shard_hash_tree(tree, nshards, opt.branching, opt.leaf_capacity);
      for (u32 s = 0; s < nshards; ++s) {
        shard_bytes += shards[s].tree.serialized_bytes();
        (*store)[s].push_back(std::move(shards[s]));
      }
    }
    {
      // Each shard travels to one executor group instead of every node:
      // priced as a shuffle of the shard trees, not a broadcast.
      sim::StageRecord dist;
      dist.label = pass_name + ":shard-trees";
      dist.kind = sim::StageKind::kSparkStage;
      dist.pass = pass;
      dist.driver_work = shard_scope.measured();
      dist.shuffle_bytes = shard_bytes;
      ctx.record(std::move(dist));
      obs::count(obs::CounterId::kShardShuffleBytes, shard_bytes);
    }
    const u32 kmin = opt.kmin;  // smallest candidate size in this batch
    counts =
        transactions
            .flat_map([nshards, kmin](const Transaction& t) {
              // Any candidate c contained in t has its first item at some
              // t[i] with at least |c|-1 items after it; route t once to
              // each distinct shard of those prefix items.
              std::vector<std::pair<u32, Transaction>> out;
              if (t.size() >= kmin) {
                std::vector<u8> seen(nshards, 0);
                for (size_t i = 0; i + kmin <= t.size(); ++i) {
                  const u32 s = candidate_shard(t[i], nshards);
                  if (!seen[s]) {
                    seen[s] = 1;
                    out.emplace_back(s, t);
                  }
                }
              }
              return out;
            })
            .named(pass_name + ":route")
            .group_by_key(nshards, ShardIdHash{}, pass_name + ":route")
            .map_partitions(
                [store, use_hash_tree, id_space](
                    const std::vector<
                        std::pair<u32, std::vector<Transaction>>>& part) {
                  std::vector<u64> acc(id_space, 0);
                  for (const auto& [shard, txns] : part) {
                    for (const TreeShard& ts : (*store)[shard]) {
                      const std::vector<u64>& ids = ts.global_ids;
                      auto on_hit = [&acc, &ids](u32 ci) { ++acc[ids[ci]]; };
                      for (const Transaction& t : txns) {
                        if (use_hash_tree) {
                          static thread_local HashTree::Probe probe;
                          ts.tree.for_each_contained(t, probe, on_hit);
                        } else {
                          ts.tree.for_each_contained_linear(t, on_hit);
                        }
                      }
                    }
                  }
                  std::vector<std::vector<u64>> out;
                  out.push_back(std::move(acc));
                  return out;
                })
            .named(pass_name + ":shard-count")
            .sum_arrays(id_space, pass_name + ":count");
  } else if (opt.count_mode == CountMode::kCandidateId) {
    // Dense probing: per-transaction hash-tree walks, no per-hit itemset
    // copies.
    auto broadcast_trees =
        ctx.broadcast(trees, tree_bytes, pass_name + ":trees");
    counts =
        transactions
            .map_partitions([broadcast_trees, use_hash_tree, id_space](
                                const std::vector<Transaction>& part) {
              std::vector<u64> acc(id_space, 0);
              for (const Transaction& t : part) {
                for (const HashTree& tree : **broadcast_trees) {
                  u64* cells = acc.data() + tree.id_offset();
                  auto on_hit = [cells](u32 ci) { ++cells[ci]; };
                  if (use_hash_tree) {
                    static thread_local HashTree::Probe probe;
                    tree.for_each_contained(t, probe, on_hit);
                  } else {
                    tree.for_each_contained_linear(t, on_hit);
                  }
                }
              }
              std::vector<std::vector<u64>> out;
              out.push_back(std::move(acc));
              return out;
            })
            .sum_arrays(id_space, pass_name + ":count");
  } else {
    // Vertical: no per-transaction work at all -- each partition's cached
    // bitmap index answers every candidate with a word-parallel AND +
    // popcount over its item rows.
    YAFIM_CHECK(vertical && vertical->has_value(),
                "vertical bitmap mode needs the per-partition index RDD");
    auto broadcast_trees =
        ctx.broadcast(trees, tree_bytes, pass_name + ":trees");
    counts =
        (*vertical)
            ->map_partitions(
                [broadcast_trees,
                 id_space](const std::vector<VerticalBitmapIndex>& part) {
                  std::vector<u64> acc(id_space, 0);
                  for (const VerticalBitmapIndex& index : part) {
                    for (const HashTree& tree : **broadcast_trees) {
                      index.count_candidates(tree,
                                             acc.data() + tree.id_offset());
                    }
                  }
                  std::vector<std::vector<u64>> out;
                  out.push_back(std::move(acc));
                  return out;
                })
            .sum_arrays(id_space, pass_name + ":count");
  }

  engine::work::Scope mat_scope;
  level.clear();
  for (const HashTree& tree : *trees) {
    const u64 base = tree.id_offset();
    for (u32 ci = 0; ci < tree.size(); ++ci) {
      engine::work::add(1);
      const u64 support = counts[base + ci];
      if (support >= min_count) {
        level.emplace_back(tree.candidate(ci), support);
      }
    }
  }
  sim::StageRecord mat;
  mat.label = pass_name + ":materialize";
  mat.kind = sim::StageKind::kOverhead;
  mat.pass = pass;
  mat.driver_work = mat_scope.measured();
  ctx.record(std::move(mat));
  return level;
}

}  // namespace yafim::fim
