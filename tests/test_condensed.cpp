// Tests for closed/maximal itemset post-processing.
#include <gtest/gtest.h>

#include "fim/apriori_seq.h"
#include "fim/condensed.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

/// 6 transactions; classic tiny lattice.
FrequentItemsets mined_sample() {
  // D = { {1,2,3} x3, {1,2} x2, {3} x1 }, MinSup = 2.
  TransactionDB db({{1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2}, {1, 2}, {3}});
  AprioriOptions opt;
  opt.min_support = 2.0 / 6.0;
  return apriori_mine(db, opt).itemsets;
}

TEST(Condensed, ClosedSetsOfSample) {
  const auto all = mined_sample();
  // sup: {1}=5 {2}=5 {3}=4 {1,2}=5 {1,3}=3 {2,3}=3 {1,2,3}=3.
  ASSERT_EQ(all.total(), 7u);
  const auto closed = closed_itemsets(all);
  // {1} and {2} are absorbed by {1,2} (same support 5); {1,3}, {2,3}
  // by {1,2,3} (support 3). Closed: {3}, {1,2}, {1,2,3}.
  EXPECT_EQ(closed.total(), 3u);
  EXPECT_TRUE(closed.contains({3}));
  EXPECT_TRUE(closed.contains({1, 2}));
  EXPECT_TRUE(closed.contains({1, 2, 3}));
  EXPECT_EQ(closed.support_of({1, 2}), 5u);
}

TEST(Condensed, MaximalSetsOfSample) {
  const auto all = mined_sample();
  const auto maximal = maximal_itemsets(all);
  EXPECT_EQ(maximal.total(), 1u);
  EXPECT_TRUE(maximal.contains({1, 2, 3}));
}

TEST(Condensed, MaximalSubsetOfClosedSubsetOfAll) {
  Rng rng(8);
  std::vector<Transaction> tx;
  for (int i = 0; i < 200; ++i) {
    Transaction t;
    for (u32 item = 0; item < 12; ++item) {
      if (rng.bernoulli(0.45)) t.push_back(item);
    }
    if (t.empty()) t.push_back(0);
    tx.push_back(std::move(t));
  }
  TransactionDB db(std::move(tx));
  AprioriOptions opt;
  opt.min_support = 0.2;
  const auto all = apriori_mine(db, opt).itemsets;
  const auto closed = closed_itemsets(all);
  const auto maximal = maximal_itemsets(all);

  EXPECT_LE(maximal.total(), closed.total());
  EXPECT_LE(closed.total(), all.total());
  EXPECT_GT(maximal.total(), 0u);

  // Every maximal set is closed (a frequent superset with equal support
  // would in particular be a frequent superset).
  for (const auto& [itemset, support] : maximal.sorted()) {
    EXPECT_EQ(closed.support_of(itemset), support) << to_string(itemset);
  }
  // Every closed set keeps its original support.
  for (const auto& [itemset, support] : closed.sorted()) {
    EXPECT_EQ(all.support_of(itemset), support);
  }
}

TEST(Condensed, ClosednessVerifiedAgainstDefinition) {
  Rng rng(15);
  std::vector<Transaction> tx;
  for (int i = 0; i < 120; ++i) {
    Transaction t;
    for (u32 item = 0; item < 9; ++item) {
      if (rng.bernoulli(0.5)) t.push_back(item);
    }
    if (t.empty()) t.push_back(0);
    tx.push_back(std::move(t));
  }
  TransactionDB db(std::move(tx));
  AprioriOptions opt;
  opt.min_support = 0.25;
  const auto all = apriori_mine(db, opt).itemsets;
  const auto closed = closed_itemsets(all);
  const auto maximal = maximal_itemsets(all);

  // Definition check against the full collection, per itemset.
  for (const auto& [itemset, support] : all.sorted()) {
    bool superset_same_support = false;
    bool superset_frequent = false;
    for (const auto& [other, other_support] : all.sorted()) {
      if (other.size() <= itemset.size()) continue;
      if (!contains_all(other, itemset)) continue;
      superset_frequent = true;
      if (other_support == support) superset_same_support = true;
    }
    EXPECT_EQ(closed.contains(itemset), !superset_same_support)
        << to_string(itemset);
    EXPECT_EQ(maximal.contains(itemset), !superset_frequent)
        << to_string(itemset);
  }
}

TEST(Condensed, SingleLevelInputIsAllClosedAndMaximal) {
  FrequentItemsets all(1, 10);
  all.add({1}, 4);
  all.add({2}, 7);
  EXPECT_EQ(closed_itemsets(all).total(), 2u);
  EXPECT_EQ(maximal_itemsets(all).total(), 2u);
}

TEST(Condensed, EmptyInput) {
  FrequentItemsets all(1, 10);
  EXPECT_EQ(closed_itemsets(all).total(), 0u);
  EXPECT_EQ(maximal_itemsets(all).total(), 0u);
}

}  // namespace
}  // namespace yafim::fim
