#include "obs/metrics.h"

#include <map>
#include <memory>

#include "util/thread_annotations.h"

namespace yafim::obs {

const char* counter_name(CounterId id) {
  switch (id) {
    case CounterId::kShuffleBytes: return "shuffle.bytes";
    case CounterId::kBroadcastBytes: return "broadcast.bytes";
    case CounterId::kNaiveShipBytes: return "naive_ship.bytes";
    case CounterId::kDfsReadBytes: return "dfs.read_bytes";
    case CounterId::kDfsWriteBytes: return "dfs.write_bytes";
    case CounterId::kCacheHits: return "cache.hits";
    case CounterId::kCacheMisses: return "cache.misses";
    case CounterId::kLineageRecomputes: return "lineage.recomputes";
    case CounterId::kFaultPartitionsDropped: return "fault.partitions_dropped";
    case CounterId::kTaskFailuresInjected: return "fault.task_failures";
    case CounterId::kTaskRetries: return "fault.task_retries";
    case CounterId::kStageRetries: return "fault.stage_retries";
    case CounterId::kStragglersInjected: return "fault.stragglers";
    case CounterId::kSpeculativeLaunches: return "speculation.launches";
    case CounterId::kSpeculativeWins: return "speculation.wins";
    case CounterId::kSpeculativeLosses: return "speculation.losses";
    case CounterId::kCacheEvictions: return "cache.evictions";
    case CounterId::kCacheEvictedBytes: return "cache.evicted_bytes";
    case CounterId::kNodesBlacklisted: return "fault.nodes_blacklisted";
    case CounterId::kPoolTasks: return "pool.tasks";
    case CounterId::kPoolQueueWaitUs: return "pool.queue_wait_us";
    case CounterId::kPoolTaskRunUs: return "pool.task_run_us";
    case CounterId::kHashTreeNodesVisited: return "hash_tree.nodes_visited";
    case CounterId::kHashTreeCandChecks: return "hash_tree.candidate_checks";
    case CounterId::kCandidatesGenerated: return "candidates.generated";
    case CounterId::kCandidatesPruned: return "candidates.pruned";
    case CounterId::kBlocksVerified: return "integrity.blocks_verified";
    case CounterId::kBlocksCorrupt: return "integrity.blocks_corrupt";
    case CounterId::kCorruptRepairedReplica:
      return "integrity.repaired_by_replica";
    case CounterId::kCorruptRepairedLineage:
      return "integrity.repaired_by_lineage";
    case CounterId::kCheckpointsWritten: return "checkpoint.written";
    case CounterId::kCheckpointBytesWritten: return "checkpoint.bytes_written";
    case CounterId::kCheckpointsRejected: return "checkpoint.rejected";
    case CounterId::kCheckpointPassesSkipped:
      return "checkpoint.passes_skipped";
    case CounterId::kArrayReduceBytes: return "array_reduce.bytes";
    case CounterId::kArrayReduceCells: return "array_reduce.cells";
    case CounterId::kLintUncachedReuse: return "lint.uncached_reuse";
    case CounterId::kLintBroadcastOverMem:
      return "lint.broadcast_over_memory";
    case CounterId::kLintDeadCache: return "lint.dead_cache";
    case CounterId::kLintFilterPushdown: return "lint.filter_pushdown";
    case CounterId::kLintDeepLineage: return "lint.deep_lineage";
    case CounterId::kBitmapIndexBytes: return "bitmap.index_bytes";
    case CounterId::kBitmapAndWords: return "bitmap.and_words";
    case CounterId::kBitmapPopcounts: return "bitmap.popcounts";
    case CounterId::kBroadcastFallbacks: return "broadcast.fallbacks";
    case CounterId::kShardShuffleBytes: return "shard.shuffle_bytes";
    case CounterId::kSpillBlocksWritten: return "spill.blocks_written";
    case CounterId::kSpillBytesRaw: return "spill.bytes_raw";
    case CounterId::kSpillBytesStored: return "spill.bytes_stored";
    case CounterId::kSpillBlocksRead: return "spill.blocks_read";
    case CounterId::kMemShrinksApplied: return "fault.mem_shrinks";
    case CounterId::kStreamBatches: return "stream.batches";
    case CounterId::kStreamTransactions: return "stream.transactions";
    case CounterId::kStreamReverifications: return "stream.reverifications";
    case CounterId::kStreamReverifyDeferred:
      return "stream.reverify_deferred";
    case CounterId::kStreamWindowWidenings: return "stream.window_widenings";
    case CounterId::kStreamSlackRaises: return "stream.slack_raises";
    case CounterId::kLintStreamBackpressure:
      return "lint.stream_backpressure";
    case CounterId::kDetsanTasksReplayed: return "detsan.tasks_replayed";
    case CounterId::kDetsanDivergences: return "detsan.divergences";
    case CounterId::kNumCounters: break;
  }
  return "unknown";
}

struct CounterRegistry::Impl {
  Counter well_known[static_cast<u32>(CounterId::kNumCounters)];
  // Guards the map's *shape* only; Counter values are atomics and the
  // unique_ptrs are never reseated, so references escape the lock safely.
  mutable util::Mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> named
      YAFIM_GUARDED_BY(mutex);
};

CounterRegistry::CounterRegistry() : impl_(new Impl) {}

CounterRegistry& CounterRegistry::instance() {
  // Leaked singleton: counter references must outlive every user, including
  // static-destruction-order stragglers.
  static CounterRegistry* registry = new CounterRegistry();
  return *registry;
}

Counter& CounterRegistry::at(CounterId id) {
  YAFIM_DCHECK(id < CounterId::kNumCounters, "bad counter id");
  return impl_->well_known[static_cast<u32>(id)];
}

Counter& CounterRegistry::get(const std::string& name) {
  util::MutexLock lock(impl_->mutex);
  auto& slot = impl_->named[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

std::vector<std::pair<std::string, u64>> CounterRegistry::snapshot() const {
  std::vector<std::pair<std::string, u64>> out;
  for (u32 i = 0; i < static_cast<u32>(CounterId::kNumCounters); ++i) {
    out.emplace_back(counter_name(static_cast<CounterId>(i)),
                     impl_->well_known[i].value());
  }
  util::MutexLock lock(impl_->mutex);
  for (const auto& [name, counter] : impl_->named) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

void CounterRegistry::reset_all() {
  for (Counter& c : impl_->well_known) c.reset();
  util::MutexLock lock(impl_->mutex);
  for (auto& [name, counter] : impl_->named) counter->reset();
}

}  // namespace yafim::obs
