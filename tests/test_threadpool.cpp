// Unit tests for the host thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "engine/accumulator.h"
#include "engine/rdd.h"
#include "engine/thread_pool.h"
#include "engine/work.h"

namespace yafim::engine {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(257, [&](u32 i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasks) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](u32) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ExceptionPropagatesThroughParallelFor) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](u32 i) {
                                   if (i == 3) throw std::logic_error("x");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForDrainsAllTasksBeforeRethrow) {
  // Regression: parallel_for used to rethrow on the FIRST failed future,
  // unwinding its frame while later queued tasks still held references to
  // the callable and the caller's locals (use-after-free under load).
  // Task 0 throws immediately; every other task must still run and see the
  // caller's state intact before the exception surfaces.
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<u32> ran{0};
    auto sentinel = std::make_shared<int>(42);
    try {
      pool.parallel_for(64, [&ran, &sentinel](u32 i) {
        if (i == 0) throw std::runtime_error("first task dies");
        EXPECT_EQ(*sentinel, 42);
        ran.fetch_add(1);
      });
      FAIL() << "expected the task 0 exception";
    } catch (const std::runtime_error&) {
    }
    EXPECT_EQ(ran.load(), 63u);
  }
}

TEST(ThreadPool, OnPoolThreadFlag) {
  ThreadPool pool(2);
  EXPECT_FALSE(ThreadPool::on_pool_thread());
  std::atomic<bool> inside{false};
  pool.submit([&] { inside = ThreadPool::on_pool_thread(); }).get();
  EXPECT_TRUE(inside.load());
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor must wait for queued work
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ShutdownWithTasksStillQueued) {
  // Unlike DrainsQueueOnDestruction, the first task blocks until the
  // destructor has started, guaranteeing the queue is non-empty when
  // stopping_ is raised: shutdown must still run every queued task, and the
  // workers' stop-check must not race the drain (TSan covers this file).
  std::atomic<int> counter{0};
  std::atomic<bool> tearing_down{false};
  {
    ThreadPool pool(1);
    pool.submit([&] {
      while (!tearing_down.load()) std::this_thread::yield();
    });
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    tearing_down.store(true);
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, UsableAfterParallelForException) {
  // An exception escaping parallel_for must leave the pool consistent:
  // later parallel_for and submit calls run normally on the same workers.
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](u32 i) {
                                   if (i % 4 == 0) {
                                     throw std::runtime_error("task dies");
                                   }
                                 }),
               std::runtime_error);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](u32 i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); }).get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(Accumulator, SingleThreaded) {
  Accumulator acc;
  EXPECT_EQ(acc.value(), 0u);
  acc.add(5);
  acc.add(7);
  EXPECT_EQ(acc.value(), 12u);
  acc.reset();
  EXPECT_EQ(acc.value(), 0u);
}

TEST(Accumulator, ConcurrentAddsAreExact) {
  Accumulator acc;
  ThreadPool pool(8);
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 10000;
  pool.parallel_for(kTasks, [&](u32) {
    for (int i = 0; i < kAddsPerTask; ++i) acc.add(1);
  });
  EXPECT_EQ(acc.value(), u64{kTasks} * kAddsPerTask);
}

TEST(Accumulator, UsableFromRddTasks) {
  Accumulator pruned;
  Context ctx{[] {
    Context::Options opts;
    opts.cluster = sim::ClusterConfig::with_nodes(2);
    opts.host_threads = 4;
    return opts;
  }()};
  std::vector<int> data(1000);
  for (int i = 0; i < 1000; ++i) data[i] = i;
  const u64 kept = ctx.parallelize(std::move(data), 8)
                       .filter([&pruned](const int& x) {
                         if (x % 3 != 0) {
                           pruned.add(1);
                           return false;
                         }
                         return true;
                       })
                       .count();
  EXPECT_EQ(kept + pruned.value(), 1000u);
  EXPECT_EQ(pruned.value(), 666u);
}

TEST(WorkCounter, ScopeIsolatesAndRestores) {
  work::reset();
  work::add(5);
  {
    work::Scope scope;
    work::add(7);
    EXPECT_EQ(scope.measured(), 7u);
    EXPECT_EQ(work::current(), 7u);
  }
  EXPECT_EQ(work::current(), 5u);
}

TEST(WorkCounter, PerThreadIsolation) {
  work::reset();
  work::add(3);
  ThreadPool pool(1);
  u64 seen = 99;
  pool.submit([&] {
        work::reset();
        work::add(11);
        seen = work::current();
      })
      .get();
  EXPECT_EQ(seen, 11u);
  EXPECT_EQ(work::current(), 3u);
}

}  // namespace
}  // namespace yafim::engine
