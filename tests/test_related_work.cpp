// Tests for the related-work algorithms (paper §III): SON/PSON, Dist-Eclat
// and BigFIM. All must be exact (identical itemsets and supports to the
// sequential Apriori reference) across datasets and parameters, and their
// cost profiles must reflect their designs.
#include <gtest/gtest.h>

#include "fim/apriori_seq.h"
#include "fim/big_fim.h"
#include "fim/dist_eclat.h"
#include "fim/mr_apriori.h"
#include "fim/pfp.h"
#include "fim/son.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

engine::Context::Options small_cluster() {
  engine::Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(3);
  opts.host_threads = 4;
  return opts;
}

TransactionDB random_db(u32 universe, int transactions, double density,
                        u64 seed) {
  Rng rng(seed);
  std::vector<Transaction> tx;
  for (int i = 0; i < transactions; ++i) {
    Transaction t;
    for (u32 item = 0; item < universe; ++item) {
      if (rng.bernoulli(density)) t.push_back(item);
    }
    if (t.empty()) t.push_back(static_cast<Item>(rng.below(universe)));
    tx.push_back(std::move(t));
  }
  return TransactionDB(std::move(tx));
}

FrequentItemsets reference(const TransactionDB& db, double min_support) {
  AprioriOptions opt;
  opt.min_support = min_support;
  return apriori_mine(db, opt).itemsets;
}

// ---------------- SON ---------------------------------------------------

TEST(Son, ExactOnRandomData) {
  const auto db = random_db(16, 300, 0.35, 1);
  const auto ref = reference(db, 0.2);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  SonOptions opt;
  opt.min_support = 0.2;
  const auto son = son_mine(ctx, fs, db, opt);
  EXPECT_TRUE(son.run.itemsets.same_itemsets(ref));
  EXPECT_GE(son.candidate_union, ref.total());
  EXPECT_EQ(son.false_candidates, son.candidate_union - ref.total());
}

TEST(Son, ExactlyTwoJobs) {
  const auto db = random_db(14, 200, 0.65, 2);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  SonOptions opt;
  opt.min_support = 0.25;
  const auto son = son_mine(ctx, fs, db, opt);

  u32 startups = 0;
  for (const auto& stage : ctx.report().stages()) {
    if (stage.fixed_overhead_s > 0) ++startups;
  }
  EXPECT_EQ(startups, 2u);  // independent of lattice depth
  EXPECT_EQ(son.run.passes.size(), 2u);
  EXPECT_GE(son.run.itemsets.max_k(), 3u);  // deeper than the job count
}

TEST(Son, SkewedSplitsStillExact) {
  // Heavy skew: the first half of the data carries a pattern the second
  // half lacks; locally-frequent-only candidates must be filtered by the
  // counting job.
  std::vector<Transaction> tx;
  for (int i = 0; i < 100; ++i) tx.push_back({1, 2, 3});
  for (int i = 0; i < 100; ++i) tx.push_back({4, 5});
  TransactionDB db(std::move(tx));
  const auto ref = reference(db, 0.6);

  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  SonOptions opt;
  opt.min_support = 0.6;
  opt.num_mappers = 2;  // exactly the two halves
  const auto son = son_mine(ctx, fs, db, opt);
  EXPECT_TRUE(son.run.itemsets.same_itemsets(ref));
  EXPECT_GT(son.false_candidates, 0u);  // {1,2,3} et al. die globally
}

TEST(Son, EmptyDatabase) {
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  const auto son = son_mine(ctx, fs, TransactionDB(), SonOptions{});
  EXPECT_EQ(son.run.itemsets.total(), 0u);
}

TEST(Son, LocalThresholdRoundsUpNotDown) {
  // Each of the two contiguous splits holds 5 transactions: 2 x {1,2} and
  // 3 x {1}. At MinSup 0.5 the local threshold is ceil(0.5 * 5) = 3
  // (min_count_ceil, fim/dataset.h); a floor would be 2 and admit {2} and
  // {1,2} (local count 2) into the candidate union. The result stays
  // correct either way -- Job 2 filters them -- but the pinned ceil keeps
  // the union minimal: exactly the one true itemset {1}.
  std::vector<Transaction> tx;
  for (int half = 0; half < 2; ++half) {
    tx.push_back({1, 2});
    tx.push_back({1, 2});
    tx.push_back({1});
    tx.push_back({1});
    tx.push_back({1});
  }
  TransactionDB db(std::move(tx));
  const auto ref = reference(db, 0.5);  // just {1}: sup 10

  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  SonOptions opt;
  opt.min_support = 0.5;
  opt.num_mappers = 2;  // exactly the two 5-transaction splits
  const auto son = son_mine(ctx, fs, db, opt);
  EXPECT_TRUE(son.run.itemsets.same_itemsets(ref));
  EXPECT_EQ(son.candidate_union, 1u);
  EXPECT_EQ(son.false_candidates, 0u);
}

// ---------------- Dist-Eclat --------------------------------------------

TEST(DistEclat, ExactOnRandomData) {
  const auto db = random_db(16, 300, 0.6, 3);
  const auto ref = reference(db, 0.2);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  DistEclatOptions opt;
  opt.min_support = 0.2;
  const auto de = dist_eclat_mine(ctx, fs, db, opt);
  EXPECT_TRUE(de.run.itemsets.same_itemsets(ref));
  EXPECT_GT(de.seed_prefixes, 0u);
  EXPECT_GT(de.vertical_bytes, 0u);
}

TEST(DistEclat, PrefixDepthSweepAllExact) {
  const auto db = random_db(12, 250, 0.45, 4);
  const auto ref = reference(db, 0.25);
  for (u32 depth : {1u, 2u, 3u, 4u}) {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    DistEclatOptions opt;
    opt.min_support = 0.25;
    opt.prefix_depth = depth;
    const auto de = dist_eclat_mine(ctx, fs, db, opt);
    EXPECT_TRUE(de.run.itemsets.same_itemsets(ref)) << "depth " << depth;
  }
}

TEST(DistEclat, NoMapReduceJobOverheads) {
  const auto db = random_db(14, 200, 0.4, 5);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  DistEclatOptions opt;
  opt.min_support = 0.25;
  (void)dist_eclat_mine(ctx, fs, db, opt);
  for (const auto& stage : ctx.report().stages()) {
    EXPECT_NE(stage.kind, sim::StageKind::kMapPhase);
    EXPECT_NE(stage.kind, sim::StageKind::kReducePhase);
    EXPECT_DOUBLE_EQ(stage.fixed_overhead_s, 0.0);
  }
}

TEST(DistEclat, EmptyAndNothingFrequent) {
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  EXPECT_EQ(
      dist_eclat_mine(ctx, fs, TransactionDB(), DistEclatOptions{})
          .run.itemsets.total(),
      0u);

  TransactionDB db(std::vector<Transaction>{{1}, {2}, {3}, {4}});
  DistEclatOptions opt;
  opt.min_support = 0.9;
  const auto de = dist_eclat_mine(ctx, fs, db, opt);
  EXPECT_EQ(de.run.itemsets.total(), 0u);
  EXPECT_EQ(de.seed_prefixes, 0u);
}

// ---------------- BigFIM -------------------------------------------------

TEST(BigFim, ExactOnRandomData) {
  const auto db = random_db(16, 300, 0.6, 6);
  const auto ref = reference(db, 0.2);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  BigFimOptions opt;
  opt.min_support = 0.2;
  const auto bf = big_fim_mine(ctx, fs, db, opt);
  EXPECT_TRUE(bf.run.itemsets.same_itemsets(ref));
  EXPECT_GT(bf.prefixes, 0u);
  EXPECT_GT(bf.tidlist_shuffle_bytes, 0u);
}

TEST(BigFim, SwitchLevelSweepAllExact) {
  const auto db = random_db(12, 250, 0.45, 7);
  const auto ref = reference(db, 0.25);
  for (u32 level : {1u, 2u, 3u, 4u}) {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    BigFimOptions opt;
    opt.min_support = 0.25;
    opt.switch_level = level;
    const auto bf = big_fim_mine(ctx, fs, db, opt);
    EXPECT_TRUE(bf.run.itemsets.same_itemsets(ref)) << "switch " << level;
  }
}

TEST(BigFim, JobCountIsSwitchLevelPlusOne) {
  const auto db = random_db(14, 250, 0.75, 8);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  BigFimOptions opt;
  opt.min_support = 0.25;
  opt.switch_level = 2;
  const auto bf = big_fim_mine(ctx, fs, db, opt);
  ASSERT_GE(bf.run.itemsets.max_k(), 4u);  // lattice deeper than the switch

  u32 startups = 0;
  for (const auto& stage : ctx.report().stages()) {
    if (stage.fixed_overhead_s > 0) ++startups;
  }
  EXPECT_EQ(startups, 3u);  // 2 Apriori levels + 1 depth-first job
}

TEST(BigFim, LatticeEndingBeforeSwitchIsHandled) {
  // Only singletons are frequent; switch_level 3 never gets prefixes.
  TransactionDB db(std::vector<Transaction>{
      {1, 2}, {1, 3}, {2, 4}, {3, 4}, {1, 4}, {2, 3}});
  const auto ref = reference(db, 0.5);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  BigFimOptions opt;
  opt.min_support = 0.5;
  opt.switch_level = 3;
  const auto bf = big_fim_mine(ctx, fs, db, opt);
  EXPECT_TRUE(bf.run.itemsets.same_itemsets(ref));
  EXPECT_EQ(bf.prefixes, 0u);
}

TEST(MrApriori, MaxLevelsStopsEarly) {
  const auto db = random_db(14, 250, 0.45, 9);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  MrAprioriOptions opt;
  opt.min_support = 0.25;
  opt.max_levels = 2;
  const auto run = mr_apriori_mine(ctx, fs, db, opt);
  EXPECT_EQ(run.itemsets.max_k(), 2u);
  EXPECT_LE(run.passes.size(), 2u);
  // The truncated result must equal the reference truncated to 2 levels.
  const auto ref = reference(db, 0.25);
  for (u32 k = 1; k <= 2; ++k) {
    EXPECT_EQ(run.itemsets.level(k), ref.level(k));
  }
}

// ---------------- PFP ----------------------------------------------------

TEST(Pfp, ExactOnRandomData) {
  const auto db = random_db(16, 300, 0.6, 10);
  const auto ref = reference(db, 0.2);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  PfpOptions opt;
  opt.min_support = 0.2;
  const auto pfp = pfp_mine(ctx, fs, db, opt);
  EXPECT_TRUE(pfp.run.itemsets.same_itemsets(ref));
  EXPECT_GT(pfp.conditional_transactions, 0u);
}

TEST(Pfp, GroupCountSweepAllExact) {
  const auto db = random_db(12, 250, 0.5, 11);
  const auto ref = reference(db, 0.25);
  for (u32 groups : {1u, 2u, 5u, 32u, 100u}) {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    PfpOptions opt;
    opt.min_support = 0.25;
    opt.num_groups = groups;
    const auto pfp = pfp_mine(ctx, fs, db, opt);
    EXPECT_TRUE(pfp.run.itemsets.same_itemsets(ref)) << "groups=" << groups;
  }
}

TEST(Pfp, ConditionalTransactionsBoundedByGroupsTimesData) {
  const auto db = random_db(12, 200, 0.5, 12);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  PfpOptions opt;
  opt.min_support = 0.25;
  opt.num_groups = 4;
  const auto pfp = pfp_mine(ctx, fs, db, opt);
  EXPECT_LE(pfp.conditional_transactions, db.size() * 4);
  EXPECT_GE(pfp.conditional_transactions, db.size());  // >=1 group per tx
}

TEST(Pfp, NoCandidateGenerationNoJobStartups) {
  const auto db = random_db(14, 200, 0.7, 13);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  PfpOptions opt;
  opt.min_support = 0.25;
  const auto pfp = pfp_mine(ctx, fs, db, opt);
  EXPECT_EQ(pfp.run.passes.size(), 2u);  // count + mine, regardless of depth
  EXPECT_GE(pfp.run.itemsets.max_k(), 3u);
  for (const auto& stage : ctx.report().stages()) {
    EXPECT_DOUBLE_EQ(stage.fixed_overhead_s, 0.0);
  }
}

TEST(Pfp, EmptyAndNothingFrequent) {
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  EXPECT_EQ(pfp_mine(ctx, fs, TransactionDB(), PfpOptions{})
                .run.itemsets.total(),
            0u);
  TransactionDB db(std::vector<Transaction>{{1}, {2}, {3}, {4}});
  PfpOptions opt;
  opt.min_support = 0.9;
  EXPECT_EQ(pfp_mine(ctx, fs, db, opt).run.itemsets.total(), 0u);
}

// ---------------- cross-algorithm sweep ----------------------------------

class RelatedWorkSweep
    : public ::testing::TestWithParam<std::tuple<double, double, u32>> {};

TEST_P(RelatedWorkSweep, AllThreeMatchReference) {
  const auto [density, min_support, seed] = GetParam();
  const auto db = random_db(15, 150, density, 100 + seed);
  const auto ref = reference(db, min_support);

  {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    SonOptions opt;
    opt.min_support = min_support;
    EXPECT_TRUE(son_mine(ctx, fs, db, opt).run.itemsets.same_itemsets(ref));
  }
  {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    DistEclatOptions opt;
    opt.min_support = min_support;
    EXPECT_TRUE(
        dist_eclat_mine(ctx, fs, db, opt).run.itemsets.same_itemsets(ref));
  }
  {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    BigFimOptions opt;
    opt.min_support = min_support;
    EXPECT_TRUE(
        big_fim_mine(ctx, fs, db, opt).run.itemsets.same_itemsets(ref));
  }
  {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    PfpOptions opt;
    opt.min_support = min_support;
    EXPECT_TRUE(pfp_mine(ctx, fs, db, opt).run.itemsets.same_itemsets(ref));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RelatedWorkSweep,
    ::testing::Combine(::testing::Values(0.25, 0.5, 0.7),
                       ::testing::Values(0.15, 0.35),
                       ::testing::Values(1u, 2u)));

}  // namespace
}  // namespace yafim::fim
