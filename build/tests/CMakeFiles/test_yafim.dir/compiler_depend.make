# Empty compiler generated dependencies file for test_yafim.
# This may be replaced when dependencies are built.
