// Cross-engine agreement: FP-Growth and Eclat must produce exactly the
// itemsets (and supports) the Apriori reference produces -- the repository's
// independent-oracle check.
#include <gtest/gtest.h>

#include "fim/apriori_seq.h"
#include "fim/eclat.h"
#include "fim/fp_growth.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

TransactionDB random_db(u32 universe, int transactions, double density,
                        u64 seed) {
  Rng rng(seed);
  std::vector<Transaction> tx;
  for (int i = 0; i < transactions; ++i) {
    Transaction t;
    for (u32 item = 0; item < universe; ++item) {
      if (rng.bernoulli(density)) t.push_back(item);
    }
    if (t.empty()) t.push_back(static_cast<Item>(rng.below(universe)));
    tx.push_back(std::move(t));
  }
  return TransactionDB(std::move(tx));
}

TEST(FpGrowth, HandWorkedExample) {
  TransactionDB db({{1, 2, 5},
                    {2, 4},
                    {2, 3},
                    {1, 2, 4},
                    {1, 3},
                    {2, 3},
                    {1, 3},
                    {1, 2, 3, 5},
                    {1, 2, 3}});
  const auto run = fp_growth_mine(db, 2.0 / 9.0);
  EXPECT_EQ(run.itemsets.support_of({2}), 7u);
  EXPECT_EQ(run.itemsets.support_of({1, 2}), 4u);
  EXPECT_EQ(run.itemsets.support_of({1, 2, 5}), 2u);
  EXPECT_EQ(run.itemsets.max_k(), 3u);
}

TEST(FpGrowth, EmptyAndDegenerate) {
  EXPECT_EQ(fp_growth_mine(TransactionDB(), 0.5).itemsets.total(), 0u);
  TransactionDB single(std::vector<Transaction>{{7}});
  const auto run = fp_growth_mine(single, 1.0);
  EXPECT_EQ(run.itemsets.total(), 1u);
  EXPECT_EQ(run.itemsets.support_of({7}), 1u);
}

TEST(Eclat, HandWorkedExample) {
  TransactionDB db({{1, 2, 5},
                    {2, 4},
                    {2, 3},
                    {1, 2, 4},
                    {1, 3},
                    {2, 3},
                    {1, 3},
                    {1, 2, 3, 5},
                    {1, 2, 3}});
  const auto run = eclat_mine(db, 2.0 / 9.0);
  EXPECT_EQ(run.itemsets.support_of({2}), 7u);
  EXPECT_EQ(run.itemsets.support_of({1, 2}), 4u);
  EXPECT_EQ(run.itemsets.support_of({1, 2, 5}), 2u);
}

TEST(Eclat, EmptyAndDegenerate) {
  EXPECT_EQ(eclat_mine(TransactionDB(), 0.5).itemsets.total(), 0u);
  TransactionDB single(std::vector<Transaction>{{7}});
  EXPECT_EQ(eclat_mine(single, 1.0).itemsets.support_of({7}), 1u);
}

/// Parameterised three-way agreement sweep.
class EngineAgreementSweep
    : public ::testing::TestWithParam<std::tuple<double, double, u32>> {};

TEST_P(EngineAgreementSweep, AprioriFpGrowthEclatAgree) {
  const auto [density, min_support, seed] = GetParam();
  const auto db = random_db(18, 120, density, seed);

  AprioriOptions opt;
  opt.min_support = min_support;
  const auto apriori = apriori_mine(db, opt);
  const auto fp = fp_growth_mine(db, min_support);
  const auto eclat = eclat_mine(db, min_support);

  EXPECT_TRUE(apriori.itemsets.same_itemsets(fp.itemsets))
      << "apriori=" << apriori.itemsets.total()
      << " fp=" << fp.itemsets.total();
  EXPECT_TRUE(apriori.itemsets.same_itemsets(eclat.itemsets))
      << "apriori=" << apriori.itemsets.total()
      << " eclat=" << eclat.itemsets.total();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineAgreementSweep,
    ::testing::Combine(::testing::Values(0.15, 0.4, 0.7),
                       ::testing::Values(0.08, 0.25, 0.5),
                       ::testing::Values(11u, 22u, 33u, 44u)));

/// Supports reported by every engine must equal the full-scan oracle.
TEST(EngineAgreement, SupportsMatchOracleScan) {
  const auto db = random_db(12, 100, 0.45, 55);
  const auto run = fp_growth_mine(db, 0.2);
  for (const auto& [itemset, support] : run.itemsets.sorted()) {
    EXPECT_EQ(support, db.support(itemset)) << to_string(itemset);
  }
}

}  // namespace
}  // namespace yafim::fim
