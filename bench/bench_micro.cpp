// Microbenchmarks (google-benchmark) for the building blocks: hash-tree
// construction and probing, candidate generation, subset tests, the RDD
// shuffle, and SimFS round-trips. These measure real host performance (not
// simulated time) and back the constants discussed in sim/cost_model.h.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <set>

#include "datagen/quest.h"
#include "engine/rdd.h"
#include "fim/bitmap.h"
#include "fim/candidate_gen.h"
#include "fim/dataset.h"
#include "fim/hash_tree.h"
#include "util/log.h"
#include "util/rng.h"

namespace {

using namespace yafim;
using fim::Item;
using fim::Itemset;
using fim::Transaction;

std::vector<Itemset> random_candidates(u32 n, u32 k, u32 universe, u64 seed) {
  Rng rng(seed);
  std::set<Itemset> unique;
  while (unique.size() < n) {
    Itemset c;
    while (c.size() < k) {
      const Item item = static_cast<Item>(rng.below(universe));
      if (std::find(c.begin(), c.end(), item) == c.end()) c.push_back(item);
    }
    fim::canonicalize(c);
    unique.insert(std::move(c));
  }
  return {unique.begin(), unique.end()};
}

fim::TransactionDB quest_db(u64 transactions) {
  datagen::QuestParams params;
  params.num_transactions = transactions;
  params.num_items = 400;
  params.num_patterns = 100;
  return datagen::generate_quest(params);
}

void BM_HashTreeBuild(benchmark::State& state) {
  const auto candidates = random_candidates(
      static_cast<u32>(state.range(0)), 3, 200, 1);
  for (auto _ : state) {
    fim::HashTree tree(candidates);
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashTreeBuild)->Arg(100)->Arg(1000)->Arg(10000);

void BM_HashTreeProbe(benchmark::State& state) {
  const auto candidates = random_candidates(
      static_cast<u32>(state.range(0)), 3, 200, 2);
  fim::HashTree tree(candidates);
  const auto db = quest_db(200);
  fim::HashTree::Probe probe;
  u64 hits = 0;
  for (auto _ : state) {
    for (const Transaction& t : db.transactions()) {
      tree.for_each_contained(t, probe, [&](u32) { ++hits; });
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * db.size());
}
BENCHMARK(BM_HashTreeProbe)->Arg(100)->Arg(1000)->Arg(10000);

void BM_LinearProbe(benchmark::State& state) {
  const auto candidates = random_candidates(
      static_cast<u32>(state.range(0)), 3, 200, 2);
  fim::HashTree tree(candidates);
  const auto db = quest_db(200);
  u64 hits = 0;
  for (auto _ : state) {
    for (const Transaction& t : db.transactions()) {
      tree.for_each_contained_linear(t, [&](u32) { ++hits; });
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * db.size());
}
BENCHMARK(BM_LinearProbe)->Arg(100)->Arg(1000)->Arg(10000);

/// The vertical counting kernel (fim/bitmap.h): support of every candidate
/// in a tree via word-parallel AND + popcount over the per-item rows.
/// Compare against BM_HashTreeProbe / BM_LinearProbe at the same candidate
/// counts -- this is the per-pass work the three count modes trade.
void BM_BitmapAndPopcount(benchmark::State& state) {
  const auto candidates = random_candidates(
      static_cast<u32>(state.range(0)), 3, 200, 2);
  const fim::HashTree tree(candidates);
  const auto db = quest_db(200);
  const fim::VerticalBitmapIndex index(db.transactions());
  std::vector<u64> cells(tree.size());
  for (auto _ : state) {
    std::fill(cells.begin(), cells.end(), 0);
    index.count_candidates(tree, cells.data());
    benchmark::DoNotOptimize(cells.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BitmapAndPopcount)->Arg(100)->Arg(1000)->Arg(10000);

void BM_AprioriGen(benchmark::State& state) {
  // L2 over a clique of items: quadratic join with heavy pruning.
  std::vector<Itemset> l2;
  const u32 items = static_cast<u32>(state.range(0));
  for (u32 a = 0; a < items; ++a) {
    for (u32 b = a + 1; b < items; ++b) l2.push_back({a, b});
  }
  for (auto _ : state) {
    auto c3 = fim::apriori_gen(l2, 3);
    benchmark::DoNotOptimize(c3.size());
  }
  state.SetItemsProcessed(state.iterations() * l2.size());
}
BENCHMARK(BM_AprioriGen)->Arg(16)->Arg(48)->Arg(96);

void BM_ContainsAll(benchmark::State& state) {
  Rng rng(3);
  Transaction t;
  for (u32 i = 0; i < 1000; i += 1 + rng.below(3)) t.push_back(i);
  Itemset s{t[2], t[t.size() / 2], t[t.size() - 1]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fim::contains_all(t, s));
  }
}
BENCHMARK(BM_ContainsAll);

void BM_ItemsetHash(benchmark::State& state) {
  const fim::ItemsetHash h;
  const Itemset s{4, 17, 99, 230, 771};
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(s));
  }
}
BENCHMARK(BM_ItemsetHash);

void BM_ReduceByKey(benchmark::State& state) {
  engine::Context::Options opts{.cluster = sim::ClusterConfig::with_nodes(2)};
  opts.fault = engine::FaultProfile{};  // stable numbers even under env
  engine::Context ctx(opts);
  Rng rng(5);
  std::vector<std::pair<u32, u64>> pairs;
  const u64 n = state.range(0);
  pairs.reserve(n);
  for (u64 i = 0; i < n; ++i) {
    pairs.emplace_back(static_cast<u32>(rng.below(n / 16 + 1)), 1);
  }
  auto rdd = ctx.parallelize(std::move(pairs), 16);
  rdd.persist();
  (void)rdd.count();
  for (auto _ : state) {
    auto reduced = rdd.reduce_by_key([](u64 a, u64 b) { return a + b; });
    benchmark::DoNotOptimize(reduced.count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReduceByKey)->Arg(10000)->Arg(100000);

/// Counting-shaped shuffle: millions of input pairs collapsing onto a few
/// distinct keys. Before the reservation cap, every map task reserved one
/// hash slot per *input pair* (a ~48 MB table for 2^22 pairs over 16
/// tasks); with the cap the combine table stays sized to the distinct-key
/// count. The win shows up as bytes-allocated and wall-clock per
/// iteration.
void BM_ReduceByKeyFewKeys(benchmark::State& state) {
  engine::Context::Options opts{.cluster = sim::ClusterConfig::with_nodes(2)};
  opts.fault = engine::FaultProfile{};
  engine::Context ctx(opts);
  Rng rng(6);
  std::vector<std::pair<u32, u64>> pairs;
  const u64 n = state.range(0);
  pairs.reserve(n);
  for (u64 i = 0; i < n; ++i) {
    pairs.emplace_back(static_cast<u32>(rng.below(64)), 1);
  }
  auto rdd = ctx.parallelize(std::move(pairs), 16);
  rdd.persist();
  (void)rdd.count();
  for (auto _ : state) {
    auto reduced = rdd.reduce_by_key([](u64 a, u64 b) { return a + b; });
    benchmark::DoNotOptimize(reduced.count());
    ctx.report().clear();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReduceByKeyFewKeys)->Arg(1 << 20)->Arg(1 << 22);

/// The dense counting merge the candidate-id path uses instead of the
/// keyed shuffle above: same logical aggregation, element-wise over
/// fixed-width arrays.
void BM_SumArrays(benchmark::State& state) {
  engine::Context::Options opts{.cluster = sim::ClusterConfig::with_nodes(2)};
  opts.fault = engine::FaultProfile{};
  engine::Context ctx(opts);
  const size_t width = static_cast<size_t>(state.range(0));
  std::vector<std::vector<u64>> arrays(16, std::vector<u64>(width, 1));
  auto rdd = ctx.parallelize(std::move(arrays), 16);
  rdd.persist();
  (void)rdd.count();
  for (auto _ : state) {
    auto merged = rdd.sum_arrays(width);
    benchmark::DoNotOptimize(merged.data());
    ctx.report().clear();
  }
  state.SetItemsProcessed(state.iterations() * width * 16);
}
BENCHMARK(BM_SumArrays)->Arg(10000)->Arg(100000);

/// Stage-launch machinery overhead: arg 0 = injection disabled (must stay
/// on the near-zero-cost fast path), arg 1 = failures + stragglers injected
/// (retry loop, speculation pass, deterministic draws).
void BM_StageFaultPath(benchmark::State& state) {
  engine::Context::Options opts{.cluster = sim::ClusterConfig::with_nodes(2)};
  opts.fault = engine::FaultProfile{};
  if (state.range(0)) {
    opts.fault.seed = 99;
    opts.fault.task_failure_p = 0.05;
    opts.fault.straggler_p = 0.05;
  }
  engine::Context ctx(opts);
  for (auto _ : state) {
    ctx.run_stage("bench", 32, [](u32) { engine::work::add(100); });
    ctx.report().clear();  // keep the record list from growing unboundedly
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_StageFaultPath)->Arg(0)->Arg(1);

void BM_DatasetSerialize(benchmark::State& state) {
  const auto db = quest_db(5000);
  for (auto _ : state) {
    auto bytes = db.serialize();
    benchmark::DoNotOptimize(bytes.size());
  }
}
BENCHMARK(BM_DatasetSerialize);

void BM_DatasetDeserialize(benchmark::State& state) {
  const auto bytes = quest_db(5000).serialize();
  for (auto _ : state) {
    auto db = fim::TransactionDB::deserialize(bytes);
    benchmark::DoNotOptimize(db.size());
  }
}
BENCHMARK(BM_DatasetDeserialize);

void BM_QuestGenerate(benchmark::State& state) {
  for (auto _ : state) {
    auto db = quest_db(static_cast<u64>(state.range(0)));
    benchmark::DoNotOptimize(db.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuestGenerate)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  yafim::set_log_level(yafim::LogLevel::kWarn);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
