#include "fim/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/metrics.h"
#include "simfs/simfs.h"
#include "util/bytes.h"
#include "util/checksum.h"

namespace yafim::fim {

namespace fs = std::filesystem;

// --- stores --------------------------------------------------------------

DirCheckpointStore::DirCheckpointStore(std::string dir)
    : dir_(std::move(dir)) {
  YAFIM_CHECK(!dir_.empty(), "checkpoint dir must be non-empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  YAFIM_CHECK(!ec, "cannot create checkpoint dir");
  // Sweep *.tmp orphans left by a crash between tmp-write and rename.
  // list() already skips them, so they were never parsed, but without the
  // sweep they accumulate forever across crash/resume cycles.
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() >= 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
}

void DirCheckpointStore::put(const std::string& name,
                             const std::vector<u8>& bytes) {
  const fs::path target = fs::path(dir_) / name;
  const fs::path tmp = fs::path(dir_) / (name + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    YAFIM_CHECK(out.good(), "cannot open checkpoint tmp file");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    YAFIM_CHECK(out.good(), "cannot write checkpoint tmp file");
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  YAFIM_CHECK(!ec, "cannot rename checkpoint into place");
}

std::optional<std::vector<u8>> DirCheckpointStore::get(
    const std::string& name) {
  std::ifstream in(fs::path(dir_) / name, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::vector<u8> bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return bytes;
}

std::vector<std::string> DirCheckpointStore::list() {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    // Abandoned tmp files from a crash mid-put are not snapshots.
    if (name.size() >= 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      continue;
    }
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

void DirCheckpointStore::remove(const std::string& name) {
  std::error_code ec;
  fs::remove(fs::path(dir_) / name, ec);
}

SimFSCheckpointStore::SimFSCheckpointStore(simfs::SimFS& fs,
                                           std::string prefix)
    : fs_(fs), prefix_(std::move(prefix)) {
  if (!prefix_.empty() && prefix_.back() != '/') prefix_ += '/';
}

void SimFSCheckpointStore::put(const std::string& name,
                               const std::vector<u8>& bytes) {
  fs_.write(prefix_ + name, bytes);
}

std::optional<std::vector<u8>> SimFSCheckpointStore::get(
    const std::string& name) {
  try {
    return fs_.read(prefix_ + name);
  } catch (const simfs::SimFSError&) {
    return std::nullopt;  // absent, or corrupt beyond replica repair
  }
}

std::vector<std::string> SimFSCheckpointStore::list() {
  std::vector<std::string> names;
  for (const std::string& path : fs_.list(prefix_)) {
    names.push_back(path.substr(prefix_.size()));
  }
  return names;
}

void SimFSCheckpointStore::remove(const std::string& name) {
  fs_.remove(prefix_ + name);
}

// --- snapshot codec ------------------------------------------------------

u64 checkpoint_fingerprint(std::string_view engine, u64 data_hash,
                           u64 min_support_count, u64 extra) {
  ByteWriter w;
  w.write_string(std::string(engine));
  w.write_u64(data_hash);
  w.write_u64(min_support_count);
  w.write_u64(extra);
  return xxh64(w.data().data(), w.data().size());
}

std::string snapshot_name(u32 pass) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pass-%04u.ck", pass);
  return buf;
}

std::vector<u8> encode_snapshot(const CheckpointState& state) {
  ByteWriter w;
  w.write_u32(kSnapshotMagic);
  w.write_u32(kSnapshotVersion);
  w.write_u64(state.fingerprint);
  w.write_u32(state.pass);
  w.write_u64(state.num_transactions);
  w.write_u64(state.min_support_count);
  w.write_double(state.setup_seconds);
  w.write_u64(state.aux);

  w.write_u64(state.passes.size());
  for (const PassStats& p : state.passes) {
    w.write_u32(p.k);
    w.write_u64(p.candidates);
    w.write_u64(p.frequent);
    w.write_double(p.sim_seconds);
  }

  // Levels sorted by (size, lex) so identical states encode to identical
  // bytes regardless of hash-map iteration order.
  const auto sorted = state.itemsets.sorted();
  w.write_u64(sorted.size());
  for (const auto& [itemset, support] : sorted) {
    w.write_u32_vec(itemset);
    w.write_u64(support);
  }

  std::vector<Itemset> frontier = state.frontier;
  std::sort(frontier.begin(), frontier.end());
  w.write_u64(frontier.size());
  for (const Itemset& s : frontier) w.write_u32_vec(s);

  w.write_u64(xxh64(w.data().data(), w.data().size()));
  return w.take();
}

std::optional<CheckpointState> decode_snapshot(std::span<const u8> bytes,
                                               u64 expected_fingerprint) {
  // Validate before parsing: the trailing checksum must match the body.
  // Only checksum-verified bytes reach the ByteReader, so its CHECKs can
  // never fire on damaged input -- a torn or flipped snapshot is rejected
  // here, whole.
  constexpr size_t kMinBytes = 4 + 4 + 8 + 8;  // header + trailing checksum
  if (bytes.size() < kMinBytes) return std::nullopt;
  const size_t body = bytes.size() - 8;
  u64 stored_sum;
  std::memcpy(&stored_sum, bytes.data() + body, sizeof(stored_sum));
  if (xxh64(bytes.data(), body) != stored_sum) return std::nullopt;

  ByteReader r(bytes.first(body));
  if (r.read_u32() != kSnapshotMagic) return std::nullopt;
  if (r.read_u32() != kSnapshotVersion) return std::nullopt;

  CheckpointState state;
  state.fingerprint = r.read_u64();
  if (state.fingerprint != expected_fingerprint) return std::nullopt;
  state.pass = r.read_u32();
  state.num_transactions = r.read_u64();
  state.min_support_count = r.read_u64();
  state.setup_seconds = r.read_double();
  state.aux = r.read_u64();

  const u64 npasses = r.read_u64();
  state.passes.reserve(npasses);
  for (u64 i = 0; i < npasses; ++i) {
    PassStats p;
    p.k = r.read_u32();
    p.candidates = r.read_u64();
    p.frequent = r.read_u64();
    p.sim_seconds = r.read_double();
    state.passes.push_back(p);
  }

  state.itemsets =
      FrequentItemsets(state.min_support_count, state.num_transactions);
  const u64 nsets = r.read_u64();
  for (u64 i = 0; i < nsets; ++i) {
    Itemset s = r.read_u32_vec();
    const u64 support = r.read_u64();
    state.itemsets.add(std::move(s), support);
  }

  const u64 nfrontier = r.read_u64();
  state.frontier.reserve(nfrontier);
  for (u64 i = 0; i < nfrontier; ++i) state.frontier.push_back(r.read_u32_vec());

  if (!r.done()) return std::nullopt;
  return state;
}

void save_snapshot(CheckpointStore& store, const CheckpointState& state) {
  const std::vector<u8> bytes = encode_snapshot(state);
  store.put(snapshot_name(state.pass), bytes);
  obs::count(obs::CounterId::kCheckpointsWritten);
  obs::count(obs::CounterId::kCheckpointBytesWritten, bytes.size());
}

std::optional<CheckpointState> load_latest_snapshot(CheckpointStore& store,
                                                    u64 expected_fingerprint,
                                                    u32* rejected) {
  std::vector<std::string> names = store.list();
  // snapshot_name zero-pads, so lexicographic order is pass order; probe
  // newest-first and fall back past any damaged tail.
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    const auto bytes = store.get(*it);
    if (bytes) {
      auto state = decode_snapshot(*bytes, expected_fingerprint);
      if (state) return state;
    }
    if (rejected) ++(*rejected);
    obs::count(obs::CounterId::kCheckpointsRejected);
  }
  return std::nullopt;
}

}  // namespace yafim::fim
