# Empty compiler generated dependencies file for test_apriori_seq.
# This may be replaced when dependencies are built.
