file(REMOVE_RECURSE
  "libyafim_engine.a"
)
