// SON / PSON (Savasere-Omiecinski-Navathe, parallelised a la Xiao et al.'s
// PSON): the classic *two-job* frequent-itemset algorithm -- the
// "one-phase" family the paper's related work contrasts with k-phase
// MRApriori.
//
//   Job 1 (local mining):  every mapper runs a complete in-memory Apriori
//     over its input split at the same *relative* threshold and emits its
//     locally frequent itemsets. By the SON property, every globally
//     frequent itemset is locally frequent in at least one split, so the
//     union is a complete (if overcomplete) candidate set.
//   Job 2 (global count):  candidates are shipped to mappers via the
//     distributed cache; a counting pass over the data computes exact
//     global supports, and reducers threshold at MinSup.
//
// Two jobs total, independent of the lattice depth -- trading Apriori's
// per-level jobs for potentially large candidate unions (the "memory
// overflow ... for large data sets" caveat in the paper §III).
#pragma once

#include <string>

#include "engine/context.h"
#include "fim/dataset.h"
#include "fim/result.h"
#include "simfs/simfs.h"

namespace yafim::fim {

struct SonOptions {
  double min_support = 0.1;
  u32 num_mappers = 0;
  u32 num_reducers = 0;
  /// Hash-tree tuning for the global counting pass.
  u32 branching = 0;  // 0 = auto (HashTree::default_branching)
  u32 leaf_capacity = 16;
  std::string work_dir = "hdfs://son";
};

struct SonRun {
  MiningRun run;
  /// Size of the candidate union produced by the local-mining job.
  u64 candidate_union = 0;
  /// Candidates that were locally but not globally frequent (SON's
  /// overcounting cost; 0 would mean perfectly homogeneous splits).
  u64 false_candidates = 0;
};

/// Mine with SON (always exact). `run.passes` has two entries: the local
/// mining job and the global counting job.
SonRun son_mine(engine::Context& ctx, simfs::SimFS& fs,
                const std::string& input_path, const SonOptions& options);

/// Convenience overload staging `db` onto `fs` first.
SonRun son_mine(engine::Context& ctx, simfs::SimFS& fs,
                const TransactionDB& db, const SonOptions& options);

}  // namespace yafim::fim
