// Deterministic windowed transaction source for the streaming miner.
//
// Models a continuous ingest feed over a finite generated dataset: the
// stream is the dataset replayed in order, wrapping around, with a seeded
// +-10% jitter on how many transactions arrive per batch window. Everything
// is a pure function of (dataset, options, absolute offset), which is the
// property the exactly-once story rests on: after a crash, the miner
// rebuilds its ingest history by replaying the source from offset 0 -- no
// receiver state needs to survive the kill.
#pragma once

#include <vector>

#include "fim/dataset.h"
#include "util/common.h"

namespace yafim::stream {

struct SourceOptions {
  /// Nominal batch window, in simulated seconds.
  double window_s = 5.0;
  /// Mean ingest rate, transactions per simulated second.
  double ingest_rate = 2000.0;
  /// Seed for the per-window arrival jitter.
  u64 seed = 42;
};

class TransactionSource {
 public:
  TransactionSource(fim::TransactionDB db, SourceOptions options);

  /// Transactions arriving in batch `batch` when the batch spans
  /// `window_factor` nominal windows. Deterministic: nominal count
  /// (window_s * ingest_rate * window_factor) with +-10% seeded jitter,
  /// never zero. Pure -- does not advance the source.
  u64 window_count(u64 batch, u32 window_factor) const;

  /// Next `n` transactions in arrival order (wraps around the dataset);
  /// advances the absolute offset.
  std::vector<fim::Transaction> take(u64 n);

  /// Reposition to an absolute offset (0 = stream start). Replaying
  /// seek(0) + take(k) always yields the same k transactions.
  void seek(u64 offset) { offset_ = offset; }
  u64 offset() const { return offset_; }

  /// Serialized bytes of one arriving transaction (WAL pricing).
  static u64 transaction_bytes(const fim::Transaction& t) {
    return 8 + 4 * t.size();  // length prefix + items
  }

  u64 dataset_size() const { return db_.size(); }
  const fim::TransactionDB& db() const { return db_; }

 private:
  fim::TransactionDB db_;
  SourceOptions options_;
  u64 offset_ = 0;
};

}  // namespace yafim::stream
