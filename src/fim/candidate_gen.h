// Apriori candidate generation (the `ap_gen` of the paper's Algorithm 3):
// the F(k-1) x F(k-1) self-join followed by the monotonicity prune.
#pragma once

#include <unordered_map>
#include <vector>

#include "fim/itemset.h"

namespace yafim::fim {

/// Generate the size-k candidate set Ck from the frequent (k-1)-itemsets.
///
/// `prev_frequent` need not be sorted; the result is lexicographically
/// sorted and duplicate-free. For k == 2 this is all pairs of frequent
/// items. Every itemset in `prev_frequent` must have size k-1.
///
/// Join: two (k-1)-itemsets sharing their first k-2 items produce one
/// k-candidate. Prune: a candidate survives only if all of its (k-1)-subsets
/// are in `prev_frequent`.
std::vector<Itemset> apriori_gen(const std::vector<Itemset>& prev_frequent,
                                 u32 k);

/// The prune step alone (exposed for tests and for the FPC/DPC variants,
/// which prune against candidate sets rather than frequent sets).
bool all_subsets_present(
    const Itemset& candidate,
    const std::unordered_map<Itemset, u64, ItemsetHash, ItemsetEq>& prev);

}  // namespace yafim::fim
