#include "stream/miner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "engine/rdd.h"
#include "engine/work.h"
#include "fim/bitmap.h"
#include "fim/candidate_gen.h"
#include "fim/count_core.h"
#include "fim/hash_tree.h"
#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/checksum.h"
#include "util/rng.h"

namespace yafim::stream {

namespace {

using fim::CountPair;
using fim::Itemset;
using fim::Transaction;

using SupportMap =
    std::unordered_map<Itemset, u64, fim::ItemsetHash, fim::ItemsetEq>;
using ItemsetSet =
    std::unordered_set<Itemset, fim::ItemsetHash, fim::ItemsetEq>;

bool itemset_less(const Itemset& a, const Itemset& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return a < b;
}

std::string batch_label(u64 batch) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "batch%04llu",
                static_cast<unsigned long long>(batch));
  return buf;
}

/// The whole miner, one instance per stream_mine call. All mutable state is
/// a pure function of (source, options, completed batches), which is what
/// makes snapshot + source replay sufficient for exactly-once resume.
class StreamingMiner {
 public:
  StreamingMiner(engine::Context& ctx, simfs::SimFS& fs,
                 const fim::TransactionDB& source_db,
                 const StreamOptions& options)
      : ctx_(ctx),
        fs_(fs),
        options_(options),
        source_(source_db, options.source),
        controller_(options.backpressure) {
    YAFIM_CHECK(options_.num_batches > 0, "stream needs at least one batch");
    const std::vector<u8> raw = source_db.serialize();
    // The fingerprint folds in every knob that shapes per-batch state --
    // window/batch parameters, counting + broadcast mode, backpressure
    // ladder -- so a snapshot never resumes a differently-shaped stream.
    ByteWriter cfg;
    cfg.write_double(options_.min_support);
    cfg.write_u64(options_.num_batches);
    cfg.write_double(options_.source.window_s);
    cfg.write_double(options_.source.ingest_rate);
    cfg.write_u64(options_.source.seed);
    cfg.write_u32(static_cast<u32>(options_.count_mode));
    cfg.write_u32(static_cast<u32>(options_.broadcast_mode));
    cfg.write_u32(options_.use_hash_tree ? 1 : 0);
    cfg.write_u32(options_.branching);
    cfg.write_u32(options_.leaf_capacity);
    cfg.write_u32(options_.partitions);
    cfg.write_u32(options_.broadcast_shards);
    cfg.write_double(options_.backpressure.widen_threshold);
    cfg.write_double(options_.backpressure.relax_threshold);
    cfg.write_u32(options_.backpressure.max_window_factor);
    cfg.write_double(options_.backpressure.slack_step);
    cfg.write_double(options_.backpressure.max_slack);
    fingerprint_ = fim::checkpoint_fingerprint(
        "stream", xxh64(raw.data(), raw.size()), 0,
        xxh64(cfg.data().data(), cfg.data().size()));
    resolve_kill_point();
  }

  StreamResult run() {
    ctx_.set_spill_fs(&fs_);
    u64 start_batch = 1;
    if (options_.checkpoint) {
      auto restored =
          load_latest_stream_snapshot(*options_.checkpoint, fingerprint_);
      if (restored) {
        restore(*restored);
        start_batch = restored->batch + 1;
        resumed_batch_ = restored->batch;
        obs::count(obs::CounterId::kCheckpointPassesSkipped,
                   restored->batch);
      }
    }
    for (u64 b = start_batch; b <= options_.num_batches; ++b) run_batch(b);
    finalize();
    return make_result();
  }

 private:
  // --- kill points -------------------------------------------------------

  void resolve_kill_point() {
    kill_batch_ = options_.kill_batch;
    kill_phase_ = options_.kill_phase;
    const engine::FaultProfile& fp = ctx_.fault_injector().profile();
    if (kill_batch_ == 0 && fp.stream_kill_batch != 0) {
      kill_batch_ = fp.stream_kill_batch;
      kill_phase_ = fp.stream_kill_phase;
    }
    if (kill_batch_ == 0 && fp.stream_seed != 0) {
      // Derive a (batch, phase) pair by hashing the seed, so a CI loop can
      // sweep kill points with nothing but YAFIM_FAULT_STREAM_SEED.
      kill_batch_ =
          1 + mix64(fp.stream_seed ^ 0x9E3779B97F4A7C15ULL) %
                  options_.num_batches;
      kill_phase_ = static_cast<u32>(
          mix64(fp.stream_seed ^ 0xC2B2AE3D27D4EB4FULL) % kNumStreamPhases);
    }
    kill_phase_ = kill_phase_ % kNumStreamPhases;
  }

  void maybe_kill(u64 batch, StreamPhase phase) {
    if (kill_batch_ != 0 && batch == kill_batch_ &&
        static_cast<u32>(phase) == kill_phase_) {
      throw StreamKilledError(batch, phase);
    }
  }

  // --- resume ------------------------------------------------------------

  void restore(const StreamCheckpointState& s) {
    total_ = s.total_transactions;
    minc_ = s.min_support_count;
    state_.window_factor = s.window_factor;
    state_.reverify_slack = s.reverify_slack;
    controller_.restore_stats(s.widenings, s.slack_raises);
    reverifications_ = s.reverifications;
    supports_.reserve(s.supports.size());
    for (const auto& [itemset, support] : s.supports) {
      supports_.emplace(itemset, support);
    }
    frontier_.reserve(s.frontier.size());
    for (const Itemset& f : s.frontier) frontier_.insert(f);
    batches_ = s.batches;

    // The SimFS receiver state died with the process: rebuild the ingest
    // history by replaying the deterministic source from offset 0, priced
    // as one sequential WAL read-back.
    ctx_.set_pass(0);
    source_.seek(0);
    history_ = source_.take(s.source_offset);
    u64 wal_bytes = 0;
    for (const Transaction& t : history_) {
      wal_bytes += TransactionSource::transaction_bytes(t);
    }
    sim::StageRecord replay;
    replay.label = "stream:recover-replay";
    replay.kind = sim::StageKind::kSparkStage;
    replay.tasks = sim::split_work(
        s.source_offset * (1 + ctx_.cluster().record_parse_work),
        partitions());
    replay.dfs_read_bytes = wal_bytes;
    ctx_.record(std::move(replay));
  }

  // --- one micro-batch ---------------------------------------------------

  void run_batch(u64 b) {
    // Pin the fault-draw stream to the batch index: a resumed run re-derives
    // the same per-stage salts as the uninterrupted one, so injected task
    // failures / stragglers land on identical draws (exactly-once even
    // under composition with the other fault axes).
    ctx_.set_stage_epoch(b);
    ctx_.set_pass(static_cast<u32>(b));
    const std::string label = batch_label(b);
    const size_t stage_base = ctx_.report().stages().size();

    StreamBatchStats stats;
    stats.batch = b;
    stats.window_factor = state_.window_factor;
    // The interval this batch is judged against is the span of simulated
    // ingest it covers -- widening the window grows the budget too.
    const double interval_s =
        options_.source.window_s * stats.window_factor;

    // ---- ingest ----
    maybe_kill(b, StreamPhase::kIngest);
    const u64 n = source_.window_count(b, state_.window_factor);
    std::vector<Transaction> arrived = source_.take(n);
    u64 wal_bytes = 0;
    ByteWriter wal;
    wal.write_u64(arrived.size());
    for (const Transaction& t : arrived) {
      wal.write_u32_vec(t);
      wal_bytes += TransactionSource::transaction_bytes(t);
    }
    fs_.write("stream/wal/" + label, wal.take());
    {
      sim::StageRecord ingest;
      ingest.label = label + ":ingest";
      ingest.kind = sim::StageKind::kSparkStage;
      ingest.pass = ctx_.pass();
      ingest.tasks = sim::split_work(
          n * (1 + ctx_.cluster().stream_ingest_work), partitions());
      ingest.dfs_write_bytes = wal_bytes;
      ctx_.record(std::move(ingest));
    }
    history_.insert(history_.end(), arrived.begin(), arrived.end());
    stats.transactions = n;
    obs::count(obs::CounterId::kStreamTransactions, n);

    // ---- count ----
    maybe_kill(b, StreamPhase::kCount);
    // Both the item job and the tracked job consume this source, but a
    // parallelize() node is driver-held and never recomputed, so a
    // persist() here would be dead code (YL003).
    auto batch_rdd = ctx_.parallelize(std::move(arrived), options_.partitions)
                         .named(label + ":transactions");

    // Batch L1: every item's arrival count this window (no threshold -- an
    // infrequent item may become frequent later, so all counts are kept).
    std::vector<CountPair> item_counts =
        batch_rdd
            .flat_map([](const Transaction& t) { return t; })
            .named(label + ":items")
            .map([](const fim::Item& i) { return CountPair(Itemset{i}, 1); })
            .reduce_by_key([](u64 a, u64 c) { return a + c; }, 0,
                           fim::ItemsetHash{}, label + ":item-count")
            .named(label + ":item-counts")
            .collect(label + ":item-collect");

    // Batch supports of every tracked k>=2 itemset, through the shared
    // counting core (min_count = 1: zero-support sets merge as +0).
    std::vector<CountPair> tracked_counts;
    std::vector<std::vector<Itemset>> levels = tracked_by_level();
    if (!levels.empty()) {
      tracked_counts =
          count_over(batch_rdd, std::move(levels), label + ":track", b);
    }

    // ---- merge ----
    maybe_kill(b, StreamPhase::kMerge);
    total_ += n;
    for (auto& [itemset, support] : item_counts) {
      supports_[itemset] += support;
    }
    for (auto& [itemset, support] : tracked_counts) {
      supports_[itemset] += support;
    }
    minc_ = min_support_count();
    const u64 hi = entry_threshold();
    // Hysteresis over the running supports: exit below MinSup (any size),
    // enter at the slack-raised threshold (items here; k>=2 sets inside the
    // level-wise re-verification walk, where the universe is rebuilt).
    for (const auto& [itemset, support] : supports_) {
      if (support < minc_) {
        frontier_.erase(itemset);
      } else if (itemset.size() == 1 && support >= hi) {
        frontier_.insert(itemset);
      }
    }

    // ---- reverify ----
    maybe_kill(b, StreamPhase::kReverify);
    stats.new_candidates = reverify(label, b, hi);
    const u64 deferred = count_deferred(hi);
    obs::count(obs::CounterId::kStreamReverifyDeferred, deferred);

    // ---- snapshot ----
    maybe_kill(b, StreamPhase::kSnapshot);
    {
      sim::SimReport slice;
      const auto& stages = ctx_.report().stages();
      for (size_t i = stage_base; i < stages.size(); ++i) {
        slice.add(stages[i]);
      }
      stats.sim_seconds = slice.total_seconds(ctx_.cost_model());
    }
    batches_.push_back(stats);
    deferred_at_close_ = deferred;
    // Controller first, snapshot second: the snapshot carries the posture
    // the *next* batch will run with, so a resume continues mid-ladder.
    controller_.observe(stats.sim_seconds, interval_s, deferred, &state_,
                        &ctx_.linter());
    if (options_.checkpoint) {
      save_stream_snapshot(*options_.checkpoint, snapshot_state(b));
    }

    // ---- boundary ----
    maybe_kill(b, StreamPhase::kBoundary);
    obs::count(obs::CounterId::kStreamBatches);
  }

  // --- incremental frontier maintenance ----------------------------------

  /// Level-wise walk over the frontier: rebuild the candidate universe with
  /// apriori_gen, count never-seen candidates over the full history, apply
  /// hysteresis per level (entries at `hi`, exits at MinSup), and drop
  /// tracked itemsets that fell out of the universe. Returns the number of
  /// candidates re-verified. Because level k's frontier is final before
  /// level k+1 is generated, a single walk reaches the fixpoint.
  u64 reverify(const std::string& label, u64 b, u64 hi) {
    std::vector<Itemset> prev;
    for (const auto& [itemset, support] : supports_) {
      (void)support;
      if (itemset.size() == 1 && frontier_.count(itemset)) {
        prev.push_back(itemset);
      }
    }
    std::sort(prev.begin(), prev.end(), itemset_less);

    ItemsetSet universe;
    u64 reverified = 0;
    for (u32 k = 2; !prev.empty(); ++k) {
      engine::work::Scope gen_scope;
      std::vector<Itemset> candidates = fim::apriori_gen(prev, k);
      {
        sim::StageRecord gen;
        gen.label = label + ":reverify" + std::to_string(k) + ":ap_gen";
        gen.kind = sim::StageKind::kOverhead;
        gen.pass = ctx_.pass();
        gen.driver_work = gen_scope.measured();
        ctx_.record(std::move(gen));
      }
      if (candidates.empty()) break;

      std::vector<Itemset> fresh;
      for (const Itemset& c : candidates) {
        if (!supports_.count(c)) fresh.push_back(c);
      }
      if (!fresh.empty()) {
        reverified += fresh.size();
        obs::count(obs::CounterId::kStreamReverifications, fresh.size());
        // A crossing happened: count the new candidates over everything
        // ingested so far, so their supports are exact full-history values.
        for (const Itemset& c : fresh) supports_.emplace(c, 0);
        auto history_rdd = history();
        std::vector<std::vector<Itemset>> level;
        level.push_back(std::move(fresh));
        for (auto& [itemset, support] : count_over(
                 history_rdd, std::move(level),
                 label + ":reverify" + std::to_string(k), b)) {
          supports_[itemset] = support;
        }
      }

      prev.clear();
      for (const Itemset& c : candidates) {
        universe.insert(c);
        const u64 support = supports_[c];
        bool in = frontier_.count(c) > 0;
        if (!in && support >= hi) {
          frontier_.insert(c);
          in = true;
        } else if (in && support < minc_) {
          frontier_.erase(c);
          in = false;
        }
        if (in) prev.push_back(c);
      }
    }

    // Tracked itemsets outside the rebuilt universe stop being counted; if
    // they ever re-enter, they come back as fresh candidates and get an
    // exact full-history recount above.
    for (auto it = supports_.begin(); it != supports_.end();) {
      if (it->first.size() >= 2 && universe.count(it->first) == 0) {
        frontier_.erase(it->first);
        it = supports_.erase(it);
      } else {
        ++it;
      }
    }
    return reverified;
  }

  /// Count a batch of candidate levels against `transactions` through the
  /// shared core, min_count = 1. Caller owns merging the result.
  std::vector<CountPair> count_over(engine::RDD<Transaction>& transactions,
                                    std::vector<std::vector<Itemset>> levels,
                                    const std::string& pass_name, u64 b) {
    auto trees = std::make_shared<std::vector<fim::HashTree>>();
    u64 tree_bytes = 0;
    u32 kmin = 0;
    for (auto& level : levels) {
      std::sort(level.begin(), level.end(), itemset_less);
      const u32 k = static_cast<u32>(level.front().size());
      kmin = kmin == 0 ? k : std::min(kmin, k);
      trees->emplace_back(std::move(level), options_.branching,
                          options_.leaf_capacity);
      tree_bytes += trees->back().serialized_bytes();
    }
    const u64 id_space = fim::HashTree::assign_id_offsets(*trees);

    // Same degradation rule as the batch miner, re-taken per job: when the
    // trees outgrow the tightest executor (e.g. PR-7's shrink axis fired),
    // shard the candidate store instead of broadcasting it whole.
    const bool partitioned =
        options_.broadcast_mode == fim::BroadcastMode::kPartitioned ||
        (options_.broadcast_mode == fim::BroadcastMode::kAuto &&
         !ctx_.memory_budget().broadcast_fits(tree_bytes));

    std::optional<engine::RDD<fim::VerticalBitmapIndex>> vertical;
    if (options_.count_mode == fim::CountMode::kVerticalBitmap &&
        !partitioned) {
      // Streaming data is new every batch, so the index is rebuilt per job
      // rather than served from a run-long cache like the batch miner's.
      vertical.emplace(transactions.map_partitions(
          [](const std::vector<Transaction>& part) {
            std::vector<fim::VerticalBitmapIndex> out;
            out.emplace_back(part);
            return out;
          }));
      (void)vertical->named(pass_name + ":bitmaps");
    }

    fim::CountCoreOptions opt;
    opt.count_mode = options_.count_mode;
    opt.use_hash_tree = options_.use_hash_tree;
    opt.partitioned = partitioned;
    opt.broadcast_shards = options_.broadcast_shards;
    opt.branching = options_.branching;
    opt.leaf_capacity = options_.leaf_capacity;
    opt.kmin = std::max<u32>(kmin, 2);
    opt.min_count = 1;
    opt.pass_name = pass_name;
    (void)b;
    return fim::count_candidate_trees(ctx_, transactions, trees, tree_bytes,
                                      id_space, &vertical, opt);
  }

  /// Tracked k>=2 itemsets grouped into sorted levels (for tree builds).
  std::vector<std::vector<Itemset>> tracked_by_level() const {
    std::vector<std::vector<Itemset>> levels;
    for (const auto& [itemset, support] : supports_) {
      (void)support;
      const size_t k = itemset.size();
      if (k < 2) continue;
      if (levels.size() < k - 1) levels.resize(k - 1);
      levels[k - 2].push_back(itemset);
    }
    while (!levels.empty() && levels.back().empty()) levels.pop_back();
    std::erase_if(levels, [](const auto& l) { return l.empty(); });
    return levels;
  }

  /// Fresh RDD over the full ingested history (driver-held replay buffer).
  /// Not persisted: parallelize() sources are never recomputed, so the
  /// multi-job consumption is free and a persist() would be dead (YL003).
  engine::RDD<Transaction> history() {
    return ctx_.parallelize(history_, options_.partitions)
        .named("stream:history");
  }

  // --- thresholds --------------------------------------------------------

  u64 min_support_count() const {
    return fim::min_count_ceil(options_.min_support, total_);
  }

  /// Frontier-entry threshold under the current backpressure slack.
  u64 entry_threshold() const {
    const double raw =
        static_cast<double>(minc_) * (1.0 + state_.reverify_slack);
    return std::max<u64>(static_cast<u64>(std::ceil(raw - 1e-9)), minc_);
  }

  /// Itemsets at or above MinSup whose frontier entry the slack deferred.
  u64 count_deferred(u64 hi) const {
    if (hi <= minc_) return 0;
    u64 deferred = 0;
    for (const auto& [itemset, support] : supports_) {
      if (support >= minc_ && support < hi &&
          frontier_.count(itemset) == 0) {
        ++deferred;
      }
    }
    return deferred;
  }

  // --- finalize ----------------------------------------------------------

  /// Drain every deferral: one slack-free merge + reverify walk. Both the
  /// interrupted and uninterrupted run execute this from identical
  /// boundary state, so the final output is bit-identical -- and because
  /// slack only ever deferred frontier *entries*, the drained frontier is
  /// exactly batch Apriori's answer over the concatenated history.
  void finalize() {
    ctx_.set_pass(0);
    if (total_ == 0) return;
    minc_ = min_support_count();
    for (const auto& [itemset, support] : supports_) {
      if (support < minc_) {
        frontier_.erase(itemset);
      } else if (itemset.size() == 1) {
        frontier_.insert(itemset);
      }
    }
    reverify("drain", options_.num_batches, minc_);
    deferred_at_close_ = count_deferred(entry_threshold());
  }

  // --- state marshalling -------------------------------------------------

  StreamCheckpointState snapshot_state(u64 b) const {
    StreamCheckpointState s;
    s.fingerprint = fingerprint_;
    s.batch = b;
    s.source_offset = source_.offset();
    s.total_transactions = total_;
    s.min_support_count = minc_;
    s.window_factor = state_.window_factor;
    s.reverify_slack = state_.reverify_slack;
    s.widenings = controller_.widenings();
    s.slack_raises = controller_.slack_raises();
    s.reverifications = reverifications_ + lifetime_reverified();
    s.supports.assign(supports_.begin(), supports_.end());
    s.frontier.assign(frontier_.begin(), frontier_.end());
    s.batches = batches_;
    return s;
  }

  u64 lifetime_reverified() const {
    u64 total = 0;
    for (const StreamBatchStats& s : batches_) {
      if (s.batch > resumed_batch_) total += s.new_candidates;
    }
    return total;
  }

  StreamResult make_result() const {
    StreamResult r;
    r.itemsets = fim::FrequentItemsets(minc_, total_);
    std::vector<Itemset> frequent(frontier_.begin(), frontier_.end());
    std::sort(frequent.begin(), frequent.end(), itemset_less);
    for (const Itemset& s : frequent) {
      r.itemsets.add(s, supports_.at(s));
    }
    r.total_transactions = total_;
    r.min_support_count = minc_;
    r.resumed_batch = resumed_batch_;
    r.window_factor = state_.window_factor;
    r.reverify_slack = state_.reverify_slack;
    r.widenings = controller_.widenings();
    r.slack_raises = controller_.slack_raises();
    r.reverifications = reverifications_ + lifetime_reverified();
    r.deferred_at_close = deferred_at_close_;
    r.ingest_interval_s = options_.source.window_s * state_.window_factor;
    r.batches = batches_;
    return r;
  }

  u32 partitions() const {
    return options_.partitions ? options_.partitions
                               : ctx_.default_partitions();
  }

  engine::Context& ctx_;
  simfs::SimFS& fs_;
  StreamOptions options_;
  TransactionSource source_;
  BackpressureController controller_;
  BackpressureState state_;

  u64 fingerprint_ = 0;
  u64 kill_batch_ = 0;
  u32 kill_phase_ = 0;

  std::vector<Transaction> history_;
  SupportMap supports_;
  ItemsetSet frontier_;
  u64 total_ = 0;
  u64 minc_ = 0;
  u64 resumed_batch_ = 0;
  u64 reverifications_ = 0;  ///< restored from snapshot (pre-resume batches)
  u64 deferred_at_close_ = 0;
  std::vector<StreamBatchStats> batches_;
};

}  // namespace

const char* stream_phase_name(StreamPhase phase) {
  switch (phase) {
    case StreamPhase::kIngest: return "ingest";
    case StreamPhase::kCount: return "count";
    case StreamPhase::kMerge: return "merge";
    case StreamPhase::kReverify: return "reverify";
    case StreamPhase::kSnapshot: return "snapshot";
    case StreamPhase::kBoundary: return "boundary";
  }
  return "unknown";
}

StreamKilledError::StreamKilledError(u64 batch, StreamPhase phase)
    : std::runtime_error("stream killed at batch " + std::to_string(batch) +
                         " phase " + stream_phase_name(phase)),
      batch_(batch),
      phase_(phase) {}

double StreamResult::steady_batch_seconds() const {
  if (batches.empty()) return 0.0;
  const size_t quartile = std::max<size_t>(1, batches.size() / 4);
  double sum = 0.0;
  for (size_t i = batches.size() - quartile; i < batches.size(); ++i) {
    sum += batches[i].sim_seconds;
  }
  return sum / static_cast<double>(quartile);
}

StreamResult stream_mine(engine::Context& ctx, simfs::SimFS& fs,
                         const fim::TransactionDB& source_db,
                         const StreamOptions& options) {
  return StreamingMiner(ctx, fs, source_db, options).run();
}

}  // namespace yafim::stream
