// Broadcast variables (paper §IV-C).
//
// YAFIM must ship the candidate hash tree to every worker each iteration.
// Spark's broadcast abstraction sends the payload to each node once (tree /
// torrent distribution) instead of once per task through the driver. The
// Context's ShareMode selects which of the two cost models the next stage is
// charged with; the ablation bench flips it to reproduce the paper's
// motivation for using broadcast.
#pragma once

#include <memory>

#include "engine/context.h"
#include "util/common.h"

namespace yafim::engine {

/// Read-only handle to a value shared with all tasks of subsequent stages.
template <typename T>
class Broadcast {
 public:
  explicit Broadcast(std::shared_ptr<const T> data) : data_(std::move(data)) {}

  const T& operator*() const { return *data_; }
  const T* operator->() const { return data_.get(); }
  const T& value() const { return *data_; }

 private:
  std::shared_ptr<const T> data_;
};

template <typename T>
Broadcast<T> Context::broadcast(T value, u64 bytes, const std::string& name) {
  // Lint against the configured per-executor memory before liveness
  // scaling: every live node must hold the full payload.
  if (linter_.enabled()) linter_.check_broadcast(bytes, name);
  // The full payload becomes resident on every executor for the pass.
  memory_budget_.note_broadcast(bytes);
  // Blacklisted executors receive no tasks, so the tree distribution skips
  // them: charge only the live fraction of the cluster, rounded up --
  // truncation would undercharge every broadcast whose bytes don't divide
  // the node count (to zero, for payloads under `nodes` bytes).
  const FaultInjector& injector = fault_;
  const u32 nodes = injector.nodes();
  const u32 live = injector.live_nodes();
  if (live < nodes) bytes = (bytes * live + nodes - 1) / nodes;
  add_pending_broadcast(bytes);
  return Broadcast<T>(std::make_shared<const T>(std::move(value)));
}

}  // namespace yafim::engine
