// The "resilient" in RDD: lineage-based fault recovery.
//
// Caches the transactions RDD in (simulated) executor memory, kills an
// executor node mid-computation, and shows the engine recomputing exactly
// the lost partitions from lineage -- with bit-identical results and no
// replication, which is the RDD fault-tolerance story the paper builds on.
//
//   $ ./examples/fault_tolerance
#include <cstdio>

#include "datagen/quest.h"
#include "engine/rdd.h"
#include "fim/itemset.h"
#include "util/log.h"

using namespace yafim;

int main() {
  set_log_level(LogLevel::kWarn);

  datagen::QuestParams params;
  params.num_transactions = 50000;
  params.num_items = 200;
  params.num_patterns = 40;
  auto db = datagen::generate_quest(params);
  std::printf("dataset: %llu transactions\n", (unsigned long long)db.size());

  engine::Context ctx;  // 12 simulated nodes
  auto transactions =
      ctx.parallelize(db.release(), 48)
          .map([](const fim::Transaction& t) { return t; });  // parse step
  transactions.persist();

  auto count_items = [&] {
    return transactions
        .flat_map([](const fim::Transaction& t) { return t; })
        .map([](const fim::Item& i) { return std::pair<fim::Item, u64>(i, 1); })
        .reduce_by_key([](u64 a, u64 b) { return a + b; })
        .collect_as_map();
  };

  const auto before = count_items();
  std::printf("first action: counted %zu distinct items "
              "(cache now populated; recomputations so far: %llu)\n",
              before.size(),
              (unsigned long long)ctx.fault_injector().recomputations());

  // An executor dies: its cached partitions are gone.
  const u64 lost = ctx.fault_injector().kill_executor(5);
  std::printf("\n*** killed executor node 5: %llu cached partitions lost\n",
              (unsigned long long)lost);

  const auto after = count_items();
  std::printf("re-ran the count: %zu distinct items, recomputations: %llu "
              "(only the lost partitions were rebuilt from lineage)\n",
              after.size(),
              (unsigned long long)ctx.fault_injector().recomputations());
  std::printf("results identical: %s\n", before == after ? "yes" : "NO");

  // A second failure, this time of a single partition.
  ctx.fault_injector().fail_partition(transactions.id(), 7);
  const auto again = count_items();
  std::printf("\nafter losing one more partition: identical results: %s, "
              "total recomputations: %llu / 48 partitions\n",
              before == again ? "yes" : "NO",
              (unsigned long long)ctx.fault_injector().recomputations());
  return 0;
}
