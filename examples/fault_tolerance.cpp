// The "resilient" in RDD: task-level fault tolerance, end to end.
//
// Four mechanisms, demonstrated in sequence on the same dataset:
//
//   1. Lineage recovery -- an executor dies, its cached partitions are gone,
//      and the engine rebuilds exactly those partitions from lineage.
//   2. Injected task failures + bounded retries -- a seeded FaultProfile
//      makes task launches fail at random; the scheduler retries each task
//      (and the stage) within a budget, blacklisting consistently sick
//      executors, with bit-identical results.
//   3. Stragglers + speculative execution -- slow tasks get a speculative
//      copy raced on another node; the first finisher wins.
//   4. Memory-pressure cache eviction -- a finite executor cache budget
//      LRU-evicts the coldest partitions, which degrade gracefully to
//      lineage recompute on next access.
//
//   $ ./examples/fault_tolerance
#include <cstdio>

#include "datagen/quest.h"
#include "engine/rdd.h"
#include "fim/itemset.h"
#include "util/log.h"

using namespace yafim;

namespace {

using ItemCounts = std::unordered_map<fim::Item, u64>;

ItemCounts count_items(engine::RDD<fim::Transaction>& transactions) {
  return transactions
      .flat_map([](const fim::Transaction& t) { return t; })
      .map([](const fim::Item& i) { return std::pair<fim::Item, u64>(i, 1); })
      .reduce_by_key([](u64 a, u64 b) { return a + b; })
      .collect_as_map();
}

fim::TransactionDB make_db() {
  datagen::QuestParams params;
  params.num_transactions = 50000;
  params.num_items = 200;
  params.num_patterns = 40;
  return datagen::generate_quest(params);
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);

  auto db = make_db();
  std::printf("dataset: %llu transactions\n", (unsigned long long)db.size());

  // ---- 1. lineage recovery after an executor death ---------------------
  std::printf("\n=== 1. executor death -> lineage recovery ===\n");
  ItemCounts reference;
  {
    engine::Context::Options opts;
    opts.fault = engine::FaultProfile{};
    engine::Context ctx(opts);  // 12 simulated nodes, injection off
    auto transactions = ctx.parallelize(db.transactions(), 48)
                            .map([](const fim::Transaction& t) { return t; });
    transactions.persist();

    reference = count_items(transactions);
    std::printf("first action: counted %zu distinct items "
                "(cache now populated)\n",
                reference.size());

    const u64 lost = ctx.fault_injector().kill_executor(5);
    std::printf("killed executor node 5: %llu cached partitions lost\n",
                (unsigned long long)lost);

    const auto after = count_items(transactions);
    std::printf("re-ran the count: results identical: %s, "
                "lineage recomputations: %llu / 48 partitions\n",
                reference == after ? "yes" : "NO",
                (unsigned long long)ctx.fault_injector().recomputations());

    ctx.fault_injector().fail_partition(transactions.id(), 7);
    const auto again = count_items(transactions);
    std::printf("after losing one more partition: identical: %s, "
                "total recomputations: %llu\n",
                reference == again ? "yes" : "NO",
                (unsigned long long)ctx.fault_injector().recomputations());
  }

  // ---- 2. injected task failures, retries, blacklisting ----------------
  std::printf("\n=== 2. injected task failures -> bounded retries ===\n");
  {
    engine::Context::Options opts;
    opts.fault = engine::FaultProfile{};
    opts.fault.seed = 2024;
    opts.fault.task_failure_p = 0.08;
    opts.fault.node_failure_bias = {12.0};  // node 0 is a lemon
    opts.fault.blacklist_after = 3;
    engine::Context ctx(opts);

    auto transactions = ctx.parallelize(db.transactions(), 48)
                            .map([](const fim::Transaction& t) { return t; });
    transactions.persist();
    const auto counts = count_items(transactions);
    const auto& inj = ctx.fault_injector();
    std::printf("mined through %llu injected failures: %llu task retries, "
                "%llu stage retries, results identical: %s\n",
                (unsigned long long)inj.task_failures(),
                (unsigned long long)inj.task_retries(),
                (unsigned long long)inj.stage_retries(),
                counts == reference ? "yes" : "NO");
    std::printf("blacklisted executors: %llu (live nodes: %u/%u)\n",
                (unsigned long long)inj.blacklisted_nodes(), inj.live_nodes(),
                inj.nodes());
  }

  // ---- 3. stragglers and speculative execution -------------------------
  std::printf("\n=== 3. stragglers -> speculative execution ===\n");
  {
    engine::Context::Options opts;
    opts.fault = engine::FaultProfile{};
    opts.fault.seed = 7;
    opts.fault.straggler_p = 0.10;  // 10% of tasks run 8x slow
    engine::Context ctx(opts);

    auto transactions = ctx.parallelize(db.transactions(), 48)
                            .map([](const fim::Transaction& t) { return t; });
    const auto counts = count_items(transactions);
    const auto& inj = ctx.fault_injector();
    std::printf("stragglers injected: %llu; speculative copies launched: "
                "%llu (wins: %llu, losses: %llu), results identical: %s\n",
                (unsigned long long)inj.stragglers(),
                (unsigned long long)inj.speculative_launches(),
                (unsigned long long)inj.speculative_wins(),
                (unsigned long long)inj.speculative_losses(),
                counts == reference ? "yes" : "NO");
  }

  // ---- 4. memory pressure -> LRU eviction -> recompute ------------------
  std::printf("\n=== 4. cache budget -> LRU eviction ===\n");
  {
    engine::Context::Options opts;
    opts.fault = engine::FaultProfile{};
    opts.cluster.executor_cache_bytes = 64 << 10;  // 64 KiB per node
    engine::Context ctx(opts);

    auto transactions = ctx.parallelize(db.transactions(), 48)
                            .map([](const fim::Transaction& t) { return t; });
    transactions.persist();
    const auto first = count_items(transactions);
    const auto& inj = ctx.fault_injector();
    std::printf("first pass under a 64 KiB/node budget: %llu evictions "
                "(%llu bytes)\n",
                (unsigned long long)inj.cache_evictions(),
                (unsigned long long)inj.cache_evicted_bytes());
    const auto second = count_items(transactions);
    std::printf("second pass: evicted partitions recomputed from lineage "
                "(%llu recomputations), results identical: %s\n",
                (unsigned long long)inj.recomputations(),
                first == reference && second == reference ? "yes" : "NO");
  }
  return 0;
}
