file(REMOVE_RECURSE
  "CMakeFiles/test_fp_eclat.dir/test_fp_eclat.cpp.o"
  "CMakeFiles/test_fp_eclat.dir/test_fp_eclat.cpp.o.d"
  "test_fp_eclat"
  "test_fp_eclat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fp_eclat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
