# Empty compiler generated dependencies file for yafim_mapreduce.
# This may be replaced when dependencies are built.
