// Shared plumbing for the figure/table benchmark harnesses.
//
// Every harness regenerates one table or figure of the paper: it runs the
// real miners over the regenerated benchmark datasets on the simulated
// 12-node cluster and prints the same rows/series the paper reports
// (simulated seconds; see DESIGN.md §5 for the methodology). `--scale=F`
// scales dataset sizes (default 1.0 = paper-sized datasets; the sizeup
// bench uses smaller defaults to keep host runtime modest).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "datagen/benchmarks.h"
#include "engine/context.h"
#include "fim/mr_apriori.h"
#include "fim/yafim.h"
#include "simfs/simfs.h"
#include "util/log.h"
#include "util/table.h"

namespace yafim::benchharness {

struct Args {
  double scale = 1.0;
  bool csv = false;
};

inline Args parse_args(int argc, char** argv, double default_scale = 1.0) {
  Args args;
  args.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = std::atof(argv[i] + 8);
      YAFIM_CHECK(args.scale > 0.0, "--scale must be positive");
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      args.csv = true;
    } else if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      // Tolerate google-benchmark-style flags so `for b in bench/*` sweeps
      // can pass uniform flags.
    } else {
      std::fprintf(stderr, "usage: %s [--scale=F] [--csv]\n", argv[0]);
      std::exit(2);
    }
  }
  set_log_level(LogLevel::kWarn);
  return args;
}

inline void print_table(const Table& table, const Args& args) {
  std::fputs(args.csv ? table.to_csv().c_str() : table.to_ascii().c_str(),
             stdout);
}

/// One YAFIM run on a fresh paper-cluster context. Returns the MiningRun
/// and (optionally) hands back the context's report for replays.
inline fim::MiningRun run_yafim(const datagen::BenchmarkDataset& bench,
                                sim::ClusterConfig cluster,
                                sim::SimReport* report_out = nullptr) {
  engine::Context ctx(engine::Context::Options{.cluster = cluster});
  simfs::SimFS fs(cluster);
  fim::YafimOptions opt;
  opt.min_support = bench.paper_min_support;
  auto run = fim::yafim_mine(ctx, fs, bench.db, opt);
  if (report_out) *report_out = ctx.report();
  return run;
}

/// One MRApriori run on a fresh paper-cluster context.
inline fim::MiningRun run_mr(const datagen::BenchmarkDataset& bench,
                             sim::ClusterConfig cluster) {
  engine::Context ctx(engine::Context::Options{.cluster = cluster});
  simfs::SimFS fs(cluster);
  fim::MrAprioriOptions opt;
  opt.min_support = bench.paper_min_support;
  return fim::mr_apriori_mine(ctx, fs, bench.db, opt);
}

inline std::string support_pct(double frac) {
  char buf[32];
  if (frac >= 0.01) {
    std::snprintf(buf, sizeof(buf), "%.0f%%", frac * 100.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%%", frac * 100.0);
  }
  return buf;
}

}  // namespace yafim::benchharness
