// DetSan: runtime determinism sanitizer for the RDD engine.
//
// Every guarantee the engine ships -- bit-identical resume after kill -9,
// bit-identity across CountModes, Toivonen exactness certificates -- rests
// on an unchecked assumption: closures passed to map/filter/reduce are pure,
// and reduce functions are commutative/associative. DetSan checks it.
//
// Mechanics: for a deterministic sample of (node, partition) tasks, the
// operator re-executes its own work with the input elements visited in a
// permuted order and canonically hashes both outputs (util/canon_hash.h).
// Permuting the task-visible element stream is exactly what a rotated
// thread-pool schedule can change in this engine -- tasks own whole
// partitions, so scheduling only perturbs the order state-sharing closures
// observe work in; a pure closure cannot tell the difference, an impure or
// non-commutative one diverges. Which hash shape a replay compares under is
// the operator's determinism contract (see DESIGN.md "Determinism model"):
//
//   map / flat_map / filter     permuted input, multiset-equal output
//   reduce (partition fold)     permuted fold order, equal result
//   reduce_by_key / aggregate   permuted combine order, multiset-equal map
//   sum_arrays                  permuted accumulation order, equal arrays
//   map_partitions              same-order re-run, identical output
//                               (partition functions may legitimately
//                               depend on element order; replay only checks
//                               they are a *function* of it)
//   shuffle spill               serialize twice, identical bytes
//                               (catches uninitialized bytes in blocks)
//
// A divergence is reported as PlanLinter rule YL007 (severity error) naming
// the node, the executing stage, and the first diverging element; with
// fail_fast (mine_cli --detsan=error) it also throws DetSanError. Replays
// run inside the task's work::Scope, so their cost is priced in the sim
// like any other work; obs counters detsan.tasks_replayed /
// detsan.divergences surface the volume.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/common.h"

namespace yafim::engine {

class PlanLinter;

/// Sanitizer configuration (ContextOptions::detsan). Disabled by default:
/// the only cost then is one branch per hook.
struct DetSanOptions {
  bool enabled = false;
  /// Fraction of (node, partition) tasks replayed. Sampling is a
  /// deterministic function of (seed, node id, partition), so two runs of
  /// the same plan replay the same tasks. Replayed work is roughly one
  /// extra pass over the sampled task's input, so expected overhead is
  /// about sample_rate of total sim seconds (gated at 10% in perf_gate.py).
  double sample_rate = 1.0 / 16.0;
  u64 seed = 0xDE75A11;
  /// Throw DetSanError at the first divergence (mine_cli --detsan=error).
  /// Off: divergences are recorded as YL007 diagnostics and counted, and
  /// the run continues.
  bool fail_fast = false;
};

/// A replay diverged and DetSanOptions::fail_fast is set. Carries the
/// offending node's debug name, the stage label that was executing, and a
/// description of the first diverging element.
class DetSanError : public std::runtime_error {
 public:
  DetSanError(std::string node_name, std::string stage, std::string element,
              const std::string& what);

  const std::string& node_name() const { return node_name_; }
  const std::string& stage() const { return stage_; }
  /// First diverging element, e.g. "element index 3 of 40".
  const std::string& element() const { return element_; }

 private:
  std::string node_name_;
  std::string stage_;
  std::string element_;
};

/// The sanitizer. Owned by Context (Context::detsan()); hooks in
/// engine/rdd.h consult it from pool threads, so everything here is
/// thread-safe. When enabled, Context forces the plan linter on so YL007
/// diagnostics can resolve node names through the linter's plan shadow.
class DetSan {
 public:
  /// Called once from the Context constructor. `linter` may be null (then
  /// divergences are only counted / thrown, not emitted as YL007).
  void configure(const DetSanOptions& options, PlanLinter* linter);

  bool enabled() const { return enabled_; }

  /// Deterministic sampling decision for one (node, partition) task.
  bool should_replay(u32 node_id, u32 pid) const;

  /// Seed for the replay permutation of one (node, partition) task.
  u64 replay_seed(u32 node_id, u32 pid) const;

  /// Deterministic permutation of [0, n). Never the identity for n >= 2 --
  /// a replay that happens to visit elements in the original order would
  /// silently test nothing.
  static std::vector<u32> permutation(size_t n, u64 seed);

  /// Record one completed replay (divergent or not).
  void note_replayed();

  /// Record a divergence on node `node_id` during operator `op` ("map",
  /// "reduce", ...); `element` names the first diverging element. Emits
  /// YL007 through the linter, bumps counters, and throws DetSanError when
  /// fail_fast is set.
  void report_divergence(u32 node_id, const char* op,
                         const std::string& element);
  /// As above for checks that run outside the plan shadow (shuffle spill
  /// blocks have no rdd id); `what` names the checked object instead.
  void report_divergence_raw(const std::string& what, const char* op,
                             const std::string& element);

  u64 tasks_replayed() const {
    return replayed_.load(std::memory_order_relaxed);
  }
  u64 divergences() const {
    return divergences_.load(std::memory_order_relaxed);
  }

  /// Stage label currently executing on this thread ("" outside any task).
  /// Set by Context::measure_tasks around every task body so divergence
  /// reports can name the stage without threading a label through every
  /// compute() signature.
  static const std::string& current_stage();

  /// RAII thread-local stage label (one per task body).
  class StageScope {
   public:
    explicit StageScope(const std::string* label);
    ~StageScope();
    StageScope(const StageScope&) = delete;
    StageScope& operator=(const StageScope&) = delete;

   private:
    const std::string* prev_;
  };

 private:
  void diverged(const std::string& node_name, const char* op,
                const std::string& element);

  // Set once in configure() before any worker thread exists; read-only
  // afterwards.
  bool enabled_ = false;
  double sample_rate_ = 1.0 / 16.0;
  u64 seed_ = 0;
  bool fail_fast_ = false;
  PlanLinter* linter_ = nullptr;

  // Always-on (unlike obs counters, which are gated on tracing): the
  // mine_cli `# detsan:` summary line needs them unconditionally.
  std::atomic<u64> replayed_{0};
  std::atomic<u64> divergences_{0};
};

}  // namespace yafim::engine
