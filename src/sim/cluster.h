// Cluster model: the hardware the paper evaluated on, as a config struct.
//
// The paper's testbed is 12 nodes, each with two quad-core 2.4 GHz Xeons,
// 24 GB RAM and a 2 TB disk, connected by commodity Ethernet, running
// Hadoop 0.20.2 and Spark 0.7.3. Their scalability experiments treat the
// cluster as 4 usable cores per node (48 cores at 12 nodes), so that is our
// default too.
//
// Nothing in this struct executes; it parameterises the deterministic cost
// model (sim/cost_model.h) that converts measured work into simulated
// cluster seconds.
#pragma once

#include "util/common.h"

namespace yafim::sim {

struct ClusterConfig {
  /// Number of worker nodes.
  u32 nodes = 12;
  /// Cores used for tasks on each node.
  u32 cores_per_node = 4;

  /// Sequential disk bandwidth per node (HDFS reads/writes, MR spills).
  double disk_mbps = 100.0;
  /// Usable network bandwidth per node (~1 GbE after protocol overhead).
  double net_mbps = 110.0;

  /// Spark-style task launch overhead: tasks are closures shipped to live
  /// executors -- cheap, but era-appropriate Spark 0.7 still pays
  /// scheduling + serialization latency per task wave.
  double spark_task_launch_s = 0.15;
  /// Hadoop-0.20-style task launch overhead: every map/reduce task is a
  /// fresh JVM.
  double mr_task_launch_s = 2.0;
  /// Per-MapReduce-job fixed overhead: job submission, scheduling, setup
  /// and cleanup tasks. This is the constant the Apriori-on-MapReduce
  /// papers identify as the killer for level-wise algorithms.
  double mr_job_startup_s = 15.0;
  /// Per-record input-format parse cost, in work units (see
  /// sim::CostModel::kWorkUnitsPerSecPerCore): reading a record through the
  /// RecordReader / text-parsing machinery of this era costs ~1 ms.
  /// The asymmetry the paper exploits is *when* it is paid: Hadoop pays it
  /// for every record on EVERY job (each iteration re-reads its input);
  /// Spark pays it once at textFile() load and keeps the deserialized
  /// objects cached -- unless caching is disabled, in which case lineage
  /// recomputation re-parses each pass (modeled in the ablation).
  u64 record_parse_work = 2000;

  /// Wait before relaunching a failed task attempt (scheduler backoff +
  /// re-shipping the closure); charged once per retry by the cost model.
  double task_retry_backoff_s = 1.0;

  /// Per-node memory budget for persisted RDD partitions, in bytes. When a
  /// node's cached partitions exceed this, the engine LRU-evicts the
  /// coldest ones and later accesses recompute them from lineage. 0 models
  /// the paper's assumption of executors with enough memory (unbounded).
  u64 executor_cache_bytes = 0;

  /// Total RAM per node, in bytes (24 GB on the paper's testbed). Upper
  /// bound on what a single broadcast value may occupy on an executor; the
  /// plan linter (engine/lint.h, rule YL002) flags broadcasts past it.
  u64 executor_memory_bytes = 24ull << 30;

  /// Per-node budget for in-flight shuffle buffers (map-side partials held
  /// in memory until the reduce side consumes them). When a shuffle stage's
  /// buffered bytes exceed nodes * this, the engine spills map outputs to
  /// simfs (optionally compressed) and the reduce side reads them back.
  /// 0 models unbounded shuffle memory (no spill), the seed behavior.
  u64 shuffle_buffer_bytes = 0;

  /// Compression CPU pricing for spilled shuffle blocks, in work units per
  /// KiB of *raw* bytes (sim::CostModel::kWorkUnitsPerSecPerCore). The
  /// defaults model an LZ-class codec: ~250 MB/s/core compress,
  /// ~1 GB/s/core decompress on the paper-era 2.4 GHz Xeons.
  u64 spill_compress_work_per_kb = 8;
  u64 spill_decompress_work_per_kb = 2;

  /// Per-record ingest cost for the streaming micro-batch layer, in work
  /// units: receiver deserialization + write-ahead-log append for one
  /// arriving transaction (~0.25 ms). Cheaper than record_parse_work --
  /// streamed records arrive pre-framed instead of going through the
  /// text-parsing RecordReader -- but nonzero, so the ingest phase shows up
  /// in per-batch latency and the backpressure controller has something to
  /// trade against.
  u64 stream_ingest_work = 500;

  /// HDFS block replication factor.
  u32 hdfs_replication = 3;
  /// HDFS block size.
  u64 hdfs_block_bytes = 64ull << 20;

  u32 total_cores() const { return nodes * cores_per_node; }

  /// Preset matching the paper's testbed.
  static ClusterConfig paper() { return ClusterConfig{}; }

  /// Preset with a given node count (used by the Fig. 5 speedup sweep).
  static ClusterConfig with_nodes(u32 n) {
    ClusterConfig c;
    c.nodes = n;
    return c;
  }
};

}  // namespace yafim::sim
