#include "fim/dist_eclat.h"

#include <algorithm>
#include <map>
#include <memory>

#include "engine/broadcast.h"
#include "engine/rdd.h"
#include "fim/tidlist_mining.h"

namespace yafim::fim {

namespace {

using CountPair = std::pair<Itemset, u64>;

/// Vertical database over the frequent items, broadcast to workers.
struct VerticalDb {
  /// Parallel arrays, ordered by ascending item id.
  std::vector<Item> items;
  std::vector<TidList> tids;

  /// Index of `item` in the arrays, or npos.
  size_t index_of(Item item) const {
    auto it = std::lower_bound(items.begin(), items.end(), item);
    if (it == items.end() || *it != item) return npos;
    return static_cast<size_t>(it - items.begin());
  }

  u64 byte_size() const {
    u64 total = 16;
    for (const TidList& t : tids) total += 8 + t.size() * sizeof(u32) + 4;
    return total;
  }

  static constexpr size_t npos = static_cast<size_t>(-1);
};

void price_passes(engine::Context& ctx, size_t first_stage, MiningRun& run) {
  sim::SimReport slice;
  const auto& stages = ctx.report().stages();
  for (size_t i = first_stage; i < stages.size(); ++i) slice.add(stages[i]);
  const std::vector<double> by_pass = slice.pass_seconds(ctx.cost_model());
  run.setup_seconds = by_pass.empty() ? 0.0 : by_pass[0];
  for (PassStats& pass : run.passes) {
    pass.sim_seconds = pass.k < by_pass.size() ? by_pass[pass.k] : 0.0;
  }
}

}  // namespace

DistEclatRun dist_eclat_mine(engine::Context& ctx, simfs::SimFS& fs,
                             const std::string& input_path,
                             const DistEclatOptions& options) {
  YAFIM_CHECK(options.prefix_depth >= 1, "prefix_depth must be >= 1");
  const size_t first_stage = ctx.report().stages().size();
  DistEclatRun result;
  MiningRun& run = result.run;

  // ---- Load (same stage structure as YAFIM's phase 0) ------------------
  ctx.set_pass(0);
  const std::vector<u8> raw = fs.read(input_path);
  TransactionDB db = TransactionDB::deserialize(raw);
  const u64 num_transactions = db.size();
  const u64 min_count = num_transactions == 0
                            ? 1
                            : db.min_support_count(options.min_support);
  run.itemsets = FrequentItemsets(min_count, num_transactions);
  {
    const u32 tasks =
        options.partitions ? options.partitions : ctx.default_partitions();
    sim::StageRecord load;
    load.label = "disteclat:load+parse";
    load.kind = sim::StageKind::kSparkStage;
    load.pass = 0;
    load.dfs_read_bytes = raw.size();
    load.tasks.assign(
        tasks, sim::TaskRecord{num_transactions *
                               (1 + ctx.cluster().record_parse_work) /
                               tasks});
    ctx.record(std::move(load));
  }
  if (num_transactions == 0) return result;

  auto transactions =
      ctx.parallelize(db.release(), options.partitions)
          .map([](const Transaction& t) { return t; });
  transactions.persist();

  // ---- Pass 1: frequent items + vertical database ----------------------
  ctx.set_pass(1);
  auto item_tid_pairs =
      transactions.zip_with_index("disteclat:tids")
          .flat_map([](const std::pair<Transaction, u64>& indexed) {
            std::vector<std::pair<Item, u32>> out;
            out.reserve(indexed.first.size());
            for (Item item : indexed.first) {
              out.emplace_back(item, static_cast<u32>(indexed.second));
            }
            return out;
          });
  auto grouped = item_tid_pairs.group_by_key(0, std::hash<Item>{},
                                             "disteclat:vertical");
  auto collected = grouped.collect("disteclat:vertical:collect");

  VerticalDb vertical;
  {
    // Deterministic order + the frequency threshold.
    std::map<Item, TidList> by_item;
    for (auto& [item, tids] : collected) {
      if (tids.size() < min_count) continue;
      std::sort(tids.begin(), tids.end());
      by_item.emplace(item, std::move(tids));
    }
    for (auto& [item, tids] : by_item) {
      run.itemsets.add(Itemset{item}, tids.size());
      vertical.items.push_back(item);
      vertical.tids.push_back(std::move(tids));
    }
  }
  run.passes.push_back(PassStats{1, collected.size(),
                                 vertical.items.size(), 0.0});

  // ---- Pass 2: grow seed prefixes of length prefix_depth (driver) ------
  // Each seed is an Eclat equivalence class: a frequent prefix plus the
  // tidlists of its frequent one-item extensions. Growing to depth d emits
  // every frequent itemset of size <= d along the way, so the workers only
  // need to mine sizes > d.
  ctx.set_pass(2);
  std::vector<std::pair<Itemset, std::vector<std::pair<Item, TidList>>>>
      seeds;
  {
    engine::work::Scope driver_scope;
    struct Frame {
      Itemset prefix;
      std::vector<std::pair<Item, TidList>> extensions;
    };
    std::vector<Frame> frontier;
    {
      Frame root;  // the empty prefix; extensions are the frequent items
      for (size_t i = 0; i < vertical.items.size(); ++i) {
        root.extensions.emplace_back(vertical.items[i], vertical.tids[i]);
      }
      frontier.push_back(std::move(root));
    }
    for (u32 depth = 0; depth < options.prefix_depth; ++depth) {
      std::vector<Frame> next;
      for (Frame& frame : frontier) {
        for (size_t i = 0; i < frame.extensions.size(); ++i) {
          Frame child;
          child.prefix = frame.prefix;
          child.prefix.push_back(frame.extensions[i].first);
          // The child's support is its tidlist length; sizes >= 2 are new
          // (size 1 was added from the vertical DB already).
          if (child.prefix.size() >= 2) {
            run.itemsets.add(child.prefix, frame.extensions[i].second.size());
          }
          for (size_t j = i + 1; j < frame.extensions.size(); ++j) {
            TidList tids = intersect_tidlists(frame.extensions[i].second,
                                             frame.extensions[j].second);
            if (tids.size() >= min_count) {
              child.extensions.emplace_back(frame.extensions[j].first,
                                            std::move(tids));
            }
          }
          next.push_back(std::move(child));
        }
      }
      frontier = std::move(next);
    }
    for (Frame& frame : frontier) {
      if (frame.extensions.empty()) continue;  // nothing left to mine
      seeds.emplace_back(std::move(frame.prefix),
                         std::move(frame.extensions));
    }

    sim::StageRecord gen;
    gen.label = "disteclat:seed-mining";
    gen.kind = sim::StageKind::kOverhead;
    gen.pass = 2;
    gen.driver_work = driver_scope.measured();
    ctx.record(std::move(gen));
  }
  result.seed_prefixes = seeds.size();
  run.passes.push_back(PassStats{2, seeds.size(), seeds.size(), 0.0});

  // ---- Pass 3: independent subtree mining on the workers ---------------
  ctx.set_pass(3);
  result.vertical_bytes = vertical.byte_size();
  // Each seed carries its own extension tidlists (the sub-database its
  // subtree needs); the shared broadcast covers lineage-recovery re-reads.
  auto seeds_rdd = ctx.parallelize(std::move(seeds));
  auto broadcast_min = ctx.broadcast(min_count, result.vertical_bytes);
  auto mined =
      seeds_rdd
          .flat_map([broadcast_min](
                        const std::pair<Itemset,
                                        std::vector<std::pair<Item, TidList>>>&
                            seed) {
            std::vector<CountPair> out;
            auto extensions = seed.second;  // mutable working copy
            mine_tidlist_class(seed.first, extensions, *broadcast_min, out);
            return out;
          })
          .collect("disteclat:subtrees:collect");
  u64 deep = 0;
  for (auto& [itemset, support] : mined) {
    run.itemsets.add(std::move(itemset), support);
    ++deep;
  }
  run.passes.push_back(PassStats{3, deep, deep, 0.0});

  ctx.set_pass(0);
  price_passes(ctx, first_stage, run);
  return result;
}

DistEclatRun dist_eclat_mine(engine::Context& ctx, simfs::SimFS& fs,
                             const TransactionDB& db,
                             const DistEclatOptions& options) {
  const std::string path = "hdfs://staging/disteclat-input";
  fs.write(path, db.serialize());
  return dist_eclat_mine(ctx, fs, path, options);
}

}  // namespace yafim::fim
