// Unit tests for TransactionDB: stats, thresholds, the support oracle,
// replication, and both serialization formats.
#include <gtest/gtest.h>

#include "fim/dataset.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

TransactionDB sample_db() {
  return TransactionDB({{1, 2, 3}, {2, 3}, {1, 3}, {3}, {1, 2, 3, 4}});
}

TEST(Dataset, BasicStats) {
  const auto stats = sample_db().stats();
  EXPECT_EQ(stats.num_transactions, 5u);
  EXPECT_EQ(stats.num_items, 4u);
  EXPECT_EQ(stats.item_universe, 5u);  // max item 4, +1
  EXPECT_DOUBLE_EQ(stats.avg_length, 12.0 / 5.0);
  EXPECT_DOUBLE_EQ(stats.max_length, 4.0);
  EXPECT_DOUBLE_EQ(stats.density, (12.0 / 5.0) / 4.0);
}

TEST(Dataset, EmptyDb) {
  TransactionDB db;
  EXPECT_TRUE(db.empty());
  const auto stats = db.stats();
  EXPECT_EQ(stats.num_transactions, 0u);
  EXPECT_EQ(stats.num_items, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_length, 0.0);
}

TEST(Dataset, MinSupportCount) {
  const auto db = sample_db();  // 5 transactions
  EXPECT_EQ(db.min_support_count(0.2), 1u);
  EXPECT_EQ(db.min_support_count(0.21), 2u);
  EXPECT_EQ(db.min_support_count(0.4), 2u);
  EXPECT_EQ(db.min_support_count(1.0), 5u);
  EXPECT_EQ(db.min_support_count(0.0001), 1u);
}

TEST(Dataset, MinSupportCountRejectsBadFractions) {
  const auto db = sample_db();
  EXPECT_DEATH(db.min_support_count(0.0), "relative support");
  EXPECT_DEATH(db.min_support_count(1.5), "relative support");
}

TEST(Dataset, SupportOracle) {
  const auto db = sample_db();
  EXPECT_EQ(db.support({3}), 5u);
  EXPECT_EQ(db.support({1}), 3u);
  EXPECT_EQ(db.support({1, 2}), 2u);
  EXPECT_EQ(db.support({1, 2, 3, 4}), 1u);
  EXPECT_EQ(db.support({5}), 0u);
  EXPECT_EQ(db.support({}), 5u);  // empty set in every transaction
}

TEST(Dataset, ReplicatePreservesRelativeSupport) {
  const auto db = sample_db();
  const auto db3 = db.replicate(3);
  EXPECT_EQ(db3.size(), 15u);
  EXPECT_EQ(db3.support({1, 2}), 3 * db.support({1, 2}));
  EXPECT_EQ(db3.min_support_count(0.4), 6u);
  EXPECT_EQ(db.replicate(1).size(), db.size());
}

TEST(Dataset, BinarySerializationRoundTrip) {
  const auto db = sample_db();
  const auto bytes = db.serialize();
  const auto back = TransactionDB::deserialize(bytes);
  EXPECT_EQ(back.transactions(), db.transactions());
}

TEST(Dataset, BinarySerializationRandomRoundTrip) {
  Rng rng(44);
  std::vector<Transaction> tx;
  for (int i = 0; i < 200; ++i) {
    Transaction t;
    for (int j = 0; j < 30; ++j) {
      if (rng.bernoulli(0.3)) t.push_back(j);
    }
    tx.push_back(std::move(t));
  }
  TransactionDB db(std::move(tx));
  EXPECT_EQ(TransactionDB::deserialize(db.serialize()).transactions(),
            db.transactions());
}

TEST(Dataset, TextRoundTrip) {
  const auto db = sample_db();
  const auto text = db.to_text();
  const auto back = TransactionDB::from_text(text);
  EXPECT_EQ(back.transactions(), db.transactions());
}

TEST(Dataset, FromTextCanonicalizesAndSkipsBlanks) {
  const auto db = TransactionDB::from_text("3 1 2 3\n\n7\n");
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db.transactions()[0], (Transaction{1, 2, 3}));
  EXPECT_EQ(db.transactions()[1], (Transaction{7}));
}

TEST(Dataset, LenientParserSkipsAndCountsMalformedLines) {
  const std::string text =
      "1 2 3\n"        // ok
      "4 x 5\n"        // non-numeric token
      "2 2 9\n"        // duplicate item
      "9 3\n"          // unsorted
      "7\n"            // ok
      "   \n"          // blank (ignored, not malformed)
      "12abc\n"        // glued suffix
      "5 6 7\n";       // ok
  const auto db =
      TransactionDB::from_text(text, TransactionDB::ParseMode::kLenient);
  ASSERT_EQ(db.size(), 3u);
  EXPECT_EQ(db.transactions()[0], (Transaction{1, 2, 3}));
  EXPECT_EQ(db.transactions()[1], (Transaction{7}));
  EXPECT_EQ(db.transactions()[2], (Transaction{5, 6, 7}));

  const ParseStats& p = db.parse_stats();
  EXPECT_EQ(p.lines_total, 7u);  // the blank line is not counted
  EXPECT_EQ(p.bad_token_lines, 2u);
  EXPECT_EQ(p.noncanonical_lines, 2u);
  EXPECT_EQ(p.overlong_lines, 0u);
  EXPECT_EQ(p.malformed(), 4u);
  // The same counters surface through DatasetStats.
  EXPECT_EQ(db.stats().parse.malformed(), 4u);
}

TEST(Dataset, LenientParserRejectsOverlongAndOverflow) {
  std::string glued;
  for (u32 i = 0; i <= TransactionDB::kMaxTransactionItems; ++i) {
    glued += std::to_string(i);
    glued += ' ';
  }
  glued += "\n1 2\n";
  const auto db =
      TransactionDB::from_text(glued, TransactionDB::ParseMode::kLenient);
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(db.parse_stats().overlong_lines, 1u);

  // An item that overflows u32 is a bad token, not a silent wrap.
  const auto db2 = TransactionDB::from_text(
      "99999999999\n3 4\n", TransactionDB::ParseMode::kLenient);
  ASSERT_EQ(db2.size(), 1u);
  EXPECT_EQ(db2.parse_stats().bad_token_lines, 1u);
}

TEST(Dataset, StrictParserKeepsHistoricalBehavior) {
  // Strict takes the numeric prefix of each line and canonicalizes --
  // exactly what it always did -- and reports zero malformed lines.
  const auto db = TransactionDB::from_text("3 1 x 9\n2 2\n");
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db.transactions()[0], (Transaction{1, 3}));
  EXPECT_EQ(db.transactions()[1], (Transaction{2}));
  EXPECT_EQ(db.parse_stats().lines_total, 2u);
  EXPECT_EQ(db.parse_stats().malformed(), 0u);
}

TEST(Dataset, CorruptPayloadAborts) {
  auto bytes = sample_db().serialize();
  bytes.resize(bytes.size() / 2);  // truncate mid-record
  EXPECT_DEATH((void)TransactionDB::deserialize(bytes), "truncated");

  auto padded = sample_db().serialize();
  padded.push_back(0);  // trailing garbage
  EXPECT_DEATH((void)TransactionDB::deserialize(padded), "trailing");
}

TEST(Dataset, ReleaseMovesOut) {
  auto db = sample_db();
  const auto moved = db.release();
  EXPECT_EQ(moved.size(), 5u);
  EXPECT_TRUE(db.empty());
}

}  // namespace
}  // namespace yafim::fim
