// Vertical bitmap index for Phase II support counting
// (CountMode::kVerticalBitmap).
//
// The data-structure-perspective survey (arXiv 1908.01338) observes that
// the candidate store, not the level-wise algorithm, dominates Apriori's
// Phase II cost: probing every transaction through a hash tree touches
// scattered nodes and re-derives containment per transaction. The vertical
// family (Eclat, fim/tidlist_mining.h) inverts the layout instead -- one
// tid-list per item -- and support becomes set intersection. A bitmap is
// the dense form of that tid-list: bit t of item i's row is set iff
// transaction t (partition-local tid) contains i, so
//
//   sup(c) = popcount(AND of the rows of c's items)
//
// runs word-parallel over contiguous memory with no per-transaction
// branching at all. The index is built once per partition (from the cached
// transactions RDD) and reused on every later pass; candidates are read
// straight out of the hash tree's flat item arena (fim/hash_tree.h), so the
// inner loop is pure pointer-free streaming: k row pointers, one AND chain,
// one popcount per word.
#pragma once

#include <span>
#include <vector>

#include "engine/work.h"
#include "fim/itemset.h"
#include "obs/metrics.h"

namespace yafim::fim {

class HashTree;

/// Sim-cost scaling for word-parallel bitmap work: one engine work unit
/// (~one 500 ns tuple-op under the calibrated cost model, DESIGN.md §5)
/// covers this many 64-bit AND+popcount steps. A fused AND+popcount over
/// cache-resident words retires in ~1 ns, so 64 word-ops per tuple-op is a
/// conservative (cost-inflating) exchange rate; the mode still has to beat
/// the probe-based paths under it for the ablation win to be honest.
constexpr u64 kBitmapWordsPerWorkUnit = 64;

/// AND `k` equal-length word rows together and return the total popcount.
/// `rows` holds k non-null pointers to `nwords`-word runs.
u64 and_popcount(const u64* const* rows, u32 k, u32 nwords);

/// Per-partition vertical bitmap index: one bit row per distinct item, all
/// rows living in a single contiguous word arena.
class VerticalBitmapIndex {
 public:
  VerticalBitmapIndex() = default;

  /// Index one partition's transactions. Transactions must be canonical
  /// (fim/itemset.h); partition-local tid = position in `transactions`.
  explicit VerticalBitmapIndex(std::span<const Transaction> transactions);

  u32 num_transactions() const { return num_transactions_; }
  u32 words_per_row() const { return words_per_row_; }
  u32 num_items() const { return static_cast<u32>(items_.size()); }

  /// Arena footprint in bytes (rows + slot lookup), the quantity the
  /// obs bitmap.index_bytes counter accumulates.
  u64 bytes() const;

  /// Word row for `item`, or nullptr when no transaction here contains it.
  const u64* row(Item item) const {
    const u32 slot = slot_of(item);
    return slot == kNoSlot ? nullptr : words_.data() + u64{slot} * words_per_row_;
  }

  /// Support of a k-item candidate within this partition: popcount of the
  /// AND of its item rows (0 as soon as any item is absent). `items` must
  /// point at k >= 1 canonically sorted items.
  u64 support(const Item* items, u32 k) const;

  /// Count every candidate of `tree` into cells[0..tree.size()): the
  /// vertical replacement for probing each transaction through the tree.
  /// Charges engine work (kBitmapWordsPerWorkUnit exchange rate) and the
  /// obs bitmap.* counters in one batched flush.
  void count_candidates(const HashTree& tree, u64* cells) const;

  /// Sorted partition-local tid-list of `item` -- the bridge back to the
  /// tidlist machinery shared with Eclat (fim/tidlist_mining.h): a bitmap
  /// row is exactly a densified TidList.
  std::vector<u32> tidlist(Item item) const;

 private:
  static constexpr u32 kNoSlot = 0xffffffffu;
  /// Items at or above this id fall back to the sparse slot map; below it
  /// the dense direct-indexed table is used (all shipped datasets have
  /// dense small ids, so the fallback exists only for pathological inputs).
  static constexpr u32 kDenseSlotLimit = 1u << 20;

  u32 slot_of(Item item) const;

  u32 num_transactions_ = 0;
  u32 words_per_row_ = 0;
  std::vector<Item> items_;       ///< distinct items, ascending (slot order)
  std::vector<u32> dense_slots_;  ///< item -> slot for item < dense limit
  std::vector<std::pair<Item, u32>> sparse_slots_;  ///< sorted, rare ids
  std::vector<u64> words_;        ///< row arena: slot s at [s*wpr, (s+1)*wpr)
};

/// byte_size customization point (engine/bytes_of.h, found via ADL): cache
/// and memory accounting price a persisted index partition at its arena
/// footprint.
inline u64 byte_size(const VerticalBitmapIndex& index) { return index.bytes(); }

}  // namespace yafim::fim
