// Tests for the determinism sanitizer (engine/detsan.h) and its canonical
// hashing substrate (util/canon_hash.h).
//
// Shape mirrors test_lint.cpp: each seeded impurity (non-commutative
// reduce, by-reference mutable capture, dirty combiner) is paired with the
// nearest clean plan that must NOT fire, plus end-to-end runs proving the
// stock mining pipelines replay clean at sample rate 1.0.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "engine/context.h"
#include "engine/detsan.h"
#include "engine/detsan_selftest.h"
#include "engine/lint.h"
#include "engine/rdd.h"
#include "fim/mr_apriori.h"
#include "fim/yafim.h"
#include "mapreduce/job.h"
#include "util/bytes.h"
#include "util/canon_hash.h"
#include "util/rng.h"

namespace yafim::engine {
namespace {

Context::Options detsan_on(double rate = 1.0, bool fail_fast = false) {
  Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(2);
  opts.host_threads = 2;
  opts.detsan.enabled = true;
  opts.detsan.sample_rate = rate;
  opts.detsan.fail_fast = fail_fast;
  return opts;
}

std::vector<int> iota(int n) {
  std::vector<int> out(n);
  for (int i = 0; i < n; ++i) out[i] = i;
  return out;
}

fim::TransactionDB small_db() {
  Rng rng(41);
  std::vector<fim::Transaction> tx;
  for (int i = 0; i < 200; ++i) {
    fim::Transaction t;
    for (u32 item = 0; item < 12; ++item) {
      if (rng.bernoulli(0.4)) t.push_back(item);
    }
    if (t.empty()) t.push_back(static_cast<fim::Item>(rng.below(12)));
    tx.push_back(std::move(t));
  }
  return fim::TransactionDB(std::move(tx));
}

// --- canonical hashing ---------------------------------------------------

TEST(CanonHash, UnorderedIsPermutationInvariant) {
  const std::vector<int> a = {1, 2, 3, 4, 5};
  const std::vector<int> b = {5, 3, 1, 4, 2};
  EXPECT_EQ(util::canon_hash_unordered(a), util::canon_hash_unordered(b));
  const std::vector<int> dropped = {1, 2, 3, 4};
  EXPECT_NE(util::canon_hash_unordered(a),
            util::canon_hash_unordered(dropped));
  const std::vector<int> duplicated = {1, 2, 3, 4, 5, 5};
  EXPECT_NE(util::canon_hash_unordered(a),
            util::canon_hash_unordered(duplicated));
}

TEST(CanonHash, OrderedIsOrderSensitive) {
  const std::vector<int> a = {1, 2, 3};
  const std::vector<int> b = {3, 2, 1};
  EXPECT_NE(util::canon_hash_ordered(a), util::canon_hash_ordered(b));
  EXPECT_EQ(util::canon_hash_ordered(a), util::canon_hash_ordered(a));
}

TEST(CanonHash, ScalarsHashCanonically) {
  // Signed/width widening: the same value hashes alike across int types.
  EXPECT_EQ(util::canon_hash_value(i32{5}), util::canon_hash_value(i64{5}));
  EXPECT_EQ(util::canon_hash_value(i32{-7}), util::canon_hash_value(i64{-7}));
  // Both floating-point zeros compare equal, so they must hash equal.
  EXPECT_EQ(util::canon_hash_value(0.0), util::canon_hash_value(-0.0));
  EXPECT_NE(util::canon_hash_value(1.0), util::canon_hash_value(2.0));
}

TEST(CanonHash, PairAndNestedShapesAreHashable) {
  static_assert(util::is_canon_hashable_v<std::pair<const std::string, u64>>,
                "map iteration yields pair<const K, V>");
  static_assert(util::is_canon_hashable_v<std::vector<std::pair<int, double>>>);
  static_assert(!util::is_canon_hashable_v<std::set<int>>);
  const std::pair<std::string, u64> p{"abc", 7};
  const std::pair<std::string, u64> q{"abc", 8};
  EXPECT_NE(util::canon_hash_value(p), util::canon_hash_value(q));
}

// --- sampling and permutation machinery ----------------------------------

TEST(DetSan, PermutationIsDeterministicAndNeverIdentity) {
  for (size_t n : {2u, 3u, 5u, 16u, 100u}) {
    for (u64 seed : {1ull, 42ull, 0xDE75A11ull}) {
      const auto perm = DetSan::permutation(n, seed);
      ASSERT_EQ(perm.size(), n);
      EXPECT_EQ(perm, DetSan::permutation(n, seed));
      std::set<u32> seen(perm.begin(), perm.end());
      EXPECT_EQ(seen.size(), n) << "must be a permutation";
      bool identity = true;
      for (size_t i = 0; i < n; ++i) identity &= (perm[i] == i);
      EXPECT_FALSE(identity) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(DetSan, SamplingIsDeterministicAndRateGated) {
  Context ctx0(detsan_on(0.0));
  Context ctx1(detsan_on(1.0));
  Context ctx_half(detsan_on(0.5));
  Context ctx_half2(detsan_on(0.5));
  u32 sampled = 0;
  for (u32 node = 1; node < 20; ++node) {
    for (u32 pid = 0; pid < 8; ++pid) {
      EXPECT_FALSE(ctx0.detsan().should_replay(node, pid));
      EXPECT_TRUE(ctx1.detsan().should_replay(node, pid));
      EXPECT_EQ(ctx_half.detsan().should_replay(node, pid),
                ctx_half2.detsan().should_replay(node, pid));
      sampled += ctx_half.detsan().should_replay(node, pid);
    }
  }
  EXPECT_GT(sampled, 0u);
  EXPECT_LT(sampled, 19u * 8u);
}

TEST(DetSan, EnablingForcesTheLinterOn) {
  Context ctx(detsan_on());
  EXPECT_TRUE(ctx.detsan().enabled());
  EXPECT_TRUE(ctx.linter().enabled());
}

// --- clean plans must not fire -------------------------------------------

TEST(DetSan, PurePipelineReplaysClean) {
  Context ctx(detsan_on(1.0));
  using KV = std::pair<int, int>;
  auto counts = ctx.parallelize(iota(200), 4)
                    .map([](const int& x) { return x * 3; })
                    .filter([](const int& x) { return x % 2 == 0; })
                    .flat_map([](const int& x) {
                      return std::vector<int>{x, x + 1};
                    })
                    .map([](const int& x) { return KV(x % 5, 1); })
                    .reduce_by_key([](int a, int b) { return a + b; });
  counts.collect();
  const auto sum = ctx.parallelize(iota(100), 4).reduce(
      [](int a, int b) { return a + b; });
  EXPECT_EQ(sum, 4950);
  EXPECT_GT(ctx.detsan().tasks_replayed(), 0u);
  EXPECT_EQ(ctx.detsan().divergences(), 0u);
  EXPECT_EQ(ctx.linter().count("YL007"), 0u);
}

TEST(DetSan, OrderSensitiveButDeterministicMapPartitionsIsClean) {
  // A partition function may legitimately depend on element order (prefix
  // sums); the replay only checks it is a *function* of that order.
  Context ctx(detsan_on(1.0));
  auto prefix = ctx.parallelize(iota(64), 4).map_partitions(
      [](const std::vector<int>& part) {
        std::vector<int> out;
        int acc = 0;
        for (int x : part) out.push_back(acc += x);
        return out;
      });
  prefix.collect();
  EXPECT_GT(ctx.detsan().tasks_replayed(), 0u);
  EXPECT_EQ(ctx.detsan().divergences(), 0u);
}

// --- seeded impurities must fire -----------------------------------------

TEST(DetSan, NonCommutativeReduceDivergesAsYL007) {
  Context ctx(detsan_on(1.0));
  auto rdd = ctx.parallelize(iota(64), 4);
  rdd.named("bad-fold");
  // detsan: intentional-divergence -- the impurity under test.
  (void)rdd.reduce([](int a, int b) { return a - b; });
  EXPECT_GT(ctx.detsan().divergences(), 0u);
  ASSERT_GE(ctx.linter().count("YL007"), 1u);
  bool named = false;
  for (const auto& diag : ctx.linter().diagnostics()) {
    if (diag.rule != "YL007") continue;
    EXPECT_EQ(diag.severity, LintSeverity::kError);
    named |= diag.node_name == "bad-fold";
  }
  EXPECT_TRUE(named) << "YL007 must name the diverging node";
  EXPECT_TRUE(ctx.linter().any_at_least(LintSeverity::kError));
}

TEST(DetSan, StatefulByRefCaptureDivergesWithNodeName) {
  Context ctx(detsan_on(1.0));
  auto rdd = ctx.parallelize(iota(64), 4);
  std::atomic<int> calls{0};
  // detsan: intentional-divergence -- the impurity under test.
  auto tagged = rdd.map([&calls](const int& x) {
    return x * 16 + (calls.fetch_add(1, std::memory_order_relaxed) & 15);
  });
  tagged.named("leaky-map");
  tagged.collect();
  EXPECT_GT(ctx.detsan().divergences(), 0u);
  bool named = false;
  for (const auto& diag : ctx.linter().diagnostics()) {
    named |= diag.rule == "YL007" && diag.node_name == "leaky-map";
  }
  EXPECT_TRUE(named);
}

TEST(DetSan, FailFastThrowsDetSanErrorNamingNodeAndStage) {
  Context ctx(detsan_on(1.0, /*fail_fast=*/true));
  auto rdd = ctx.parallelize(iota(64), 4);
  rdd.named("bad-fold");
  try {
    // detsan: intentional-divergence -- the impurity under test.
    (void)rdd.reduce([](int a, int b) { return a - b; }, "fold-stage");
    FAIL() << "expected DetSanError";
  } catch (const DetSanError& e) {
    EXPECT_EQ(e.node_name(), "bad-fold");
    EXPECT_EQ(e.stage(), "fold-stage");
    EXPECT_FALSE(e.element().empty());
    EXPECT_NE(std::string(e.what()).find("bad-fold"), std::string::npos);
  }
}

TEST(DetSan, SelftestFixturesBothDiverge) {
  Context ctx(detsan_on(1.0));
  const auto result = detsan_selftest::run(ctx);
  EXPECT_GT(result.tasks_replayed, 0u);
  EXPECT_GT(result.divergences, 0u);
  bool saw_fold = false;
  bool saw_map = false;
  for (const auto& diag : ctx.linter().diagnostics()) {
    if (diag.rule != "YL007") continue;
    saw_fold |= diag.node_name == "noncommutative-fold";
    saw_map |= diag.node_name == "stateful-map";
  }
  EXPECT_TRUE(saw_fold);
  EXPECT_TRUE(saw_map);
}

TEST(DetSan, DisabledSanitizerNeverReplays) {
  Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(2);
  opts.host_threads = 2;
  Context ctx(opts);
  auto rdd = ctx.parallelize(iota(64), 4);
  // Impure on purpose: with the sanitizer off nothing may fire.
  (void)rdd.reduce([](int a, int b) { return a - b; });
  EXPECT_EQ(ctx.detsan().tasks_replayed(), 0u);
  EXPECT_EQ(ctx.detsan().divergences(), 0u);
}

// --- MapReduce combiner hook ---------------------------------------------

using CombineSpec = mr::JobSpec<u64, u64, i64, std::pair<u64, i64>>;

CombineSpec combine_spec(bool commutative) {
  CombineSpec spec;
  spec.name = commutative ? "clean-combine" : "dirty-combine";
  spec.decode_input = [](const std::vector<u8>& bytes) {
    ByteReader r(bytes);
    const u64 n = r.read_u64();
    std::vector<u64> records;
    for (u64 i = 0; i < n; ++i) records.push_back(r.read_u64());
    return records;
  };
  spec.map_fn = [](const u64& x, mr::Emitter<u64, i64>& emit) {
    emit.emit(x % 3, static_cast<i64>(x));
  };
  if (commutative) {
    spec.combine_fn = [](const i64& a, const i64& b) { return a + b; };
  } else {
    // detsan: intentional-divergence -- the impurity under test.
    spec.combine_fn = [](const i64& a, const i64& b) { return a - b; };
  }
  spec.reduce_fn = [](const u64& k, std::vector<i64>& values)
      -> std::optional<std::pair<u64, i64>> {
    i64 sum = 0;
    for (i64 v : values) sum += v;
    return std::make_pair(k, sum);
  };
  spec.encode_output = [](const std::vector<std::pair<u64, i64>>& out) {
    ByteWriter w;
    w.write_u64(out.size());
    return w.take();
  };
  return spec;
}

TEST(DetSan, MapReduceCombinerHookFlagsNonCommutativeCombine) {
  Context ctx(detsan_on(1.0));
  simfs::SimFS fs(ctx.cluster());
  ByteWriter w;
  w.write_u64(256);
  for (u64 i = 0; i < 256; ++i) w.write_u64(i);
  fs.write("in", w.take());
  mr::JobRunner runner(ctx, fs);
  (void)runner.run(combine_spec(/*commutative=*/false), "in", "out");
  EXPECT_GT(ctx.detsan().tasks_replayed(), 0u);
  EXPECT_GT(ctx.detsan().divergences(), 0u);
}

TEST(DetSan, MapReduceCombinerHookCleanOnCommutativeCombine) {
  Context ctx(detsan_on(1.0));
  simfs::SimFS fs(ctx.cluster());
  ByteWriter w;
  w.write_u64(256);
  for (u64 i = 0; i < 256; ++i) w.write_u64(i);
  fs.write("in", w.take());
  mr::JobRunner runner(ctx, fs);
  (void)runner.run(combine_spec(/*commutative=*/true), "in", "out");
  EXPECT_GT(ctx.detsan().tasks_replayed(), 0u);
  EXPECT_EQ(ctx.detsan().divergences(), 0u);
}

// --- end-to-end: the stock pipelines replay clean ------------------------

TEST(DetSan, StockYafimReplaysClean) {
  const auto db = small_db();
  Context ctx(detsan_on(1.0));
  simfs::SimFS fs(ctx.cluster());
  fim::YafimOptions opt;
  opt.min_support = 0.2;
  const auto run = fim::yafim_mine(ctx, fs, db, opt);
  ASSERT_GT(run.itemsets.max_k(), 1u) << "need a multi-pass run";
  EXPECT_GT(ctx.detsan().tasks_replayed(), 0u);
  EXPECT_EQ(ctx.detsan().divergences(), 0u);
  EXPECT_EQ(ctx.linter().count("YL007"), 0u);
}

TEST(DetSan, StockMrAprioriReplaysClean) {
  const auto db = small_db();
  Context ctx(detsan_on(1.0));
  simfs::SimFS fs(ctx.cluster());
  fim::MrAprioriOptions opt;
  opt.min_support = 0.2;
  const auto run = fim::mr_apriori_mine(ctx, fs, db, opt);
  ASSERT_GT(run.itemsets.total(), 0u);
  EXPECT_GT(ctx.detsan().tasks_replayed(), 0u);
  EXPECT_EQ(ctx.detsan().divergences(), 0u);
}

}  // namespace
}  // namespace yafim::engine
