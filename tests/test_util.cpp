// Unit tests for the util layer: RNG, tables, byte serialization, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <span>

#include "util/bytes.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace yafim {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const u64 va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (u64 bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr u64 kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> hist(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++hist[rng.below(kBuckets)];
  for (u64 b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(hist[b], kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<i64> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(9);
  for (double mean : {0.5, 2.0, 8.0}) {
    double sum = 0;
    for (int i = 0; i < 20000; ++i) sum += rng.poisson(mean);
    EXPECT_NEAR(sum / 20000, mean, mean * 0.08 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, SkewedBelowIsSkewedTowardZero) {
  Rng rng(17);
  int low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    const u64 v = rng.skewed_below(10, 3.0);
    ASSERT_LT(v, 10u);
    if (v == 0) ++low;
    if (v == 9) ++high;
  }
  EXPECT_GT(low, 3 * high);
}

TEST(Rng, SplitStreamsDiffer) {
  Rng base(21);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  EXPECT_NE(s1.next(), s2.next());
  // Splitting is deterministic.
  Rng base2(21);
  EXPECT_EQ(base2.split(1).next(), Rng(21).split(1).next());
}

TEST(Mix64, InjectiveOnSmallDomain) {
  std::set<u64> seen;
  for (u64 i = 0; i < 10000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Table, AsciiAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.5)});
  t.add_row({"b", Table::num(u64{42})});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  EXPECT_NE(ascii.find("1.50"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "name,value\nalpha,1.50\nb,42\n");
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, NumPrecision) {
  EXPECT_EQ(Table::num(3.14159, 3), "3.142");
  EXPECT_EQ(Table::num(3.0, 0), "3");
}

TEST(Bytes, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KB");
  EXPECT_EQ(format_bytes(3u << 20), "3.0 MB");
}

TEST(Bytes, WriterReaderRoundTrip) {
  ByteWriter w;
  w.write_u32(7);
  w.write_u64(1ull << 40);
  w.write_double(2.5);
  w.write_string("hello world");
  w.write_u32_vec({1, 2, 3, 5, 8});
  const std::vector<u8> data = w.take();

  ByteReader r(data);
  EXPECT_EQ(r.read_u32(), 7u);
  EXPECT_EQ(r.read_u64(), 1ull << 40);
  EXPECT_EQ(r.read_double(), 2.5);
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_u32_vec(), (std::vector<u32>{1, 2, 3, 5, 8}));
  EXPECT_TRUE(r.done());
}

TEST(Bytes, EmptyContainers) {
  ByteWriter w;
  w.write_string("");
  w.write_u32_vec({});
  ByteReader r(w.data());
  EXPECT_EQ(r.read_string(), "");
  EXPECT_TRUE(r.read_u32_vec().empty());
  EXPECT_TRUE(r.done());
}

TEST(Bytes, TruncatedInputAborts) {
  ByteWriter w;
  w.write_u64(1000);  // claims a long string follows
  const auto data = w.data();
  ByteReader r(data);
  EXPECT_DEATH((void)r.read_string(), "truncated");

  ByteReader r2(std::span<const u8>(data.data(), 3));
  EXPECT_DEATH((void)r2.read_u64(), "truncated");

  ByteReader r3(data);
  EXPECT_DEATH((void)r3.read_u32_vec(), "truncated");
}

TEST(YzCodec, RoundTripsArbitraryPayloads) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<u8> raw(rng.below(4096));
    for (auto& b : raw) b = static_cast<u8>(rng.below(256));
    const auto packed = yz_compress(raw);
    EXPECT_EQ(yz_decompress(packed), raw) << "trial " << trial;
  }
}

TEST(YzCodec, EmptyPayload) {
  const auto packed = yz_compress(std::span<const u8>{});
  EXPECT_TRUE(yz_decompress(packed).empty());
}

TEST(YzCodec, ZeroHeavyPayloadShrinks) {
  // The codec's target shape: sparse per-partition count arrays, i.e. long
  // zero runs with scattered nonzero cells.
  std::vector<u8> raw(64 * 1024, 0);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) raw[rng.below(raw.size())] = 1 + (i % 250);
  const auto packed = yz_compress(raw);
  EXPECT_LT(packed.size(), raw.size() / 10);
  EXPECT_EQ(yz_decompress(packed), raw);
}

TEST(YzCodec, IncompressiblePayloadGrowsOnlyByFraming) {
  // A strict byte rotation has no run of length >= the repeat threshold:
  // worst case is the frame header plus one literal-run header.
  std::vector<u8> raw(4096);
  for (size_t i = 0; i < raw.size(); ++i) raw[i] = static_cast<u8>(i);
  const auto packed = yz_compress(raw);
  EXPECT_LE(packed.size(), raw.size() + 32);
  EXPECT_EQ(yz_decompress(packed), raw);
}

TEST(YzCodec, MalformedFrameAborts) {
  std::vector<u8> garbage = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13};
  EXPECT_DEATH((void)yz_decompress(garbage), "");
  auto packed = yz_compress(std::vector<u8>(100, 7));
  packed.resize(packed.size() - 1);  // truncate the last run
  EXPECT_DEATH((void)yz_decompress(packed), "");
}

TEST(Log, LevelGate) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_info("suppressed %d", 1);  // must not crash; output gated
  set_log_level(saved);
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(sw.seconds(), 0.0);
  const double first = sw.seconds();
  EXPECT_GE(sw.seconds(), first);
  sw.reset();
  EXPECT_LT(sw.seconds(), first + 1.0);
}

TEST(Common, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
}

}  // namespace
}  // namespace yafim
