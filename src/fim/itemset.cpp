#include "fim/itemset.h"

#include <algorithm>
#include <sstream>

#include "util/rng.h"

namespace yafim::fim {

bool is_canonical(const Itemset& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1] >= v[i]) return false;
  }
  return true;
}

void canonicalize(Itemset& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

bool contains_all(const Transaction& t, const Itemset& s) {
  YAFIM_DCHECK(is_canonical(t) && is_canonical(s), "inputs must be canonical");
  size_t ti = 0;
  for (Item needle : s) {
    while (ti < t.size() && t[ti] < needle) ++ti;
    if (ti == t.size() || t[ti] != needle) return false;
    ++ti;
  }
  return true;
}

bool lex_less(const Itemset& a, const Itemset& b) { return a < b; }

std::string to_string(const Itemset& s) {
  std::ostringstream out;
  out << '{';
  for (size_t i = 0; i < s.size(); ++i) {
    if (i) out << ", ";
    out << s[i];
  }
  out << '}';
  return out.str();
}

size_t ItemsetHash::operator()(const Itemset& s) const {
  // FNV-style fold of each item through a strong 64-bit mixer; stable
  // across platforms and runs (required by the shuffle partitioner).
  u64 h = 0xcbf29ce484222325ULL ^ s.size();
  for (Item item : s) {
    h = mix64(h ^ item);
  }
  return static_cast<size_t>(h);
}

}  // namespace yafim::fim
