// YAFIM (Yet Another Frequent Itemset Mining): the paper's contribution --
// Apriori expressed on the RDD model so the transaction dataset is loaded
// from (simulated) HDFS once, cached in cluster memory, and re-scanned in
// memory on every level-wise iteration, with the candidate hash tree shared
// through broadcast variables.
//
// Phase I  (Algorithm 2): textFile -> flatMap(items) -> map((item, 1))
//                         -> reduceByKey(+) -> filter(>= MinSup)  => L1
// Phase II (Algorithm 3): Ck = ap_gen(L(k-1)); broadcast hash tree over Ck;
//                         Transactions.flatMap(subset(Ck, t))
//                         -> map((c, 1)) -> reduceByKey(+)
//                         -> filter(>= MinSup)                    => Lk
#pragma once

#include <string>

#include "engine/context.h"
#include "fim/checkpoint.h"
#include "fim/dataset.h"
#include "fim/hash_tree.h"
#include "fim/result.h"
#include "simfs/simfs.h"

namespace yafim::fim {

struct YafimOptions {
  /// Relative minimum support threshold in (0, 1].
  double min_support = 0.1;
  /// RDD partitions for the transactions dataset (0 = context default).
  u32 partitions = 0;

  /// Ablations (all default to the paper's design):
  /// cache the transactions RDD in memory across iterations; off models
  /// Spark recomputing from HDFS every pass.
  bool cache_transactions = true;
  /// probe candidates through the hash tree; off scans candidates linearly.
  bool use_hash_tree = true;

  /// How Phase II counts candidate hits (fim/hash_tree.h). kItemsetKey is
  /// the paper-faithful shuffle keyed on full itemsets; kCandidateId (the
  /// default) counts into dense per-partition arrays indexed by candidate
  /// id and merges them with sum_arrays(); kVerticalBitmap builds a cached
  /// per-partition bitmap index (fim/bitmap.h) on the first counting pass
  /// and answers each candidate with an AND+popcount over its item rows.
  /// All three yield bit-identical FrequentItemsets; only the data
  /// structure and its pricing differ.
  CountMode count_mode = CountMode::kCandidateId;

  /// How the per-pass candidate trees reach the workers (fim/hash_tree.h):
  /// kAuto broadcasts while the batch fits the executor-memory budget
  /// (engine::MemoryBudget) and degrades to the partitioned candidate
  /// store when it would not; kFull always broadcasts (an over-budget tree
  /// keeps YL002's error semantics); kPartitioned always shards. Every
  /// mode yields bit-identical FrequentItemsets -- a partitioned pass
  /// probes shard trees into the same batch-global dense cells.
  BroadcastMode broadcast_mode = BroadcastMode::kAuto;
  /// Shard count for the partitioned store (0 = context
  /// default_partitions). Tests use 1 (degenerate single shard) and large
  /// values (empty shards) to exercise the boundary cases.
  u32 broadcast_shards = 0;

  /// Hash-tree tuning.
  u32 branching = 0;  // 0 = auto (HashTree::default_branching)
  u32 leaf_capacity = 16;

  /// Extension (ours, transplanting Lin et al.'s pass combining onto the
  /// RDD side): count up to this many candidate levels per cluster pass,
  /// generating level j+1 candidates from level j *candidates*. Results
  /// stay exact; the trade is fewer per-pass floors against speculative
  /// counting work. 1 = the paper's design.
  u32 combine_passes = 1;
  /// Speculative-generation guard for combine_passes > 1 (DPC's lesson):
  /// a batch stops growing once its current level holds more candidates
  /// than this -- candidates-from-candidates joins over a large unverified
  /// level explode combinatorially.
  u64 combine_candidate_budget = 20000;

  /// Crash recovery (fim/checkpoint.h): when set, a snapshot of (Lk, pass
  /// stats, config fingerprint) is persisted after every completed pass,
  /// and mining first probes the store for the newest valid snapshot of
  /// the same dataset + configuration, resuming after it instead of
  /// restarting from pass 1. Not owned.
  CheckpointStore* checkpoint = nullptr;
  /// Abandon the run after snapshotting this pass (0 = run to completion).
  /// Deterministic stand-in for a mid-run crash in tests and examples; the
  /// returned run then holds only the completed passes.
  u32 stop_after_pass = 0;
};

/// Mine the dataset stored at `input_path` on `fs` (a serialized
/// TransactionDB). Cost is charged into ctx's SimReport; the returned run
/// carries per-pass simulated seconds under ctx's cluster.
MiningRun yafim_mine(engine::Context& ctx, simfs::SimFS& fs,
                     const std::string& input_path,
                     const YafimOptions& options);

/// Convenience overload: stages `db` onto `fs` at a scratch path (write not
/// charged to the run -- the dataset pre-exists on HDFS in the paper's
/// setup), then mines it.
MiningRun yafim_mine(engine::Context& ctx, simfs::SimFS& fs,
                     const TransactionDB& db, const YafimOptions& options);

}  // namespace yafim::fim
