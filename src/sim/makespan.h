// Stage scheduling: given per-task durations and a number of identical
// simulated cores, compute the stage's makespan.
//
// We use Longest-Processing-Time-first (LPT) list scheduling, a 4/3-optimal
// classic that matches how Spark/Hadoop greedily hand tasks to free slots.
#pragma once

#include <span>
#include <vector>

#include "util/common.h"

namespace yafim::sim {

/// Makespan of scheduling `durations` (seconds) onto `cores` identical
/// workers with LPT. Returns 0 for an empty task list.
double lpt_makespan(std::span<const double> durations, u32 cores);

/// Per-core finishing times for the same schedule (useful for utilisation
/// diagnostics; the max element equals lpt_makespan()).
std::vector<double> lpt_loads(std::span<const double> durations, u32 cores);

}  // namespace yafim::sim
