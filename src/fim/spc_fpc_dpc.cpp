#include "fim/spc_fpc_dpc.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "fim/candidate_gen.h"
#include "fim/hash_tree.h"
#include "fim/mr_encode.h"
#include "mapreduce/job.h"

namespace yafim::fim {

namespace {

using CountPair = std::pair<Itemset, u64>;
using Spec = mr::JobSpec<Transaction, Itemset, u64, CountPair, ItemsetHash>;

std::vector<Transaction> decode_transactions(const std::vector<u8>& bytes) {
  return TransactionDB::deserialize(bytes).release();
}

void price_passes(engine::Context& ctx, size_t first_stage, MiningRun& run) {
  sim::SimReport slice;
  const auto& stages = ctx.report().stages();
  for (size_t i = first_stage; i < stages.size(); ++i) slice.add(stages[i]);
  const std::vector<double> by_pass = slice.pass_seconds(ctx.cost_model());
  run.setup_seconds = by_pass.empty() ? 0.0 : by_pass[0];
  for (PassStats& pass : run.passes) {
    // Combined jobs are tagged with their batch's first level; later levels
    // in the same batch keep the 0 they were initialised with.
    if (pass.sim_seconds == 0.0 && pass.k < by_pass.size()) {
      pass.sim_seconds = by_pass[pass.k];
    }
  }
}

}  // namespace

LinRun lin_mine(engine::Context& ctx, simfs::SimFS& fs,
                const std::string& input_path, const LinOptions& options) {
  const size_t first_stage = ctx.report().stages().size();
  mr::JobRunner runner(ctx, fs);
  LinRun lin;
  MiningRun& run = lin.run;

  const u64 num_transactions =
      TransactionDB::deserialize(fs.read(input_path)).size();
  if (num_transactions == 0) {
    run.itemsets = FrequentItemsets(1, 0);
    return lin;
  }
  const u64 min_count = min_count_ceil(options.min_support, num_transactions);
  run.itemsets = FrequentItemsets(min_count, num_transactions);

  auto reduce_fn = [min_count](const Itemset& key, std::vector<u64>& values)
      -> std::optional<CountPair> {
    u64 sum = 0;
    for (u64 v : values) sum += v;
    if (sum < min_count) return std::nullopt;
    return CountPair(key, sum);
  };
  auto combine_fn = [](const u64& a, const u64& b) { return a + b; };

  // ---- Job 1: frequent items (identical in all three strategies) ------
  ctx.set_pass(1);
  Spec job1;
  job1.name = "lin:job1";
  job1.decode_input = decode_transactions;
  job1.map_fn = [](const Transaction& t, mr::Emitter<Itemset, u64>& emit) {
    for (Item i : t) emit.emit(Itemset{i}, 1);
  };
  job1.combine_fn = combine_fn;
  job1.reduce_fn = reduce_fn;
  job1.encode_output = encode_counts;
  job1.num_mappers = options.num_mappers;
  job1.num_reducers = options.num_reducers;
  auto result = runner.run(job1, input_path, options.work_dir + "/L1");
  lin.num_jobs = 1;

  std::vector<Itemset> frequent;
  for (const auto& [itemset, support] : result.output) {
    run.itemsets.add(itemset, support);
    frequent.push_back(itemset);
  }
  run.passes.push_back(
      PassStats{1, result.output.size(), result.output.size(), 0.0});

  /// How many levels the next job may batch, given the first level of the
  /// batch and the strategy.
  auto batch_limit = [&options](u32 first_level) -> u32 {
    switch (options.strategy) {
      case CombineStrategy::kSinglePass:
        return 1;
      case CombineStrategy::kFixedPasses:
        // Lin et al. run levels 2 (and 3) alone -- candidate counts peak
        // there -- and combine afterwards.
        return first_level <= 3 ? 1 : options.fixed_passes;
      case CombineStrategy::kDynamic:
        return 0xffffffffu;  // bounded by the candidate budget below
    }
    return 1;
  };

  // ---- Combined counting jobs -----------------------------------------
  for (u32 k = 2; !frequent.empty();) {
    // Build the batch of candidate levels [k, k + batch).
    std::vector<std::vector<Itemset>> batch_candidates;
    std::vector<Itemset> base = frequent;
    u64 total_candidates = 0;
    const u32 limit = batch_limit(k);
    for (u32 level = k; level - k < limit; ++level) {
      // Pre-generation guard: joining a large *unverified* level is a
      // combinatorial explosion (e.g. C2 = all pairs of L1 would join to
      // nearly C(|L1|, 3) triples). Generate speculative levels only from
      // bases already within budget.
      if (options.strategy == CombineStrategy::kDynamic &&
          !batch_candidates.empty() &&
          base.size() > options.dynamic_candidate_budget) {
        break;
      }
      std::vector<Itemset> candidates = apriori_gen(base, level);
      if (candidates.empty()) break;
      if (options.strategy == CombineStrategy::kDynamic &&
          !batch_candidates.empty() &&
          total_candidates + candidates.size() >
              options.dynamic_candidate_budget) {
        break;
      }
      total_candidates += candidates.size();
      base = candidates;  // next level generates from these candidates
      batch_candidates.push_back(std::move(candidates));
    }
    if (batch_candidates.empty()) break;
    const u32 levels_in_batch = static_cast<u32>(batch_candidates.size());

    ctx.set_pass(k);
    engine::work::Scope driver_scope;
    auto trees = std::make_shared<std::vector<HashTree>>();
    u64 cache_bytes = 0;
    for (auto& candidates : batch_candidates) {
      trees->emplace_back(std::move(candidates), options.branching,
                          options.leaf_capacity);
      cache_bytes += trees->back().serialized_bytes();
    }
    {
      sim::StageRecord gen;
      gen.label = "lin:ap_gen batch@" + std::to_string(k);
      gen.kind = sim::StageKind::kOverhead;
      gen.pass = k;
      gen.driver_work = driver_scope.measured();
      ctx.record(std::move(gen));
    }

    Spec job;
    job.name = "lin:job@" + std::to_string(k);
    job.decode_input = decode_transactions;
    job.map_fn = [trees](const Transaction& t,
                         mr::Emitter<Itemset, u64>& emit) {
      static thread_local HashTree::Probe probe;
      for (const HashTree& tree : *trees) {
        tree.for_each_contained(t, probe, [&](u32 ci) {
          emit.emit(tree.candidate(ci), 1);
        });
      }
    };
    job.combine_fn = combine_fn;
    job.reduce_fn = reduce_fn;
    job.encode_output = encode_counts;
    job.num_mappers = options.num_mappers;
    job.num_reducers = options.num_reducers;
    job.distributed_cache_bytes = cache_bytes;

    result = runner.run(job, input_path,
                        options.work_dir + "/L" + std::to_string(k) + "-" +
                            std::to_string(k + levels_in_batch - 1));
    ++lin.num_jobs;

    // Split the mixed-size output back into levels.
    std::vector<std::vector<CountPair>> by_level(levels_in_batch);
    for (auto& [itemset, support] : result.output) {
      const u32 level = static_cast<u32>(itemset.size());
      YAFIM_CHECK(level >= k && level < k + levels_in_batch,
                  "reducer emitted an unexpected level");
      by_level[level - k].emplace_back(std::move(itemset), support);
    }
    for (u32 j = 0; j < levels_in_batch; ++j) {
      for (const auto& [itemset, support] : by_level[j]) {
        run.itemsets.add(itemset, support);
      }
      run.passes.push_back(PassStats{k + j,
                                     (*trees)[j].size(),
                                     by_level[j].size(), 0.0});
      if (j > 0) {
        // Levels beyond the first were generated from unverified
        // candidates; count the overshoot.
        lin.speculative_candidates +=
            (*trees)[j].size() - by_level[j].size();
      }
    }

    frequent.clear();
    for (const auto& [itemset, support] : by_level[levels_in_batch - 1]) {
      frequent.push_back(itemset);
    }
    k += levels_in_batch;
  }

  ctx.set_pass(0);
  price_passes(ctx, first_stage, run);
  return lin;
}

LinRun lin_mine(engine::Context& ctx, simfs::SimFS& fs,
                const TransactionDB& db, const LinOptions& options) {
  const std::string path = "hdfs://staging/lin-input";
  fs.write(path, db.serialize());
  return lin_mine(ctx, fs, path, options);
}

}  // namespace yafim::fim
