#include "datagen/quest.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace yafim::datagen {

using fim::Item;
using fim::Itemset;
using fim::Transaction;

fim::TransactionDB generate_quest(const QuestParams& params) {
  YAFIM_CHECK(params.num_items >= 2, "need at least two items");
  YAFIM_CHECK(params.num_patterns >= 1, "need at least one pattern");
  Rng rng(params.seed);

  // --- pattern pool -----------------------------------------------------
  std::vector<Itemset> patterns(params.num_patterns);
  std::vector<double> corruption(params.num_patterns);
  std::vector<double> cumulative_weight(params.num_patterns);
  double weight_sum = 0.0;

  for (u32 p = 0; p < params.num_patterns; ++p) {
    const u32 len = std::max<u32>(
        1, rng.poisson(std::max(0.0, params.avg_pattern_len - 1.0)) + 1);
    Itemset pattern;
    // Correlated start: reuse a slice of the previous pattern.
    if (p > 0 && !patterns[p - 1].empty()) {
      const auto& prev = patterns[p - 1];
      const u32 reuse = std::min<u32>(
          static_cast<u32>(std::lround(params.correlation * len)),
          static_cast<u32>(prev.size()));
      for (u32 i = 0; i < reuse; ++i) {
        pattern.push_back(prev[rng.below(prev.size())]);
      }
    }
    while (pattern.size() < len) {
      pattern.push_back(static_cast<Item>(rng.below(params.num_items)));
    }
    fim::canonicalize(pattern);
    patterns[p] = std::move(pattern);

    corruption[p] = std::clamp(rng.normal(params.corruption_mean, 0.1),
                               0.0, 0.95);
    // Exponentially distributed popularity.
    weight_sum += -std::log(std::max(rng.uniform(), 1e-12));
    cumulative_weight[p] = weight_sum;
  }

  auto pick_pattern = [&]() -> u32 {
    const double x = rng.uniform() * weight_sum;
    auto it = std::lower_bound(cumulative_weight.begin(),
                               cumulative_weight.end(), x);
    return static_cast<u32>(it - cumulative_weight.begin());
  };

  // --- transactions -----------------------------------------------------
  std::vector<Transaction> transactions;
  transactions.reserve(params.num_transactions);
  for (u64 t = 0; t < params.num_transactions; ++t) {
    const u32 target_len = std::max<u32>(
        1, rng.poisson(std::max(0.0, params.avg_transaction_len - 1.0)) + 1);
    Transaction tx;
    // Bounded attempts: heavy corruption can make patterns contribute
    // nothing, and we never want an unbounded loop in a generator.
    for (u32 attempt = 0; attempt < 4 * target_len && tx.size() < target_len;
         ++attempt) {
      const u32 p = pick_pattern();
      for (Item item : patterns[p]) {
        if (!rng.bernoulli(corruption[p])) tx.push_back(item);
      }
    }
    if (tx.empty()) tx.push_back(static_cast<Item>(rng.below(params.num_items)));
    fim::canonicalize(tx);
    transactions.push_back(std::move(tx));
  }
  return fim::TransactionDB(std::move(transactions));
}

}  // namespace yafim::datagen
