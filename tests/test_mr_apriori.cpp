// Tests for the MRApriori baseline: exactness and the per-iteration cost
// structure (job startup + repeated DFS reads) the paper attributes the
// MapReduce slowdown to.
#include <gtest/gtest.h>

#include "fim/apriori_seq.h"
#include "fim/mr_apriori.h"
#include "fim/mr_encode.h"
#include "fim/yafim.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

engine::Context::Options small_cluster() {
  engine::Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(3);
  opts.host_threads = 4;
  return opts;
}

TransactionDB random_db(u32 universe, int transactions, double density,
                        u64 seed) {
  Rng rng(seed);
  std::vector<Transaction> tx;
  for (int i = 0; i < transactions; ++i) {
    Transaction t;
    for (u32 item = 0; item < universe; ++item) {
      if (rng.bernoulli(density)) t.push_back(item);
    }
    if (t.empty()) t.push_back(static_cast<Item>(rng.below(universe)));
    tx.push_back(std::move(t));
  }
  return TransactionDB(std::move(tx));
}

TEST(MrApriori, MatchesSequentialApriori) {
  const auto db = random_db(16, 200, 0.35, 100);
  AprioriOptions sopt;
  sopt.min_support = 0.2;
  const auto seq = apriori_mine(db, sopt);

  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  MrAprioriOptions opt;
  opt.min_support = 0.2;
  const auto run = mr_apriori_mine(ctx, fs, db, opt);
  EXPECT_TRUE(run.itemsets.same_itemsets(seq.itemsets));
}

TEST(MrApriori, EmptyDatabase) {
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  MrAprioriOptions opt;
  const auto run = mr_apriori_mine(ctx, fs, TransactionDB(), opt);
  EXPECT_EQ(run.itemsets.total(), 0u);
}

TEST(MrApriori, OneJobPerPass) {
  const auto db = random_db(14, 150, 0.4, 7);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  MrAprioriOptions opt;
  opt.min_support = 0.25;
  const auto run = mr_apriori_mine(ctx, fs, db, opt);

  // Count job startups in the report: one per completed pass.
  u32 startups = 0;
  for (const auto& stage : ctx.report().stages()) {
    if (stage.fixed_overhead_s > 0) ++startups;
  }
  EXPECT_EQ(startups, run.passes.size());
  // Each pass pays at least the job-startup overhead.
  for (const auto& pass : run.passes) {
    EXPECT_GE(pass.sim_seconds, ctx.cluster().mr_job_startup_s);
  }
}

TEST(MrApriori, ReReadsInputEveryJob) {
  const auto db = random_db(14, 150, 0.4, 7);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  MrAprioriOptions opt;
  opt.min_support = 0.25;
  const auto run = mr_apriori_mine(ctx, fs, db, opt);

  const u64 input_bytes = db.serialize().size();
  // Every pass reads the transaction input afresh (plus small L(k-1)
  // read-backs), unlike YAFIM's single load.
  EXPECT_GE(ctx.report().total_dfs_read_bytes(),
            input_bytes * run.passes.size());
}

TEST(MrApriori, WritesFrequentItemsetsToDfs) {
  const auto db = random_db(14, 150, 0.4, 7);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  MrAprioriOptions opt;
  opt.min_support = 0.25;
  const auto run = mr_apriori_mine(ctx, fs, db, opt);

  const auto outputs = fs.list(opt.work_dir + "/");
  EXPECT_EQ(outputs.size(), run.passes.size());
  // The L1 file round-trips to the frequent 1-itemsets.
  const auto l1 = decode_counts(fs.read(opt.work_dir + "/L1"));
  EXPECT_EQ(l1.size(), run.itemsets.level(1).size());
  for (const auto& [itemset, support] : l1) {
    EXPECT_EQ(run.itemsets.support_of(itemset), support);
  }
}

TEST(MrApriori, SlowerThanYafimOnSameWorkload) {
  const auto db = random_db(14, 300, 0.4, 21);
  double yafim_s = 0, mr_s = 0;
  FrequentItemsets yafim_sets, mr_sets;
  {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    YafimOptions opt;
    opt.min_support = 0.25;
    const auto run = yafim_mine(ctx, fs, db, opt);
    yafim_s = run.total_seconds();
    yafim_sets = run.itemsets;
  }
  {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    MrAprioriOptions opt;
    opt.min_support = 0.25;
    const auto run = mr_apriori_mine(ctx, fs, db, opt);
    mr_s = run.total_seconds();
    mr_sets = run.itemsets;
  }
  // "All the experimental results of YAFIM are exactly same as MRApriori."
  EXPECT_TRUE(yafim_sets.same_itemsets(mr_sets));
  // And the headline: an order of magnitude apart on iteration overheads.
  EXPECT_GT(mr_s, 5.0 * yafim_s);
}

TEST(MrApriori, ExplicitTaskCounts) {
  const auto db = random_db(12, 100, 0.5, 23);
  // Exact stage shapes: pin injection off (speculative copies add task
  // records), so this holds under the CI fault matrix too.
  auto opts = small_cluster();
  opts.fault = engine::FaultProfile{};
  engine::Context ctx(opts);
  simfs::SimFS fs(ctx.cluster());
  MrAprioriOptions opt;
  opt.min_support = 0.3;
  opt.num_mappers = 5;
  opt.num_reducers = 2;
  const auto run = mr_apriori_mine(ctx, fs, db, opt);
  EXPECT_GT(run.itemsets.total(), 0u);
  for (const auto& stage : ctx.report().stages()) {
    if (stage.kind == sim::StageKind::kMapPhase) {
      EXPECT_EQ(stage.tasks.size(), 5u);
    }
    if (stage.kind == sim::StageKind::kReducePhase) {
      EXPECT_EQ(stage.tasks.size(), 2u);
    }
  }
}

/// Parameterised exactness sweep (mirrors YafimSweep).
class MrAprioriSweep
    : public ::testing::TestWithParam<std::tuple<double, double, u32>> {};

TEST_P(MrAprioriSweep, AlwaysMatchesReference) {
  const auto [density, min_support, seed] = GetParam();
  const auto db = random_db(15, 120, density, seed);
  AprioriOptions sopt;
  sopt.min_support = min_support;
  const auto seq = apriori_mine(db, sopt);

  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  MrAprioriOptions opt;
  opt.min_support = min_support;
  const auto run = mr_apriori_mine(ctx, fs, db, opt);
  EXPECT_TRUE(run.itemsets.same_itemsets(seq.itemsets));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MrAprioriSweep,
    ::testing::Combine(::testing::Values(0.2, 0.5, 0.75),
                       ::testing::Values(0.1, 0.3, 0.55),
                       ::testing::Values(1u, 2u)));

}  // namespace
}  // namespace yafim::fim
