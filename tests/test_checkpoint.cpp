// Checkpoint/resume tests: snapshot codec round-trip, the deterministic
// damage sweep (every truncation point, every flipped bit is rejected
// whole -- never half-loaded), store behavior, and kill-and-resume
// bit-identity for both YAFIM and the MRApriori baseline.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fim/checkpoint.h"
#include "fim/mr_apriori.h"
#include "fim/yafim.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

namespace stdfs = std::filesystem;

engine::Context::Options small_cluster() {
  engine::Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(3);
  opts.host_threads = 4;
  return opts;
}

TransactionDB random_db(u32 universe, int transactions, double density,
                        u64 seed) {
  Rng rng(seed);
  std::vector<Transaction> tx;
  for (int i = 0; i < transactions; ++i) {
    Transaction t;
    for (u32 item = 0; item < universe; ++item) {
      if (rng.bernoulli(density)) t.push_back(item);
    }
    if (t.empty()) t.push_back(static_cast<Item>(rng.below(universe)));
    tx.push_back(std::move(t));
  }
  return TransactionDB(std::move(tx));
}

std::string fresh_dir(const std::string& name) {
  const stdfs::path dir = stdfs::path(::testing::TempDir()) / name;
  stdfs::remove_all(dir);
  return dir.string();
}

CheckpointState sample_state() {
  CheckpointState state;
  state.fingerprint = 0xFEEDFACEu;
  state.pass = 3;
  state.num_transactions = 200;
  state.min_support_count = 17;
  state.setup_seconds = 1.25;
  state.aux = 4242;
  state.passes = {PassStats{1, 20, 12, 0.5}, PassStats{2, 66, 9, 0.75},
                  PassStats{3, 5, 2, 0.25}};
  state.itemsets = FrequentItemsets(17, 200);
  state.itemsets.add({1}, 50);
  state.itemsets.add({2}, 40);
  state.itemsets.add({1, 2}, 30);
  state.itemsets.add({1, 2, 7}, 18);
  state.frontier = {{1, 2, 7}};
  return state;
}

void expect_equal(const CheckpointState& a, const CheckpointState& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.pass, b.pass);
  EXPECT_EQ(a.num_transactions, b.num_transactions);
  EXPECT_EQ(a.min_support_count, b.min_support_count);
  EXPECT_EQ(a.setup_seconds, b.setup_seconds);
  EXPECT_EQ(a.aux, b.aux);
  ASSERT_EQ(a.passes.size(), b.passes.size());
  for (size_t i = 0; i < a.passes.size(); ++i) {
    EXPECT_EQ(a.passes[i].k, b.passes[i].k);
    EXPECT_EQ(a.passes[i].candidates, b.passes[i].candidates);
    EXPECT_EQ(a.passes[i].frequent, b.passes[i].frequent);
    EXPECT_EQ(a.passes[i].sim_seconds, b.passes[i].sim_seconds);
  }
  EXPECT_TRUE(a.itemsets.same_itemsets(b.itemsets));
  EXPECT_EQ(a.frontier, b.frontier);
}

TEST(Checkpoint, SnapshotRoundTrip) {
  const CheckpointState state = sample_state();
  const auto bytes = encode_snapshot(state);
  const auto decoded = decode_snapshot(bytes, state.fingerprint);
  ASSERT_TRUE(decoded.has_value());
  expect_equal(state, *decoded);
}

TEST(Checkpoint, EncodingIsDeterministic) {
  // Identical states must encode to identical bytes (hash-map iteration
  // order must not leak into the format) -- the resume bit-identity proof
  // rests on this.
  EXPECT_EQ(encode_snapshot(sample_state()), encode_snapshot(sample_state()));
}

TEST(Checkpoint, ForeignFingerprintRejected) {
  const CheckpointState state = sample_state();
  const auto bytes = encode_snapshot(state);
  EXPECT_FALSE(decode_snapshot(bytes, state.fingerprint + 1).has_value());
}

TEST(Checkpoint, EveryTruncationRejected) {
  const CheckpointState state = sample_state();
  const auto bytes = encode_snapshot(state);
  for (size_t len = 0; len < bytes.size(); ++len) {
    const auto torn = std::span<const u8>(bytes.data(), len);
    EXPECT_FALSE(decode_snapshot(torn, state.fingerprint).has_value())
        << "torn snapshot of " << len << "/" << bytes.size()
        << " bytes must be rejected";
  }
}

TEST(Checkpoint, EveryBitFlipRejected) {
  // Flip each bit of the snapshot -- header fields, payload and the
  // trailing checksum alike -- and require rejection. Nothing damaged may
  // half-load.
  const CheckpointState state = sample_state();
  const auto bytes = encode_snapshot(state);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto damaged = bytes;
      damaged[byte] ^= static_cast<u8>(1u << bit);
      EXPECT_FALSE(decode_snapshot(damaged, state.fingerprint).has_value())
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(Checkpoint, DirStoreRoundTripAndTmpFilter) {
  DirCheckpointStore store(fresh_dir("ck_dir_store"));
  EXPECT_FALSE(store.get("pass-0001.ck").has_value());

  store.put("pass-0001.ck", {1, 2, 3});
  store.put("pass-0002.ck", {4});
  // A crash between tmp-write and rename leaves a .tmp behind; it must not
  // be offered as a snapshot.
  std::ofstream(stdfs::path(store.dir()) / "pass-0003.ck.tmp") << "torn";

  EXPECT_EQ(store.list(),
            (std::vector<std::string>{"pass-0001.ck", "pass-0002.ck"}));
  EXPECT_EQ(store.get("pass-0001.ck"), (std::vector<u8>{1, 2, 3}));
  store.remove("pass-0001.ck");
  EXPECT_EQ(store.list(), (std::vector<std::string>{"pass-0002.ck"}));
}

TEST(Checkpoint, DirStoreSweepsOrphanedTmpFilesOnOpen) {
  // A crash between tmp-write and rename leaves a *.tmp orphan on disk
  // forever (each put() uses a fresh name). Opening the store must sweep
  // such orphans -- and must never have offered them as snapshots.
  const std::string dir = fresh_dir("ck_tmp_sweep");
  {
    DirCheckpointStore store(dir);
    store.put("pass-0001.ck", {1, 2, 3});
  }
  const stdfs::path orphan = stdfs::path(dir) / "pass-0002.ck.tmp";
  std::ofstream(orphan) << "torn half-written snapshot";
  ASSERT_TRUE(stdfs::exists(orphan));

  DirCheckpointStore reopened(dir);
  EXPECT_FALSE(stdfs::exists(orphan)) << "orphaned .tmp not swept on open";
  // The real snapshot survives the sweep; the orphan was never listed.
  EXPECT_EQ(reopened.list(), (std::vector<std::string>{"pass-0001.ck"}));
  EXPECT_EQ(reopened.get("pass-0001.ck"), (std::vector<u8>{1, 2, 3}));
  EXPECT_FALSE(reopened.get("pass-0002.ck").has_value());
}

TEST(Checkpoint, LoadLatestSkipsDamagedTail) {
  DirCheckpointStore store(fresh_dir("ck_damaged_tail"));
  CheckpointState state = sample_state();
  for (u32 pass = 1; pass <= 3; ++pass) {
    state.pass = pass;
    save_snapshot(store, state);
  }
  // Damage the newest snapshot the way a crash mid-write would NOT (rename
  // is atomic) but a disk fault could: truncate it in place.
  auto newest = store.get(snapshot_name(3));
  ASSERT_TRUE(newest.has_value());
  newest->resize(newest->size() / 2);
  store.put(snapshot_name(3), *newest);

  u32 rejected = 0;
  const auto loaded =
      load_latest_snapshot(store, state.fingerprint, &rejected);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->pass, 2u);
  EXPECT_EQ(rejected, 1u);
}

TEST(Checkpoint, SimFSStoreAbsorbsCorruption) {
  sim::ClusterConfig cluster = sim::ClusterConfig::with_nodes(3);
  simfs::SimFS fs(cluster, sim::CorruptionProfile{});
  SimFSCheckpointStore store(fs, "hdfs://ck");

  CheckpointState state = sample_state();
  state.pass = 1;
  save_snapshot(store, state);
  state.pass = 2;
  save_snapshot(store, state);
  EXPECT_EQ(store.list(),
            (std::vector<std::string>{snapshot_name(1), snapshot_name(2)}));

  // Rot all replicas of the newest snapshot: SimFS reports it corrupt, the
  // store surfaces it as absent, and resume falls back to pass 1.
  fs.debug_corrupt("hdfs://ck/" + snapshot_name(2), 3);
  u32 rejected = 0;
  const auto loaded =
      load_latest_snapshot(store, state.fingerprint, &rejected);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->pass, 1u);
  EXPECT_EQ(rejected, 1u);
}

TEST(Checkpoint, YafimResumeIsBitIdentical) {
  const auto db = random_db(16, 200, 0.7, 100);
  engine::Context::Options copts = small_cluster();

  YafimOptions opt;
  opt.min_support = 0.25;

  // Reference: one uninterrupted run, no checkpointing.
  engine::Context ref_ctx(copts);
  simfs::SimFS ref_fs(ref_ctx.cluster());
  const auto reference = yafim_mine(ref_ctx, ref_fs, db, opt);
  ASSERT_GE(reference.passes.size(), 3u) << "need k >= 3 to test resume";

  // Crash after pass 2, then resume from the same checkpoint dir.
  DirCheckpointStore store(fresh_dir("ck_yafim_resume"));
  opt.checkpoint = &store;
  opt.stop_after_pass = 2;
  engine::Context crash_ctx(copts);
  simfs::SimFS crash_fs(crash_ctx.cluster());
  const auto partial = yafim_mine(crash_ctx, crash_fs, db, opt);
  EXPECT_EQ(partial.passes.back().k, 2u);
  EXPECT_EQ(partial.resumed_pass, 0u);

  opt.stop_after_pass = 0;
  engine::Context resume_ctx(copts);
  simfs::SimFS resume_fs(resume_ctx.cluster());
  const auto resumed = yafim_mine(resume_ctx, resume_fs, db, opt);

  EXPECT_EQ(resumed.resumed_pass, 2u);
  EXPECT_TRUE(resumed.itemsets.same_itemsets(reference.itemsets));
  EXPECT_EQ(resumed.itemsets.sorted(), reference.itemsets.sorted());
  ASSERT_EQ(resumed.passes.size(), reference.passes.size());
  for (size_t i = 0; i < resumed.passes.size(); ++i) {
    EXPECT_EQ(resumed.passes[i].k, reference.passes[i].k);
    EXPECT_EQ(resumed.passes[i].candidates, reference.passes[i].candidates);
    EXPECT_EQ(resumed.passes[i].frequent, reference.passes[i].frequent);
  }

  // A second resume from the completed run's snapshots re-mines nothing
  // and still returns the full answer.
  engine::Context again_ctx(copts);
  simfs::SimFS again_fs(again_ctx.cluster());
  const auto again = yafim_mine(again_ctx, again_fs, db, opt);
  EXPECT_EQ(again.resumed_pass, again.passes.back().k);
  EXPECT_EQ(again.itemsets.sorted(), reference.itemsets.sorted());
}

TEST(Checkpoint, YafimIgnoresForeignCheckpoints) {
  // A store populated from one dataset must never seed a run over another.
  DirCheckpointStore store(fresh_dir("ck_yafim_foreign"));
  engine::Context::Options copts = small_cluster();
  YafimOptions opt;
  opt.min_support = 0.25;
  opt.checkpoint = &store;

  const auto db_a = random_db(16, 200, 0.7, 100);
  engine::Context ctx_a(copts);
  simfs::SimFS fs_a(ctx_a.cluster());
  (void)yafim_mine(ctx_a, fs_a, db_a, opt);
  ASSERT_FALSE(store.list().empty());

  const auto db_b = random_db(16, 200, 0.7, 101);
  engine::Context ref_ctx(copts);
  simfs::SimFS ref_fs(ref_ctx.cluster());
  YafimOptions plain;
  plain.min_support = 0.25;
  const auto reference = yafim_mine(ref_ctx, ref_fs, db_b, plain);

  engine::Context ctx_b(copts);
  simfs::SimFS fs_b(ctx_b.cluster());
  const auto run_b = yafim_mine(ctx_b, fs_b, db_b, opt);
  EXPECT_EQ(run_b.resumed_pass, 0u);
  EXPECT_EQ(run_b.itemsets.sorted(), reference.itemsets.sorted());
}

TEST(Checkpoint, MrAprioriResumeIsBitIdentical) {
  const auto db = random_db(16, 200, 0.7, 100);
  engine::Context::Options copts = small_cluster();

  MrAprioriOptions opt;
  opt.min_support = 0.25;

  engine::Context ref_ctx(copts);
  simfs::SimFS ref_fs(ref_ctx.cluster());
  const auto reference = mr_apriori_mine(ref_ctx, ref_fs, db, opt);
  ASSERT_GE(reference.passes.size(), 3u);

  DirCheckpointStore store(fresh_dir("ck_mrapriori_resume"));
  opt.checkpoint = &store;
  opt.stop_after_pass = 2;
  engine::Context crash_ctx(copts);
  simfs::SimFS crash_fs(crash_ctx.cluster());
  const auto partial = mr_apriori_mine(crash_ctx, crash_fs, db, opt);
  EXPECT_EQ(partial.passes.back().k, 2u);

  opt.stop_after_pass = 0;
  engine::Context resume_ctx(copts);
  simfs::SimFS resume_fs(resume_ctx.cluster());
  const auto resumed = mr_apriori_mine(resume_ctx, resume_fs, db, opt);

  EXPECT_EQ(resumed.resumed_pass, 2u);
  EXPECT_EQ(resumed.itemsets.sorted(), reference.itemsets.sorted());
  ASSERT_EQ(resumed.passes.size(), reference.passes.size());
  for (size_t i = 0; i < resumed.passes.size(); ++i) {
    EXPECT_EQ(resumed.passes[i].k, reference.passes[i].k);
    EXPECT_EQ(resumed.passes[i].candidates, reference.passes[i].candidates);
    EXPECT_EQ(resumed.passes[i].frequent, reference.passes[i].frequent);
  }
}

TEST(Checkpoint, YafimCombinedPassesResume) {
  // combine_passes changes the snapshot cadence (one per batch) and is part
  // of the fingerprint; resume under combining must still be exact.
  const auto db = random_db(16, 200, 0.7, 100);
  engine::Context::Options copts = small_cluster();

  YafimOptions opt;
  opt.min_support = 0.25;
  opt.combine_passes = 2;

  engine::Context ref_ctx(copts);
  simfs::SimFS ref_fs(ref_ctx.cluster());
  const auto reference = yafim_mine(ref_ctx, ref_fs, db, opt);

  DirCheckpointStore store(fresh_dir("ck_yafim_combined"));
  opt.checkpoint = &store;
  opt.stop_after_pass = 2;
  engine::Context crash_ctx(copts);
  simfs::SimFS crash_fs(crash_ctx.cluster());
  (void)yafim_mine(crash_ctx, crash_fs, db, opt);

  opt.stop_after_pass = 0;
  engine::Context resume_ctx(copts);
  simfs::SimFS resume_fs(resume_ctx.cluster());
  const auto resumed = yafim_mine(resume_ctx, resume_fs, db, opt);
  EXPECT_GT(resumed.resumed_pass, 0u);
  EXPECT_EQ(resumed.itemsets.sorted(), reference.itemsets.sorted());
}

}  // namespace
}  // namespace yafim::fim
