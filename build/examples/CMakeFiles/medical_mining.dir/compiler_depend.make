# Empty compiler generated dependencies file for medical_mining.
# This may be replaced when dependencies are built.
