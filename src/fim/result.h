// Mining results. Every miner in the repository -- sequential Apriori,
// YAFIM, MRApriori, the SPC/FPC/DPC variants, FP-Growth and Eclat --
// returns the same FrequentItemsets type, which is how the test suite
// asserts the paper's correctness claim ("all the experimental results of
// YAFIM are exactly same as MRApriori").
#pragma once

#include <unordered_map>
#include <vector>

#include "fim/itemset.h"
#include "util/common.h"

namespace yafim::fim {

using SupportMap = std::unordered_map<Itemset, u64, ItemsetHash, ItemsetEq>;

/// All frequent itemsets of a mining run, organised by level: level(k) maps
/// each frequent k-itemset to its exact support count.
class FrequentItemsets {
 public:
  FrequentItemsets() = default;
  FrequentItemsets(u64 min_support_count, u64 num_transactions)
      : min_support_count_(min_support_count),
        num_transactions_(num_transactions) {}

  u64 min_support_count() const { return min_support_count_; }
  u64 num_transactions() const { return num_transactions_; }

  /// Largest k with any frequent k-itemset (0 when empty).
  u32 max_k() const { return static_cast<u32>(levels_.size()); }

  /// Frequent k-itemsets (k is 1-based). Returns an empty map for k out of
  /// range.
  const SupportMap& level(u32 k) const;

  /// Add one frequent itemset with its support. The itemset must be
  /// canonical; duplicates must carry the same support (CHECKed).
  void add(Itemset itemset, u64 support);

  /// Support lookup; 0 if not frequent.
  u64 support_of(const Itemset& itemset) const;
  bool contains(const Itemset& itemset) const {
    return support_of(itemset) > 0;
  }

  /// Total number of frequent itemsets across all levels.
  u64 total() const;

  /// Deterministic flattening: (itemset, support) sorted by (size, lex).
  std::vector<std::pair<Itemset, u64>> sorted() const;

  /// Exact equality of contents (levels, itemsets and supports).
  bool same_itemsets(const FrequentItemsets& other) const;

 private:
  u64 min_support_count_ = 0;
  u64 num_transactions_ = 0;
  std::vector<SupportMap> levels_;
};

/// Per-iteration statistics, one entry per Apriori pass (Fig. 3/6 rows).
struct PassStats {
  u32 k = 0;
  u64 candidates = 0;
  u64 frequent = 0;
  /// Simulated cluster seconds attributed to this pass.
  double sim_seconds = 0.0;
};

/// A complete run of one parallel miner.
struct MiningRun {
  FrequentItemsets itemsets;
  std::vector<PassStats> passes;
  /// Simulated seconds outside any pass (initial HDFS load for YAFIM).
  double setup_seconds = 0.0;
  /// Passes k <= resumed_pass were restored from a checkpoint snapshot
  /// rather than mined (their PassStats carry the original run's numbers);
  /// 0 means the run started from scratch.
  u32 resumed_pass = 0;
  /// Host wall-clock seconds spent in pass >= 2 counting stages (probe +
  /// shuffle + support filter), the axis the count-mode ablation measures.
  /// Not part of PassStats so checkpoint snapshots stay format-stable.
  double count_host_seconds = 0.0;

  double total_seconds() const {
    double total = setup_seconds;
    for (const PassStats& p : passes) total += p.sim_seconds;
    return total;
  }
};

}  // namespace yafim::fim
