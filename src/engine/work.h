// Per-task work accounting.
//
// While a task executes, the engine's operators (and user lambdas that want
// finer accounting, e.g. the hash-tree probe loop) add abstract work units
// to a thread-local counter. The stage scheduler snapshots the counter
// around each task and feeds it to the cost model. Deterministic by
// construction: the same input always produces the same counts.
#pragma once

#include "util/common.h"

namespace yafim::engine::work {

namespace detail {
inline thread_local u64 t_work = 0;
}

/// Add `units` of work to the current task.
inline void add(u64 units) { detail::t_work += units; }

/// Reset the counter (called by the scheduler at task start).
inline void reset() { detail::t_work = 0; }

/// Current accumulated value.
inline u64 current() { return detail::t_work; }

/// RAII scope that isolates a task's counter from its surroundings.
class Scope {
 public:
  Scope() : saved_(detail::t_work) { detail::t_work = 0; }
  ~Scope() { detail::t_work = saved_; }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  u64 measured() const { return detail::t_work; }

 private:
  u64 saved_;
};

}  // namespace yafim::engine::work
