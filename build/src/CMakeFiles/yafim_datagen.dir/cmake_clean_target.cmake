file(REMOVE_RECURSE
  "libyafim_datagen.a"
)
