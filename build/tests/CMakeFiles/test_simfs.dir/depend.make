# Empty dependencies file for test_simfs.
# This may be replaced when dependencies are built.
