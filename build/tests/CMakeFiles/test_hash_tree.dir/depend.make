# Empty dependencies file for test_hash_tree.
# This may be replaced when dependencies are built.
