// Regenerates Fig. 6: YAFIM vs MRApriori per-pass execution time on the
// medical-case dataset (Sup = 3%), the paper's §V-D healthcare application.
// Paper reference: YAFIM ~25x faster overall; YAFIM's per-pass time shrinks
// as iterations proceed while MRApriori's stays dominated by job overheads.
#include "common.h"

using namespace yafim;
using namespace yafim::benchharness;

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv, /*default_scale=*/1.0);
  const auto cluster = sim::ClusterConfig::paper();

  const auto bench = datagen::make_medical(args.scale);
  std::printf("== Fig. 6: medical case data, Sup = %s (scale=%.2f) ==\n",
              support_pct(bench.paper_min_support).c_str(), args.scale);

  const auto yafim_run = run_yafim(bench, cluster);
  const auto mr_run = run_mr(bench, cluster);
  YAFIM_CHECK(yafim_run.itemsets.same_itemsets(mr_run.itemsets),
              "engines disagree -- correctness bug");

  Table table({"pass", "|Ck|", "|Lk|", "YAFIM(s)", "MRApriori(s)",
               "speedup"});
  const size_t passes =
      std::min(yafim_run.passes.size(), mr_run.passes.size());
  for (size_t p = 0; p < passes; ++p) {
    const auto& y = yafim_run.passes[p];
    const auto& m = mr_run.passes[p];
    table.add_row({Table::num(u64{y.k}), Table::num(y.candidates),
                   Table::num(y.frequent), Table::num(y.sim_seconds),
                   Table::num(m.sim_seconds),
                   Table::num(m.sim_seconds / y.sim_seconds, 1) + "x"});
  }
  print_table(table, args);
  std::printf("total: YAFIM %.1fs, MRApriori %.1fs -> %.1fx "
              "(paper reports ~25x)\n",
              yafim_run.total_seconds(), mr_run.total_seconds(),
              mr_run.total_seconds() / yafim_run.total_seconds());
  return 0;
}
