// Quickstart: mine frequent itemsets from a small inline dataset with
// YAFIM on the simulated cluster, and check the result against the
// sequential Apriori reference.
//
//   $ ./examples/quickstart
//
// This is the smallest end-to-end use of the public API:
//   TransactionDB  -> the dataset
//   Context/SimFS  -> the simulated Spark cluster + HDFS
//   yafim_mine()   -> the paper's algorithm
#include <cstdio>

#include "fim/apriori_seq.h"
#include "fim/yafim.h"

using namespace yafim;

int main() {
  // A tiny market-basket database: items are integer ids
  // (0 = bread, 1 = milk, 2 = butter, 3 = beer, 4 = diapers).
  fim::TransactionDB db({
      {0, 1},        // bread, milk
      {0, 1, 2},     // bread, milk, butter
      {1, 2},        // milk, butter
      {0, 1, 2},     // bread, milk, butter
      {3, 4},        // beer, diapers
      {0, 3, 4},     // bread, beer, diapers
      {0, 1, 4},     // bread, milk, diapers
      {0, 1, 2, 4},  // bread, milk, butter, diapers
  });
  const char* names[] = {"bread", "milk", "butter", "beer", "diapers"};

  // A simulated 12-node cluster with a simulated HDFS, as in the paper.
  engine::Context ctx;
  simfs::SimFS fs(ctx.cluster());

  fim::YafimOptions options;
  options.min_support = 0.3;  // itemsets in >= 30% of transactions

  const fim::MiningRun run = fim::yafim_mine(ctx, fs, db, options);

  std::printf("Frequent itemsets (MinSup = 30%% of %llu transactions):\n",
              (unsigned long long)db.size());
  for (const auto& [itemset, support] : run.itemsets.sorted()) {
    std::printf("  {");
    for (size_t i = 0; i < itemset.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", names[itemset[i]]);
    }
    std::printf("}  support %llu/%llu\n", (unsigned long long)support,
                (unsigned long long)db.size());
  }

  std::printf("\nPer-pass simulated cluster time:\n");
  for (const auto& pass : run.passes) {
    std::printf("  pass %u: %llu candidates -> %llu frequent  (%.2f s)\n",
                pass.k, (unsigned long long)pass.candidates,
                (unsigned long long)pass.frequent, pass.sim_seconds);
  }

  // The parallel result is bit-identical to single-node Apriori.
  fim::AprioriOptions reference;
  reference.min_support = options.min_support;
  const auto check = fim::apriori_mine(db, reference);
  std::printf("\nmatches sequential Apriori: %s\n",
              run.itemsets.same_itemsets(check.itemsets) ? "yes" : "NO");
  return 0;
}
