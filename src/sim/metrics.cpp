#include "sim/metrics.h"

#include <algorithm>

#include "sim/makespan.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/table.h"

namespace yafim::sim {

namespace {

/// Deterministic per-task launch-overhead jitter in [0.5, 1.5).
///
/// Real task launches are heterogeneous (scheduling delay, code shipping,
/// executor state); modeling them as identical makes every stage quantize
/// into exact waves of ceil(tasks/cores), which produces stair-stepped
/// core-scaling curves no real cluster shows. Hash-based jitter keeps the
/// mean launch cost configured in ClusterConfig while restoring the smooth
/// makespan behaviour of heterogeneous tasks.
double launch_jitter(u64 task_index) {
  const u64 h = mix64(task_index ^ 0x51ac5ed5ULL);
  return 0.5 + static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::vector<TaskRecord> split_work(u64 total_work, u32 ntasks) {
  YAFIM_CHECK(ntasks > 0, "split_work needs >= 1 task");
  std::vector<TaskRecord> tasks(ntasks);
  const u64 per_task = total_work / ntasks;
  const u64 extra = total_work % ntasks;
  for (u32 t = 0; t < ntasks; ++t) {
    tasks[t].work = per_task + (t < extra ? 1 : 0);
  }
  return tasks;
}

double stage_seconds(const StageRecord& stage, const CostModel& model) {
  const ClusterConfig& cluster = model.cluster();

  double launch = 0.0;
  switch (stage.kind) {
    case StageKind::kSparkStage:
      launch = cluster.spark_task_launch_s;
      break;
    case StageKind::kMapPhase:
    case StageKind::kReducePhase:
      launch = cluster.mr_task_launch_s;
      break;
    case StageKind::kOverhead:
      launch = 0.0;
      break;
  }

  std::vector<double> durations;
  durations.reserve(stage.tasks.size());
  for (size_t i = 0; i < stage.tasks.size(); ++i) {
    const TaskRecord& task = stage.tasks[i];
    // A task slot is occupied for: every launch's overhead, the work its
    // failed attempts burned, the retry backoffs between launches, and the
    // surviving attempt's work.
    const u32 launches = std::max(1u, task.attempts);
    durations.push_back(model.compute_seconds(task.work + task.wasted_work) +
                        launch * launch_jitter(i) * launches +
                        cluster.task_retry_backoff_s * (launches - 1));
  }
  double total = lpt_makespan(durations, cluster.total_cores());

  total += model.compute_seconds(stage.driver_work);
  total += stage.fixed_overhead_s;
  if (stage.dfs_read_bytes) total += model.dfs_read_seconds(stage.dfs_read_bytes);
  if (stage.dfs_write_bytes)
    total += model.dfs_write_seconds(stage.dfs_write_bytes);
  if (stage.shuffle_bytes) total += model.shuffle_seconds(stage.shuffle_bytes);
  if (stage.broadcast_bytes)
    total += model.broadcast_seconds(stage.broadcast_bytes);
  if (stage.naive_ship_bytes)
    total += model.naive_ship_seconds(stage.naive_ship_bytes,
                                      stage.tasks.size());
  return total;
}

double SimReport::total_seconds(const CostModel& model) const {
  double total = 0.0;
  for (const StageRecord& s : stages_) total += stage_seconds(s, model);
  return total;
}

std::vector<double> SimReport::pass_seconds(const CostModel& model) const {
  u32 max_pass = 0;
  for (const StageRecord& s : stages_) max_pass = std::max(max_pass, s.pass);
  std::vector<double> by_pass(max_pass + 1, 0.0);
  for (const StageRecord& s : stages_) {
    by_pass[s.pass] += stage_seconds(s, model);
  }
  return by_pass;
}

std::string format_report(const SimReport& report, const CostModel& model) {
  auto kind_name = [](StageKind kind) -> const char* {
    switch (kind) {
      case StageKind::kSparkStage:
        return "spark";
      case StageKind::kMapPhase:
        return "map";
      case StageKind::kReducePhase:
        return "reduce";
      case StageKind::kOverhead:
        return "overhead";
    }
    return "?";
  };

  Table table({"pass", "stage", "kind", "tasks", "work", "shuffle", "bcast",
               "dfs r/w", "sec"});
  for (const StageRecord& stage : report.stages()) {
    u64 work = stage.driver_work;
    for (const TaskRecord& t : stage.tasks) work += t.work;
    table.add_row(
        {Table::num(u64{stage.pass}), stage.label, kind_name(stage.kind),
         Table::num(u64{stage.tasks.size()}), Table::num(work),
         format_bytes(stage.shuffle_bytes),
         format_bytes(stage.broadcast_bytes + stage.naive_ship_bytes),
         format_bytes(stage.dfs_read_bytes) + "/" +
             format_bytes(stage.dfs_write_bytes),
         Table::num(stage_seconds(stage, model))});
  }
  std::string out = table.to_ascii();
  char total[64];
  std::snprintf(total, sizeof(total), "total: %.2f simulated seconds\n",
                report.total_seconds(model));
  return out + total;
}

u64 SimReport::total_work() const {
  u64 total = 0;
  for (const StageRecord& s : stages_) {
    total += s.driver_work;
    for (const TaskRecord& t : s.tasks) total += t.work;
  }
  return total;
}

u64 SimReport::total_shuffle_bytes() const {
  u64 total = 0;
  for (const StageRecord& s : stages_) total += s.shuffle_bytes;
  return total;
}

u64 SimReport::total_dfs_read_bytes() const {
  u64 total = 0;
  for (const StageRecord& s : stages_) total += s.dfs_read_bytes;
  return total;
}

u64 SimReport::total_dfs_write_bytes() const {
  u64 total = 0;
  for (const StageRecord& s : stages_) total += s.dfs_write_bytes;
  return total;
}

u64 SimReport::total_broadcast_bytes() const {
  u64 total = 0;
  for (const StageRecord& s : stages_) total += s.broadcast_bytes;
  return total;
}

}  // namespace yafim::sim
