// Per-pass checkpoint/resume for the level-wise miners.
//
// After each completed Apriori pass k, YAFIM and MRApriori can persist a
// snapshot of everything the driver needs to continue: the cumulative
// frequent itemsets (with supports), the per-pass statistics, and the
// frontier Lk that seeds candidate generation for pass k+1. A later run
// pointed at the same store resumes from the newest *valid* snapshot and
// skips every completed pass -- the exact restart cost the paper's
// HDFS-bound MapReduce baseline pays on any failure.
//
// Snapshot format (binary, little-endian via ByteWriter):
//
//   magic   u32  'YFCK'
//   version u32  kSnapshotVersion
//   fingerprint  u64   -- hash of (engine, dataset bytes, min support,
//                         pass-structure options); a snapshot from a
//                         different input or configuration never resumes
//   pass    u32  -- last completed pass k
//   num_transactions u64, min_support_count u64, setup_seconds f64
//   passes  [k, candidates, frequent, sim_seconds] x n
//   levels  frequent itemsets with supports, sorted (deterministic bytes)
//   frontier     Lk itemsets, sorted
//   checksum u64 -- XXH64 over every preceding byte
//
// Loading validates the checksum FIRST and only then parses, so a torn or
// bit-flipped snapshot is rejected whole -- never half-loaded. Writers go
// through a small Store interface with two backends: a real directory
// (atomic tmp+rename, survives SIGKILL of the process) and SimFS (whose own
// block checksums and replica repair sit underneath).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fim/result.h"
#include "util/common.h"

namespace yafim::simfs {
class SimFS;
}

namespace yafim::fim {

/// Where snapshots live. Names are flat strings ("pass-0003.ck").
class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;

  /// Persist `bytes` under `name`, replacing any existing snapshot. Must be
  /// atomic: a crash mid-put leaves either the old content or the new,
  /// never a torn file under `name`.
  virtual void put(const std::string& name, const std::vector<u8>& bytes) = 0;

  /// Snapshot bytes, or nullopt if absent/unreadable. Never throws.
  virtual std::optional<std::vector<u8>> get(const std::string& name) = 0;

  /// All snapshot names present, sorted.
  virtual std::vector<std::string> list() = 0;

  virtual void remove(const std::string& name) = 0;
};

/// Snapshots as files in a real directory (created on demand). Puts write
/// to a ".tmp" sibling and rename into place.
class DirCheckpointStore final : public CheckpointStore {
 public:
  explicit DirCheckpointStore(std::string dir);

  void put(const std::string& name, const std::vector<u8>& bytes) override;
  std::optional<std::vector<u8>> get(const std::string& name) override;
  std::vector<std::string> list() override;
  void remove(const std::string& name) override;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

/// Snapshots as SimFS files under a path prefix (the paper's setup: driver
/// state persisted back to HDFS). SimFS-level corruption is absorbed here:
/// an unrecoverably corrupt snapshot reads as absent.
class SimFSCheckpointStore final : public CheckpointStore {
 public:
  SimFSCheckpointStore(simfs::SimFS& fs, std::string prefix);

  void put(const std::string& name, const std::vector<u8>& bytes) override;
  std::optional<std::vector<u8>> get(const std::string& name) override;
  std::vector<std::string> list() override;
  void remove(const std::string& name) override;

 private:
  simfs::SimFS& fs_;
  std::string prefix_;
};

inline constexpr u32 kSnapshotMagic = 0x4B434659;  // "YFCK"
inline constexpr u32 kSnapshotVersion = 1;

/// Everything a level-wise miner needs to continue after pass `pass`.
struct CheckpointState {
  u64 fingerprint = 0;
  u32 pass = 0;

  u64 num_transactions = 0;
  u64 min_support_count = 0;
  double setup_seconds = 0.0;
  /// Engine-private carry-over (MRApriori persists the previous job's
  /// output bytes here -- its cost model reads them back on job k+1).
  u64 aux = 0;
  std::vector<PassStats> passes;

  /// All frequent itemsets found through pass `pass`, with supports.
  FrequentItemsets itemsets;
  /// The last completed level Lk (seeds apriori_gen for pass + 1).
  std::vector<Itemset> frontier;
};

/// Deterministic configuration fingerprint. `data_hash` is XXH64 of the
/// serialized dataset bytes; `extra` folds in engine options that change
/// the pass structure (e.g. combine_passes, max_levels).
u64 checkpoint_fingerprint(std::string_view engine, u64 data_hash,
                           u64 min_support_count, u64 extra);

/// Canonical snapshot name for pass k ("pass-0003.ck").
std::string snapshot_name(u32 pass);

/// Serialize a snapshot (versioned, checksummed, deterministic bytes).
std::vector<u8> encode_snapshot(const CheckpointState& state);

/// Parse and validate a snapshot. Returns nullopt -- never a partial state,
/// never an abort -- if the bytes are truncated, bit-flipped, of a foreign
/// version, or carry a different fingerprint than `expected_fingerprint`.
std::optional<CheckpointState> decode_snapshot(std::span<const u8> bytes,
                                               u64 expected_fingerprint);

/// Persist `state` into `store` under snapshot_name(state.pass).
void save_snapshot(CheckpointStore& store, const CheckpointState& state);

/// Newest valid snapshot matching `expected_fingerprint`, probing from the
/// highest pass down. Damaged or mismatched snapshots are counted into
/// `*rejected` (when non-null) and skipped.
std::optional<CheckpointState> load_latest_snapshot(
    CheckpointStore& store, u64 expected_fingerprint, u32* rejected = nullptr);

}  // namespace yafim::fim
