// Plan linter: pre-execution diagnostics over the lazy RDD lineage DAG.
//
// The paper's Spark-over-MapReduce gap rests on two plan-shape invariants:
// the Transactions RDD stays cached across passes, and the candidate hash
// tree is broadcast once per pass into executor memory. Both rot silently as
// a pipeline is rewired -- the run still produces correct itemsets, it just
// recomputes lineage (or swamps an executor) and the speedup evaporates.
// This module catches those plan bugs *before* the stage executes, instead
// of in benchmark regressions.
//
// Mechanics: lineage nodes are templated (engine/rdd.h) and carry no DAG
// metadata of their own, so the linter keeps a type-erased shadow of the
// plan, keyed by rdd id. Node constructors register their operator kind and
// parent ids; every action or shuffle calls before_execute() with the root
// id, and the linter walks the shadow DAG. The walk mirrors what execution
// will do: it stops at sources (driver-held data, never recomputed) and at
// persisted nodes whose cache a previous consumption already filled, and it
// counts a "consumption" against every node that would actually recompute.
//
// Rules (stable ids; severities note < warn < error):
//   YL001  warn   uncached RDD consumed by >= 2 actions/shuffles -- every
//                 extra consumption replays the lineage (defeats the
//                 paper's Phase-II caching claim).
//   YL002  error  broadcast payload exceeds per-executor memory
//                 (sim::ClusterConfig::executor_memory_bytes) -- workers
//                 cannot hold the value at all.
//   YL003  warn   persisted RDD whose cache is never read back -- dead
//                 cache: the memory (and eviction pressure) buys nothing.
//   YL004  note   a shuffle's upstream lineage filters the output of a map
//                 -- the filter is pushable below the map, shrinking both
//                 map work and what the map-side combine hashes.
//   YL005  warn   lineage deeper than LintOptions::max_lineage_depth at a
//                 consumption -- recomputing one lost partition replays the
//                 whole chain, so recovery cost grows with plan length.
//   YL006  note   streaming backpressure raised the effective re-verification
//                 threshold -- results stay exact (crossings are deferred,
//                 never dropped), but frontier maintenance is lagging the
//                 ingest rate and the deferred work is accumulating.
//   YL007  error  the determinism sanitizer (engine/detsan.h) observed a
//                 runtime divergence: re-executing a sampled task with a
//                 permuted input order produced different output -- the
//                 closure is impure or the reduce fn is non-commutative.
//   YL008  error  statically impure closure, reported by the companion
//                 static pass (scripts/closure_check.sh): a lambda passed
//                 to an RDD combinator captures mutable non-local state by
//                 reference, calls rand/time/std::random_device, or
//                 accumulates floating point without a
//                 `// detsan: tolerate-fp` waiver. YL008 never flows
//                 through PlanLinter at runtime; the id is reserved here so
//                 both layers share one rule vocabulary.
//
// Each emitted diagnostic also bumps an obs counter (lint.* family, gated on
// tracing like every obs counter). Tests assert through the Context hook
// instead: Context::linter().diagnostics().
#pragma once

#include <initializer_list>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/common.h"
#include "util/thread_annotations.h"

namespace yafim::engine {

/// Operator kind of a lineage node, registered at node construction.
enum class PlanOp : u8 {
  kSource,  ///< driver-held data (parallelize, shuffle outputs)
  kMap,
  kFlatMap,
  kFilter,
  kMapPartitions,
  kUnion,
  kSample,
  kCoalesce,
  kZipWithIndex,
};

const char* plan_op_name(PlanOp op);

enum class LintSeverity : u8 { kNote, kWarn, kError };

const char* lint_severity_name(LintSeverity severity);

/// One finding. `rule` is the stable id ("YL001"...); `node_name` is the
/// offending RDD's debug name (RDD::named) or "rdd#<id>" -- the same
/// identifier the trace spans and stage labels use.
struct LintDiagnostic {
  std::string rule;
  LintSeverity severity = LintSeverity::kNote;
  u32 node = 0;
  std::string node_name;
  std::string message;
};

/// Linting configuration (ContextOptions::lint). Disabled by default: the
/// only cost then is one branch per node construction / consumption.
struct LintOptions {
  bool enabled = false;
  /// YL005 threshold: lineage chains deeper than this are flagged.
  u32 max_lineage_depth = 32;
};

/// Type-erased shadow of the lineage DAG plus the rule engine. Owned by
/// Context; thread-safe (note_cache_read arrives from pool threads while
/// the driver builds plan nodes).
class PlanLinter {
 public:
  enum class Consume : u8 { kAction, kShuffle };

  /// Called once from the Context constructor, before any RDD exists.
  void configure(const LintOptions& options, u64 executor_memory_bytes);

  bool enabled() const { return enabled_; }

  // --- plan registration (engine/rdd.h hooks) --------------------------
  void register_node(u32 id, PlanOp op, std::initializer_list<u32> parents);
  void set_node_name(u32 id, std::string name);
  void note_persist(u32 id);
  /// A persisted partition was served from cache (clears YL003 for the rdd).
  void note_cache_read(u32 id);

  // --- rule evaluation --------------------------------------------------
  /// Walk the lineage rooted at `root` before an action/shuffle named
  /// `label` executes; evaluates YL001, YL004 and YL005.
  void before_execute(u32 root, Consume kind, const std::string& label);
  /// Evaluate YL002 for a broadcast of `bytes` named `name`.
  void check_broadcast(u64 bytes, const std::string& name);
  /// YL002's graceful-degradation twin: the payload did not fit, but the
  /// engine engaged the partitioned candidate store instead of shipping it
  /// whole. Emits YL002 as a *note* -- the plan shape is still worth
  /// surfacing, but workers never hold the oversized value, so it is no
  /// longer an error.
  void note_broadcast_fallback(u64 bytes, const std::string& name);
  /// YL006: the streaming backpressure controller raised the effective
  /// re-verification slack to `slack` (deferring `deferred` MinSup
  /// crossings) because batch latency reached `latency_s` against an ingest
  /// interval of `interval_s`. A note, not a warning: output stays exact,
  /// but the plan is running at the edge of its ingest budget.
  void note_stream_backpressure(double slack, u64 deferred, double latency_s,
                                double interval_s, const std::string& name);
  /// YL007: DetSan observed a runtime replay divergence on `node`.
  /// `node_name` is resolved by the caller (DetSan holds it for the error
  /// it may throw); `message` describes the divergence.
  void note_detsan_divergence(u32 node, const std::string& node_name,
                              const std::string& message);
  /// End-of-plan rules (YL003 dead cache). Call after the last action;
  /// idempotent per node.
  void finalize();

  /// Debug label for a node: its RDD::named name, or "rdd#<id>". Used by
  /// DetSan to name the diverging node in YL007 / DetSanError.
  std::string node_label(u32 id) const;

  // --- results ----------------------------------------------------------
  std::vector<LintDiagnostic> diagnostics() const;
  /// Number of diagnostics emitted for one rule id.
  size_t count(const std::string& rule) const;
  /// True if any diagnostic of at least `floor` severity was emitted.
  bool any_at_least(LintSeverity floor) const;
  /// Drop all diagnostics and per-node rule state (plan shadow is kept).
  void clear();

  /// Render one diagnostic as "YL001 warn 'transactions': ...".
  static std::string format(const LintDiagnostic& diag);

 private:
  struct NodeInfo {
    PlanOp op = PlanOp::kSource;
    std::vector<u32> parents;
    std::string name;
    u32 consume_count = 0;
    bool persisted = false;
    /// A consumption already materialized this node's cache; later
    /// consumptions are cache hits, so walks stop here.
    bool cache_materialized = false;
    bool cache_read = false;
    bool yl001_fired = false;
    bool yl003_fired = false;
    bool yl004_fired = false;
  };

  void emit_locked(const char* rule, LintSeverity severity, u32 id,
                   std::string message) YAFIM_REQUIRES(mutex_);
  std::string node_label_locked(u32 id) const YAFIM_REQUIRES(mutex_);
  /// DFS; returns the deepest lineage depth seen below (and including)
  /// `id`. `suppress_yl001` squelches descendants once an ancestor fired in
  /// this walk (the whole chain crosses the 1 -> 2 threshold together).
  u32 walk_locked(u32 id, u32 depth, bool suppress_yl001, Consume kind,
                  const std::string& label) YAFIM_REQUIRES(mutex_);
  bool has_map_below_locked(u32 id, u32 budget) const YAFIM_REQUIRES(mutex_);

  // Set once in configure() before any worker thread exists; read-only
  // afterwards, so unguarded reads are safe.
  bool enabled_ = false;
  u32 max_lineage_depth_ = 32;
  u64 executor_memory_bytes_ = 0;

  mutable util::Mutex mutex_;
  std::unordered_map<u32, NodeInfo> nodes_ YAFIM_GUARDED_BY(mutex_);
  std::vector<LintDiagnostic> diagnostics_ YAFIM_GUARDED_BY(mutex_);
};

}  // namespace yafim::engine
