// Approximate mining by sampling (Toivonen) unified with SON behind one
// two-phase driver: a local-mining job over per-sample (or per-split)
// chunks, then a single global verification job over the full data --
// exactly two full-data passes, independent of the lattice depth.
//
//   Phase 1 (local mine):  one scan of the staged dataset tags every
//     transaction with the samples that draw it (engine::MultiSampleNode,
//     seeded per-partition Bernoulli streams), a shuffle gathers each
//     sample, and an in-memory Apriori (fim/apriori_seq.h) mines it at the
//     relaxed threshold s*r. Each sample also reports its *negative
//     border* -- the minimal itemsets it did NOT find frequent -- built
//     from the same candidate generator the exact miners use.
//   Phase 2 (global verify): the union of all locally frequent itemsets
//     and borders is counted once against the full dataset through the
//     shared counting core (fim/count_core.h), so all three CountModes,
//     the partitioned broadcast fallback and the plan linter apply
//     unchanged. Survivors at MinSup are reported with exact supports.
//
// Exactness (Toivonen's guarantee): if some sample has *no* negative-
// border itemset globally frequent, every globally frequent itemset was
// locally frequent in that sample, so the verified output is the complete
// exact answer and the run is flagged `exact`. Otherwise the run reports
// the border survivors plus a Chernoff-style bound on the probability
// that any frequent itemset was missed.
//
// SON as a special case: SplitStrategy::kDisjointSplits with relax = 1
// partitions the data into n disjoint splits instead of sampling -- the
// SON property (a globally frequent itemset is locally frequent in at
// least one split) then guarantees completeness without any border, so
// the run is always exact and bit-identical to fim/son.h's son_mine.
#pragma once

#include <string>
#include <vector>

#include "engine/context.h"
#include "fim/dataset.h"
#include "fim/hash_tree.h"
#include "fim/result.h"
#include "simfs/simfs.h"

namespace yafim::fim {

enum class SplitStrategy {
  /// Toivonen: n_p independent Bernoulli(p) samples at threshold s*r,
  /// negative borders verified alongside the candidates.
  kBernoulliSamples,
  /// SON: n disjoint splits covering the data, mined at the full relative
  /// threshold (relax is forced to 1). Always exact, no border needed.
  kDisjointSplits,
};

struct SamplingOptions {
  /// Relative minimum support threshold in (0, 1].
  double min_support = 0.1;
  SplitStrategy strategy = SplitStrategy::kBernoulliSamples;
  /// Bernoulli keep probability p per sample, in (0, 1]. Ignored by
  /// kDisjointSplits (every transaction lands in exactly one split).
  double sample_fraction = 0.1;
  /// Number of samples n_p (or disjoint splits), in [1, 64].
  u32 num_samples = 4;
  /// Relaxation factor r in (0, 1]: samples are mined at support s*r.
  /// Smaller r admits more local candidates and makes an exact run more
  /// likely; r = 1 is no relaxation. Forced to 1 by kDisjointSplits.
  double relax = 0.5;
  /// Seed for the per-partition Bernoulli sample streams.
  u64 seed = 42;
  /// Partitions for the staged dataset; 0 = ctx.default_partitions().
  u32 partitions = 0;
  bool cache_transactions = true;
  /// Counting-path knobs, passed through to fim/count_core.h unchanged.
  bool use_hash_tree = true;
  CountMode count_mode = CountMode::kItemsetKey;
  BroadcastMode broadcast_mode = BroadcastMode::kAuto;
  u32 broadcast_shards = 0;
  u32 branching = 0;  // 0 = auto (HashTree::default_branching)
  u32 leaf_capacity = 16;
};

struct SamplingRun {
  /// Verified output: every itemset carries its *exact* full-data support
  /// (>= MinSup), whether it surfaced as a local candidate or as a border
  /// itemset that turned out to be globally frequent. run.passes has two
  /// entries: the sample/local-mine pass and the verification pass.
  MiningRun run;
  /// Distinct itemsets locally frequent in at least one sample.
  u64 candidate_union = 0;
  /// Distinct border-only itemsets (in some sample's negative border and
  /// no sample's frequent set).
  u64 border_union = 0;
  /// Locally frequent candidates that failed global verification.
  u64 false_candidates = 0;
  /// Distinct border itemsets that ARE globally frequent. Per Toivonen,
  /// the run is exact iff some sample contributed none of these.
  u64 border_survivors = 0;
  /// True when the verified output is provably the complete exact answer:
  /// some sample had no border survivor (kBernoulliSamples), or the
  /// splits cover the data (kDisjointSplits, always).
  bool exact = false;
  /// When not exact: Hoeffding bound on the probability that a fixed
  /// itemset with true support >= s was locally infrequent (below s*r) in
  /// every sample, prod_i exp(-2 * m_i * (s*(1-r))^2). 0 when exact.
  double miss_bound = 0.0;
  /// Transactions drawn by each sample (index = sample id).
  std::vector<u64> sample_sizes;
};

/// Negative border Bd^-(F) over `universe` (the distinct items of the
/// FULL dataset, sorted): the minimal itemsets not in F, i.e. every
/// itemset all of whose proper subsets are frequent but which is not
/// itself in F. Level 1 is the non-frequent universe items; level k > 1
/// is apriori_gen(F_{k-1}) minus F_k. `frequent` must be downward-closed
/// (any apriori_mine result is). Exposed for tests.
std::vector<Itemset> negative_border(const FrequentItemsets& frequent,
                                     const std::vector<Item>& universe);

/// Mine `input_path` (a staged TransactionDB) approximately -- or exactly,
/// when the exactness certificate holds -- in two full-data passes.
SamplingRun sampling_mine(engine::Context& ctx, simfs::SimFS& fs,
                          const std::string& input_path,
                          const SamplingOptions& options);

/// Convenience overload staging `db` onto `fs` first.
SamplingRun sampling_mine(engine::Context& ctx, simfs::SimFS& fs,
                          const TransactionDB& db,
                          const SamplingOptions& options);

}  // namespace yafim::fim
