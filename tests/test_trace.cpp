// Tests for the src/obs/ tracing + metrics layer: span nesting, counter
// parity with the SimReport accounting, Chrome trace-event JSON validity,
// and the zero-overhead no-op path when tracing is disabled.
#include <gtest/gtest.h>

#include <cctype>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "engine/rdd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace yafim::obs {
namespace {

engine::Context::Options small_cluster() {
  engine::Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(2);
  opts.host_threads = 4;
  return opts;
}

/// Fresh-tracer fixture: every test starts with an empty, running tracer
/// and zeroed counters, and leaves tracing disabled afterwards.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().reset();
    Tracer::instance().start();
  }
  void TearDown() override {
    Tracer::instance().stop();
    Tracer::instance().reset();
  }
};

const TraceEvent* find_complete(const std::vector<TraceEvent>& events,
                                const std::string& name) {
  for (const auto& e : events) {
    if (e.phase == TraceEvent::Phase::kComplete && e.name == name) return &e;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator. Accepts exactly the RFC 8259
// grammar (objects, arrays, strings with escapes, numbers, true/false/null);
// used to assert the Chrome trace export is well-formed without a JSON dep.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

TEST_F(TraceTest, SpanNestingTimestampsContained) {
  {
    Span outer("test", "outer");
    {
      Span inner("test", "inner");
      inner.arg("depth", 2);
    }
    outer.arg("depth", 1);
  }
  auto events = Tracer::instance().events();
  const TraceEvent* outer = find_complete(events, "outer");
  const TraceEvent* inner = find_complete(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->tid, inner->tid) << "same thread, same lane";
  EXPECT_GE(inner->ts_us, outer->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us, outer->ts_us + outer->dur_us)
      << "inner span must be contained in outer span";
  ASSERT_EQ(inner->args.size(), 1u);
  EXPECT_EQ(inner->args[0].first, "depth");
  EXPECT_EQ(inner->args[0].second, 2u);
}

TEST_F(TraceTest, ShuffleCounterMatchesSimReport) {
  engine::Context ctx(small_cluster());
  std::vector<std::pair<int, u64>> pairs;
  for (int i = 0; i < 1000; ++i) pairs.emplace_back(i, 1);
  ctx.parallelize(std::move(pairs), 4)
      .reduce_by_key([](u64 a, u64 b) { return a + b; })
      .collect();
  u64 report_shuffle = 0;
  for (const auto& s : ctx.report().stages()) {
    report_shuffle += s.shuffle_bytes;
  }
  // Same workload as test_rdd's ReduceByKeyRecordsShuffleBytes: 1000
  // distinct (int, u64) keys at 12 bytes each. The obs counter is fed from
  // the identical StageRecord, so the two accountings must agree exactly.
  EXPECT_EQ(report_shuffle, 12000u);
  EXPECT_EQ(counter_value(CounterId::kShuffleBytes), report_shuffle);
}

TEST_F(TraceTest, CacheCountersTrackPersistedPartitions) {
  // Exact hit/miss counts: ambient cache corruption would turn hits back
  // into misses, so opt out of the env fault profile.
  engine::Context::Options opts = small_cluster();
  opts.fault = engine::FaultProfile{};
  engine::Context ctx(opts);
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto rdd =
      ctx.parallelize(std::move(data), 4).map([](const int& x) { return x; });
  rdd.persist();
  rdd.collect();  // fills the cache: one miss per partition
  EXPECT_EQ(counter_value(CounterId::kCacheMisses), 4u);
  EXPECT_EQ(counter_value(CounterId::kCacheHits), 0u);
  rdd.collect();  // served from cache: one hit per partition
  EXPECT_EQ(counter_value(CounterId::kCacheMisses), 4u);
  EXPECT_EQ(counter_value(CounterId::kCacheHits), 4u);
}

TEST_F(TraceTest, LineageRecomputeCounterMatchesFaultInjector) {
  // The explicit fail_partition below must stay the only recompute cause,
  // so opt out of ambient cache-corruption injection.
  engine::Context::Options opts = small_cluster();
  opts.fault = engine::FaultProfile{};
  engine::Context ctx(opts);
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto rdd =
      ctx.parallelize(std::move(data), 4).map([](const int& x) { return x; });
  rdd.persist();
  rdd.collect();
  ASSERT_TRUE(ctx.fault_injector().fail_partition(rdd.id(), 2));
  EXPECT_EQ(counter_value(CounterId::kFaultPartitionsDropped), 1u);
  rdd.collect();  // recomputes the lost partition from lineage
  EXPECT_EQ(ctx.fault_injector().recomputations(), 1u);
  EXPECT_EQ(counter_value(CounterId::kLineageRecomputes),
            ctx.fault_injector().recomputations());
}

TEST_F(TraceTest, StageAndTaskSpansEmitted) {
  engine::Context ctx(small_cluster());
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  ctx.parallelize(std::move(data), 4)
      .map([](const int& x) { return x + 1; })
      .collect("trace:collect");
  auto events = Tracer::instance().events();
  const TraceEvent* stage = find_complete(events, "trace:collect");
  ASSERT_NE(stage, nullptr);
  EXPECT_STREQ(stage->cat, "stage");
  u32 tasks = 0;
  for (const auto& e : events) {
    if (e.phase == TraceEvent::Phase::kComplete && std::string(e.cat) == "task" &&
        e.name == "trace:collect") {
      ++tasks;
      EXPECT_GE(e.ts_us + e.dur_us, stage->ts_us);
      EXPECT_LE(e.ts_us + e.dur_us, stage->ts_us + stage->dur_us)
          << "task spans end inside their stage span";
    }
  }
  EXPECT_EQ(tasks, 4u) << "one task span per partition";
}

TEST_F(TraceTest, ChromeJsonIsValidAndCarriesSpans) {
  {
    Span stage("stage", "json:stage \"quoted\\name\"");
    Span task("task", "json:task");
  }
  instant("fault", "json:instant", {{"rdd", 7}});
  count(CounterId::kShuffleBytes, 123);
  const std::string json = Tracer::instance().chrome_json();

  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  // Spot-check the trace-event envelope and that escaping happened.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\\name\\\""), std::string::npos);
  EXPECT_NE(json.find("shuffle.bytes"), std::string::npos);
}

TEST_F(TraceTest, SummaryAggregatesStages) {
  {
    Span stage("stage", "sum:stage");
    Span task("task", "sum:stage");
  }
  const std::string summary = Tracer::instance().summary();
  EXPECT_NE(summary.find("sum:stage"), std::string::npos);
  EXPECT_NE(summary.find("counter"), std::string::npos);
}

TEST_F(TraceTest, DisabledPathEmitsNothing) {
  Tracer::instance().stop();
  ASSERT_FALSE(enabled());
  {
    Span span("test", "should-not-appear");
    span.arg("x", 1);
  }
  instant("test", "should-not-appear-either");
  count(CounterId::kShuffleBytes, 999);

  // Run a real workload too: instrumentation hooks in the engine must all
  // no-op when tracing is off.
  engine::Context ctx(small_cluster());
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto rdd =
      ctx.parallelize(std::move(data), 4).map([](const int& x) { return x; });
  rdd.persist();
  rdd.collect();
  rdd.collect();

  EXPECT_TRUE(Tracer::instance().events().empty());
  EXPECT_EQ(counter_value(CounterId::kShuffleBytes), 0u);
  EXPECT_EQ(counter_value(CounterId::kCacheHits), 0u);
  EXPECT_EQ(counter_value(CounterId::kPoolTasks), 0u);
}

TEST_F(TraceTest, ResetClearsEventsAndCounters) {
  {
    Span span("test", "gone-after-reset");
  }
  count(CounterId::kBroadcastBytes, 42);
  Tracer::instance().reset();
  EXPECT_TRUE(Tracer::instance().events().empty());
  EXPECT_EQ(counter_value(CounterId::kBroadcastBytes), 0u);
}

TEST_F(TraceTest, NamedCounterRegistryRoundTrips) {
  CounterRegistry::instance().get("custom.metric").add(5);
  CounterRegistry::instance().get("custom.metric").add(2);
  const auto snapshot = CounterRegistry::instance().snapshot();
  u64 value = 0;
  for (const auto& [name, v] : snapshot) {
    if (name == "custom.metric") value = v;
  }
  EXPECT_EQ(value, 7u);
}

}  // namespace
}  // namespace yafim::obs
