// Replayable execution records.
//
// Every engine stage / MapReduce phase appends a StageRecord holding its raw
// counters (per-task work units, bytes moved, fixed overheads). Records are
// *cluster-independent*: `stage_seconds()` prices a record under any
// ClusterConfig, so a run recorded once can be replayed at 16, 24, ... 48
// cores -- which is exactly how the Fig. 5 speedup sweep is produced without
// re-mining.
#pragma once

#include <string>
#include <vector>

#include "sim/cost_model.h"
#include "util/common.h"

namespace yafim::sim {

enum class StageKind {
  /// A Spark-style stage: cheap task launch, input already in memory.
  kSparkStage,
  /// A Hadoop map phase: JVM-per-task launch cost; input read from HDFS is
  /// accounted through dfs_read_bytes.
  kMapPhase,
  /// A Hadoop reduce phase: JVM-per-task launch cost; output write through
  /// dfs_write_bytes.
  kReducePhase,
  /// Pure overhead (job startup, driver-side candidate generation).
  kOverhead,
};

/// One task's contribution to a stage.
struct TaskRecord {
  /// Abstract compute units (see sim::CostModel).
  u64 work = 0;
  /// Launches of this task (1 + injected-failure retries). Each launch pays
  /// the stage's task-launch overhead; each retry also pays the cluster's
  /// relaunch backoff.
  u32 attempts = 1;
  /// Work units burned by failed attempts before they died (recharged on
  /// top of `work`).
  u64 wasted_work = 0;
  /// True for a speculative copy raced against a straggler (extra record
  /// appended to the stage; consumes a core like any task).
  bool speculative = false;
};

/// One stage of execution with everything needed to price it later.
struct StageRecord {
  std::string label;
  StageKind kind = StageKind::kSparkStage;
  /// Tag grouping stages into algorithm passes (Apriori iteration number,
  /// 1-based). 0 means outside any pass (e.g. initial load).
  u32 pass = 0;

  std::vector<TaskRecord> tasks;

  /// Bytes shuffled all-to-all between this stage and the next.
  u64 shuffle_bytes = 0;
  /// Bytes broadcast from the driver before the stage runs.
  u64 broadcast_bytes = 0;
  /// Bytes shipped naively (per task, through the driver) -- ablation mode.
  u64 naive_ship_bytes = 0;
  /// Bytes read from / written to the simulated HDFS.
  u64 dfs_read_bytes = 0;
  u64 dfs_write_bytes = 0;
  /// Driver-side serial compute (candidate generation, hash-tree build).
  u64 driver_work = 0;
  /// Fixed overhead in seconds (MR job startup).
  double fixed_overhead_s = 0.0;
};

/// Simulated duration of one stage under a cluster/cost model.
double stage_seconds(const StageRecord& stage, const CostModel& model);

/// Split `total_work` units over `ntasks` tasks as evenly as integers
/// allow. The per-task work sums to exactly `total_work` (the first
/// `total_work % ntasks` tasks carry one extra unit) -- use this instead
/// of `total / ntasks` per task, which silently drops up to ntasks - 1
/// units from the priced total.
std::vector<TaskRecord> split_work(u64 total_work, u32 ntasks);

class SimReport;

/// Human-readable per-stage breakdown of a run (label, kind, pass, tasks,
/// work, traffic, priced seconds) -- the engine's "Spark UI".
std::string format_report(const SimReport& report, const CostModel& model);

/// A full run: ordered stages plus convenience aggregations.
class SimReport {
 public:
  void add(StageRecord stage) { stages_.push_back(std::move(stage)); }
  void clear() { stages_.clear(); }

  const std::vector<StageRecord>& stages() const { return stages_; }
  bool empty() const { return stages_.empty(); }

  /// Total simulated seconds under `model`.
  double total_seconds(const CostModel& model) const;

  /// Simulated seconds per pass tag. Index 0 collects untagged stages
  /// (initial load etc.); index k collects pass k. The vector is sized to
  /// the largest tag present + 1.
  std::vector<double> pass_seconds(const CostModel& model) const;

  /// Aggregate counters across all stages (for reporting).
  u64 total_work() const;
  u64 total_shuffle_bytes() const;
  u64 total_dfs_read_bytes() const;
  u64 total_dfs_write_bytes() const;
  u64 total_broadcast_bytes() const;

 private:
  std::vector<StageRecord> stages_;
};

}  // namespace yafim::sim
