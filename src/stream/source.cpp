#include "stream/source.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace yafim::stream {

TransactionSource::TransactionSource(fim::TransactionDB db,
                                     SourceOptions options)
    : db_(std::move(db)), options_(options) {
  YAFIM_CHECK(db_.size() > 0, "streaming source needs a non-empty dataset");
  YAFIM_CHECK(options_.window_s > 0.0 && options_.ingest_rate > 0.0,
              "window and ingest rate must be positive");
}

u64 TransactionSource::window_count(u64 batch, u32 window_factor) const {
  const double nominal =
      options_.window_s * options_.ingest_rate * std::max<u32>(1, window_factor);
  // +-10% jitter, a pure hash of (seed, batch): wider batches keep the same
  // draw, so widening under backpressure stays deterministic.
  const u64 h = mix64(options_.seed ^ mix64(batch ^ 0x1D6E57));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  const double jittered = nominal * (0.9 + 0.2 * u);
  return std::max<u64>(1, static_cast<u64>(jittered));
}

std::vector<fim::Transaction> TransactionSource::take(u64 n) {
  const auto& all = db_.transactions();
  std::vector<fim::Transaction> out;
  out.reserve(n);
  for (u64 i = 0; i < n; ++i) {
    out.push_back(all[(offset_ + i) % all.size()]);
  }
  offset_ += n;
  return out;
}

}  // namespace yafim::stream
