// Unit tests for the simulated HDFS.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "simfs/simfs.h"

namespace yafim::simfs {
namespace {

std::vector<u8> bytes(std::initializer_list<int> xs) {
  std::vector<u8> v;
  for (int x : xs) v.push_back(static_cast<u8>(x));
  return v;
}

TEST(SimFS, WriteReadRoundTrip) {
  SimFS fs(sim::ClusterConfig::paper());
  const auto payload = bytes({1, 2, 3, 4, 5});
  fs.write("a/b", payload);
  EXPECT_TRUE(fs.exists("a/b"));
  double seconds = -1;
  EXPECT_EQ(fs.read("a/b", &seconds), payload);
  EXPECT_GT(seconds, 0.0);
}

TEST(SimFS, OverwriteReplaces) {
  SimFS fs(sim::ClusterConfig::paper());
  fs.write("f", bytes({1}));
  fs.write("f", bytes({2, 3}));
  EXPECT_EQ(fs.read("f"), bytes({2, 3}));
}

TEST(SimFS, MissingFileHandling) {
  SimFS fs(sim::ClusterConfig::paper());
  EXPECT_FALSE(fs.exists("nope"));
  EXPECT_FALSE(fs.stat("nope").has_value());
  EXPECT_FALSE(fs.remove("nope"));
  EXPECT_DEATH(fs.read("nope"), "nope");
}

TEST(SimFS, RemoveWorks) {
  SimFS fs(sim::ClusterConfig::paper());
  fs.write("x", bytes({9}));
  EXPECT_TRUE(fs.remove("x"));
  EXPECT_FALSE(fs.exists("x"));
}

TEST(SimFS, StatReportsSizeAndBlocks) {
  sim::ClusterConfig cluster;
  cluster.hdfs_block_bytes = 4;
  SimFS fs(cluster);
  fs.write("small", bytes({1, 2, 3}));
  fs.write("exact", bytes({1, 2, 3, 4}));
  fs.write("big", bytes({1, 2, 3, 4, 5}));
  EXPECT_EQ(fs.stat("small")->blocks, 1u);
  EXPECT_EQ(fs.stat("exact")->blocks, 1u);
  EXPECT_EQ(fs.stat("big")->blocks, 2u);
  EXPECT_EQ(fs.stat("big")->bytes, 5u);
}

TEST(SimFS, ListByPrefix) {
  SimFS fs(sim::ClusterConfig::paper());
  fs.write("dir/a", {});
  fs.write("dir/b", {});
  fs.write("dirx", {});
  fs.write("other", {});
  const auto listed = fs.list("dir/");
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], "dir/a");
  EXPECT_EQ(listed[1], "dir/b");
  EXPECT_EQ(fs.list("").size(), 4u);
  EXPECT_TRUE(fs.list("zzz").empty());
}

TEST(SimFS, TrafficCounters) {
  SimFS fs(sim::ClusterConfig::paper());
  fs.write("a", std::vector<u8>(100));
  fs.write("b", std::vector<u8>(50));
  (void)fs.read("a");
  (void)fs.read("a");
  EXPECT_EQ(fs.total_bytes_written(), 150u);
  EXPECT_EQ(fs.total_bytes_read(), 200u);
}

TEST(SimFS, WriteCostExceedsReadCost) {
  SimFS fs(sim::ClusterConfig::paper());
  const double write_s = fs.write("w", std::vector<u8>(10u << 20));
  double read_s = 0;
  (void)fs.read("w", &read_s);
  EXPECT_GT(write_s, read_s);  // 3x replication + network pipeline
}

TEST(SimFS, EmptyFile) {
  SimFS fs(sim::ClusterConfig::paper());
  fs.write("empty", {});
  EXPECT_TRUE(fs.read("empty").empty());
  EXPECT_EQ(fs.stat("empty")->bytes, 0u);
  EXPECT_EQ(fs.stat("empty")->blocks, 1u);
}

TEST(SimFS, ConcurrentAccessIsSafe) {
  SimFS fs(sim::ClusterConfig::paper());
  fs.write("shared", std::vector<u8>(1000, 7));
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&fs, &failures, t] {
      for (int i = 0; i < 50; ++i) {
        if (fs.read("shared").size() != 1000) failures.fetch_add(1);
        fs.write("private/" + std::to_string(t), std::vector<u8>(10));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(fs.list("private/").size(), 8u);
}

}  // namespace
}  // namespace yafim::simfs
