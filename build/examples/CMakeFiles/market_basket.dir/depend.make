# Empty dependencies file for market_basket.
# This may be replaced when dependencies are built.
