// Committed negative-control fixtures for the determinism sanitizer.
//
// Two deliberately non-deterministic plans -- a non-commutative reduce and
// a map closure capturing mutable non-local state by reference -- that
// DetSan (engine/detsan.h) must flag as YL007. mine_cli exposes them via
// --detsan-selftest (the CI detsan lane's negative control: the process
// must exit nonzero under --detsan=error), and tests/test_detsan.cpp runs
// them directly. The impure closures below carry
// `// detsan: intentional-divergence` waivers so the static layer
// (scripts/closure_check.sh) keeps the production scan clean while still
// recognizing these as deliberate.
#pragma once

#include "util/common.h"

namespace yafim::engine {

class Context;

namespace detsan_selftest {

struct SelftestResult {
  u64 tasks_replayed = 0;
  u64 divergences = 0;
};

/// Run both impure plans on `ctx` (which should have detsan enabled at
/// sample_rate 1.0 so every task replays). With fail_fast set the first
/// divergence throws DetSanError out of here; otherwise both plans run and
/// the context's counters are returned.
SelftestResult run(Context& ctx);

}  // namespace detsan_selftest
}  // namespace yafim::engine
