#include "util/bytes.h"

#include <cstdio>

namespace yafim {

std::string format_bytes(u64 bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace yafim
