file(REMOVE_RECURSE
  "CMakeFiles/yafim_mapreduce.dir/mapreduce/runner.cpp.o"
  "CMakeFiles/yafim_mapreduce.dir/mapreduce/runner.cpp.o.d"
  "libyafim_mapreduce.a"
  "libyafim_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yafim_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
