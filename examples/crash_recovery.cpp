// Data integrity and crash recovery, end to end.
//
// Three failure stories on the same dataset:
//
//   1. Corrupt HDFS blocks -- a deterministic CorruptionProfile flips bits
//      in block-replica reads; every flip is caught by the per-block
//      checksum and healed from another replica. The caller never sees a
//      damaged byte, only slightly higher simulated read time.
//   2. Corrupt cached partitions -- a cached RDD partition whose backing
//      bytes rot is discarded on access and rebuilt from lineage, exactly
//      like an evicted or lost partition.
//   3. Driver crash mid-mining -- YAFIM snapshots (Lk, pass stats) after
//      every pass; a rerun pointed at the same checkpoint directory resumes
//      after the last completed pass and produces bit-identical itemsets.
//
//   $ ./examples/crash_recovery
#include <cstdio>
#include <filesystem>

#include "datagen/benchmarks.h"
#include "fim/checkpoint.h"
#include "fim/yafim.h"
#include "util/log.h"

using namespace yafim;

int main() {
  set_log_level(LogLevel::kWarn);

  auto bench = datagen::make_mushroom(/*scale=*/0.25);
  fim::YafimOptions yopt;
  yopt.min_support = bench.paper_min_support;
  std::printf("dataset: %llu transactions, minsup %.2f\n",
              (unsigned long long)bench.db.size(), yopt.min_support);

  // Reference run: no faults, no checkpoints.
  engine::Context::Options clean_opts;
  clean_opts.fault = engine::FaultProfile{};
  fim::MiningRun reference;
  {
    engine::Context ctx(clean_opts);
    simfs::SimFS fs(ctx.cluster(), sim::CorruptionProfile{});
    reference = fim::yafim_mine(ctx, fs, bench.db, yopt);
    std::printf("reference run: %llu frequent itemsets over %zu passes\n",
                (unsigned long long)reference.itemsets.total(),
                reference.passes.size());
  }

  // ---- 1. corrupt blocks -> checksum detect -> replica repair ----------
  std::printf("\n=== 1. corrupt HDFS blocks -> replica repair ===\n");
  {
    auto opts = clean_opts;
    opts.cluster.hdfs_block_bytes = 1 << 10;  // small blocks: many draws
    opts.fault.corrupt.seed = 21;
    opts.fault.corrupt.block_p = 0.05;  // 5% of block reads flip a bit
    engine::Context ctx(opts);
    simfs::SimFS fs(ctx.cluster(), opts.fault.corrupt);
    const auto run = fim::yafim_mine(ctx, fs, bench.db, yopt);
    const auto integ = fs.integrity();
    std::printf("blocks verified: %llu; corrupt: %llu; repaired from "
                "replica: %llu; unrecoverable: %llu\n",
                (unsigned long long)integ.blocks_verified,
                (unsigned long long)integ.corrupt_detected,
                (unsigned long long)integ.repaired_by_replica,
                (unsigned long long)integ.unrecoverable);
    std::printf("itemsets identical to reference: %s\n",
                run.itemsets.same_itemsets(reference.itemsets) ? "yes" : "NO");
  }

  // ---- 2. corrupt cached partitions -> lineage recompute ----------------
  std::printf("\n=== 2. corrupt cached partitions -> lineage repair ===\n");
  {
    auto opts = clean_opts;
    opts.fault.corrupt.seed = 22;
    opts.fault.corrupt.cached_p = 0.05;  // 5% of cache hits are rotten
    engine::Context ctx(opts);
    simfs::SimFS fs(ctx.cluster(), sim::CorruptionProfile{});
    const auto run = fim::yafim_mine(ctx, fs, bench.db, yopt);
    std::printf("cached partitions found corrupt: %llu (each recomputed "
                "from lineage: %llu recomputations)\n",
                (unsigned long long)ctx.fault_injector().cache_corruptions(),
                (unsigned long long)ctx.fault_injector().recomputations());
    std::printf("itemsets identical to reference: %s\n",
                run.itemsets.same_itemsets(reference.itemsets) ? "yes" : "NO");
  }

  // ---- 3. driver crash after pass 2 -> checkpoint resume ----------------
  std::printf("\n=== 3. crash after pass 2 -> checkpoint resume ===\n");
  {
    const std::string dir =
        (std::filesystem::temp_directory_path() / "yafim_crash_recovery")
            .string();
    std::filesystem::remove_all(dir);
    fim::DirCheckpointStore store(dir);

    auto opt = yopt;
    opt.checkpoint = &store;
    opt.stop_after_pass = 2;  // simulated crash
    {
      engine::Context ctx(clean_opts);
      simfs::SimFS fs(ctx.cluster(), sim::CorruptionProfile{});
      const auto partial = fim::yafim_mine(ctx, fs, bench.db, opt);
      std::printf("crashed after pass %u with %llu itemsets mined; "
                  "snapshots on disk: %zu\n",
                  partial.passes.back().k,
                  (unsigned long long)partial.itemsets.total(),
                  store.list().size());
    }

    opt.stop_after_pass = 0;
    engine::Context ctx(clean_opts);
    simfs::SimFS fs(ctx.cluster(), sim::CorruptionProfile{});
    const auto resumed = fim::yafim_mine(ctx, fs, bench.db, opt);
    std::printf("resumed run: passes 1..%u restored from snapshots, "
                "%zu passes mined fresh\n",
                resumed.resumed_pass,
                resumed.passes.size() - resumed.resumed_pass);
    std::printf("itemsets bit-identical to uninterrupted reference: %s\n",
                resumed.itemsets.sorted() == reference.itemsets.sorted()
                    ? "yes"
                    : "NO");
    std::filesystem::remove_all(dir);
  }
  return 0;
}
