// The paper's §V-D healthcare application: mine co-occurrence structure
// from medical case data ("explore the relationships in medicine").
//
// Uses the synthetic medical-case generator (the paper's hospital dataset
// is proprietary), mines with YAFIM at Sup = 3%, and checks how many of the
// embedded comorbidity clusters the mined rules recover -- ground truth the
// real study could only validate clinically.
//
//   $ ./examples/medical_mining [num_cases]
#include <cstdio>
#include <cstdlib>

#include "datagen/medical.h"
#include "fim/condensed.h"
#include "fim/rules.h"
#include "fim/yafim.h"
#include "util/log.h"

using namespace yafim;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  datagen::MedicalParams params;
  params.num_cases = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const datagen::MedicalDataset data = datagen::generate_medical(params);

  std::printf("medical cases: %llu, code universe: %u, %.1f codes/case\n",
              (unsigned long long)data.db.size(), params.num_codes,
              data.db.stats().avg_length);
  std::printf("embedded comorbidity clusters (ground truth):\n");
  for (size_t c = 0; c < data.clusters.size(); ++c) {
    std::printf("  cluster %zu: %s  prevalence %.0f%%\n", c,
                fim::to_string(data.clusters[c]).c_str(),
                data.prevalence[c] * 100.0);
  }

  engine::Context ctx;
  simfs::SimFS fs(ctx.cluster());
  fim::YafimOptions options;
  options.min_support = 0.03;  // the paper's Fig. 6 threshold
  const auto run = fim::yafim_mine(ctx, fs, data.db, options);

  std::printf("\nYAFIM at Sup = 3%%: %llu frequent itemsets, deepest size "
              "%u, %.1f simulated s\n",
              (unsigned long long)run.itemsets.total(), run.itemsets.max_k(),
              run.total_seconds());
  std::printf("per-pass time (the paper's Fig. 6 shape -- later passes "
              "cheapen as |Lk| shrinks):\n");
  for (const auto& pass : run.passes) {
    std::printf("  pass %2u: %6llu candidates %6llu frequent  %.2f s\n",
                pass.k, (unsigned long long)pass.candidates,
                (unsigned long long)pass.frequent, pass.sim_seconds);
  }

  // Which ground-truth clusters were recovered as frequent itemsets?
  u32 recovered = 0;
  for (const auto& cluster : data.clusters) {
    if (run.itemsets.contains(cluster)) ++recovered;
  }
  std::printf("\nrecovered %u/%zu full clusters as frequent itemsets\n",
              recovered, data.clusters.size());

  // A clinician reads condensed output, not the raw lattice.
  const auto closed = fim::closed_itemsets(run.itemsets);
  const auto maximal = fim::maximal_itemsets(run.itemsets);
  std::printf("condensed views: %llu closed, %llu maximal (of %llu)\n",
              (unsigned long long)closed.total(),
              (unsigned long long)maximal.total(),
              (unsigned long long)run.itemsets.total());

  fim::RuleOptions rule_options;
  rule_options.min_confidence = 0.8;
  // Rule derivation itself distributed over the cluster.
  const auto rules =
      fim::generate_rules_parallel(ctx, run.itemsets, rule_options);
  std::printf("association rules at 80%% confidence: %zu; strongest five:\n",
              rules.size());
  for (size_t i = 0; i < rules.size() && i < 5; ++i) {
    const fim::Rule& r = rules[i];
    std::printf("  codes %s => %s  conf %.0f%%  lift %.1f\n",
                fim::to_string(r.antecedent).c_str(),
                fim::to_string(r.consequent).c_str(), r.confidence * 100.0,
                r.lift);
  }
  return 0;
}
