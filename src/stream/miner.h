// Streaming micro-batch frequent-itemset mining over minispark.
//
// A StreamingMiner consumes a deterministic windowed TransactionSource and
// maintains L1/Lk incrementally: each micro-batch is counted once (all
// three CountModes, through the shared fim/count_core.h job), the per-batch
// counts are merged into running supports, and candidates are re-generated
// and re-verified over the full ingested history only when an item or
// itemset crosses MinSup in either direction. Every batch boundary writes a
// versioned snapshot through the YFCK checkpoint codec; a killed run
// resumes from the newest snapshot, replays the source to the recorded
// offset, and continues bit-identically with the uninterrupted run.
//
// Batch-boundary state machine (each phase is a deterministic kill point,
// selectable via YAFIM_FAULT_STREAM_{KILL_BATCH,KILL_PHASE,SEED} or the
// StreamOptions overrides):
//
//   kIngest   -> pull the batch window from the source, append to history,
//                write the write-ahead log block (priced DFS write)
//   kCount    -> one cluster job: batch L1 counts + batch supports of every
//                tracked k>=2 itemset (count_core, min_count = 1)
//   kMerge    -> driver: fold batch counts into running supports, recompute
//                MinSup count, update the hysteresis frontier
//   kReverify -> level-wise apriori_gen over the frontier; candidates never
//                seen before are counted over the full history; itemsets
//                that left the candidate universe are dropped
//   kSnapshot -> price the batch, feed the backpressure controller, write
//                the batch-boundary snapshot
//   kBoundary -> commit: bump counters, advance to the next batch
//
// Exactly-once: snapshots exist only at batch boundaries, so a mid-batch
// kill replays the whole batch from the previous boundary. All per-batch
// work is a pure function of (snapshot state, source, batch index) -- the
// replay recreates byte-identical state, and Context::set_stage_epoch pins
// the fault-draw stream so even injected task failures land identically.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/context.h"
#include "fim/checkpoint.h"
#include "fim/dataset.h"
#include "fim/result.h"
#include "fim/yafim.h"
#include "simfs/simfs.h"
#include "stream/backpressure.h"
#include "stream/checkpoint.h"
#include "stream/source.h"
#include "util/common.h"

namespace yafim::stream {

/// The six kill points per batch, in execution order.
enum class StreamPhase : u32 {
  kIngest = 0,
  kCount = 1,
  kMerge = 2,
  kReverify = 3,
  kSnapshot = 4,
  kBoundary = 5,
};
inline constexpr u32 kNumStreamPhases = 6;

const char* stream_phase_name(StreamPhase phase);

/// Thrown at a configured kill point. mine_cli maps it to the process
/// dying (exit 9) so CI can exercise real kill -9 semantics in-process.
class StreamKilledError : public std::runtime_error {
 public:
  StreamKilledError(u64 batch, StreamPhase phase);
  u64 batch() const { return batch_; }
  StreamPhase phase() const { return phase_; }

 private:
  u64 batch_;
  StreamPhase phase_;
};

struct StreamOptions {
  /// Relative MinSup over the ingested history.
  double min_support = 0.02;
  /// Micro-batches to mine before finalizing.
  u64 num_batches = 20;

  SourceOptions source;
  BackpressureOptions backpressure;

  // Counting configuration -- same semantics as YafimOptions.
  fim::CountMode count_mode = fim::CountMode::kItemsetKey;
  fim::BroadcastMode broadcast_mode = fim::BroadcastMode::kAuto;
  bool use_hash_tree = true;
  u32 branching = 8;
  u32 leaf_capacity = 32;
  u32 partitions = 0;        ///< 0 = ctx.default_partitions()
  u32 broadcast_shards = 0;  ///< 0 = ctx.default_partitions()

  /// Snapshot store; null disables checkpointing (and resume).
  fim::CheckpointStore* checkpoint = nullptr;

  /// Test-level kill override: when kill_batch != 0, throw
  /// StreamKilledError at (kill_batch, kill_phase). Takes precedence over
  /// the YAFIM_FAULT_STREAM_* axis from the environment.
  u64 kill_batch = 0;
  u32 kill_phase = 0;
};

struct StreamResult {
  /// Exact frequent itemsets over everything ingested -- identical to
  /// running batch Apriori on the concatenated history.
  fim::FrequentItemsets itemsets;
  u64 total_transactions = 0;
  u64 min_support_count = 0;

  /// Last batch restored from a snapshot (0 = cold start).
  u64 resumed_batch = 0;

  // Final backpressure posture + lifetime stats.
  u32 window_factor = 1;
  double reverify_slack = 0.0;
  u64 widenings = 0;
  u64 slack_raises = 0;
  /// Candidates re-verified over the full history (lifetime).
  u64 reverifications = 0;
  /// MinSup crossings still deferred when the last batch closed (all of
  /// them were drained by finalize, so the output above is exact).
  u64 deferred_at_close = 0;

  /// Ingest interval of the final batch (window_s * window_factor) -- the
  /// budget steady-state latency is judged against.
  double ingest_interval_s = 0.0;

  std::vector<StreamBatchStats> batches;

  /// Mean simulated batch latency over the last quartile of batches -- the
  /// steady-state figure reported in the "# stream:" line and gated by
  /// scripts/perf_gate.py.
  double steady_batch_seconds() const;
};

/// Run the streaming miner: `source_db` seeds the TransactionSource (the
/// stream replays it with wrap-around), `fs` prices WAL + spill traffic.
/// Throws StreamKilledError at a configured kill point; call again with the
/// same options and checkpoint store to resume.
StreamResult stream_mine(engine::Context& ctx, simfs::SimFS& fs,
                         const fim::TransactionDB& source_db,
                         const StreamOptions& options);

}  // namespace yafim::stream
