// Shared wire format for (itemset, count) lists stored on the simulated
// HDFS by the MapReduce miners (per-iteration L_k outputs).
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "fim/itemset.h"
#include "util/bytes.h"

namespace yafim::fim {

inline std::vector<u8> encode_counts(
    const std::vector<std::pair<Itemset, u64>>& counts) {
  ByteWriter w;
  w.write_u64(counts.size());
  for (const auto& [itemset, count] : counts) {
    w.write_u32_vec(itemset);
    w.write_u64(count);
  }
  return w.take();
}

inline std::vector<std::pair<Itemset, u64>> decode_counts(
    std::span<const u8> bytes) {
  ByteReader r(bytes);
  const u64 n = r.read_u64();
  std::vector<std::pair<Itemset, u64>> out;
  out.reserve(n);
  for (u64 i = 0; i < n; ++i) {
    Itemset itemset = r.read_u32_vec();
    const u64 count = r.read_u64();
    out.emplace_back(std::move(itemset), count);
  }
  YAFIM_CHECK(r.done(), "trailing bytes after count list");
  return out;
}

}  // namespace yafim::fim
