// Association-rule generation from mined frequent itemsets -- the
// downstream step the paper's medical application motivates ("explore the
// relationships in medicine"): rules A => B with confidence
// sup(A ∪ B) / sup(A) and lift conf / (sup(B) / |D|).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "engine/bytes_of.h"
#include "engine/context.h"
#include "fim/result.h"

namespace yafim::fim {

/// Why rule generation rejected an itemset collection. Exact miners always
/// produce downward-closed collections with monotone supports, but rule
/// generation is also run over approximate results (fim/sampling.h) and
/// hand-assembled tables, where a subset can be missing or carry a smaller
/// support than its superset -- both of which would otherwise surface as a
/// divide-by-zero confidence/lift or a process abort.
enum class RuleErrorKind {
  /// An antecedent of a frequent itemset is not in the collection
  /// (support_of == 0): confidence would divide by zero.
  kMissingAntecedent,
  /// A consequent is not in the collection: lift would divide by zero.
  kMissingConsequent,
  /// sup(antecedent) < sup(itemset): confidence would exceed 1 -- the
  /// collection's supports are not monotone.
  kSupportInversion,
};

/// Structured error for rule generation over a non-downward-closed or
/// non-monotone itemset collection, following the EngineError/SimFSError
/// convention: typed + catchable, never an abort on bad input.
class RuleError : public std::runtime_error {
 public:
  RuleError(RuleErrorKind kind, Itemset itemset, const std::string& what)
      : std::runtime_error(what), kind_(kind), itemset_(std::move(itemset)) {}

  RuleErrorKind kind() const { return kind_; }
  /// The offending subset (the missing one, or the one whose support is
  /// below its superset's).
  const Itemset& itemset() const { return itemset_; }

 private:
  RuleErrorKind kind_;
  Itemset itemset_;
};

struct Rule {
  Itemset antecedent;
  Itemset consequent;
  /// Absolute support of antecedent ∪ consequent.
  u64 support = 0;
  double confidence = 0.0;
  double lift = 0.0;
};

/// Serialized-size estimate (found by ADL from engine::byte_size users, e.g.
/// when a persisted RDD<Rule> partition is priced for the cache budget).
inline u64 byte_size(const Rule& r) {
  return engine::byte_size(r.antecedent) + engine::byte_size(r.consequent) +
         sizeof(r.support) + sizeof(r.confidence) + sizeof(r.lift);
}

struct RuleOptions {
  double min_confidence = 0.5;
  /// Itemsets larger than this are skipped (2^k antecedent enumeration).
  u32 max_itemset_size = 16;
};

/// All rules meeting `options.min_confidence`, derived from every frequent
/// itemset of size >= 2. Deterministically ordered by (confidence desc,
/// support desc, antecedent, consequent).
std::vector<Rule> generate_rules(const FrequentItemsets& itemsets,
                                 const RuleOptions& options);

/// The same computation distributed over the minispark engine: itemsets
/// are partitioned across tasks and the support table is shared through a
/// broadcast variable (how a Spark deployment of the paper's medical
/// application would derive its rules). Bit-identical to generate_rules().
std::vector<Rule> generate_rules_parallel(engine::Context& ctx,
                                          const FrequentItemsets& itemsets,
                                          const RuleOptions& options);

}  // namespace yafim::fim
