file(REMOVE_RECURSE
  "CMakeFiles/yafim_simfs.dir/simfs/simfs.cpp.o"
  "CMakeFiles/yafim_simfs.dir/simfs/simfs.cpp.o.d"
  "libyafim_simfs.a"
  "libyafim_simfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yafim_simfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
