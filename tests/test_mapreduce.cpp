// Unit tests for the MapReduce-on-SimFS substrate: a word-count style job,
// combiner equivalence, cost recording, and the distributed cache.
#include <gtest/gtest.h>

#include <sstream>

#include "mapreduce/job.h"
#include "util/bytes.h"

namespace yafim::mr {
namespace {

engine::Context::Options small_cluster() {
  engine::Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(2);
  opts.host_threads = 4;
  return opts;
}

/// Lines-of-text <-> bytes helpers for a word-count job.
std::vector<u8> encode_lines(const std::vector<std::string>& lines) {
  ByteWriter w;
  w.write_u64(lines.size());
  for (const auto& line : lines) w.write_string(line);
  return w.take();
}

std::vector<std::string> decode_lines(const std::vector<u8>& bytes) {
  ByteReader r(bytes);
  const u64 n = r.read_u64();
  std::vector<std::string> lines;
  for (u64 i = 0; i < n; ++i) lines.push_back(r.read_string());
  return lines;
}

using WordCountSpec =
    JobSpec<std::string, std::string, u64, std::pair<std::string, u64>>;

WordCountSpec word_count_spec(bool with_combiner) {
  WordCountSpec spec;
  spec.name = "wordcount";
  spec.decode_input = decode_lines;
  spec.map_fn = [](const std::string& line,
                   Emitter<std::string, u64>& emit) {
    std::istringstream words(line);
    std::string word;
    while (words >> word) emit.emit(word, 1);
  };
  if (with_combiner) {
    spec.combine_fn = [](const u64& a, const u64& b) { return a + b; };
  }
  spec.reduce_fn = [](const std::string& word, std::vector<u64>& values)
      -> std::optional<std::pair<std::string, u64>> {
    u64 sum = 0;
    for (u64 v : values) sum += v;
    return std::make_pair(word, sum);
  };
  spec.encode_output = [](const std::vector<std::pair<std::string, u64>>& out) {
    ByteWriter w;
    w.write_u64(out.size());
    for (const auto& [word, count] : out) {
      w.write_string(word);
      w.write_u64(count);
    }
    return w.take();
  };
  return spec;
}

std::vector<std::string> sample_lines() {
  return {"the quick brown fox", "the lazy dog", "the fox", "dog", ""};
}

TEST(MapReduce, WordCountCorrect) {
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  fs.write("in", encode_lines(sample_lines()));

  JobRunner runner(ctx, fs);
  auto result = runner.run(word_count_spec(true), "in", "out");

  std::unordered_map<std::string, u64> counts;
  for (auto& [w, c] : result.output) counts[w] = c;
  EXPECT_EQ(counts.at("the"), 3u);
  EXPECT_EQ(counts.at("fox"), 2u);
  EXPECT_EQ(counts.at("dog"), 2u);
  EXPECT_EQ(counts.at("quick"), 1u);
  EXPECT_EQ(counts.size(), 6u);
  EXPECT_TRUE(fs.exists("out"));
}

TEST(MapReduce, CombinerDoesNotChangeResults) {
  engine::Context ctx1(small_cluster()), ctx2(small_cluster());
  simfs::SimFS fs1(ctx1.cluster()), fs2(ctx2.cluster());
  fs1.write("in", encode_lines(sample_lines()));
  fs2.write("in", encode_lines(sample_lines()));

  // One mapper so repeated words land in the same map task and the
  // combiner has something to collapse.
  auto spec_with = word_count_spec(true);
  auto spec_without = word_count_spec(false);
  spec_with.num_mappers = spec_without.num_mappers = 1;
  auto with = JobRunner(ctx1, fs1).run(spec_with, "in", "out");
  auto without = JobRunner(ctx2, fs2).run(spec_without, "in", "out");

  std::unordered_map<std::string, u64> a, b;
  for (auto& [w, c] : with.output) a[w] = c;
  for (auto& [w, c] : without.output) b[w] = c;
  EXPECT_EQ(a, b);
  // But the combiner must reduce shuffle traffic ("the" x3 collapses).
  EXPECT_LT(with.shuffle_bytes, without.shuffle_bytes);
}

TEST(MapReduce, RecordsStartupMapReduceStages) {
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  fs.write("in", encode_lines(sample_lines()));
  ctx.set_pass(4);
  JobRunner(ctx, fs).run(word_count_spec(true), "in", "out");

  const auto& stages = ctx.report().stages();
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0].kind, sim::StageKind::kOverhead);
  EXPECT_DOUBLE_EQ(stages[0].fixed_overhead_s,
                   ctx.cluster().mr_job_startup_s);
  EXPECT_EQ(stages[1].kind, sim::StageKind::kMapPhase);
  EXPECT_GT(stages[1].dfs_read_bytes, 0u);
  EXPECT_EQ(stages[2].kind, sim::StageKind::kReducePhase);
  EXPECT_GT(stages[2].dfs_write_bytes, 0u);
  for (const auto& s : stages) EXPECT_EQ(s.pass, 4u);
}

TEST(MapReduce, JobCostDominatedByStartup) {
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  fs.write("in", encode_lines(sample_lines()));
  JobRunner(ctx, fs).run(word_count_spec(true), "in", "out");
  const double total = ctx.sim_seconds();
  EXPECT_GT(total, ctx.cluster().mr_job_startup_s);
}

TEST(MapReduce, DistributedCacheChargedPerNode) {
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  fs.write("in", encode_lines(sample_lines()));
  auto spec = word_count_spec(true);
  spec.distributed_cache_bytes = 1000;
  JobRunner(ctx, fs).run(spec, "in", "out");
  const auto& map_stage = ctx.report().stages()[1];
  EXPECT_EQ(map_stage.broadcast_bytes, 1000u * ctx.cluster().nodes);
}

TEST(MapReduce, ExplicitTaskCounts) {
  // Exact stage shapes: pin injection off (retries/speculative copies add
  // task records), so this holds under the CI fault matrix too.
  auto opts = small_cluster();
  opts.fault = engine::FaultProfile{};
  engine::Context ctx(opts);
  simfs::SimFS fs(ctx.cluster());
  fs.write("in", encode_lines(sample_lines()));
  auto spec = word_count_spec(true);
  spec.num_mappers = 3;
  spec.num_reducers = 5;
  auto result = JobRunner(ctx, fs).run(spec, "in", "out");
  EXPECT_EQ(result.map_tasks, 3u);
  EXPECT_EQ(result.reduce_tasks, 5u);
  EXPECT_EQ(ctx.report().stages()[1].tasks.size(), 3u);
  EXPECT_EQ(ctx.report().stages()[2].tasks.size(), 5u);
}

TEST(MapReduce, MoreMappersThanRecords) {
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  fs.write("in", encode_lines({"one line"}));
  auto spec = word_count_spec(true);
  spec.num_mappers = 16;
  auto result = JobRunner(ctx, fs).run(spec, "in", "out");
  std::unordered_map<std::string, u64> counts;
  for (auto& [w, c] : result.output) counts[w] = c;
  EXPECT_EQ(counts.at("one"), 1u);
  EXPECT_EQ(counts.at("line"), 1u);
}

TEST(MapReduce, MapPartitionFnEquivalentToPerRecordMap) {
  engine::Context ctx1(small_cluster()), ctx2(small_cluster());
  simfs::SimFS fs1(ctx1.cluster()), fs2(ctx2.cluster());
  fs1.write("in", encode_lines(sample_lines()));
  fs2.write("in", encode_lines(sample_lines()));

  auto per_record = word_count_spec(true);
  auto per_split = word_count_spec(true);
  per_split.map_fn = nullptr;
  per_split.map_partition_fn = [](std::span<const std::string> split,
                                  Emitter<std::string, u64>& emit) {
    for (const std::string& line : split) {
      std::istringstream words(line);
      std::string word;
      while (words >> word) emit.emit(word, 1);
    }
  };

  auto a = JobRunner(ctx1, fs1).run(per_record, "in", "out");
  auto b = JobRunner(ctx2, fs2).run(per_split, "in", "out");
  std::unordered_map<std::string, u64> ma, mb;
  for (auto& [w, c] : a.output) ma[w] = c;
  for (auto& [w, c] : b.output) mb[w] = c;
  EXPECT_EQ(ma, mb);
}

TEST(MapReduce, BothMapFnsSetAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  fs.write("in", encode_lines(sample_lines()));
  auto spec = word_count_spec(true);
  spec.map_partition_fn = [](std::span<const std::string>,
                             Emitter<std::string, u64>&) {};
  EXPECT_DEATH(JobRunner(ctx, fs).run(spec, "in", "out"), "not both");
}

TEST(MapReduce, ReduceCanDropKeys) {
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  fs.write("in", encode_lines(sample_lines()));
  auto spec = word_count_spec(true);
  spec.reduce_fn = [](const std::string& word, std::vector<u64>& values)
      -> std::optional<std::pair<std::string, u64>> {
    u64 sum = 0;
    for (u64 v : values) sum += v;
    if (sum < 2) return std::nullopt;  // a MinSup-style threshold
    return std::make_pair(word, sum);
  };
  auto result = JobRunner(ctx, fs).run(spec, "in", "out");
  EXPECT_EQ(result.output.size(), 3u);  // the, fox, dog
}

TEST(MapReduce, OutputRoundTripsThroughDfs) {
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  fs.write("in", encode_lines(sample_lines()));
  auto result = JobRunner(ctx, fs).run(word_count_spec(true), "in", "out");
  const auto raw = fs.read("out");
  EXPECT_EQ(raw.size(), result.output_bytes);
  ByteReader r(raw);
  EXPECT_EQ(r.read_u64(), result.output.size());
}

}  // namespace
}  // namespace yafim::mr
