// Unit + property tests for the minispark RDD engine: transformations,
// actions, partitioning, caching, shuffles, broadcast accounting and stage
// recording.
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "engine/broadcast.h"
#include "engine/rdd.h"
#include "util/rng.h"

namespace yafim::engine {
namespace {

std::vector<int> iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

Context::Options small_cluster() {
  Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(2);
  opts.host_threads = 4;
  return opts;
}

TEST(Rdd, ParallelizeAndCollectPreservesOrder) {
  Context ctx(small_cluster());
  auto rdd = ctx.parallelize(iota(1000), 7);
  EXPECT_EQ(rdd.num_partitions(), 7u);
  EXPECT_EQ(rdd.collect(), iota(1000));
}

TEST(Rdd, ParallelizeEmpty) {
  Context ctx(small_cluster());
  auto rdd = ctx.parallelize(std::vector<int>{});
  EXPECT_EQ(rdd.num_partitions(), 1u);
  EXPECT_TRUE(rdd.collect().empty());
  EXPECT_EQ(rdd.count(), 0u);
}

TEST(Rdd, ParallelizeFewerElementsThanPartitions) {
  Context ctx(small_cluster());
  auto rdd = ctx.parallelize(std::vector<int>{1, 2, 3}, 16);
  EXPECT_LE(rdd.num_partitions(), 3u);
  EXPECT_EQ(rdd.count(), 3u);
}

TEST(Rdd, MapFilterFlatMapChain) {
  Context ctx(small_cluster());
  auto result = ctx.parallelize(iota(100), 5)
                    .map([](const int& x) { return x * 2; })
                    .filter([](const int& x) { return x % 4 == 0; })
                    .flat_map([](const int& x) {
                      return std::vector<int>{x, x + 1};
                    })
                    .collect();
  // 50 even-doubled values, each expanded to two.
  EXPECT_EQ(result.size(), 100u);
  EXPECT_EQ(result[0], 0);
  EXPECT_EQ(result[1], 1);
  EXPECT_EQ(result[2], 4);
}

TEST(Rdd, MapCanChangeType) {
  Context ctx(small_cluster());
  auto strs = ctx.parallelize(iota(5), 2)
                  .map([](const int& x) { return std::to_string(x); })
                  .collect();
  EXPECT_EQ(strs, (std::vector<std::string>{"0", "1", "2", "3", "4"}));
}

TEST(Rdd, MapPartitions) {
  Context ctx(small_cluster());
  auto sums = ctx.parallelize(iota(100), 4)
                  .map_partitions([](const std::vector<int>& part) {
                    return std::vector<u64>{
                        std::accumulate(part.begin(), part.end(), u64{0})};
                  })
                  .collect();
  EXPECT_EQ(sums.size(), 4u);
  EXPECT_EQ(std::accumulate(sums.begin(), sums.end(), u64{0}), 4950u);
}

TEST(Rdd, CountAndReduce) {
  Context ctx(small_cluster());
  auto rdd = ctx.parallelize(iota(1234), 9);
  EXPECT_EQ(rdd.count(), 1234u);
  EXPECT_EQ(rdd.reduce([](int a, int b) { return a + b; }),
            1234 * 1233 / 2);
}

TEST(Rdd, ReduceSinglePartitionWithEmptyPartitions) {
  Context ctx(small_cluster());
  // 3 elements over up-to-16 partitions: several partitions are empty.
  auto rdd = ctx.parallelize(std::vector<int>{5, 6, 7}, 3);
  EXPECT_EQ(rdd.reduce([](int a, int b) { return a + b; }), 18);
}

TEST(Rdd, ReduceOnEmptyRddThrows) {
  Context ctx(small_cluster());
  auto rdd = ctx.parallelize(std::vector<int>{});
  try {
    rdd.reduce([](int a, int b) { return a + b; });
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    EXPECT_EQ(e.kind(), EngineErrorKind::kEmptyReduce);
    EXPECT_NE(std::string(e.what()).find("empty RDD"), std::string::npos);
  }
}

TEST(Rdd, UnionConcatenates) {
  Context ctx(small_cluster());
  auto a = ctx.parallelize(iota(10), 2);
  auto b = ctx.parallelize(iota(5), 3);
  auto u = a.union_with(b);
  EXPECT_EQ(u.num_partitions(), 5u);
  EXPECT_EQ(u.count(), 15u);
  auto collected = u.collect();
  EXPECT_EQ(collected[0], 0);
  EXPECT_EQ(collected[10], 0);
}

TEST(Rdd, SampleDeterministicAndProportional) {
  Context ctx(small_cluster());
  auto rdd = ctx.parallelize(iota(10000), 8);
  auto s1 = rdd.sample(0.3, /*seed=*/5).collect();
  auto s2 = rdd.sample(0.3, /*seed=*/5).collect();
  auto s3 = rdd.sample(0.3, /*seed=*/6).collect();
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, s3);
  EXPECT_NEAR(static_cast<double>(s1.size()), 3000.0, 200.0);
}

TEST(Rdd, ReduceByKeyMatchesSerialAggregation) {
  Context ctx(small_cluster());
  Rng rng(77);
  std::vector<std::pair<int, u64>> pairs;
  std::unordered_map<int, u64> expected;
  for (int i = 0; i < 5000; ++i) {
    const int k = static_cast<int>(rng.below(50));
    const u64 v = rng.below(10);
    pairs.emplace_back(k, v);
    expected[k] += v;
  }
  auto result = ctx.parallelize(std::move(pairs), 13)
                    .reduce_by_key([](u64 a, u64 b) { return a + b; })
                    .collect_as_map();
  EXPECT_EQ(result.size(), expected.size());
  for (const auto& [k, v] : expected) EXPECT_EQ(result.at(k), v);
}

TEST(Rdd, ReduceByKeyCustomPartitionCount) {
  Context ctx(small_cluster());
  std::vector<std::pair<int, int>> pairs{{1, 1}, {2, 1}, {1, 1}};
  auto reduced = ctx.parallelize(std::move(pairs), 2)
                     .reduce_by_key([](int a, int b) { return a + b; },
                                    /*out_partitions=*/5);
  EXPECT_EQ(reduced.num_partitions(), 5u);
  auto m = reduced.collect_as_map();
  EXPECT_EQ(m.at(1), 2);
  EXPECT_EQ(m.at(2), 1);
}

TEST(Rdd, ReduceByKeyRecordsShuffleBytes) {
  Context ctx(small_cluster());
  std::vector<std::pair<int, u64>> pairs;
  for (int i = 0; i < 1000; ++i) pairs.emplace_back(i, 1);
  ctx.parallelize(std::move(pairs), 4)
      .reduce_by_key([](u64 a, u64 b) { return a + b; })
      .collect();
  u64 shuffle = 0;
  for (const auto& s : ctx.report().stages()) shuffle += s.shuffle_bytes;
  // 1000 distinct keys of (int, u64) = 12 bytes each.
  EXPECT_EQ(shuffle, 12000u);
}

TEST(Rdd, MapValuesAndKeys) {
  Context ctx(small_cluster());
  std::vector<std::pair<int, int>> pairs{{1, 10}, {2, 20}};
  auto rdd = ctx.parallelize(std::move(pairs), 1);
  auto doubled = rdd.map_values([](const int& v) { return v * 2; })
                     .collect_as_map();
  EXPECT_EQ(doubled.at(1), 20);
  EXPECT_EQ(doubled.at(2), 40);
  auto keys = rdd.keys().collect();
  EXPECT_EQ(keys, (std::vector<int>{1, 2}));
}

TEST(Rdd, CollectAsMapRejectsDuplicates) {
  Context ctx(small_cluster());
  std::vector<std::pair<int, int>> pairs{{1, 10}, {1, 20}};
  auto rdd = ctx.parallelize(std::move(pairs), 1);
  try {
    rdd.collect_as_map();
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    EXPECT_EQ(e.kind(), EngineErrorKind::kDuplicateKey);
    EXPECT_NE(std::string(e.what()).find("duplicate key"), std::string::npos);
  }
}

TEST(Rdd, PersistCachesAcrossActions) {
  // Exact compute counts: ambient cache corruption would drop cached
  // partitions and recompute them, so opt out of the env fault profile.
  Context::Options opts = small_cluster();
  opts.fault = FaultProfile{};
  Context ctx(opts);
  std::atomic<int> compute_calls{0};
  auto rdd = ctx.parallelize(iota(100), 4).map([&](const int& x) {
    compute_calls.fetch_add(1);
    return x + 1;
  });
  rdd.persist();
  EXPECT_TRUE(rdd.persisted());
  rdd.collect();
  EXPECT_EQ(compute_calls.load(), 100);
  rdd.collect();
  rdd.count();
  EXPECT_EQ(compute_calls.load(), 100) << "cached partitions must be reused";
}

TEST(Rdd, UnpersietedRecomputesEachAction) {
  Context ctx(small_cluster());
  std::atomic<int> compute_calls{0};
  auto rdd = ctx.parallelize(iota(10), 2).map([&](const int& x) {
    compute_calls.fetch_add(1);
    return x;
  });
  rdd.collect();
  rdd.collect();
  EXPECT_EQ(compute_calls.load(), 20);
}

TEST(Rdd, StageRecordsCarryWorkAndPassTag) {
  // Exact task/work counts: ambient failure and straggler injection would
  // add retried attempts and speculative copies, so opt out of it.
  Context::Options opts = small_cluster();
  opts.fault = FaultProfile{};
  Context ctx(opts);
  ctx.set_pass(3);
  ctx.parallelize(iota(100), 4).map([](const int& x) { return x; }).collect();
  ASSERT_FALSE(ctx.report().empty());
  const auto& stage = ctx.report().stages().back();
  EXPECT_EQ(stage.pass, 3u);
  EXPECT_EQ(stage.tasks.size(), 4u);
  EXPECT_EQ(ctx.report().total_work(), 100u);  // 1 unit per mapped element
}

TEST(Rdd, BroadcastValueAccessible) {
  Context ctx(small_cluster());
  auto b = ctx.broadcast(std::vector<int>{1, 2, 3}, 100);
  EXPECT_EQ(b->size(), 3u);
  EXPECT_EQ((*b)[2], 3);
  EXPECT_EQ(b.value()[0], 1);
}

TEST(Rdd, BroadcastBytesAttachToNextStage) {
  Context ctx(small_cluster());
  auto b = ctx.broadcast(42, 12345);
  ctx.parallelize(iota(10), 2)
      .map([b](const int& x) { return x + *b; })
      .collect();
  const auto& stage = ctx.report().stages().back();
  EXPECT_EQ(stage.broadcast_bytes, 12345u);
  EXPECT_EQ(stage.naive_ship_bytes, 0u);
  // Only the first stage after the broadcast pays.
  ctx.parallelize(iota(10), 2).collect();
  EXPECT_EQ(ctx.report().stages().back().broadcast_bytes, 0u);
}

TEST(Rdd, NaiveShipModeChargesPerTask) {
  Context::Options opts = small_cluster();
  opts.share_mode = ShareMode::kNaiveShip;
  Context ctx(opts);
  auto b = ctx.broadcast(1, 1000);
  ctx.parallelize(iota(10), 2).map([b](const int& x) { return x; }).collect();
  const auto& stage = ctx.report().stages().back();
  EXPECT_EQ(stage.naive_ship_bytes, 1000u);
  EXPECT_EQ(stage.broadcast_bytes, 0u);
}

TEST(Rdd, ByteSizeCustomization) {
  EXPECT_EQ(byte_size(int{1}), 4u);
  EXPECT_EQ(byte_size(std::string("abc")), 11u);
  EXPECT_EQ(byte_size(std::vector<u32>{1, 2}), 16u);
  EXPECT_EQ(byte_size(std::make_pair(1, std::string("x"))), 13u);
  const std::vector<std::string> nested{"a", "bb"};
  EXPECT_EQ(byte_size(nested), 8u + 9u + 10u);
}

TEST(Rdd, PersistedUnionCachesAndRecovers) {
  Context ctx(small_cluster());
  auto left = ctx.parallelize(iota(50), 4).map([](const int& x) { return x; });
  auto right =
      ctx.parallelize(iota(30), 2).map([](const int& x) { return x + 100; });
  auto u = left.union_with(right);
  u.persist();
  const auto before = u.collect();
  EXPECT_EQ(before.size(), 80u);

  // Drop one cached union partition; recomputation goes through the
  // correct branch of the union.
  ASSERT_TRUE(ctx.fault_injector().fail_partition(u.id(), 5));
  EXPECT_EQ(u.collect(), before);
  // Ambient cache-corruption injection (the fault-matrix CI lanes) can rot
  // further cached partitions and legitimately recompute more than the one
  // dropped above; the exact count only holds without it.
  if (FaultProfile::from_env().corrupt.cached_p > 0.0) {
    EXPECT_GE(ctx.fault_injector().recomputations(), 1u);
  } else {
    EXPECT_EQ(ctx.fault_injector().recomputations(), 1u);
  }
}

TEST(Rdd, TakeRecordsAStage) {
  Context ctx(small_cluster());
  const size_t stages_before = ctx.report().stages().size();
  ctx.parallelize(iota(100), 10).take(15);
  ASSERT_EQ(ctx.report().stages().size(), stages_before + 1);
  // 15 elements over 10-element partitions: exactly 2 partitions computed.
  EXPECT_EQ(ctx.report().stages().back().tasks.size(), 2u);
}

/// Property sweep: reduce_by_key equals serial aggregation for many
/// partition-count / key-cardinality combinations.
class ReduceByKeySweep
    : public ::testing::TestWithParam<std::tuple<u32, u32>> {};

TEST_P(ReduceByKeySweep, MatchesSerial) {
  const auto [partitions, num_keys] = GetParam();
  Context ctx(small_cluster());
  Rng rng(1000 + partitions * 31 + num_keys);
  std::vector<std::pair<u32, u64>> pairs;
  std::unordered_map<u32, u64> expected;
  for (int i = 0; i < 2000; ++i) {
    const u32 k = static_cast<u32>(rng.below(num_keys));
    pairs.emplace_back(k, 1);
    expected[k] += 1;
  }
  auto actual = ctx.parallelize(std::move(pairs), partitions)
                    .reduce_by_key([](u64 a, u64 b) { return a + b; })
                    .collect_as_map();
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [k, v] : expected) EXPECT_EQ(actual.at(k), v);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReduceByKeySweep,
    ::testing::Combine(::testing::Values(1u, 2u, 7u, 32u),
                       ::testing::Values(1u, 10u, 500u)));

}  // namespace
}  // namespace yafim::engine
