// Memory-pressure-aware execution: the per-executor MemoryBudget ledger.
//
// The paper's design assumes every executor can hold the whole candidate
// hash tree next to its cached transaction partitions; the linter's YL002
// rule marks where that assumption breaks (Ck > executor_memory_bytes at
// low MinSup). This ledger makes the engine *aware* of the ceiling instead
// of merely flagging it: Context consults it before every broadcast, and
// the miners degrade gracefully when a payload would not fit --
//
//   * full broadcast  -> partitioned candidate store (fim/hash_tree.h
//     sharding: the tree is split over the dense candidate-id space by
//     candidate prefix and transactions are re-partitioned to shards,
//     trading one shuffle of the transaction set against shipping the tree
//     everywhere -- the trade-off studied in Aouad et al., arXiv 1903.03008);
//   * in-memory shuffle buffers -> spill to simfs with block compression
//     (util/bytes yz codec), priced by the cost model and checksummed like
//     every other simfs block.
//
// The ledger tracks three resident components per node, all in the same
// bytes_of/ADL byte_size units the rest of the engine prices with:
// broadcast payloads (replicated: the full payload sits on EVERY node),
// cached RDD partitions (spread round-robin like task placement), and
// in-flight shuffle buffers (spread likewise). Budgets come from
// ClusterConfig::executor_memory_bytes (0 = unbounded) and can shrink
// mid-run through the deterministic YAFIM_FAULT_MEM_* axis
// (FaultProfile::mem_shrink_*), applied at pass boundaries so a degrading
// run replays bit-identically.
#pragma once

#include <atomic>

#include "engine/fault.h"
#include "sim/cluster.h"
#include "util/common.h"

namespace yafim::engine {

class MemoryBudget {
 public:
  MemoryBudget(const sim::ClusterConfig& cluster, const FaultProfile& fault);

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// 0-budget clusters model the paper's "enough memory" assumption.
  bool unbounded() const { return base_budget_ == 0; }

  /// Effective budget of one node (base, shrunk once the fault axis fired).
  u64 node_budget(u32 node) const;
  /// Budget of the tightest node -- what a replicated payload must fit.
  u64 min_node_budget() const;

  /// Would broadcasting `bytes` to every executor fit next to what the
  /// ledger already places on the tightest node? Always true when
  /// unbounded.
  bool broadcast_fits(u64 bytes) const;

  /// Per-node in-flight shuffle-buffer budget
  /// (ClusterConfig::shuffle_buffer_bytes; 0 = unbounded, never spill).
  u64 shuffle_buffer_node_budget() const { return shuffle_buffer_bytes_; }
  /// Should a shuffle stage holding `buffered_bytes` across the cluster
  /// spill its blocks to simfs?
  bool shuffle_should_spill(u64 buffered_bytes) const;

  /// Pass boundary: releases the previous pass's broadcast payloads (the
  /// miners drop their Broadcast handles between passes) and applies the
  /// YAFIM_FAULT_MEM_* shrink when `pass` reaches the seeded trigger.
  void begin_pass(u32 pass);

  // --- ledger ------------------------------------------------------------
  void note_broadcast(u64 bytes) {
    broadcast_resident_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void note_cached(u64 bytes) {
    cached_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void note_uncached(u64 bytes) {
    cached_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  u64 broadcast_resident_bytes() const {
    return broadcast_resident_.load(std::memory_order_relaxed);
  }
  u64 cached_bytes() const {
    return cached_bytes_.load(std::memory_order_relaxed);
  }
  /// In-flight shuffle buffers (map-side partials awaiting the reduce
  /// side). Shuffle stages add while buffering and release on consume or
  /// spill, so broadcast_fits sees transient pressure too.
  void note_shuffle_buffered(u64 bytes) {
    shuffle_buffered_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void release_shuffle_buffered(u64 bytes) {
    shuffle_buffered_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  u64 shuffle_buffered_bytes() const {
    return shuffle_buffered_.load(std::memory_order_relaxed);
  }

  // --- always-on degradation statistics (independent of obs tracing) ----
  void note_fallback(u64 bytes);
  void note_spill_write(u64 raw_bytes, u64 stored_bytes);
  void note_spill_read(u64 raw_bytes);

  u64 broadcast_fallbacks() const { return fallbacks_.load(); }
  u64 spill_blocks_written() const { return spill_blocks_written_.load(); }
  u64 spill_bytes_raw() const { return spill_bytes_raw_.load(); }
  u64 spill_bytes_stored() const { return spill_bytes_stored_.load(); }
  u64 spill_blocks_read() const { return spill_blocks_read_.load(); }
  u64 mem_shrinks_applied() const { return shrinks_applied_.load(); }

 private:
  /// Ledger bytes currently resident on `node`.
  u64 used_on(u32 node) const;

  u32 nodes_;
  u64 base_budget_;
  u64 shuffle_buffer_bytes_;

  // YAFIM_FAULT_MEM_* axis (immutable after construction; `shrunk_` flips
  // once at the seeded pass boundary).
  u32 mem_shrink_pass_;
  double mem_shrink_factor_;
  u32 mem_shrink_node_;
  std::atomic<bool> shrunk_{false};

  std::atomic<u64> broadcast_resident_{0};
  std::atomic<u64> cached_bytes_{0};
  std::atomic<u64> shuffle_buffered_{0};

  std::atomic<u64> fallbacks_{0};
  std::atomic<u64> spill_blocks_written_{0};
  std::atomic<u64> spill_bytes_raw_{0};
  std::atomic<u64> spill_bytes_stored_{0};
  std::atomic<u64> spill_blocks_read_{0};
  std::atomic<u64> shrinks_applied_{0};
};

}  // namespace yafim::engine
