#include "fim/hash_tree.h"

#include <algorithm>
#include <cmath>

namespace yafim::fim {

namespace {

/// Build-time node: owns its bucket/children vectors while the insert/split
/// algorithm is still moving candidates around. Flattened into the arena
/// representation (HashTree::Node + the two slot arenas) once the shape is
/// final, then discarded.
struct BuildNode {
  bool leaf = true;
  std::vector<u32> bucket;    ///< candidate ids (leaf only)
  std::vector<u32> children;  ///< branching slots -> node index (interior)
};

}  // namespace

u32 HashTree::default_branching(u64 num_candidates, u32 k) {
  if (num_candidates == 0 || k == 0) return 8;
  const double per_level =
      std::pow(static_cast<double>(num_candidates), 1.0 / k);
  const double fanout = std::ceil(2.0 * per_level);
  return static_cast<u32>(std::clamp(fanout, 8.0, 1024.0));
}

HashTree::HashTree(std::vector<Itemset> candidates, u32 branching,
                   u32 leaf_capacity)
    : branching_(branching), leaf_capacity_(leaf_capacity) {
  size_ = static_cast<u32>(candidates.size());
  if (branching_ == 0) {
    const u32 k =
        candidates.empty() ? 1 : static_cast<u32>(candidates.front().size());
    branching_ = default_branching(candidates.size(), k);
  }
  YAFIM_CHECK(branching_ >= 2, "branching must be >= 2");
  YAFIM_CHECK(leaf_capacity_ >= 1, "leaf capacity must be >= 1");
  if (!candidates.empty()) {
    k_ = static_cast<u32>(candidates.front().size());
    YAFIM_CHECK(k_ >= 1, "candidates must be non-empty itemsets");
    for (const Itemset& c : candidates) {
      YAFIM_CHECK(c.size() == k_, "all candidates must have equal size");
      YAFIM_DCHECK(is_canonical(c), "candidates must be canonical");
    }
  }

  item_arena_.reserve(size_t{size_} * k_);
  for (const Itemset& c : candidates) {
    item_arena_.insert(item_arena_.end(), c.begin(), c.end());
  }

  // Phase 1: grow the tree through vector-backed build nodes (the classic
  // insert-and-split loop). Candidate items are read from the arena so the
  // input vector is no longer needed past this point.
  std::vector<BuildNode> build;
  build.emplace_back();  // root starts as an empty leaf

  const auto insert = [&](u32 candidate_id) {
    const Item* items = candidate_items(candidate_id);
    u32 node_idx = kRoot;
    u32 depth = 0;
    // Descend through interior nodes along the candidate's own items.
    while (!build[node_idx].leaf) {
      const u32 slot = child_slot(items[depth]);
      u32 child = build[node_idx].children[slot];
      if (child == kNone) {
        child = static_cast<u32>(build.size());
        build.emplace_back();  // new empty leaf (may invalidate references)
        build[node_idx].children[slot] = child;
      }
      node_idx = child;
      ++depth;
    }
    build[node_idx].bucket.push_back(candidate_id);
    return std::pair<u32, u32>{node_idx, depth};
  };

  // A just-split child can itself overflow when many candidates share a
  // hash path; recurse (bounded by depth < k).
  const auto split = [&](auto&& self, u32 node_idx, u32 depth) -> void {
    std::vector<u32> bucket = std::move(build[node_idx].bucket);
    build[node_idx].bucket.clear();
    build[node_idx].leaf = false;
    build[node_idx].children.assign(branching_, kNone);

    for (u32 candidate_id : bucket) {
      const u32 slot = child_slot(candidate_items(candidate_id)[depth]);
      u32 child = build[node_idx].children[slot];
      if (child == kNone) {
        child = static_cast<u32>(build.size());
        build.emplace_back();
        build[node_idx].children[slot] = child;
      }
      build[child].bucket.push_back(candidate_id);
      if (build[child].bucket.size() > leaf_capacity_ && depth + 1 < k_) {
        self(self, child, depth + 1);
      }
    }
  };

  for (u32 i = 0; i < size_; ++i) {
    const auto [node_idx, depth] = insert(i);
    if (build[node_idx].bucket.size() > leaf_capacity_ && depth < k_) {
      split(split, node_idx, depth);
    }
  }

  // Phase 2: flatten. Node indices are preserved, so probe traversal order
  // (and leaf_id assignment, which follows node order) matches the build
  // tree exactly.
  nodes_.resize(build.size());
  bucket_arena_.reserve(size_);
  num_leaves_ = 0;
  for (size_t i = 0; i < build.size(); ++i) {
    const BuildNode& src = build[i];
    Node& dst = nodes_[i];
    if (src.leaf) {
      dst.first = static_cast<u32>(bucket_arena_.size());
      dst.count = static_cast<u32>(src.bucket.size());
      dst.leaf_id = num_leaves_++;
      bucket_arena_.insert(bucket_arena_.end(), src.bucket.begin(),
                           src.bucket.end());
    } else {
      dst.first = static_cast<u32>(child_arena_.size());
      dst.count = branching_;
      dst.leaf_id = kNone;
      child_arena_.insert(child_arena_.end(), src.children.begin(),
                          src.children.end());
    }
  }
}

std::vector<Itemset> HashTree::candidates() const {
  std::vector<Itemset> out;
  out.reserve(size_);
  for (u32 i = 0; i < size_; ++i) out.push_back(candidate(i));
  return out;
}

std::vector<TreeShard> shard_hash_tree(const HashTree& tree, u32 nshards,
                                       u32 branching, u32 leaf_capacity) {
  YAFIM_CHECK(nshards >= 1, "shard count must be >= 1");
  std::vector<std::vector<Itemset>> parts(nshards);
  std::vector<std::vector<u64>> ids(nshards);
  for (u32 ci = 0; ci < tree.size(); ++ci) {
    engine::work::add(1);
    const u32 s =
        nshards == 1 ? 0 : candidate_shard(tree.candidate_items(ci)[0], nshards);
    parts[s].push_back(tree.candidate(ci));
    ids[s].push_back(tree.id_offset() + ci);
  }
  std::vector<TreeShard> out;
  out.reserve(nshards);
  for (u32 s = 0; s < nshards; ++s) {
    out.push_back(TreeShard{HashTree(std::move(parts[s]), branching,
                                     leaf_capacity),
                            std::move(ids[s])});
  }
  return out;
}

u64 HashTree::serialized_bytes() const {
  // Matches the historical per-vector accounting byte for byte: 16-byte
  // header, (8 + 4k) per candidate itemset, 8 per node plus 4 per bucket or
  // child slot. Every candidate id occupies exactly one bucket slot and
  // every interior node carries branching_ child slots, so the arena sizes
  // are those same sums.
  return 16 + u64{size_} * (8 + u64{k_} * sizeof(Item)) +
         nodes_.size() * 8 + bucket_arena_.size() * sizeof(u32) +
         child_arena_.size() * sizeof(u32);
}

}  // namespace yafim::fim
