# Empty dependencies file for yafim_util.
# This may be replaced when dependencies are built.
