#include "engine/context.h"

#include <optional>

#include "engine/work.h"
#include "obs/trace.h"

namespace yafim::engine {

Context::Context(Options opts)
    : opts_(opts),
      model_(opts.cluster),
      pool_(opts.host_threads),
      fault_(opts.cluster.nodes),
      default_partitions_(opts.default_partitions
                              ? opts.default_partitions
                              : 2 * opts.cluster.total_cores()) {
  // Stages are launched from the constructing thread; name it in traces.
  obs::Tracer::instance().set_thread_name("driver");
}

void Context::run_stage(const std::string& label, u32 ntasks,
                        const std::function<void(u32)>& body) {
  static const std::atomic<u64> kNoShuffle{0};
  run_stage_with_shuffle(label, ntasks, body, kNoShuffle);
}

std::vector<sim::TaskRecord> Context::measure_tasks(
    const std::string& label, u32 ntasks,
    const std::function<void(u32)>& body) {
  YAFIM_CHECK(!ThreadPool::on_pool_thread(),
              "stages must be launched from the driver thread");
  const bool traced = obs::enabled();
  std::vector<sim::TaskRecord> tasks(ntasks);
  pool_.parallel_for(ntasks, [&](u32 i) {
    std::optional<obs::Span> span;
    if (traced) {
      span.emplace("task", label);
      span->arg("index", i);
    }
    work::Scope scope;
    body(i);
    tasks[i].work = scope.measured();
    if (span) span->arg("work", tasks[i].work);
  });
  return tasks;
}

void Context::run_stage_with_shuffle(const std::string& label, u32 ntasks,
                                     const std::function<void(u32)>& body,
                                     const std::atomic<u64>& shuffle_bytes) {
  std::optional<obs::Span> span;
  if (obs::enabled()) {
    span.emplace("stage", label);
    span->arg("ntasks", ntasks);
    if (pass_) span->arg("pass", pass_);
  }

  std::vector<sim::TaskRecord> tasks = measure_tasks(label, ntasks, body);

  sim::StageRecord record;
  record.label = label;
  record.kind = sim::StageKind::kSparkStage;
  record.pass = pass_;
  record.tasks = std::move(tasks);
  record.shuffle_bytes = shuffle_bytes.load(std::memory_order_relaxed);
  if (pending_broadcast_ > 0) {
    if (opts_.share_mode == ShareMode::kBroadcast) {
      record.broadcast_bytes = pending_broadcast_;
    } else {
      record.naive_ship_bytes = pending_broadcast_;
    }
    pending_broadcast_ = 0;
  }
  if (span) {
    if (record.shuffle_bytes) span->arg("shuffle_bytes", record.shuffle_bytes);
    if (record.broadcast_bytes) {
      span->arg("broadcast_bytes", record.broadcast_bytes);
    }
    u64 total_work = 0;
    for (const sim::TaskRecord& t : record.tasks) total_work += t.work;
    span->arg("work", total_work);
    span->end();  // before record() drains, so this stage is included
  }
  this->record(std::move(record));
}

void Context::record(sim::StageRecord record) {
  if (obs::enabled()) {
    // Mirror the StageRecord's byte accounting into the wall-clock counter
    // registry off the very same record, so SimReport totals and traced
    // counters agree by construction.
    obs::count(obs::CounterId::kShuffleBytes, record.shuffle_bytes);
    obs::count(obs::CounterId::kBroadcastBytes, record.broadcast_bytes);
    obs::count(obs::CounterId::kNaiveShipBytes, record.naive_ship_bytes);
    obs::count(obs::CounterId::kDfsReadBytes, record.dfs_read_bytes);
    obs::count(obs::CounterId::kDfsWriteBytes, record.dfs_write_bytes);
  }
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    report_.add(std::move(record));
  }
  // Stage/action boundary: collect what the worker threads buffered.
  if (obs::enabled()) obs::Tracer::instance().drain();
}

}  // namespace yafim::engine
