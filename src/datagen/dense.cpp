#include "datagen/dense.h"

#include <algorithm>

#include "util/rng.h"

namespace yafim::datagen {

using fim::Item;
using fim::Itemset;
using fim::Transaction;

Item dense_item(const DenseSpec& spec, u32 attribute, u32 value) {
  YAFIM_CHECK(attribute < spec.attr_values.size(), "attribute out of range");
  YAFIM_CHECK(value < spec.attr_values[attribute], "value out of range");
  u32 offset = 0;
  for (u32 a = 0; a < attribute; ++a) offset += spec.attr_values[a];
  return offset + value;
}

Itemset planted_itemset(const DenseSpec& spec, const PlantedPattern& p) {
  Itemset items;
  items.reserve(p.cells.size());
  for (const auto& [attribute, value] : p.cells) {
    items.push_back(dense_item(spec, attribute, value));
  }
  fim::canonicalize(items);
  return items;
}

fim::TransactionDB generate_dense(const DenseSpec& spec) {
  const u32 num_attrs = static_cast<u32>(spec.attr_values.size());
  YAFIM_CHECK(num_attrs > 0, "need at least one attribute");

  // Precompute attribute offsets once.
  std::vector<u32> offsets(num_attrs);
  u32 offset = 0;
  for (u32 a = 0; a < num_attrs; ++a) {
    YAFIM_CHECK(spec.attr_values[a] >= 1, "attribute needs >= 1 value");
    offsets[a] = offset;
    offset += spec.attr_values[a];
  }

  Rng rng(spec.seed);
  std::vector<Transaction> transactions;
  transactions.reserve(spec.num_transactions);
  std::vector<i64> fixed_value(num_attrs);  // -1 = free

  for (u64 t = 0; t < spec.num_transactions; ++t) {
    std::fill(fixed_value.begin(), fixed_value.end(), i64{-1});
    // Planted patterns pin attribute values jointly.
    for (const PlantedPattern& pattern : spec.planted) {
      if (!rng.bernoulli(pattern.prob)) continue;
      for (const auto& [attribute, value] : pattern.cells) {
        fixed_value[attribute] = value;
      }
    }

    Transaction tx;
    tx.reserve(num_attrs);
    for (u32 a = 0; a < num_attrs; ++a) {
      const u32 value =
          fixed_value[a] >= 0
              ? static_cast<u32>(fixed_value[a])
              : static_cast<u32>(
                    rng.skewed_below(spec.attr_values[a], spec.value_skew));
      tx.push_back(offsets[a] + value);
    }
    // One value per attribute => already sorted and unique.
    YAFIM_DCHECK(fim::is_canonical(tx), "dense transaction must be canonical");
    transactions.push_back(std::move(tx));
  }
  return fim::TransactionDB(std::move(transactions));
}

}  // namespace yafim::datagen
