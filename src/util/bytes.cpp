#include "util/bytes.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace yafim {

namespace {
constexpr u32 kYzMagic = 0x4C525A59;  // "YZRL"
constexpr u8 kYzLiteral = 0x00;
constexpr u8 kYzRepeat = 0x01;
// Repeat runs shorter than this lose to a literal run (control + u32 + byte
// = 6 bytes per token vs. 1 byte per literal element once inside a run).
constexpr u64 kMinRepeatRun = 8;

void put_u32(std::vector<u8>& out, u32 v) {
  const u8* b = reinterpret_cast<const u8*>(&v);
  out.insert(out.end(), b, b + sizeof(v));
}

void put_u64(std::vector<u8>& out, u64 v) {
  const u8* b = reinterpret_cast<const u8*>(&v);
  out.insert(out.end(), b, b + sizeof(v));
}

template <typename T>
T take_pod(std::span<const u8> data, u64& pos) {
  YAFIM_CHECK(pos + sizeof(T) <= data.size(), "yz: truncated frame");
  T v;
  std::memcpy(&v, data.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}
}  // namespace

std::vector<u8> yz_compress(std::span<const u8> raw) {
  std::vector<u8> out;
  put_u32(out, kYzMagic);
  put_u64(out, raw.size());
  u64 i = 0;
  u64 lit_start = 0;
  auto flush_literals = [&](u64 end) {
    while (lit_start < end) {
      const u64 n = std::min<u64>(end - lit_start, 0xffffffffull);
      out.push_back(kYzLiteral);
      put_u32(out, static_cast<u32>(n));
      out.insert(out.end(), raw.data() + lit_start, raw.data() + lit_start + n);
      lit_start += n;
    }
  };
  while (i < raw.size()) {
    u64 run = 1;
    while (i + run < raw.size() && raw[i + run] == raw[i] &&
           run < 0xffffffffull) {
      ++run;
    }
    if (run >= kMinRepeatRun) {
      flush_literals(i);
      out.push_back(kYzRepeat);
      put_u32(out, static_cast<u32>(run));
      out.push_back(raw[i]);
      i += run;
      lit_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(raw.size());
  return out;
}

std::vector<u8> yz_decompress(std::span<const u8> compressed) {
  u64 pos = 0;
  YAFIM_CHECK(take_pod<u32>(compressed, pos) == kYzMagic, "yz: bad magic");
  const u64 raw_size = take_pod<u64>(compressed, pos);
  std::vector<u8> out;
  out.reserve(raw_size);
  while (out.size() < raw_size) {
    const u8 ctl = take_pod<u8>(compressed, pos);
    const u32 n = take_pod<u32>(compressed, pos);
    if (ctl == kYzLiteral) {
      YAFIM_CHECK(pos + n <= compressed.size(), "yz: truncated literal run");
      out.insert(out.end(), compressed.data() + pos, compressed.data() + pos + n);
      pos += n;
    } else {
      YAFIM_CHECK(ctl == kYzRepeat, "yz: bad control byte");
      const u8 v = take_pod<u8>(compressed, pos);
      out.insert(out.end(), n, v);
    }
  }
  YAFIM_CHECK(out.size() == raw_size, "yz: decoded size mismatch");
  return out;
}

std::string format_bytes(u64 bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace yafim
