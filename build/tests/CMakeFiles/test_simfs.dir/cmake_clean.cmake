file(REMOVE_RECURSE
  "CMakeFiles/test_simfs.dir/test_simfs.cpp.o"
  "CMakeFiles/test_simfs.dir/test_simfs.cpp.o.d"
  "test_simfs"
  "test_simfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
