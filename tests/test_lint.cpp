// Tests for the lineage plan linter (engine/lint.h).
//
// One seeded anti-pattern per rule (YL001..YL005), each paired with the
// nearest clean plan shape that must NOT fire, plus end-to-end runs of both
// mining pipelines: the stock YAFIM and MRApriori plans are lint-clean, and
// the uncached-YAFIM ablation trips YL001 by construction.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "engine/broadcast.h"
#include "engine/context.h"
#include "engine/lint.h"
#include "engine/rdd.h"
#include "fim/mr_apriori.h"
#include "fim/yafim.h"
#include "util/rng.h"

namespace yafim::engine {
namespace {

Context::Options lint_on(u32 max_depth = 32) {
  Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(2);
  opts.host_threads = 2;
  opts.lint.enabled = true;
  opts.lint.max_lineage_depth = max_depth;
  return opts;
}

std::vector<int> iota(int n) {
  std::vector<int> out(n);
  for (int i = 0; i < n; ++i) out[i] = i;
  return out;
}

/// Multi-pass mining input: dense enough that frequent 2-itemsets exist, so
/// the cached transactions RDD is genuinely read back in Phase II.
fim::TransactionDB multipass_db() {
  Rng rng(41);
  std::vector<fim::Transaction> tx;
  for (int i = 0; i < 200; ++i) {
    fim::Transaction t;
    for (u32 item = 0; item < 12; ++item) {
      if (rng.bernoulli(0.4)) t.push_back(item);
    }
    if (t.empty()) t.push_back(static_cast<fim::Item>(rng.below(12)));
    tx.push_back(std::move(t));
  }
  return fim::TransactionDB(std::move(tx));
}

void expect_clean(const PlanLinter& linter) {
  for (const LintDiagnostic& diag : linter.diagnostics()) {
    ADD_FAILURE() << PlanLinter::format(diag);
  }
}

TEST(PlanLinter, DisabledByDefault) {
  Context ctx([] {
    Context::Options opts;
    opts.cluster = sim::ClusterConfig::with_nodes(2);
    opts.host_threads = 2;
    return opts;
  }());
  EXPECT_FALSE(ctx.linter().enabled());
  auto rdd = ctx.parallelize(iota(50), 2).map([](const int& x) { return x; });
  rdd.count();
  rdd.count();
  ctx.linter().finalize();
  EXPECT_TRUE(ctx.linter().diagnostics().empty());
}

// --- YL001: uncached RDD consumed more than once ------------------------

TEST(PlanLinter, YL001FiresOnUncachedReuse) {
  Context ctx(lint_on());
  auto rdd = ctx.parallelize(iota(100), 4)
                 .map([](const int& x) { return x + 1; })
                 .named("reused");
  rdd.count("first");
  EXPECT_EQ(ctx.linter().count("YL001"), 0u);
  rdd.count("second");
  ASSERT_EQ(ctx.linter().count("YL001"), 1u);

  const auto diags = ctx.linter().diagnostics();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "YL001");
  EXPECT_EQ(diags[0].severity, LintSeverity::kWarn);
  EXPECT_EQ(diags[0].node_name, "reused");

  // Fires once per node, not once per extra consumption.
  rdd.count("third");
  EXPECT_EQ(ctx.linter().count("YL001"), 1u);
}

TEST(PlanLinter, YL001FlagsOnlyTheTopmostNodeOfAChain) {
  Context ctx(lint_on());
  auto rdd = ctx.parallelize(iota(100), 4)
                 .map([](const int& x) { return x + 1; })
                 .map([](const int& x) { return x * 2; })
                 .named("top");
  rdd.count();
  rdd.count();
  // The inner map crossed the threshold in the same walk; flagging both
  // would be noise.
  const auto diags = ctx.linter().diagnostics();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].node_name, "top");
}

TEST(PlanLinter, YL001SilencedByPersist) {
  Context ctx(lint_on());
  auto rdd = ctx.parallelize(iota(100), 4)
                 .map([](const int& x) { return x + 1; });
  rdd.persist();
  rdd.count();
  rdd.count();
  EXPECT_EQ(ctx.linter().count("YL001"), 0u);
  ctx.linter().finalize();
  expect_clean(ctx.linter());  // cache was read back, so no YL003 either
}

// --- YL002: broadcast payload over executor memory ----------------------

TEST(PlanLinter, YL002FiresOnOversizedBroadcast) {
  Context ctx(lint_on());
  const u64 mem = ctx.cluster().executor_memory_bytes;
  ASSERT_GT(mem, 0u);
  { auto fits = ctx.broadcast(1, mem / 2, "fits"); }
  EXPECT_EQ(ctx.linter().count("YL002"), 0u);
  { auto huge = ctx.broadcast(2, mem + 1, "huge-tree"); }
  ASSERT_EQ(ctx.linter().count("YL002"), 1u);

  const auto diags = ctx.linter().diagnostics();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "YL002");
  EXPECT_EQ(diags[0].severity, LintSeverity::kError);
  EXPECT_EQ(diags[0].node_name, "huge-tree");
  EXPECT_TRUE(ctx.linter().any_at_least(LintSeverity::kError));
}

// --- YL003: persisted RDD whose cache is never read back ----------------

TEST(PlanLinter, YL003FiresOnDeadCache) {
  Context ctx(lint_on());
  auto rdd = ctx.parallelize(iota(50), 2)
                 .map([](const int& x) { return x; })
                 .named("dead");
  rdd.persist();
  rdd.count();  // materializes the cache; nothing ever reads it back
  ctx.linter().finalize();
  ASSERT_EQ(ctx.linter().count("YL003"), 1u);
  const auto diags = ctx.linter().diagnostics();
  EXPECT_EQ(diags[0].node_name, "dead");
  EXPECT_EQ(diags[0].severity, LintSeverity::kWarn);

  // finalize() is idempotent per node.
  ctx.linter().finalize();
  EXPECT_EQ(ctx.linter().count("YL003"), 1u);
}

TEST(PlanLinter, YL003FiresOnNeverConsumedPersist) {
  Context ctx(lint_on());
  auto rdd = ctx.parallelize(iota(50), 2)
                 .map([](const int& x) { return x; });
  rdd.persist();  // dead code: no action ever touches the RDD
  ctx.linter().finalize();
  EXPECT_EQ(ctx.linter().count("YL003"), 1u);
}

TEST(PlanLinter, YL003QuietWhenCacheIsRead) {
  Context ctx(lint_on());
  auto rdd = ctx.parallelize(iota(50), 2)
                 .map([](const int& x) { return x; });
  rdd.persist();
  rdd.count();  // fills the cache
  rdd.count();  // reads it back
  ctx.linter().finalize();
  EXPECT_EQ(ctx.linter().count("YL003"), 0u);
}

// --- YL004: filter above a map feeding a shuffle ------------------------

TEST(PlanLinter, YL004FiresOnPushableFilterFeedingShuffle) {
  Context ctx(lint_on());
  using KV = std::pair<int, int>;
  auto counts =
      ctx.parallelize(iota(200), 4)
          .map([](const int& x) { return KV(x % 5, 1); })
          .filter([](const KV& kv) { return kv.first != 0; })
          .named("late-filter")
          .reduce_by_key([](int a, int b) { return a + b; });
  counts.collect();
  ASSERT_EQ(ctx.linter().count("YL004"), 1u);
  const auto diags = ctx.linter().diagnostics();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "YL004");
  EXPECT_EQ(diags[0].severity, LintSeverity::kNote);
  EXPECT_EQ(diags[0].node_name, "late-filter");
}

TEST(PlanLinter, YL004QuietWithoutMapBelow) {
  Context ctx(lint_on());
  using KV = std::pair<int, int>;
  std::vector<KV> pairs;
  for (int i = 0; i < 200; ++i) pairs.emplace_back(i % 5, 1);
  auto counts = ctx.parallelize(std::move(pairs), 4)
                    .filter([](const KV& kv) { return kv.first != 0; })
                    .reduce_by_key([](int a, int b) { return a + b; });
  counts.collect();
  EXPECT_EQ(ctx.linter().count("YL004"), 0u);
}

TEST(PlanLinter, YL004QuietWhenFilterFeedsAnActionOnly) {
  // The stock YAFIM shape: filter(MinSup) sits above a shuffle *output* and
  // is consumed by collect(), not by a shuffle -- nothing to push.
  Context ctx(lint_on());
  auto kept = ctx.parallelize(iota(200), 4)
                  .map([](const int& x) { return x * 3; })
                  .filter([](const int& x) { return x % 2 == 0; });
  kept.collect();
  EXPECT_EQ(ctx.linter().count("YL004"), 0u);
}

// --- YL005: lineage deeper than the configured threshold ----------------

TEST(PlanLinter, YL005FiresOnDeepLineage) {
  Context ctx(lint_on(/*max_depth=*/4));
  auto rdd = ctx.parallelize(iota(10), 2);
  for (int i = 0; i < 8; ++i) {
    rdd = rdd.map([](const int& x) { return x; });
  }
  rdd.named("deep").count();
  ASSERT_EQ(ctx.linter().count("YL005"), 1u);
  const auto diags = ctx.linter().diagnostics();
  EXPECT_EQ(diags[0].rule, "YL005");
  EXPECT_EQ(diags[0].severity, LintSeverity::kWarn);
  EXPECT_EQ(diags[0].node_name, "deep");
}

TEST(PlanLinter, YL005QuietBelowThreshold) {
  Context ctx(lint_on(/*max_depth=*/4));
  auto rdd = ctx.parallelize(iota(10), 2)
                 .map([](const int& x) { return x; })
                 .map([](const int& x) { return x; });
  rdd.count();
  EXPECT_EQ(ctx.linter().count("YL005"), 0u);
}

TEST(PlanLinter, YL005CutByPersistedBoundary) {
  // A materialized cache truncates what a recomputation would replay, so a
  // cached midpoint keeps a long chain under the threshold.
  Context ctx(lint_on(/*max_depth=*/4));
  auto mid = ctx.parallelize(iota(10), 2)
                 .map([](const int& x) { return x; })
                 .map([](const int& x) { return x; });
  mid.persist();
  mid.count();  // materializes the cache
  auto deep = mid.map([](const int& x) { return x; })
                  .map([](const int& x) { return x; });
  deep.count();
  EXPECT_EQ(ctx.linter().count("YL005"), 0u);
}

// --- end-to-end: the mining pipelines -----------------------------------

TEST(PlanLinter, StockYafimPlanIsClean) {
  const auto db = multipass_db();
  Context ctx(lint_on());
  simfs::SimFS fs(ctx.cluster());
  fim::YafimOptions opt;
  opt.min_support = 0.2;
  const auto run = fim::yafim_mine(ctx, fs, db, opt);
  ASSERT_GT(run.itemsets.max_k(), 1u) << "need a multi-pass run";
  ctx.linter().finalize();
  expect_clean(ctx.linter());
}

TEST(PlanLinter, UncachedYafimTripsYL001) {
  const auto db = multipass_db();
  Context ctx(lint_on());
  simfs::SimFS fs(ctx.cluster());
  fim::YafimOptions opt;
  opt.min_support = 0.2;
  opt.cache_transactions = false;
  const auto run = fim::yafim_mine(ctx, fs, db, opt);
  ASSERT_GT(run.itemsets.max_k(), 1u) << "need a multi-pass run";
  EXPECT_GE(ctx.linter().count("YL001"), 1u);
  EXPECT_TRUE(ctx.linter().any_at_least(LintSeverity::kWarn));
}

TEST(PlanLinter, StockMrAprioriPlanIsClean) {
  const auto db = multipass_db();
  Context ctx(lint_on());
  simfs::SimFS fs(ctx.cluster());
  fim::MrAprioriOptions opt;
  opt.min_support = 0.2;
  const auto run = fim::mr_apriori_mine(ctx, fs, db, opt);
  ASSERT_GT(run.itemsets.total(), 0u);
  ctx.linter().finalize();
  expect_clean(ctx.linter());
}

// --- diagnostic rendering (PlanLinter::format) ---------------------------

TEST(PlanLinter, FormatRendersRuleSeverityNameAndMessage) {
  LintDiagnostic diag;
  diag.rule = "YL001";
  diag.severity = LintSeverity::kWarn;
  diag.node_name = "reused";
  diag.message = "consumed 2 times without persist()";
  EXPECT_EQ(PlanLinter::format(diag),
            "YL001 warn 'reused': consumed 2 times without persist()");
}

TEST(PlanLinter, FormatCoversEverySeverity) {
  LintDiagnostic diag;
  diag.rule = "YL009";
  diag.node_name = "n";
  diag.message = "m";
  diag.severity = LintSeverity::kNote;
  EXPECT_EQ(PlanLinter::format(diag), "YL009 note 'n': m");
  diag.severity = LintSeverity::kError;
  EXPECT_EQ(PlanLinter::format(diag), "YL009 error 'n': m");
}

TEST(PlanLinter, FormatMatchesLiveDiagnosticEndToEnd) {
  // The exact string the CI lanes grep: a real YL001 rendered by format().
  Context ctx(lint_on());
  auto rdd = ctx.parallelize(iota(100), 4)
                 .map([](const int& x) { return x + 1; })
                 .named("reused");
  rdd.count();
  rdd.count();
  const auto diags = ctx.linter().diagnostics();
  ASSERT_EQ(diags.size(), 1u);
  const std::string line = PlanLinter::format(diags[0]);
  EXPECT_EQ(line.rfind("YL001 warn 'reused': ", 0), 0u) << line;
}

// --- YL007 ingestion (DetSan runtime divergences) ------------------------

TEST(PlanLinter, NoteDetsanDivergenceRecordsAnErrorDiagnostic) {
  Context ctx(lint_on());
  ctx.linter().note_detsan_divergence(7, "bad-node", "replay diverged");
  ASSERT_EQ(ctx.linter().count("YL007"), 1u);
  const auto diags = ctx.linter().diagnostics();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "YL007");
  EXPECT_EQ(diags[0].severity, LintSeverity::kError);
  EXPECT_EQ(diags[0].node, 7u);
  EXPECT_EQ(diags[0].node_name, "bad-node");
  EXPECT_TRUE(ctx.linter().any_at_least(LintSeverity::kError));
  EXPECT_EQ(PlanLinter::format(diags[0]),
            "YL007 error 'bad-node': replay diverged");
}

TEST(PlanLinter, NodeLabelResolvesNamesAndFallsBack) {
  Context ctx(lint_on());
  auto rdd = ctx.parallelize(iota(10), 2);
  rdd.named("source");
  EXPECT_EQ(ctx.linter().node_label(rdd.id()), "source");
  // Unknown ids render as an anonymous label rather than crashing.
  const std::string anon = ctx.linter().node_label(9999);
  EXPECT_FALSE(anon.empty());
}

// --- bookkeeping ---------------------------------------------------------

TEST(PlanLinter, ClearDropsDiagnosticsButKeepsThePlan) {
  Context ctx(lint_on());
  auto rdd = ctx.parallelize(iota(100), 4)
                 .map([](const int& x) { return x; })
                 .named("again");
  rdd.count();
  rdd.count();
  ASSERT_EQ(ctx.linter().count("YL001"), 1u);
  ctx.linter().clear();
  EXPECT_TRUE(ctx.linter().diagnostics().empty());
  // The plan shadow survives: re-consuming twice re-fires the rule with the
  // registered debug name intact.
  rdd.count();
  rdd.count();
  ASSERT_EQ(ctx.linter().count("YL001"), 1u);
  EXPECT_EQ(ctx.linter().diagnostics()[0].node_name, "again");
}

}  // namespace
}  // namespace yafim::engine
