// Market-basket analysis: the application Apriori was invented for.
//
// Generates a retail-like transaction stream with the IBM-Quest-style
// generator, mines frequent itemsets with YAFIM, derives association rules
// (confidence + lift), and compares YAFIM's simulated cluster time against
// the MapReduce baseline on the same data -- a miniature of the paper's
// main experiment driven entirely through the public API.
//
//   $ ./examples/market_basket [num_transactions]
#include <cstdio>
#include <cstdlib>

#include "datagen/quest.h"
#include "fim/mr_apriori.h"
#include "fim/rules.h"
#include "fim/yafim.h"
#include "util/log.h"

using namespace yafim;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const u64 num_transactions =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  datagen::QuestParams params;
  params.num_transactions = num_transactions;
  params.avg_transaction_len = 8.0;
  params.num_items = 300;      // catalogue size
  params.num_patterns = 60;    // co-purchase motifs
  params.seed = 42;
  const fim::TransactionDB db = datagen::generate_quest(params);
  const auto stats = db.stats();
  std::printf("catalogue: %u items, %llu baskets, %.1f items/basket\n\n",
              stats.num_items, (unsigned long long)stats.num_transactions,
              stats.avg_length);

  engine::Context ctx;
  simfs::SimFS fs(ctx.cluster());
  fim::YafimOptions options;
  options.min_support = 0.01;
  const auto run = fim::yafim_mine(ctx, fs, db, options);
  std::printf("YAFIM: %llu frequent itemsets up to size %u in %.1f "
              "simulated s (%zu passes)\n",
              (unsigned long long)run.itemsets.total(), run.itemsets.max_k(),
              run.total_seconds(), run.passes.size());

  // Association rules: "customers who bought A also bought B".
  fim::RuleOptions rule_options;
  rule_options.min_confidence = 0.7;
  const auto rules = fim::generate_rules(run.itemsets, rule_options);
  std::printf("\ntop rules (min confidence 70%%), by confidence:\n");
  const size_t show = rules.size() < 10 ? rules.size() : 10;
  for (size_t i = 0; i < show; ++i) {
    const fim::Rule& r = rules[i];
    std::printf("  %s => %s  conf %.0f%%  lift %.1f  support %llu\n",
                fim::to_string(r.antecedent).c_str(),
                fim::to_string(r.consequent).c_str(), r.confidence * 100.0,
                r.lift, (unsigned long long)r.support);
  }
  std::printf("  (%zu rules total)\n", rules.size());

  // The same mining on the MapReduce substrate, for the paper's compare.
  engine::Context mr_ctx;
  simfs::SimFS mr_fs(mr_ctx.cluster());
  fim::MrAprioriOptions mr_options;
  mr_options.min_support = options.min_support;
  const auto mr_run = fim::mr_apriori_mine(mr_ctx, mr_fs, db, mr_options);
  std::printf("\nMRApriori on the same data: %.1f simulated s -> YAFIM is "
              "%.1fx faster (results identical: %s)\n",
              mr_run.total_seconds(),
              mr_run.total_seconds() / run.total_seconds(),
              mr_run.itemsets.same_itemsets(run.itemsets) ? "yes" : "NO");
  return 0;
}
