// Cross-cutting property suites: invariants that must hold across the whole
// stack for randomized inputs and parameter sweeps -- partitioning
// invariance, shuffle-operator equivalence with serial references, work
// accounting consistency, and miner-independence of every knob.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "datagen/benchmarks.h"
#include "datagen/quest.h"
#include "engine/rdd.h"
#include "fim/apriori_seq.h"
#include "fim/yafim.h"
#include "util/rng.h"

namespace yafim {
namespace {

engine::Context::Options small_cluster() {
  engine::Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(2);
  opts.host_threads = 4;
  return opts;
}

// ---- engine: shuffle operators vs serial references ---------------------

class ShuffleOpsSweep : public ::testing::TestWithParam<std::tuple<u32, u32>> {
 protected:
  std::vector<std::pair<u32, u32>> random_pairs(u32 num_keys, u64 seed,
                                                int n = 600) {
    Rng rng(seed);
    std::vector<std::pair<u32, u32>> pairs;
    pairs.reserve(n);
    for (int i = 0; i < n; ++i) {
      pairs.emplace_back(static_cast<u32>(rng.below(num_keys)),
                         static_cast<u32>(rng.below(100)));
    }
    return pairs;
  }
};

TEST_P(ShuffleOpsSweep, GroupByKeyMatchesSerial) {
  const auto [partitions, num_keys] = GetParam();
  engine::Context ctx(small_cluster());
  const auto pairs = random_pairs(num_keys, partitions * 131 + num_keys);

  std::map<u32, std::multiset<u32>> expected;
  for (const auto& [k, v] : pairs) expected[k].insert(v);

  auto grouped = ctx.parallelize(
                        std::vector<std::pair<u32, u32>>(pairs), partitions)
                     .group_by_key()
                     .collect();
  ASSERT_EQ(grouped.size(), expected.size());
  for (auto& [k, values] : grouped) {
    EXPECT_EQ(std::multiset<u32>(values.begin(), values.end()),
              expected.at(k));
  }
}

TEST_P(ShuffleOpsSweep, SortByKeyMatchesSerialSort) {
  const auto [partitions, num_keys] = GetParam();
  engine::Context ctx(small_cluster());
  auto pairs = random_pairs(num_keys, partitions * 733 + num_keys);

  auto expected = pairs;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  // Only key order is guaranteed; compare keys and per-key value multisets.
  auto got = ctx.parallelize(std::move(pairs), partitions)
                 .sort_by_key()
                 .collect();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, expected[i].first) << "position " << i;
  }
}

TEST_P(ShuffleOpsSweep, DistinctMatchesSet) {
  const auto [partitions, num_keys] = GetParam();
  engine::Context ctx(small_cluster());
  Rng rng(partitions * 17 + num_keys);
  std::vector<u32> data;
  for (int i = 0; i < 500; ++i) {
    data.push_back(static_cast<u32>(rng.below(num_keys)));
  }
  std::set<u32> expected(data.begin(), data.end());
  auto got = ctx.parallelize(std::move(data), partitions).distinct().collect();
  EXPECT_EQ(std::set<u32>(got.begin(), got.end()), expected);
  EXPECT_EQ(got.size(), expected.size());
}

TEST_P(ShuffleOpsSweep, CountByValueMatchesSerial) {
  const auto [partitions, num_keys] = GetParam();
  engine::Context ctx(small_cluster());
  Rng rng(partitions * 29 + num_keys);
  std::vector<u32> data;
  std::map<u32, u64> expected;
  for (int i = 0; i < 400; ++i) {
    const u32 v = static_cast<u32>(rng.below(num_keys));
    data.push_back(v);
    ++expected[v];
  }
  auto got = ctx.parallelize(std::move(data), partitions).count_by_value();
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [v, c] : expected) EXPECT_EQ(got.at(v), c);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShuffleOpsSweep,
                         ::testing::Combine(::testing::Values(1u, 4u, 16u),
                                            ::testing::Values(3u, 40u,
                                                              1000u)));

// ---- engine: work accounting invariants ----------------------------------

TEST(WorkAccounting, FusedChainCountsEveryOperator) {
  // Exact work counts: injected task failures would add wasted-work units,
  // so this test opts out of the ambient fault-matrix profile.
  engine::Context::Options opts = small_cluster();
  opts.fault = engine::FaultProfile{};
  engine::Context ctx(opts);
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  // map (100) + filter (100) + map (50) = 250 units for the collect stage.
  ctx.parallelize(std::move(data), 4)
      .map([](const int& x) { return x; })
      .filter([](const int& x) { return x % 2 == 0; })
      .map([](const int& x) { return x; })
      .collect();
  EXPECT_EQ(ctx.report().total_work(), 250u);
}

TEST(WorkAccounting, CachedRddChargesComputeOnlyOnce) {
  // Exact work counts: ambient cache corruption would drop a cached
  // partition and recharge its recompute, so opt out of the env profile.
  engine::Context::Options opts = small_cluster();
  opts.fault = engine::FaultProfile{};
  engine::Context ctx(opts);
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = ctx.parallelize(std::move(data), 4).map([](const int& x) {
    return x;
  });
  rdd.persist();
  rdd.collect();
  const u64 after_first = ctx.report().total_work();
  rdd.collect();
  // The second collect reads the cache: no map work, stages record 0.
  EXPECT_EQ(ctx.report().total_work(), after_first);
}

TEST(WorkAccounting, SimTimeMonotoneInWork) {
  engine::Context ctx(small_cluster());
  const sim::CostModel& model = ctx.cost_model();
  sim::StageRecord small, large;
  small.tasks = {sim::TaskRecord{1000}};
  large.tasks = {sim::TaskRecord{100'000'000}};
  EXPECT_LT(sim::stage_seconds(small, model),
            sim::stage_seconds(large, model));
}

// ---- yafim: result invariance across every engine knob -------------------

class YafimKnobSweep : public ::testing::TestWithParam<u32> {};

TEST_P(YafimKnobSweep, PartitionCountNeverChangesResults) {
  const u32 partitions = GetParam();
  Rng rng(99);
  std::vector<fim::Transaction> tx;
  for (int i = 0; i < 180; ++i) {
    fim::Transaction t;
    for (u32 item = 0; item < 13; ++item) {
      if (rng.bernoulli(0.45)) t.push_back(item);
    }
    if (t.empty()) t.push_back(0);
    tx.push_back(std::move(t));
  }
  const fim::TransactionDB db(std::move(tx));

  fim::AprioriOptions ref_opt;
  ref_opt.min_support = 0.25;
  const auto reference = fim::apriori_mine(db, ref_opt).itemsets;

  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  fim::YafimOptions opt;
  opt.min_support = 0.25;
  opt.partitions = partitions;
  const auto run = fim::yafim_mine(ctx, fs, db, opt);
  EXPECT_TRUE(run.itemsets.same_itemsets(reference))
      << partitions << " partitions";
}

INSTANTIATE_TEST_SUITE_P(Sweep, YafimKnobSweep,
                         ::testing::Values(1u, 2u, 3u, 7u, 16u, 64u, 200u));

// ---- datagen: statistical shape stability ---------------------------------

TEST(DatagenProperties, QuestSupportsScaleWithTransactions) {
  // Relative item supports should be (approximately) invariant to D.
  datagen::QuestParams base;
  base.num_transactions = 4000;
  base.num_items = 150;
  base.num_patterns = 40;
  const auto small_db = datagen::generate_quest(base);
  base.num_transactions = 16000;
  const auto large_db = datagen::generate_quest(base);

  // Compare the most frequent item's relative support.
  auto top_support = [](const fim::TransactionDB& db) {
    std::map<fim::Item, u64> counts;
    for (const auto& t : db.transactions()) {
      for (fim::Item i : t) ++counts[i];
    }
    u64 top = 0;
    for (const auto& [item, c] : counts) top = std::max(top, c);
    return static_cast<double>(top) / static_cast<double>(db.size());
  };
  EXPECT_NEAR(top_support(small_db), top_support(large_db), 0.03);
}

TEST(DatagenProperties, BenchmarkDepthStableAcrossSeeds) {
  // The figure benches depend on the mining depth; it must not collapse
  // under a different seed.
  for (u64 seed : {11ull, 22ull, 33ull}) {
    const auto mushroom = datagen::make_mushroom(0.25, seed);
    fim::AprioriOptions opt;
    opt.min_support = mushroom.paper_min_support;
    const auto run = fim::apriori_mine(mushroom.db, opt);
    EXPECT_GE(run.itemsets.max_k(), 7u) << "seed " << seed;
    EXPECT_LE(run.itemsets.max_k(), 9u) << "seed " << seed;
  }
}

TEST(DatagenProperties, ReplicationScalesEverySupportExactly) {
  const auto bench = datagen::make_mushroom(0.05);
  fim::AprioriOptions opt;
  opt.min_support = bench.paper_min_support;
  const auto base = fim::apriori_mine(bench.db, opt).itemsets;
  const auto tripled =
      fim::apriori_mine(bench.db.replicate(3), opt).itemsets;
  ASSERT_EQ(tripled.total(), base.total());
  for (const auto& [itemset, support] : base.sorted()) {
    EXPECT_EQ(tripled.support_of(itemset), 3 * support);
  }
}

}  // namespace
}  // namespace yafim
