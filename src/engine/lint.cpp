#include "engine/lint.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "obs/metrics.h"

namespace yafim::engine {

namespace {

/// Guard for the YL004 upstream scan: lineage chains are short in practice,
/// but a cyclic registration bug must not hang the linter.
constexpr u32 kScanBudget = 4096;

obs::CounterId rule_counter(const char* rule) {
  if (std::strcmp(rule, "YL001") == 0) {
    return obs::CounterId::kLintUncachedReuse;
  }
  if (std::strcmp(rule, "YL002") == 0) {
    return obs::CounterId::kLintBroadcastOverMem;
  }
  if (std::strcmp(rule, "YL003") == 0) return obs::CounterId::kLintDeadCache;
  if (std::strcmp(rule, "YL004") == 0) {
    return obs::CounterId::kLintFilterPushdown;
  }
  if (std::strcmp(rule, "YL006") == 0) {
    return obs::CounterId::kLintStreamBackpressure;
  }
  if (std::strcmp(rule, "YL007") == 0) {
    return obs::CounterId::kDetsanDivergences;
  }
  return obs::CounterId::kLintDeepLineage;
}

std::string human_bytes(u64 bytes) {
  std::ostringstream os;
  if (bytes >= (1ull << 30)) {
    os << (bytes >> 20) / 1024.0 << " GiB";
  } else if (bytes >= (1ull << 20)) {
    os << (bytes >> 10) / 1024.0 << " MiB";
  } else {
    os << bytes << " B";
  }
  return os.str();
}

}  // namespace

const char* plan_op_name(PlanOp op) {
  switch (op) {
    case PlanOp::kSource: return "source";
    case PlanOp::kMap: return "map";
    case PlanOp::kFlatMap: return "flat_map";
    case PlanOp::kFilter: return "filter";
    case PlanOp::kMapPartitions: return "map_partitions";
    case PlanOp::kUnion: return "union";
    case PlanOp::kSample: return "sample";
    case PlanOp::kCoalesce: return "coalesce";
    case PlanOp::kZipWithIndex: return "zip_with_index";
  }
  return "unknown";
}

const char* lint_severity_name(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kNote: return "note";
    case LintSeverity::kWarn: return "warn";
    case LintSeverity::kError: return "error";
  }
  return "unknown";
}

void PlanLinter::configure(const LintOptions& options,
                           u64 executor_memory_bytes) {
  enabled_ = options.enabled;
  max_lineage_depth_ = options.max_lineage_depth;
  executor_memory_bytes_ = executor_memory_bytes;
}

void PlanLinter::register_node(u32 id, PlanOp op,
                               std::initializer_list<u32> parents) {
  if (!enabled_) return;
  util::MutexLock lock(mutex_);
  NodeInfo& info = nodes_[id];
  info.op = op;
  info.parents.assign(parents.begin(), parents.end());
}

void PlanLinter::set_node_name(u32 id, std::string name) {
  if (!enabled_) return;
  util::MutexLock lock(mutex_);
  nodes_[id].name = std::move(name);
}

void PlanLinter::note_persist(u32 id) {
  if (!enabled_) return;
  util::MutexLock lock(mutex_);
  nodes_[id].persisted = true;
}

void PlanLinter::note_cache_read(u32 id) {
  if (!enabled_) return;
  util::MutexLock lock(mutex_);
  auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.cache_read = true;
}

void PlanLinter::before_execute(u32 root, Consume kind,
                                const std::string& label) {
  if (!enabled_) return;
  util::MutexLock lock(mutex_);
  u32 deepest = walk_locked(root, 1, /*suppress_yl001=*/false, kind, label);
  if (deepest > max_lineage_depth_) {
    std::ostringstream os;
    os << "lineage behind '" << label << "' is " << deepest
       << " nodes deep (threshold " << max_lineage_depth_
       << "); losing one partition replays the whole chain -- persist() or "
          "checkpoint an intermediate RDD";
    emit_locked("YL005", LintSeverity::kWarn, root, os.str());
  }
}

void PlanLinter::check_broadcast(u64 bytes, const std::string& name) {
  if (!enabled_) return;
  if (executor_memory_bytes_ == 0 || bytes <= executor_memory_bytes_) return;
  util::MutexLock lock(mutex_);
  std::ostringstream os;
  os << "broadcast payload of " << human_bytes(bytes)
     << " exceeds executor memory of " << human_bytes(executor_memory_bytes_)
     << "; workers cannot hold the value -- shrink the candidate structure "
        "or raise executor_memory_bytes";
  LintDiagnostic diag;
  diag.rule = "YL002";
  diag.severity = LintSeverity::kError;
  diag.node = 0;
  diag.node_name = name;
  diag.message = os.str();
  obs::count(rule_counter("YL002"));
  diagnostics_.push_back(std::move(diag));
}

void PlanLinter::note_broadcast_fallback(u64 bytes, const std::string& name) {
  if (!enabled_) return;
  util::MutexLock lock(mutex_);
  std::ostringstream os;
  os << "broadcast payload of " << human_bytes(bytes)
     << " exceeds executor memory of " << human_bytes(executor_memory_bytes_)
     << "; partitioned candidate broadcast engaged -- the tree is sharded "
        "across executors and transactions are re-partitioned to it";
  LintDiagnostic diag;
  diag.rule = "YL002";
  diag.severity = LintSeverity::kNote;
  diag.node = 0;
  diag.node_name = name;
  diag.message = os.str();
  obs::count(rule_counter("YL002"));
  diagnostics_.push_back(std::move(diag));
}

void PlanLinter::note_stream_backpressure(double slack, u64 deferred,
                                          double latency_s, double interval_s,
                                          const std::string& name) {
  if (!enabled_) return;
  util::MutexLock lock(mutex_);
  std::ostringstream os;
  os << "backpressure raised re-verification slack to " << slack
     << " (deferring " << deferred << " MinSup crossing(s)): batch latency "
     << latency_s << "s vs ingest interval " << interval_s
     << "s -- results stay exact, but frontier maintenance is lagging the "
        "ingest rate";
  LintDiagnostic diag;
  diag.rule = "YL006";
  diag.severity = LintSeverity::kNote;
  diag.node = 0;
  diag.node_name = name;
  diag.message = os.str();
  obs::count(rule_counter("YL006"));
  diagnostics_.push_back(std::move(diag));
}

void PlanLinter::note_detsan_divergence(u32 node, const std::string& node_name,
                                        const std::string& message) {
  if (!enabled_) return;
  util::MutexLock lock(mutex_);
  LintDiagnostic diag;
  diag.rule = "YL007";
  diag.severity = LintSeverity::kError;
  diag.node = node;
  diag.node_name = node_name;
  diag.message = message;
  // No obs::count here: DetSan::report_divergence bumps
  // kDetsanDivergences itself (it must count even with no linter attached),
  // so bumping per diagnostic too would double-count.
  diagnostics_.push_back(std::move(diag));
}

std::string PlanLinter::node_label(u32 id) const {
  util::MutexLock lock(mutex_);
  return node_label_locked(id);
}

void PlanLinter::finalize() {
  if (!enabled_) return;
  util::MutexLock lock(mutex_);
  // Deterministic emission order for tests: ascending rdd id.
  std::vector<u32> persisted_ids;
  for (auto& [id, info] : nodes_) {
    if (info.persisted && !info.cache_read && !info.yl003_fired) {
      persisted_ids.push_back(id);
    }
  }
  std::sort(persisted_ids.begin(), persisted_ids.end());
  for (u32 id : persisted_ids) {
    NodeInfo& info = nodes_[id];
    info.yl003_fired = true;
    std::ostringstream os;
    if (info.cache_materialized) {
      os << "cache was materialized but never read back; the memory (and "
            "eviction pressure) buys nothing -- drop the persist()";
    } else {
      os << "persist() was requested but the RDD was never consumed; the "
            "persist is dead code";
    }
    emit_locked("YL003", LintSeverity::kWarn, id, os.str());
  }
}

std::vector<LintDiagnostic> PlanLinter::diagnostics() const {
  util::MutexLock lock(mutex_);
  return diagnostics_;
}

size_t PlanLinter::count(const std::string& rule) const {
  util::MutexLock lock(mutex_);
  size_t n = 0;
  for (const LintDiagnostic& diag : diagnostics_) {
    if (diag.rule == rule) ++n;
  }
  return n;
}

bool PlanLinter::any_at_least(LintSeverity floor) const {
  util::MutexLock lock(mutex_);
  for (const LintDiagnostic& diag : diagnostics_) {
    if (diag.severity >= floor) return true;
  }
  return false;
}

void PlanLinter::clear() {
  util::MutexLock lock(mutex_);
  diagnostics_.clear();
  for (auto& [id, info] : nodes_) {
    (void)id;
    info.consume_count = 0;
    info.cache_materialized = false;
    info.cache_read = false;
    info.yl001_fired = false;
    info.yl003_fired = false;
    info.yl004_fired = false;
  }
}

std::string PlanLinter::format(const LintDiagnostic& diag) {
  std::ostringstream os;
  os << diag.rule << ' ' << lint_severity_name(diag.severity) << " '"
     << diag.node_name << "': " << diag.message;
  return os.str();
}

void PlanLinter::emit_locked(const char* rule, LintSeverity severity, u32 id,
                             std::string message) {
  LintDiagnostic diag;
  diag.rule = rule;
  diag.severity = severity;
  diag.node = id;
  diag.node_name = node_label_locked(id);
  diag.message = std::move(message);
  obs::count(rule_counter(rule));
  diagnostics_.push_back(std::move(diag));
}

std::string PlanLinter::node_label_locked(u32 id) const {
  auto it = nodes_.find(id);
  if (it != nodes_.end() && !it->second.name.empty()) return it->second.name;
  return "rdd#" + std::to_string(id);
}

u32 PlanLinter::walk_locked(u32 id, u32 depth, bool suppress_yl001,
                            Consume kind, const std::string& label) {
  auto it = nodes_.find(id);
  // Unknown ids (pre-linter nodes, foreign contexts) behave like sources.
  if (it == nodes_.end()) return depth;
  NodeInfo& info = it->second;

  // Sources hold driver-side data; execution never recomputes below them.
  if (info.op == PlanOp::kSource) return depth;

  if (info.persisted) {
    if (info.cache_materialized) return depth;  // served from cache
    // First consumption computes the lineage once and fills the cache; the
    // subtree below is charged this one consumption and never again.
    info.cache_materialized = true;
  } else {
    info.consume_count += 1;
    bool fired = false;
    if (info.consume_count >= 2 && !info.yl001_fired && !suppress_yl001) {
      std::ostringstream os;
      os << "not persisted but consumed again by "
         << (kind == Consume::kAction ? "action" : "shuffle") << " '" << label
         << "' (consumption #" << info.consume_count
         << "); the lineage below it will be recomputed -- persist() it";
      emit_locked("YL001", LintSeverity::kWarn, id, os.str());
      info.yl001_fired = true;
      fired = true;
    }
    // Once the topmost node of a chain fires, every descendant crossed the
    // threshold in the same plan shape; flagging them too is noise.
    suppress_yl001 = suppress_yl001 || fired;
  }

  if (kind == Consume::kShuffle && info.op == PlanOp::kFilter &&
      !info.yl004_fired) {
    bool pushable = false;
    for (u32 parent : info.parents) {
      if (has_map_below_locked(parent, kScanBudget)) pushable = true;
    }
    if (pushable) {
      info.yl004_fired = true;
      std::ostringstream os;
      os << "filter feeding shuffle '" << label
         << "' runs above a map; pushing the filter below the map shrinks "
            "both the map work and the shuffle input";
      emit_locked("YL004", LintSeverity::kNote, id, os.str());
    }
  }

  u32 deepest = depth;
  for (u32 parent : info.parents) {
    deepest = std::max(
        deepest, walk_locked(parent, depth + 1, suppress_yl001, kind, label));
  }
  return deepest;
}

bool PlanLinter::has_map_below_locked(u32 id, u32 budget) const {
  if (budget == 0) return false;
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return false;
  const NodeInfo& info = it->second;
  if (info.op == PlanOp::kSource) return false;
  // A cached boundary pins the data layout: pushing a filter below it would
  // change what the cache holds, so stop the pushdown scan there.
  if (info.persisted) return false;
  if (info.op == PlanOp::kMap || info.op == PlanOp::kFlatMap ||
      info.op == PlanOp::kMapPartitions) {
    return true;
  }
  for (u32 parent : info.parents) {
    if (has_map_below_locked(parent, budget - 1)) return true;
  }
  return false;
}

}  // namespace yafim::engine
