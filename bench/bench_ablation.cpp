// Ablation bench: quantifies the design choices DESIGN.md calls out.
//
//   1. Broadcast variables vs naive per-task shipping (paper §IV-C).
//   2. Cached transactions RDD vs re-reading from HDFS each pass (§IV-B).
//   3. Hash tree vs linear candidate scan (§IV-A, Fig. 2).
//   4. SPC vs FPC vs DPC job-combining strategies on the MR substrate
//      (related work, Lin et al.).
#include <tuple>

#include "common.h"
#include "fim/sampling.h"
#include "fim/spc_fpc_dpc.h"
#include "stream/miner.h"

using namespace yafim;
using namespace yafim::benchharness;

namespace {

double yafim_variant(const datagen::BenchmarkDataset& bench,
                     engine::ShareMode share, bool cache, bool hash_tree,
                     u64* probe_work = nullptr) {
  engine::Context ctx(engine::Context::Options{
      .cluster = sim::ClusterConfig::paper(), .share_mode = share});
  simfs::SimFS fs(ctx.cluster());
  fim::YafimOptions opt;
  opt.min_support = bench.paper_min_support;
  opt.cache_transactions = cache;
  opt.use_hash_tree = hash_tree;
  const auto run = fim::yafim_mine(ctx, fs, bench.db, opt);
  if (probe_work) *probe_work = ctx.report().total_work();
  return run.total_seconds();
}

/// One count-mode run; returns the pass>=2 counting-stage numbers the
/// count-mode ablation compares (sim seconds of the count/collect/
/// materialize stages, host wall-clock of the counting pipeline, shuffle
/// bytes of the whole run).
struct CountModeResult {
  double count_sim_s = 0.0;
  double count_host_s = 0.0;
  u64 shuffle_bytes = 0;
  u64 itemsets = 0;
};

CountModeResult yafim_count_mode(const datagen::BenchmarkDataset& bench,
                                 fim::CountMode mode) {
  engine::Context ctx(
      engine::Context::Options{.cluster = sim::ClusterConfig::paper()});
  simfs::SimFS fs(ctx.cluster());
  fim::YafimOptions opt;
  opt.min_support = bench.paper_min_support;
  opt.count_mode = mode;
  const auto run = fim::yafim_mine(ctx, fs, bench.db, opt);

  CountModeResult res;
  res.count_host_s = run.count_host_seconds;
  res.shuffle_bytes = ctx.report().total_shuffle_bytes();
  res.itemsets = run.itemsets.total();
  for (const auto& stage : ctx.report().stages()) {
    if (stage.pass < 2) continue;
    const bool counting =
        stage.label.find(":count") != std::string::npos ||
        stage.label.find(":collect") != std::string::npos ||
        stage.label.find(":materialize") != std::string::npos;
    if (counting) {
      res.count_sim_s += sim::stage_seconds(stage, ctx.cost_model());
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv, /*default_scale=*/1.0);
  BenchJson json;
  json.note("bench", "ablation");

  std::printf("== Ablations (MushRoom Sup=35%% and T10I4D100K Sup=0.25%%, "
              "scale=%.2f) ==\n\n",
              args.scale);

  std::vector<datagen::BenchmarkDataset> benches;
  benches.push_back(datagen::make_mushroom(args.scale));
  benches.push_back(datagen::make_t10i4d100k(args.scale));

  std::printf("-- YAFIM design ablations (total simulated seconds) --\n");
  Table table({"dataset", "paper design", "naive ship", "no cache",
               "no hash tree"});
  for (const auto& bench : benches) {
    u64 work_tree = 0, work_linear = 0;
    const double base = yafim_variant(bench, engine::ShareMode::kBroadcast,
                                      true, true, &work_tree);
    const double naive =
        yafim_variant(bench, engine::ShareMode::kNaiveShip, true, true);
    const double nocache =
        yafim_variant(bench, engine::ShareMode::kBroadcast, false, true);
    const double linear = yafim_variant(bench, engine::ShareMode::kBroadcast,
                                        true, false, &work_linear);
    table.add_row({bench.name, Table::num(base),
                   Table::num(naive) + " (" + Table::num(naive / base, 2) +
                       "x)",
                   Table::num(nocache) + " (" +
                       Table::num(nocache / base, 2) + "x)",
                   Table::num(linear) + " (" + Table::num(linear / base, 2) +
                       "x)"});
    std::printf("  %s probe work: hash tree %llu units vs linear %llu units "
                "(%.1fx saved)\n",
                bench.name.c_str(), (unsigned long long)work_tree,
                (unsigned long long)work_linear,
                static_cast<double>(work_linear) /
                    static_cast<double>(work_tree));
  }
  print_table(table, args);

  std::printf("\n-- YAFIM combined passes (our extension; Lin-style "
              "batching on the RDD side) --\n");
  Table combine_table({"dataset", "combine", "cluster passes", "total(s)"});
  for (const auto& bench : benches) {
    for (u32 combine : {1u, 2u, 3u}) {
      engine::Context ctx(
          engine::Context::Options{.cluster = sim::ClusterConfig::paper()});
      simfs::SimFS fs(ctx.cluster());
      fim::YafimOptions opt;
      opt.min_support = bench.paper_min_support;
      opt.combine_passes = combine;
      const auto run = fim::yafim_mine(ctx, fs, bench.db, opt);
      u64 cluster_passes = 1;  // phase I
      for (const auto& stage : ctx.report().stages()) {
        if (stage.label.find(":ap_gen") != std::string::npos) {
          ++cluster_passes;
        }
      }
      combine_table.add_row({bench.name, Table::num(u64{combine}),
                             Table::num(cluster_passes),
                             Table::num(run.total_seconds())});
    }
  }
  print_table(combine_table, args);

  std::printf("\n-- Counting data structure: itemset-keyed shuffle vs dense "
              "candidate-id arrays vs vertical bitmaps (pass>=2 counting "
              "stages) --\n");
  Table countmode_table({"dataset", "mode", "count sim(s)", "count host(s)",
                         "shuffle MB", "itemsets"});
  for (const auto& bench : benches) {
    const CountModeResult faithful =
        yafim_count_mode(bench, fim::CountMode::kItemsetKey);
    const CountModeResult dense =
        yafim_count_mode(bench, fim::CountMode::kCandidateId);
    const CountModeResult bitmap =
        yafim_count_mode(bench, fim::CountMode::kVerticalBitmap);
    YAFIM_CHECK(faithful.itemsets == dense.itemsets,
                "count modes disagree on frequent itemsets");
    YAFIM_CHECK(faithful.itemsets == bitmap.itemsets,
                "count modes disagree on frequent itemsets");
    for (const auto& [label, res, x] :
         {std::tuple{"itemset_key", &faithful, 0.0},
          std::tuple{"candidate_id", &dense, 1.0},
          std::tuple{"vertical_bitmap", &bitmap, 2.0}}) {
      countmode_table.add_row(
          {bench.name, label, Table::num(res->count_sim_s),
           Table::num(res->count_host_s, 3),
           Table::num(static_cast<double>(res->shuffle_bytes) / 1e6, 2),
           Table::num(res->itemsets)});
      json.add("countmode_sim_s:" + bench.name, x, res->count_sim_s);
      json.add("countmode_host_s:" + bench.name, x, res->count_host_s);
      json.add("countmode_shuffle_mb:" + bench.name, x,
               static_cast<double>(res->shuffle_bytes) / 1e6);
    }
    std::printf("  %s: host wall-clock faithful/dense %.2fx, "
                "faithful/bitmap %.2fx; counting sim faithful/bitmap %.2fx\n",
                bench.name.c_str(),
                faithful.count_host_s / dense.count_host_s,
                faithful.count_host_s / bitmap.count_host_s,
                faithful.count_sim_s / bitmap.count_sim_s);
  }
  print_table(countmode_table, args);

  std::printf("\n-- Determinism sanitizer (engine/detsan.h): replay "
              "overhead at the default sample rate vs off --\n");
  Table detsan_table({"dataset", "detsan", "total(s)", "overhead",
                      "replayed", "divergences"});
  for (const auto& bench : benches) {
    double base_s = 0.0;
    for (const auto& [label, enabled, x] :
         {std::tuple{"off", false, 0.0}, std::tuple{"on", true, 1.0}}) {
      engine::Context::Options ctx_opt{.cluster = sim::ClusterConfig::paper()};
      ctx_opt.detsan.enabled = enabled;
      engine::Context ctx(ctx_opt);
      simfs::SimFS fs(ctx.cluster());
      fim::YafimOptions opt;
      opt.min_support = bench.paper_min_support;
      const auto run = fim::yafim_mine(ctx, fs, bench.db, opt);
      const double total = run.total_seconds();
      if (!enabled) base_s = total;
      YAFIM_CHECK(ctx.detsan().divergences() == 0,
                  "stock YAFIM must replay clean");
      detsan_table.add_row(
          {bench.name, label, Table::num(total),
           Table::num(total / base_s, 3) + "x",
           Table::num(ctx.detsan().tasks_replayed()),
           Table::num(ctx.detsan().divergences())});
      // perf_gate.py: series x=0 detsan off, x=1 on; on <= off * 1.10.
      json.add("detsan_sim_s:" + bench.name, x, total);
    }
  }
  print_table(detsan_table, args);

  std::printf("\n-- Streaming micro-batches: per-batch simulated latency vs "
              "ingest interval (stream/miner.h) --\n");
  Table stream_table({"dataset", "batches", "interval(s)", "steady batch(s)",
                      "widenings", "slack", "itemsets"});
  for (const auto& bench : benches) {
    engine::Context ctx(
        engine::Context::Options{.cluster = sim::ClusterConfig::paper()});
    simfs::SimFS fs(ctx.cluster());
    stream::StreamOptions opt;
    opt.min_support = bench.paper_min_support;
    opt.num_batches = 12;
    opt.source.window_s = 5.0;
    // Stream the whole dataset exactly once across the run so the final
    // frontier reflects the full-dataset supports the other sections mine.
    opt.source.ingest_rate = static_cast<double>(bench.db.size()) /
                             (static_cast<double>(opt.num_batches) *
                              opt.source.window_s);
    const auto res = stream::stream_mine(ctx, fs, bench.db, opt);
    stream_table.add_row(
        {bench.name, Table::num(u64{res.batches.size()}),
         Table::num(res.ingest_interval_s, 2),
         Table::num(res.steady_batch_seconds(), 3),
         Table::num(res.widenings), Table::num(res.reverify_slack, 2),
         Table::num(res.itemsets.total())});
    for (const auto& batch : res.batches) {
      json.add("stream_batch_sim_s:" + bench.name,
               static_cast<double>(batch.batch), batch.sim_seconds);
    }
    json.add("stream_interval_s:" + bench.name, 0.0, res.ingest_interval_s);
  }
  print_table(stream_table, args);

  std::printf("\n-- Approximate mining (Toivonen sampling, fim/sampling.h): "
              "recall vs speed against exact YAFIM; precision is always 1 "
              "(verified supports) --\n");
  Table approx_table({"dataset", "p", "relax", "total(s)", "speedup",
                      "recall", "exact", "candidates", "border"});
  for (const auto& bench : benches) {
    engine::Context xctx(
        engine::Context::Options{.cluster = sim::ClusterConfig::paper()});
    simfs::SimFS xfs(xctx.cluster());
    fim::YafimOptions xopt;
    xopt.min_support = bench.paper_min_support;
    const auto exact_run = fim::yafim_mine(xctx, xfs, bench.db, xopt);
    const double exact_s = exact_run.total_seconds();
    json.add("approx_exact_sim_s:" + bench.name, 0.0, exact_s);

    double x = 0.0;
    for (const auto& [p, r] :
         {std::pair{0.1, 0.5}, std::pair{0.2, 0.5}, std::pair{0.2, 0.8},
          std::pair{0.5, 1.0}}) {
      engine::Context ctx(
          engine::Context::Options{.cluster = sim::ClusterConfig::paper()});
      simfs::SimFS fs(ctx.cluster());
      fim::SamplingOptions opt;
      opt.min_support = bench.paper_min_support;
      opt.sample_fraction = p;
      opt.relax = r;
      const auto sres = fim::sampling_mine(ctx, fs, bench.db, opt);
      // Soundness invariant, not a tolerance: every verified itemset must
      // be in the exact answer with the exact support.
      for (u32 k = 1; k <= sres.run.itemsets.max_k(); ++k) {
        for (const auto& [itemset, support] : sres.run.itemsets.level(k)) {
          YAFIM_CHECK(exact_run.itemsets.support_of(itemset) == support,
                      "approximate output disagrees with the exact miner");
        }
      }
      const double total = sres.run.total_seconds();
      const double recall =
          exact_run.itemsets.total() == 0
              ? 1.0
              : static_cast<double>(sres.run.itemsets.total()) /
                    static_cast<double>(exact_run.itemsets.total());
      approx_table.add_row(
          {bench.name, Table::num(p, 2), Table::num(r, 2), Table::num(total),
           Table::num(exact_s / total, 2) + "x", Table::num(recall, 4),
           sres.exact ? "yes" : "no", Table::num(sres.candidate_union),
           Table::num(sres.border_union)});
      json.add("approx_sim_s:" + bench.name, x, total);
      json.add("approx_recall:" + bench.name, x, recall);
      json.add("approx_exact:" + bench.name, x, sres.exact ? 1.0 : 0.0);
      x += 1.0;
    }
  }
  print_table(approx_table, args);

  std::printf("\n-- MapReduce job-combining strategies (Lin et al.) --\n");
  Table lin_table({"dataset", "strategy", "jobs", "speculative C",
                   "total(s)"});
  for (const auto& bench : benches) {
    for (const auto& [name, strategy] :
         {std::pair{"SPC", fim::CombineStrategy::kSinglePass},
          std::pair{"FPC", fim::CombineStrategy::kFixedPasses},
          std::pair{"DPC", fim::CombineStrategy::kDynamic}}) {
      engine::Context ctx(
          engine::Context::Options{.cluster = sim::ClusterConfig::paper()});
      simfs::SimFS fs(ctx.cluster());
      fim::LinOptions opt;
      opt.min_support = bench.paper_min_support;
      opt.strategy = strategy;
      const auto lin = fim::lin_mine(ctx, fs, bench.db, opt);
      lin_table.add_row({bench.name, name, Table::num(u64{lin.num_jobs}),
                         Table::num(lin.speculative_candidates),
                         Table::num(lin.run.total_seconds())});
    }
  }
  print_table(lin_table, args);
  finish(args, &json);
  return 0;
}
