#include "sim/cost_model.h"

#include <cmath>

namespace yafim::sim {

double CostModel::dfs_read_seconds(u64 bytes) const {
  // Blocks are spread over the cluster; every node streams its local share.
  const double streams = static_cast<double>(cluster_.nodes);
  return static_cast<double>(bytes) / (disk_bps() * streams);
}

double CostModel::dfs_write_seconds(u64 bytes) const {
  const double streams = static_cast<double>(cluster_.nodes);
  const double r = static_cast<double>(cluster_.hdfs_replication);
  const double disk = static_cast<double>(bytes) * r / (disk_bps() * streams);
  const double net =
      static_cast<double>(bytes) * (r - 1.0) / (net_bps() * streams);
  // Replication pipelines disk and network; the slower resource dominates.
  return disk > net ? disk : net;
}

double CostModel::shuffle_seconds(u64 bytes) const {
  const double streams = static_cast<double>(cluster_.nodes);
  const double spill = static_cast<double>(bytes) / (disk_bps() * streams);
  const double wire = static_cast<double>(bytes) / (net_bps() * streams);
  return spill + wire;
}

double CostModel::broadcast_seconds(u64 bytes) const {
  // Tree broadcast: latency grows with log2(nodes) hops, each hop streaming
  // the full payload.
  const double hops =
      std::ceil(std::log2(static_cast<double>(cluster_.nodes) + 1.0));
  return static_cast<double>(bytes) / net_bps() * hops;
}

double CostModel::naive_ship_seconds(u64 bytes, u64 tasks) const {
  // Every task pulls its own copy through the driver's single uplink.
  return static_cast<double>(bytes) * static_cast<double>(tasks) / net_bps();
}

}  // namespace yafim::sim
