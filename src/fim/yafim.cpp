#include "fim/yafim.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "engine/broadcast.h"
#include "engine/rdd.h"
#include "fim/bitmap.h"
#include "fim/candidate_gen.h"
#include "fim/count_core.h"
#include "fim/hash_tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/checksum.h"
#include "util/stopwatch.h"

namespace yafim::fim {

namespace {

/// Fill PassStats::sim_seconds (and the setup time) by pricing the stages
/// this run appended to the context's report.
void price_passes(engine::Context& ctx, size_t first_stage, MiningRun& run) {
  sim::SimReport slice;
  const auto& stages = ctx.report().stages();
  for (size_t i = first_stage; i < stages.size(); ++i) slice.add(stages[i]);
  const std::vector<double> by_pass = slice.pass_seconds(ctx.cost_model());
  run.setup_seconds = by_pass.empty() ? 0.0 : by_pass[0];
  for (PassStats& pass : run.passes) {
    // Passes restored from a checkpoint were not executed here; keep the
    // snapshot's numbers instead of zeroing them against this run's stages.
    if (pass.k <= run.resumed_pass) continue;
    pass.sim_seconds = pass.k < by_pass.size() ? by_pass[pass.k] : 0.0;
  }
}

}  // namespace

MiningRun yafim_mine(engine::Context& ctx, simfs::SimFS& fs,
                     const std::string& input_path,
                     const YafimOptions& options) {
  const size_t first_stage = ctx.report().stages().size();
  // Shuffle stages spill to the same filesystem the dataset lives on when
  // their buffers exceed the shuffle-buffer budget (engine/rdd.h).
  ctx.set_spill_fs(&fs);

  std::optional<obs::Span> mine_span;
  if (obs::enabled()) mine_span.emplace("yafim", "yafim:mine");

  // ---- Phase 0: load the dataset from HDFS into a cached RDD ----------
  ctx.set_pass(0);
  std::optional<obs::Span> load_span;
  if (obs::enabled()) load_span.emplace("yafim", "yafim:load");
  const std::vector<u8> raw = fs.read(input_path);
  TransactionDB db = TransactionDB::deserialize(raw);
  const u32 load_tasks =
      options.partitions ? options.partitions : ctx.default_partitions();
  // Parsing records through the input format costs record_parse_work per
  // record; Spark pays it exactly once here (the cached RDD keeps the
  // deserialized objects), vs once per job on the MapReduce substrate.
  // Snapshot the record count now -- db is released into the RDD below.
  const u64 parse_records = db.size();
  auto parse_stage = [&ctx, &raw, parse_records,
                      load_tasks](const std::string& label) {
    sim::StageRecord stage;
    stage.label = label;
    stage.kind = sim::StageKind::kSparkStage;
    stage.pass = ctx.pass();
    stage.tasks = sim::split_work(
        parse_records * (1 + ctx.cluster().record_parse_work), load_tasks);
    stage.dfs_read_bytes = raw.size();
    return stage;
  };
  ctx.record(parse_stage("load:textFile+parse"));

  const u64 num_transactions = db.size();
  const u64 min_count = db.min_support_count(options.min_support);
  MiningRun run;
  run.itemsets = FrequentItemsets(min_count, num_transactions);
  if (num_transactions == 0) return run;

  // Checkpoint/resume: the fingerprint binds snapshots to this exact input
  // and configuration, so a store populated by a different dataset, support
  // threshold or pass structure can never leak state into this run.
  const u32 combine = std::max<u32>(1, options.combine_passes);
  u64 fingerprint = 0;
  std::optional<CheckpointState> restored;
  if (options.checkpoint) {
    // count_mode and broadcast_mode are folded in because the modes price
    // stages differently: resuming a faithful run's snapshot into a dense
    // run (or a broadcast run's into a partitioned run) would splice
    // incompatible per-pass timings together.
    fingerprint = checkpoint_fingerprint(
        "yafim", xxh64(raw.data(), raw.size()), min_count,
        combine + (u64{static_cast<u32>(options.count_mode)} << 32) +
            (u64{static_cast<u32>(options.broadcast_mode)} << 36));
    restored = load_latest_snapshot(*options.checkpoint, fingerprint);
  }
  auto maybe_checkpoint = [&](u32 completed_pass,
                              const std::vector<Itemset>& frontier) {
    if (!options.checkpoint) return;
    price_passes(ctx, first_stage, run);  // snapshot carries priced passes
    CheckpointState state;
    state.fingerprint = fingerprint;
    state.pass = completed_pass;
    state.num_transactions = num_transactions;
    state.min_support_count = min_count;
    state.setup_seconds = run.setup_seconds;
    state.passes = run.passes;
    state.itemsets = run.itemsets;
    state.frontier = frontier;
    save_snapshot(*options.checkpoint, state);
  };

  // textFile(...).map(_.getTransaction()): the map keeps the cached RDD a
  // lineage child of driver-held data, so lost partitions are recomputable.
  auto transactions =
      ctx.parallelize(db.release(), options.partitions)
          .map([](const Transaction& t) { return t; })
          .named("transactions");
  if (options.cache_transactions) {
    transactions.persist();
    // Admit the cached partitions into the memory ledger (serialized size
    // as the resident estimate) so broadcast_fits sees them as pressure.
    ctx.memory_budget().note_cached(raw.size());
  }
  if (load_span) {
    load_span->arg("transactions", num_transactions);
    load_span->end();
  }

  // ---- Phase I: frequent 1-itemsets (Algorithm 2) ----------------------
  // Skipped entirely when a valid snapshot was restored: the snapshot holds
  // every completed level plus the frontier that seeds the next pass.
  std::vector<CountPair> level;
  std::vector<Itemset> frequent;
  u32 last_completed = 1;
  if (restored) {
    run.resumed_pass = restored->pass;
    run.passes = std::move(restored->passes);
    run.itemsets = std::move(restored->itemsets);
    frequent = std::move(restored->frontier);
    last_completed = restored->pass;
    obs::count(obs::CounterId::kCheckpointPassesSkipped, restored->pass);
    if (obs::enabled()) {
      obs::instant("yafim", "resume",
                   {{"pass", restored->pass},
                    {"itemsets", run.itemsets.total()}});
    }
  } else {
    ctx.set_pass(1);
    std::optional<obs::Span> pass1_span;
    if (obs::enabled()) pass1_span.emplace("yafim", "yafim:pass1");
    level =
        transactions
            .flat_map([](const Transaction& t) { return t; })
            .named("phase1:items")
            .map([](const Item& i) { return CountPair(Itemset{i}, 1); })
            .reduce_by_key([](u64 a, u64 b) { return a + b; }, 0,
                           ItemsetHash{}, "phase1:count")
            .named("phase1:counts")
            .filter([min_count](const CountPair& kv) {
              return kv.second >= min_count;
            })
            .named("phase1:frequent")
            .collect("phase1:collect");

    frequent.reserve(level.size());
    for (const auto& [itemset, support] : level) {
      run.itemsets.add(itemset, support);
      frequent.push_back(itemset);
    }
    run.passes.push_back(PassStats{1, level.size(), level.size(), 0.0});
    if (pass1_span) {
      pass1_span->arg("frequent", level.size());
      pass1_span->end();
    }
    maybe_checkpoint(1, frequent);
  }

  // ---- Phase II: Lk from L(k-1) (Algorithm 3) --------------------------
  // With combine_passes > 1, one cluster pass counts a batch of candidate
  // levels (levels beyond the first generated from candidates, a superset
  // of the true Ck -- results stay exact).
  //
  // kVerticalBitmap keeps a second cached RDD: one VerticalBitmapIndex per
  // transactions partition, built lazily on the first counting pass and
  // reused (cache-hit) by every later pass.
  std::optional<engine::RDD<VerticalBitmapIndex>> vertical;
  for (u32 k = last_completed + 1; !frequent.empty();) {
    if (options.stop_after_pass && last_completed >= options.stop_after_pass) {
      break;  // simulated crash: the last snapshot is the recovery point
    }
    ctx.set_pass(k);
    std::optional<obs::Span> pass_span;
    if (obs::enabled()) {
      pass_span.emplace("yafim", "yafim:pass" + std::to_string(k));
    }

    // Driver side: ap_gen + hash-tree builds, measured as driver work.
    std::optional<obs::Span> gen_span;
    if (obs::enabled()) {
      gen_span.emplace("driver",
                       "pass" + std::to_string(k) + ":ap_gen+buildHashTree");
    }
    engine::work::Scope driver_scope;
    std::vector<std::vector<Itemset>> batch;
    {
      std::vector<Itemset> base = frequent;
      for (u32 j = 0; j < combine; ++j) {
        // Guard speculative growth: generating level j+1 from a large
        // *unverified* level j is a combinatorial explosion (the join is
        // quadratic within shared-prefix groups). Verified levels (j == 0)
        // are always generated.
        if (j > 0 && base.size() > options.combine_candidate_budget) break;
        std::vector<Itemset> candidates = apriori_gen(base, k + j);
        if (candidates.empty()) break;
        if (j > 0 && candidates.size() > options.combine_candidate_budget) {
          break;  // count this level next batch, from verified sets
        }
        base = candidates;
        batch.push_back(std::move(candidates));
      }
    }
    if (batch.empty()) break;
    const u32 levels_in_batch = static_cast<u32>(batch.size());

    auto trees = std::make_shared<std::vector<HashTree>>();
    std::vector<u64> num_candidates;
    u64 tree_bytes = 0;
    for (auto& candidates : batch) {
      num_candidates.push_back(candidates.size());
      trees->emplace_back(std::move(candidates), options.branching,
                          options.leaf_capacity);
      tree_bytes += trees->back().serialized_bytes();
    }
    {
      if (gen_span) {
        u64 total_candidates = 0;
        for (u64 n : num_candidates) total_candidates += n;
        gen_span->arg("candidates", total_candidates);
        gen_span->arg("levels", levels_in_batch);
        gen_span->end();
      }
      sim::StageRecord gen;
      gen.label = "pass" + std::to_string(k) + ":ap_gen+buildHashTree";
      gen.kind = sim::StageKind::kOverhead;
      gen.pass = k;
      gen.driver_work = driver_scope.measured();
      ctx.record(std::move(gen));
    }

    // Graceful degradation (engine/memory.h): when this batch's trees
    // would not fit next to what the ledger already places on the tightest
    // executor, shard the candidate store over the cluster instead of
    // broadcasting it whole. The decision is re-taken every pass, so a
    // YAFIM_FAULT_MEM_* shrink mid-run degrades exactly the passes after
    // the trigger.
    const bool partitioned =
        options.broadcast_mode == BroadcastMode::kPartitioned ||
        (options.broadcast_mode == BroadcastMode::kAuto &&
         !ctx.memory_budget().broadcast_fits(tree_bytes));

    // Vertical mode: build the per-partition bitmap index once, on the
    // first counting pass; the persisted RDD serves every later pass from
    // cache, so candidate counting never rescans transactions again. A
    // partitioned pass re-partitions raw transactions instead of probing
    // the per-partition index, so it neither builds nor reads it.
    const bool bitmap_mode = options.count_mode == CountMode::kVerticalBitmap;
    const bool builds_vertical = bitmap_mode && !vertical && !partitioned;
    if (builds_vertical) {
      vertical.emplace(
          transactions
              .map_partitions([](const std::vector<Transaction>& part) {
                std::vector<VerticalBitmapIndex> out;
                out.emplace_back(part);
                return out;
              })
              .named("vertical:bitmaps"));
      vertical->persist();
    }

    // Without caching, Spark recomputes the transactions lineage from
    // HDFS on every action: charge the re-read and the re-parse. Bitmap
    // passes read the cached vertical index instead, so only the pass that
    // builds it pays the recompute.
    if (!options.cache_transactions &&
        (!bitmap_mode || builds_vertical || partitioned)) {
      ctx.record(
          parse_stage("pass" + std::to_string(k) + ":recompute lineage"));
    }

    // Batch-global candidate ids: tree-local index + per-level offset, so
    // one dense array spans every level counted this pass.
    const u64 id_space = HashTree::assign_id_offsets(*trees);

    // The counting job itself lives in fim/count_core.{h,cpp}, shared with
    // the streaming miner so both count through identical stages.
    CountCoreOptions count_opt;
    count_opt.count_mode = options.count_mode;
    count_opt.use_hash_tree = options.use_hash_tree;
    count_opt.partitioned = partitioned;
    count_opt.broadcast_shards = options.broadcast_shards;
    count_opt.branching = options.branching;
    count_opt.leaf_capacity = options.leaf_capacity;
    count_opt.kmin = k;  // smallest candidate size in this batch
    count_opt.min_count = min_count;
    count_opt.pass_name = "pass" + std::to_string(k);
    Stopwatch count_clock;
    level = count_candidate_trees(ctx, transactions, trees, tree_bytes,
                                  id_space, &vertical, count_opt);
    run.count_host_seconds += count_clock.seconds();

    // Split the mixed-size result back into levels.
    std::vector<std::vector<CountPair>> by_level(levels_in_batch);
    for (auto& [itemset, support] : level) {
      const u32 lvl = static_cast<u32>(itemset.size());
      YAFIM_CHECK(lvl >= k && lvl < k + levels_in_batch,
                  "unexpected itemset size in pass output");
      by_level[lvl - k].emplace_back(std::move(itemset), support);
    }
    for (u32 j = 0; j < levels_in_batch; ++j) {
      for (const auto& [itemset, support] : by_level[j]) {
        run.itemsets.add(itemset, support);
      }
      run.passes.push_back(PassStats{k + j, num_candidates[j],
                                     by_level[j].size(), 0.0});
    }
    if (pass_span) {
      u64 total_candidates = 0, total_frequent = 0;
      for (u64 n : num_candidates) total_candidates += n;
      for (const auto& lvl : by_level) total_frequent += lvl.size();
      if (levels_in_batch > 1) pass_span->arg("levels", levels_in_batch);
      pass_span->arg("candidates", total_candidates);
      pass_span->arg("frequent", total_frequent);
      pass_span->end();
    }

    frequent.clear();
    for (const auto& [itemset, support] : by_level[levels_in_batch - 1]) {
      (void)support;
      frequent.push_back(itemset);
    }
    last_completed = k + levels_in_batch - 1;
    maybe_checkpoint(last_completed, frequent);
    k += levels_in_batch;
  }

  ctx.set_pass(0);
  price_passes(ctx, first_stage, run);
  if (mine_span) {
    mine_span->arg("passes", run.passes.size());
    mine_span->arg("frequent_itemsets", run.itemsets.total());
    mine_span->end();
    obs::Tracer::instance().drain();
  }
  return run;
}

MiningRun yafim_mine(engine::Context& ctx, simfs::SimFS& fs,
                     const TransactionDB& db, const YafimOptions& options) {
  const std::string path = "hdfs://staging/yafim-input";
  fs.write(path, db.serialize());
  return yafim_mine(ctx, fs, path, options);
}

}  // namespace yafim::fim
