file(REMOVE_RECURSE
  "libyafim_simfs.a"
)
