#include "fim/son.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "fim/apriori_seq.h"
#include "fim/hash_tree.h"
#include "fim/mr_encode.h"
#include "mapreduce/job.h"

namespace yafim::fim {

namespace {

using CountPair = std::pair<Itemset, u64>;
using Spec = mr::JobSpec<Transaction, Itemset, u64, CountPair, ItemsetHash>;

std::vector<Transaction> decode_transactions(const std::vector<u8>& bytes) {
  return TransactionDB::deserialize(bytes).release();
}

void price_passes(engine::Context& ctx, size_t first_stage, MiningRun& run) {
  sim::SimReport slice;
  const auto& stages = ctx.report().stages();
  for (size_t i = first_stage; i < stages.size(); ++i) slice.add(stages[i]);
  const std::vector<double> by_pass = slice.pass_seconds(ctx.cost_model());
  run.setup_seconds = by_pass.empty() ? 0.0 : by_pass[0];
  for (PassStats& pass : run.passes) {
    pass.sim_seconds = pass.k < by_pass.size() ? by_pass[pass.k] : 0.0;
  }
}

}  // namespace

SonRun son_mine(engine::Context& ctx, simfs::SimFS& fs,
                const std::string& input_path, const SonOptions& options) {
  const size_t first_stage = ctx.report().stages().size();
  mr::JobRunner runner(ctx, fs);
  SonRun son;
  MiningRun& run = son.run;

  const u64 num_transactions =
      TransactionDB::deserialize(fs.read(input_path)).size();
  if (num_transactions == 0) {
    run.itemsets = FrequentItemsets(1, 0);
    return son;
  }
  const u64 min_count = min_count_ceil(options.min_support, num_transactions);
  run.itemsets = FrequentItemsets(min_count, num_transactions);

  // ---- Job 1: local Apriori per split, emit locally frequent itemsets --
  ctx.set_pass(1);
  Spec local;
  local.name = "son:local-mining";
  local.decode_input = decode_transactions;
  const double min_support = options.min_support;
  local.map_partition_fn = [min_support](std::span<const Transaction> split,
                                         mr::Emitter<Itemset, u64>& emit) {
    if (split.empty()) return;
    TransactionDB chunk(
        std::vector<Transaction>(split.begin(), split.end()));
    AprioriOptions opt;
    opt.min_support = min_support;
    // Local threshold rounding pinned to *ceil*: the SON completeness
    // argument is sum_i (ceil(s * n_i) - 1) < s * N, so ceil keeps every
    // globally frequent itemset locally frequent somewhere while admitting
    // the fewest false candidates. A floor here would not break
    // completeness but silently inflates false_candidates on small or
    // uneven splits (regression-tested in test_related_work.cpp).
    opt.min_count = min_count_ceil(min_support, split.size());
    const MiningRun local_run = apriori_mine(chunk, opt);
    for (auto& [itemset, support] : local_run.itemsets.sorted()) {
      emit.emit(itemset, 1);
    }
  };
  // Reducer deduplicates: value = number of splits where locally frequent.
  local.reduce_fn = [](const Itemset& key, std::vector<u64>& values)
      -> std::optional<CountPair> {
    return CountPair(key, values.size());
  };
  local.encode_output = encode_counts;
  local.num_mappers = options.num_mappers;
  local.num_reducers = options.num_reducers;
  auto candidates_result =
      runner.run(local, input_path, options.work_dir + "/candidates");
  son.candidate_union = candidates_result.output.size();
  run.passes.push_back(PassStats{1, son.candidate_union, 0, 0.0});

  // Driver reads the candidate union back and builds per-size hash trees.
  {
    sim::StageRecord read_back;
    read_back.label = "son:driver read candidates";
    read_back.kind = sim::StageKind::kOverhead;
    read_back.pass = 2;
    read_back.dfs_read_bytes = candidates_result.output_bytes;
    ctx.record(std::move(read_back));
  }
  ctx.set_pass(2);
  engine::work::Scope driver_scope;
  u32 max_size = 0;
  for (const auto& [itemset, unused] : candidates_result.output) {
    max_size = std::max<u32>(max_size, static_cast<u32>(itemset.size()));
  }
  std::vector<std::vector<Itemset>> by_size(max_size);
  for (auto& [itemset, unused] : candidates_result.output) {
    by_size[itemset.size() - 1].push_back(std::move(itemset));
  }
  auto trees = std::make_shared<std::vector<HashTree>>();
  u64 cache_bytes = 0;
  for (auto& level : by_size) {
    if (level.empty()) continue;
    trees->emplace_back(std::move(level), options.branching,
                        options.leaf_capacity);
    cache_bytes += trees->back().serialized_bytes();
  }
  {
    sim::StageRecord gen;
    gen.label = "son:build hash trees";
    gen.kind = sim::StageKind::kOverhead;
    gen.pass = 2;
    gen.driver_work = driver_scope.measured();
    ctx.record(std::move(gen));
  }

  // ---- Job 2: exact global counting of the candidate union -------------
  Spec global;
  global.name = "son:global-count";
  global.decode_input = decode_transactions;
  global.map_fn = [trees](const Transaction& t,
                          mr::Emitter<Itemset, u64>& emit) {
    static thread_local HashTree::Probe probe;
    for (const HashTree& tree : *trees) {
      tree.for_each_contained(t, probe, [&](u32 ci) {
        emit.emit(tree.candidate(ci), 1);
      });
    }
  };
  global.combine_fn = [](const u64& a, const u64& b) { return a + b; };
  global.reduce_fn = [min_count](const Itemset& key, std::vector<u64>& values)
      -> std::optional<CountPair> {
    u64 sum = 0;
    for (u64 v : values) sum += v;
    if (sum < min_count) return std::nullopt;
    return CountPair(key, sum);
  };
  global.encode_output = encode_counts;
  global.num_mappers = options.num_mappers;
  global.num_reducers = options.num_reducers;
  global.distributed_cache_bytes = cache_bytes;

  auto counted = runner.run(global, input_path, options.work_dir + "/L");
  for (const auto& [itemset, support] : counted.output) {
    run.itemsets.add(itemset, support);
  }
  son.false_candidates = son.candidate_union - counted.output.size();
  run.passes.push_back(
      PassStats{2, son.candidate_union, counted.output.size(), 0.0});
  // Backfill job 1's "frequent" with the exact total for reporting.
  run.passes[0].frequent = counted.output.size();

  ctx.set_pass(0);
  price_passes(ctx, first_stage, run);
  return son;
}

SonRun son_mine(engine::Context& ctx, simfs::SimFS& fs,
                const TransactionDB& db, const SonOptions& options) {
  const std::string path = "hdfs://staging/son-input";
  fs.write(path, db.serialize());
  return son_mine(ctx, fs, path, options);
}

}  // namespace yafim::fim
