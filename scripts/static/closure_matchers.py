#!/usr/bin/env python3
"""YL008: closure-purity static analysis for RDD combinator arguments.

The runtime sanitizer (engine/detsan.h, rule YL007) catches impure closures
by replaying sampled tasks; this is its static sibling: it flags closure
impurity *patterns* at the source level, before anything runs:

  ref-capture   by-reference capture ([&], [&name]) of mutable non-local
                state in a lambda passed to an RDD combinator or a
                MapReduce JobSpec slot. Task replay/retry re-runs such a
                closure against state another attempt already advanced.
  rng           calls to wall-clock / ambient randomness inside a closure:
                rand/srand/drand48, time/clock, std::random_device,
                std::chrono::*_clock::now. (The repo's seeded util::Rng is
                deterministic and allowed.)
  fp-reduce     floating-point accumulator parameters in reduce-family
                functions (reduce / reduce_by_key / aggregate_by_key /
                combine_fn / reduce_fn): FP addition is not associative,
                so the fold order leaks into the result.

Waivers (a comment on the call-site line or up to 3 lines above it):
  // detsan: tolerate-fp               suppresses fp-reduce only
  // detsan: tolerate-accumulator      suppresses ref-capture only (for
                                       engine::Accumulator side channels:
                                       commutative atomic adds that never
                                       feed the task's output)
  // detsan: intentional-divergence    suppresses everything (committed
                                       negative-control fixtures)

Engines:
  lexical (default)  self-contained: strips comments/strings, finds
                     combinator call sites, parses the OUTERMOST lambda
                     argument's capture list with balanced-delimiter
                     scanning. Nested lambdas capturing closure-locals by
                     reference (e.g. an on_hit callback inside a
                     map_partitions body) are deliberately not flagged --
                     closure-local state is re-created per replay.
  clang-query        emits the equivalent AST matchers and drives
                     clang-query over BUILD_DIR/compile_commands.json
                     (exported unconditionally by CMake). Requires LLVM
                     tooling on PATH; the CI container has none, so the
                     lexical engine is what the detsan lane runs.

Usage:
  closure_matchers.py [--engine=lexical|clang-query] [--build-dir=DIR]
                      [--fixtures] FILE...

Exit codes: 0 clean (or, with --fixtures, every impurity class detected);
1 findings (or a fixture class missed); 2 usage/environment error.
"""

import os
import re
import shutil
import subprocess
import sys
import tempfile

COMBINATOR_CALL = re.compile(
    r"(?:\.|->)\s*"
    r"(map|flat_map|filter|map_partitions|reduce|reduce_by_key|"
    r"aggregate_by_key|group_by_key)\s*\(")
JOBSPEC_SLOT = re.compile(
    r"\b(map_fn|map_partition_fn|combine_fn|reduce_fn)\s*=")
REDUCE_FAMILY = {
    "reduce", "reduce_by_key", "aggregate_by_key", "combine_fn", "reduce_fn",
}
RNG_PATTERNS = [
    (re.compile(r"\b(?:std\s*::\s*)?(rand|srand|drand48|lrand48)\s*\("),
     "calls {0}() (ambient randomness)"),
    (re.compile(r"\b(?:std\s*::\s*)?(time|clock)\s*\("),
     "calls {0}() (wall clock)"),
    (re.compile(r"\bstd\s*::\s*random_device\b"),
     "uses std::random_device (nondeterministic entropy)"),
    (re.compile(r"\bstd\s*::\s*chrono\s*::\s*\w*clock\s*::\s*now\b"),
     "reads a chrono clock (wall clock)"),
]
WAIVER_ALL = "detsan: intentional-divergence"
WAIVER_FP = "detsan: tolerate-fp"
WAIVER_ACC = "detsan: tolerate-accumulator"
WAIVER_WINDOW = 3  # call-site line plus this many lines above


class Finding:
    def __init__(self, path, line, op, kind, message):
        self.path = path
        self.line = line
        self.op = op
        self.kind = kind  # ref-capture | rng | fp-reduce
        self.message = message

    def render(self):
        return (f"YL008 {self.path}:{self.line}: lambda passed to "
                f"{self.op}: {self.message}")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving offsets."""
    out = list(text)
    i, n = 0, len(text)

    def blank(a, b):
        for j in range(a, b):
            if out[j] != "\n":
                out[j] = " "

    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            blank(i, j)
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            blank(i, j + 2)
            i = j + 2
        elif c in "\"'":
            # Raw strings would need delimiter tracking; the repo has none.
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            blank(i + 1, min(j, n))
            i = min(j, n) + 1
        else:
            i += 1
    return "".join(out)


def match_balanced(text, start, open_ch, close_ch):
    """Offset one past the delimiter closing text[start] (== open_ch)."""
    assert text[start] == open_ch
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def split_top_level_args(text):
    """Split an argument-list body on top-level commas; returns spans."""
    spans = []
    depth = 0
    start = 0
    for i, c in enumerate(text):
        # Angle brackets are NOT tracked: '>' appears in '->' and '>>' far
        # more often than in top-level template argument lists, and a
        # mis-split from an untracked '<A, B>' can never break lambda
        # detection (a lambda-adjacent comma always sits inside [], () or
        # {} -- all tracked).
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth = max(0, depth - 1)
        elif c == "," and depth == 0:
            spans.append((start, i))
            start = i + 1
    spans.append((start, len(text)))
    return spans


class Lambda:
    def __init__(self, captures, params, body):
        self.captures = captures
        self.params = params
        self.body = body


def parse_lambda(text, start):
    """Parse a lambda starting at text[start] == '['; None if not one."""
    cap_end = match_balanced(text, start, "[", "]")
    captures = text[start + 1:cap_end - 1]
    i = cap_end
    while i < len(text) and text[i].isspace():
        i += 1
    params = ""
    if i < len(text) and text[i] == "(":
        par_end = match_balanced(text, i, "(", ")")
        params = text[i + 1:par_end - 1]
        i = par_end
    # Skip specifiers / trailing return type up to the body.
    while i < len(text) and text[i] != "{":
        if text[i] == ";" or text[i] == ")":
            return None  # not a lambda (e.g. an array subscript)
        i += 1
    if i >= len(text):
        return None
    body_end = match_balanced(text, i, "{", "}")
    return Lambda(captures, params, text[i + 1:body_end - 1])


def ref_captures(capture_list):
    """The by-reference entries of a capture list ('&', '&name')."""
    bad = []
    for entry in capture_list.split(","):
        entry = entry.strip()
        if not entry:
            continue
        if "=" in entry and not entry.startswith("&"):
            continue  # init-capture by value: [x = expr]
        if entry == "&" or (entry.startswith("&") and "=" not in entry):
            bad.append(entry)
    return bad


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def waiver_lines(original_text):
    """Map line number -> waiver kind for every waiver comment."""
    waivers = {}
    for lineno, line in enumerate(original_text.splitlines(), start=1):
        if WAIVER_ALL in line:
            waivers[lineno] = "all"
        elif WAIVER_FP in line:
            waivers.setdefault(lineno, "fp")
        elif WAIVER_ACC in line:
            waivers.setdefault(lineno, "acc")
    return waivers


def waived(waivers, call_line, kind):
    for lineno in range(call_line - WAIVER_WINDOW, call_line + 1):
        w = waivers.get(lineno)
        if (w == "all" or (w == "fp" and kind == "fp-reduce") or
                (w == "acc" and kind == "ref-capture")):
            return True
    return False


def check_lambda(path, stripped, lam, op, call_line, waivers, findings):
    for entry in ref_captures(lam.captures):
        if waived(waivers, call_line, "ref-capture"):
            continue
        what = ("default by-reference capture [&]" if entry == "&"
                else f"by-reference capture '{entry}'")
        findings.append(Finding(
            path, call_line, op, "ref-capture",
            f"{what} of mutable non-local state; task replay/retry re-runs "
            f"the closure against already-advanced state"))
    for pattern, template in RNG_PATTERNS:
        m = pattern.search(lam.body)
        if m and not waived(waivers, call_line, "rng"):
            name = m.group(1) if m.groups() else ""
            findings.append(Finding(
                path, call_line, op, "rng", template.format(name)))
    if op in REDUCE_FAMILY and re.search(r"\b(double|float)\b", lam.params):
        if not waived(waivers, call_line, "fp-reduce"):
            findings.append(Finding(
                path, call_line, op, "fp-reduce",
                "floating-point accumulation is not associative; the fold "
                "order leaks into the result "
                "(waive with '// detsan: tolerate-fp' if tolerated)"))


def scan_file(path, findings):
    with open(path, encoding="utf-8", errors="replace") as f:
        original = f.read()
    stripped = strip_comments_and_strings(original)
    waivers = waiver_lines(original)

    for m in COMBINATOR_CALL.finditer(stripped):
        op = m.group(1)
        paren = m.end() - 1
        call_line = line_of(stripped, m.start())
        args_end = match_balanced(stripped, paren, "(", ")")
        args = stripped[paren + 1:args_end - 1]
        for a, b in split_top_level_args(args):
            arg = args[a:b]
            bracket = arg.find("[")
            if bracket < 0 or arg[:bracket].strip():
                continue  # not a direct lambda argument
            lam = parse_lambda(args, a + bracket)
            if lam:
                check_lambda(path, stripped, lam, op, call_line, waivers,
                             findings)

    for m in JOBSPEC_SLOT.finditer(stripped):
        op = m.group(1)
        call_line = line_of(stripped, m.start())
        i = m.end()
        while i < len(stripped) and stripped[i].isspace():
            i += 1
        if i < len(stripped) and stripped[i] == "[":
            lam = parse_lambda(stripped, i)
            if lam:
                check_lambda(path, stripped, lam, op, call_line, waivers,
                             findings)


CLANG_QUERY_MATCHERS = r"""
# Equivalent AST matchers for the lexical checks above (clang-query -f).
# ref-capture: lambdas with a by-reference capture passed to a combinator.
set output diag
match lambdaExpr(
  hasAnyCapture(lambdaCapture(capturesVar(varDecl())).bind("cap")),
  hasAncestor(callExpr(callee(cxxMethodDecl(hasAnyName(
    "map", "flat_map", "filter", "map_partitions", "reduce",
    "reduce_by_key", "aggregate_by_key"))))))
# rng: ambient randomness / wall clock inside any lambda body.
match callExpr(
  callee(functionDecl(hasAnyName("rand", "srand", "time", "clock",
                                 "drand48", "lrand48"))),
  hasAncestor(lambdaExpr()))
match cxxConstructExpr(
  hasType(cxxRecordDecl(hasName("::std::random_device"))),
  hasAncestor(lambdaExpr()))
# fp-reduce: floating-point parameters on reduce-family arguments.
match lambdaExpr(
  has(cxxMethodDecl(hasAnyParameter(hasType(realFloatingPointType())))),
  hasAncestor(callExpr(callee(cxxMethodDecl(hasAnyName(
    "reduce", "reduce_by_key", "aggregate_by_key"))))))
"""


def run_clang_query(build_dir, files):
    binary = os.environ.get("CLANG_QUERY", "clang-query")
    if not shutil.which(binary):
        print(f"error: {binary} not found; use --engine=lexical "
              f"(or set CLANG_QUERY)", file=sys.stderr)
        return 2
    db = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db):
        print(f"error: {db} not found; configure first: "
              f"cmake -B {build_dir} -S .", file=sys.stderr)
        return 2
    with tempfile.NamedTemporaryFile("w", suffix=".cq", delete=False) as f:
        f.write(CLANG_QUERY_MATCHERS)
        script = f.name
    try:
        tus = [p for p in files if p.endswith(".cpp")]
        proc = subprocess.run([binary, "-p", build_dir, "-f", script] + tus,
                              capture_output=True, text=True)
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        matches = proc.stdout.count("Match #")
        if proc.returncode != 0:
            return 2
        if matches:
            print(f"closure check (clang-query): {matches} finding(s)")
            return 1
        print("closure check (clang-query): clean")
        return 0
    finally:
        os.unlink(script)


def main(argv):
    engine = "lexical"
    build_dir = "build"
    fixtures = False
    files = []
    for arg in argv[1:]:
        if arg.startswith("--engine="):
            engine = arg.split("=", 1)[1]
        elif arg.startswith("--build-dir="):
            build_dir = arg.split("=", 1)[1]
        elif arg == "--fixtures":
            fixtures = True
        elif arg.startswith("-"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            files.append(arg)
    if not files:
        print("error: no input files (pass paths, usually via "
              "scripts/closure_check.sh)", file=sys.stderr)
        return 2
    if engine == "clang-query":
        return run_clang_query(build_dir, files)
    if engine != "lexical":
        print(f"error: unknown engine '{engine}'", file=sys.stderr)
        return 2

    findings = []
    for path in files:
        scan_file(path, findings)
    for finding in findings:
        print(finding.render())

    if fixtures:
        # Negative-control mode: every impurity class must be detected.
        kinds = {f.kind for f in findings}
        missing = {"ref-capture", "rng", "fp-reduce"} - kinds
        if missing:
            print(f"closure check: fixture classes NOT detected: "
                  f"{', '.join(sorted(missing))}", file=sys.stderr)
            return 1
        print(f"closure check: all fixture classes detected "
              f"({len(findings)} finding(s))")
        return 0
    if findings:
        print(f"closure check: {len(findings)} finding(s) in "
              f"{len(files)} file(s)")
        return 1
    print(f"closure check: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
