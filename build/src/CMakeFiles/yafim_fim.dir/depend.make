# Empty dependencies file for yafim_fim.
# This may be replaced when dependencies are built.
