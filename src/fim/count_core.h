// Shared candidate-counting core for the level-wise miners.
//
// One cluster counting job: given a batch of candidate hash trees (one per
// level) and a transactions RDD, produce the support of every candidate at
// or above a threshold. This is the Phase-II inner loop of yafim_mine,
// extracted verbatim -- stage labels, cost pricing, ledger/linter notes and
// obs counters are unchanged -- so that the batch miner and the streaming
// micro-batch miner (stream/miner.h) count through the exact same code and
// stay bit-identical with each other per batch of transactions.
//
// Four paths, selected by (count_mode, partitioned):
//   * kItemsetKey      -- paper-faithful: per-hit itemset copies keyed into
//                         a reduce_by_key shuffle.
//   * kCandidateId     -- dense per-partition u64 arrays indexed by
//                         batch-global candidate id, merged via sum_arrays.
//   * kVerticalBitmap  -- cached per-partition VerticalBitmapIndex answers
//                         each candidate with AND + popcount.
//   * partitioned      -- any mode degrades here when the trees outgrow the
//                         executor budget: trees sharded by candidate
//                         prefix, transactions routed to their shards.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/context.h"
#include "engine/rdd.h"
#include "fim/bitmap.h"
#include "fim/hash_tree.h"
#include "fim/itemset.h"

namespace yafim::fim {

/// (itemset, support) -- the currency of every counting path.
using CountPair = std::pair<Itemset, u64>;

struct CountCoreOptions {
  CountMode count_mode = CountMode::kItemsetKey;
  /// Probe via the hash tree (true) or linear candidate scans (false).
  bool use_hash_tree = true;
  /// Use the partitioned candidate store instead of broadcasting the trees
  /// whole (the caller takes the fits/doesn't-fit decision per pass).
  bool partitioned = false;
  /// Shard count for the partitioned store; 0 = ctx.default_partitions().
  u32 broadcast_shards = 0;
  /// Hash-tree shape, for re-building shard trees.
  u32 branching = 8;
  u32 leaf_capacity = 32;
  /// Smallest candidate size in the batch (routing viability cutoff).
  u32 kmin = 2;
  /// Only candidates with support >= min_count are returned. Pass 1 to get
  /// every candidate with nonzero support (plus zero-support candidates are
  /// always dropped: min_count >= 1 by construction).
  u64 min_count = 1;
  /// Stage-label prefix ("pass3", "batch0007:reverify", ...).
  std::string pass_name;
};

/// Count every candidate in `trees` against `transactions` and return those
/// with support >= opt.min_count. `tree_bytes` is the serialized size of
/// the batch (broadcast pricing + fallback ledger note); `id_space` the
/// batch-global dense id space (HashTree::assign_id_offsets). `vertical`
/// may be null except in non-partitioned kVerticalBitmap mode, where it
/// must point to an engaged optional holding the per-partition index RDD.
std::vector<CountPair> count_candidate_trees(
    engine::Context& ctx, engine::RDD<Transaction>& transactions,
    const std::shared_ptr<std::vector<HashTree>>& trees, u64 tree_bytes,
    u64 id_space, std::optional<engine::RDD<VerticalBitmapIndex>>* vertical,
    const CountCoreOptions& opt);

}  // namespace yafim::fim
