file(REMOVE_RECURSE
  "CMakeFiles/yafim_sim.dir/sim/cost_model.cpp.o"
  "CMakeFiles/yafim_sim.dir/sim/cost_model.cpp.o.d"
  "CMakeFiles/yafim_sim.dir/sim/makespan.cpp.o"
  "CMakeFiles/yafim_sim.dir/sim/makespan.cpp.o.d"
  "CMakeFiles/yafim_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/yafim_sim.dir/sim/metrics.cpp.o.d"
  "libyafim_sim.a"
  "libyafim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yafim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
