#include "datagen/benchmarks.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

#include "util/log.h"

namespace yafim::datagen {

namespace {

u64 scaled(u64 n, double scale) {
  return std::max<u64>(1, static_cast<u64>(std::llround(
                              static_cast<double>(n) * scale)));
}

/// YAFIM_DATASET_CACHE lookup-or-generate (see kDatagenFormatVersion).
/// Writes go through a temp file + rename so a killed bench never leaves a
/// truncated entry behind for the next run to trip over.
fim::TransactionDB cached_db(
    const std::string& name, double scale, u64 seed,
    const std::function<fim::TransactionDB()>& generate) {
  const char* cache_dir = std::getenv("YAFIM_DATASET_CACHE");
  if (cache_dir == nullptr || *cache_dir == '\0') return generate();

  namespace stdfs = std::filesystem;
  std::ostringstream key;
  key << name << "-scale" << scale << "-seed" << seed << "-v"
      << kDatagenFormatVersion << ".tdb";
  std::error_code ec;
  stdfs::create_directories(cache_dir, ec);
  const stdfs::path path = stdfs::path(cache_dir) / key.str();

  if (stdfs::exists(path, ec)) {
    std::ifstream in(path, std::ios::binary);
    std::vector<u8> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    if (in.good() || in.eof()) {
      log_debug("dataset cache hit: %s", path.string().c_str());
      return fim::TransactionDB::deserialize(bytes);
    }
  }

  fim::TransactionDB db = generate();
  const std::vector<u8> bytes = db.serialize();
  const stdfs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      stdfs::remove(tmp, ec);
      return db;  // cache write failure never fails the bench
    }
  }
  stdfs::rename(tmp, path, ec);
  if (ec) stdfs::remove(tmp, ec);
  return db;
}

/// A planted pattern over attributes [first, first + size) at value 0.
PlantedPattern plant(u32 first, u32 size, double prob) {
  PlantedPattern p;
  p.prob = prob;
  for (u32 a = first; a < first + size; ++a) p.cells.emplace_back(a, 0);
  return p;
}

}  // namespace

BenchmarkDataset make_mushroom(double scale, u64 seed) {
  // 23 categorical attributes; domains chosen to total 119 items:
  // 19 attributes with 5 values + 4 with 6 values = 95 + 24 = 119.
  DenseSpec spec;
  spec.num_transactions = scaled(8124, scale);
  spec.attr_values.assign(19, 5);
  spec.attr_values.insert(spec.attr_values.end(), 4, 6);
  spec.value_skew = 2.2;
  spec.seed = seed;
  // At Sup = 35% the planted lattice reaches depth 8 (paper Fig. 3a shows
  // ~8 passes); the overlapping 5-pattern enriches the mid levels.
  spec.planted.push_back(plant(/*first=*/0, /*size=*/8, /*prob=*/0.42));
  spec.planted.push_back(plant(/*first=*/5, /*size=*/5, /*prob=*/0.55));

  BenchmarkDataset out;
  out.name = "MushRoom";
  out.db = cached_db("mushroom", scale, seed,
                     [&] { return generate_dense(spec); });
  out.paper_min_support = 0.35;
  out.paper_num_transactions = 8124;
  out.paper_num_items = 119;
  return out;
}

BenchmarkDataset make_t10i4d100k(double scale, u64 seed) {
  QuestParams params;
  params.num_transactions = scaled(100000, scale);
  params.avg_transaction_len = 10.0;
  params.num_items = 870;
  // More patterns than the classic generator's default: spreads popularity
  // so L1 at Sup = 0.25% lands near the real dataset's ~560 frequent items
  // (and C2 in the ~150k range), making this the compute-bound benchmark.
  params.num_patterns = 900;
  params.avg_pattern_len = 4.0;
  params.correlation = 0.5;
  params.corruption_mean = 0.5;
  params.seed = seed;

  BenchmarkDataset out;
  out.name = "T10I4D100K";
  out.db = cached_db("t10i4d100k", scale, seed,
                     [&] { return generate_quest(params); });
  out.paper_min_support = 0.0025;
  out.paper_num_transactions = 100000;
  out.paper_num_items = 870;
  return out;
}

BenchmarkDataset make_chess(double scale, u64 seed) {
  // 37 attributes; 36 binary + one ternary = 75 items (Table I).
  DenseSpec spec;
  spec.num_transactions = scaled(3196, scale);
  spec.attr_values.assign(36, 2);
  spec.attr_values.push_back(3);
  spec.value_skew = 1.0;  // binary noise attrs at fair-coin rate
  spec.seed = seed;
  // Chess is the paper's deepest benchmark (Sup = 85%, long iteration
  // tail): an 11-deep planted lattice puts ~12 passes in Fig. 3c.
  spec.planted.push_back(plant(/*first=*/0, /*size=*/11, /*prob=*/0.90));
  // A second, overlapping lattice keeps prune behaviour non-trivial.
  spec.planted.push_back(plant(/*first=*/8, /*size=*/5, /*prob=*/0.87));

  BenchmarkDataset out;
  out.name = "Chess";
  out.db = cached_db("chess", scale, seed,
                     [&] { return generate_dense(spec); });
  out.paper_min_support = 0.85;
  out.paper_num_transactions = 3196;
  out.paper_num_items = 75;
  return out;
}

BenchmarkDataset make_pumsb_star(double scale, u64 seed) {
  // 50 census attributes with large domains: 38 x 42 + 12 x 41 = 2088
  // items (Table I), average transaction length 50.
  DenseSpec spec;
  spec.num_transactions = scaled(49046, scale);
  spec.attr_values.assign(38, 42);
  spec.attr_values.insert(spec.attr_values.end(), 12, 41);
  spec.value_skew = 3.2;
  spec.seed = seed;
  // Sup = 65%: a 9-deep lattice planted at 72%.
  spec.planted.push_back(plant(/*first=*/0, /*size=*/9, /*prob=*/0.72));
  spec.planted.push_back(plant(/*first=*/6, /*size=*/5, /*prob=*/0.70));

  BenchmarkDataset out;
  out.name = "Pumsb_star";
  out.db = cached_db("pumsb_star", scale, seed,
                     [&] { return generate_dense(spec); });
  out.paper_min_support = 0.65;
  out.paper_num_transactions = 49046;
  out.paper_num_items = 2088;
  return out;
}

BenchmarkDataset make_medical(double scale, u64 seed) {
  MedicalParams params;
  params.num_cases = scaled(40000, scale);
  params.seed = seed;

  BenchmarkDataset out;
  out.name = "Medical";
  out.db = cached_db("medical", scale, seed,
                     [&] { return generate_medical(params).db; });
  out.paper_min_support = 0.03;
  out.paper_num_transactions = params.num_cases;
  out.paper_num_items = params.num_codes;
  return out;
}

std::vector<BenchmarkDataset> make_paper_benchmarks(double scale) {
  std::vector<BenchmarkDataset> out;
  out.push_back(make_mushroom(scale));
  out.push_back(make_t10i4d100k(scale));
  out.push_back(make_chess(scale));
  out.push_back(make_pumsb_star(scale));
  return out;
}

}  // namespace yafim::datagen
