// Accumulators: Spark's other shared-variable primitive (broadcast's
// write-only sibling). Tasks add() into them; only the driver read()s.
// Used for cheap cluster-wide counters (records filtered, candidates
// pruned) without a dedicated reduce.
//
// Implementation: sharded atomics to avoid cross-thread contention on the
// host pool; value() sums the shards. Adds are associative-commutative by
// contract, exactly like Spark's.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <thread>

#include "util/common.h"
#include "util/rng.h"

namespace yafim::engine {

/// An integral accumulator shared between driver and tasks.
class Accumulator {
 public:
  Accumulator() {
    for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
  }

  /// Called from tasks (any thread).
  void add(u64 delta) {
    shard_for_thread().value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Driver-side read. Only exact once all tasks of the stage finished
  /// (which actions guarantee).
  u64 value() const {
    u64 total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() {
    for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {  // one cache line each
    std::atomic<u64> value;
  };

  Shard& shard_for_thread() {
    const u64 tid =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return shards_[mix64(tid) % kShards];
  }

  static constexpr size_t kShards = 16;
  std::array<Shard, kShards> shards_;
};

}  // namespace yafim::engine
