// Tests for approximate mining by sampling (fim/sampling.h): the shared
// ceil threshold helper, negative-border construction vs brute force,
// seeded-sample determinism across counting paths, the Toivonen exactness
// truth-table, SON-as-a-special-case bit-identity, and the two-pass
// guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fim/apriori_seq.h"
#include "fim/sampling.h"
#include "fim/son.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

engine::Context::Options small_cluster() {
  engine::Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(3);
  opts.host_threads = 4;
  return opts;
}

TransactionDB random_db(u32 universe, int transactions, double density,
                        u64 seed) {
  Rng rng(seed);
  std::vector<Transaction> tx;
  for (int i = 0; i < transactions; ++i) {
    Transaction t;
    for (u32 item = 0; item < universe; ++item) {
      if (rng.bernoulli(density)) t.push_back(item);
    }
    if (t.empty()) t.push_back(static_cast<Item>(rng.below(universe)));
    tx.push_back(std::move(t));
  }
  return TransactionDB(std::move(tx));
}

FrequentItemsets reference(const TransactionDB& db, double min_support) {
  AprioriOptions opt;
  opt.min_support = min_support;
  return apriori_mine(db, opt).itemsets;
}

SamplingRun mine(const TransactionDB& db, const SamplingOptions& opt) {
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  return sampling_mine(ctx, fs, db, opt);
}

/// Every output itemset must carry its exact full-data support and clear
/// the global threshold -- precision is 1 even when the run is inexact.
void expect_sound(const SamplingRun& sres, const TransactionDB& db,
                  double min_support) {
  const u64 min_count = min_count_ceil(min_support, db.size());
  for (u32 k = 1; k <= sres.run.itemsets.max_k(); ++k) {
    for (const auto& [itemset, support] : sres.run.itemsets.level(k)) {
      EXPECT_EQ(support, db.support(itemset)) << to_string(itemset);
      EXPECT_GE(support, min_count) << to_string(itemset);
    }
  }
}

// ---------------- min_count_ceil (the pinned rounding rule) -------------

TEST(MinCountCeil, CeilNotFloor) {
  // 0.5 * 5 = 2.5: ceil gives 3; a floor (the classic off-by-one in local
  // SON thresholds) would give 2 and admit spurious local candidates.
  EXPECT_EQ(min_count_ceil(0.5, 5), 3u);
  EXPECT_EQ(min_count_ceil(0.25, 10), 3u);  // 2.5 -> 3
  EXPECT_EQ(min_count_ceil(0.3, 10), 3u);   // exactly 3.0 stays 3
  EXPECT_EQ(min_count_ceil(0.2, 10), 2u);
  EXPECT_EQ(min_count_ceil(1.0, 7), 7u);
}

TEST(MinCountCeil, ExactMultiplesDoNotRoundUp) {
  // 1/3 * 3 = 0.999...: the epsilon guard keeps an exact multiple from
  // drifting one past its true ceiling.
  EXPECT_EQ(min_count_ceil(1.0 / 3.0, 3), 1u);
  EXPECT_EQ(min_count_ceil(0.1, 30), 3u);
  EXPECT_EQ(min_count_ceil(0.7, 10), 7u);
}

TEST(MinCountCeil, FlooredAtOne) {
  EXPECT_EQ(min_count_ceil(0.0001, 100), 1u);
  EXPECT_EQ(min_count_ceil(0.5, 0), 1u);  // empty split: threshold 1
}

// ---------------- negative border vs brute force ------------------------

/// Brute-force Bd^-(F): every subset of `universe` (up to max_k + 1) that
/// is not frequent but all of whose size-(k-1) subsets are.
std::vector<Itemset> brute_border(const FrequentItemsets& frequent,
                                  const std::vector<Item>& universe) {
  std::vector<Itemset> border;
  const u32 n = static_cast<u32>(universe.size());
  const u32 max_size = frequent.max_k() + 1;
  for (u32 mask = 1; mask < (1u << n); ++mask) {
    Itemset s;
    for (u32 bit = 0; bit < n; ++bit) {
      if (mask & (1u << bit)) s.push_back(universe[bit]);
    }
    if (s.size() > max_size || frequent.contains(s)) continue;
    bool minimal = true;
    for (u32 skip = 0; skip < s.size() && minimal; ++skip) {
      Itemset sub;
      for (u32 i = 0; i < s.size(); ++i) {
        if (i != skip) sub.push_back(s[i]);
      }
      if (!sub.empty() && !frequent.contains(sub)) minimal = false;
    }
    if (minimal) border.push_back(std::move(s));
  }
  std::sort(border.begin(), border.end());
  return border;
}

TEST(NegativeBorder, MatchesBruteForce) {
  for (u64 seed : {11u, 12u, 13u}) {
    const auto db = random_db(8, 60, 0.4, seed);
    std::vector<Item> universe;
    for (u32 item = 0; item < 8; ++item) universe.push_back(item);
    const auto frequent = reference(db, 0.25);
    auto got = negative_border(frequent, universe);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute_border(frequent, universe)) << "seed " << seed;
  }
}

TEST(NegativeBorder, EmptyFrequentSetBordersEveryItem) {
  FrequentItemsets empty(10, 100);
  const std::vector<Item> universe{2, 5, 9};
  auto border = negative_border(empty, universe);
  std::sort(border.begin(), border.end());
  EXPECT_EQ(border,
            (std::vector<Itemset>{Itemset{2}, Itemset{5}, Itemset{9}}));
}

TEST(NegativeBorder, CoversUniverseItemsTheSampleNeverDrew) {
  // Item 7 is in the full universe but absent from the (sampled) frequent
  // set: it must appear in the border, or a miss could go uncertified.
  FrequentItemsets frequent(1, 10);
  frequent.add({3}, 5);
  const std::vector<Item> universe{3, 7};
  const auto border = negative_border(frequent, universe);
  EXPECT_NE(std::find(border.begin(), border.end(), Itemset{7}),
            border.end());
}

// ---------------- seeded determinism ------------------------------------

TEST(Sampling, SeededDeterminismAcrossCountModesAndBroadcast) {
  const auto db = random_db(16, 300, 0.35, 21);
  SamplingOptions base;
  base.min_support = 0.2;
  base.sample_fraction = 0.3;
  base.num_samples = 4;
  base.relax = 0.5;
  base.seed = 7;

  const SamplingRun first = mine(db, base);
  for (CountMode mode : {CountMode::kItemsetKey, CountMode::kCandidateId,
                         CountMode::kVerticalBitmap}) {
    for (BroadcastMode bmode :
         {BroadcastMode::kAuto, BroadcastMode::kPartitioned}) {
      SamplingOptions opt = base;
      opt.count_mode = mode;
      opt.broadcast_mode = bmode;
      const SamplingRun sres = mine(db, opt);
      EXPECT_TRUE(sres.run.itemsets.same_itemsets(first.run.itemsets));
      EXPECT_EQ(sres.candidate_union, first.candidate_union);
      EXPECT_EQ(sres.border_union, first.border_union);
      EXPECT_EQ(sres.false_candidates, first.false_candidates);
      EXPECT_EQ(sres.border_survivors, first.border_survivors);
      EXPECT_EQ(sres.exact, first.exact);
      EXPECT_DOUBLE_EQ(sres.miss_bound, first.miss_bound);
      EXPECT_EQ(sres.sample_sizes, first.sample_sizes);
    }
  }
  // An uncached lineage recomputes the parse but must not change results.
  SamplingOptions uncached = base;
  uncached.cache_transactions = false;
  const SamplingRun sres = mine(db, uncached);
  EXPECT_TRUE(sres.run.itemsets.same_itemsets(first.run.itemsets));
  EXPECT_EQ(sres.sample_sizes, first.sample_sizes);
}

TEST(Sampling, DifferentSeedsDrawDifferentSamples) {
  const auto db = random_db(16, 300, 0.35, 22);
  SamplingOptions opt;
  opt.min_support = 0.2;
  opt.sample_fraction = 0.3;
  opt.seed = 1;
  const auto a = mine(db, opt);
  opt.seed = 2;
  const auto b = mine(db, opt);
  EXPECT_NE(a.sample_sizes, b.sample_sizes);
}

// ---------------- exactness truth-table ---------------------------------

TEST(Sampling, FullSampleIsAlwaysExact) {
  // p = 1, one sample, no relaxation: the sample IS the dataset, its
  // border cannot survive, so the certificate must fire deterministically.
  const auto db = random_db(14, 200, 0.4, 31);
  const auto ref = reference(db, 0.2);
  SamplingOptions opt;
  opt.min_support = 0.2;
  opt.sample_fraction = 1.0;
  opt.num_samples = 1;
  opt.relax = 1.0;
  const auto sres = mine(db, opt);
  EXPECT_TRUE(sres.exact);
  EXPECT_EQ(sres.border_survivors, 0u);
  EXPECT_DOUBLE_EQ(sres.miss_bound, 0.0);
  EXPECT_EQ(sres.sample_sizes, (std::vector<u64>{db.size()}));
  EXPECT_TRUE(sres.run.itemsets.same_itemsets(ref));
  EXPECT_EQ(sres.false_candidates, 0u);
}

TEST(Sampling, ExactRunMatchesExactMiner) {
  // Default-ish parameters: generous samples at a relaxed threshold. The
  // certificate (seed-pinned) holds, so the verified output must be
  // bit-identical to the exact reference.
  const auto db = random_db(16, 300, 0.35, 32);
  const auto ref = reference(db, 0.2);
  SamplingOptions opt;
  opt.min_support = 0.2;
  opt.sample_fraction = 0.3;
  opt.num_samples = 4;
  opt.relax = 0.5;
  opt.seed = 42;
  const auto sres = mine(db, opt);
  ASSERT_TRUE(sres.exact);
  EXPECT_TRUE(sres.run.itemsets.same_itemsets(ref));
  expect_sound(sres, db, 0.2);
  EXPECT_GE(sres.candidate_union, ref.total());
}

TEST(Sampling, SurvivingBorderForcesInexact) {
  // One tiny sample with no relaxation: it cannot see every frequent
  // itemset, so some border itemset is globally frequent and the run must
  // refuse the exactness certificate -- yet stay sound (exact supports,
  // nothing below MinSup).
  const auto db = random_db(16, 300, 0.35, 33);
  SamplingOptions opt;
  opt.min_support = 0.2;
  opt.sample_fraction = 0.03;
  opt.num_samples = 1;
  opt.relax = 1.0;
  opt.seed = 5;
  const auto sres = mine(db, opt);
  EXPECT_FALSE(sres.exact);
  EXPECT_GT(sres.border_survivors, 0u);
  EXPECT_GT(sres.miss_bound, 0.0);
  EXPECT_LE(sres.miss_bound, 1.0);
  expect_sound(sres, db, 0.2);
  // Recall may be < 1 here; precision never is.
  const auto ref = reference(db, 0.2);
  EXPECT_LE(sres.run.itemsets.total(), ref.total());
}

TEST(Sampling, EmptySampleBordersTheWholeUniverse) {
  // A sample that draws nothing produces no local result; its border is
  // every universe item, so every globally frequent item survives it and
  // the run is inexact (with only singletons verifiable).
  const auto db = random_db(12, 200, 0.5, 34);
  SamplingOptions opt;
  opt.min_support = 0.2;
  opt.sample_fraction = 1e-7;
  opt.num_samples = 1;
  opt.seed = 3;
  const auto sres = mine(db, opt);
  ASSERT_EQ(sres.sample_sizes, (std::vector<u64>{0}));
  EXPECT_FALSE(sres.exact);
  const auto ref = reference(db, 0.2);
  EXPECT_EQ(sres.border_survivors, ref.level(1).size());
  EXPECT_LE(sres.run.itemsets.max_k(), 1u);
  EXPECT_EQ(sres.run.itemsets.level(1), ref.level(1));
}

TEST(Sampling, EmptyDatabase) {
  TransactionDB db{std::vector<Transaction>{}};
  SamplingOptions opt;
  opt.min_support = 0.3;
  const auto sres = mine(db, opt);
  EXPECT_TRUE(sres.exact);
  EXPECT_EQ(sres.run.itemsets.total(), 0u);
  EXPECT_EQ(sres.candidate_union, 0u);
}

// ---------------- SON as a special case ---------------------------------

TEST(Sampling, DisjointSplitsBitIdenticalToSonMine) {
  const auto db = random_db(16, 300, 0.35, 41);
  const auto ref = reference(db, 0.2);

  SamplingOptions opt;
  opt.min_support = 0.2;
  opt.strategy = SplitStrategy::kDisjointSplits;
  opt.num_samples = 3;
  opt.relax = 0.4;  // must be ignored: disjoint splits force r = 1
  const auto sam = mine(db, opt);

  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  SonOptions son_opt;
  son_opt.min_support = 0.2;
  son_opt.num_mappers = 3;
  const auto son = son_mine(ctx, fs, db, son_opt);

  EXPECT_TRUE(sam.run.itemsets.same_itemsets(son.run.itemsets));
  EXPECT_TRUE(sam.run.itemsets.same_itemsets(ref));
  EXPECT_TRUE(sam.exact);
  EXPECT_EQ(sam.border_union, 0u);
  EXPECT_EQ(sam.border_survivors, 0u);
  EXPECT_DOUBLE_EQ(sam.miss_bound, 0.0);
  EXPECT_EQ(sam.false_candidates, sam.candidate_union - ref.total());
  u64 covered = 0;
  for (u64 m : sam.sample_sizes) covered += m;
  EXPECT_EQ(covered, db.size());  // splits partition the data
}

TEST(Sampling, SingleDisjointSplitIsSequentialApriori) {
  const auto db = random_db(12, 150, 0.4, 42);
  SamplingOptions opt;
  opt.min_support = 0.25;
  opt.strategy = SplitStrategy::kDisjointSplits;
  opt.num_samples = 1;
  const auto sres = mine(db, opt);
  EXPECT_TRUE(sres.exact);
  EXPECT_TRUE(sres.run.itemsets.same_itemsets(reference(db, 0.25)));
  EXPECT_EQ(sres.false_candidates, 0u);  // the one split is the data
}

// ---------------- two-pass guarantee ------------------------------------

TEST(Sampling, ExactlyTwoPassesIndependentOfLatticeDepth) {
  // Dense data, deep lattice: a per-level miner would need max_k passes;
  // the two-phase driver always reports exactly two.
  const auto db = random_db(12, 200, 0.7, 51);
  SamplingOptions opt;
  opt.min_support = 0.3;
  opt.sample_fraction = 0.5;
  opt.num_samples = 2;
  opt.relax = 0.6;
  const auto sres = mine(db, opt);
  ASSERT_EQ(sres.run.passes.size(), 2u);
  EXPECT_GE(sres.run.itemsets.max_k(), 3u);  // deeper than the pass count
  EXPECT_EQ(sres.run.passes[0].k, 1u);
  EXPECT_EQ(sres.run.passes[1].k, 2u);
  EXPECT_EQ(sres.run.passes[1].candidates,
            sres.candidate_union + sres.border_union);
}

// ---------------- option validation -------------------------------------

using SamplingDeathTest = ::testing::Test;

TEST(SamplingDeathTest, RejectsBadOptions) {
  const auto db = random_db(8, 20, 0.5, 61);
  auto run_with = [&db](SamplingOptions opt) { (void)mine(db, opt); };
  SamplingOptions opt;
  opt.num_samples = 0;
  EXPECT_DEATH(run_with(opt), "num_samples");
  opt = SamplingOptions{};
  opt.num_samples = 65;
  EXPECT_DEATH(run_with(opt), "num_samples");
  opt = SamplingOptions{};
  opt.sample_fraction = 0.0;
  EXPECT_DEATH(run_with(opt), "sample_fraction");
  opt = SamplingOptions{};
  opt.sample_fraction = 1.5;
  EXPECT_DEATH(run_with(opt), "sample_fraction");
  opt = SamplingOptions{};
  opt.relax = 0.0;
  EXPECT_DEATH(run_with(opt), "relax");
  opt = SamplingOptions{};
  opt.min_support = 0.0;
  EXPECT_DEATH(run_with(opt), "support");
}

}  // namespace
}  // namespace yafim::fim
