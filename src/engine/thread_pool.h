// Fixed-size thread pool executing the engine's tasks on the host machine.
//
// Host parallelism (how many OS threads crunch the work) is deliberately
// decoupled from *simulated* parallelism (how many cluster cores the cost
// model schedules onto): results are identical either way, only wall-clock
// differs.
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/common.h"
#include "util/thread_annotations.h"

namespace yafim::engine {

class ThreadPool {
 public:
  /// `threads` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(u32 threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future rethrows any task exception.
  std::future<void> submit(std::function<void()> fn);

  /// Run f(0), ..., f(n-1) on the pool and wait for all of them.
  /// Must not be called from a pool thread (would deadlock under load);
  /// enforced with a CHECK.
  void parallel_for(u32 n, const std::function<void(u32)>& f);

  u32 size() const { return static_cast<u32>(workers_.size()); }

  /// True when the calling thread is one of this pool's workers.
  static bool on_pool_thread();

 private:
  void worker_loop(u32 index);

  util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ YAFIM_GUARDED_BY(mutex_);
  bool stopping_ YAFIM_GUARDED_BY(mutex_) = false;
  /// Written only by the constructor, before any concurrent access.
  std::vector<std::thread> workers_;
};

}  // namespace yafim::engine
