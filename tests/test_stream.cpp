// Streaming miner tests: source determinism, the snapshot codec's damage
// discipline, the backpressure ladder, and the exactly-once matrix -- a
// kill at every phase of a mid-stream batch, across all three CountModes,
// with and without memory-pressure degradation engaged, each resumed run
// required to be bit-identical with the uninterrupted one (and the final
// output exact against sequential Apriori over the ingested history).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "engine/lint.h"
#include "fim/apriori_seq.h"
#include "fim/checkpoint.h"
#include "stream/backpressure.h"
#include "stream/checkpoint.h"
#include "stream/miner.h"
#include "stream/source.h"
#include "util/rng.h"

namespace yafim::stream {
namespace {

namespace stdfs = std::filesystem;

engine::Context::Options small_cluster() {
  engine::Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(3);
  opts.host_threads = 4;
  return opts;
}

fim::TransactionDB random_db(u32 universe, int transactions, double density,
                             u64 seed) {
  Rng rng(seed);
  std::vector<fim::Transaction> tx;
  for (int i = 0; i < transactions; ++i) {
    fim::Transaction t;
    for (u32 item = 0; item < universe; ++item) {
      if (rng.bernoulli(density)) t.push_back(item);
    }
    if (t.empty()) t.push_back(static_cast<fim::Item>(rng.below(universe)));
    tx.push_back(std::move(t));
  }
  return fim::TransactionDB(std::move(tx));
}

std::string fresh_dir(const std::string& name) {
  const stdfs::path dir = stdfs::path(::testing::TempDir()) / name;
  stdfs::remove_all(dir);
  return dir.string();
}

StreamOptions small_stream() {
  StreamOptions opt;
  opt.min_support = 0.25;
  opt.num_batches = 6;
  opt.source.window_s = 1.0;
  opt.source.ingest_rate = 120.0;
  return opt;
}

StreamResult run_stream(const fim::TransactionDB& db,
                        const StreamOptions& opt,
                        engine::Context::Options copts = small_cluster(),
                        engine::Context** ctx_out = nullptr) {
  engine::Context ctx(copts);
  simfs::SimFS fs(ctx.cluster(), copts.fault.corrupt);
  (void)ctx_out;
  return stream_mine(ctx, fs, db, opt);
}

/// The exact transaction sequence the stream ingested, reconstructed from
/// the per-batch stats (the source is a deterministic replay).
fim::TransactionDB ingested_history(const fim::TransactionDB& db,
                                    const StreamOptions& opt,
                                    const StreamResult& result) {
  TransactionSource src(db, opt.source);
  std::vector<fim::Transaction> tx;
  for (const StreamBatchStats& b : result.batches) {
    const auto arrived = src.take(b.transactions);
    tx.insert(tx.end(), arrived.begin(), arrived.end());
  }
  return fim::TransactionDB(std::move(tx));
}

void expect_identical(const StreamResult& a, const StreamResult& b,
                      const std::string& what) {
  EXPECT_TRUE(a.itemsets.same_itemsets(b.itemsets)) << what;
  EXPECT_EQ(a.total_transactions, b.total_transactions) << what;
  EXPECT_EQ(a.min_support_count, b.min_support_count) << what;
  EXPECT_EQ(a.window_factor, b.window_factor) << what;
  EXPECT_EQ(a.reverify_slack, b.reverify_slack) << what;
  EXPECT_EQ(a.widenings, b.widenings) << what;
  EXPECT_EQ(a.slack_raises, b.slack_raises) << what;
  EXPECT_EQ(a.reverifications, b.reverifications) << what;
  ASSERT_EQ(a.batches.size(), b.batches.size()) << what;
  for (size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].transactions, b.batches[i].transactions) << what;
    EXPECT_EQ(a.batches[i].new_candidates, b.batches[i].new_candidates)
        << what << " batch " << i + 1;
    EXPECT_EQ(a.batches[i].window_factor, b.batches[i].window_factor)
        << what;
    EXPECT_DOUBLE_EQ(a.batches[i].sim_seconds, b.batches[i].sim_seconds)
        << what << " batch " << i + 1;
  }
}

// ---- source -------------------------------------------------------------

TEST(StreamSource, ReplayIsDeterministic) {
  const auto db = random_db(12, 80, 0.4, 3);
  SourceOptions sopt;
  sopt.window_s = 2.0;
  sopt.ingest_rate = 50.0;
  TransactionSource a(db, sopt), b(db, sopt);
  for (u64 batch = 1; batch <= 5; ++batch) {
    EXPECT_EQ(a.window_count(batch, 1), b.window_count(batch, 1));
    EXPECT_EQ(a.take(a.window_count(batch, 1)),
              b.take(b.window_count(batch, 1)));
  }
  // seek(0) + take(k) reproduces the prefix exactly.
  const u64 consumed = a.offset();
  b.seek(0);
  a.seek(0);
  EXPECT_EQ(a.take(consumed), b.take(consumed));
}

TEST(StreamSource, WindowCountJittersWithinTenPercentAndScalesWithFactor) {
  const auto db = random_db(8, 40, 0.5, 4);
  SourceOptions sopt;
  sopt.window_s = 1.0;
  sopt.ingest_rate = 1000.0;
  TransactionSource src(db, sopt);
  for (u64 batch = 1; batch <= 20; ++batch) {
    const u64 n = src.window_count(batch, 1);
    EXPECT_GE(n, 900u);
    EXPECT_LT(n, 1100u);
    // Widening multiplies the nominal window before the final floor, with
    // the same jitter draw: 4x the factor-1 count up to truncation.
    const u64 wide = src.window_count(batch, 4);
    EXPECT_GE(wide, n * 4);
    EXPECT_LE(wide, n * 4 + 4);
  }
}

// ---- snapshot codec -----------------------------------------------------

StreamCheckpointState sample_state() {
  StreamCheckpointState s;
  s.fingerprint = 0xFEEDF00Du;
  s.batch = 7;
  s.source_offset = 4321;
  s.total_transactions = 4321;
  s.min_support_count = 87;
  s.window_factor = 2;
  s.reverify_slack = 0.2;
  s.widenings = 1;
  s.slack_raises = 2;
  s.reverifications = 55;
  s.supports = {{{3}, 120}, {{1}, 95}, {{1, 3}, 90}, {{2}, 10}};
  s.frontier = {{1, 3}, {1}, {3}};
  s.batches = {StreamBatchStats{1, 600, 40, 1, 0.8},
               StreamBatchStats{2, 610, 4, 2, 0.9}};
  return s;
}

TEST(StreamCheckpoint, RoundTrip) {
  const auto state = sample_state();
  const auto bytes = encode_stream_snapshot(state);
  const auto back = decode_stream_snapshot(bytes, state.fingerprint);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->batch, state.batch);
  EXPECT_EQ(back->source_offset, state.source_offset);
  EXPECT_EQ(back->min_support_count, state.min_support_count);
  EXPECT_EQ(back->window_factor, state.window_factor);
  EXPECT_DOUBLE_EQ(back->reverify_slack, state.reverify_slack);
  EXPECT_EQ(back->supports.size(), state.supports.size());
  EXPECT_EQ(back->frontier.size(), state.frontier.size());
  ASSERT_EQ(back->batches.size(), 2u);
  EXPECT_DOUBLE_EQ(back->batches[1].sim_seconds, 0.9);
}

TEST(StreamCheckpoint, EncodingIsCanonicalAcrossInputOrder) {
  auto a = sample_state();
  auto b = sample_state();
  std::reverse(b.supports.begin(), b.supports.end());
  std::reverse(b.frontier.begin(), b.frontier.end());
  EXPECT_EQ(encode_stream_snapshot(a), encode_stream_snapshot(b));
}

TEST(StreamCheckpoint, EveryFlippedBitIsRejectedWhole) {
  const auto state = sample_state();
  const auto bytes = encode_stream_snapshot(state);
  for (size_t i = 0; i < bytes.size(); i += 17) {  // stride keeps it fast
    auto damaged = bytes;
    damaged[i] ^= 0x40;
    EXPECT_FALSE(
        decode_stream_snapshot(damaged, state.fingerprint).has_value())
        << "flip at byte " << i;
  }
}

TEST(StreamCheckpoint, EveryTruncationIsRejected) {
  const auto state = sample_state();
  const auto bytes = encode_stream_snapshot(state);
  for (size_t len = 0; len < bytes.size(); len += 13) {
    EXPECT_FALSE(decode_stream_snapshot(
                     std::span<const u8>(bytes.data(), len),
                     state.fingerprint)
                     .has_value())
        << "truncated to " << len;
  }
}

TEST(StreamCheckpoint, ForeignFingerprintRejected) {
  const auto state = sample_state();
  const auto bytes = encode_stream_snapshot(state);
  EXPECT_FALSE(decode_stream_snapshot(bytes, state.fingerprint + 1)
                   .has_value());
}

TEST(StreamCheckpoint, LoadLatestSkipsDamagedSnapshots) {
  fim::DirCheckpointStore store(fresh_dir("stream_ck_damaged"));
  auto early = sample_state();
  early.batch = 3;
  save_stream_snapshot(store, early);
  auto late = sample_state();
  late.batch = 5;
  auto damaged = encode_stream_snapshot(late);
  damaged[damaged.size() / 2] ^= 0xFF;
  store.put(stream_snapshot_name(5), damaged);

  u32 rejected = 0;
  const auto loaded =
      load_latest_stream_snapshot(store, early.fingerprint, &rejected);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->batch, 3u);  // fell back past the damaged batch 5
  EXPECT_EQ(rejected, 1u);
}

// ---- backpressure ladder ------------------------------------------------

TEST(Backpressure, EscalatesWindowThenSlackAndDeescalatesInReverse) {
  BackpressureOptions bopt;
  bopt.max_window_factor = 4;
  BackpressureController ctl(bopt);
  BackpressureState state;

  // Overloaded: widen 1 -> 2 -> 4, then raise slack in 0.1 steps to 0.5.
  ctl.observe(10.0, 1.0, 0, &state, nullptr);
  EXPECT_EQ(state.window_factor, 2u);
  ctl.observe(10.0, 2.0, 0, &state, nullptr);
  EXPECT_EQ(state.window_factor, 4u);
  EXPECT_EQ(state.reverify_slack, 0.0);
  for (int i = 1; i <= 5; ++i) {
    ctl.observe(10.0, 4.0, 0, &state, nullptr);
    EXPECT_EQ(state.window_factor, 4u);
    EXPECT_NEAR(state.reverify_slack, 0.1 * i, 1e-9);
  }
  // Ladder exhausted: bounded, no further change.
  ctl.observe(10.0, 4.0, 0, &state, nullptr);
  EXPECT_NEAR(state.reverify_slack, 0.5, 1e-9);
  EXPECT_EQ(ctl.widenings(), 2u);
  EXPECT_EQ(ctl.slack_raises(), 5u);

  // Recovered: slack drains first, then the window narrows.
  for (int i = 4; i >= 0; --i) {
    ctl.observe(0.1, 4.0, 0, &state, nullptr);
    EXPECT_NEAR(state.reverify_slack, 0.1 * i, 1e-9);
    EXPECT_EQ(state.window_factor, 4u);
  }
  ctl.observe(0.1, 4.0, 0, &state, nullptr);
  EXPECT_EQ(state.window_factor, 2u);
  ctl.observe(0.1, 2.0, 0, &state, nullptr);
  EXPECT_EQ(state.window_factor, 1u);

  // In-band latency: no movement either way.
  ctl.observe(0.7, 1.0, 0, &state, nullptr);
  EXPECT_EQ(state.window_factor, 1u);
  EXPECT_EQ(state.reverify_slack, 0.0);
}

TEST(Backpressure, OverloadedStreamRaisesSlackEmitsYL006AndStaysExact) {
  const auto db = random_db(12, 150, 0.4, 21);
  StreamOptions opt = small_stream();
  // A microscopic window makes every batch miss its deadline, forcing the
  // full ladder: widenings to the cap, then slack raises.
  opt.source.window_s = 1e-4;
  opt.source.ingest_rate = 120.0 / 1e-4;
  opt.backpressure.max_window_factor = 2;

  auto copts = small_cluster();
  copts.lint.enabled = true;
  engine::Context ctx(copts);
  simfs::SimFS fs(ctx.cluster());
  const StreamResult result = stream_mine(ctx, fs, db, opt);

  EXPECT_GT(result.widenings, 0u);
  EXPECT_GT(result.slack_raises, 0u);
  EXPECT_GT(result.reverify_slack, 0.0);
  ctx.linter().finalize();
  u64 yl006 = 0;
  for (const auto& diag : ctx.linter().diagnostics()) {
    if (diag.rule == "YL006") {
      ++yl006;
      EXPECT_EQ(diag.severity, engine::LintSeverity::kNote);
      EXPECT_NE(diag.message.find("backpressure"), std::string::npos);
    }
  }
  EXPECT_EQ(yl006, result.slack_raises);

  // Slack deferred frontier entries mid-stream, but finalize drained every
  // deferral: the output is still exactly batch Apriori on the history.
  const auto history = ingested_history(db, opt, result);
  fim::AprioriOptions sopt;
  sopt.min_support = opt.min_support;
  const auto reference = fim::apriori_mine(history, sopt);
  EXPECT_TRUE(result.itemsets.same_itemsets(reference.itemsets));
}

// ---- incremental == batch ----------------------------------------------

TEST(StreamMiner, MatchesSequentialAprioriOverIngestedHistory) {
  const auto db = random_db(14, 160, 0.4, 11);
  for (fim::CountMode mode :
       {fim::CountMode::kItemsetKey, fim::CountMode::kCandidateId,
        fim::CountMode::kVerticalBitmap}) {
    StreamOptions opt = small_stream();
    opt.count_mode = mode;
    const StreamResult result = run_stream(db, opt);
    ASSERT_GT(result.itemsets.total(), 0u);

    const auto history = ingested_history(db, opt, result);
    EXPECT_EQ(history.size(), result.total_transactions);
    fim::AprioriOptions sopt;
    sopt.min_support = opt.min_support;
    const auto reference = fim::apriori_mine(history, sopt);
    EXPECT_TRUE(result.itemsets.same_itemsets(reference.itemsets))
        << fim::count_mode_name(mode);
  }
}

TEST(StreamMiner, CountModesBitIdenticalPerBatch) {
  const auto db = random_db(14, 160, 0.4, 12);
  StreamOptions opt = small_stream();
  const StreamResult faithful = run_stream(db, opt);
  for (fim::CountMode mode :
       {fim::CountMode::kCandidateId, fim::CountMode::kVerticalBitmap}) {
    StreamOptions mopt = small_stream();
    mopt.count_mode = mode;
    const StreamResult run = run_stream(db, mopt);
    EXPECT_TRUE(run.itemsets.same_itemsets(faithful.itemsets));
    ASSERT_EQ(run.batches.size(), faithful.batches.size());
    for (size_t i = 0; i < run.batches.size(); ++i) {
      EXPECT_EQ(run.batches[i].transactions, faithful.batches[i].transactions);
      EXPECT_EQ(run.batches[i].new_candidates,
                faithful.batches[i].new_candidates)
          << fim::count_mode_name(mode) << " batch " << i + 1;
    }
  }
}

// ---- exactly-once kill matrix ------------------------------------------

void kill_resume_matrix(engine::Context::Options copts,
                        const std::string& tag) {
  const auto db = random_db(14, 160, 0.4, 13);
  for (fim::CountMode mode :
       {fim::CountMode::kItemsetKey, fim::CountMode::kCandidateId,
        fim::CountMode::kVerticalBitmap}) {
    StreamOptions opt = small_stream();
    opt.count_mode = mode;
    const StreamResult clean = run_stream(db, opt, copts);

    for (u32 phase = 0; phase < kNumStreamPhases; ++phase) {
      fim::DirCheckpointStore store(fresh_dir(
          "stream_kill_" + tag + "_" + fim::count_mode_name(mode) + "_" +
          std::to_string(phase)));
      StreamOptions kopt = opt;
      kopt.checkpoint = &store;
      kopt.kill_batch = 4;
      kopt.kill_phase = phase;
      EXPECT_THROW(run_stream(db, kopt, copts), StreamKilledError);

      StreamOptions ropt = opt;
      ropt.checkpoint = &store;
      const StreamResult resumed = run_stream(db, ropt, copts);
      EXPECT_EQ(resumed.resumed_batch,
                phase == static_cast<u32>(StreamPhase::kBoundary) ? 4u : 3u);
      expect_identical(clean, resumed,
                       std::string(fim::count_mode_name(mode)) + " phase " +
                           stream_phase_name(StreamPhase{phase}) + " " +
                           tag);
    }
  }
}

TEST(StreamExactlyOnce, KillAtEveryPhaseEveryModeResumesBitIdentical) {
  kill_resume_matrix(small_cluster(), "plain");
}

TEST(StreamExactlyOnce, KillMatrixUnderMemoryPressureFallback) {
  // Starve the executors so candidate broadcasts degrade to the
  // partitioned store (PR-7 path) while the kill matrix runs.
  auto copts = small_cluster();
  copts.cluster.executor_memory_bytes = 1 << 16;
  kill_resume_matrix(copts, "memfallback");
}

TEST(StreamExactlyOnce, KillUnderComposedFaultAxes) {
  // Task failures + a mid-stream memory shrink + a kill, all at once: the
  // resumed run must still replay every injected decision identically.
  for (u64 seed : {101ull, 211ull}) {
    auto copts = small_cluster();
    copts.fault.seed = seed;
    copts.fault.task_failure_p = 0.05;
    copts.fault.mem_shrink_pass = 3;  // batch 3 triggers the shrink
    copts.fault.mem_shrink_factor = 1e-6;
    copts.fault.mem_shrink_node = 1;

    const auto db = random_db(14, 160, 0.4, 14);
    StreamOptions opt = small_stream();
    const StreamResult clean = run_stream(db, opt, copts);

    fim::DirCheckpointStore store(
        fresh_dir("stream_kill_composed_" + std::to_string(seed)));
    StreamOptions kopt = opt;
    kopt.checkpoint = &store;
    kopt.kill_batch = 4;
    kopt.kill_phase = static_cast<u32>(StreamPhase::kCount);
    EXPECT_THROW(run_stream(db, kopt, copts), StreamKilledError);

    StreamOptions ropt = opt;
    ropt.checkpoint = &store;
    const StreamResult resumed = run_stream(db, ropt, copts);
    expect_identical(clean, resumed, "composed seed " + std::to_string(seed));
  }
}

TEST(StreamExactlyOnce, SeedDerivedKillPointsAreStableAndInRange) {
  // The env axis derives (batch, phase) by hashing YAFIM_FAULT_STREAM_SEED;
  // exercise the derivation through the profile (not the env) and check a
  // seeded kill fires and resumes exactly once.
  auto copts = small_cluster();
  copts.fault.stream_seed = 77;

  const auto db = random_db(14, 160, 0.4, 15);
  StreamOptions opt = small_stream();
  const StreamResult clean = run_stream(db, opt);  // no injection

  fim::DirCheckpointStore store(fresh_dir("stream_kill_seeded"));
  StreamOptions kopt = opt;
  kopt.checkpoint = &store;
  u64 killed_batch = 0;
  try {
    run_stream(db, kopt, copts);
  } catch (const StreamKilledError& e) {
    killed_batch = e.batch();
  }
  ASSERT_GE(killed_batch, 1u);
  ASSERT_LE(killed_batch, opt.num_batches);

  // Resume without the fault profile (the CI soak's final env-free run).
  StreamOptions ropt = opt;
  ropt.checkpoint = &store;
  const StreamResult resumed = run_stream(db, ropt);
  expect_identical(clean, resumed, "seed-derived kill");
}

TEST(StreamExactlyOnce, ExplicitProfileKillBeatsSeedAndRespectsOverride) {
  auto copts = small_cluster();
  copts.fault.stream_kill_batch = 2;
  copts.fault.stream_kill_phase =
      static_cast<u32>(StreamPhase::kSnapshot);
  copts.fault.stream_seed = 999;  // ignored: explicit point wins

  const auto db = random_db(12, 120, 0.4, 16);
  StreamOptions opt = small_stream();
  try {
    run_stream(db, opt, copts);
    FAIL() << "kill never fired";
  } catch (const StreamKilledError& e) {
    EXPECT_EQ(e.batch(), 2u);
    EXPECT_EQ(e.phase(), StreamPhase::kSnapshot);
  }
}

TEST(StreamMiner, ResumeRejectsForeignConfiguration) {
  const auto db = random_db(12, 120, 0.4, 17);
  fim::DirCheckpointStore store(fresh_dir("stream_foreign_config"));
  StreamOptions opt = small_stream();
  opt.checkpoint = &store;
  opt.kill_batch = 3;
  opt.kill_phase = static_cast<u32>(StreamPhase::kBoundary);
  EXPECT_THROW(run_stream(db, opt), StreamKilledError);
  ASSERT_FALSE(store.list().empty());

  // Same store, different minsup: the fingerprint must refuse every
  // snapshot and the run must start cold (resumed_batch == 0).
  StreamOptions other = small_stream();
  other.checkpoint = &store;
  other.min_support = 0.3;
  const StreamResult cold = run_stream(db, other);
  EXPECT_EQ(cold.resumed_batch, 0u);
}

}  // namespace
}  // namespace yafim::stream
