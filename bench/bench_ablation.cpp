// Ablation bench: quantifies the design choices DESIGN.md calls out.
//
//   1. Broadcast variables vs naive per-task shipping (paper §IV-C).
//   2. Cached transactions RDD vs re-reading from HDFS each pass (§IV-B).
//   3. Hash tree vs linear candidate scan (§IV-A, Fig. 2).
//   4. SPC vs FPC vs DPC job-combining strategies on the MR substrate
//      (related work, Lin et al.).
#include "common.h"
#include "fim/spc_fpc_dpc.h"

using namespace yafim;
using namespace yafim::benchharness;

namespace {

double yafim_variant(const datagen::BenchmarkDataset& bench,
                     engine::ShareMode share, bool cache, bool hash_tree,
                     u64* probe_work = nullptr) {
  engine::Context ctx(engine::Context::Options{
      .cluster = sim::ClusterConfig::paper(), .share_mode = share});
  simfs::SimFS fs(ctx.cluster());
  fim::YafimOptions opt;
  opt.min_support = bench.paper_min_support;
  opt.cache_transactions = cache;
  opt.use_hash_tree = hash_tree;
  const auto run = fim::yafim_mine(ctx, fs, bench.db, opt);
  if (probe_work) *probe_work = ctx.report().total_work();
  return run.total_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv, /*default_scale=*/1.0);

  std::printf("== Ablations (MushRoom Sup=35%% and T10I4D100K Sup=0.25%%, "
              "scale=%.2f) ==\n\n",
              args.scale);

  std::vector<datagen::BenchmarkDataset> benches;
  benches.push_back(datagen::make_mushroom(args.scale));
  benches.push_back(datagen::make_t10i4d100k(args.scale));

  std::printf("-- YAFIM design ablations (total simulated seconds) --\n");
  Table table({"dataset", "paper design", "naive ship", "no cache",
               "no hash tree"});
  for (const auto& bench : benches) {
    u64 work_tree = 0, work_linear = 0;
    const double base = yafim_variant(bench, engine::ShareMode::kBroadcast,
                                      true, true, &work_tree);
    const double naive =
        yafim_variant(bench, engine::ShareMode::kNaiveShip, true, true);
    const double nocache =
        yafim_variant(bench, engine::ShareMode::kBroadcast, false, true);
    const double linear = yafim_variant(bench, engine::ShareMode::kBroadcast,
                                        true, false, &work_linear);
    table.add_row({bench.name, Table::num(base),
                   Table::num(naive) + " (" + Table::num(naive / base, 2) +
                       "x)",
                   Table::num(nocache) + " (" +
                       Table::num(nocache / base, 2) + "x)",
                   Table::num(linear) + " (" + Table::num(linear / base, 2) +
                       "x)"});
    std::printf("  %s probe work: hash tree %llu units vs linear %llu units "
                "(%.1fx saved)\n",
                bench.name.c_str(), (unsigned long long)work_tree,
                (unsigned long long)work_linear,
                static_cast<double>(work_linear) /
                    static_cast<double>(work_tree));
  }
  print_table(table, args);

  std::printf("\n-- YAFIM combined passes (our extension; Lin-style "
              "batching on the RDD side) --\n");
  Table combine_table({"dataset", "combine", "cluster passes", "total(s)"});
  for (const auto& bench : benches) {
    for (u32 combine : {1u, 2u, 3u}) {
      engine::Context ctx(
          engine::Context::Options{.cluster = sim::ClusterConfig::paper()});
      simfs::SimFS fs(ctx.cluster());
      fim::YafimOptions opt;
      opt.min_support = bench.paper_min_support;
      opt.combine_passes = combine;
      const auto run = fim::yafim_mine(ctx, fs, bench.db, opt);
      u64 cluster_passes = 1;  // phase I
      for (const auto& stage : ctx.report().stages()) {
        if (stage.label.find(":ap_gen") != std::string::npos) {
          ++cluster_passes;
        }
      }
      combine_table.add_row({bench.name, Table::num(u64{combine}),
                             Table::num(cluster_passes),
                             Table::num(run.total_seconds())});
    }
  }
  print_table(combine_table, args);

  std::printf("\n-- MapReduce job-combining strategies (Lin et al.) --\n");
  Table lin_table({"dataset", "strategy", "jobs", "speculative C",
                   "total(s)"});
  for (const auto& bench : benches) {
    for (const auto& [name, strategy] :
         {std::pair{"SPC", fim::CombineStrategy::kSinglePass},
          std::pair{"FPC", fim::CombineStrategy::kFixedPasses},
          std::pair{"DPC", fim::CombineStrategy::kDynamic}}) {
      engine::Context ctx(
          engine::Context::Options{.cluster = sim::ClusterConfig::paper()});
      simfs::SimFS fs(ctx.cluster());
      fim::LinOptions opt;
      opt.min_support = bench.paper_min_support;
      opt.strategy = strategy;
      const auto lin = fim::lin_mine(ctx, fs, bench.db, opt);
      lin_table.add_row({bench.name, name, Table::num(u64{lin.num_jobs}),
                         Table::num(lin.speculative_candidates),
                         Table::num(lin.run.total_seconds())});
    }
  }
  print_table(lin_table, args);
  return 0;
}
