// Unit tests for the cluster cost model, LPT makespan scheduler, and the
// replayable metrics (StageRecord / SimReport pricing).
#include <gtest/gtest.h>

#include <numeric>

#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "sim/makespan.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace yafim::sim {
namespace {

TEST(Cluster, PaperPresetMatchesTestbed) {
  const ClusterConfig c = ClusterConfig::paper();
  EXPECT_EQ(c.nodes, 12u);
  EXPECT_EQ(c.total_cores(), 48u);
  EXPECT_EQ(c.hdfs_replication, 3u);
}

TEST(Cluster, WithNodes) {
  EXPECT_EQ(ClusterConfig::with_nodes(4).total_cores(), 16u);
  EXPECT_EQ(ClusterConfig::with_nodes(10).total_cores(), 40u);
}

TEST(CostModel, ComputeScalesLinearly) {
  const CostModel m{ClusterConfig::paper()};
  EXPECT_DOUBLE_EQ(m.compute_seconds(0), 0.0);
  EXPECT_DOUBLE_EQ(m.compute_seconds(2'000'000),
                   2.0 * m.compute_seconds(1'000'000));
  EXPECT_NEAR(m.compute_seconds(
                  static_cast<u64>(CostModel::kWorkUnitsPerSecPerCore)),
              1.0, 1e-9);
}

TEST(CostModel, DfsReadUsesAllNodes) {
  const CostModel m12{ClusterConfig::with_nodes(12)};
  const CostModel m4{ClusterConfig::with_nodes(4)};
  const u64 bytes = 1200ull << 20;
  EXPECT_NEAR(m4.dfs_read_seconds(bytes) / m12.dfs_read_seconds(bytes), 3.0,
              1e-9);
}

TEST(CostModel, DfsWriteCostsMoreThanRead) {
  const CostModel m{ClusterConfig::paper()};
  const u64 bytes = 100ull << 20;
  EXPECT_GT(m.dfs_write_seconds(bytes), m.dfs_read_seconds(bytes));
}

TEST(CostModel, BroadcastBeatsNaiveShippingAtScale) {
  const CostModel m{ClusterConfig::paper()};
  const u64 bytes = 10u << 20;
  // 96 tasks in a stage; naive shipping sends 96 copies through one link.
  EXPECT_LT(m.broadcast_seconds(bytes), m.naive_ship_seconds(bytes, 96));
}

TEST(CostModel, ShuffleIsMonotoneInBytes) {
  const CostModel m{ClusterConfig::paper()};
  EXPECT_LT(m.shuffle_seconds(1 << 20), m.shuffle_seconds(1 << 24));
  EXPECT_DOUBLE_EQ(m.shuffle_seconds(0), 0.0);
}

TEST(Makespan, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(lpt_makespan({}, 4), 0.0);
  const double d[] = {2.5};
  EXPECT_DOUBLE_EQ(lpt_makespan(d, 4), 2.5);
}

TEST(Makespan, PerfectSplit) {
  const double d[] = {1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(lpt_makespan(d, 4), 1.0);
  EXPECT_DOUBLE_EQ(lpt_makespan(d, 2), 2.0);
  EXPECT_DOUBLE_EQ(lpt_makespan(d, 1), 4.0);
}

TEST(Makespan, LongestTaskIsLowerBound) {
  const double d[] = {5, 1, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(lpt_makespan(d, 3), 5.0);
}

TEST(Makespan, NeverBelowTheoreticalBounds) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> d(1 + rng.below(40));
    double total = 0, longest = 0;
    for (double& x : d) {
      x = rng.uniform() * 10;
      total += x;
      longest = std::max(longest, x);
    }
    const u32 cores = 1 + static_cast<u32>(rng.below(16));
    const double ms = lpt_makespan(d, cores);
    EXPECT_GE(ms + 1e-9, total / cores);
    EXPECT_GE(ms + 1e-9, longest);
    // LPT is a 4/3 - 1/(3m) approximation of optimal; optimal is at least
    // max(total/cores, longest).
    EXPECT_LE(ms, (4.0 / 3.0) * std::max(total / cores, longest) + 1e-9);
  }
}

TEST(Makespan, LoadsSumToTotal) {
  const double d[] = {3, 1, 4, 1, 5, 9, 2, 6};
  const auto loads = lpt_loads(d, 3);
  EXPECT_EQ(loads.size(), 3u);
  EXPECT_NEAR(std::accumulate(loads.begin(), loads.end(), 0.0), 31.0, 1e-9);
  EXPECT_DOUBLE_EQ(*std::max_element(loads.begin(), loads.end()),
                   lpt_makespan(d, 3));
}

TEST(Metrics, MoreCoresNeverSlower) {
  StageRecord stage;
  stage.label = "s";
  stage.kind = StageKind::kSparkStage;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    stage.tasks.push_back(TaskRecord{rng.below(50'000'000)});
  }
  const CostModel m48{ClusterConfig::with_nodes(12)};
  const CostModel m16{ClusterConfig::with_nodes(4)};
  EXPECT_LE(stage_seconds(stage, m48), stage_seconds(stage, m16) + 1e-9);
}

TEST(Metrics, MapPhasePaysJvmLaunch) {
  StageRecord spark, mr;
  spark.kind = StageKind::kSparkStage;
  mr.kind = StageKind::kMapPhase;
  spark.tasks = mr.tasks = {TaskRecord{1000}};
  const CostModel m{ClusterConfig::paper()};
  EXPECT_GT(stage_seconds(mr, m), stage_seconds(spark, m));
}

TEST(Metrics, RetriesAndWastedWorkArePriced) {
  StageRecord clean;
  clean.kind = StageKind::kSparkStage;
  clean.tasks = {TaskRecord{1'000'000}};
  StageRecord faulty = clean;
  faulty.tasks[0].attempts = 3;  // two failed launches before success
  faulty.tasks[0].wasted_work = 1'000'000;

  const ClusterConfig cluster = ClusterConfig::paper();
  const CostModel m{cluster};
  const double delta = stage_seconds(faulty, m) - stage_seconds(clean, m);
  // Each retry pays at least the relaunch backoff plus the burned work is
  // recharged; the extra launch overheads come on top.
  EXPECT_GE(delta, 2.0 * cluster.task_retry_backoff_s +
                       m.compute_seconds(1'000'000) - 1e-9);

  // Speculative copies are ordinary extra records occupying a core.
  StageRecord speculated = clean;
  speculated.tasks.push_back(TaskRecord{500'000, 1, 0, true});
  EXPECT_GE(stage_seconds(speculated, m), stage_seconds(clean, m));
}

TEST(Metrics, OverheadStageIsFixed) {
  StageRecord s;
  s.kind = StageKind::kOverhead;
  s.fixed_overhead_s = 12.0;
  const CostModel m48{ClusterConfig::with_nodes(12)};
  const CostModel m16{ClusterConfig::with_nodes(4)};
  EXPECT_DOUBLE_EQ(stage_seconds(s, m48), 12.0);
  EXPECT_DOUBLE_EQ(stage_seconds(s, m16), 12.0);
}

TEST(Metrics, PassSecondsGroupsByTag) {
  SimReport report;
  StageRecord a;
  a.kind = StageKind::kOverhead;
  a.pass = 0;
  a.fixed_overhead_s = 1.0;
  StageRecord b = a;
  b.pass = 2;
  b.fixed_overhead_s = 3.0;
  StageRecord c = a;
  c.pass = 2;
  c.fixed_overhead_s = 4.0;
  report.add(a);
  report.add(b);
  report.add(c);

  const CostModel m{ClusterConfig::paper()};
  const auto by_pass = report.pass_seconds(m);
  ASSERT_EQ(by_pass.size(), 3u);
  EXPECT_DOUBLE_EQ(by_pass[0], 1.0);
  EXPECT_DOUBLE_EQ(by_pass[1], 0.0);
  EXPECT_DOUBLE_EQ(by_pass[2], 7.0);
  EXPECT_DOUBLE_EQ(report.total_seconds(m), 8.0);
}

TEST(Metrics, AggregateCounters) {
  SimReport report;
  StageRecord s;
  s.tasks = {TaskRecord{10}, TaskRecord{20}};
  s.driver_work = 5;
  s.shuffle_bytes = 100;
  s.dfs_read_bytes = 200;
  s.dfs_write_bytes = 300;
  s.broadcast_bytes = 400;
  report.add(s);
  report.add(s);
  EXPECT_EQ(report.total_work(), 70u);
  EXPECT_EQ(report.total_shuffle_bytes(), 200u);
  EXPECT_EQ(report.total_dfs_read_bytes(), 400u);
  EXPECT_EQ(report.total_dfs_write_bytes(), 600u);
  EXPECT_EQ(report.total_broadcast_bytes(), 800u);
}

TEST(Metrics, FormatReportShowsStages) {
  SimReport report;
  StageRecord a;
  a.label = "phase1:count";
  a.kind = StageKind::kSparkStage;
  a.pass = 1;
  a.tasks = {TaskRecord{100}, TaskRecord{200}};
  a.shuffle_bytes = 2048;
  report.add(a);
  StageRecord b;
  b.label = "job:startup";
  b.kind = StageKind::kOverhead;
  b.fixed_overhead_s = 15.0;
  report.add(b);

  const std::string text =
      format_report(report, CostModel{ClusterConfig::paper()});
  EXPECT_NE(text.find("phase1:count"), std::string::npos);
  EXPECT_NE(text.find("spark"), std::string::npos);
  EXPECT_NE(text.find("overhead"), std::string::npos);
  EXPECT_NE(text.find("2.0 KB"), std::string::npos);
  EXPECT_NE(text.find("total:"), std::string::npos);
}

TEST(Metrics, PricingIsDeterministic) {
  // The launch-overhead jitter is hash-based, so pricing the same record
  // twice -- or a copy of it -- must give the identical result.
  StageRecord stage;
  stage.kind = StageKind::kSparkStage;
  Rng rng(77);
  for (int t = 0; t < 50; ++t) {
    stage.tasks.push_back(TaskRecord{rng.below(1'000'000)});
  }
  const CostModel m{ClusterConfig::paper()};
  const double first = stage_seconds(stage, m);
  const StageRecord copy = stage;
  EXPECT_DOUBLE_EQ(stage_seconds(stage, m), first);
  EXPECT_DOUBLE_EQ(stage_seconds(copy, m), first);
}

TEST(Metrics, LaunchJitterPreservesScaling) {
  // 96 identical tasks: jittered launches must spread smoothly, so 40
  // cores must be strictly faster than 32 (the un-jittered wave model
  // quantizes them equal).
  StageRecord stage;
  stage.kind = StageKind::kSparkStage;
  stage.tasks.assign(96, TaskRecord{0});
  ClusterConfig c32 = ClusterConfig::with_nodes(8);
  ClusterConfig c40 = ClusterConfig::with_nodes(10);
  EXPECT_LT(stage_seconds(stage, CostModel{c40}),
            stage_seconds(stage, CostModel{c32}));
}

/// Replay property: pricing the same record under more nodes is never
/// slower for pure-compute spark stages (the Fig. 5 premise).
TEST(Metrics, ReplayScalesAcrossClusters) {
  SimReport report;
  Rng rng(31);
  for (int s = 0; s < 5; ++s) {
    StageRecord stage;
    stage.kind = StageKind::kSparkStage;
    stage.pass = s;
    for (int t = 0; t < 96; ++t) {
      stage.tasks.push_back(TaskRecord{rng.below(10'000'000)});
    }
    report.add(stage);
  }
  double prev = 1e100;
  for (u32 nodes : {4u, 6u, 8u, 10u, 12u}) {
    const double t =
        report.total_seconds(CostModel{ClusterConfig::with_nodes(nodes)});
    EXPECT_LE(t, prev + 1e-9) << nodes << " nodes";
    prev = t;
  }
}

}  // namespace
}  // namespace yafim::sim
