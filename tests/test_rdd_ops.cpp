// Tests for the extended RDD operator set: group_by_key, join, sort_by_key,
// distinct, take/first, count_by_value.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "engine/rdd.h"
#include "util/rng.h"

namespace yafim::engine {
namespace {

Context::Options small_cluster() {
  Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(2);
  opts.host_threads = 4;
  return opts;
}

std::vector<int> iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(GroupByKey, GathersAllValues) {
  Context ctx(small_cluster());
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < 300; ++i) pairs.emplace_back(i % 5, i);
  auto grouped = ctx.parallelize(std::move(pairs), 7).group_by_key();
  auto result = grouped.collect();
  ASSERT_EQ(result.size(), 5u);
  for (auto& [k, values] : result) {
    EXPECT_EQ(values.size(), 60u) << "key " << k;
    for (int v : values) EXPECT_EQ(v % 5, k);
  }
}

TEST(GroupByKey, PreservesDuplicateValues) {
  Context ctx(small_cluster());
  std::vector<std::pair<int, int>> pairs{{1, 7}, {1, 7}, {1, 8}};
  auto result =
      ctx.parallelize(std::move(pairs), 2).group_by_key().collect();
  ASSERT_EQ(result.size(), 1u);
  auto values = result[0].second;
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<int>{7, 7, 8}));
}

TEST(GroupByKey, ShuffleCostExceedsReduceByKey) {
  // groupByKey cannot combine map-side, so it moves every record.
  std::vector<std::pair<int, u64>> pairs;
  for (int i = 0; i < 1000; ++i) pairs.emplace_back(i % 3, 1);

  Context ctx1(small_cluster());
  ctx1.parallelize(std::vector<std::pair<int, u64>>(pairs), 4)
      .group_by_key()
      .collect();
  Context ctx2(small_cluster());
  ctx2.parallelize(std::vector<std::pair<int, u64>>(pairs), 4)
      .reduce_by_key([](u64 a, u64 b) { return a + b; })
      .collect();
  EXPECT_GT(ctx1.report().total_shuffle_bytes(),
            ctx2.report().total_shuffle_bytes());
}

TEST(Join, InnerJoinSemantics) {
  Context ctx(small_cluster());
  std::vector<std::pair<int, std::string>> users{
      {1, "ada"}, {2, "bob"}, {3, "eve"}};
  std::vector<std::pair<int, int>> scores{{1, 10}, {1, 20}, {3, 30}, {4, 99}};
  auto joined = ctx.parallelize(std::move(users), 2)
                    .join(ctx.parallelize(std::move(scores), 3));
  auto result = joined.collect();
  std::sort(result.begin(), result.end());
  ASSERT_EQ(result.size(), 3u);  // key 2 has no score; key 4 has no user
  EXPECT_EQ(result[0].first, 1);
  EXPECT_EQ(result[0].second.first, "ada");
  EXPECT_EQ(result[0].second.second, 10);
  EXPECT_EQ(result[1].second.second, 20);
  EXPECT_EQ(result[2].first, 3);
  EXPECT_EQ(result[2].second.second, 30);
}

TEST(Join, ManyToManyProducesCrossProduct) {
  Context ctx(small_cluster());
  std::vector<std::pair<int, int>> left{{7, 1}, {7, 2}};
  std::vector<std::pair<int, int>> right{{7, 10}, {7, 20}, {7, 30}};
  auto result = ctx.parallelize(std::move(left), 1)
                    .join(ctx.parallelize(std::move(right), 1))
                    .collect();
  EXPECT_EQ(result.size(), 6u);  // 2 x 3
}

TEST(Join, DisjointKeysYieldEmpty) {
  Context ctx(small_cluster());
  std::vector<std::pair<int, int>> left{{1, 1}};
  std::vector<std::pair<int, int>> right{{2, 2}};
  EXPECT_EQ(ctx.parallelize(std::move(left), 1)
                .join(ctx.parallelize(std::move(right), 1))
                .count(),
            0u);
}

TEST(SortByKey, FullyOrdersCollectOutput) {
  Context ctx(small_cluster());
  Rng rng(9);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < 2000; ++i) {
    pairs.emplace_back(static_cast<int>(rng.below(500)), i);
  }
  auto sorted = ctx.parallelize(std::move(pairs), 8).sort_by_key().collect();
  ASSERT_EQ(sorted.size(), 2000u);
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i - 1].first, sorted[i].first);
  }
}

TEST(SortByKey, StableWithinEqualKeys) {
  Context ctx(small_cluster());
  std::vector<std::pair<int, int>> pairs{{5, 0}, {5, 1}, {5, 2}, {5, 3}};
  auto sorted = ctx.parallelize(std::move(pairs), 1).sort_by_key().collect();
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i].second, static_cast<int>(i));
  }
}

TEST(SortByKey, EmptyAndSingle) {
  Context ctx(small_cluster());
  EXPECT_TRUE(ctx.parallelize(std::vector<std::pair<int, int>>{})
                  .sort_by_key()
                  .collect()
                  .empty());
  auto one = ctx.parallelize(std::vector<std::pair<int, int>>{{3, 4}})
                 .sort_by_key()
                 .collect();
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].first, 3);
}

TEST(Distinct, RemovesDuplicates) {
  Context ctx(small_cluster());
  std::vector<int> data;
  for (int i = 0; i < 500; ++i) data.push_back(i % 37);
  auto unique = ctx.parallelize(std::move(data), 9).distinct().collect();
  std::sort(unique.begin(), unique.end());
  ASSERT_EQ(unique.size(), 37u);
  for (int i = 0; i < 37; ++i) EXPECT_EQ(unique[i], i);
}

TEST(Distinct, AlreadyUniqueUnchangedAsSet) {
  Context ctx(small_cluster());
  auto unique = ctx.parallelize(iota(100), 4).distinct().collect();
  EXPECT_EQ(unique.size(), 100u);
}

TEST(Take, ReturnsFirstElementsInOrder) {
  Context ctx(small_cluster());
  auto rdd = ctx.parallelize(iota(100), 10);
  EXPECT_EQ(rdd.take(5), (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(rdd.take(0), std::vector<int>{});
  EXPECT_EQ(rdd.take(1000).size(), 100u);  // more than available
}

TEST(Take, ShortCircuitsLaterPartitions) {
  Context ctx(small_cluster());
  std::atomic<int> computed{0};
  auto rdd = ctx.parallelize(iota(100), 10).map([&](const int& x) {
    computed.fetch_add(1);
    return x;
  });
  (void)rdd.take(5);
  EXPECT_EQ(computed.load(), 10);  // only partition 0 (10 elements)
}

TEST(First, ReturnsHeadOrThrows) {
  Context ctx(small_cluster());
  EXPECT_EQ(ctx.parallelize(iota(10), 3).first(), 0);
  auto empty = ctx.parallelize(std::vector<int>{});
  try {
    (void)empty.first();
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    EXPECT_EQ(e.kind(), EngineErrorKind::kEmptyFirst);
    EXPECT_NE(std::string(e.what()).find("empty RDD"), std::string::npos);
  }
}

TEST(CountByValue, Histogram) {
  Context ctx(small_cluster());
  std::vector<int> data{1, 2, 2, 3, 3, 3};
  auto hist = ctx.parallelize(std::move(data), 3).count_by_value();
  EXPECT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist.at(1), 1u);
  EXPECT_EQ(hist.at(2), 2u);
  EXPECT_EQ(hist.at(3), 3u);
}

TEST(Coalesce, MergesPartitionsPreservingOrder) {
  Context ctx(small_cluster());
  auto rdd = ctx.parallelize(iota(100), 10).coalesce(3);
  EXPECT_EQ(rdd.num_partitions(), 3u);
  EXPECT_EQ(rdd.collect(), iota(100));
}

TEST(Coalesce, ClampsToExistingPartitionCount) {
  Context ctx(small_cluster());
  auto rdd = ctx.parallelize(iota(10), 2).coalesce(50);
  EXPECT_EQ(rdd.num_partitions(), 2u);
  EXPECT_EQ(rdd.count(), 10u);
}

TEST(Coalesce, DownToOne) {
  Context ctx(small_cluster());
  auto rdd = ctx.parallelize(iota(64), 16).coalesce(1);
  EXPECT_EQ(rdd.num_partitions(), 1u);
  EXPECT_EQ(rdd.collect(), iota(64));
}

TEST(ZipWithIndex, GlobalIndicesInPartitionOrder) {
  Context ctx(small_cluster());
  auto zipped = ctx.parallelize(iota(100), 7)
                    .map([](const int& x) { return x * 2; })
                    .zip_with_index()
                    .collect();
  ASSERT_EQ(zipped.size(), 100u);
  for (u64 i = 0; i < zipped.size(); ++i) {
    EXPECT_EQ(zipped[i].first, static_cast<int>(2 * i));
    EXPECT_EQ(zipped[i].second, i);
  }
}

TEST(ZipWithIndex, EmptyRdd) {
  Context ctx(small_cluster());
  EXPECT_TRUE(
      ctx.parallelize(std::vector<int>{}).zip_with_index().collect().empty());
}

TEST(AggregateByKey, ComputesPerKeyAverageParts) {
  Context ctx(small_cluster());
  std::vector<std::pair<int, double>> pairs;
  for (int i = 0; i < 100; ++i) pairs.emplace_back(i % 4, i);
  // Accumulate (sum, count) pairs to compute averages downstream.
  using Acc = std::pair<double, u64>;
  auto result =
      ctx.parallelize(std::move(pairs), 6)
          .aggregate_by_key(
              Acc{0.0, 0},
              [](Acc acc, const double& v) {
                return Acc{acc.first + v, acc.second + 1};
              },
              [](Acc a, const Acc& b) {
                return Acc{a.first + b.first, a.second + b.second};
              })
          .collect_as_map();
  ASSERT_EQ(result.size(), 4u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(result.at(k).second, 25u);
    // Sum of k, k+4, ..., k+96.
    EXPECT_DOUBLE_EQ(result.at(k).first, 25.0 * k + 4.0 * (24 * 25 / 2));
  }
}

TEST(AggregateByKey, EquivalentToReduceByKeyForSameTypes) {
  Context ctx(small_cluster());
  Rng rng(4);
  std::vector<std::pair<u32, u64>> pairs;
  for (int i = 0; i < 500; ++i) {
    pairs.emplace_back(static_cast<u32>(rng.below(20)), rng.below(5));
  }
  auto a = ctx.parallelize(std::vector<std::pair<u32, u64>>(pairs), 5)
               .reduce_by_key([](u64 x, u64 y) { return x + y; })
               .collect_as_map();
  auto b = ctx.parallelize(std::move(pairs), 5)
               .aggregate_by_key(
                   u64{0}, [](u64 acc, const u64& v) { return acc + v; },
                   [](u64 x, const u64& y) { return x + y; })
               .collect_as_map();
  EXPECT_EQ(a, b);
}

TEST(TextFile, SplitsLinesAndChargesLoad) {
  Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  const std::string text = "alpha beta\ngamma\n\ndelta";
  fs.write("data/lines.txt", std::vector<u8>(text.begin(), text.end()));

  auto lines = ctx.text_file(fs, "data/lines.txt");
  EXPECT_EQ(lines.collect(),
            (std::vector<std::string>{"alpha beta", "gamma", "delta"}));

  bool found = false;
  for (const auto& stage : ctx.report().stages()) {
    if (stage.label.rfind("textFile:", 0) == 0) {
      EXPECT_EQ(stage.dfs_read_bytes, text.size());
      EXPECT_FALSE(stage.tasks.empty());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TextFile, WordCountPipeline) {
  Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  const std::string text = "a b a\nb c\na\n";
  fs.write("wc.txt", std::vector<u8>(text.begin(), text.end()));

  auto counts =
      ctx.text_file(fs, "wc.txt")
          .flat_map([](const std::string& line) {
            std::vector<std::string> words;
            size_t start = 0;
            for (size_t i = 0; i <= line.size(); ++i) {
              if (i == line.size() || line[i] == ' ') {
                if (i > start) words.push_back(line.substr(start, i - start));
                start = i + 1;
              }
            }
            return words;
          })
          .map([](const std::string& w) {
            return std::pair<std::string, u64>(w, 1);
          })
          .reduce_by_key([](u64 a, u64 b) { return a + b; })
          .collect_as_map();
  EXPECT_EQ(counts.at("a"), 3u);
  EXPECT_EQ(counts.at("b"), 2u);
  EXPECT_EQ(counts.at("c"), 1u);
}

/// Property sweep: join against a serial reference across partitionings.
class JoinSweep : public ::testing::TestWithParam<std::tuple<u32, u32>> {};

TEST_P(JoinSweep, MatchesSerialJoin) {
  const auto [left_parts, right_parts] = GetParam();
  Context ctx(small_cluster());
  Rng rng(left_parts * 31 + right_parts);
  std::vector<std::pair<u32, u32>> left, right;
  for (int i = 0; i < 400; ++i) {
    left.emplace_back(static_cast<u32>(rng.below(40)), static_cast<u32>(i));
    right.emplace_back(static_cast<u32>(rng.below(40)),
                       static_cast<u32>(i + 1000));
  }

  std::vector<std::pair<u32, std::pair<u32, u32>>> expected;
  for (const auto& [lk, lv] : left) {
    for (const auto& [rk, rv] : right) {
      if (lk == rk) expected.emplace_back(lk, std::make_pair(lv, rv));
    }
  }
  std::sort(expected.begin(), expected.end());

  auto got = ctx.parallelize(std::move(left), left_parts)
                 .join(ctx.parallelize(std::move(right), right_parts))
                 .collect();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, JoinSweep,
                         ::testing::Combine(::testing::Values(1u, 3u, 8u),
                                            ::testing::Values(1u, 5u)));

}  // namespace
}  // namespace yafim::engine
