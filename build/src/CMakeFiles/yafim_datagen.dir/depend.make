# Empty dependencies file for yafim_datagen.
# This may be replaced when dependencies are built.
