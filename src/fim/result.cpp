#include "fim/result.h"

#include <algorithm>

namespace yafim::fim {

const SupportMap& FrequentItemsets::level(u32 k) const {
  static const SupportMap kEmpty;
  if (k == 0 || k > levels_.size()) return kEmpty;
  return levels_[k - 1];
}

void FrequentItemsets::add(Itemset itemset, u64 support) {
  YAFIM_CHECK(!itemset.empty(), "cannot add the empty itemset");
  YAFIM_DCHECK(is_canonical(itemset), "itemset must be canonical");
  const u32 k = static_cast<u32>(itemset.size());
  if (levels_.size() < k) levels_.resize(k);
  auto [it, inserted] = levels_[k - 1].emplace(std::move(itemset), support);
  YAFIM_CHECK(inserted || it->second == support,
              "conflicting supports for the same itemset");
}

u64 FrequentItemsets::support_of(const Itemset& itemset) const {
  if (itemset.empty() || itemset.size() > levels_.size()) return 0;
  const SupportMap& lvl = levels_[itemset.size() - 1];
  auto it = lvl.find(itemset);
  return it == lvl.end() ? 0 : it->second;
}

u64 FrequentItemsets::total() const {
  u64 total = 0;
  for (const SupportMap& lvl : levels_) total += lvl.size();
  return total;
}

std::vector<std::pair<Itemset, u64>> FrequentItemsets::sorted() const {
  std::vector<std::pair<Itemset, u64>> out;
  out.reserve(total());
  for (const SupportMap& lvl : levels_) {
    for (const auto& [itemset, support] : lvl) {
      out.emplace_back(itemset, support);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.first.size() != b.first.size()) {
      return a.first.size() < b.first.size();
    }
    return a.first < b.first;
  });
  return out;
}

bool FrequentItemsets::same_itemsets(const FrequentItemsets& other) const {
  // Trailing empty levels are not a semantic difference.
  auto effective_levels = [](const std::vector<SupportMap>& levels) {
    size_t n = levels.size();
    while (n > 0 && levels[n - 1].empty()) --n;
    return n;
  };
  const size_t n = effective_levels(levels_);
  if (n != effective_levels(other.levels_)) return false;
  for (size_t i = 0; i < n; ++i) {
    if (levels_[i] != other.levels_[i]) return false;
  }
  return true;
}

}  // namespace yafim::fim
