#!/usr/bin/env bash
# clang-tidy lane: run the curated .clang-tidy checks over the repo's own
# sources, using the compilation database CMake exports on every configure
# (CMAKE_EXPORT_COMPILE_COMMANDS is on unconditionally).
#
#   scripts/lint.sh [BUILD_DIR]        # default BUILD_DIR: build
#
# Scope is src/ and examples/: the translation units whose idiom the check
# set was curated against. (bench/ is dominated by google-benchmark macro
# expansion, tests/ by gtest's; both drown the lane in third-party noise.)
# Exits non-zero on any finding (.clang-tidy sets WarningsAsErrors: '*').
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: $build_dir/compile_commands.json not found" >&2
  echo "configure first: cmake -B $build_dir -S ." >&2
  exit 2
fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "error: $tidy not found (set CLANG_TIDY to point at a binary)" >&2
  exit 2
fi
"$tidy" --version | head -n 2

mapfile -t files < <(git ls-files 'src/*.cpp' 'src/*/*.cpp' 'examples/*.cpp')
echo "linting ${#files[@]} translation units against $(pwd)/.clang-tidy"

# xargs -P fans the single-threaded clang-tidy out across cores; it exits
# 123 if any invocation failed, which set -e turns into the lane failing.
printf '%s\n' "${files[@]}" |
  xargs -P "$(nproc)" -n 2 "$tidy" -p "$build_dir" --quiet

echo "clang-tidy: no findings"
