#include "simfs/simfs.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/checksum.h"

namespace yafim::simfs {

namespace {

const char* kind_name(SimFSErrorKind kind) {
  switch (kind) {
    case SimFSErrorKind::kNotFound: return "not found";
    case SimFSErrorKind::kCorrupt: return "unrecoverably corrupt";
  }
  return "unknown";
}

}  // namespace

SimFSError::SimFSError(std::string path, SimFSErrorKind kind)
    : std::runtime_error("simfs: '" + path + "' " + kind_name(kind)),
      path_(std::move(path)),
      kind_(kind) {}

SimFSError::SimFSError(std::string path, SimFSErrorKind kind, u32 block,
                       u32 replicas)
    : std::runtime_error("simfs: '" + path + "' " + kind_name(kind) +
                         " (block " + std::to_string(block) + ": all " +
                         std::to_string(replicas) +
                         " replicas failed verification)"),
      path_(std::move(path)),
      kind_(kind),
      block_(block),
      replicas_(replicas) {}

double SimFS::write(const std::string& path, std::vector<u8> data) {
  const u64 n = data.size();
  const double seconds = model_.dfs_write_seconds(n);

  StoredFile file;
  file.data = std::move(data);
  const u32 nblocks = blocks_of(n);
  file.block_sums.reserve(nblocks);
  for (u32 b = 0; b < nblocks; ++b) {
    const u64 offset = u64{b} * block_bytes();
    const u64 len = std::min<u64>(block_bytes(), n - offset);
    file.block_sums.push_back(xxh64(file.data.data() + offset, len));
  }

  util::MutexLock lock(mutex_);
  files_[path] = std::move(file);
  bytes_written_ += n;
  return seconds;
}

std::vector<u8> SimFS::read(const std::string& path,
                            double* sim_seconds) const {
  util::MutexLock lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) throw SimFSError(path, SimFSErrorKind::kNotFound);
  const StoredFile& file = it->second;
  const u64 n = file.data.size();
  bytes_read_ += n;
  double seconds = model_.dfs_read_seconds(n);
  std::vector<u8> out = file.data;

  if (verify_) {
    const u64 path_hash = xxh64(std::string_view(path));
    const u32 nblocks = blocks_of(n);
    const u32 replicas = std::max<u32>(1, cluster_.hdfs_replication);
    for (u32 b = 0; b < nblocks; ++b) {
      const u64 offset = u64{b} * block_bytes();
      const u64 len = std::min<u64>(block_bytes(), n - offset);
      bool ok = false;
      for (u32 attempt = 0; attempt < replicas; ++attempt) {
        if (attempt > 0) {
          // Pull the block again from the next replica: restore the
          // pristine bytes and charge another block read.
          std::copy_n(file.data.begin() + static_cast<size_t>(offset), len,
                      out.begin() + static_cast<size_t>(offset));
          seconds += model_.dfs_read_seconds(len);
        }
        if (len > 0 && corrupt_.draw_block(path_hash, b, attempt)) {
          const u64 bit = corrupt_.flip_bit(path_hash, b, attempt, len);
          out[static_cast<size_t>(offset + bit / 8)] ^=
              static_cast<u8>(1u << (bit % 8));
          ++integrity_.corrupt_injected;
        }
        ++integrity_.blocks_verified;
        obs::count(obs::CounterId::kBlocksVerified);
        if (xxh64(out.data() + offset, len) == file.block_sums[b]) {
          ok = true;
          if (attempt > 0) {
            ++integrity_.repaired_by_replica;
            obs::count(obs::CounterId::kCorruptRepairedReplica);
          }
          break;
        }
        ++integrity_.corrupt_detected;
        obs::count(obs::CounterId::kBlocksCorrupt);
      }
      if (!ok) {
        ++integrity_.unrecoverable;
        throw SimFSError(path, SimFSErrorKind::kCorrupt, b, replicas);
      }
    }
  }

  if (sim_seconds) *sim_seconds = seconds;
  return out;
}

bool SimFS::exists(const std::string& path) const {
  util::MutexLock lock(mutex_);
  return files_.count(path) > 0;
}

bool SimFS::remove(const std::string& path) {
  util::MutexLock lock(mutex_);
  return files_.erase(path) > 0;
}

std::optional<FileStat> SimFS::stat(const std::string& path) const {
  util::MutexLock lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  FileStat st;
  st.bytes = it->second.data.size();
  st.blocks = blocks_of(st.bytes);
  return st;
}

std::vector<std::string> SimFS::list(const std::string& prefix) const {
  util::MutexLock lock(mutex_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

u64 SimFS::total_bytes_written() const {
  util::MutexLock lock(mutex_);
  return bytes_written_;
}

u64 SimFS::total_bytes_read() const {
  util::MutexLock lock(mutex_);
  return bytes_read_;
}

IntegrityStats SimFS::integrity() const {
  util::MutexLock lock(mutex_);
  return integrity_;
}

void SimFS::set_verify_checksums(bool on) {
  util::MutexLock lock(mutex_);
  verify_ = on;
}

void SimFS::debug_corrupt(const std::string& path, u64 byte_index, u8 bit) {
  util::MutexLock lock(mutex_);
  auto it = files_.find(path);
  YAFIM_CHECK(it != files_.end(), "debug_corrupt: no such path");
  YAFIM_CHECK(byte_index < it->second.data.size(),
              "debug_corrupt: byte index out of range");
  it->second.data[static_cast<size_t>(byte_index)] ^=
      static_cast<u8>(1u << (bit % 8));
}

}  // namespace yafim::simfs
