// SPC / FPC / DPC (Lin, Lee & Hsueh 2012): the three MapReduce adaptations
// of Apriori the paper's related-work section discusses. All three share
// MRApriori's job structure; they differ in how many candidate levels one
// job counts:
//
//   SPC  -- single pass per job (equivalent to MRApriori's k-phase shape);
//   FPC  -- fixed passes combined: after the first two levels, each job
//           counts `fixed_passes` consecutive candidate levels, generating
//           level j+1 candidates from level j *candidates* (a superset of
//           the true Cj+1, so results stay exact);
//   DPC  -- dynamic passes combined: levels are batched greedily while the
//           total candidate count stays within a budget.
//
// Fewer jobs trade extra (possibly wasted) counting work for saved job
// startups -- the trade-off our ablation bench quantifies.
#pragma once

#include <string>

#include "engine/context.h"
#include "fim/dataset.h"
#include "fim/result.h"
#include "simfs/simfs.h"

namespace yafim::fim {

enum class CombineStrategy { kSinglePass, kFixedPasses, kDynamic };

struct LinOptions {
  double min_support = 0.1;
  CombineStrategy strategy = CombineStrategy::kSinglePass;
  /// FPC: candidate levels per job once level 2 is done.
  u32 fixed_passes = 3;
  /// DPC: keep batching levels while the summed candidate count is below
  /// this budget.
  u64 dynamic_candidate_budget = 20000;

  u32 num_mappers = 0;
  u32 num_reducers = 0;
  u32 branching = 0;  // 0 = auto (HashTree::default_branching)
  u32 leaf_capacity = 16;
  std::string work_dir = "hdfs://lin";
};

struct LinRun {
  MiningRun run;
  /// MapReduce jobs executed (the quantity the combining strategies trade
  /// against wasted candidate counting).
  u32 num_jobs = 0;
  /// Candidates counted that turned out infrequent at generation levels
  /// beyond the verified one (FPC/DPC overshoot).
  u64 speculative_candidates = 0;
};

/// Mine with the selected combining strategy. Results are always exact.
/// In `run.passes`, each counted level gets an entry; for combined jobs the
/// job's simulated time is attributed to the batch's first level.
LinRun lin_mine(engine::Context& ctx, simfs::SimFS& fs,
                const std::string& input_path, const LinOptions& options);

/// Convenience overload staging `db` onto `fs` first.
LinRun lin_mine(engine::Context& ctx, simfs::SimFS& fs,
                const TransactionDB& db, const LinOptions& options);

}  // namespace yafim::fim
