
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fim/apriori_seq.cpp" "src/CMakeFiles/yafim_fim.dir/fim/apriori_seq.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/apriori_seq.cpp.o.d"
  "/root/repo/src/fim/big_fim.cpp" "src/CMakeFiles/yafim_fim.dir/fim/big_fim.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/big_fim.cpp.o.d"
  "/root/repo/src/fim/candidate_gen.cpp" "src/CMakeFiles/yafim_fim.dir/fim/candidate_gen.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/candidate_gen.cpp.o.d"
  "/root/repo/src/fim/condensed.cpp" "src/CMakeFiles/yafim_fim.dir/fim/condensed.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/condensed.cpp.o.d"
  "/root/repo/src/fim/dataset.cpp" "src/CMakeFiles/yafim_fim.dir/fim/dataset.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/dataset.cpp.o.d"
  "/root/repo/src/fim/dist_eclat.cpp" "src/CMakeFiles/yafim_fim.dir/fim/dist_eclat.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/dist_eclat.cpp.o.d"
  "/root/repo/src/fim/eclat.cpp" "src/CMakeFiles/yafim_fim.dir/fim/eclat.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/eclat.cpp.o.d"
  "/root/repo/src/fim/fp_growth.cpp" "src/CMakeFiles/yafim_fim.dir/fim/fp_growth.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/fp_growth.cpp.o.d"
  "/root/repo/src/fim/fp_tree.cpp" "src/CMakeFiles/yafim_fim.dir/fim/fp_tree.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/fp_tree.cpp.o.d"
  "/root/repo/src/fim/hash_tree.cpp" "src/CMakeFiles/yafim_fim.dir/fim/hash_tree.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/hash_tree.cpp.o.d"
  "/root/repo/src/fim/itemset.cpp" "src/CMakeFiles/yafim_fim.dir/fim/itemset.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/itemset.cpp.o.d"
  "/root/repo/src/fim/mr_apriori.cpp" "src/CMakeFiles/yafim_fim.dir/fim/mr_apriori.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/mr_apriori.cpp.o.d"
  "/root/repo/src/fim/pfp.cpp" "src/CMakeFiles/yafim_fim.dir/fim/pfp.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/pfp.cpp.o.d"
  "/root/repo/src/fim/result.cpp" "src/CMakeFiles/yafim_fim.dir/fim/result.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/result.cpp.o.d"
  "/root/repo/src/fim/rules.cpp" "src/CMakeFiles/yafim_fim.dir/fim/rules.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/rules.cpp.o.d"
  "/root/repo/src/fim/son.cpp" "src/CMakeFiles/yafim_fim.dir/fim/son.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/son.cpp.o.d"
  "/root/repo/src/fim/spc_fpc_dpc.cpp" "src/CMakeFiles/yafim_fim.dir/fim/spc_fpc_dpc.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/spc_fpc_dpc.cpp.o.d"
  "/root/repo/src/fim/yafim.cpp" "src/CMakeFiles/yafim_fim.dir/fim/yafim.cpp.o" "gcc" "src/CMakeFiles/yafim_fim.dir/fim/yafim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/yafim_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yafim_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yafim_simfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yafim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/yafim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
