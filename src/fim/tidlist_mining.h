// Shared tidlist machinery for the vertical (Eclat-family) miners:
// Dist-Eclat's worker subtrees and BigFIM's reducer subtrees run exactly
// this depth-first equivalence-class mining.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "engine/work.h"
#include "fim/itemset.h"

namespace yafim::fim {

using TidList = std::vector<u32>;

/// Sorted-tidlist intersection, charged to the engine work counter (one
/// unit per element touched -- the real cost profile of vertical mining).
inline TidList intersect_tidlists(const TidList& a, const TidList& b) {
  engine::work::add(a.size() + b.size());
  TidList out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Depth-first mining of one equivalence class: `prefix` with frequent
/// one-item extensions `siblings` (item, tidlist of prefix ∪ {item}),
/// items ascending and all greater than max(prefix). Emits
/// (itemset, support) for every frequent itemset strictly containing
/// `prefix` within this class.
inline void mine_tidlist_class(
    const Itemset& prefix,
    std::vector<std::pair<Item, TidList>>& siblings, u64 min_count,
    std::vector<std::pair<Itemset, u64>>& out) {
  for (size_t i = 0; i < siblings.size(); ++i) {
    Itemset found = prefix;
    found.push_back(siblings[i].first);
    out.emplace_back(found, siblings[i].second.size());

    std::vector<std::pair<Item, TidList>> extensions;
    for (size_t j = i + 1; j < siblings.size(); ++j) {
      TidList tids = intersect_tidlists(siblings[i].second,
                                        siblings[j].second);
      if (tids.size() >= min_count) {
        extensions.emplace_back(siblings[j].first, std::move(tids));
      }
    }
    if (!extensions.empty()) {
      mine_tidlist_class(found, extensions, min_count, out);
    }
  }
}

}  // namespace yafim::fim
