file(REMOVE_RECURSE
  "libyafim_util.a"
)
