file(REMOVE_RECURSE
  "libyafim_fim.a"
)
