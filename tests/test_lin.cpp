// Tests for the SPC / FPC / DPC combining strategies (Lin et al.): all
// three must stay exact while trading job count against speculative
// candidate counting.
#include <gtest/gtest.h>

#include "fim/apriori_seq.h"
#include "fim/spc_fpc_dpc.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

engine::Context::Options small_cluster() {
  engine::Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(3);
  opts.host_threads = 4;
  return opts;
}

TransactionDB deep_db(u64 seed) {
  // Two overlapping planted lattices: items 0-5 at 60% and items 4-9 at
  // 45%. Cross-lattice pairs land below the 40% threshold, so combined
  // jobs that generate candidates-from-candidates count speculative sets a
  // per-level run would have pruned.
  Rng rng(seed);
  std::vector<Transaction> tx;
  for (int i = 0; i < 300; ++i) {
    Transaction t;
    if (rng.bernoulli(0.6)) {
      for (u32 item = 0; item < 6; ++item) t.push_back(item);
    }
    if (rng.bernoulli(0.45)) {
      for (u32 item = 4; item < 10; ++item) t.push_back(item);
    }
    for (u32 item = 10; item < 18; ++item) {
      if (rng.bernoulli(0.2)) t.push_back(item);
    }
    if (t.empty()) t.push_back(10);
    fim::canonicalize(t);
    tx.push_back(std::move(t));
  }
  return TransactionDB(std::move(tx));
}

LinRun run_strategy(const TransactionDB& db, CombineStrategy strategy,
                    double min_support) {
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  LinOptions opt;
  opt.min_support = min_support;
  opt.strategy = strategy;
  return lin_mine(ctx, fs, db, opt);
}

TEST(Lin, AllStrategiesExact) {
  const auto db = deep_db(1);
  AprioriOptions sopt;
  sopt.min_support = 0.4;
  const auto seq = apriori_mine(db, sopt);
  ASSERT_GE(seq.itemsets.max_k(), 5u);

  for (const auto strategy :
       {CombineStrategy::kSinglePass, CombineStrategy::kFixedPasses,
        CombineStrategy::kDynamic}) {
    const auto lin = run_strategy(db, strategy, 0.4);
    EXPECT_TRUE(lin.run.itemsets.same_itemsets(seq.itemsets))
        << "strategy=" << static_cast<int>(strategy)
        << " got=" << lin.run.itemsets.total()
        << " want=" << seq.itemsets.total();
  }
}

TEST(Lin, SpcRunsOneJobPerLevel) {
  const auto db = deep_db(2);
  const auto spc = run_strategy(db, CombineStrategy::kSinglePass, 0.4);
  EXPECT_EQ(spc.num_jobs, spc.run.itemsets.max_k());
  EXPECT_EQ(spc.speculative_candidates, 0u);
}

TEST(Lin, CombiningReducesJobCount) {
  const auto db = deep_db(3);
  const auto spc = run_strategy(db, CombineStrategy::kSinglePass, 0.4);
  const auto fpc = run_strategy(db, CombineStrategy::kFixedPasses, 0.4);
  const auto dpc = run_strategy(db, CombineStrategy::kDynamic, 0.4);
  EXPECT_LT(fpc.num_jobs, spc.num_jobs);
  EXPECT_LT(dpc.num_jobs, spc.num_jobs);
}

TEST(Lin, CombiningCountsSpeculativeCandidates) {
  const auto db = deep_db(4);
  const auto dpc = run_strategy(db, CombineStrategy::kDynamic, 0.4);
  // Candidates generated from unverified candidates include infrequent
  // ones that a per-level run would have pruned.
  EXPECT_GT(dpc.speculative_candidates, 0u);
}

TEST(Lin, CombiningSavesSimTimeWhenStartupDominates) {
  const auto db = deep_db(5);
  const auto spc = run_strategy(db, CombineStrategy::kSinglePass, 0.4);
  const auto dpc = run_strategy(db, CombineStrategy::kDynamic, 0.4);
  // Small dataset, deep lattice: job startup dominates, so fewer jobs win.
  EXPECT_LT(dpc.run.total_seconds(), spc.run.total_seconds());
}

TEST(Lin, DynamicBudgetLimitsBatch) {
  const auto db = deep_db(6);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  LinOptions opt;
  opt.min_support = 0.4;
  opt.strategy = CombineStrategy::kDynamic;
  opt.dynamic_candidate_budget = 1;  // degenerate: one level per batch
  const auto lin = lin_mine(ctx, fs, db, opt);
  EXPECT_EQ(lin.num_jobs, lin.run.itemsets.max_k());
}

TEST(Lin, PassStatsCoverEveryLevel) {
  const auto db = deep_db(7);
  const auto fpc = run_strategy(db, CombineStrategy::kFixedPasses, 0.4);
  ASSERT_EQ(fpc.run.passes.size(), fpc.run.itemsets.max_k());
  for (size_t i = 0; i < fpc.run.passes.size(); ++i) {
    EXPECT_EQ(fpc.run.passes[i].k, i + 1);
    EXPECT_EQ(fpc.run.passes[i].frequent,
              fpc.run.itemsets.level(static_cast<u32>(i + 1)).size());
  }
}

TEST(Lin, EmptyDatabase) {
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  LinOptions opt;
  const auto lin = lin_mine(ctx, fs, TransactionDB(), opt);
  EXPECT_EQ(lin.run.itemsets.total(), 0u);
  EXPECT_EQ(lin.num_jobs, 0u);
}

/// Exactness sweep across strategies and thresholds.
class LinSweep : public ::testing::TestWithParam<
                     std::tuple<CombineStrategy, double, u32>> {};

TEST_P(LinSweep, MatchesReference) {
  const auto [strategy, min_support, seed] = GetParam();
  const auto db = deep_db(100 + seed);
  AprioriOptions sopt;
  sopt.min_support = min_support;
  const auto seq = apriori_mine(db, sopt);
  const auto lin = run_strategy(db, strategy, min_support);
  EXPECT_TRUE(lin.run.itemsets.same_itemsets(seq.itemsets));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinSweep,
    ::testing::Combine(::testing::Values(CombineStrategy::kSinglePass,
                                         CombineStrategy::kFixedPasses,
                                         CombineStrategy::kDynamic),
                       ::testing::Values(0.3, 0.5),
                       ::testing::Values(1u, 2u)));

}  // namespace
}  // namespace yafim::fim
