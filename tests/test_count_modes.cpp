// Count-mode equivalence and pricing tests.
//
// The dense candidate-id path (CountMode::kCandidateId) and the vertical
// bitmap path (CountMode::kVerticalBitmap) must be exact drop-ins for the
// paper-faithful itemset-keyed path: bit-identical FrequentItemsets across
// pass batching, fault/corruption injection, checkpoint resume and both
// engines, with mode-invariant observability counters (candidate
// generation, broadcast/DFS traffic) agreeing as well. Also covers the
// sum_arrays RDD action the dense paths are built on, the adversarial-hash
// reduce bucket case, and the stage-pricing exactness fixes (split_work).
#include <gtest/gtest.h>

#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "engine/error.h"
#include "engine/rdd.h"
#include "fim/apriori_seq.h"
#include "fim/checkpoint.h"
#include "fim/mr_apriori.h"
#include "fim/yafim.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

constexpr CountMode kAllModes[] = {CountMode::kItemsetKey,
                                   CountMode::kCandidateId,
                                   CountMode::kVerticalBitmap};

engine::Context::Options small_cluster() {
  engine::Context::Options opts;
  opts.cluster = sim::ClusterConfig::with_nodes(3);
  opts.host_threads = 4;
  // Pin injection off so exact counter assertions hold even when the whole
  // binary runs under the CI fault matrix; faulty cases opt in explicitly.
  opts.fault = engine::FaultProfile{};
  return opts;
}

TransactionDB random_db(u32 universe, int transactions, double density,
                        u64 seed) {
  Rng rng(seed);
  std::vector<Transaction> tx;
  for (int i = 0; i < transactions; ++i) {
    Transaction t;
    for (u32 item = 0; item < universe; ++item) {
      if (rng.bernoulli(density)) t.push_back(item);
    }
    if (t.empty()) t.push_back(static_cast<Item>(rng.below(universe)));
    tx.push_back(std::move(t));
  }
  return TransactionDB(std::move(tx));
}

MiningRun run_yafim(const TransactionDB& db, CountMode mode, u32 combine,
                    engine::Context::Options copts = small_cluster()) {
  engine::Context ctx(copts);
  simfs::SimFS fs(ctx.cluster(), copts.fault.corrupt);
  YafimOptions opt;
  opt.min_support = 0.2;
  opt.count_mode = mode;
  opt.combine_passes = combine;
  return yafim_mine(ctx, fs, db, opt);
}

// ---- bit-identity matrix ------------------------------------------------

TEST(CountModes, YafimBitIdenticalAcrossModesAndBatching) {
  const auto db = random_db(16, 250, 0.35, 42);
  AprioriOptions sopt;
  sopt.min_support = 0.2;
  const auto seq = apriori_mine(db, sopt);
  ASSERT_GT(seq.itemsets.total(), 0u);

  for (u32 combine : {1u, 3u}) {
    const auto faithful = run_yafim(db, CountMode::kItemsetKey, combine);
    EXPECT_TRUE(faithful.itemsets.same_itemsets(seq.itemsets))
        << "combine=" << combine;
    for (CountMode mode :
         {CountMode::kCandidateId, CountMode::kVerticalBitmap}) {
      const auto run = run_yafim(db, mode, combine);
      EXPECT_TRUE(run.itemsets.same_itemsets(faithful.itemsets))
          << count_mode_name(mode) << " combine=" << combine;
      // Same candidate levels were generated and verified in every mode.
      ASSERT_EQ(run.passes.size(), faithful.passes.size());
      for (size_t i = 0; i < run.passes.size(); ++i) {
        EXPECT_EQ(run.passes[i].k, faithful.passes[i].k);
        EXPECT_EQ(run.passes[i].candidates, faithful.passes[i].candidates);
        EXPECT_EQ(run.passes[i].frequent, faithful.passes[i].frequent);
      }
    }
  }
}

TEST(CountModes, YafimBitIdenticalUnderFaultInjection) {
  const auto db = random_db(14, 200, 0.4, 7);
  const auto reference = run_yafim(db, CountMode::kItemsetKey, 1);

  for (CountMode mode : kAllModes) {
    for (u32 combine : {1u, 3u}) {
      auto copts = small_cluster();
      copts.fault.seed = 99;
      copts.fault.task_failure_p = 0.05;
      copts.fault.straggler_p = 0.05;
      const auto run = run_yafim(db, mode, combine, copts);
      EXPECT_TRUE(run.itemsets.same_itemsets(reference.itemsets))
          << count_mode_name(mode) << " combine=" << combine;
    }
  }
}

TEST(CountModes, YafimBitIdenticalUnderCorruptionInjection) {
  const auto db = random_db(14, 200, 0.4, 8);
  const auto reference = run_yafim(db, CountMode::kItemsetKey, 1);

  for (CountMode mode : kAllModes) {
    auto copts = small_cluster();
    copts.cluster.hdfs_block_bytes = 1024;
    copts.fault.corrupt.seed = 11;
    copts.fault.corrupt.block_p = 0.05;
    copts.fault.corrupt.cached_p = 0.1;
    const auto run = run_yafim(db, mode, 1, copts);
    EXPECT_TRUE(run.itemsets.same_itemsets(reference.itemsets))
        << count_mode_name(mode);
  }
}

TEST(CountModes, BitmapResumeFromCheckpointIsBitIdentical) {
  // Crash mid-mine in bitmap mode, resume from the snapshot: the rebuilt
  // vertical index (lazily re-created on the first post-resume pass) must
  // not perturb the mined output.
  const auto db = random_db(16, 200, 0.45, 100);
  const auto reference = run_yafim(db, CountMode::kVerticalBitmap, 1);
  ASSERT_GE(reference.passes.size(), 3u) << "need k >= 3 to test resume";

  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "ck_bitmap_resume";
  std::filesystem::remove_all(dir);
  DirCheckpointStore store(dir.string());
  engine::Context::Options copts = small_cluster();
  YafimOptions opt;
  opt.min_support = 0.2;
  opt.count_mode = CountMode::kVerticalBitmap;
  opt.checkpoint = &store;
  opt.stop_after_pass = 2;
  {
    engine::Context ctx(copts);
    simfs::SimFS fs(ctx.cluster());
    const auto partial = yafim_mine(ctx, fs, db, opt);
    EXPECT_EQ(partial.passes.back().k, 2u);
  }
  opt.stop_after_pass = 0;
  engine::Context ctx(copts);
  simfs::SimFS fs(ctx.cluster());
  const auto resumed = yafim_mine(ctx, fs, db, opt);
  EXPECT_EQ(resumed.resumed_pass, 2u);
  EXPECT_EQ(resumed.itemsets.sorted(), reference.itemsets.sorted());
}

TEST(CountModes, MrAprioriBitIdenticalAcrossModes) {
  const auto db = random_db(16, 250, 0.35, 42);
  const auto yafim_ref = run_yafim(db, CountMode::kCandidateId, 1);

  for (CountMode mode : kAllModes) {
    engine::Context ctx(small_cluster());
    simfs::SimFS fs(ctx.cluster());
    MrAprioriOptions opt;
    opt.min_support = 0.2;
    opt.count_mode = mode;
    const auto run = mr_apriori_mine(ctx, fs, db, opt);
    EXPECT_TRUE(run.itemsets.same_itemsets(yafim_ref.itemsets))
        << count_mode_name(mode);
  }
}

// ---- observability-counter agreement ------------------------------------

/// Counters that must not depend on how counting is performed at all:
/// candidate generation and broadcast/DFS traffic are identical across all
/// three modes.
const obs::CounterId kModeInvariantCounters[] = {
    obs::CounterId::kCandidatesGenerated,
    obs::CounterId::kCandidatesPruned,
    obs::CounterId::kBroadcastBytes,
    obs::CounterId::kDfsReadBytes,
};

/// Probe-effort counters: identical between the two probing modes, and
/// exactly zero for the bitmap mode (no tree walking happens at all).
const obs::CounterId kProbeCounters[] = {
    obs::CounterId::kHashTreeNodesVisited,
    obs::CounterId::kHashTreeCandChecks,
};

std::vector<u64> traced_counters(const TransactionDB& db, CountMode mode,
                                 u32 combine, engine::Context::Options copts,
                                 std::span<const obs::CounterId> ids) {
  obs::CounterRegistry::instance().reset_all();
  obs::set_enabled(true);
  (void)run_yafim(db, mode, combine, copts);
  obs::set_enabled(false);
  std::vector<u64> values;
  for (obs::CounterId id : ids) values.push_back(obs::counter_value(id));
  return values;
}

TEST(CountModes, ModeInvariantCountersAgree) {
  const auto db = random_db(15, 220, 0.35, 21);
  for (u32 combine : {1u, 3u}) {
    const auto faithful = traced_counters(
        db, CountMode::kItemsetKey, combine, small_cluster(),
        kModeInvariantCounters);
    for (CountMode mode :
         {CountMode::kCandidateId, CountMode::kVerticalBitmap}) {
      const auto values = traced_counters(db, mode, combine, small_cluster(),
                                          kModeInvariantCounters);
      ASSERT_EQ(faithful.size(), values.size());
      for (size_t i = 0; i < faithful.size(); ++i) {
        EXPECT_EQ(faithful[i], values[i])
            << count_mode_name(mode) << " "
            << obs::counter_name(kModeInvariantCounters[i])
            << " combine=" << combine;
      }
    }
  }
}

TEST(CountModes, ProbeCountersAgreeBetweenProbingModes) {
  const auto db = random_db(15, 220, 0.35, 21);
  const auto faithful = traced_counters(db, CountMode::kItemsetKey, 1,
                                        small_cluster(), kProbeCounters);
  const auto dense = traced_counters(db, CountMode::kCandidateId, 1,
                                     small_cluster(), kProbeCounters);
  EXPECT_EQ(faithful, dense);
  EXPECT_GT(dense[0], 0u) << "hash-tree probes missing";
}

TEST(CountModes, BitmapModeSkipsProbesAndRecordsBitmapWork) {
  const auto db = random_db(15, 220, 0.35, 21);
  obs::CounterRegistry::instance().reset_all();
  obs::set_enabled(true);
  (void)run_yafim(db, CountMode::kVerticalBitmap, 1);
  obs::set_enabled(false);
  // No per-transaction tree walking on this path...
  EXPECT_EQ(obs::counter_value(obs::CounterId::kHashTreeNodesVisited), 0u);
  EXPECT_EQ(obs::counter_value(obs::CounterId::kHashTreeCandChecks), 0u);
  // ...the work shows up in the bitmap counters instead.
  EXPECT_GT(obs::counter_value(obs::CounterId::kBitmapIndexBytes), 0u);
  EXPECT_GT(obs::counter_value(obs::CounterId::kBitmapAndWords), 0u);
  EXPECT_GT(obs::counter_value(obs::CounterId::kBitmapPopcounts), 0u);
}

TEST(CountModes, CountersReproducibleUnderFaultInjection) {
  // Under injection the retry schedule perturbs probe counters, so the
  // cross-mode comparison no longer applies; what must still hold is exact
  // run-to-run reproducibility for a fixed (mode, seed).
  const auto db = random_db(14, 180, 0.4, 5);
  for (CountMode mode : kAllModes) {
    auto copts = small_cluster();
    copts.fault.seed = 123;
    copts.fault.task_failure_p = 0.08;
    const auto first =
        traced_counters(db, mode, 1, copts, kModeInvariantCounters);
    const auto second =
        traced_counters(db, mode, 1, copts, kModeInvariantCounters);
    EXPECT_EQ(first, second) << count_mode_name(mode);
  }
}

TEST(CountModes, BitIdenticalUnderComposedMemShrinkAndTaskFailures) {
  // Two fault axes in the SAME run: a mid-run executor-memory shrink (which
  // flips later passes to the partitioned candidate store) composed with
  // task-failure injection (which perturbs the retry schedule). Every mode
  // must still produce the clean run's exact itemsets -- the degraded
  // counting path and the retried tasks may not interact destructively.
  const auto db = random_db(14, 200, 0.4, 19);
  const auto clean = run_yafim(db, CountMode::kItemsetKey, 1);
  ASSERT_GT(clean.itemsets.total(), 0u);

  for (u64 seed : {101ull, 211ull}) {
    for (CountMode mode : kAllModes) {
      auto copts = small_cluster();
      copts.fault.seed = seed;
      copts.fault.task_failure_p = 0.08;
      copts.fault.mem_shrink_pass = 2;
      copts.fault.mem_shrink_factor = 1e-9;
      copts.fault.mem_shrink_node = 1;

      engine::Context ctx(copts);
      simfs::SimFS fs(ctx.cluster());
      YafimOptions opt;
      opt.min_support = 0.2;
      opt.count_mode = mode;
      const auto run = yafim_mine(ctx, fs, db, opt);
      EXPECT_TRUE(run.itemsets.same_itemsets(clean.itemsets))
          << count_mode_name(mode) << " seed=" << seed;
      // Both axes actually fired.
      EXPECT_GT(ctx.memory_budget().mem_shrinks_applied(), 0u)
          << count_mode_name(mode) << " seed=" << seed;
      EXPECT_GT(ctx.fault_injector().task_retries(), 0u)
          << count_mode_name(mode) << " seed=" << seed;
      EXPECT_GT(ctx.memory_budget().broadcast_fallbacks(), 0u)
          << count_mode_name(mode) << " seed=" << seed;
    }
  }
}

// ---- sum_arrays ---------------------------------------------------------

TEST(SumArrays, ElementwiseSumAcrossPartitions) {
  engine::Context ctx(small_cluster());
  const size_t width = 37;
  std::vector<std::vector<u64>> arrays;
  std::vector<u64> expected(width, 0);
  Rng rng(3);
  for (int i = 0; i < 24; ++i) {
    std::vector<u64> a(width);
    for (size_t j = 0; j < width; ++j) {
      a[j] = rng.below(1000);
      expected[j] += a[j];
    }
    arrays.push_back(std::move(a));
  }
  const auto merged =
      ctx.parallelize(std::move(arrays), 6).sum_arrays(width);
  EXPECT_EQ(merged, expected);
}

TEST(SumArrays, ShuffleBytesPricedAsArrayWidthPerMapTask) {
  engine::Context ctx(small_cluster());
  const size_t width = 1000;
  const u32 parts = 5;
  std::vector<std::vector<u64>> arrays(parts * 3,
                                       std::vector<u64>(width, 1));
  (void)ctx.parallelize(std::move(arrays), parts).sum_arrays(width, "sum");

  u64 shuffle = 0;
  bool saw_map = false, saw_reduce = false;
  for (const auto& s : ctx.report().stages()) {
    shuffle += s.shuffle_bytes;
    if (s.label == "sum:map-combine") saw_map = true;
    if (s.label == "sum:reduce") saw_reduce = true;
  }
  EXPECT_TRUE(saw_map);
  EXPECT_TRUE(saw_reduce);
  // One width-cell array per map task: 8-byte length prefix + width * u64,
  // independent of how many input arrays each partition held.
  EXPECT_EQ(shuffle, parts * (8 + width * sizeof(u64)));
}

TEST(SumArrays, WidthMismatchThrows) {
  engine::Context ctx(small_cluster());
  std::vector<std::vector<u64>> arrays{{1, 2, 3}, {4, 5}};
  auto rdd = ctx.parallelize(std::move(arrays), 2);
  try {
    (void)rdd.sum_arrays(3);
    FAIL() << "expected EngineError";
  } catch (const engine::EngineError& e) {
    EXPECT_EQ(e.kind(), engine::EngineErrorKind::kArrayWidthMismatch);
  }
}

TEST(SumArrays, EmptyPartitionsContributeZeros) {
  engine::Context ctx(small_cluster());
  // 2 arrays over 8 partitions: most partitions are empty.
  std::vector<std::vector<u64>> arrays{{1, 2}, {10, 20}};
  const auto merged = ctx.parallelize(std::move(arrays), 8).sum_arrays(2);
  EXPECT_EQ(merged, (std::vector<u64>{11, 22}));
}

// ---- adversarial hashing ------------------------------------------------

/// Deterministic hash sending every key to the same reduce bucket.
struct CollidingHash {
  size_t operator()(int) const { return 7; }
};

TEST(ReduceByKey, AdversarialHashAllKeysOneBucket) {
  engine::Context ctx(small_cluster());
  std::vector<std::pair<int, u64>> pairs;
  std::unordered_map<int, u64> expected;
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const int k = static_cast<int>(rng.below(500));
    pairs.emplace_back(k, 1);
    expected[k] += 1;
  }
  auto result = ctx.parallelize(std::move(pairs), 8)
                    .reduce_by_key([](u64 a, u64 b) { return a + b; },
                                   /*out_partitions=*/6, CollidingHash{})
                    .collect();
  // Correct totals even though all 500 keys land in one reduce bucket.
  ASSERT_EQ(result.size(), expected.size());
  for (const auto& [k, v] : result) EXPECT_EQ(v, expected.at(k)) << k;
}

// ---- stage-pricing exactness --------------------------------------------

TEST(Pricing, SplitWorkDistributesRemainderExactly) {
  for (u64 total : {0ull, 1ull, 999ull, 1000ull, 12345ull}) {
    for (u32 tasks : {1u, 3u, 7u, 16u}) {
      const auto recs = sim::split_work(total, tasks);
      ASSERT_EQ(recs.size(), tasks);
      u64 sum = 0, lo = ~0ull, hi = 0;
      for (const auto& r : recs) {
        sum += r.work;
        lo = std::min(lo, r.work);
        hi = std::max(hi, r.work);
      }
      EXPECT_EQ(sum, total) << total << "/" << tasks;
      EXPECT_LE(hi - lo, 1u) << "split must be even";
    }
  }
}

TEST(Pricing, TextFileStageTotalIsExact) {
  engine::Context::Options copts = small_cluster();
  engine::Context ctx(copts);
  simfs::SimFS fs(ctx.cluster());
  // 1009 lines (prime): guaranteed not divisible by the task count, which
  // is what used to truncate up to tasks-1 work units off the stage.
  std::string text;
  for (int i = 0; i < 1009; ++i) text += "line" + std::to_string(i) + "\n";
  fs.write("hdfs://pricing/input.txt",
           std::vector<u8>(text.begin(), text.end()));

  auto lines = ctx.text_file(fs, "hdfs://pricing/input.txt");
  ASSERT_EQ(lines.count("count"), 1009u);

  const auto& stage = ctx.report().stages().front();
  ASSERT_TRUE(stage.label.rfind("textFile:", 0) == 0);
  u64 priced = 0;
  for (const auto& t : stage.tasks) priced += t.work;
  EXPECT_EQ(priced, 1009u * (1 + ctx.cluster().record_parse_work));
}

TEST(Pricing, YafimParseStageTotalIsExact) {
  const auto db = random_db(12, 1009, 0.3, 2);
  engine::Context ctx(small_cluster());
  simfs::SimFS fs(ctx.cluster());
  YafimOptions opt;
  opt.min_support = 0.3;
  (void)yafim_mine(ctx, fs, db, opt);

  bool found = false;
  for (const auto& s : ctx.report().stages()) {
    if (s.label != "load:textFile+parse") continue;
    found = true;
    u64 priced = 0;
    for (const auto& t : s.tasks) priced += t.work;
    EXPECT_EQ(priced, 1009u * (1 + ctx.cluster().record_parse_work));
  }
  EXPECT_TRUE(found);
}

// ---- dense-path stage accounting ---------------------------------------

TEST(CountModes, DensePathRecordsArrayReduceCounters) {
  const auto db = random_db(15, 220, 0.35, 21);
  obs::CounterRegistry::instance().reset_all();
  obs::set_enabled(true);
  (void)run_yafim(db, CountMode::kCandidateId, 1);
  obs::set_enabled(false);
  EXPECT_GT(obs::counter_value(obs::CounterId::kArrayReduceBytes), 0u);
  EXPECT_GT(obs::counter_value(obs::CounterId::kArrayReduceCells), 0u);
}

TEST(CountModes, DenseShuffleSmallerThanFaithful) {
  // The headline accounting claim: candidate-id counting prices its
  // shuffle by the candidate-array width, the faithful path by hits.
  const auto db = random_db(16, 400, 0.35, 33);
  engine::Context ctx_f(small_cluster());
  simfs::SimFS fs_f(ctx_f.cluster());
  YafimOptions faithful;
  faithful.min_support = 0.2;
  faithful.count_mode = CountMode::kItemsetKey;
  (void)yafim_mine(ctx_f, fs_f, db, faithful);

  engine::Context ctx_d(small_cluster());
  simfs::SimFS fs_d(ctx_d.cluster());
  YafimOptions dense = faithful;
  dense.count_mode = CountMode::kCandidateId;
  (void)yafim_mine(ctx_d, fs_d, db, dense);

  EXPECT_LT(ctx_d.report().total_shuffle_bytes(),
            ctx_f.report().total_shuffle_bytes());
}

}  // namespace
}  // namespace yafim::fim
