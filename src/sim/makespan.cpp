#include "sim/makespan.h"

#include <algorithm>
#include <queue>

namespace yafim::sim {

std::vector<double> lpt_loads(std::span<const double> durations, u32 cores) {
  YAFIM_CHECK(cores > 0, "need at least one core");
  std::vector<double> sorted(durations.begin(), durations.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());

  // Min-heap of (load, core index); always place the next-longest task on
  // the least-loaded core.
  using Slot = std::pair<double, u32>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> heap;
  for (u32 c = 0; c < cores; ++c) heap.emplace(0.0, c);

  std::vector<double> loads(cores, 0.0);
  for (double d : sorted) {
    auto [load, core] = heap.top();
    heap.pop();
    load += d;
    loads[core] = load;
    heap.emplace(load, core);
  }
  return loads;
}

double lpt_makespan(std::span<const double> durations, u32 cores) {
  if (durations.empty()) return 0.0;
  const auto loads = lpt_loads(durations, cores);
  return *std::max_element(loads.begin(), loads.end());
}

}  // namespace yafim::sim
