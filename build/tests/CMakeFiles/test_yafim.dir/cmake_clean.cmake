file(REMOVE_RECURSE
  "CMakeFiles/test_yafim.dir/test_yafim.cpp.o"
  "CMakeFiles/test_yafim.dir/test_yafim.cpp.o.d"
  "test_yafim"
  "test_yafim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yafim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
