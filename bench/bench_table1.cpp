// Regenerates Table I: properties of the benchmark datasets, printing the
// paper-reported values next to our regenerated datasets' measured ones.
#include "common.h"

using namespace yafim;
using namespace yafim::benchharness;

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv, /*default_scale=*/1.0);

  std::printf("== Table I: properties of datasets (paper vs regenerated, "
              "scale=%.2f) ==\n",
              args.scale);
  Table table({"Dataset", "Items(paper)", "Items(ours)", "Trans(paper)",
               "Trans(ours)", "AvgLen(ours)", "MinSup"});

  auto benches = datagen::make_paper_benchmarks(args.scale);
  benches.push_back(datagen::make_medical(args.scale));
  for (const auto& bench : benches) {
    const auto stats = bench.db.stats();
    table.add_row({bench.name, Table::num(u64{bench.paper_num_items}),
                   Table::num(u64{stats.item_universe}),
                   Table::num(bench.paper_num_transactions),
                   Table::num(stats.num_transactions),
                   Table::num(stats.avg_length, 1),
                   support_pct(bench.paper_min_support)});
  }
  print_table(table, args);
  std::printf("(Medical is the §V-D workload, not part of the paper's "
              "Table I.)\n");
  return 0;
}
