// Minimal leveled logger. Thread-safe; printf-style formatting.
//
// The default level is kInfo; benches lower it to kWarn so harness output
// stays clean. Not a general-purpose logging framework on purpose -- the
// library's observable outputs are the metric reports, not log lines.
#pragma once

#include <atomic>
#include <cstdarg>

namespace yafim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace log_detail {
extern std::atomic<LogLevel> g_level;
void vlog(LogLevel level, const char* fmt, std::va_list args);
}  // namespace log_detail

inline void set_log_level(LogLevel level) {
  log_detail::g_level.store(level, std::memory_order_relaxed);
}

inline LogLevel log_level() {
  return log_detail::g_level.load(std::memory_order_relaxed);
}

void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace yafim
