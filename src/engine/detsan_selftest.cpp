#include "engine/detsan_selftest.h"

#include <atomic>
#include <vector>

#include "engine/rdd.h"

namespace yafim::engine::detsan_selftest {

SelftestResult run(Context& ctx) {
  // Fixture 1: a deliberately non-commutative reduce. Subtraction's result
  // depends on the fold order, so the permuted replay fold must land on a
  // different accumulator and raise YL007 on the named node.
  {
    std::vector<i64> values;
    values.reserve(64);
    for (i64 i = 1; i <= 64; ++i) values.push_back(i * 3 + 1);
    auto rdd = ctx.parallelize(std::move(values), 4);
    rdd.named("noncommutative-fold");
    // detsan: intentional-divergence -- committed YL007 runtime fixture.
    (void)rdd.reduce([](i64 a, i64 b) { return a - b; },
                     "detsan-selftest:reduce");
  }

  // Fixture 2: a map closure capturing mutable non-local state by
  // reference. The replay re-runs the same closure instance, so the
  // counter keeps advancing past where the primary pass left it and the
  // outputs differ even under multiset comparison. (Atomic so concurrent
  // tasks stay well-defined; the impurity, not a data race, is the bug
  // under test.)
  {
    std::vector<i64> values(64);
    for (i64 i = 0; i < 64; ++i) values[static_cast<size_t>(i)] = i;
    auto rdd = ctx.parallelize(std::move(values), 4);
    std::atomic<i64> counter{0};
    // detsan: intentional-divergence -- committed YL007 runtime fixture.
    auto shifted = rdd.map([&counter](const i64& x) {
      return x * 8 + (counter.fetch_add(1, std::memory_order_relaxed) & 7);
    });
    shifted.named("stateful-map");
    (void)shifted.collect("detsan-selftest:collect");
  }

  SelftestResult out;
  out.tasks_replayed = ctx.detsan().tasks_replayed();
  out.divergences = ctx.detsan().divergences();
  return out;
}

}  // namespace yafim::engine::detsan_selftest
