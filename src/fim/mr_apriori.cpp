#include "fim/mr_apriori.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "fim/bitmap.h"
#include "fim/candidate_gen.h"
#include "fim/hash_tree.h"
#include "fim/mr_encode.h"
#include "mapreduce/job.h"
#include "obs/metrics.h"
#include "util/checksum.h"
#include "util/stopwatch.h"

namespace yafim::fim {

namespace {

using CountPair = std::pair<Itemset, u64>;
using Spec = mr::JobSpec<Transaction, Itemset, u64, CountPair, ItemsetHash>;
/// Dense twin for jobs k >= 2: intermediate keys are candidate ids.
using IdSpec = mr::JobSpec<Transaction, u32, u64, CountPair, DenseIdHash>;

std::vector<Transaction> decode_transactions(const std::vector<u8>& bytes) {
  return TransactionDB::deserialize(bytes).release();
}

/// Shared by yafim.cpp's twin; duplicated locally to keep layering flat.
void price_passes(engine::Context& ctx, size_t first_stage, MiningRun& run) {
  sim::SimReport slice;
  const auto& stages = ctx.report().stages();
  for (size_t i = first_stage; i < stages.size(); ++i) slice.add(stages[i]);
  const std::vector<double> by_pass = slice.pass_seconds(ctx.cost_model());
  run.setup_seconds = by_pass.empty() ? 0.0 : by_pass[0];
  for (PassStats& pass : run.passes) {
    // Checkpoint-restored passes keep the snapshot's numbers.
    if (pass.k <= run.resumed_pass) continue;
    pass.sim_seconds = pass.k < by_pass.size() ? by_pass[pass.k] : 0.0;
  }
}

}  // namespace

MiningRun mr_apriori_mine(engine::Context& ctx, simfs::SimFS& fs,
                          const std::string& input_path,
                          const MrAprioriOptions& options) {
  const size_t first_stage = ctx.report().stages().size();
  // MapReduce shuffles spill through the same path as Spark stages when
  // their buffers exceed the shuffle-buffer budget (mapreduce/job.h).
  ctx.set_spill_fs(&fs);
  mr::JobRunner runner(ctx, fs);

  // Driver-side setup knowledge: |D| for the absolute threshold. (In
  // PApriori the driver knows the dataset size a priori; not charged.)
  const std::vector<u8> raw = fs.read(input_path);
  const u64 num_transactions = TransactionDB::deserialize(raw).size();
  MiningRun run;
  if (num_transactions == 0) {
    run.itemsets = FrequentItemsets(1, 0);
    return run;
  }
  const u64 min_count = min_count_ceil(options.min_support, num_transactions);
  run.itemsets = FrequentItemsets(min_count, num_transactions);

  // Checkpoint/resume (same contract as yafim.cpp): snapshots are bound to
  // this exact dataset + configuration via the fingerprint. MRApriori also
  // persists prev_output_bytes (in aux) -- the driver's L(k-1) read-back
  // cost on the first resumed job must match the uninterrupted run.
  u64 fingerprint = 0;
  std::optional<CheckpointState> restored;
  if (options.checkpoint) {
    // count_mode and broadcast_mode folded in for the same reason as
    // yafim.cpp: the modes price the k >= 2 jobs differently, so
    // snapshots must not mix.
    fingerprint = checkpoint_fingerprint(
        "mrapriori", xxh64(raw.data(), raw.size()), min_count,
        options.max_levels +
            (u64{static_cast<u32>(options.count_mode)} << 32) +
            (u64{static_cast<u32>(options.broadcast_mode)} << 36));
    restored = load_latest_snapshot(*options.checkpoint, fingerprint);
  }
  u64 prev_output_bytes = 0;
  auto maybe_checkpoint = [&](u32 completed_pass,
                              const std::vector<Itemset>& frontier) {
    if (!options.checkpoint) return;
    price_passes(ctx, first_stage, run);
    CheckpointState state;
    state.fingerprint = fingerprint;
    state.pass = completed_pass;
    state.num_transactions = num_transactions;
    state.min_support_count = min_count;
    state.setup_seconds = run.setup_seconds;
    state.aux = prev_output_bytes;
    state.passes = run.passes;
    state.itemsets = run.itemsets;
    state.frontier = frontier;
    save_snapshot(*options.checkpoint, state);
  };

  auto make_reduce = [min_count](const Itemset& key, std::vector<u64>& values)
      -> std::optional<CountPair> {
    u64 sum = 0;
    for (u64 v : values) sum += v;
    if (sum < min_count) return std::nullopt;
    return CountPair(key, sum);
  };

  // ---- Job 1: frequent items ------------------------------------------
  std::vector<Itemset> frequent;
  u32 last_completed = 1;
  if (restored) {
    run.resumed_pass = restored->pass;
    run.passes = std::move(restored->passes);
    run.itemsets = std::move(restored->itemsets);
    frequent = std::move(restored->frontier);
    prev_output_bytes = restored->aux;
    last_completed = restored->pass;
    obs::count(obs::CounterId::kCheckpointPassesSkipped, restored->pass);
  } else {
    ctx.set_pass(1);
    Spec job1;
    job1.name = "mrapriori:job1";
    job1.decode_input = decode_transactions;
    job1.map_fn = [](const Transaction& t, mr::Emitter<Itemset, u64>& emit) {
      for (Item i : t) emit.emit(Itemset{i}, 1);
    };
    job1.combine_fn = [](const u64& a, const u64& b) { return a + b; };
    job1.reduce_fn = make_reduce;
    job1.encode_output = encode_counts;
    job1.num_mappers = options.num_mappers;
    job1.num_reducers = options.num_reducers;

    auto result = runner.run(job1, input_path, options.work_dir + "/L1");
    frequent.reserve(result.output.size());
    for (const auto& [itemset, support] : result.output) {
      run.itemsets.add(itemset, support);
      frequent.push_back(itemset);
    }
    run.passes.push_back(
        PassStats{1, result.output.size(), result.output.size(), 0.0});
    prev_output_bytes = result.output_bytes;
    maybe_checkpoint(1, frequent);
  }

  // ---- Jobs k >= 2 ------------------------------------------------------
  for (u32 k = last_completed + 1;
       !frequent.empty() && (options.max_levels == 0 || k <= options.max_levels);
       ++k) {
    if (options.stop_after_pass && last_completed >= options.stop_after_pass) {
      break;  // simulated crash: the last snapshot is the recovery point
    }
    ctx.set_pass(k);

    // The driver reads L(k-1) back from HDFS to generate candidates.
    {
      sim::StageRecord read_back;
      read_back.label = "mrapriori:driver read L" + std::to_string(k - 1);
      read_back.kind = sim::StageKind::kOverhead;
      read_back.pass = k;
      read_back.dfs_read_bytes = prev_output_bytes;
      ctx.record(std::move(read_back));
    }

    engine::work::Scope driver_scope;
    std::vector<Itemset> candidates = apriori_gen(frequent, k);
    if (candidates.empty()) break;
    auto tree = std::make_shared<const HashTree>(
        std::move(candidates), options.branching, options.leaf_capacity);
    {
      sim::StageRecord gen;
      gen.label = "mrapriori:ap_gen L" + std::to_string(k);
      gen.kind = sim::StageKind::kOverhead;
      gen.pass = k;
      gen.driver_work = driver_scope.measured();
      ctx.record(std::move(gen));
    }

    const u64 num_candidates = tree->size();
    const std::string job_name = "mrapriori:job" + std::to_string(k);
    const std::string out_path = options.work_dir + "/L" + std::to_string(k);
    const bool use_hash_tree = options.use_hash_tree;

    // One counting job over `t`'s candidates -- the full tree, or one
    // shard of it under the partitioned fallback; `t` travels to the
    // mappers via the distributed cache either way.
    auto run_level_job = [&](std::shared_ptr<const HashTree> t,
                             const std::string& name,
                             const std::string& out) {
      if (options.count_mode == CountMode::kVerticalBitmap) {
      // Vertical: each map split builds a bitmap index over its
      // transactions (MapReduce has no cross-job cache, so the index is
      // rebuilt per level -- the honest cost of the substrate) and emits
      // one (candidate_id, count) pair per candidate with nonzero support.
      IdSpec job;
      job.name = name;
      job.decode_input = decode_transactions;
      job.map_partition_fn = [t](std::span<const Transaction> split,
                                 mr::Emitter<u32, u64>& emit) {
        const VerticalBitmapIndex index(split);
        std::vector<u64> cells(t->size(), 0);
        index.count_candidates(*t, cells.data());
        for (u32 ci = 0; ci < cells.size(); ++ci) {
          if (cells[ci] != 0) emit.emit(ci, cells[ci]);
        }
      };
      job.combine_fn = [](const u64& a, const u64& b) { return a + b; };
      job.reduce_fn = [t, min_count](const u32& ci, std::vector<u64>& values)
          -> std::optional<CountPair> {
        u64 sum = 0;
        for (u64 v : values) sum += v;
        if (sum < min_count) return std::nullopt;
        return CountPair(t->candidate(ci), sum);
      };
      job.encode_output = encode_counts;
      job.num_mappers = options.num_mappers;
      job.num_reducers = options.num_reducers;
      job.distributed_cache_bytes = t->serialized_bytes();
      return runner.run(job, input_path, out);
    } else if (options.count_mode == CountMode::kItemsetKey) {
      // Paper-faithful: mappers emit (itemset, 1) for every hit.
      Spec job;
      job.name = name;
      job.decode_input = decode_transactions;
      job.map_fn = [t, use_hash_tree](const Transaction& txn,
                                      mr::Emitter<Itemset, u64>& emit) {
        auto on_hit = [&](u32 ci) { emit.emit(t->candidate(ci), 1); };
        if (use_hash_tree) {
          static thread_local HashTree::Probe probe;
          t->for_each_contained(txn, probe, on_hit);
        } else {
          t->for_each_contained_linear(txn, on_hit);
        }
      };
      job.combine_fn = [](const u64& a, const u64& b) { return a + b; };
      job.reduce_fn = make_reduce;
      job.encode_output = encode_counts;
      job.num_mappers = options.num_mappers;
      job.num_reducers = options.num_reducers;
      // Candidate hash tree travels to every node via the distributed cache.
      job.distributed_cache_bytes = t->serialized_bytes();
      return runner.run(job, input_path, out);
    } else {
      // Dense: mappers emit (candidate_id, 1); reducers sum, threshold,
      // and map survivors back to itemsets through their copy of the tree
      // (already localized via the distributed cache).
      IdSpec job;
      job.name = name;
      job.decode_input = decode_transactions;
      job.map_fn = [t, use_hash_tree](const Transaction& txn,
                                      mr::Emitter<u32, u64>& emit) {
        auto on_hit = [&](u32 ci) { emit.emit(ci, 1); };
        if (use_hash_tree) {
          static thread_local HashTree::Probe probe;
          t->for_each_contained(txn, probe, on_hit);
        } else {
          t->for_each_contained_linear(txn, on_hit);
        }
      };
      job.combine_fn = [](const u64& a, const u64& b) { return a + b; };
      job.reduce_fn = [t, min_count](const u32& ci, std::vector<u64>& values)
          -> std::optional<CountPair> {
        u64 sum = 0;
        for (u64 v : values) sum += v;
        if (sum < min_count) return std::nullopt;
        return CountPair(t->candidate(ci), sum);
      };
      job.encode_output = encode_counts;
      job.num_mappers = options.num_mappers;
      job.num_reducers = options.num_reducers;
      job.distributed_cache_bytes = t->serialized_bytes();
      return runner.run(job, input_path, out);
      }
    };

    // Broadcast ceiling (engine/memory.h): when the tree would not fit
    // next to what the ledger places on the tightest executor, count this
    // level as one sub-job per candidate shard, each localizing only its
    // shard's tree -- at the honest MapReduce price of re-reading the
    // input per sub-job.
    const u64 tree_bytes = tree->serialized_bytes();
    const bool partitioned =
        options.broadcast_mode == BroadcastMode::kPartitioned ||
        (options.broadcast_mode == BroadcastMode::kAuto &&
         !ctx.memory_budget().broadcast_fits(tree_bytes));
    Stopwatch count_clock;
    mr::JobResult<CountPair> result;
    if (partitioned) {
      ctx.linter().note_broadcast_fallback(tree_bytes,
                                           job_name + ":distributed_cache");
      ctx.memory_budget().note_fallback(tree_bytes);
      // Grow the shard count until the largest shard fits the tightest
      // node (sharding keys on the first item, so a perfectly even split
      // is not guaranteed; the cap keeps a degenerate distribution from
      // looping forever -- an oversized shard then lints like any other
      // oversized localization).
      const u64 budget = ctx.memory_budget().min_node_budget();
      engine::work::Scope shard_scope;
      u32 nshards = std::max<u32>(
          2, budget != 0 ? static_cast<u32>(std::min<u64>(
                               1024, 2 * ceil_div(tree_bytes, budget)))
                         : std::max(1u, ctx.cluster().nodes));
      std::vector<TreeShard> shards;
      for (;;) {
        shards = shard_hash_tree(*tree, nshards, options.branching,
                                 options.leaf_capacity);
        if (budget == 0 || nshards >= 1024) break;
        u64 worst = 0;
        for (const TreeShard& s : shards) {
          worst = std::max(worst, s.tree.serialized_bytes());
        }
        if (worst <= budget) break;
        nshards = std::min<u32>(1024, nshards * 2);
      }
      {
        sim::StageRecord shard_stage;
        shard_stage.label = job_name + ":shard-candidates";
        shard_stage.kind = sim::StageKind::kOverhead;
        shard_stage.pass = k;
        shard_stage.driver_work = shard_scope.measured();
        ctx.record(std::move(shard_stage));
      }
      for (u32 s = 0; s < static_cast<u32>(shards.size()); ++s) {
        if (shards[s].tree.size() == 0) continue;
        auto shard_tree =
            std::make_shared<const HashTree>(std::move(shards[s].tree));
        auto r = run_level_job(shard_tree,
                               job_name + ":shard" + std::to_string(s),
                               out_path + "-shard" + std::to_string(s));
        result.map_tasks = r.map_tasks;
        result.reduce_tasks = r.reduce_tasks;
        result.input_bytes += r.input_bytes;
        result.shuffle_bytes += r.shuffle_bytes;
        result.output_bytes += r.output_bytes;
        result.output.insert(result.output.end(),
                             std::make_move_iterator(r.output.begin()),
                             std::make_move_iterator(r.output.end()));
      }
    } else {
      result = run_level_job(tree, job_name, out_path);
    }
    run.count_host_seconds += count_clock.seconds();
    frequent.clear();
    frequent.reserve(result.output.size());
    for (const auto& [itemset, support] : result.output) {
      run.itemsets.add(itemset, support);
      frequent.push_back(itemset);
    }
    run.passes.push_back(
        PassStats{k, num_candidates, result.output.size(), 0.0});
    prev_output_bytes = result.output_bytes;
    last_completed = k;
    maybe_checkpoint(k, frequent);
  }

  ctx.set_pass(0);
  price_passes(ctx, first_stage, run);
  return run;
}

MiningRun mr_apriori_mine(engine::Context& ctx, simfs::SimFS& fs,
                          const TransactionDB& db,
                          const MrAprioriOptions& options) {
  const std::string path = "hdfs://staging/mrapriori-input";
  fs.write(path, db.serialize());
  return mr_apriori_mine(ctx, fs, path, options);
}

}  // namespace yafim::fim
