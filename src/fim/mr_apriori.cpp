#include "fim/mr_apriori.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "fim/candidate_gen.h"
#include "fim/hash_tree.h"
#include "fim/mr_encode.h"
#include "mapreduce/job.h"

namespace yafim::fim {

namespace {

using CountPair = std::pair<Itemset, u64>;
using Spec = mr::JobSpec<Transaction, Itemset, u64, CountPair, ItemsetHash>;

std::vector<Transaction> decode_transactions(const std::vector<u8>& bytes) {
  return TransactionDB::deserialize(bytes).release();
}

/// Shared by yafim.cpp's twin; duplicated locally to keep layering flat.
void price_passes(engine::Context& ctx, size_t first_stage, MiningRun& run) {
  sim::SimReport slice;
  const auto& stages = ctx.report().stages();
  for (size_t i = first_stage; i < stages.size(); ++i) slice.add(stages[i]);
  const std::vector<double> by_pass = slice.pass_seconds(ctx.cost_model());
  run.setup_seconds = by_pass.empty() ? 0.0 : by_pass[0];
  for (PassStats& pass : run.passes) {
    pass.sim_seconds = pass.k < by_pass.size() ? by_pass[pass.k] : 0.0;
  }
}

}  // namespace

MiningRun mr_apriori_mine(engine::Context& ctx, simfs::SimFS& fs,
                          const std::string& input_path,
                          const MrAprioriOptions& options) {
  const size_t first_stage = ctx.report().stages().size();
  mr::JobRunner runner(ctx, fs);

  // Driver-side setup knowledge: |D| for the absolute threshold. (In
  // PApriori the driver knows the dataset size a priori; not charged.)
  const u64 num_transactions =
      TransactionDB::deserialize(fs.read(input_path)).size();
  MiningRun run;
  if (num_transactions == 0) {
    run.itemsets = FrequentItemsets(1, 0);
    return run;
  }
  // Same threshold arithmetic as TransactionDB::min_support_count().
  const u64 min_count = static_cast<u64>(std::max<double>(
      1.0, std::ceil(options.min_support *
                         static_cast<double>(num_transactions) -
                     1e-9)));
  run.itemsets = FrequentItemsets(min_count, num_transactions);

  auto make_reduce = [min_count](const Itemset& key, std::vector<u64>& values)
      -> std::optional<CountPair> {
    u64 sum = 0;
    for (u64 v : values) sum += v;
    if (sum < min_count) return std::nullopt;
    return CountPair(key, sum);
  };

  // ---- Job 1: frequent items ------------------------------------------
  ctx.set_pass(1);
  Spec job1;
  job1.name = "mrapriori:job1";
  job1.decode_input = decode_transactions;
  job1.map_fn = [](const Transaction& t, mr::Emitter<Itemset, u64>& emit) {
    for (Item i : t) emit.emit(Itemset{i}, 1);
  };
  job1.combine_fn = [](const u64& a, const u64& b) { return a + b; };
  job1.reduce_fn = make_reduce;
  job1.encode_output = encode_counts;
  job1.num_mappers = options.num_mappers;
  job1.num_reducers = options.num_reducers;

  auto result = runner.run(job1, input_path, options.work_dir + "/L1");
  std::vector<Itemset> frequent;
  frequent.reserve(result.output.size());
  for (const auto& [itemset, support] : result.output) {
    run.itemsets.add(itemset, support);
    frequent.push_back(itemset);
  }
  run.passes.push_back(
      PassStats{1, result.output.size(), result.output.size(), 0.0});
  u64 prev_output_bytes = result.output_bytes;

  // ---- Jobs k >= 2 ------------------------------------------------------
  for (u32 k = 2;
       !frequent.empty() && (options.max_levels == 0 || k <= options.max_levels);
       ++k) {
    ctx.set_pass(k);

    // The driver reads L(k-1) back from HDFS to generate candidates.
    {
      sim::StageRecord read_back;
      read_back.label = "mrapriori:driver read L" + std::to_string(k - 1);
      read_back.kind = sim::StageKind::kOverhead;
      read_back.pass = k;
      read_back.dfs_read_bytes = prev_output_bytes;
      ctx.record(std::move(read_back));
    }

    engine::work::Scope driver_scope;
    std::vector<Itemset> candidates = apriori_gen(frequent, k);
    if (candidates.empty()) break;
    auto tree = std::make_shared<const HashTree>(
        std::move(candidates), options.branching, options.leaf_capacity);
    {
      sim::StageRecord gen;
      gen.label = "mrapriori:ap_gen L" + std::to_string(k);
      gen.kind = sim::StageKind::kOverhead;
      gen.pass = k;
      gen.driver_work = driver_scope.measured();
      ctx.record(std::move(gen));
    }

    Spec job;
    job.name = "mrapriori:job" + std::to_string(k);
    job.decode_input = decode_transactions;
    const bool use_hash_tree = options.use_hash_tree;
    job.map_fn = [tree, use_hash_tree](const Transaction& t,
                                       mr::Emitter<Itemset, u64>& emit) {
      auto on_hit = [&](u32 ci) { emit.emit(tree->candidate(ci), 1); };
      if (use_hash_tree) {
        static thread_local HashTree::Probe probe;
        tree->for_each_contained(t, probe, on_hit);
      } else {
        tree->for_each_contained_linear(t, on_hit);
      }
    };
    job.combine_fn = [](const u64& a, const u64& b) { return a + b; };
    job.reduce_fn = make_reduce;
    job.encode_output = encode_counts;
    job.num_mappers = options.num_mappers;
    job.num_reducers = options.num_reducers;
    // Candidate hash tree travels to every node via the distributed cache.
    job.distributed_cache_bytes = tree->serialized_bytes();

    const u64 num_candidates = tree->size();
    result = runner.run(job, input_path,
                        options.work_dir + "/L" + std::to_string(k));
    frequent.clear();
    frequent.reserve(result.output.size());
    for (const auto& [itemset, support] : result.output) {
      run.itemsets.add(itemset, support);
      frequent.push_back(itemset);
    }
    run.passes.push_back(
        PassStats{k, num_candidates, result.output.size(), 0.0});
    prev_output_bytes = result.output_bytes;
  }

  ctx.set_pass(0);
  price_passes(ctx, first_stage, run);
  return run;
}

MiningRun mr_apriori_mine(engine::Context& ctx, simfs::SimFS& fs,
                          const TransactionDB& db,
                          const MrAprioriOptions& options) {
  const std::string path = "hdfs://staging/mrapriori-input";
  fs.write(path, db.serialize());
  return mr_apriori_mine(ctx, fs, path, options);
}

}  // namespace yafim::fim
