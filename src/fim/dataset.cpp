#include "fim/dataset.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "util/bytes.h"

namespace yafim::fim {

u64 min_count_ceil(double frac, u64 n) {
  const double raw = frac * static_cast<double>(n);
  const u64 count = static_cast<u64>(std::ceil(raw - 1e-9));
  return std::max<u64>(count, 1);
}

TransactionDB::TransactionDB(std::vector<Transaction> transactions)
    : tx_(std::move(transactions)) {
#ifndef NDEBUG
  for (const Transaction& t : tx_) {
    YAFIM_DCHECK(is_canonical(t), "transactions must be canonical");
  }
#endif
}

DatasetStats TransactionDB::stats() const {
  DatasetStats s;
  s.num_transactions = tx_.size();
  std::unordered_set<Item> distinct;
  u64 total_len = 0;
  u32 universe = 0;
  for (const Transaction& t : tx_) {
    total_len += t.size();
    s.max_length = std::max<double>(s.max_length, static_cast<double>(t.size()));
    for (Item i : t) {
      distinct.insert(i);
      universe = std::max(universe, i + 1);
    }
  }
  s.num_items = static_cast<u32>(distinct.size());
  s.item_universe = universe;
  if (!tx_.empty()) {
    s.avg_length = static_cast<double>(total_len) /
                   static_cast<double>(tx_.size());
  }
  if (s.num_items > 0) s.density = s.avg_length / s.num_items;
  s.parse = parse_stats_;
  return s;
}

u64 TransactionDB::min_support_count(double min_support_frac) const {
  YAFIM_CHECK(min_support_frac > 0.0 && min_support_frac <= 1.0,
              "relative support must be in (0, 1]");
  return min_count_ceil(min_support_frac, tx_.size());
}

u64 TransactionDB::support(const Itemset& s) const {
  u64 count = 0;
  for (const Transaction& t : tx_) {
    if (contains_all(t, s)) ++count;
  }
  return count;
}

TransactionDB TransactionDB::replicate(u32 times) const {
  YAFIM_CHECK(times >= 1, "replicate() needs times >= 1");
  std::vector<Transaction> out;
  out.reserve(tx_.size() * times);
  for (u32 r = 0; r < times; ++r) {
    out.insert(out.end(), tx_.begin(), tx_.end());
  }
  return TransactionDB(std::move(out));
}

std::vector<u8> TransactionDB::serialize() const {
  ByteWriter w;
  w.write_u64(tx_.size());
  for (const Transaction& t : tx_) w.write_u32_vec(t);
  return w.take();
}

TransactionDB TransactionDB::deserialize(std::span<const u8> bytes) {
  ByteReader r(bytes);
  const u64 n = r.read_u64();
  std::vector<Transaction> tx;
  tx.reserve(n);
  for (u64 i = 0; i < n; ++i) tx.push_back(r.read_u32_vec());
  YAFIM_CHECK(r.done(), "trailing bytes after TransactionDB payload");
  return TransactionDB(std::move(tx));
}

std::string TransactionDB::to_text() const {
  std::ostringstream out;
  for (const Transaction& t : tx_) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i) out << ' ';
      out << t[i];
    }
    out << '\n';
  }
  return out.str();
}

namespace {

bool is_field_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }

/// Parse one lenient-mode line: every token must be a pure decimal u32.
/// Returns false (leaving *t in an unspecified state) on any bad token.
bool parse_line_lenient(const std::string& line, Transaction* t) {
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && is_field_space(line[i])) ++i;
    if (i >= line.size()) break;
    u64 value = 0;
    const size_t start = i;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
      value = value * 10 + static_cast<u64>(line[i] - '0');
      if (value > 0xFFFFFFFFull) return false;
      ++i;
    }
    if (i == start) return false;                          // non-numeric
    if (i < line.size() && !is_field_space(line[i])) return false;  // "12x"
    t->push_back(static_cast<Item>(value));
  }
  return true;
}

bool is_blank(const std::string& line) {
  for (char c : line) {
    if (!is_field_space(c)) return false;
  }
  return true;
}

}  // namespace

TransactionDB TransactionDB::from_text(const std::string& text,
                                       ParseMode mode) {
  std::vector<Transaction> tx;
  ParseStats stats;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    // Strict preserves the historical skip (only truly empty lines);
    // lenient also ignores whitespace-only lines.
    if (mode == ParseMode::kStrict ? line.empty() : is_blank(line)) continue;
    ++stats.lines_total;
    Transaction t;
    if (mode == ParseMode::kStrict) {
      std::istringstream fields(line);
      u64 item;
      while (fields >> item) t.push_back(static_cast<Item>(item));
      canonicalize(t);
    } else {
      if (!parse_line_lenient(line, &t)) {
        ++stats.bad_token_lines;
        continue;
      }
      if (t.size() > kMaxTransactionItems) {
        ++stats.overlong_lines;
        continue;
      }
      if (!is_canonical(t)) {
        ++stats.noncanonical_lines;
        continue;
      }
    }
    tx.push_back(std::move(t));
  }
  TransactionDB db(std::move(tx));
  db.parse_stats_ = stats;
  return db;
}

}  // namespace yafim::fim
