// SimFS: a simulated HDFS.
//
// Stands in for the HDFS cluster the paper stores its datasets on. Files
// live in host memory, but every read/write is priced by the cost model
// (block replication, disk and network bandwidth), and the byte payloads are
// real serialized data: the MapReduce substrate genuinely round-trips its
// inputs and outputs through here each job, which is precisely the overhead
// YAFIM is designed to avoid.
//
// Data integrity: every stored block carries an XXH64 checksum computed at
// write time and verified on every read (like HDFS's per-block CRCs). A
// deterministic CorruptionProfile can flip bits in individual block-replica
// reads; a verification failure is never surfaced to the caller as bad
// bytes -- the read retries the next replica (each retry priced as another
// block read) and only throws SimFSError{kCorrupt} once every replica of a
// block is damaged. Missing paths throw SimFSError{kNotFound} (a runtime
// condition: checkpoint resume probes for files that may not exist).
//
// Thread-safe. Paths are flat strings; "directories" are prefixes.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/corruption.h"
#include "sim/cost_model.h"
#include "util/common.h"
#include "util/thread_annotations.h"

namespace yafim::simfs {

struct FileStat {
  u64 bytes = 0;
  u32 blocks = 0;
};

/// Structured SimFS failure: which path, and why.
enum class SimFSErrorKind {
  kNotFound,  ///< no file at the path
  kCorrupt,   ///< every replica of some block failed checksum verification
};

class SimFSError : public std::runtime_error {
 public:
  SimFSError(std::string path, SimFSErrorKind kind);
  /// kCorrupt detail: which block gave up, after how many replica reads.
  /// what() then renders e.g. "simfs: 'p' unrecoverably corrupt (block 3:
  /// all 3 replicas failed verification)" so CI crash-recovery logs name
  /// the damage without a rerun.
  SimFSError(std::string path, SimFSErrorKind kind, u32 block, u32 replicas);

  const std::string& path() const { return path_; }
  SimFSErrorKind kind() const { return kind_; }
  /// Failing block index (kCorrupt only; 0 otherwise).
  u32 block() const { return block_; }
  /// Replicas tried before giving up (kCorrupt only; 0 otherwise).
  u32 replicas() const { return replicas_; }

 private:
  std::string path_;
  SimFSErrorKind kind_;
  u32 block_ = 0;
  u32 replicas_ = 0;
};

/// Always-on integrity counters (independent of obs tracing), cumulative
/// since construction.
struct IntegrityStats {
  /// Block-replica reads that were checksum-verified.
  u64 blocks_verified = 0;
  /// Bit flips injected by the CorruptionProfile.
  u64 corrupt_injected = 0;
  /// Verification failures (injected flips plus any real damage).
  u64 corrupt_detected = 0;
  /// Blocks healed by re-reading another replica.
  u64 repaired_by_replica = 0;
  /// Blocks with every replica corrupt (each threw SimFSError{kCorrupt}).
  u64 unrecoverable = 0;
};

class SimFS {
 public:
  /// The corruption profile defaults to the YAFIM_FAULT_CORRUPT_* env
  /// (disabled when unset), so a whole test or bench binary can run under
  /// injection without code changes -- same contract as FaultProfile.
  explicit SimFS(sim::ClusterConfig cluster,
                 sim::CorruptionProfile corrupt =
                     sim::CorruptionProfile::from_env())
      : cluster_(cluster), model_(cluster), corrupt_(corrupt) {}

  /// Store `data` at `path`, replacing any existing file, and checksum its
  /// blocks. Returns the simulated seconds the write took (replicated
  /// pipeline write).
  double write(const std::string& path, std::vector<u8> data);

  /// Read and checksum-verify the file at `path`. Throws SimFSError on a
  /// missing path or an unrecoverably corrupt block; detected-but-repaired
  /// corruption is invisible apart from the extra simulated read time and
  /// the integrity counters. If `sim_seconds` is non-null it receives the
  /// simulated read time (including replica retries).
  std::vector<u8> read(const std::string& path,
                       double* sim_seconds = nullptr) const;

  bool exists(const std::string& path) const;
  bool remove(const std::string& path);
  std::optional<FileStat> stat(const std::string& path) const;

  /// All paths with the given prefix, sorted.
  std::vector<std::string> list(const std::string& prefix) const;

  /// Cumulative traffic counters (bytes) since construction. Replica
  /// retries are not counted here (they are priced into sim time and
  /// visible in integrity()); these stay the logical payload bytes.
  u64 total_bytes_written() const;
  u64 total_bytes_read() const;

  IntegrityStats integrity() const;

  /// Disable (or re-enable) checksum verification on reads. Only meant for
  /// the integrity microbenchmark's no-integrity baseline; injection is
  /// also skipped while verification is off (nothing would catch it).
  void set_verify_checksums(bool on);

  /// Test hook: flip one bit of the *stored* payload, damaging every
  /// replica at once (models storage-layer rot beneath the replication,
  /// which reads must detect and report, not silently return).
  void debug_corrupt(const std::string& path, u64 byte_index, u8 bit = 0);

  const sim::ClusterConfig& cluster() const { return cluster_; }
  const sim::CorruptionProfile& corruption_profile() const {
    return corrupt_;
  }

 private:
  struct StoredFile {
    std::vector<u8> data;
    /// XXH64 per block of cluster_.hdfs_block_bytes (one entry even for an
    /// empty file, so zero-length reads are verified too).
    std::vector<u64> block_sums;
  };

  u64 block_bytes() const { return cluster_.hdfs_block_bytes; }
  u32 blocks_of(u64 bytes) const {
    return static_cast<u32>(bytes == 0 ? 1 : ceil_div(bytes, block_bytes()));
  }

  sim::ClusterConfig cluster_;
  sim::CostModel model_;
  sim::CorruptionProfile corrupt_;

  mutable util::Mutex mutex_;
  bool verify_ YAFIM_GUARDED_BY(mutex_) = true;
  std::map<std::string, StoredFile> files_ YAFIM_GUARDED_BY(mutex_);
  u64 bytes_written_ YAFIM_GUARDED_BY(mutex_) = 0;
  mutable u64 bytes_read_ YAFIM_GUARDED_BY(mutex_) = 0;
  mutable IntegrityStats integrity_ YAFIM_GUARDED_BY(mutex_);
};

}  // namespace yafim::simfs
