// Synthetic transaction generator in the style of the IBM Quest / Almaden
// generator (Agrawal & Srikant 1994), which produced the paper's
// T10I4D100K dataset. The naming convention: T = average transaction
// length, I = average size of the maximal potentially-frequent patterns,
// D = number of transactions.
//
// Mechanism: draw a pool of potential patterns (correlated item subsets
// with exponentially distributed popularity), then assemble each
// transaction from weighted pattern picks with per-pattern corruption,
// topping up nothing -- a transaction is the union of its (corrupted)
// patterns, truncated near its Poisson-drawn target length.
#pragma once

#include "fim/dataset.h"
#include "util/common.h"

namespace yafim::datagen {

struct QuestParams {
  /// D: number of transactions.
  u64 num_transactions = 100000;
  /// T: average transaction length (Poisson mean).
  double avg_transaction_len = 10.0;
  /// N: item universe size.
  u32 num_items = 870;
  /// L: number of potential patterns in the pool.
  u32 num_patterns = 200;
  /// I: average pattern length (Poisson mean, min 1).
  double avg_pattern_len = 4.0;
  /// Fraction of a pattern's items reused from the previous pattern.
  double correlation = 0.5;
  /// Mean per-pattern corruption level (probability an item is dropped
  /// when the pattern is inserted into a transaction).
  double corruption_mean = 0.5;
  u64 seed = 20140519;  // IPDPSW'14 main-conference week
};

fim::TransactionDB generate_quest(const QuestParams& params);

}  // namespace yafim::datagen
