file(REMOVE_RECURSE
  "CMakeFiles/yafim_util.dir/util/bytes.cpp.o"
  "CMakeFiles/yafim_util.dir/util/bytes.cpp.o.d"
  "CMakeFiles/yafim_util.dir/util/log.cpp.o"
  "CMakeFiles/yafim_util.dir/util/log.cpp.o.d"
  "CMakeFiles/yafim_util.dir/util/table.cpp.o"
  "CMakeFiles/yafim_util.dir/util/table.cpp.o.d"
  "libyafim_util.a"
  "libyafim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yafim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
