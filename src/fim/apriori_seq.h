// Sequential (single-node) Apriori: Algorithm 1 of the paper, and the
// reference implementation every parallel miner is checked against. Also
// the baseline for the paper's notion of speedup ("how much faster a
// parallel algorithm is than a corresponding sequential algorithm").
#pragma once

#include "fim/dataset.h"
#include "fim/result.h"

namespace yafim::fim {

struct AprioriOptions {
  /// Relative minimum support threshold in (0, 1].
  double min_support = 0.1;
  /// Absolute support threshold; 0 derives it from min_support via
  /// min_count_ceil (fim/dataset.h). The two-phase miners (son, sampling)
  /// set this explicitly so their local thresholds are computed by the one
  /// shared ceil helper rather than re-rounded per chunk.
  u64 min_count = 0;
  /// Use the candidate hash tree for subset enumeration (the paper's
  /// choice); false falls back to a linear candidate scan (ablation).
  bool use_hash_tree = true;
  /// Hash-tree tuning.
  u32 branching = 0;  // 0 = auto (HashTree::default_branching)
  u32 leaf_capacity = 16;
};

/// Mine all frequent itemsets of `db`. The returned MiningRun's PassStats
/// carry candidate/frequent counts per level; sim_seconds is 0 (this miner
/// runs outside the simulated cluster).
MiningRun apriori_mine(const TransactionDB& db, const AprioriOptions& options);

}  // namespace yafim::fim
