// Streaming market-basket mining: the incremental miner end to end.
//
// Generates a retail-like basket stream with the IBM-Quest-style generator,
// feeds it through the windowed TransactionSource, and mines it with the
// StreamingMiner: per-batch counting, MinSup-crossing re-verification,
// batch-boundary snapshots, and backpressure. Halfway through, the run is
// killed at an injected kill point and resumed from the snapshot store; the
// example then verifies the resumed output is identical to an uninterrupted
// run, and that both match batch Apriori over the full ingested history --
// the exactly-once story in one program.
//
//   $ ./examples/streaming_basket [num_batches]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "datagen/quest.h"
#include "fim/apriori_seq.h"
#include "fim/checkpoint.h"
#include "stream/miner.h"
#include "util/log.h"

using namespace yafim;

namespace {

stream::StreamResult run_stream(const fim::TransactionDB& db,
                                const stream::StreamOptions& options) {
  engine::Context ctx;
  simfs::SimFS fs(ctx.cluster());
  return stream::stream_mine(ctx, fs, db, options);
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const u64 num_batches =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12;

  datagen::QuestParams params;
  params.num_transactions = 4000;
  params.avg_transaction_len = 8.0;
  params.num_items = 200;
  params.num_patterns = 40;
  params.seed = 7;
  const fim::TransactionDB db = datagen::generate_quest(params);

  stream::StreamOptions options;
  options.min_support = 0.05;
  options.num_batches = num_batches;
  options.source.window_s = 5.0;
  options.source.ingest_rate = 400.0;  // ~2000 baskets per batch window

  // --- uninterrupted reference run --------------------------------------
  const stream::StreamResult clean = run_stream(db, options);
  std::printf("uninterrupted: %llu baskets over %zu batches, "
              "%llu frequent itemsets (steady batch %.2fs vs %.1fs window)\n",
              (unsigned long long)clean.total_transactions,
              clean.batches.size(), (unsigned long long)clean.itemsets.total(),
              clean.steady_batch_seconds(), clean.ingest_interval_s);

  // --- killed halfway, then resumed from the snapshot store -------------
  const std::string dir =
      (std::filesystem::temp_directory_path() / "yafim_streaming_basket")
          .string();
  std::filesystem::remove_all(dir);
  fim::DirCheckpointStore store(dir);
  stream::StreamOptions killed = options;
  killed.checkpoint = &store;
  killed.kill_batch = num_batches / 2 + 1;
  killed.kill_phase = static_cast<u32>(stream::StreamPhase::kReverify);
  try {
    run_stream(db, killed);
    std::printf("kill point never fired?\n");
    return 1;
  } catch (const stream::StreamKilledError& e) {
    std::printf("killed at batch %llu, phase %s (snapshots: %zu)\n",
                (unsigned long long)e.batch(),
                stream::stream_phase_name(e.phase()), store.list().size());
  }
  stream::StreamOptions resume = options;
  resume.checkpoint = &store;
  const stream::StreamResult resumed = run_stream(db, resume);
  std::printf("resumed from batch %llu, finished %zu batches\n",
              (unsigned long long)resumed.resumed_batch,
              resumed.batches.size());

  // --- exactly-once: resumed == uninterrupted == batch Apriori ----------
  if (!clean.itemsets.same_itemsets(resumed.itemsets)) {
    std::printf("MISMATCH: resumed run diverged from uninterrupted run\n");
    return 1;
  }
  // Rebuild the exact ingested history the stream saw (the source is a
  // deterministic replay, so per-batch counts from the stats suffice).
  fim::TransactionDB history;
  {
    stream::TransactionSource src(db, options.source);
    std::vector<fim::Transaction> tx;
    for (const auto& batch : clean.batches) {
      const auto arrived = src.take(batch.transactions);
      tx.insert(tx.end(), arrived.begin(), arrived.end());
    }
    history = fim::TransactionDB(std::move(tx));
  }
  fim::AprioriOptions batch_opt;
  batch_opt.min_support = options.min_support;
  const fim::MiningRun reference = fim::apriori_mine(history, batch_opt);
  if (!reference.itemsets.same_itemsets(clean.itemsets)) {
    std::printf("MISMATCH: stream diverged from batch Apriori\n");
    return 1;
  }
  std::printf("exactly-once verified: resumed == uninterrupted == batch "
              "Apriori (%llu itemsets)\n",
              (unsigned long long)clean.itemsets.total());
  return 0;
}
