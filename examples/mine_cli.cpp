// mine_cli: command-line frequent-itemset miner over FIMI-format files.
//
// Reads a transaction database in the classic text format (one transaction
// per line, space-separated integer item ids -- the format of the FIMI
// repository datasets the paper uses), mines it with a selectable engine,
// and prints the frequent itemsets and/or association rules.
//
//   $ ./examples/mine_cli --input=data.txt --minsup=0.35 --engine=yafim
//   $ ./examples/mine_cli --generate=mushroom --minsup=0.35 --rules=0.8
//   $ ./examples/mine_cli --trace out.json   # wall-clock Chrome trace
//
// Engines: yafim (default), mrapriori, apriori, fpgrowth, eclat.
// Without --input, --generate picks a built-in benchmark dataset
// (mushroom | t10 | chess | pumsb | medical).
// --trace FILE records wall-clock spans (stages, tasks, YAFIM passes) and
// counters, writes them as Chrome trace-event JSON (open in chrome://tracing
// or https://ui.perfetto.dev), and prints the per-stage summary table.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "datagen/benchmarks.h"
#include "engine/context.h"
#include "engine/detsan.h"
#include "engine/detsan_selftest.h"
#include "engine/lint.h"
#include "fim/apriori_seq.h"
#include "fim/checkpoint.h"
#include "fim/eclat.h"
#include "fim/fp_growth.h"
#include "fim/mr_apriori.h"
#include "fim/rules.h"
#include "fim/sampling.h"
#include "fim/yafim.h"
#include "obs/trace.h"
#include "stream/miner.h"
#include "util/log.h"
#include "util/stopwatch.h"

using namespace yafim;

namespace {

struct Options {
  std::string input;
  std::string generate;
  std::string engine = "yafim";
  double minsup = 0.1;
  double rules_confidence = 0.0;  // 0 = no rules
  u64 top = 20;
  bool quiet = false;
  /// Parse --input leniently: skip + count malformed lines instead of
  /// letting them degrade silently.
  bool lenient = false;
  /// Print the per-stage simulated-cost breakdown (parallel engines only).
  bool stages = false;
  /// Write a Chrome trace-event JSON of the run's wall-clock spans here.
  std::string trace_out;
  /// Persist a per-pass snapshot here and resume from the newest valid one
  /// (yafim / mrapriori only).
  std::string checkpoint_dir;
  /// Abandon the run after snapshotting this pass (crash simulation).
  u32 stop_after_pass = 0;
  /// Sleep this long after each snapshot -- widens the between-pass window
  /// so an external kill (the CI crash-recovery smoke test's SIGKILL)
  /// lands mid-run deterministically.
  u64 pass_sleep_ms = 0;
  /// Lint the lineage plan before each action/shuffle (yafim / mrapriori)
  /// and print the diagnostics.
  bool lint = false;
  /// With --lint=error, any warn-or-worse diagnostic makes the process
  /// exit 3 (notes -- e.g. an engaged broadcast fallback -- do not).
  bool lint_error = false;
  /// Determinism sanitizer (engine/detsan.h): re-execute a deterministic
  /// sample of tasks with permuted input order, compare canonical output
  /// hashes, and surface divergences as YL007 diagnostics plus
  /// detsan.tasks_replayed / detsan.divergences counters.
  bool detsan = false;
  /// With --detsan=error, the first divergence aborts the run (exit 4).
  bool detsan_error = false;
  /// Run the committed impure-plan fixtures (engine/detsan_selftest.h)
  /// instead of mining, at sample rate 1.0. The sanitizer must flag both;
  /// the CI detsan lane uses this as its negative control.
  bool detsan_selftest = false;
  /// Run YAFIM without caching the transactions RDD (the paper's "what if
  /// we didn't cache" ablation; trips lint rule YL001 by design).
  bool no_cache = false;
  /// How candidate trees reach the workers when memory is tight
  /// (fim/hash_tree.h): auto degrades to the partitioned candidate store
  /// past the executor-memory budget, full always broadcasts (over budget
  /// keeps YL002's error), partitioned always shards.
  std::string broadcast_mode = "auto";
  /// Executor memory per node in GiB (0 = keep the cluster default).
  /// Fractional values are accepted: --memory-gb=0.001 is ~1 MiB.
  double memory_gb = 0.0;
  /// Per-node shuffle-buffer budget in MiB (0 = unbounded, never spill).
  u64 shuffle_buffer_mb = 0;
  /// Compress spilled shuffle blocks (the yz codec in util/bytes).
  bool spill_compress = true;
  /// Streaming micro-batch mode (stream/miner.h): replay the dataset as a
  /// windowed ingest feed and maintain the frequent itemsets incrementally.
  bool stream = false;
  u64 stream_batches = 20;
  double stream_window_s = 5.0;
  double stream_rate = 2000.0;
  u64 stream_seed = 42;
  /// Approximate mining (fim/sampling.h): mine Bernoulli samples at a
  /// relaxed threshold, verify candidates + negative borders in one full
  /// pass, and report Toivonen's exactness certificate.
  bool approx = false;
  double sample_fraction = 0.1;
  u64 approx_samples = 4;
  double relax = 0.5;
};

/// All flag errors funnel through here: say what was wrong, show the
/// usage, exit 2. (An earlier version exited without the usage text on
/// some paths, e.g. an unknown --generate name.)
[[noreturn]] void usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::fprintf(stderr, "%s: %s\n", argv0, error.c_str());
  std::fprintf(
      stderr,
      "usage: %s [--input=FILE | --generate=NAME] [--minsup=F]\n"
      "          [--engine=yafim|mrapriori|apriori|fpgrowth|eclat]\n"
      "          [--rules=MIN_CONF] [--top=N] [--quiet] [--stages]\n"
      "          [--lenient] [--trace FILE] [--checkpoint-dir=DIR]\n"
      "          [--stop-after-pass=K] [--pass-sleep-ms=N]\n"
      "          [--lint[=error]] [--no-cache]\n"
      "          [--detsan[=error]] [--detsan-selftest]\n"
      "          [--broadcast-mode=auto|full|partitioned] [--memory-gb=F]\n"
      "          [--shuffle-buffer-mb=N] [--spill-compress=0|1]\n"
      "          [--stream] [--stream-batches=N] [--stream-window-s=F]\n"
      "          [--stream-rate=F] [--stream-seed=N]\n"
      "          [--approx] [--sample-fraction=F] [--samples=N] [--relax=F]\n"
      "generate names: mushroom t10 chess pumsb medical\n"
      "--lenient: skip + count malformed --input lines instead of\n"
      "  silently taking each line's numeric prefix\n"
      "--trace FILE: write wall-clock spans + counters as Chrome\n"
      "  trace-event JSON (chrome://tracing, Perfetto) and print the\n"
      "  per-stage summary table\n"
      "--checkpoint-dir=DIR: snapshot (Lk, pass stats) after every pass\n"
      "  and resume from the newest valid snapshot on rerun (yafim and\n"
      "  mrapriori). --stop-after-pass=K simulates a crash after pass K;\n"
      "  --pass-sleep-ms=N widens the between-pass window for kill tests\n"
      "--lint: check the lineage plan (rules YL001..YL005: uncached reuse,\n"
      "  oversized broadcast, dead cache, pushable filter, deep lineage)\n"
      "  before every action/shuffle and print the diagnostics;\n"
      "  --lint=error exits 3 on any warn-or-worse diagnostic\n"
      "  (yafim|mrapriori; notes such as an engaged fallback pass)\n"
      "--no-cache: skip caching the transactions RDD (yafim only; the\n"
      "  lineage re-reads HDFS every pass, and --lint reports YL001)\n"
      "--detsan: determinism sanitizer (yafim|mrapriori; composes with\n"
      "  --stream/--approx): re-execute a deterministic sample of tasks\n"
      "  with permuted input order, compare canonical output hashes, and\n"
      "  report divergences as YL007 (rule YL008 is the static layer,\n"
      "  scripts/closure_check.sh). --detsan=error exits 4 on the first\n"
      "  divergence; --detsan-selftest runs the committed impure fixtures\n"
      "  instead of mining (they MUST diverge)\n"
      "--broadcast-mode: how candidate trees reach workers when memory is\n"
      "  tight (yafim|mrapriori). auto falls back to the partitioned\n"
      "  candidate store past the executor budget; full always broadcasts\n"
      "  (over budget keeps YL002's error); partitioned always shards\n"
      "--memory-gb=F: executor memory per node in GiB (0 = cluster\n"
      "  default); --shuffle-buffer-mb=N: per-node shuffle-buffer budget\n"
      "  (0 = unbounded); --spill-compress=0|1: compress spilled shuffle\n"
      "  blocks (default 1)\n"
      "--stream: mine the dataset as a micro-batch stream (yafim only):\n"
      "  replay it as a windowed ingest feed (--stream-window-s seconds per\n"
      "  window at --stream-rate tx/s, arrival jitter from --stream-seed)\n"
      "  for --stream-batches batches, maintaining L1/Lk incrementally with\n"
      "  batch-boundary snapshots (--checkpoint-dir) and backpressure.\n"
      "  A YAFIM_FAULT_STREAM_* kill exits 9; rerun to resume\n"
      "--approx: approximate mining by Toivonen sampling (yafim only):\n"
      "  mine --samples=N (default 4) Bernoulli samples of fraction\n"
      "  --sample-fraction=F (default 0.1) at the relaxed threshold\n"
      "  minsup * --relax=R (default 0.5), then verify the candidate\n"
      "  union plus every sample's negative border in ONE full counting\n"
      "  pass -- two full-data passes total, any lattice depth. Prints a\n"
      "  '# approx:' line with the certificate: exact=true means the\n"
      "  output is provably the complete exact answer; otherwise\n"
      "  border_survivors and miss_bound quantify what may be missing\n"
      "exit codes: 0 success; 2 bad flags; 3 --lint=error diagnostic;\n"
      "  4 --detsan=error divergence; 9 stream killed at an injected kill\n"
      "  point\n",
      argv0);
  std::exit(2);
}

bool known_engine(const std::string& engine) {
  return engine == "yafim" || engine == "mrapriori" || engine == "apriori" ||
         engine == "fpgrowth" || engine == "eclat";
}

bool known_generate(const std::string& name) {
  return name == "mushroom" || name == "t10" || name == "chess" ||
         name == "pumsb" || name == "medical";
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--input=", 0) == 0) {
      opt.input = value("--input=");
    } else if (arg.rfind("--generate=", 0) == 0) {
      opt.generate = value("--generate=");
    } else if (arg.rfind("--engine=", 0) == 0) {
      opt.engine = value("--engine=");
    } else if (arg.rfind("--minsup=", 0) == 0) {
      opt.minsup = std::atof(value("--minsup="));
    } else if (arg.rfind("--rules=", 0) == 0) {
      opt.rules_confidence = std::atof(value("--rules="));
    } else if (arg.rfind("--top=", 0) == 0) {
      opt.top = std::strtoull(value("--top="), nullptr, 10);
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--lenient") {
      opt.lenient = true;
    } else if (arg == "--stages") {
      opt.stages = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      opt.trace_out = value("--trace=");
    } else if (arg == "--trace" && i + 1 < argc) {
      opt.trace_out = argv[++i];
    } else if (arg.rfind("--checkpoint-dir=", 0) == 0) {
      opt.checkpoint_dir = value("--checkpoint-dir=");
    } else if (arg.rfind("--stop-after-pass=", 0) == 0) {
      opt.stop_after_pass = static_cast<u32>(
          std::strtoul(value("--stop-after-pass="), nullptr, 10));
    } else if (arg.rfind("--pass-sleep-ms=", 0) == 0) {
      opt.pass_sleep_ms =
          std::strtoull(value("--pass-sleep-ms="), nullptr, 10);
    } else if (arg == "--lint") {
      opt.lint = true;
    } else if (arg == "--lint=error") {
      opt.lint = true;
      opt.lint_error = true;
    } else if (arg.rfind("--lint=", 0) == 0) {
      usage(argv[0], "--lint takes no value other than 'error'");
    } else if (arg == "--detsan") {
      opt.detsan = true;
    } else if (arg == "--detsan=error") {
      opt.detsan = true;
      opt.detsan_error = true;
    } else if (arg.rfind("--detsan=", 0) == 0) {
      usage(argv[0], "--detsan takes no value other than 'error'");
    } else if (arg == "--detsan-selftest") {
      opt.detsan_selftest = true;
      opt.detsan = true;
    } else if (arg == "--no-cache") {
      opt.no_cache = true;
    } else if (arg.rfind("--broadcast-mode=", 0) == 0) {
      opt.broadcast_mode = value("--broadcast-mode=");
    } else if (arg.rfind("--memory-gb=", 0) == 0) {
      opt.memory_gb = std::atof(value("--memory-gb="));
    } else if (arg.rfind("--shuffle-buffer-mb=", 0) == 0) {
      opt.shuffle_buffer_mb =
          std::strtoull(value("--shuffle-buffer-mb="), nullptr, 10);
    } else if (arg == "--stream") {
      opt.stream = true;
    } else if (arg.rfind("--stream-batches=", 0) == 0) {
      opt.stream_batches =
          std::strtoull(value("--stream-batches="), nullptr, 10);
    } else if (arg.rfind("--stream-window-s=", 0) == 0) {
      opt.stream_window_s = std::atof(value("--stream-window-s="));
    } else if (arg.rfind("--stream-rate=", 0) == 0) {
      opt.stream_rate = std::atof(value("--stream-rate="));
    } else if (arg.rfind("--stream-seed=", 0) == 0) {
      opt.stream_seed = std::strtoull(value("--stream-seed="), nullptr, 10);
    } else if (arg == "--approx") {
      opt.approx = true;
    } else if (arg.rfind("--sample-fraction=", 0) == 0) {
      opt.sample_fraction = std::atof(value("--sample-fraction="));
    } else if (arg.rfind("--samples=", 0) == 0) {
      opt.approx_samples = std::strtoull(value("--samples="), nullptr, 10);
    } else if (arg.rfind("--relax=", 0) == 0) {
      opt.relax = std::atof(value("--relax="));
    } else if (arg.rfind("--spill-compress=", 0) == 0) {
      const std::string v = value("--spill-compress=");
      if (v != "0" && v != "1") {
        usage(argv[0], "--spill-compress takes 0 or 1");
      }
      opt.spill_compress = v == "1";
    } else {
      usage(argv[0], "unknown flag: " + arg);
    }
  }
  // Validate everything here so every bad invocation gets the same
  // usage-and-exit-2 treatment, before any work happens.
  if (opt.minsup <= 0.0 || opt.minsup > 1.0) {
    usage(argv[0], "--minsup must be in (0, 1]");
  }
  if (!known_engine(opt.engine)) {
    usage(argv[0], "unknown --engine: " + opt.engine);
  }
  if (opt.input.empty() && opt.generate.empty()) opt.generate = "mushroom";
  if (!opt.generate.empty() && !known_generate(opt.generate)) {
    usage(argv[0], "unknown --generate name: " + opt.generate);
  }
  if (!opt.checkpoint_dir.empty() && opt.engine != "yafim" &&
      opt.engine != "mrapriori") {
    usage(argv[0], "--checkpoint-dir requires --engine=yafim|mrapriori");
  }
  if ((opt.stop_after_pass || opt.pass_sleep_ms) &&
      opt.checkpoint_dir.empty()) {
    usage(argv[0],
          "--stop-after-pass/--pass-sleep-ms require --checkpoint-dir");
  }
  if (opt.lint && opt.engine != "yafim" && opt.engine != "mrapriori") {
    usage(argv[0], "--lint requires --engine=yafim|mrapriori");
  }
  if (opt.detsan && opt.engine != "yafim" && opt.engine != "mrapriori") {
    usage(argv[0], "--detsan requires --engine=yafim|mrapriori");
  }
  if (opt.detsan_selftest && (opt.stream || opt.approx)) {
    usage(argv[0], "--detsan-selftest runs fixture plans, not a miner; "
                   "drop --stream/--approx");
  }
  if (opt.no_cache && opt.engine != "yafim") {
    usage(argv[0], "--no-cache requires --engine=yafim");
  }
  if (opt.broadcast_mode != "auto" && opt.broadcast_mode != "full" &&
      opt.broadcast_mode != "partitioned") {
    usage(argv[0], "--broadcast-mode must be auto, full or partitioned");
  }
  if (opt.memory_gb < 0.0) {
    usage(argv[0], "--memory-gb must be >= 0");
  }
  if ((opt.broadcast_mode != "auto" || opt.memory_gb > 0.0 ||
       opt.shuffle_buffer_mb > 0) &&
      opt.engine != "yafim" && opt.engine != "mrapriori") {
    usage(argv[0],
          "--broadcast-mode/--memory-gb/--shuffle-buffer-mb require "
          "--engine=yafim|mrapriori");
  }
  if (opt.stream && opt.engine != "yafim") {
    usage(argv[0], "--stream requires --engine=yafim");
  }
  if (opt.stream && opt.stop_after_pass) {
    usage(argv[0], "--stop-after-pass is a batch-miner flag; streaming "
                   "kills are injected via YAFIM_FAULT_STREAM_*");
  }
  if (!opt.stream && (opt.stream_batches != 20 ||
                      opt.stream_window_s != 5.0 ||
                      opt.stream_rate != 2000.0 || opt.stream_seed != 42)) {
    usage(argv[0], "--stream-* flags require --stream");
  }
  if (opt.stream && (opt.stream_batches == 0 || opt.stream_window_s <= 0.0 ||
                     opt.stream_rate <= 0.0)) {
    usage(argv[0], "--stream-batches/--stream-window-s/--stream-rate "
                   "must be positive");
  }
  if (opt.approx && opt.engine != "yafim") {
    usage(argv[0], "--approx requires --engine=yafim");
  }
  if (opt.approx && opt.stream) {
    usage(argv[0], "--approx and --stream are mutually exclusive");
  }
  if (opt.approx && !opt.checkpoint_dir.empty()) {
    usage(argv[0], "--checkpoint-dir is not supported with --approx "
                   "(the run has no per-pass snapshots)");
  }
  if (!opt.approx && (opt.sample_fraction != 0.1 || opt.approx_samples != 4 ||
                      opt.relax != 0.5)) {
    usage(argv[0], "--sample-fraction/--samples/--relax require --approx");
  }
  if (opt.approx &&
      (opt.sample_fraction <= 0.0 || opt.sample_fraction > 1.0)) {
    usage(argv[0], "--sample-fraction must be in (0, 1]");
  }
  if (opt.approx && (opt.relax <= 0.0 || opt.relax > 1.0)) {
    usage(argv[0], "--relax must be in (0, 1]");
  }
  if (opt.approx && (opt.approx_samples == 0 || opt.approx_samples > 64)) {
    usage(argv[0], "--samples must be in [1, 64]");
  }
  return opt;
}

fim::TransactionDB load(const Options& opt, double* minsup) {
  if (!opt.input.empty()) {
    std::ifstream file(opt.input);
    YAFIM_CHECK(file.good(), "cannot open --input file");
    std::ostringstream text;
    text << file.rdbuf();
    auto db = fim::TransactionDB::from_text(
        text.str(), opt.lenient ? fim::TransactionDB::ParseMode::kLenient
                                : fim::TransactionDB::ParseMode::kStrict);
    const fim::ParseStats& p = db.parse_stats();
    if (p.malformed() > 0 && !opt.quiet) {
      std::fprintf(stderr,
                   "# skipped %llu malformed lines of %llu "
                   "(bad tokens %llu, non-canonical %llu, overlong %llu)\n",
                   (unsigned long long)p.malformed(),
                   (unsigned long long)p.lines_total,
                   (unsigned long long)p.bad_token_lines,
                   (unsigned long long)p.noncanonical_lines,
                   (unsigned long long)p.overlong_lines);
    }
    return db;
  }
  datagen::BenchmarkDataset bench;
  if (opt.generate == "mushroom") {
    bench = datagen::make_mushroom();
  } else if (opt.generate == "t10") {
    bench = datagen::make_t10i4d100k();
  } else if (opt.generate == "chess") {
    bench = datagen::make_chess();
  } else if (opt.generate == "pumsb") {
    bench = datagen::make_pumsb_star();
  } else {  // "medical" -- parse() already rejected unknown names
    bench = datagen::make_medical();
  }
  // Use the paper's threshold unless the user set one explicitly.
  if (*minsup == 0.1) *minsup = bench.paper_min_support;
  return std::move(bench.db);
}

/// DirCheckpointStore wrapper that dawdles after each snapshot. The CI
/// crash-recovery smoke test SIGKILLs the process somewhere inside one of
/// these sleeps, guaranteeing the kill lands between passes k and k+1
/// rather than before the first snapshot or after the run finished.
class SleepyCheckpointStore final : public fim::CheckpointStore {
 public:
  SleepyCheckpointStore(fim::CheckpointStore& inner, u64 sleep_ms)
      : inner_(inner), sleep_ms_(sleep_ms) {}

  void put(const std::string& name, const std::vector<u8>& bytes) override {
    inner_.put(name, bytes);
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
  }
  std::optional<std::vector<u8>> get(const std::string& name) override {
    return inner_.get(name);
  }
  std::vector<std::string> list() override { return inner_.list(); }
  void remove(const std::string& name) override { inner_.remove(name); }

 private:
  fim::CheckpointStore& inner_;
  u64 sleep_ms_;
};

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  Options opt = parse(argc, argv);
  const fim::TransactionDB db = load(opt, &opt.minsup);
  const auto stats = db.stats();
  if (!opt.quiet) {
    std::printf("# %llu transactions, %u items, avg length %.1f; "
                "minsup %.4g (count %llu); engine %s\n",
                (unsigned long long)stats.num_transactions, stats.num_items,
                stats.avg_length, opt.minsup,
                (unsigned long long)db.min_support_count(opt.minsup),
                opt.engine.c_str());
  }

  const bool tracing = !opt.trace_out.empty();
  if (tracing) {
    obs::Tracer::instance().reset();
    obs::Tracer::instance().start();
    obs::Tracer::instance().set_thread_name("driver");
  }

  Stopwatch wall;
  fim::MiningRun run;
  double sim_seconds = -1.0;
  std::vector<engine::LintDiagnostic> lint_diags;
  if (opt.engine == "yafim" || opt.engine == "mrapriori") {
    engine::ContextOptions ctx_opt;
    ctx_opt.lint.enabled = opt.lint;
    ctx_opt.detsan.enabled = opt.detsan;
    ctx_opt.detsan.fail_fast = opt.detsan_error;
    // The selftest must replay every task so both fixtures are observed.
    if (opt.detsan_selftest) ctx_opt.detsan.sample_rate = 1.0;
    if (opt.memory_gb > 0.0) {
      ctx_opt.cluster.executor_memory_bytes =
          static_cast<u64>(opt.memory_gb * (1ull << 30));
    }
    ctx_opt.cluster.shuffle_buffer_bytes = opt.shuffle_buffer_mb << 20;
    engine::Context ctx(ctx_opt);
    ctx.set_spill_compress(opt.spill_compress);
    // Printed even under --quiet: the CI detsan lane greps
    // tasks_replayed=/divergences= and the YL007 rule id out of this block.
    auto print_detsan = [&ctx]() {
      for (const auto& diag : ctx.linter().diagnostics()) {
        if (diag.rule == "YL007") {
          std::printf("# detsan: %s\n",
                      engine::PlanLinter::format(diag).c_str());
        }
      }
      const engine::DetSan& ds = ctx.detsan();
      std::printf("# detsan: tasks_replayed=%llu divergences=%llu\n",
                  (unsigned long long)ds.tasks_replayed(),
                  (unsigned long long)ds.divergences());
    };
    if (opt.detsan_selftest) {
      // Negative control: both committed fixtures are impure, so the
      // sanitizer must observe divergences. Exit 4 under --detsan=error
      // (the first divergence throws), 0 when observing them, 1 if the
      // fixtures somehow ran clean (the sanitizer itself is broken).
      engine::detsan_selftest::SelftestResult self;
      try {
        self = engine::detsan_selftest::run(ctx);
      } catch (const engine::DetSanError& e) {
        std::printf("# detsan: %s\n", e.what());
        print_detsan();
        return 4;
      }
      print_detsan();
      if (self.divergences == 0) {
        std::fprintf(stderr,
                     "detsan selftest failed: impure fixtures ran clean\n");
        return 1;
      }
      return 0;
    }
    simfs::SimFS fs(ctx.cluster());
    const fim::BroadcastMode bmode =
        opt.broadcast_mode == "full"          ? fim::BroadcastMode::kFull
        : opt.broadcast_mode == "partitioned" ? fim::BroadcastMode::kPartitioned
                                              : fim::BroadcastMode::kAuto;

    std::unique_ptr<fim::DirCheckpointStore> dir_store;
    std::unique_ptr<SleepyCheckpointStore> sleepy_store;
    fim::CheckpointStore* store = nullptr;
    if (!opt.checkpoint_dir.empty()) {
      dir_store = std::make_unique<fim::DirCheckpointStore>(opt.checkpoint_dir);
      store = dir_store.get();
      if (opt.pass_sleep_ms > 0) {
        sleepy_store = std::make_unique<SleepyCheckpointStore>(
            *dir_store, opt.pass_sleep_ms);
        store = sleepy_store.get();
      }
    }

    try {
      if (opt.stream) {
        stream::StreamOptions mine_opt;
        mine_opt.min_support = opt.minsup;
        mine_opt.num_batches = opt.stream_batches;
        mine_opt.source.window_s = opt.stream_window_s;
        mine_opt.source.ingest_rate = opt.stream_rate;
        mine_opt.source.seed = opt.stream_seed;
        mine_opt.broadcast_mode = bmode;
        mine_opt.checkpoint = store;
        stream::StreamResult sres;
        try {
          sres = stream::stream_mine(ctx, fs, db, mine_opt);
        } catch (const stream::StreamKilledError& killed) {
          std::printf("# stream: killed at batch %llu phase %s\n",
                      (unsigned long long)killed.batch(),
                      stream::stream_phase_name(killed.phase()));
          return 9;
        }
        // Printed even under --quiet: CI diffs this line between the
        // kill-resume run and the uninterrupted one, and perf_gate.py
        // checks the steady-state latency against the ingest interval.
        std::printf(
            "# stream: batches=%zu transactions=%llu minsup_count=%llu "
            "steady_batch_s=%.3f interval_s=%.2f window_factor=%u "
            "slack=%.2f widenings=%llu slack_raises=%llu reverified=%llu "
            "deferred_drained=%llu\n",
            sres.batches.size(), (unsigned long long)sres.total_transactions,
            (unsigned long long)sres.min_support_count,
            sres.steady_batch_seconds(), sres.ingest_interval_s,
            sres.window_factor, sres.reverify_slack,
            (unsigned long long)sres.widenings,
            (unsigned long long)sres.slack_raises,
            (unsigned long long)sres.reverifications,
            (unsigned long long)sres.deferred_at_close);
        if (sres.resumed_batch > 0 && !opt.quiet) {
          std::printf(
              "# resumed from stream checkpoint: batches 1..%llu restored\n",
              (unsigned long long)sres.resumed_batch);
        }
        run.itemsets = std::move(sres.itemsets);
      } else if (opt.approx) {
        fim::SamplingOptions mine_opt;
        mine_opt.min_support = opt.minsup;
        mine_opt.sample_fraction = opt.sample_fraction;
        mine_opt.num_samples = static_cast<u32>(opt.approx_samples);
        mine_opt.relax = opt.relax;
        mine_opt.cache_transactions = !opt.no_cache;
        mine_opt.broadcast_mode = bmode;
        fim::SamplingRun sres = fim::sampling_mine(ctx, fs, db, mine_opt);
        // Printed even under --quiet: the CI approx-smoke lane greps
        // exact=/border_survivors= out of this line, and the negative
        // control asserts the certificate is refused.
        std::printf(
            "# approx: samples=%llu fraction=%g relax=%g candidates=%llu "
            "border=%llu verified=%llu false=%llu border_survivors=%llu "
            "exact=%s miss_bound=%.3g\n",
            (unsigned long long)opt.approx_samples, opt.sample_fraction,
            opt.relax, (unsigned long long)sres.candidate_union,
            (unsigned long long)sres.border_union,
            (unsigned long long)sres.run.itemsets.total(),
            (unsigned long long)sres.false_candidates,
            (unsigned long long)sres.border_survivors,
            sres.exact ? "true" : "false", sres.miss_bound);
        run = std::move(sres.run);
      } else if (opt.engine == "yafim") {
        fim::YafimOptions mine_opt;
        mine_opt.min_support = opt.minsup;
        mine_opt.checkpoint = store;
        mine_opt.stop_after_pass = opt.stop_after_pass;
        mine_opt.cache_transactions = !opt.no_cache;
        mine_opt.broadcast_mode = bmode;
        run = fim::yafim_mine(ctx, fs, db, mine_opt);
      } else {
        fim::MrAprioriOptions mine_opt;
        mine_opt.min_support = opt.minsup;
        mine_opt.checkpoint = store;
        mine_opt.stop_after_pass = opt.stop_after_pass;
        mine_opt.broadcast_mode = bmode;
        run = fim::mr_apriori_mine(ctx, fs, db, mine_opt);
      }
    } catch (const engine::DetSanError& e) {
      // fail_fast throws on the first divergence; the YL007 diagnostic
      // was recorded before the throw, so the block below names it.
      std::printf("# detsan: %s\n", e.what());
      print_detsan();
      return 4;
    }
    sim_seconds = opt.stream ? ctx.sim_seconds() : run.total_seconds();
    {
      // Printed even under --quiet: CI greps the degradation counters out
      // of this line (beyond-memory smoke lane).
      const engine::MemoryBudget& mb = ctx.memory_budget();
      std::printf(
          "# memory: fallbacks=%llu spill_blocks=%llu spill_raw=%llu "
          "spill_stored=%llu spill_reads=%llu shrinks=%llu\n",
          (unsigned long long)mb.broadcast_fallbacks(),
          (unsigned long long)mb.spill_blocks_written(),
          (unsigned long long)mb.spill_bytes_raw(),
          (unsigned long long)mb.spill_bytes_stored(),
          (unsigned long long)mb.spill_blocks_read(),
          (unsigned long long)mb.mem_shrinks_applied());
    }
    if (opt.detsan) print_detsan();
    if (store && !opt.quiet) {
      // Per-pass provenance: the crash-recovery harness asserts restored
      // passes were skipped, not re-mined, from these lines.
      if (run.resumed_pass > 0) {
        std::printf("# resumed from checkpoint: passes 1..%u restored\n",
                    run.resumed_pass);
      }
      for (const auto& pass : run.passes) {
        std::printf("# pass %u: candidates=%llu frequent=%llu%s\n", pass.k,
                    (unsigned long long)pass.candidates,
                    (unsigned long long)pass.frequent,
                    pass.k <= run.resumed_pass ? " (restored)" : " (mined)");
      }
    }
    if (opt.stages) {
      std::fputs(
          sim::format_report(ctx.report(), ctx.cost_model()).c_str(),
          stdout);
    }
    if (opt.lint) {
      ctx.linter().finalize();
      lint_diags = ctx.linter().diagnostics();
    }
  } else if (opt.engine == "apriori") {
    fim::AprioriOptions mine_opt;
    mine_opt.min_support = opt.minsup;
    run = fim::apriori_mine(db, mine_opt);
  } else if (opt.engine == "fpgrowth") {
    run = fim::fp_growth_mine(db, opt.minsup);
  } else {  // "eclat" -- parse() already rejected unknown engines
    run = fim::eclat_mine(db, opt.minsup);
  }

  if (opt.lint) {
    // Printed even under --quiet: CI greps rule ids out of this block.
    for (const auto& diag : lint_diags) {
      std::printf("# lint: %s\n", engine::PlanLinter::format(diag).c_str());
    }
    std::printf("# lint: %zu diagnostic%s\n", lint_diags.size(),
                lint_diags.size() == 1 ? "" : "s");
  }

  if (tracing) {
    obs::Tracer::instance().stop();
    if (!obs::Tracer::instance().write_chrome_json(opt.trace_out)) {
      std::fprintf(stderr, "cannot write --trace file %s\n",
                   opt.trace_out.c_str());
      return 1;
    }
    std::fputs(obs::Tracer::instance().summary().c_str(), stdout);
    if (!opt.quiet) {
      std::printf("# trace written to %s (open in chrome://tracing or "
                  "https://ui.perfetto.dev)\n",
                  opt.trace_out.c_str());
    }
  }

  if (!opt.quiet) {
    std::printf("# mined %llu frequent itemsets (max size %u) in %.2fs "
                "host time",
                (unsigned long long)run.itemsets.total(),
                run.itemsets.max_k(), wall.seconds());
    if (sim_seconds >= 0.0) {
      std::printf(", %.1fs simulated cluster time", sim_seconds);
    }
    std::printf("\n");
  }

  const auto sorted = run.itemsets.sorted();
  const size_t show = opt.top == 0
                          ? sorted.size()
                          : std::min<size_t>(opt.top, sorted.size());
  for (size_t i = 0; i < show; ++i) {
    for (size_t j = 0; j < sorted[i].first.size(); ++j) {
      std::printf("%s%u", j ? " " : "", sorted[i].first[j]);
    }
    std::printf("  (%llu)\n", (unsigned long long)sorted[i].second);
  }
  if (show < sorted.size()) {
    std::printf("... %zu more (raise --top or pass --top=0 for all)\n",
                sorted.size() - show);
  }

  if (opt.rules_confidence > 0.0) {
    fim::RuleOptions rule_opt;
    rule_opt.min_confidence = opt.rules_confidence;
    const auto rules = fim::generate_rules(run.itemsets, rule_opt);
    std::printf("# %zu rules at confidence >= %.2f\n", rules.size(),
                opt.rules_confidence);
    const size_t rshow = opt.top == 0
                             ? rules.size()
                             : std::min<size_t>(opt.top, rules.size());
    for (size_t i = 0; i < rshow; ++i) {
      std::printf("%s => %s  conf %.2f lift %.2f sup %llu\n",
                  fim::to_string(rules[i].antecedent).c_str(),
                  fim::to_string(rules[i].consequent).c_str(),
                  rules[i].confidence, rules[i].lift,
                  (unsigned long long)rules[i].support);
    }
  }
  if (opt.lint_error) {
    // Notes (e.g. YL002 downgraded because the partitioned fallback
    // engaged) describe graceful degradation, not plan defects -- only
    // warnings and errors fail the process.
    for (const auto& diag : lint_diags) {
      if (diag.severity >= engine::LintSeverity::kWarn) return 3;
    }
  }
  return 0;
}
