// A Hadoop-0.20-style MapReduce job over the simulated HDFS.
//
// This substrate exists to host the paper's baseline (MRApriori / PApriori,
// Li et al. 2012): every Apriori iteration is a fresh job that
//   1. pays a fixed job-startup cost (JVM spin-up, scheduling),
//   2. re-reads the transaction dataset from SimFS,
//   3. runs JVM-per-task mappers emitting (candidate, 1),
//   4. shuffles to reducers that sum and threshold,
//   5. writes the frequent itemsets back to SimFS.
// Steps 1, 2 and 5 recur every iteration -- precisely the overhead YAFIM's
// cached RDDs avoid -- so modeling them explicitly is what lets the Fig. 3
// per-pass gap emerge for the right reason.
//
// The payloads are real: inputs/outputs genuinely round-trip through SimFS
// bytes, and all mining arithmetic runs for real on the host pool.
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/bytes_of.h"
#include "engine/context.h"
#include "engine/detsan.h"
#include "engine/rdd.h"
#include "engine/work.h"
#include "obs/trace.h"
#include "simfs/simfs.h"
#include "util/canon_hash.h"
#include "util/checksum.h"
#include "util/common.h"

namespace yafim::mr {

/// Sink the map function emits key/value pairs into.
template <typename K, typename V>
class Emitter {
 public:
  void emit(K key, V value) {
    engine::work::add(1);
    out_.emplace_back(std::move(key), std::move(value));
  }

  std::vector<std::pair<K, V>>& pairs() { return out_; }

 private:
  std::vector<std::pair<K, V>> out_;
};

/// Everything that defines one job. I: input record; (K, V): intermediate
/// pair; O: output record. `Hash` must deterministically hash K.
template <typename I, typename K, typename V, typename O,
          typename Hash = std::hash<K>>
struct JobSpec {
  std::string name = "job";

  /// Deserialize the whole input file into records (the inverse of whatever
  /// wrote it). Each mapper then works on a contiguous slice.
  std::function<std::vector<I>(const std::vector<u8>&)> decode_input;

  std::function<void(const I&, Emitter<K, V>&)> map_fn;

  /// Alternative to map_fn: invoked once per map task with the task's whole
  /// input slice (a Hadoop mapper's run() override). Used by algorithms
  /// that need split-level context, e.g. SON's local mining phase. Exactly
  /// one of map_fn / map_partition_fn must be set.
  std::function<void(std::span<const I>, Emitter<K, V>&)> map_partition_fn;

  /// Optional map-side combiner (Hadoop Combiner class).
  std::function<V(const V&, const V&)> combine_fn;

  /// Receives one key and all its values; return nullopt to drop the key
  /// (e.g. below MinSup).
  std::function<std::optional<O>(const K&, std::vector<V>&)> reduce_fn;

  std::function<std::vector<u8>(const std::vector<O>&)> encode_output;

  /// 0 = one mapper per simulated core (mapred.map.tasks hint).
  u32 num_mappers = 0;
  /// 0 = one reducer per node.
  u32 num_reducers = 0;

  /// Side data shipped to every mapper via the distributed cache
  /// (MRApriori ships the candidate set this way); bytes are charged as a
  /// per-node localization.
  u64 distributed_cache_bytes = 0;

  Hash hash{};
};

template <typename O>
struct JobResult {
  std::vector<O> output;
  u32 map_tasks = 0;
  u32 reduce_tasks = 0;
  u64 input_bytes = 0;
  u64 shuffle_bytes = 0;
  u64 output_bytes = 0;
};

/// Runs jobs, charging their cost into the Context's SimReport (kinds
/// kOverhead / kMapPhase / kReducePhase, tagged with the current pass).
class JobRunner {
 public:
  JobRunner(engine::Context& ctx, simfs::SimFS& fs) : ctx_(ctx), fs_(fs) {}

  template <typename I, typename K, typename V, typename O, typename Hash>
  JobResult<O> run(const JobSpec<I, K, V, O, Hash>& spec,
                   const std::string& input_path,
                   const std::string& output_path) {
    const sim::ClusterConfig& cluster = ctx_.cluster();
    // Hadoop default: input splits outnumber map slots, so maps run in
    // waves (two here).
    const u32 map_tasks =
        spec.num_mappers ? spec.num_mappers : 2 * cluster.total_cores();
    const u32 reduce_tasks =
        spec.num_reducers ? spec.num_reducers : cluster.nodes;

    // Job startup: submission, scheduling, setup task.
    {
      sim::StageRecord startup;
      startup.label = spec.name + ":startup";
      startup.kind = sim::StageKind::kOverhead;
      startup.pass = ctx_.pass();
      startup.fixed_overhead_s = cluster.mr_job_startup_s;
      ctx_.record(std::move(startup));
    }

    // The distributed cache is MapReduce's broadcast: lint it against the
    // same executor-memory budget (YL002) as Spark-side broadcasts.
    if (spec.distributed_cache_bytes && ctx_.linter().enabled()) {
      ctx_.linter().check_broadcast(spec.distributed_cache_bytes,
                                    spec.name + ":distributed_cache");
    }

    // Input: every job re-reads its input from the DFS.
    const std::vector<u8> raw = fs_.read(input_path);
    const std::vector<I> records = spec.decode_input(raw);

    // Map phase (with optional combiner), hash-partitioned spill. Both
    // phases funnel through Context::measure_tasks, the engine's fault
    // boundary, so MapReduce jobs face the same injected failures, retries
    // and stragglers as Spark stages (keeping the comparison fair).
    std::vector<std::vector<std::vector<std::pair<K, V>>>> map_out(map_tasks);
    std::atomic<u64> shuffle_bytes{0};
    std::optional<obs::Span> map_span;
    if (obs::enabled()) {
      map_span.emplace("stage", spec.name + ":map");
      map_span->arg("ntasks", map_tasks);
    }
    auto tasks = ctx_.measure_tasks(spec.name + ":map", map_tasks,
                                    [&](u32 m) {
      const auto [begin, end] = slice(records.size(), map_tasks, m);
      Emitter<K, V> emitter;
      // Input-format streaming tax: split/deserialize every record anew on
      // every job (cluster.record_parse_work, see sim/cluster.h).
      engine::work::add((end - begin) * (1 + cluster.record_parse_work));
      if (spec.map_partition_fn) {
        YAFIM_CHECK(!spec.map_fn, "set map_fn or map_partition_fn, not both");
        spec.map_partition_fn(
            std::span<const I>(records.data() + begin, end - begin), emitter);
      } else {
        YAFIM_CHECK(static_cast<bool>(spec.map_fn), "map_fn not set");
        for (size_t i = begin; i < end; ++i) {
          spec.map_fn(records[i], emitter);
        }
      }

      auto& buckets = map_out[m];
      buckets.resize(reduce_tasks);
      u64 bytes = 0;
      auto spill = [&](K&& k, V&& v) {
        const u32 r = static_cast<u32>(spec.hash(k) % reduce_tasks);
        bytes += engine::byte_size(k) + engine::byte_size(v);
        buckets[r].emplace_back(std::move(k), std::move(v));
      };
      if (spec.combine_fn) {
        // DetSan: when this task is sampled, re-run the combiner over a
        // permuted emission order and compare multisets -- the MapReduce
        // analogue of the RDD map-combine replay, catching
        // non-commutative/non-associative combine fns. The snapshot is
        // taken up front because the primary build below moves the pairs
        // out of the emitter.
        engine::DetSan& ds = ctx_.detsan();
        u32 replay_id = 0;
        std::vector<std::pair<K, V>> replay_input;
        if constexpr (util::is_canon_hashable_v<K> &&
                      util::is_canon_hashable_v<V>) {
          if (ds.enabled() && emitter.pairs().size() >= 2) {
            replay_id = static_cast<u32>(
                mix64(xxh64(spec.name.data(), spec.name.size(), 0)));
            if (ds.should_replay(replay_id, m)) {
              replay_input = emitter.pairs();
            }
          }
        }
        std::unordered_map<K, V, Hash> combined;
        combined.reserve(
            std::min(emitter.pairs().size(), engine::kCombineReserveCap));
        for (auto& [k, v] : emitter.pairs()) {
          engine::work::add(1);
          auto [it, inserted] = combined.try_emplace(std::move(k), v);
          if (!inserted) it->second = spec.combine_fn(it->second, v);
        }
        if constexpr (util::is_canon_hashable_v<K> &&
                      util::is_canon_hashable_v<V>) {
          if (!replay_input.empty()) {
            const std::vector<u32> perm = engine::DetSan::permutation(
                replay_input.size(), ds.replay_seed(replay_id, m));
            std::unordered_map<K, V, Hash> rcombined;
            rcombined.reserve(combined.size());
            for (u32 idx : perm) {
              engine::work::add(1);
              const auto& [k, v] = replay_input[idx];
              auto [it, inserted] = rcombined.try_emplace(k, v);
              if (!inserted) it->second = spec.combine_fn(it->second, v);
            }
            ds.note_replayed();
            if (util::canon_hash_unordered(combined) !=
                util::canon_hash_unordered(rcombined)) {
              ds.report_divergence_raw(
                  "job '" + spec.name + "' map task " + std::to_string(m),
                  "combine",
                  combined.size() == rcombined.size()
                      ? "a combined value differs between emission orders"
                      : std::to_string(rcombined.size()) +
                            " combined key(s) on replay vs " +
                            std::to_string(combined.size()));
            }
          }
        }
        for (auto& [k, v] : combined) {
          spill(std::move(const_cast<K&>(k)), std::move(v));
        }
      } else {
        for (auto& [k, v] : emitter.pairs()) {
          spill(std::move(k), std::move(v));
        }
      }
      shuffle_bytes.fetch_add(bytes, std::memory_order_relaxed);
    });
    {
      if (map_span) {
        map_span->arg("shuffle_bytes", shuffle_bytes.load());
        map_span->end();
      }
      sim::StageRecord map_stage;
      map_stage.label = spec.name + ":map";
      map_stage.kind = sim::StageKind::kMapPhase;
      map_stage.pass = ctx_.pass();
      map_stage.tasks = std::move(tasks);
      map_stage.dfs_read_bytes = raw.size();
      // Distributed-cache payloads are localized once per node.
      map_stage.broadcast_bytes = spec.distributed_cache_bytes * cluster.nodes;
      ctx_.record(std::move(map_stage));
    }

    // Spillable intermediate shapes degrade to simfs when the map-side
    // buffers exceed the shuffle-buffer budget -- the same controller as
    // RDD shuffles (engine/rdd.h), so MapReduce jobs face the same memory
    // ceiling as Spark stages.
    std::optional<engine::detail::ShuffleSpill<
        std::vector<std::vector<std::pair<K, V>>>>>
        spill;
    if constexpr (engine::detail::is_spillable_v<std::pair<K, V>>) {
      spill.emplace(ctx_, spec.name);
      spill->note_buffered(shuffle_bytes.load(std::memory_order_relaxed));
      spill->maybe_spill(map_out);
      spill->restore(map_out);
    }

    // Reduce phase: group values per key, reduce, collect output.
    std::vector<std::vector<O>> reduce_out(reduce_tasks);
    std::optional<obs::Span> reduce_span;
    if (obs::enabled()) {
      reduce_span.emplace("stage", spec.name + ":reduce");
      reduce_span->arg("ntasks", reduce_tasks);
    }
    auto rtasks = ctx_.measure_tasks(spec.name + ":reduce", reduce_tasks,
                                     [&](u32 r) {
      std::unordered_map<K, std::vector<V>, Hash> groups;
      for (u32 m = 0; m < map_tasks; ++m) {
        for (auto& [k, v] : map_out[m][r]) {
          engine::work::add(1);
          groups[std::move(k)].push_back(std::move(v));
        }
      }
      auto& out = reduce_out[r];
      for (auto& [k, values] : groups) {
        engine::work::add(values.size());
        if (auto o = spec.reduce_fn(k, values)) out.push_back(std::move(*o));
      }
    });

    JobResult<O> result;
    result.map_tasks = map_tasks;
    result.reduce_tasks = reduce_tasks;
    result.input_bytes = raw.size();
    result.shuffle_bytes = shuffle_bytes.load();
    for (auto& part : reduce_out) {
      result.output.insert(result.output.end(),
                           std::make_move_iterator(part.begin()),
                           std::make_move_iterator(part.end()));
    }

    std::vector<u8> encoded = spec.encode_output(result.output);
    result.output_bytes = encoded.size();
    fs_.write(output_path, std::move(encoded));
    if (reduce_span) reduce_span->end();
    {
      sim::StageRecord reduce_stage;
      reduce_stage.label = spec.name + ":reduce";
      reduce_stage.kind = sim::StageKind::kReducePhase;
      reduce_stage.pass = ctx_.pass();
      reduce_stage.tasks = std::move(rtasks);
      reduce_stage.shuffle_bytes = result.shuffle_bytes;
      reduce_stage.dfs_write_bytes = result.output_bytes;
      ctx_.record(std::move(reduce_stage));
    }
    return result;
  }

  engine::Context& ctx() { return ctx_; }
  simfs::SimFS& fs() { return fs_; }

 private:
  /// Contiguous slice [begin, end) of `n` records for task `t` of `tasks`.
  static std::pair<size_t, size_t> slice(size_t n, u32 tasks, u32 t) {
    const size_t base = n / tasks;
    const size_t extra = n % tasks;
    const size_t begin = t * base + std::min<size_t>(t, extra);
    return {begin, begin + base + (t < extra ? 1 : 0)};
  }

  engine::Context& ctx_;
  simfs::SimFS& fs_;
};

}  // namespace yafim::mr
