# Empty dependencies file for test_itemset.
# This may be replaced when dependencies are built.
