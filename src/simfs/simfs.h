// SimFS: a simulated HDFS.
//
// Stands in for the HDFS cluster the paper stores its datasets on. Files
// live in host memory, but every read/write is priced by the cost model
// (block replication, disk and network bandwidth), and the byte payloads are
// real serialized data: the MapReduce substrate genuinely round-trips its
// inputs and outputs through here each job, which is precisely the overhead
// YAFIM is designed to avoid.
//
// Thread-safe. Paths are flat strings; "directories" are prefixes.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/cost_model.h"
#include "util/common.h"

namespace yafim::simfs {

struct FileStat {
  u64 bytes = 0;
  u32 blocks = 0;
};

class SimFS {
 public:
  explicit SimFS(sim::ClusterConfig cluster)
      : cluster_(cluster), model_(cluster) {}

  /// Store `data` at `path`, replacing any existing file. Returns the
  /// simulated seconds the write took (replicated pipeline write).
  double write(const std::string& path, std::vector<u8> data);

  /// Read the file at `path`. Aborts if missing (missing input is a
  /// programming error in this codebase, not a runtime condition). If
  /// `sim_seconds` is non-null it receives the simulated read time.
  std::vector<u8> read(const std::string& path,
                       double* sim_seconds = nullptr) const;

  bool exists(const std::string& path) const;
  bool remove(const std::string& path);
  std::optional<FileStat> stat(const std::string& path) const;

  /// All paths with the given prefix, sorted.
  std::vector<std::string> list(const std::string& prefix) const;

  /// Cumulative traffic counters (bytes) since construction.
  u64 total_bytes_written() const;
  u64 total_bytes_read() const;

  const sim::ClusterConfig& cluster() const { return cluster_; }

 private:
  sim::ClusterConfig cluster_;
  sim::CostModel model_;

  mutable std::mutex mutex_;
  std::map<std::string, std::vector<u8>> files_;
  u64 bytes_written_ = 0;
  mutable u64 bytes_read_ = 0;
};

}  // namespace yafim::simfs
