// Backpressure controller for the streaming miner.
//
// Watches per-batch mining latency (simulated seconds) against the batch's
// ingest interval and degrades gracefully instead of falling behind
// unboundedly, in two bounded steps:
//
//   1. Widen the batch window (doubling window_factor up to
//      max_window_factor): per-batch fixed costs -- task launches, snapshot
//      writes, candidate generation -- amortize over more transactions, so
//      the latency/interval ratio improves without touching results at all.
//   2. Raise the effective re-verification threshold: frontier *entry* is
//      deferred for itemsets within `reverify_slack` of MinSup (exit stays
//      at MinSup -- hysteresis). Crossings are deferred, never dropped: the
//      miner's finalize() drains every deferral, so final output is exact.
//      Each raise is surfaced as a YL006 lint note and an obs counter.
//
// De-escalation runs the same ladder in reverse when latency drops well
// below the interval. All decisions are pure functions of the observed
// deterministic sim latencies, so an interrupted-and-resumed run makes
// bit-identical controller moves.
#pragma once

#include "util/common.h"

namespace yafim::engine {
class PlanLinter;
}

namespace yafim::stream {

struct BackpressureOptions {
  /// Escalate when batch latency exceeds this fraction of the interval.
  double widen_threshold = 0.9;
  /// De-escalate when latency falls below this fraction.
  double relax_threshold = 0.45;
  /// Window may widen to at most this many nominal windows.
  u32 max_window_factor = 8;
  /// Re-verification slack per raise, and its bound.
  double slack_step = 0.1;
  double max_slack = 0.5;
};

/// The controller's persistent knobs -- checkpointed with the miner state
/// so a resumed run continues with the same effective window and slack.
struct BackpressureState {
  u32 window_factor = 1;
  double reverify_slack = 0.0;
};

class BackpressureController {
 public:
  explicit BackpressureController(BackpressureOptions options)
      : options_(options) {}

  const BackpressureOptions& options() const { return options_; }

  /// Digest one finished batch: `latency_s` simulated mining seconds
  /// against `interval_s` of ingest; `deferred` is the current count of
  /// deferred MinSup crossings (for the YL006 note). Mutates `state` by at
  /// most one ladder step; emits the YL006 note through `linter` (may be
  /// null) on each slack raise.
  void observe(double latency_s, double interval_s, u64 deferred,
               BackpressureState* state, engine::PlanLinter* linter);

  u64 widenings() const { return widenings_; }
  u64 slack_raises() const { return slack_raises_; }
  void restore_stats(u64 widenings, u64 slack_raises) {
    widenings_ = widenings;
    slack_raises_ = slack_raises;
  }

 private:
  BackpressureOptions options_;
  u64 widenings_ = 0;
  u64 slack_raises_ = 0;
};

}  // namespace yafim::stream
