#include "util/log.h"

#include <cstdio>

#include "util/thread_annotations.h"

namespace yafim {
namespace log_detail {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

namespace {
// Serializes whole lines onto stderr (the stream itself is the guarded
// resource, so there is no variable to GUARDED_BY).
util::Mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  util::MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s] ", level_tag(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace log_detail

#define YAFIM_DEFINE_LOG_FN(name, level)                   \
  void name(const char* fmt, ...) {                        \
    std::va_list args;                                     \
    va_start(args, fmt);                                   \
    log_detail::vlog(level, fmt, args);                    \
    va_end(args);                                          \
  }

YAFIM_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
YAFIM_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
YAFIM_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
YAFIM_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef YAFIM_DEFINE_LOG_FN

}  // namespace yafim
