#include "engine/context.h"

#include "engine/work.h"

namespace yafim::engine {

Context::Context(Options opts)
    : opts_(opts),
      model_(opts.cluster),
      pool_(opts.host_threads),
      fault_(opts.cluster.nodes),
      default_partitions_(opts.default_partitions
                              ? opts.default_partitions
                              : 2 * opts.cluster.total_cores()) {}

void Context::run_stage(const std::string& label, u32 ntasks,
                        const std::function<void(u32)>& body) {
  static const std::atomic<u64> kNoShuffle{0};
  run_stage_with_shuffle(label, ntasks, body, kNoShuffle);
}

std::vector<sim::TaskRecord> Context::measure_tasks(
    u32 ntasks, const std::function<void(u32)>& body) {
  YAFIM_CHECK(!ThreadPool::on_pool_thread(),
              "stages must be launched from the driver thread");
  std::vector<sim::TaskRecord> tasks(ntasks);
  pool_.parallel_for(ntasks, [&](u32 i) {
    work::Scope scope;
    body(i);
    tasks[i].work = scope.measured();
  });
  return tasks;
}

void Context::run_stage_with_shuffle(const std::string& label, u32 ntasks,
                                     const std::function<void(u32)>& body,
                                     const std::atomic<u64>& shuffle_bytes) {
  std::vector<sim::TaskRecord> tasks = measure_tasks(ntasks, body);

  sim::StageRecord record;
  record.label = label;
  record.kind = sim::StageKind::kSparkStage;
  record.pass = pass_;
  record.tasks = std::move(tasks);
  record.shuffle_bytes = shuffle_bytes.load(std::memory_order_relaxed);
  if (pending_broadcast_ > 0) {
    if (opts_.share_mode == ShareMode::kBroadcast) {
      record.broadcast_bytes = pending_broadcast_;
    } else {
      record.naive_ship_bytes = pending_broadcast_;
    }
    pending_broadcast_ = 0;
  }
  this->record(std::move(record));
}

void Context::record(sim::StageRecord record) {
  std::lock_guard<std::mutex> lock(report_mutex_);
  report_.add(std::move(record));
}

}  // namespace yafim::engine
