# Empty compiler generated dependencies file for test_fp_eclat.
# This may be replaced when dependencies are built.
