# Empty dependencies file for yafim_simfs.
# This may be replaced when dependencies are built.
