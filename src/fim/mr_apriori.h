// MRApriori: the paper's baseline -- Li et al.'s PApriori, a k-phase
// parallel Apriori on Hadoop MapReduce. Every level-wise iteration is a
// fresh MapReduce job that pays job startup, re-reads the transaction
// dataset from HDFS, ships the candidate set to mappers through the
// distributed cache, and writes the frequent itemsets back to HDFS, which
// the driver then reads to generate the next candidates.
//
// The paper notes all MapReduce implementations of Apriori share this
// per-iteration I/O structure, so one baseline represents the class.
#pragma once

#include <string>

#include "engine/context.h"
#include "fim/checkpoint.h"
#include "fim/dataset.h"
#include "fim/hash_tree.h"
#include "fim/result.h"
#include "simfs/simfs.h"

namespace yafim::fim {

struct MrAprioriOptions {
  /// Relative minimum support threshold in (0, 1].
  double min_support = 0.1;
  /// Map / reduce task counts (0 = substrate defaults: one mapper per
  /// simulated core, one reducer per node).
  u32 num_mappers = 0;
  u32 num_reducers = 0;
  /// Candidate probing structure (matches YafimOptions for fair compares).
  bool use_hash_tree = true;
  u32 branching = 0;  // 0 = auto (HashTree::default_branching)
  u32 leaf_capacity = 16;
  /// Counting-shuffle key for jobs k >= 2 (matches YafimOptions so the
  /// YAFIM-vs-MRApriori comparison stays apples-to-apples): kItemsetKey
  /// shuffles full itemsets, kCandidateId shuffles dense candidate ids and
  /// maps survivors back through the mapper-side tree in the reducer;
  /// kVerticalBitmap builds a bitmap index per map split (MapReduce has no
  /// cross-job cache, so it is rebuilt each level) and emits nonzero
  /// candidate-id counts from an in-mapper AND+popcount pass.
  CountMode count_mode = CountMode::kCandidateId;
  /// How the candidate tree reaches the mappers when it outgrows the
  /// executor-memory budget (matches YafimOptions): kAuto localizes the
  /// whole tree through the distributed cache while it fits and falls back
  /// to candidate-set partitioning when it would not -- the level is
  /// counted as one sub-job per candidate shard, each shipping only its
  /// shard's tree (the classic buffer-management answer to an oversized
  /// Ck, at the price of re-reading the input per sub-job); kFull always
  /// ships the whole tree (over budget keeps YL002's error semantics);
  /// kPartitioned always shards. All modes yield identical itemsets.
  BroadcastMode broadcast_mode = BroadcastMode::kAuto;
  /// Scratch directory on the DFS for per-iteration outputs.
  std::string work_dir = "hdfs://mrapriori";
  /// Stop after this many levels (0 = run to completion). BigFIM uses this
  /// to run only the first k Apriori levels before switching to Eclat.
  u32 max_levels = 0;

  /// Crash recovery (fim/checkpoint.h): same contract as YafimOptions --
  /// snapshot after every completed job, resume from the newest valid
  /// snapshot of the same dataset + configuration. Not owned.
  CheckpointStore* checkpoint = nullptr;
  /// Abandon the run after snapshotting this pass (0 = run to completion);
  /// deterministic stand-in for a mid-run crash.
  u32 stop_after_pass = 0;
};

/// Mine the dataset stored at `input_path` on `fs`. Cost is charged into
/// ctx's SimReport (job startup + per-job DFS I/O + JVM-per-task phases).
MiningRun mr_apriori_mine(engine::Context& ctx, simfs::SimFS& fs,
                          const std::string& input_path,
                          const MrAprioriOptions& options);

/// Convenience overload staging `db` onto `fs` first.
MiningRun mr_apriori_mine(engine::Context& ctx, simfs::SimFS& fs,
                          const TransactionDB& db,
                          const MrAprioriOptions& options);

}  // namespace yafim::fim
