// End-to-end integration tests across the whole stack: generate a dataset,
// stage it on the simulated HDFS, mine it with every engine, compare, replay
// costs across cluster sizes, recover from faults, and produce rules --
// i.e. the paper's full pipeline in miniature.
#include <gtest/gtest.h>

#include "datagen/benchmarks.h"
#include "engine/rdd.h"
#include "fim/apriori_seq.h"
#include "fim/big_fim.h"
#include "fim/dist_eclat.h"
#include "fim/pfp.h"
#include "fim/son.h"
#include "fim/eclat.h"
#include "fim/fp_growth.h"
#include "fim/mr_apriori.h"
#include "fim/rules.h"
#include "fim/spc_fpc_dpc.h"
#include "fim/yafim.h"

namespace yafim {
namespace {

engine::Context::Options paper_cluster() {
  engine::Context::Options opts;
  opts.cluster = sim::ClusterConfig::paper();
  opts.host_threads = 4;
  return opts;
}

TEST(Integration, FiveEnginesAgreeOnMushroom) {
  const auto bench = datagen::make_mushroom(/*scale=*/0.25);
  const double sup = bench.paper_min_support;

  fim::AprioriOptions aopt;
  aopt.min_support = sup;
  const auto apriori = fim::apriori_mine(bench.db, aopt);
  const auto fp = fim::fp_growth_mine(bench.db, sup);
  const auto eclat = fim::eclat_mine(bench.db, sup);

  engine::Context ctx1(paper_cluster()), ctx2(paper_cluster());
  simfs::SimFS fs1(ctx1.cluster()), fs2(ctx2.cluster());
  fim::YafimOptions yopt;
  yopt.min_support = sup;
  const auto yafim_run = fim::yafim_mine(ctx1, fs1, bench.db, yopt);
  fim::MrAprioriOptions mopt;
  mopt.min_support = sup;
  const auto mr_run = fim::mr_apriori_mine(ctx2, fs2, bench.db, mopt);

  EXPECT_GT(apriori.itemsets.total(), 100u);
  EXPECT_TRUE(apriori.itemsets.same_itemsets(fp.itemsets));
  EXPECT_TRUE(apriori.itemsets.same_itemsets(eclat.itemsets));
  EXPECT_TRUE(apriori.itemsets.same_itemsets(yafim_run.itemsets));
  EXPECT_TRUE(apriori.itemsets.same_itemsets(mr_run.itemsets));
}

TEST(Integration, YafimBeatsMrByPaperMagnitude) {
  const auto bench = datagen::make_mushroom(/*scale=*/0.25);
  // A calibrated performance ratio: pin injection off so retry backoffs
  // (which tax the many-small-task Spark side hardest) don't skew it when
  // the suite runs under the CI fault matrix.
  auto opts = paper_cluster();
  opts.fault = engine::FaultProfile{};
  engine::Context ctx1(opts), ctx2(opts);
  simfs::SimFS fs1(ctx1.cluster()), fs2(ctx2.cluster());

  fim::YafimOptions yopt;
  yopt.min_support = bench.paper_min_support;
  const double yafim_s =
      fim::yafim_mine(ctx1, fs1, bench.db, yopt).total_seconds();
  fim::MrAprioriOptions mopt;
  mopt.min_support = bench.paper_min_support;
  const double mr_s =
      fim::mr_apriori_mine(ctx2, fs2, bench.db, mopt).total_seconds();

  const double speedup = mr_s / yafim_s;
  // Paper: ~18x average, ~21x on MushRoom. Allow a generous band around
  // the reproduction.
  EXPECT_GT(speedup, 8.0);
  EXPECT_LT(speedup, 80.0);
}

TEST(Integration, ReplayAcrossClusterSizesIsMonotone) {
  // The Fig. 5 methodology: record once, price under 4..12 nodes.
  const auto bench = datagen::make_mushroom(/*scale=*/0.25);
  engine::Context ctx(paper_cluster());
  simfs::SimFS fs(ctx.cluster());
  fim::YafimOptions opt;
  opt.min_support = bench.paper_min_support;
  fim::yafim_mine(ctx, fs, bench.db, opt);

  double prev = 1e100;
  for (u32 nodes : {4u, 6u, 8u, 10u, 12u}) {
    const sim::CostModel model{sim::ClusterConfig::with_nodes(nodes)};
    const double t = ctx.report().total_seconds(model);
    EXPECT_LT(t, prev) << nodes << " nodes";
    prev = t;
  }
}

TEST(Integration, SizeupKeepsResultsAndGrowsTime) {
  // The Fig. 4 methodology: replicated data, fixed cluster.
  const auto bench = datagen::make_mushroom(/*scale=*/0.1);
  fim::YafimOptions opt;
  opt.min_support = bench.paper_min_support;

  double prev_seconds = 0.0;
  fim::FrequentItemsets first_sets;
  for (u32 times : {1u, 2u, 4u}) {
    engine::Context ctx(paper_cluster());
    simfs::SimFS fs(ctx.cluster());
    const auto run =
        fim::yafim_mine(ctx, fs, bench.db.replicate(times), opt);
    if (times == 1) {
      first_sets = run.itemsets;
    } else {
      // Replication preserves relative supports: the same itemsets are
      // frequent, with absolute supports scaled by `times`.
      ASSERT_EQ(run.itemsets.total(), first_sets.total());
      for (const auto& [itemset, support] : first_sets.sorted()) {
        EXPECT_EQ(run.itemsets.support_of(itemset), support * times);
      }
    }
    EXPECT_GE(run.total_seconds(), prev_seconds);
    prev_seconds = run.total_seconds();
  }
}

TEST(Integration, FaultDuringMiningDoesNotChangeResults) {
  const auto bench = datagen::make_mushroom(/*scale=*/0.1);
  // Baseline without faults.
  fim::FrequentItemsets clean;
  {
    engine::Context ctx(paper_cluster());
    simfs::SimFS fs(ctx.cluster());
    fim::YafimOptions opt;
    opt.min_support = bench.paper_min_support;
    clean = fim::yafim_mine(ctx, fs, bench.db, opt).itemsets;
  }
  // Mine the same data through a cached RDD, killing executors between
  // actions.
  engine::Context ctx(paper_cluster());
  auto transactions =
      ctx.parallelize(std::vector<fim::Transaction>(
                          bench.db.transactions().begin(),
                          bench.db.transactions().end()),
                      24)
          .map([](const fim::Transaction& t) { return t; });
  transactions.persist();
  (void)transactions.count();  // populate the cache

  ctx.fault_injector().kill_executor(3);
  ctx.fault_injector().kill_executor(7);

  // Recount item frequencies post-fault and compare with clean L1.
  auto counts =
      transactions
          .flat_map([](const fim::Transaction& t) { return t; })
          .map([](const fim::Item& i) {
            return std::pair<fim::Itemset, u64>(fim::Itemset{i}, 1);
          })
          .reduce_by_key([](u64 a, u64 b) { return a + b; }, 0,
                         fim::ItemsetHash{})
          .collect_as_map<fim::ItemsetHash>();
  EXPECT_GT(ctx.fault_injector().recomputations(), 0u);
  for (const auto& [itemset, support] : clean.level(1)) {
    EXPECT_EQ(counts.at(itemset), support);
  }
}

TEST(Integration, MedicalPipelineProducesComorbidityRules) {
  datagen::MedicalParams params;
  params.num_cases = 4000;
  const auto data = datagen::generate_medical(params);

  engine::Context ctx(paper_cluster());
  simfs::SimFS fs(ctx.cluster());
  fim::YafimOptions opt;
  opt.min_support = 0.03;
  const auto run = fim::yafim_mine(ctx, fs, data.db, opt);

  fim::RuleOptions ropt;
  ropt.min_confidence = 0.6;
  const auto rules = fim::generate_rules(run.itemsets, ropt);
  ASSERT_FALSE(rules.empty());

  // At least one high-confidence rule must relate codes of the most
  // prevalent comorbidity cluster.
  const auto& cluster = data.clusters[0];
  bool found = false;
  for (const auto& rule : rules) {
    if (rule.antecedent.size() == 1 && rule.consequent.size() == 1 &&
        fim::contains_all(cluster, rule.antecedent) &&
        fim::contains_all(cluster, rule.consequent)) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "no intra-cluster rule among " << rules.size();
}

TEST(Integration, AllNineEnginesAgreeOnBenchmark) {
  const auto bench = datagen::make_mushroom(/*scale=*/0.15);
  const double sup = bench.paper_min_support;
  fim::AprioriOptions ref_opt;
  ref_opt.min_support = sup;
  const auto ref = fim::apriori_mine(bench.db, ref_opt).itemsets;

  EXPECT_TRUE(fim::fp_growth_mine(bench.db, sup).itemsets.same_itemsets(ref));
  EXPECT_TRUE(fim::eclat_mine(bench.db, sup).itemsets.same_itemsets(ref));
  {
    engine::Context ctx(paper_cluster());
    simfs::SimFS fs(ctx.cluster());
    fim::YafimOptions opt;
    opt.min_support = sup;
    EXPECT_TRUE(
        fim::yafim_mine(ctx, fs, bench.db, opt).itemsets.same_itemsets(ref));
  }
  {
    engine::Context ctx(paper_cluster());
    simfs::SimFS fs(ctx.cluster());
    fim::MrAprioriOptions opt;
    opt.min_support = sup;
    EXPECT_TRUE(fim::mr_apriori_mine(ctx, fs, bench.db, opt)
                    .itemsets.same_itemsets(ref));
  }
  {
    engine::Context ctx(paper_cluster());
    simfs::SimFS fs(ctx.cluster());
    fim::SonOptions opt;
    opt.min_support = sup;
    EXPECT_TRUE(
        fim::son_mine(ctx, fs, bench.db, opt).run.itemsets.same_itemsets(ref));
  }
  {
    engine::Context ctx(paper_cluster());
    simfs::SimFS fs(ctx.cluster());
    fim::DistEclatOptions opt;
    opt.min_support = sup;
    EXPECT_TRUE(fim::dist_eclat_mine(ctx, fs, bench.db, opt)
                    .run.itemsets.same_itemsets(ref));
  }
  {
    engine::Context ctx(paper_cluster());
    simfs::SimFS fs(ctx.cluster());
    fim::BigFimOptions opt;
    opt.min_support = sup;
    EXPECT_TRUE(fim::big_fim_mine(ctx, fs, bench.db, opt)
                    .run.itemsets.same_itemsets(ref));
  }
  {
    engine::Context ctx(paper_cluster());
    simfs::SimFS fs(ctx.cluster());
    fim::PfpOptions opt;
    opt.min_support = sup;
    EXPECT_TRUE(
        fim::pfp_mine(ctx, fs, bench.db, opt).run.itemsets.same_itemsets(ref));
  }
}

TEST(Integration, CombiningStrategiesAgreeOnBenchmark) {
  const auto bench = datagen::make_mushroom(/*scale=*/0.1);
  fim::FrequentItemsets reference;
  {
    fim::AprioriOptions opt;
    opt.min_support = bench.paper_min_support;
    reference = fim::apriori_mine(bench.db, opt).itemsets;
  }
  for (const auto strategy :
       {fim::CombineStrategy::kSinglePass, fim::CombineStrategy::kFixedPasses,
        fim::CombineStrategy::kDynamic}) {
    engine::Context ctx(paper_cluster());
    simfs::SimFS fs(ctx.cluster());
    fim::LinOptions opt;
    opt.min_support = bench.paper_min_support;
    opt.strategy = strategy;
    const auto lin = fim::lin_mine(ctx, fs, bench.db, opt);
    EXPECT_TRUE(lin.run.itemsets.same_itemsets(reference));
  }
}

}  // namespace
}  // namespace yafim
