#include "fim/rules.h"

#include <algorithm>
#include <string>

#include "engine/broadcast.h"
#include "engine/bytes_of.h"
#include "engine/rdd.h"

namespace yafim::fim {

namespace {

/// Emit every rule of one frequent itemset that clears min_confidence.
void rules_of_itemset(const Itemset& itemset, u64 support,
                      const FrequentItemsets& all, double min_confidence,
                      double num_transactions, std::vector<Rule>& out) {
  const u32 size = static_cast<u32>(itemset.size());
  // Every non-empty proper subset as antecedent, by bitmask.
  for (u32 mask = 1; mask + 1 < (1u << size); ++mask) {
    engine::work::add(1);
    Itemset antecedent, consequent;
    for (u32 bit = 0; bit < size; ++bit) {
      if (mask & (1u << bit)) {
        antecedent.push_back(itemset[bit]);
      } else {
        consequent.push_back(itemset[bit]);
      }
    }
    // Exact miners guarantee both subset lookups succeed (monotonicity);
    // approximate or hand-built collections may not, and each failure mode
    // would otherwise produce a divide-by-zero or an abort.
    const u64 antecedent_support = all.support_of(antecedent);
    if (antecedent_support == 0) {
      throw RuleError(RuleErrorKind::kMissingAntecedent, antecedent,
                      "rule generation: antecedent " + to_string(antecedent) +
                          " of " + to_string(itemset) +
                          " is not in the itemset collection (collection is "
                          "not downward-closed)");
    }
    if (antecedent_support < support) {
      throw RuleError(RuleErrorKind::kSupportInversion, antecedent,
                      "rule generation: sup(" + to_string(antecedent) + ")=" +
                          std::to_string(antecedent_support) + " < sup(" +
                          to_string(itemset) + ")=" + std::to_string(support) +
                          " (supports are not monotone)");
    }
    const double confidence = static_cast<double>(support) /
                              static_cast<double>(antecedent_support);
    if (confidence + 1e-12 < min_confidence) continue;

    const u64 consequent_support = all.support_of(consequent);
    if (consequent_support == 0) {
      throw RuleError(RuleErrorKind::kMissingConsequent, consequent,
                      "rule generation: consequent " + to_string(consequent) +
                          " of " + to_string(itemset) +
                          " is not in the itemset collection (collection is "
                          "not downward-closed)");
    }
    const double lift =
        confidence /
        (static_cast<double>(consequent_support) / num_transactions);
    out.push_back(Rule{std::move(antecedent), std::move(consequent), support,
                       confidence, lift});
  }
}

void sort_rules(std::vector<Rule>& rules) {
  std::sort(rules.begin(), rules.end(), [](const Rule& a, const Rule& b) {
    if (a.confidence != b.confidence) return a.confidence > b.confidence;
    if (a.support != b.support) return a.support > b.support;
    if (a.antecedent != b.antecedent) return a.antecedent < b.antecedent;
    return a.consequent < b.consequent;
  });
}

/// Estimated broadcast size of the support table.
u64 support_table_bytes(const FrequentItemsets& itemsets) {
  u64 bytes = 16;
  for (const auto& [itemset, support] : itemsets.sorted()) {
    (void)support;
    bytes += engine::byte_size(itemset) + 8;
  }
  return bytes;
}

}  // namespace

std::vector<Rule> generate_rules(const FrequentItemsets& itemsets,
                                 const RuleOptions& options) {
  YAFIM_CHECK(options.max_itemset_size <= 30,
              "antecedent enumeration is exponential in itemset size");
  std::vector<Rule> rules;
  const double n = static_cast<double>(itemsets.num_transactions());

  for (u32 k = 2; k <= itemsets.max_k(); ++k) {
    if (k > options.max_itemset_size) break;
    for (const auto& [itemset, support] : itemsets.level(k)) {
      rules_of_itemset(itemset, support, itemsets, options.min_confidence, n,
                       rules);
    }
  }
  sort_rules(rules);
  return rules;
}

std::vector<Rule> generate_rules_parallel(engine::Context& ctx,
                                          const FrequentItemsets& itemsets,
                                          const RuleOptions& options) {
  YAFIM_CHECK(options.max_itemset_size <= 30,
              "antecedent enumeration is exponential in itemset size");
  // The rule derivation of one itemset needs the supports of all of its
  // subsets: share the whole table via a broadcast variable.
  auto table = ctx.broadcast(itemsets, support_table_bytes(itemsets));
  const double n = static_cast<double>(itemsets.num_transactions());
  const double min_confidence = options.min_confidence;

  std::vector<std::pair<Itemset, u64>> work_items;
  for (u32 k = 2; k <= itemsets.max_k(); ++k) {
    if (k > options.max_itemset_size) break;
    for (const auto& [itemset, support] : itemsets.level(k)) {
      work_items.emplace_back(itemset, support);
    }
  }

  std::vector<Rule> rules =
      ctx.parallelize(std::move(work_items))
          .flat_map([table, min_confidence,
                     n](const std::pair<Itemset, u64>& entry) {
            std::vector<Rule> out;
            rules_of_itemset(entry.first, entry.second, *table,
                             min_confidence, n, out);
            return out;
          })
          .collect("generateRules");
  sort_rules(rules);
  return rules;
}

}  // namespace yafim::fim
