// Unit tests for the vertical bitmap index (fim/bitmap.h): the word-level
// AND+popcount kernel, support agreement with brute-force containment
// scans, the tidlist bridge back to the Eclat machinery, and the sparse
// item-id fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <set>

#include "fim/bitmap.h"
#include "fim/hash_tree.h"
#include "fim/tidlist_mining.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

std::vector<Transaction> random_transactions(u32 universe, int n,
                                             double density, u64 seed) {
  Rng rng(seed);
  std::vector<Transaction> tx;
  for (int i = 0; i < n; ++i) {
    Transaction t;
    for (u32 item = 0; item < universe; ++item) {
      if (rng.bernoulli(density)) t.push_back(item);
    }
    tx.push_back(std::move(t));
  }
  return tx;
}

u64 brute_support(const std::vector<Transaction>& tx, const Itemset& c) {
  u64 count = 0;
  for (const Transaction& t : tx) {
    if (std::includes(t.begin(), t.end(), c.begin(), c.end())) ++count;
  }
  return count;
}

TEST(AndPopcount, MatchesScalarReference) {
  Rng rng(3);
  for (u32 nwords : {1u, 2u, 7u}) {
    std::vector<u64> a(nwords), b(nwords), c(nwords);
    for (u32 w = 0; w < nwords; ++w) {
      a[w] = rng.next();
      b[w] = rng.next();
      c[w] = rng.next();
    }
    const u64* rows[3] = {a.data(), b.data(), c.data()};
    u64 expected = 0;
    for (u32 w = 0; w < nwords; ++w) {
      expected += static_cast<u64>(std::popcount(a[w] & b[w] & c[w]));
    }
    EXPECT_EQ(and_popcount(rows, 3, nwords), expected) << nwords;
    // k = 1 degenerates to a plain popcount of the first row.
    u64 first = 0;
    for (u64 w : a) first += static_cast<u64>(std::popcount(w));
    EXPECT_EQ(and_popcount(rows, 1, nwords), first);
  }
}

TEST(VerticalBitmapIndex, EmptyPartition) {
  const std::vector<Transaction> none;
  VerticalBitmapIndex index(none);
  EXPECT_EQ(index.num_transactions(), 0u);
  EXPECT_EQ(index.num_items(), 0u);
  EXPECT_EQ(index.row(5), nullptr);
  const Item items[] = {5};
  EXPECT_EQ(index.support(items, 1), 0u);
  EXPECT_TRUE(index.tidlist(5).empty());
}

TEST(VerticalBitmapIndex, SupportMatchesBruteForce) {
  const auto tx = random_transactions(24, 130, 0.3, 11);
  VerticalBitmapIndex index(tx);
  EXPECT_EQ(index.num_transactions(), tx.size());
  EXPECT_EQ(index.words_per_row(), (tx.size() + 63) / 64);
  Rng rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    Itemset c;
    const u32 k = 1 + static_cast<u32>(rng.below(4));
    while (c.size() < k) {
      const Item item = static_cast<Item>(rng.below(26));  // incl. absent ids
      if (std::find(c.begin(), c.end(), item) == c.end()) c.push_back(item);
    }
    canonicalize(c);
    EXPECT_EQ(index.support(c.data(), k), brute_support(tx, c)) << trial;
  }
}

TEST(VerticalBitmapIndex, CountCandidatesMatchesPerCandidateSupport) {
  const auto tx = random_transactions(20, 90, 0.35, 5);
  VerticalBitmapIndex index(tx);
  std::vector<Itemset> candidates;
  for (u32 a = 0; a < 12; ++a) {
    for (u32 b = a + 1; b < 12; ++b) candidates.push_back({a, b});
  }
  HashTree tree(candidates);
  std::vector<u64> cells(tree.size(), 7);  // accumulates on top
  index.count_candidates(tree, cells.data());
  for (u32 ci = 0; ci < tree.size(); ++ci) {
    EXPECT_EQ(cells[ci], 7 + brute_support(tx, candidates[ci])) << ci;
  }
}

TEST(VerticalBitmapIndex, TidlistBridgesToEclatMachinery) {
  const auto tx = random_transactions(16, 70, 0.4, 9);
  VerticalBitmapIndex index(tx);
  for (Item item = 0; item < 16; ++item) {
    TidList expected;
    for (u32 tid = 0; tid < tx.size(); ++tid) {
      const auto& t = tx[tid];
      if (std::find(t.begin(), t.end(), item) != t.end()) {
        expected.push_back(tid);
      }
    }
    const TidList got = index.tidlist(item);
    EXPECT_EQ(got, expected) << "item=" << item;
    // A bitmap row is a densified tidlist: intersecting two recovered
    // lists equals the AND-row support.
    if (item > 0) {
      const Item pair[] = {static_cast<Item>(item - 1), item};
      EXPECT_EQ(intersect_tidlists(index.tidlist(item - 1), got).size(),
                index.support(pair, 2));
    }
  }
}

TEST(VerticalBitmapIndex, SparseItemIdsBeyondDenseLimit) {
  // Ids past the dense direct-index limit exercise the sorted fallback map.
  const Item huge_a = (1u << 20) + 17, huge_b = (1u << 24) + 3;
  std::vector<Transaction> tx = {
      {1, huge_a}, {1, huge_a, huge_b}, {huge_b}, {1}};
  VerticalBitmapIndex index(tx);
  EXPECT_EQ(index.num_items(), 3u);
  const Item single[] = {huge_a};
  EXPECT_EQ(index.support(single, 1), 2u);
  const Item pair[] = {huge_a, huge_b};
  EXPECT_EQ(index.support(pair, 2), 1u);
  const Item mixed[] = {1, huge_b};
  EXPECT_EQ(index.support(mixed, 2), 1u);
  EXPECT_EQ(index.tidlist(huge_b), (TidList{1, 2}));
  const Item absent[] = {(1u << 22)};
  EXPECT_EQ(index.support(absent, 1), 0u);
  EXPECT_GT(index.bytes(), 0u);
}

}  // namespace
}  // namespace yafim::fim
