#include "simfs/simfs.h"

namespace yafim::simfs {

double SimFS::write(const std::string& path, std::vector<u8> data) {
  const u64 n = data.size();
  const double seconds = model_.dfs_write_seconds(n);
  std::lock_guard<std::mutex> lock(mutex_);
  files_[path] = std::move(data);
  bytes_written_ += n;
  return seconds;
}

std::vector<u8> SimFS::read(const std::string& path,
                            double* sim_seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  YAFIM_CHECK(it != files_.end(), path.c_str());
  bytes_read_ += it->second.size();
  if (sim_seconds) *sim_seconds = model_.dfs_read_seconds(it->second.size());
  return it->second;
}

bool SimFS::exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(path) > 0;
}

bool SimFS::remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.erase(path) > 0;
}

std::optional<FileStat> SimFS::stat(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  FileStat st;
  st.bytes = it->second.size();
  st.blocks = static_cast<u32>(
      st.bytes == 0 ? 1 : ceil_div(st.bytes, cluster_.hdfs_block_bytes));
  return st;
}

std::vector<std::string> SimFS::list(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

u64 SimFS::total_bytes_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_written_;
}

u64 SimFS::total_bytes_read() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_read_;
}

}  // namespace yafim::simfs
