// TransactionDB: an in-memory transactional database D plus the
// serialization used to store it on the simulated HDFS (binary) and to
// exchange it with humans and other tools (the classic space-separated text
// format of the FIMI repository datasets).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fim/itemset.h"
#include "util/common.h"

namespace yafim::fim {

/// Absolute support threshold for a relative one: ceil(frac * n), floored
/// at 1, with an epsilon guard so exact products (0.2 * 10) do not round up
/// through float noise. Every miner derives its thresholds through this one
/// helper -- the SON completeness proof and the sampling miner's relaxed
/// local thresholds both assume *ceil* semantics (a floor would admit
/// itemsets below frac into local results, inflating candidate unions
/// without any exactness payoff), so the rounding is pinned here and
/// regression-tested rather than re-derived inline at each call site.
u64 min_count_ceil(double frac, u64 n);

/// What the text parser saw. All-zero unless the DB came from from_text();
/// the malformed counters stay zero in strict mode (which never skips).
struct ParseStats {
  u64 lines_total = 0;
  /// Lines skipped by the lenient parser, by reason (their sum is the
  /// number of transactions dropped relative to lines_total minus blanks).
  u64 bad_token_lines = 0;     // non-numeric token or u32 overflow
  u64 noncanonical_lines = 0;  // duplicate or unsorted items
  u64 overlong_lines = 0;      // more than kMaxTransactionItems items

  u64 malformed() const {
    return bad_token_lines + noncanonical_lines + overlong_lines;
  }
};

struct DatasetStats {
  u64 num_transactions = 0;
  /// Number of distinct items actually present.
  u32 num_items = 0;
  /// Largest item id + 1 (the nominal universe size).
  u32 item_universe = 0;
  double avg_length = 0.0;
  double max_length = 0.0;
  /// avg_length / num_items: how dense a bitmap view would be.
  double density = 0.0;
  /// Text-parse provenance (see ParseStats).
  ParseStats parse;
};

class TransactionDB {
 public:
  TransactionDB() = default;

  /// Takes ownership of `transactions`; every transaction must already be
  /// canonical (sorted, unique) -- generators and parsers guarantee this,
  /// and it is CHECKed in debug builds.
  explicit TransactionDB(std::vector<Transaction> transactions);

  const std::vector<Transaction>& transactions() const { return tx_; }

  /// Move the transactions out (leaves the DB empty).
  std::vector<Transaction> release() { return std::move(tx_); }
  u64 size() const { return tx_.size(); }
  bool empty() const { return tx_.empty(); }

  DatasetStats stats() const;

  /// Absolute support count for a relative threshold, as ceil(frac * |D|)
  /// (an itemset is frequent iff sup >= this).
  u64 min_support_count(double min_support_frac) const;

  /// Exact support of one itemset by a full scan (test oracle; O(|D|)).
  u64 support(const Itemset& s) const;

  /// The "sizeup" transform from the paper's Fig. 4: the database
  /// replicated `times` times. Relative supports are unchanged.
  TransactionDB replicate(u32 times) const;

  // --- binary serialization (SimFS payloads) ---------------------------
  std::vector<u8> serialize() const;
  static TransactionDB deserialize(std::span<const u8> bytes);

  // --- text interop (one transaction per line, items space-separated) --

  /// kStrict is the historical behavior: each line contributes its leading
  /// numeric tokens (parsing stops at the first non-numeric field) and the
  /// result is canonicalized -- garbage degrades silently. kLenient treats
  /// any anomaly (non-numeric token, duplicate/unsorted items, overlong
  /// line) as a malformed line: the line is skipped and counted in
  /// ParseStats instead of contaminating the database.
  enum class ParseMode { kStrict, kLenient };

  /// Lenient-mode ceiling on items per transaction; longer lines are
  /// presumed framing damage (a lost newline glues transactions together).
  static constexpr u32 kMaxTransactionItems = 1u << 16;

  std::string to_text() const;
  static TransactionDB from_text(const std::string& text,
                                 ParseMode mode = ParseMode::kStrict);

  /// Stats from the from_text() call that built this DB (zeros otherwise).
  const ParseStats& parse_stats() const { return parse_stats_; }

 private:
  std::vector<Transaction> tx_;
  ParseStats parse_stats_;
};

}  // namespace yafim::fim
