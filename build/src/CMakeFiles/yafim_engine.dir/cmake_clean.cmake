file(REMOVE_RECURSE
  "CMakeFiles/yafim_engine.dir/engine/context.cpp.o"
  "CMakeFiles/yafim_engine.dir/engine/context.cpp.o.d"
  "CMakeFiles/yafim_engine.dir/engine/fault.cpp.o"
  "CMakeFiles/yafim_engine.dir/engine/fault.cpp.o.d"
  "CMakeFiles/yafim_engine.dir/engine/thread_pool.cpp.o"
  "CMakeFiles/yafim_engine.dir/engine/thread_pool.cpp.o.d"
  "libyafim_engine.a"
  "libyafim_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yafim_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
