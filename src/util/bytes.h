// Byte-size formatting and a tiny binary serialization buffer used by the
// simulated filesystem and the MapReduce substrate. The point of real
// serialization (rather than passing pointers around) is fidelity: data that
// "crosses HDFS" in the simulation genuinely round-trips through bytes, so
// encode/decode bugs surface in tests instead of hiding behind shared memory.
#pragma once

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/common.h"

namespace yafim {

/// "12.3 MB"-style human formatting.
std::string format_bytes(u64 bytes);

/// Deterministic byte-level run-length codec for shuffle spill blocks
/// ("yz", for want of a registry). Frame: magic u32 'YZRL', raw size u64,
/// then a token stream of literal runs (control byte 0x00 + u32 length +
/// bytes) and repeat runs (control byte 0x01 + u32 length + 1 byte).
/// Zero-heavy payloads -- sparse per-partition count arrays are mostly
/// zeros -- shrink by orders of magnitude; incompressible payloads grow by
/// only the frame + one literal-run header. The codec is intentionally
/// simple: the simulation prices compression CPU through the cost model,
/// so fidelity lives in the byte accounting, not the compression ratio.
std::vector<u8> yz_compress(std::span<const u8> raw);

/// Inverse of yz_compress. Aborts (CHECK) on a malformed frame -- spilled
/// blocks live on checksummed simfs, so corruption is caught (and repaired
/// or surfaced) a layer below; a bad frame here is a codec bug.
std::vector<u8> yz_decompress(std::span<const u8> compressed);

/// Append-only little-endian binary encoder.
class ByteWriter {
 public:
  void write_u32(u32 v) { write_raw(&v, sizeof(v)); }
  void write_u64(u64 v) { write_raw(&v, sizeof(v)); }
  void write_double(double v) { write_raw(&v, sizeof(v)); }

  void write_string(const std::string& s) {
    write_u64(s.size());
    write_raw(s.data(), s.size());
  }

  void write_u32_vec(const std::vector<u32>& v) {
    write_u64(v.size());
    write_raw(v.data(), v.size() * sizeof(u32));
  }

  const std::vector<u8>& data() const { return buf_; }
  std::vector<u8> take() { return std::move(buf_); }
  u64 size() const { return buf_.size(); }

 private:
  void write_raw(const void* p, size_t n) {
    const u8* b = static_cast<const u8*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<u8> buf_;
};

/// Sequential decoder over a byte span. Aborts (CHECK) on truncated input --
/// simulated storage is trusted infrastructure, not an untrusted boundary.
class ByteReader {
 public:
  explicit ByteReader(std::span<const u8> data) : data_(data) {}

  u32 read_u32() { return read_pod<u32>(); }
  u64 read_u64() { return read_pod<u64>(); }
  double read_double() { return read_pod<double>(); }

  std::string read_string() {
    const u64 n = read_u64();
    YAFIM_CHECK(pos_ + n <= data_.size(), "truncated string");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<u32> read_u32_vec() {
    const u64 n = read_u64();
    YAFIM_CHECK(pos_ + n * sizeof(u32) <= data_.size(), "truncated vector");
    std::vector<u32> v(n);
    std::memcpy(v.data(), data_.data() + pos_, n * sizeof(u32));
    pos_ += n * sizeof(u32);
    return v;
  }

  bool done() const { return pos_ == data_.size(); }
  u64 position() const { return pos_; }

 private:
  template <typename T>
  T read_pod() {
    YAFIM_CHECK(pos_ + sizeof(T) <= data_.size(), "truncated value");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const u8> data_;
  u64 pos_ = 0;
};

}  // namespace yafim
