// Condensed representations of a frequent-itemset collection:
//
//   * closed  itemsets -- no proper superset has the same support; the
//     lossless compression (all supports are recoverable);
//   * maximal itemsets -- no proper superset is frequent; the positive
//     border (lossy: membership recoverable, supports not).
//
// Standard post-processing for Apriori-family output (and the usual way
// the medical/retail applications of §V-D present results -- a 2^11-deep
// lattice is unreadable, its closed sets are not).
#pragma once

#include "fim/result.h"

namespace yafim::fim {

/// The closed subsets of `all` (which must be downward-closed, i.e. the
/// output of a miner). Supports are preserved.
FrequentItemsets closed_itemsets(const FrequentItemsets& all);

/// The maximal subsets of `all`. Supports are preserved.
FrequentItemsets maximal_itemsets(const FrequentItemsets& all);

}  // namespace yafim::fim
