// Deterministic cost model: converts work units and bytes into simulated
// seconds under a given ClusterConfig.
//
// Methodology (see DESIGN.md §5): algorithms execute for real on the host,
// and while doing so they count *work units* -- one unit is roughly one
// candidate-probe / tuple-operation -- plus the bytes they move. The model
// then prices those counters:
//
//   compute:   work / (work_units_per_sec_per_core)          per core
//   disk:      bytes / (disk_mbps * streams)
//   network:   bytes / (net_mbps * streams)
//
// The calibration constant (2M units/s/core) approximates one tuple
// operation -- an itemset probe, a shuffle-record hash, a pair emit --
// taking ~500ns on a 2.4 GHz core running 2013-era JVM dataflow code
// (object churn, boxing, serialization make per-record costs of this order;
// tight C code would be ~10x faster). All reported times are only
// meaningful relative to each other, which is exactly what the paper's
// figures compare.
#pragma once

#include "sim/cluster.h"
#include "util/common.h"

namespace yafim::sim {

class CostModel {
 public:
  explicit CostModel(ClusterConfig cluster) : cluster_(cluster) {}

  const ClusterConfig& cluster() const { return cluster_; }

  /// Seconds of single-core compute for `work` units.
  double compute_seconds(u64 work) const {
    return static_cast<double>(work) / kWorkUnitsPerSecPerCore;
  }

  /// Reading `bytes` from HDFS with all nodes pulling local blocks in
  /// parallel.
  double dfs_read_seconds(u64 bytes) const;

  /// Writing `bytes` to HDFS with pipeline replication: every byte is
  /// written `replication` times to disk and crosses the network
  /// (replication - 1) times.
  double dfs_write_seconds(u64 bytes) const;

  /// All-to-all shuffle of `bytes` across the cluster (each node both sends
  /// and receives; map-side spill to local disk included).
  double shuffle_seconds(u64 bytes) const;

  /// Broadcasting `bytes` from the driver to every node using a
  /// tree/torrent-style broadcast (Spark broadcast variables).
  double broadcast_seconds(u64 bytes) const;

  /// Naive per-task shipping of `bytes` to `tasks` tasks through the
  /// driver's single uplink -- the behaviour the paper calls out as the
  /// bottleneck that broadcast variables remove. Used by the ablation.
  double naive_ship_seconds(u64 bytes, u64 tasks) const;

  /// Work-unit calibration constant (units per second per core).
  static constexpr double kWorkUnitsPerSecPerCore = 2e6;

 private:
  double disk_bps() const { return cluster_.disk_mbps * 1e6; }
  double net_bps() const { return cluster_.net_mbps * 1e6; }

  ClusterConfig cluster_;
};

}  // namespace yafim::sim
