// Negative-control fixtures for the YL008 closure-purity scan
// (scripts/closure_check.sh --fixtures). NOT compiled into any target --
// this file exists only to be scanned, so the detector's three impurity
// classes (ref-capture, rng, fp-reduce) each stay detectable as the
// matchers evolve. The runtime siblings live in
// src/engine/detsan_selftest.cpp (rule YL007).
#include <cstdlib>
#include <ctime>
#include <random>
#include <utility>
#include <vector>

#include "engine/context.h"
#include "engine/rdd.h"

namespace yafim::fixtures {

void impure_closures(engine::Context& ctx) {
  std::vector<int> values(64, 1);
  auto rdd = ctx.parallelize(std::move(values), 4);

  // ref-capture: mutable non-local state captured by reference; a task
  // retry or DetSan replay re-runs the closure against advanced state.
  int counter = 0;
  auto stateful = rdd.map([&counter](const int& x) { return x + counter++; });

  // ref-capture (default capture form).
  int total = 0;
  auto defaulted = rdd.filter([&](const int& x) { return (total += x) > 10; });

  // rng: ambient randomness -- every execution sees different values.
  auto random_tag = rdd.map(
      [](const int& x) { return x + std::rand() % 7; });

  // rng: wall clock read inside a closure.
  auto stamped = rdd.map(
      [](const int& x) { return x + static_cast<int>(time(nullptr)); });

  // rng: hardware entropy source constructed per element.
  auto entropic = rdd.map([](const int& x) {
    std::random_device rd;
    return x + static_cast<int>(rd() & 3);
  });

  // fp-reduce: floating-point accumulation without a tolerance waiver;
  // FP addition is not associative, so the fold order leaks into the sum.
  auto doubled = rdd.map([](const int& x) { return x * 0.5; });
  (void)doubled.reduce([](double a, double b) { return a + b; });

  // The same shape WITH the waiver must not be flagged: the comment
  // acknowledges order-dependent rounding as tolerated.
  // detsan: tolerate-fp
  (void)doubled.reduce([](double a, double b) { return a + b; });

  (void)stateful;
  (void)defaulted;
  (void)random_tag;
  (void)stamped;
  (void)entropic;
}

}  // namespace yafim::fixtures
