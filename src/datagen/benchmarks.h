// Named benchmark datasets matching the paper's Table I, each bundled with
// the minimum support the paper's experiments use for it (Fig. 3-5
// captions). The UCI / FIMI originals are not redistributable offline, so
// each is regenerated with the matching shape (see DESIGN.md §2); the
// properties bench (Table I) prints paper-reported vs generated values.
#pragma once

#include <string>
#include <vector>

#include "datagen/dense.h"
#include "datagen/medical.h"
#include "datagen/quest.h"
#include "fim/dataset.h"

namespace yafim::datagen {

struct BenchmarkDataset {
  std::string name;
  fim::TransactionDB db;
  /// The support threshold the paper evaluates this dataset at.
  double paper_min_support = 0.0;
  /// Paper-reported Table I properties (for the comparison print-out).
  u64 paper_num_transactions = 0;
  u32 paper_num_items = 0;
};

/// MushRoom: 119 items, 8124 transactions, 23 attributes; Sup = 35%.
BenchmarkDataset make_mushroom(double scale = 1.0, u64 seed = 1);

/// T10I4D100K: 870 items, 100k transactions, IBM Quest; Sup = 0.25%.
BenchmarkDataset make_t10i4d100k(double scale = 1.0, u64 seed = 2);

/// Chess: 75 items, 3196 transactions, 37 attributes; Sup = 85%.
BenchmarkDataset make_chess(double scale = 1.0, u64 seed = 3);

/// Pumsb_star: 2088 items, 49046 transactions, census data; Sup = 65%.
BenchmarkDataset make_pumsb_star(double scale = 1.0, u64 seed = 4);

/// The medical-case workload of §V-D; Sup = 3%.
BenchmarkDataset make_medical(double scale = 1.0, u64 seed = 5);

/// All four Table I benchmarks, in the paper's order.
std::vector<BenchmarkDataset> make_paper_benchmarks(double scale = 1.0);

/// Opt-in on-disk dataset cache: when the YAFIM_DATASET_CACHE environment
/// variable names a directory, every make_* call first looks for a
/// serialized TransactionDB under a key derived from (dataset, scale, seed,
/// generator format version) and only generates on a miss. CI restores the
/// directory across runs (actions/cache keyed on the datagen sources) so
/// bench lanes skip the generation cost entirely. Bump when any generator's
/// output changes so stale cache entries can never be replayed.
constexpr u32 kDatagenFormatVersion = 1;

}  // namespace yafim::datagen
