// FP-tree internals shared by the single-node FP-Growth miner and the
// distributed PFP miner (Li et al. 2008 -- the algorithm behind Spark
// MLlib's FPGrowth).
//
// Items are stored by *rank* (0 = most frequent): sibling maps stay small,
// paths are naturally ordered, and PFP's group partitioning is defined
// directly over ranks.
#pragma once

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <vector>

#include "engine/work.h"
#include "fim/itemset.h"

namespace yafim::fim {

/// FP-tree over (rank, count) paths.
class FpTree {
 public:
  static constexpr u32 kNullNode = 0xffffffffu;

  explicit FpTree(u32 num_ranks) : headers_(num_ranks, kNullNode) {
    nodes_.push_back(Node{});  // root
  }

  struct Node {
    u32 rank = 0;
    u64 count = 0;
    u32 parent = kNullNode;
    u32 next_same_item = kNullNode;  // header chain
    std::unordered_map<u32, u32> children;  // rank -> node index
  };

  /// Insert a rank-sorted (ascending) path with multiplicity `count`.
  void insert(const std::vector<u32>& ranks, u64 count) {
    engine::work::add(ranks.size());
    u32 current = 0;
    for (u32 rank : ranks) {
      auto it = nodes_[current].children.find(rank);
      u32 child;
      if (it == nodes_[current].children.end()) {
        child = static_cast<u32>(nodes_.size());
        Node node;
        node.rank = rank;
        node.parent = current;
        node.next_same_item = headers_[rank];
        nodes_.push_back(std::move(node));
        headers_[rank] = child;
        nodes_[current].children.emplace(rank, child);
      } else {
        child = it->second;
      }
      nodes_[child].count += count;
      current = child;
    }
  }

  const Node& node(u32 idx) const { return nodes_[idx]; }
  u32 header(u32 rank) const { return headers_[rank]; }
  u32 num_ranks() const { return static_cast<u32>(headers_.size()); }
  u32 num_nodes() const { return static_cast<u32>(nodes_.size()); }

  /// Total count of all nodes of `rank` (the support of that item within
  /// this conditional tree).
  u64 rank_count(u32 rank) const {
    u64 total = 0;
    for (u32 n = headers_[rank]; n != kNullNode; n = nodes_[n].next_same_item) {
      total += nodes_[n].count;
    }
    return total;
  }

 private:
  std::vector<Node> nodes_;
  std::vector<u32> headers_;
};

/// Recursively mine `tree`, emitting (itemset, support) for every frequent
/// itemset via `emit`. `rank_to_item` maps tree ranks back to item ids.
/// `root_filter`, if set, restricts the *bottom* (least frequent) item of
/// emitted itemsets to the ranks it accepts -- PFP's group ownership rule;
/// it is only consulted at recursion depth 0.
void mine_fp_tree(
    const FpTree& tree, u64 min_count, const std::vector<Item>& rank_to_item,
    const std::function<bool(u32)>& root_filter,
    const std::function<void(const Itemset&, u64)>& emit);

}  // namespace yafim::fim
