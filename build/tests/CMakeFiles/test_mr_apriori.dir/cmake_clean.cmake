file(REMOVE_RECURSE
  "CMakeFiles/test_mr_apriori.dir/test_mr_apriori.cpp.o"
  "CMakeFiles/test_mr_apriori.dir/test_mr_apriori.cpp.o.d"
  "test_mr_apriori"
  "test_mr_apriori.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mr_apriori.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
