// Association-rule generation from mined frequent itemsets -- the
// downstream step the paper's medical application motivates ("explore the
// relationships in medicine"): rules A => B with confidence
// sup(A ∪ B) / sup(A) and lift conf / (sup(B) / |D|).
#pragma once

#include <vector>

#include "engine/bytes_of.h"
#include "engine/context.h"
#include "fim/result.h"

namespace yafim::fim {

struct Rule {
  Itemset antecedent;
  Itemset consequent;
  /// Absolute support of antecedent ∪ consequent.
  u64 support = 0;
  double confidence = 0.0;
  double lift = 0.0;
};

/// Serialized-size estimate (found by ADL from engine::byte_size users, e.g.
/// when a persisted RDD<Rule> partition is priced for the cache budget).
inline u64 byte_size(const Rule& r) {
  return engine::byte_size(r.antecedent) + engine::byte_size(r.consequent) +
         sizeof(r.support) + sizeof(r.confidence) + sizeof(r.lift);
}

struct RuleOptions {
  double min_confidence = 0.5;
  /// Itemsets larger than this are skipped (2^k antecedent enumeration).
  u32 max_itemset_size = 16;
};

/// All rules meeting `options.min_confidence`, derived from every frequent
/// itemset of size >= 2. Deterministically ordered by (confidence desc,
/// support desc, antecedent, consequent).
std::vector<Rule> generate_rules(const FrequentItemsets& itemsets,
                                 const RuleOptions& options);

/// The same computation distributed over the minispark engine: itemsets
/// are partitioned across tasks and the support table is shared through a
/// broadcast variable (how a Spark deployment of the paper's medical
/// application would derive its rules). Bit-identical to generate_rules().
std::vector<Rule> generate_rules_parallel(engine::Context& ctx,
                                          const FrequentItemsets& itemsets,
                                          const RuleOptions& options);

}  // namespace yafim::fim
