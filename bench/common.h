// Shared plumbing for the figure/table benchmark harnesses.
//
// Every harness regenerates one table or figure of the paper: it runs the
// real miners over the regenerated benchmark datasets on the simulated
// 12-node cluster and prints the same rows/series the paper reports
// (simulated seconds; see DESIGN.md §5 for the methodology). `--scale=F`
// scales dataset sizes (default 1.0 = paper-sized datasets; the sizeup
// bench uses smaller defaults to keep host runtime modest).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "datagen/benchmarks.h"
#include "engine/context.h"
#include "fim/mr_apriori.h"
#include "fim/yafim.h"
#include "obs/trace.h"
#include "simfs/simfs.h"
#include "util/log.h"
#include "util/table.h"

namespace yafim::benchharness {

struct Args {
  double scale = 1.0;
  bool csv = false;
  /// Write machine-readable results (series of x/y points) here.
  std::string json_out;
  /// Record wall-clock tracing and write Chrome trace-event JSON here.
  std::string trace_out;
};

inline Args parse_args(int argc, char** argv, double default_scale = 1.0) {
  Args args;
  args.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = std::atof(argv[i] + 8);
      YAFIM_CHECK(args.scale > 0.0, "--scale must be positive");
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      args.csv = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      args.json_out = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      args.trace_out = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      // Tolerate google-benchmark-style flags so `for b in bench/*` sweeps
      // can pass uniform flags.
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale=F] [--csv] [--json=FILE] "
                   "[--trace=FILE]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (!args.trace_out.empty()) {
    obs::Tracer::instance().reset();
    obs::Tracer::instance().start();
    obs::Tracer::instance().set_thread_name("driver");
  }
  set_log_level(LogLevel::kWarn);
  return args;
}

/// Machine-readable bench output: named series of (x, y) points plus string
/// metadata, written as one JSON object (BENCH_*.json CI artifacts).
class BenchJson {
 public:
  void note(std::string key, std::string value) {
    notes_.emplace_back(std::move(key), std::move(value));
  }
  void add(const std::string& series, double x, double y) {
    for (auto& [name, points] : series_) {
      if (name == series) {
        points.emplace_back(x, y);
        return;
      }
    }
    series_.emplace_back(series,
                         std::vector<std::pair<double, double>>{{x, y}});
  }

  std::string to_json() const {
    auto escape = [](const std::string& s) {
      std::string out;
      for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      return out;
    };
    std::string out = "{\n";
    for (const auto& [key, value] : notes_) {
      out += "  \"" + escape(key) + "\": \"" + escape(value) + "\",\n";
    }
    out += "  \"series\": {";
    char buf[64];
    for (size_t s = 0; s < series_.size(); ++s) {
      out += s ? ",\n    \"" : "\n    \"";
      out += escape(series_[s].first) + "\": [";
      const auto& points = series_[s].second;
      for (size_t i = 0; i < points.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%s[%.17g,%.17g]", i ? "," : "",
                      points[i].first, points[i].second);
        out += buf;
      }
      out += "]";
    }
    out += "\n  }\n}\n";
    return out;
  }

  bool write(const std::string& path) const {
    const std::string json = to_json();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) return false;
    const size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const int close_rc = std::fclose(f);
    return written == json.size() && close_rc == 0;
  }

 private:
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>>
      series_;
};

/// Flush --json / --trace outputs (and the trace summary table) at the end
/// of a harness run.
inline void finish(const Args& args, const BenchJson* json = nullptr) {
  if (json && !args.json_out.empty()) {
    YAFIM_CHECK(json->write(args.json_out), "cannot write --json file");
    std::printf("# results written to %s\n", args.json_out.c_str());
  }
  if (!args.trace_out.empty()) {
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.stop();
    YAFIM_CHECK(tracer.write_chrome_json(args.trace_out),
                "cannot write --trace file");
    std::fputs(tracer.summary().c_str(), stdout);
    std::printf("# trace written to %s\n", args.trace_out.c_str());
  }
}

inline void print_table(const Table& table, const Args& args) {
  std::fputs(args.csv ? table.to_csv().c_str() : table.to_ascii().c_str(),
             stdout);
}

/// One YAFIM run on a fresh paper-cluster context. Returns the MiningRun
/// and (optionally) hands back the context's report for replays.
inline fim::MiningRun run_yafim(const datagen::BenchmarkDataset& bench,
                                sim::ClusterConfig cluster,
                                sim::SimReport* report_out = nullptr) {
  engine::Context ctx(engine::Context::Options{.cluster = cluster});
  simfs::SimFS fs(cluster);
  fim::YafimOptions opt;
  opt.min_support = bench.paper_min_support;
  auto run = fim::yafim_mine(ctx, fs, bench.db, opt);
  if (report_out) *report_out = ctx.report();
  return run;
}

/// One MRApriori run on a fresh paper-cluster context.
inline fim::MiningRun run_mr(const datagen::BenchmarkDataset& bench,
                             sim::ClusterConfig cluster) {
  engine::Context ctx(engine::Context::Options{.cluster = cluster});
  simfs::SimFS fs(cluster);
  fim::MrAprioriOptions opt;
  opt.min_support = bench.paper_min_support;
  return fim::mr_apriori_mine(ctx, fs, bench.db, opt);
}

inline std::string support_pct(double frac) {
  char buf[32];
  if (frac >= 0.01) {
    std::snprintf(buf, sizeof(buf), "%.0f%%", frac * 100.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%%", frac * 100.0);
  }
  return buf;
}

}  // namespace yafim::benchharness
