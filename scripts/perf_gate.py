#!/usr/bin/env python3
"""Count-mode performance gate for CI.

Compares a fresh BENCH_countmode.json (bench_ablation --json output) against
the checked-in baseline (bench/baselines/BENCH_countmode_baseline.json,
generated at the same --scale as the CI run) and fails on regression.

Three checks, tuned to what each quantity can promise:

1. intra-run sim:   the fast counting modes (candidate_id x=1,
                    vertical_bitmap x=2) must price their pass>=2 counting
                    stages no worse than the paper-faithful itemset-keyed
                    path (x=0) in *simulated* seconds. Sim seconds are
                    bit-deterministic, so the tolerance only absorbs
                    float-accumulation noise.
2. baseline sim:    each mode's counting sim seconds must not exceed the
                    baseline's for the same dataset+mode. Deterministic,
                    same tight tolerance. Catches absolute cost-model
                    regressions the intra-run ratio would hide (e.g. every
                    mode getting uniformly slower).
3. host speedup:    counting *host* wall-clock varies with the runner, so
                    absolute seconds are not comparable across machines.
                    What is stable is the speedup ratio faithful/mode
                    within one run. Each fast mode's current speedup must
                    stay above the baseline speedup times (1 - band).

Usage:
  perf_gate.py CURRENT.json BASELINE.json [--sim-tol 1.02] [--ratio-band 0.5]
"""

import argparse
import json
import sys

MODES = {1: "candidate_id", 2: "vertical_bitmap"}


def series_by_dataset(doc, prefix):
    """{dataset: {x: y}} for every series named '<prefix>:<dataset>'."""
    out = {}
    for name, points in doc.get("series", {}).items():
        if not name.startswith(prefix + ":"):
            continue
        dataset = name.split(":", 1)[1]
        out[dataset] = {int(x): y for x, y in points}
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh BENCH_countmode.json")
    parser.add_argument("baseline", help="checked-in baseline json")
    parser.add_argument(
        "--sim-tol", type=float, default=1.02,
        help="multiplicative tolerance for deterministic sim seconds")
    parser.add_argument(
        "--ratio-band", type=float, default=0.5,
        help="host speedup may shrink to (1 - band) of the baseline's "
             "before the gate fails (absorbs runner speed variance)")
    args = parser.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    cur_sim = series_by_dataset(current, "countmode_sim_s")
    cur_host = series_by_dataset(current, "countmode_host_s")
    base_sim = series_by_dataset(baseline, "countmode_sim_s")
    base_host = series_by_dataset(baseline, "countmode_host_s")

    if not cur_sim:
        print("FAIL: no countmode_sim_s series in", args.current)
        return 1
    missing = sorted(set(base_sim) - set(cur_sim))
    if missing:
        print("FAIL: datasets missing from current run:", ", ".join(missing))
        return 1

    failures = []

    def check(ok, line):
        print(("ok   " if ok else "FAIL ") + line)
        if not ok:
            failures.append(line)

    for dataset in sorted(cur_sim):
        sim, host = cur_sim[dataset], cur_host.get(dataset, {})
        for x, mode in MODES.items():
            if x not in sim:
                failures.append(f"{dataset}: mode {mode} missing from run")
                continue
            # 1. intra-run: the fast path must actually be the fast path.
            check(sim[x] <= sim[0] * args.sim_tol,
                  f"{dataset} {mode}: counting sim {sim[x]:.2f}s vs "
                  f"faithful {sim[0]:.2f}s (tol x{args.sim_tol})")

        if dataset not in base_sim:
            print(f"note {dataset}: not in baseline, intra-run checks only")
            continue
        bsim, bhost = base_sim[dataset], base_host.get(dataset, {})
        for x in sorted(sim):
            mode = MODES.get(x, "itemset_key")
            # 2. deterministic sim seconds vs baseline, absolute.
            check(sim[x] <= bsim[x] * args.sim_tol,
                  f"{dataset} {mode}: counting sim {sim[x]:.2f}s vs "
                  f"baseline {bsim[x]:.2f}s (tol x{args.sim_tol})")
        for x, mode in MODES.items():
            if not (x in host and x in bhost and host[x] > 0 and bhost[x] > 0):
                continue
            # 3. host speedup ratio vs baseline, banded.
            cur_ratio = host[0] / host[x]
            base_ratio = bhost[0] / bhost[x]
            floor = base_ratio * (1.0 - args.ratio_band)
            check(cur_ratio >= floor,
                  f"{dataset} {mode}: host speedup {cur_ratio:.2f}x vs "
                  f"baseline {base_ratio:.2f}x (floor {floor:.2f}x)")

    if failures:
        print(f"\nperf gate: {len(failures)} regression(s)")
        return 1
    print("\nperf gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
