// Unit + property tests for the candidate hash tree. The central property:
// for_each_contained() must report exactly the candidates a linear
// containment scan reports -- once each -- for every (candidates,
// transaction) combination.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "fim/candidate_gen.h"
#include "fim/hash_tree.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

std::multiset<u32> probe_tree(const HashTree& tree, const Transaction& t,
                              HashTree::Probe& probe) {
  std::multiset<u32> hits;
  tree.for_each_contained(t, probe, [&](u32 ci) { hits.insert(ci); });
  return hits;
}

std::multiset<u32> probe_linear(const HashTree& tree, const Transaction& t) {
  std::multiset<u32> hits;
  tree.for_each_contained_linear(t, [&](u32 ci) { hits.insert(ci); });
  return hits;
}

TEST(HashTree, EmptyCandidates) {
  HashTree tree({});
  EXPECT_EQ(tree.size(), 0u);
  HashTree::Probe probe;
  EXPECT_TRUE(probe_tree(tree, {1, 2, 3}, probe).empty());
}

TEST(HashTree, SingleCandidate) {
  HashTree tree({{2, 5}});
  EXPECT_EQ(tree.k(), 2u);
  HashTree::Probe probe;
  EXPECT_EQ(probe_tree(tree, {1, 2, 5, 9}, probe), (std::multiset<u32>{0}));
  EXPECT_TRUE(probe_tree(tree, {2, 4}, probe).empty());
  EXPECT_TRUE(probe_tree(tree, {5}, probe).empty());  // shorter than k
}

TEST(HashTree, CandidateAccessors) {
  HashTree tree({{1, 2}, {3, 4}});
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.candidate(0), (Itemset{1, 2}));
  EXPECT_EQ(tree.candidate(1), (Itemset{3, 4}));
  EXPECT_EQ(tree.candidates().size(), 2u);
  EXPECT_GT(tree.serialized_bytes(), 0u);
  EXPECT_GE(tree.num_leaves(), 1u);
  EXPECT_GE(tree.num_nodes(), tree.num_leaves());
}

TEST(HashTree, SplitsUnderLoad) {
  // 100 candidates with tiny leaves forces interior structure.
  std::vector<Itemset> candidates;
  for (u32 a = 0; a < 10; ++a) {
    for (u32 b = 10; b < 20; ++b) candidates.push_back({a, b});
  }
  HashTree tree(candidates, /*branching=*/4, /*leaf_capacity=*/2);
  EXPECT_GT(tree.num_nodes(), tree.num_leaves());

  HashTree::Probe probe;
  const Transaction t{0, 1, 11, 12};
  const auto hits = probe_tree(tree, t, probe);
  EXPECT_EQ(hits, probe_linear(tree, t));
  EXPECT_EQ(hits.size(), 4u);  // {0,11},{0,12},{1,11},{1,12}
}

TEST(HashTree, NoDuplicateReportsWhenHashesCollide) {
  // Items 3 and 11 collide mod 8; both paths reach the same leaves.
  std::vector<Itemset> candidates{{3, 11}, {3, 19}, {11, 19}};
  HashTree tree(candidates, /*branching=*/8, /*leaf_capacity=*/1);
  HashTree::Probe probe;
  const auto hits = probe_tree(tree, {3, 11, 19}, probe);
  EXPECT_EQ(hits.size(), 3u);
  EXPECT_EQ(std::set<u32>(hits.begin(), hits.end()).size(), 3u);
}

TEST(HashTree, ProbeReusableAcrossTransactionsAndTrees) {
  HashTree tree_a({{1, 2}, {2, 3}});
  HashTree tree_b({{1, 2, 3}, {2, 3, 4}});
  HashTree::Probe probe;
  EXPECT_EQ(probe_tree(tree_a, {1, 2, 3}, probe).size(), 2u);
  EXPECT_EQ(probe_tree(tree_b, {1, 2, 3}, probe).size(), 1u);
  EXPECT_EQ(probe_tree(tree_a, {2, 3}, probe).size(), 1u);
  EXPECT_EQ(probe_tree(tree_b, {2, 3, 4, 9}, probe).size(), 1u);
}

// ---- arena / flat-node layout -------------------------------------------

TEST(HashTree, ArenaEmptyCandidateBatch) {
  HashTree tree({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.bucket_arena_size(), 0u);
  EXPECT_EQ(tree.child_arena_size(), 0u);
  EXPECT_EQ(tree.num_nodes(), 1u);  // the root, an empty leaf
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_TRUE(tree.candidates().empty());
  // Header-only wire size: no candidates, one bucket-less leaf node.
  EXPECT_EQ(tree.serialized_bytes(), 16u + 8u);
}

TEST(HashTree, ArenaHoldsEveryCandidateExactlyOnce) {
  std::vector<Itemset> candidates;
  for (u32 a = 0; a < 12; ++a) {
    for (u32 b = 12; b < 24; ++b) candidates.push_back({a, b});
  }
  HashTree tree(candidates, /*branching=*/4, /*leaf_capacity=*/3);
  // One bucket slot per candidate, branching slots per interior node.
  EXPECT_EQ(tree.bucket_arena_size(), tree.size());
  EXPECT_EQ(tree.child_arena_size(),
            (tree.num_nodes() - tree.num_leaves()) * tree.branching());
  // The item arena round-trips every candidate in insertion order.
  for (u32 ci = 0; ci < tree.size(); ++ci) {
    EXPECT_EQ(tree.candidate(ci), candidates[ci]) << ci;
    const Item* items = tree.candidate_items(ci);
    for (u32 j = 0; j < tree.k(); ++j) EXPECT_EQ(items[j], candidates[ci][j]);
  }
}

TEST(HashTree, ArenaSingleBucketAdversarialHash) {
  // Every item congruent mod branching: all candidates hash down one path,
  // so splits never spread the load and depth-k leaves soak up everything.
  constexpr u32 kBranching = 8;
  std::vector<Itemset> candidates;
  for (u32 a = 0; a < 6; ++a) {
    for (u32 b = a + 1; b < 7; ++b) {
      candidates.push_back({a * kBranching, b * kBranching});
    }
  }
  HashTree tree(candidates, kBranching, /*leaf_capacity=*/2);
  EXPECT_EQ(tree.bucket_arena_size(), tree.size());

  // Probing still agrees with the linear scan under maximal collision.
  HashTree::Probe probe;
  Transaction t;
  for (u32 a = 0; a < 7; ++a) t.push_back(a * kBranching);
  EXPECT_EQ(probe_tree(tree, t, probe), probe_linear(tree, t));
  EXPECT_EQ(probe_tree(tree, t, probe).size(), candidates.size());
}

TEST(HashTree, IdOffsetAssignmentAcrossBatches) {
  std::vector<HashTree> trees;
  trees.emplace_back(std::vector<Itemset>{{1, 2}, {2, 3}, {3, 4}});
  trees.emplace_back(std::vector<Itemset>{});  // empty level mid-batch
  trees.emplace_back(std::vector<Itemset>{{1, 2, 3}, {2, 3, 4}});
  const u64 id_space = HashTree::assign_id_offsets(trees);
  EXPECT_EQ(id_space, 5u);
  EXPECT_EQ(trees[0].id_offset(), 0u);
  EXPECT_EQ(trees[1].id_offset(), 3u);  // empty tree claims a zero-width range
  EXPECT_EQ(trees[2].id_offset(), 3u);
  // Global ids tile the space with no gaps or overlaps.
  std::set<u64> ids;
  for (const HashTree& tree : trees) {
    for (u32 ci = 0; ci < tree.size(); ++ci) {
      EXPECT_TRUE(ids.insert(tree.id_offset() + ci).second);
    }
  }
  EXPECT_EQ(ids.size(), id_space);
  EXPECT_EQ(*ids.rbegin() + 1, id_space);
}

TEST(HashTree, DefaultBranchingScalesWithCandidates) {
  EXPECT_EQ(HashTree::default_branching(0, 2), 8u);
  EXPECT_GE(HashTree::default_branching(50000, 2), 400u);
  EXPECT_LE(HashTree::default_branching(50000, 2), 1024u);
  EXPECT_EQ(HashTree::default_branching(100, 5), 8u);
  // Must stay within clamp bounds for extremes.
  EXPECT_EQ(HashTree::default_branching(u64{1} << 40, 1), 1024u);
}

TEST(HashTree, MixedSizeCandidatesAbort) {
  EXPECT_DEATH(HashTree({{1, 2}, {3}}), "equal size");
}

/// Property sweep over (k, branching, leaf_capacity, seed): tree probing
/// must agree with the linear scan on random candidate sets and random
/// transactions, with no duplicates.
class HashTreeSweep
    : public ::testing::TestWithParam<std::tuple<u32, u32, u32, u32>> {};

TEST_P(HashTreeSweep, AgreesWithLinearScan) {
  const auto [k, branching, leaf_capacity, seed] = GetParam();
  Rng rng(seed * 7919 + k);
  constexpr u32 kUniverse = 30;

  // Random candidate set of size-k itemsets (k = 1 only has `universe`
  // possible sets, so cap the target there).
  std::set<Itemset> unique;
  const u32 target =
      k == 1 ? 10 + static_cast<u32>(rng.below(15))
             : 20 + static_cast<u32>(rng.below(120));
  while (unique.size() < target) {
    Itemset c;
    while (c.size() < k) {
      const Item item = static_cast<Item>(rng.below(kUniverse));
      if (std::find(c.begin(), c.end(), item) == c.end()) c.push_back(item);
    }
    canonicalize(c);
    unique.insert(c);
  }
  HashTree tree(std::vector<Itemset>(unique.begin(), unique.end()), branching,
                leaf_capacity);

  HashTree::Probe probe;
  for (int trial = 0; trial < 40; ++trial) {
    Transaction t;
    for (u32 item = 0; item < kUniverse; ++item) {
      if (rng.bernoulli(0.35)) t.push_back(item);
    }
    const auto tree_hits = probe_tree(tree, t, probe);
    const auto linear_hits = probe_linear(tree, t);
    ASSERT_EQ(tree_hits, linear_hits)
        << "k=" << k << " branching=" << branching << " leaf="
        << leaf_capacity << " trial=" << trial;
    // No duplicates: multiset == set size.
    EXPECT_EQ(tree_hits.size(),
              std::set<u32>(tree_hits.begin(), tree_hits.end()).size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HashTreeSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u),
                       ::testing::Values(2u, 3u, 8u),
                       ::testing::Values(1u, 4u, 64u),
                       ::testing::Values(1u, 2u)));

}  // namespace
}  // namespace yafim::fim
