// Regenerates Fig. 4 (a-d): sizeup -- total execution time as each dataset
// is replicated 1..6x, with the cluster fixed at 48 cores. The paper's
// claim: MRApriori grows sharply/linearly while YAFIM stays nearly flat
// (in-memory reuse + broadcast amortise the per-iteration overheads).
//
// Default scale is 0.25 of the paper datasets so the 2 x 4 x 6 = 48 full
// mining runs stay quick on a laptop; pass --scale=1 for paper-sized data.
#include "common.h"

using namespace yafim;
using namespace yafim::benchharness;

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv, /*default_scale=*/0.25);
  const auto cluster = sim::ClusterConfig::paper();

  std::printf("== Fig. 4: sizeup, replicated datasets at fixed 48 cores "
              "(scale=%.2f) ==\n\n",
              args.scale);

  const char subfig[] = {'a', 'b', 'c', 'd'};
  auto benches = datagen::make_paper_benchmarks(args.scale);
  for (size_t i = 0; i < benches.size(); ++i) {
    const auto& bench = benches[i];
    std::printf("(%c) %s: Sup = %s\n", subfig[i], bench.name.c_str(),
                support_pct(bench.paper_min_support).c_str());
    Table table({"replication", "YAFIM(s)", "MRApriori(s)", "ratio"});
    double yafim_1x = 0.0, mr_1x = 0.0, yafim_6x = 0.0, mr_6x = 0.0;
    for (u32 times = 1; times <= 6; ++times) {
      datagen::BenchmarkDataset replicated = bench;
      replicated.db = bench.db.replicate(times);
      const double y = run_yafim(replicated, cluster).total_seconds();
      const double m = run_mr(replicated, cluster).total_seconds();
      if (times == 1) {
        yafim_1x = y;
        mr_1x = m;
      }
      if (times == 6) {
        yafim_6x = y;
        mr_6x = m;
      }
      table.add_row({Table::num(u64{times}) + "x", Table::num(y),
                     Table::num(m), Table::num(m / y, 1) + "x"});
    }
    print_table(table, args);
    std::printf("    absolute growth 1x->6x: YAFIM +%.1fs, MRApriori +%.1fs "
                "(paper's plot: MR curve rises steeply, YAFIM hugs the "
                "x-axis)\n\n",
                yafim_6x - yafim_1x, mr_6x - mr_1x);
  }
  return 0;
}
