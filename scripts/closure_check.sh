#!/usr/bin/env bash
# YL008 closure-purity lane: scan every lambda passed to an RDD combinator
# or MapReduce JobSpec slot for impurity patterns (by-reference captures of
# mutable non-local state, ambient randomness / wall-clock reads,
# floating-point reduce accumulation without a tolerance waiver). The
# runtime sibling is rule YL007 (engine/detsan.h, mine_cli --detsan).
#
#   scripts/closure_check.sh              # production scan: must be clean
#   scripts/closure_check.sh --fixtures   # negative control: every
#                                         # impurity class must be detected
#                                         # in scripts/static/fixtures/
#
# Scope is src/ and examples/ (headers included -- engine/rdd.h and
# mapreduce/job.h contain combinator call sites of their own). tests/ and
# bench/ are excluded: tests instrument closures with by-reference atomics
# on purpose (counting compute() invocations is the point of the test).
#
# The default engine is the self-contained lexical analyzer in
# scripts/static/closure_matchers.py (the CI container has no LLVM
# tooling); pass --engine=clang-query to drive clang-query over
# BUILD_DIR/compile_commands.json instead when it is installed.
#
#   scripts/closure_check.sh [--fixtures] [--engine=E] [BUILD_DIR]
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="build"
extra_args=()
fixtures=0
for arg in "$@"; do
  case "$arg" in
    --fixtures) fixtures=1 ;;
    --engine=*) extra_args+=("$arg") ;;
    -*)
      echo "usage: $0 [--fixtures] [--engine=lexical|clang-query] [BUILD_DIR]" >&2
      exit 2
      ;;
    *) build_dir="$arg" ;;
  esac
done

python="${PYTHON:-python3}"
if ! command -v "$python" >/dev/null 2>&1; then
  echo "error: $python not found (set PYTHON to point at a binary)" >&2
  exit 2
fi

if ((fixtures)); then
  exec "$python" scripts/static/closure_matchers.py \
    --build-dir="$build_dir" --fixtures "${extra_args[@]}" \
    scripts/static/fixtures/impure_closures.cpp
fi

mapfile -t files < <(git ls-files 'src/*.cpp' 'src/*.h' 'src/*/*.cpp' \
  'src/*/*.h' 'examples/*.cpp')
echo "closure check: scanning ${#files[@]} files (src/ + examples/)"
exec "$python" scripts/static/closure_matchers.py \
  --build-dir="$build_dir" "${extra_args[@]}" "${files[@]}"
