# Empty dependencies file for yafim_engine.
# This may be replaced when dependencies are built.
