#include "engine/thread_pool.h"

#include "obs/trace.h"

namespace yafim::engine {

namespace {
thread_local bool t_on_pool_thread = false;
}  // namespace

bool ThreadPool::on_pool_thread() { return t_on_pool_thread; }

ThreadPool::ThreadPool(u32 threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (u32 i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  if (obs::enabled()) {
    // Split each task's latency into queue wait vs run time; the gap
    // between the two is scheduling pressure (more tasks than threads).
    fn = [fn = std::move(fn),
          enqueued_us = obs::Tracer::instance().now_us()] {
      obs::Tracer& tracer = obs::Tracer::instance();
      const u64 started_us = tracer.now_us();
      // A Tracer::reset() between enqueue and run rebases the epoch, which
      // can make the later timestamp the *smaller* one; the unsigned
      // subtraction would then credit ~2^64 us of queue wait. Clamp to 0.
      if (started_us > enqueued_us) {
        obs::count(obs::CounterId::kPoolQueueWaitUs,
                   started_us - enqueued_us);
      }
      fn();
      const u64 finished_us = tracer.now_us();
      if (finished_us > started_us) {
        obs::count(obs::CounterId::kPoolTaskRunUs, finished_us - started_us);
      }
      obs::count(obs::CounterId::kPoolTasks, 1);
    };
  }
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    util::MutexLock lock(mutex_);
    YAFIM_CHECK(!stopping_, "submit() after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(u32 n, const std::function<void(u32)>& f) {
  YAFIM_CHECK(!on_pool_thread(),
              "parallel_for() from a pool thread would deadlock");
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (u32 i = 0; i < n; ++i) {
    futures.push_back(submit([&f, i] { f(i); }));
  }
  // Drain EVERY future before rethrowing: an early get() throwing would
  // unwind this frame while later tasks are still queued holding references
  // to `f` (and to the caller's captures) -- a use-after-free. Only once
  // all tasks are accounted for is the first failure rethrown.
  std::exception_ptr first_error;
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop(u32 index) {
  t_on_pool_thread = true;
  obs::Tracer::instance().set_thread_name("pool-" + std::to_string(index));
  for (;;) {
    std::packaged_task<void()> task;
    {
      util::MutexLock lock(mutex_);
      // Spelled-out predicate loop: thread-safety analysis cannot look
      // inside a wait-predicate lambda (see util/thread_annotations.h).
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions are captured into the packaged_task's future
  }
}

}  // namespace yafim::engine
