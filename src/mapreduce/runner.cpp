// The MapReduce substrate is header-only (templates); this translation unit
// anchors the library target and holds its static checks.
#include "mapreduce/job.h"

namespace yafim::mr {

static_assert(sizeof(JobResult<int>) > 0);

}  // namespace yafim::mr
