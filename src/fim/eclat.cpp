#include "fim/eclat.h"

#include <algorithm>
#include <map>

namespace yafim::fim {

namespace {

using TidList = std::vector<u32>;

TidList intersect(const TidList& a, const TidList& b) {
  TidList out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

struct Entry {
  Item item;
  TidList tids;
};

void mine_class(std::vector<Entry>& siblings, Itemset& prefix, u64 min_count,
                FrequentItemsets& out) {
  for (size_t i = 0; i < siblings.size(); ++i) {
    prefix.push_back(siblings[i].item);
    Itemset found = prefix;
    canonicalize(found);
    out.add(std::move(found), siblings[i].tids.size());

    std::vector<Entry> extensions;
    for (size_t j = i + 1; j < siblings.size(); ++j) {
      TidList tids = intersect(siblings[i].tids, siblings[j].tids);
      if (tids.size() >= min_count) {
        extensions.push_back(Entry{siblings[j].item, std::move(tids)});
      }
    }
    if (!extensions.empty()) {
      mine_class(extensions, prefix, min_count, out);
    }
    prefix.pop_back();
  }
}

}  // namespace

MiningRun eclat_mine(const TransactionDB& db, double min_support) {
  const u64 min_count = db.min_support_count(min_support);
  MiningRun run;
  run.itemsets = FrequentItemsets(min_count, db.size());

  // Vertical layout: item -> sorted tid list. std::map keeps item order
  // deterministic for the prefix-class recursion.
  std::map<Item, TidList> vertical;
  const auto& tx = db.transactions();
  for (u32 tid = 0; tid < tx.size(); ++tid) {
    for (Item i : tx[tid]) vertical[i].push_back(tid);
  }

  std::vector<Entry> roots;
  for (auto& [item, tids] : vertical) {
    if (tids.size() >= min_count) {
      roots.push_back(Entry{item, std::move(tids)});
    }
  }

  Itemset prefix;
  mine_class(roots, prefix, min_count, run.itemsets);

  for (u32 k = 1; k <= run.itemsets.max_k(); ++k) {
    run.passes.push_back(
        PassStats{k, run.itemsets.level(k).size(),
                  run.itemsets.level(k).size(), 0.0});
  }
  return run;
}

}  // namespace yafim::fim
