// Named wall-clock observability counters.
//
// The sim layer records *deterministic* work units priced into simulated
// seconds (sim/metrics.h); this module is its wall-clock twin: cheap named
// counters the engine bumps while it actually runs (shuffle bytes, cache
// hits/misses, lineage recomputations, broadcast bytes, hash-tree nodes
// visited, candidates pruned, thread-pool queue wait). Counting is gated on
// the global tracing flag so the disabled path is a single relaxed load and
// a predicted branch; hot loops additionally batch into locals and flush one
// atomic add per transaction/stage.
//
// Where a counter mirrors a SimReport quantity (shuffle/broadcast/DFS
// bytes), it is fed from Context::record() off the same StageRecord, so the
// two accountings agree by construction.
#pragma once

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "util/common.h"

namespace yafim::obs {

/// Global tracing switch shared by counters and the Tracer. Relaxed loads:
/// instrumentation may miss a toggle mid-stage, never corrupts state.
namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Well-known counters, enum-indexed so hot paths skip the name lookup.
enum class CounterId : u32 {
  kShuffleBytes = 0,       ///< bytes crossing reduceByKey/groupByKey/etc.
  kBroadcastBytes,         ///< bytes shipped via Broadcast<T>
  kNaiveShipBytes,         ///< bytes shipped per-task in kNaiveShip mode
  kDfsReadBytes,           ///< simulated-HDFS bytes read (stage-accounted)
  kDfsWriteBytes,          ///< simulated-HDFS bytes written
  kCacheHits,              ///< persisted partitions served from cache
  kCacheMisses,            ///< persisted partitions computed then cached
  kLineageRecomputes,      ///< post-loss recomputations (fault recovery)
  kFaultPartitionsDropped, ///< cached partitions dropped by the injector
  kTaskFailuresInjected,   ///< task attempts killed by the FaultProfile
  kTaskRetries,            ///< task relaunches after an injected failure
  kStageRetries,           ///< stage re-attempts after task budget exhaustion
  kStragglersInjected,     ///< tasks slowed down by the FaultProfile
  kSpeculativeLaunches,    ///< speculative task copies launched
  kSpeculativeWins,        ///< speculative copies that beat the original
  kSpeculativeLosses,      ///< speculative copies the original beat
  kCacheEvictions,         ///< partitions LRU-evicted under memory pressure
  kCacheEvictedBytes,      ///< bytes freed by LRU evictions
  kNodesBlacklisted,       ///< executors blacklisted after repeated failures
  kPoolTasks,              ///< tasks executed by the thread pool
  kPoolQueueWaitUs,        ///< total task time spent queued, microseconds
  kPoolTaskRunUs,          ///< total task run time, microseconds
  kHashTreeNodesVisited,   ///< hash-tree nodes touched by probes
  kHashTreeCandChecks,     ///< candidate containment checks at leaves
  kCandidatesGenerated,    ///< itemsets emitted by apriori_gen
  kCandidatesPruned,       ///< joins rejected by the subset-presence prune
  kBlocksVerified,         ///< SimFS blocks checksum-verified on read
  kBlocksCorrupt,          ///< SimFS block replicas that failed verification
  kCorruptRepairedReplica, ///< corrupt blocks repaired by a replica re-read
  kCorruptRepairedLineage, ///< corrupt cached partitions recomputed
  kCheckpointsWritten,     ///< per-pass snapshots persisted
  kCheckpointBytesWritten, ///< bytes of snapshot payload persisted
  kCheckpointsRejected,    ///< damaged/mismatched snapshots discarded on probe
  kCheckpointPassesSkipped,///< completed passes restored instead of re-mined
  kArrayReduceBytes,       ///< bytes crossing sum_arrays() shuffles
  kArrayReduceCells,       ///< array cells merged by sum_arrays() reducers
  kLintUncachedReuse,      ///< YL001 diagnostics emitted by the plan linter
  kLintBroadcastOverMem,   ///< YL002 diagnostics emitted by the plan linter
  kLintDeadCache,          ///< YL003 diagnostics emitted by the plan linter
  kLintFilterPushdown,     ///< YL004 diagnostics emitted by the plan linter
  kLintDeepLineage,        ///< YL005 diagnostics emitted by the plan linter
  kBitmapIndexBytes,       ///< vertical bitmap index arena bytes built
  kBitmapAndWords,         ///< 64-bit words ANDed by bitmap support counting
  kBitmapPopcounts,        ///< popcount ops issued by bitmap support counting
  kBroadcastFallbacks,     ///< broadcasts degraded to the partitioned store
  kShardShuffleBytes,      ///< bytes re-partitioning shard trees+transactions
  kSpillBlocksWritten,     ///< shuffle blocks spilled to simfs
  kSpillBytesRaw,          ///< pre-compression bytes of spilled blocks
  kSpillBytesStored,       ///< on-simfs bytes of spilled blocks
  kSpillBlocksRead,        ///< spilled blocks read back by reducers
  kMemShrinksApplied,      ///< YAFIM_FAULT_MEM_* budget shrinks applied
  kStreamBatches,          ///< micro-batches mined by the StreamingMiner
  kStreamTransactions,     ///< transactions ingested across all batches
  kStreamReverifications,  ///< candidates re-verified after a MinSup crossing
  kStreamReverifyDeferred, ///< crossings deferred by the backpressure slack
  kStreamWindowWidenings,  ///< backpressure batch-window widenings applied
  kStreamSlackRaises,      ///< backpressure re-verify slack raises applied
  kLintStreamBackpressure, ///< YL006 diagnostics emitted by the plan linter
  kDetsanTasksReplayed,    ///< tasks re-executed by the determinism sanitizer
  kDetsanDivergences,      ///< YL007 replay divergences observed by DetSan
  kNumCounters,
};

/// Canonical dotted name ("shuffle.bytes", "cache.hits", ...).
const char* counter_name(CounterId id);

class Counter {
 public:
  void add(u64 delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  u64 value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> value_{0};
};

/// Registry exposing the well-known counters plus any counters minted by
/// name at runtime. References returned by at()/get() are stable for the
/// process lifetime; reset_all() zeroes values without invalidating them.
class CounterRegistry {
 public:
  static CounterRegistry& instance();

  Counter& at(CounterId id);
  /// Find-or-create a named counter (for subsystems added later).
  Counter& get(const std::string& name);

  /// (name, value) for every registered counter, well-known ones first.
  std::vector<std::pair<std::string, u64>> snapshot() const;
  void reset_all();

 private:
  CounterRegistry();
  struct Impl;
  Impl* impl_;
};

/// Bump a well-known counter iff tracing is enabled.
inline void count(CounterId id, u64 delta = 1) {
  if (!enabled()) return;
  CounterRegistry::instance().at(id).add(delta);
}

/// Current value of a well-known counter (0 while never traced).
inline u64 counter_value(CounterId id) {
  return CounterRegistry::instance().at(id).value();
}

}  // namespace yafim::obs
