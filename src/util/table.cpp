#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace yafim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  YAFIM_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  YAFIM_CHECK(cells.size() == header_.size(),
              "row arity must match the header");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::num(u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string Table::to_ascii() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c];
      out << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  auto emit_rule = [&] {
    out << '+';
    for (size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << '+';
    }
    out << '\n';
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace yafim
