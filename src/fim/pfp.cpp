#include "fim/pfp.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "engine/accumulator.h"
#include "engine/broadcast.h"
#include "engine/rdd.h"
#include "fim/fp_tree.h"

namespace yafim::fim {

namespace {

using CountPair = std::pair<Itemset, u64>;

/// Shared rank table shipped to the workers.
struct RankTable {
  std::unordered_map<Item, u32> item_to_rank;
  std::vector<Item> rank_to_item;
  u32 groups = 1;

  u32 group_of(u32 rank) const { return rank % groups; }
  u64 byte_size() const { return 16 + 12ull * rank_to_item.size(); }
};

void price_passes(engine::Context& ctx, size_t first_stage, MiningRun& run) {
  sim::SimReport slice;
  const auto& stages = ctx.report().stages();
  for (size_t i = first_stage; i < stages.size(); ++i) slice.add(stages[i]);
  const std::vector<double> by_pass = slice.pass_seconds(ctx.cost_model());
  run.setup_seconds = by_pass.empty() ? 0.0 : by_pass[0];
  for (PassStats& pass : run.passes) {
    pass.sim_seconds = pass.k < by_pass.size() ? by_pass[pass.k] : 0.0;
  }
}

}  // namespace

PfpRun pfp_mine(engine::Context& ctx, simfs::SimFS& fs,
                const std::string& input_path, const PfpOptions& options) {
  const size_t first_stage = ctx.report().stages().size();
  PfpRun result;
  MiningRun& run = result.run;
  result.groups =
      options.num_groups ? options.num_groups : ctx.cluster().total_cores();

  // ---- Load -------------------------------------------------------------
  ctx.set_pass(0);
  const std::vector<u8> raw = fs.read(input_path);
  TransactionDB db = TransactionDB::deserialize(raw);
  const u64 num_transactions = db.size();
  const u64 min_count =
      num_transactions == 0 ? 1 : db.min_support_count(options.min_support);
  run.itemsets = FrequentItemsets(min_count, num_transactions);
  {
    const u32 tasks =
        options.partitions ? options.partitions : ctx.default_partitions();
    sim::StageRecord load;
    load.label = "pfp:load+parse";
    load.kind = sim::StageKind::kSparkStage;
    load.pass = 0;
    load.dfs_read_bytes = raw.size();
    load.tasks.assign(
        tasks, sim::TaskRecord{num_transactions *
                               (1 + ctx.cluster().record_parse_work) /
                               tasks});
    ctx.record(std::move(load));
  }
  if (num_transactions == 0) return result;

  auto transactions =
      ctx.parallelize(db.release(), options.partitions)
          .map([](const Transaction& t) { return t; });
  transactions.persist();

  // ---- Pass 1: item frequencies -> rank table ---------------------------
  ctx.set_pass(1);
  auto counts =
      transactions
          .flat_map([](const Transaction& t) { return t; })
          .map([](const Item& i) { return std::pair<Item, u64>(i, 1); })
          .reduce_by_key([](u64 a, u64 b) { return a + b; }, 0,
                         std::hash<Item>{}, "pfp:count-items")
          .collect("pfp:count-items:collect");

  std::vector<std::pair<Item, u64>> frequent;
  for (const auto& [item, count] : counts) {
    if (count >= min_count) frequent.push_back({item, count});
  }
  std::sort(frequent.begin(), frequent.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  RankTable table;
  table.groups = std::max<u32>(1, result.groups);
  table.rank_to_item.resize(frequent.size());
  for (u32 r = 0; r < frequent.size(); ++r) {
    table.item_to_rank.emplace(frequent[r].first, r);
    table.rank_to_item[r] = frequent[r].first;
    run.itemsets.add(Itemset{frequent[r].first}, frequent[r].second);
  }
  run.passes.push_back(PassStats{1, counts.size(), frequent.size(), 0.0});
  if (frequent.empty()) {
    ctx.set_pass(0);
    price_passes(ctx, first_stage, run);
    return result;
  }

  // ---- Pass 2: group-dependent transactions + per-group mining ----------
  ctx.set_pass(2);
  const u64 table_bytes = table.byte_size();
  auto shared_table = ctx.broadcast(std::move(table), table_bytes);
  engine::Accumulator conditional_count;

  auto group_mined =
      transactions
          // detsan: tolerate-accumulator -- commutative metric adds only;
          // the accumulator never feeds the emitted prefixes.
          .flat_map([shared_table,
                     &conditional_count](const Transaction& t) {
            // Transaction as ascending ranks (most frequent first).
            std::vector<u32> ranks;
            ranks.reserve(t.size());
            for (Item i : t) {
              auto it = shared_table->item_to_rank.find(i);
              if (it != shared_table->item_to_rank.end()) {
                ranks.push_back(it->second);
              }
            }
            std::sort(ranks.begin(), ranks.end());
            // One prefix per distinct group, cut at the group's last rank.
            std::vector<std::pair<u32, std::vector<u32>>> out;
            std::vector<bool> seen(shared_table->groups, false);
            for (size_t j = ranks.size(); j-- > 0;) {
              const u32 g = shared_table->group_of(ranks[j]);
              if (seen[g]) continue;
              seen[g] = true;
              out.emplace_back(
                  g, std::vector<u32>(ranks.begin(), ranks.begin() + j + 1));
            }
            conditional_count.add(out.size());
            return out;
          })
          .group_by_key(result.groups, std::hash<u32>{}, "pfp:group-shuffle")
          .flat_map([shared_table, min_count](
                        const std::pair<u32, std::vector<std::vector<u32>>>&
                            group) {
            FpTree tree(
                static_cast<u32>(shared_table->rank_to_item.size()));
            for (const std::vector<u32>& conditional : group.second) {
              tree.insert(conditional, 1);
            }
            const u32 g = group.first;
            std::vector<CountPair> found;
            mine_fp_tree(
                tree, min_count, shared_table->rank_to_item,
                [shared_table, g](u32 rank) {
                  return shared_table->group_of(rank) == g;
                },
                [&found](const Itemset& itemset, u64 support) {
                  found.emplace_back(itemset, support);
                });
            return found;
          });

  for (auto& [itemset, support] : group_mined.collect("pfp:mine:collect")) {
    // Groups also re-derive their singletons; supports agree with pass 1.
    run.itemsets.add(std::move(itemset), support);
  }
  result.conditional_transactions = conditional_count.value();
  run.passes.push_back(
      PassStats{2, result.conditional_transactions,
                run.itemsets.total() - frequent.size(), 0.0});

  ctx.set_pass(0);
  price_passes(ctx, first_stage, run);
  return result;
}

PfpRun pfp_mine(engine::Context& ctx, simfs::SimFS& fs,
                const TransactionDB& db, const PfpOptions& options) {
  const std::string path = "hdfs://staging/pfp-input";
  fs.write(path, db.serialize());
  return pfp_mine(ctx, fs, path, options);
}

}  // namespace yafim::fim
