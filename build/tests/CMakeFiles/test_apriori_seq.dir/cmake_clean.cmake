file(REMOVE_RECURSE
  "CMakeFiles/test_apriori_seq.dir/test_apriori_seq.cpp.o"
  "CMakeFiles/test_apriori_seq.dir/test_apriori_seq.cpp.o.d"
  "test_apriori_seq"
  "test_apriori_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apriori_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
