// BigFIM (Moens, Aksehirli & Goethals 2013): the hybrid the paper's
// related work cites as "optimized to deal with truly Big Data".
//
// Dist-Eclat assumes the vertical database of frequent items fits on every
// worker; BigFIM drops that assumption:
//
//   phase 1 -- breadth-first: the first `switch_level` Apriori levels run
//     as MapReduce counting jobs (MRApriori), which never materialise
//     tidlists;
//   phase 2 -- depth-first: one final job. Mappers compute, per frequent
//     `switch_level`-prefix, the *local* tidlists of its one-item
//     extensions over their split; reducers merge each prefix's extension
//     tidlists and mine the prefix's subtree with Eclat, entirely
//     independently.
//
// Exact: every frequent itemset larger than switch_level has a unique
// frequent length-switch_level prefix (its first items), whose reducer
// emits it.
#pragma once

#include <string>

#include "engine/context.h"
#include "fim/dataset.h"
#include "fim/result.h"
#include "simfs/simfs.h"

namespace yafim::fim {

struct BigFimOptions {
  double min_support = 0.1;
  /// Apriori levels before switching to Eclat subtree mining (>= 1).
  u32 switch_level = 2;
  u32 num_mappers = 0;
  u32 num_reducers = 0;
  std::string work_dir = "hdfs://bigfim";
};

struct BigFimRun {
  MiningRun run;
  /// Prefixes handed to the depth-first phase.
  u64 prefixes = 0;
  /// Shuffle volume of the tidlist-building job (the cost Dist-Eclat's
  /// broadcast avoids, and the price of not keeping tidlists in memory).
  u64 tidlist_shuffle_bytes = 0;
};

/// Mine with BigFIM (always exact). `run.passes` covers the Apriori levels
/// plus one final entry for the depth-first job.
BigFimRun big_fim_mine(engine::Context& ctx, simfs::SimFS& fs,
                       const std::string& input_path,
                       const BigFimOptions& options);

/// Convenience overload staging `db` onto `fs` first.
BigFimRun big_fim_mine(engine::Context& ctx, simfs::SimFS& fs,
                       const TransactionDB& db, const BigFimOptions& options);

}  // namespace yafim::fim
