// Unit + property tests for Apriori candidate generation (join + prune).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "fim/candidate_gen.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

TEST(CandidateGen, PairsFromSingletons) {
  const std::vector<Itemset> l1{{1}, {3}, {7}};
  const auto c2 = apriori_gen(l1, 2);
  EXPECT_EQ(c2, (std::vector<Itemset>{{1, 3}, {1, 7}, {3, 7}}));
}

TEST(CandidateGen, EmptyInput) {
  EXPECT_TRUE(apriori_gen({}, 2).empty());
  EXPECT_TRUE(apriori_gen({{1}}, 2).empty());  // one itemset cannot join
}

TEST(CandidateGen, ClassicTextbookExample) {
  // L3 = {abc, abd, acd, ace, bcd}; join gives abcd, acde;
  // prune removes acde (cde not in L3). (Han & Kamber example.)
  const std::vector<Itemset> l3{{1, 2, 3}, {1, 2, 4}, {1, 3, 4},
                                {1, 3, 5}, {2, 3, 4}};
  const auto c4 = apriori_gen(l3, 4);
  EXPECT_EQ(c4, (std::vector<Itemset>{{1, 2, 3, 4}}));
}

TEST(CandidateGen, PruneRemovesUnsupportedSubsets) {
  // {1,2} and {1,3} join to {1,2,3}, but {2,3} is missing -> pruned.
  const std::vector<Itemset> l2{{1, 2}, {1, 3}};
  EXPECT_TRUE(apriori_gen(l2, 3).empty());
}

TEST(CandidateGen, JoinRequiresSharedPrefix) {
  // {1,2} and {3,4} share no prefix -> no candidate.
  const std::vector<Itemset> l2{{1, 2}, {3, 4}};
  EXPECT_TRUE(apriori_gen(l2, 3).empty());
}

TEST(CandidateGen, UnsortedInputHandled) {
  const std::vector<Itemset> l1{{7}, {1}, {3}};
  const auto c2 = apriori_gen(l1, 2);
  EXPECT_EQ(c2.size(), 3u);
  EXPECT_TRUE(std::is_sorted(c2.begin(), c2.end()));
}

TEST(CandidateGen, WrongSizeInputAborts) {
  EXPECT_DEATH(apriori_gen({{1, 2}}, 2), "must be");
  EXPECT_DEATH(apriori_gen({{1}}, 3), "must be");
}

TEST(CandidateGen, AllSubsetsPresentHelper) {
  std::unordered_map<Itemset, u64, ItemsetHash, ItemsetEq> prev;
  prev[{1, 2}] = 1;
  prev[{1, 3}] = 1;
  prev[{2, 3}] = 1;
  EXPECT_TRUE(all_subsets_present({1, 2, 3}, prev));
  prev.erase({2, 3});
  EXPECT_FALSE(all_subsets_present({1, 2, 3}, prev));
}

/// Brute-force reference: all k-sets whose every (k-1)-subset is in prev.
std::set<Itemset> brute_force_gen(const std::vector<Itemset>& prev, u32 k,
                                  u32 universe) {
  std::set<Itemset> prev_set(prev.begin(), prev.end());
  std::set<Itemset> out;
  // Enumerate all k-subsets of [0, universe).
  std::vector<u32> idx(k);
  std::function<void(u32, u32)> rec = [&](u32 pos, u32 start) {
    if (pos == k) {
      Itemset c(idx.begin(), idx.end());
      bool ok = true;
      for (u32 skip = 0; skip < k && ok; ++skip) {
        Itemset sub;
        for (u32 j = 0; j < k; ++j) {
          if (j != skip) sub.push_back(c[j]);
        }
        ok = prev_set.count(sub) > 0;
      }
      if (ok) out.insert(c);
      return;
    }
    for (u32 i = start; i < universe; ++i) {
      idx[pos] = i;
      rec(pos + 1, i + 1);
    }
  };
  rec(0, 0);
  return out;
}

class CandidateGenSweep
    : public ::testing::TestWithParam<std::tuple<u32, u32>> {};

TEST_P(CandidateGenSweep, MatchesBruteForce) {
  const auto [k, seed] = GetParam();
  constexpr u32 kUniverse = 9;
  Rng rng(seed);
  // Random downward-closed-ish previous level: random (k-1)-sets.
  std::set<Itemset> prev_set;
  for (int i = 0; i < 25; ++i) {
    Itemset s;
    while (s.size() < k - 1) {
      const Item item = static_cast<Item>(rng.below(kUniverse));
      if (std::find(s.begin(), s.end(), item) == s.end()) s.push_back(item);
    }
    canonicalize(s);
    prev_set.insert(s);
  }
  const std::vector<Itemset> prev(prev_set.begin(), prev_set.end());

  const auto got = apriori_gen(prev, k);
  const auto expected = brute_force_gen(prev, k, kUniverse);
  EXPECT_EQ(std::set<Itemset>(got.begin(), got.end()), expected)
      << "k=" << k << " seed=" << seed;
  // No duplicates in the generated list.
  EXPECT_EQ(got.size(), std::set<Itemset>(got.begin(), got.end()).size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, CandidateGenSweep,
                         ::testing::Combine(::testing::Values(2u, 3u, 4u),
                                            ::testing::Range(1u, 9u)));

}  // namespace
}  // namespace yafim::fim
