// Deterministic pseudo-random number generation.
//
// All randomness in the repository flows through these generators so every
// experiment is reproducible bit-for-bit from its seed. SplitMix64 is used
// for seeding / hashing; Xoshiro256** is the workhorse generator (fast,
// passes BigCrush, trivially splittable by jump-free reseeding through
// SplitMix64).
#pragma once

#include <array>
#include <cmath>
#include <limits>

#include "util/common.h"

namespace yafim {

/// SplitMix64: tiny, strong 64-bit mixer. Good enough as a standalone PRNG
/// and ideal for turning arbitrary integers (seeds, ids) into well-mixed
/// state.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed) : state_(seed) {}

  u64 next() {
    u64 z = (state_ += 0x9E3779B97f4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// Mix an arbitrary 64-bit value into a well-distributed hash.
inline u64 mix64(u64 x) { return SplitMix64(x).next(); }

/// Xoshiro256**: the default generator for workload synthesis.
class Rng {
 public:
  using result_type = u64;

  explicit Rng(u64 seed = 0x9E3779B97F4A7C15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<u64>::max();
  }

  u64 operator()() { return next(); }

  u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift rejection method.
  u64 below(u64 bound) {
    YAFIM_DCHECK(bound > 0, "below() needs a positive bound");
    // 128-bit multiply keeps the distribution exactly uniform.
    u64 x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    u64 lo = static_cast<u64>(m);
    if (lo < bound) {
      const u64 threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<u64>(m);
      }
    }
    return static_cast<u64>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi) {
    YAFIM_DCHECK(lo <= hi, "range() needs lo <= hi");
    return lo + static_cast<i64>(below(static_cast<u64>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Poisson-distributed integer (Knuth's method; means here are small).
  u32 poisson(double mean) {
    YAFIM_DCHECK(mean >= 0.0, "poisson() needs a non-negative mean");
    const double limit = std::exp(-mean);
    double prod = uniform();
    u32 n = 0;
    while (prod > limit) {
      ++n;
      prod *= uniform();
    }
    return n;
  }

  /// Standard-normal sample (Box-Muller; one value per call, cache unused).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    constexpr double two_pi = 6.283185307179586476925286766559;
    return mean + stddev * r * std::cos(two_pi * u2);
  }

  /// Geometric-ish skewed pick in [0, n): item 0 most likely. Used by the
  /// dataset generators to create realistic frequency skew.
  u64 skewed_below(u64 n, double theta) {
    // Inverse-transform sample of a truncated power law x^{-theta}.
    const double u = uniform();
    const double x = std::pow(u, theta) * static_cast<double>(n);
    u64 v = static_cast<u64>(x);
    return v >= n ? n - 1 : v;
  }

  /// Derive an independent child generator (e.g. one per partition).
  Rng split(u64 stream_id) {
    SplitMix64 sm(mix64(state_[0] ^ mix64(stream_id)));
    return Rng(sm.next());
  }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> state_;
};

}  // namespace yafim
