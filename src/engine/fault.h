// Task-level fault tolerance for the minispark engine.
//
// RDDs are fault-tolerant through lineage: when a cached partition is lost
// (its executor died), the engine recomputes just that partition from its
// parents instead of restoring a replica. This module provides the whole
// failure side of that story:
//
//  * FaultProfile -- a deterministic, seeded injection profile (per-task
//    failure probability, straggler probability + slowdown, per-node bias)
//    consulted at task launch inside Context::measure_tasks. Every draw is a
//    pure hash of (seed, stage, task, attempt), so a given profile replays
//    bit-identically regardless of host thread scheduling.
//  * Recovery machinery state -- bounded per-task retries and stage retries
//    live in Context; the injector tracks per-node failure counts and
//    blacklists executors after `blacklist_after` failures, remapping task
//    placement (node_of) away from sick nodes.
//  * Cache management -- cached RDD nodes register themselves here.
//    kill_executor(node) drops every cached partition whose simulated
//    placement (partition % nodes) maps to that node; fail_partition()
//    targets one (rdd, partition) pair. When ClusterConfig gives executors a
//    memory budget, the injector doubles as the per-node LRU block manager:
//    inserts over budget evict the least-recently-used partitions, which the
//    engine then recovers by lineage recompute on next access.
//
// Locking protocol: holder (Node<T>) mutexes are leaves. The injector calls
// CacheHolder::drop_cached while holding its own mutex, so holders must
// never call into the injector while holding their own lock (Node::get and
// Node::persist are structured accordingly). Dropping under the injector
// lock is what makes kill_executor safe against concurrent Node destruction:
// ~Node blocks in unregister_holder until any in-flight drop completes, and
// drop dispatch is a stored function pointer rather than a virtual call, so
// it never reads a vptr the derived destructors may be rewriting.
#pragma once

#include <atomic>
#include <list>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sim/cluster.h"
#include "sim/corruption.h"
#include "util/common.h"
#include "util/thread_annotations.h"

namespace yafim::engine {

/// Deterministic, seeded fault-injection profile. All-zero (the default)
/// means injection is disabled and the engine takes its fast path.
struct FaultProfile {
  /// Seed salting every injection draw; two runs with the same profile make
  /// identical decisions.
  u64 seed = 0;

  /// Probability that one task *attempt* fails at launch (throws before
  /// doing work; the work units already spent are wasted and re-charged).
  double task_failure_p = 0.0;
  /// Probability that a task runs as a straggler: its simulated runtime is
  /// multiplied by straggler_slowdown (the host still computes it once).
  double straggler_p = 0.0;
  double straggler_slowdown = 8.0;

  /// Per-node multiplier on task_failure_p (index = node id). Nodes past
  /// the end of the vector use 1.0. Lets tests model one sick executor.
  std::vector<double> node_failure_bias;

  /// Attempt budget per task within one stage attempt (Spark's
  /// spark.task.maxFailures). A task failing this many times fails the
  /// stage attempt.
  u32 max_task_attempts = 4;
  /// Stage attempts before the engine gives up with StageFailedError. A
  /// stage retry re-attempts only the exhausted tasks with a fresh budget.
  u32 max_stage_attempts = 2;

  /// Blacklist an executor after this many injected failures on it; tasks
  /// are then placed on the next healthy node. 0 disables blacklisting.
  u32 blacklist_after = 3;

  /// Simulated fraction of a task's work that each failed attempt burned
  /// before dying (charged as wasted_work in the task's record).
  double failed_attempt_work_fraction = 0.5;

  /// Speculative execution: once a stage's tasks are in, any task slower
  /// than this multiple of the stage median runtime gets a speculative copy
  /// launched on another node; the first finisher wins. 0 disables it.
  double speculation_multiple = 2.0;

  /// Data-plane corruption (sim/corruption.h): bit flips in SimFS block
  /// replicas and in cached RDD partition bytes. The engine consults
  /// corrupt.cached_p on every cache hit; a corrupt partition is dropped
  /// and recomputed from lineage (the same recovery path as a lost one).
  sim::CorruptionProfile corrupt;

  /// Memory-pressure injection (engine/memory.h): starting at pass
  /// `mem_shrink_pass`, node `mem_shrink_node`'s effective memory budget is
  /// multiplied by `mem_shrink_factor` for the rest of the run -- a
  /// deterministic stand-in for a co-tenant ballooning mid-job. The
  /// MemoryBudget ledger consults this at every pass boundary, so a run
  /// that started with headroom degrades to partitioned broadcast/spill at
  /// a seeded, reproducible point. 0 disables the axis.
  u32 mem_shrink_pass = 0;
  double mem_shrink_factor = 0.5;
  u32 mem_shrink_node = 0;

  /// Streaming crash injection (stream/miner.h): kill the process (well,
  /// throw StreamKilledError) at a deterministic micro-batch boundary or
  /// mid-batch phase. `stream_kill_batch` names the 1-based batch to die in
  /// (0 disables the axis); `stream_kill_phase` the phase within it
  /// (0=ingest .. 5=boundary). When only `stream_seed` is set, batch and
  /// phase are derived from it by hashing, so a CI loop over seeds covers
  /// the whole kill-point matrix without enumerating it.
  u32 stream_kill_batch = 0;
  u32 stream_kill_phase = 0;
  u64 stream_seed = 0;

  bool enabled() const { return task_failure_p > 0.0 || straggler_p > 0.0; }

  /// Profile from YAFIM_FAULT_* environment variables (all optional:
  /// SEED, TASK_FAILURE_P, STRAGGLER_P, STRAGGLER_SLOWDOWN,
  /// MAX_TASK_ATTEMPTS, MAX_STAGE_ATTEMPTS, BLACKLIST_AFTER,
  /// SPECULATION_MULTIPLE, MEM_SHRINK_PASS, MEM_SHRINK_FACTOR,
  /// MEM_SHRINK_NODE, STREAM_KILL_BATCH, STREAM_KILL_PHASE, STREAM_SEED).
  /// Unset variables keep the defaults above, so an env-free process gets a
  /// disabled profile. This is how the CI fault-matrix runs the whole test
  /// suite under injection. Malformed values (non-numeric text, negative
  /// probabilities, factors above 1) abort with a one-line structured error
  /// rather than silently parsing to zero: an injection run whose axes
  /// quietly disabled themselves would pass CI while testing nothing.
  static FaultProfile from_env();
};

/// Thrown by stage execution when a task exhausted every task- and
/// stage-level attempt the FaultProfile allows.
class StageFailedError : public std::runtime_error {
 public:
  StageFailedError(std::string stage, u32 failed_tasks, u32 stage_attempts);

  const std::string& stage() const { return stage_; }
  u32 failed_tasks() const { return failed_tasks_; }
  u32 stage_attempts() const { return stage_attempts_; }

 private:
  std::string stage_;
  u32 failed_tasks_;
  u32 stage_attempts_;
};

/// Type-erased view of an RDD's partition cache, implemented by Node<T>.
/// Deliberately NOT a virtual interface: the injector invokes drop_cached
/// while the holder may be mid-destruction (~Node only blocks in
/// unregister_holder *after* the derived destructors have rewritten the
/// vptr, so a vtable dispatch from the injector thread would race on the
/// vptr). Dispatch instead goes through a function pointer captured at
/// construction; the thunk must only touch Node<T> state, which outlives
/// the ~Node body that unregisters.
class CacheHolder {
 public:
  using DropFn = bool (*)(CacheHolder*, u32 partition);

  CacheHolder(u32 id, u32 partitions, DropFn drop)
      : holder_id_(id), holder_partitions_(partitions), drop_(drop) {}

  u32 holder_id() const { return holder_id_; }
  u32 holder_partitions() const { return holder_partitions_; }
  /// Drop the cached copy of one partition. Returns true if a cached copy
  /// was present and dropped. Called with the injector lock held; must only
  /// take the holder's own (leaf) lock.
  bool drop_cached(u32 partition) { return drop_(this, partition); }

 private:
  u32 holder_id_;
  u32 holder_partitions_;
  DropFn drop_;
};

class FaultInjector {
 public:
  FaultInjector(const sim::ClusterConfig& cluster, FaultProfile profile);

  const FaultProfile& profile() const { return profile_; }
  u32 nodes() const { return nodes_; }

  // --- cache registry + memory-pressure eviction -----------------------

  /// Called by RDDNode when persist() is enabled / the node dies.
  void register_holder(CacheHolder* holder);
  void unregister_holder(CacheHolder* holder);

  /// True when executors have a finite cache budget (so Node<T> should
  /// price its partitions and report inserts/hits).
  bool cache_budget_enabled() const { return cache_budget_per_node_ > 0; }

  /// A partition was just cached; admit it into the per-node LRU and evict
  /// colder partitions if the node is over budget.
  void note_cache_insert(u32 rdd_id, u32 partition, u64 bytes);
  /// A cached partition was served; refresh its LRU position.
  void note_cache_hit(u32 rdd_id, u32 partition);

  /// Drop one cached partition of one RDD. Returns false if no such RDD is
  /// registered.
  bool fail_partition(u32 rdd_id, u32 partition);

  /// Simulate the death of one executor node: every cached partition placed
  /// on it (partition % nodes == node) is dropped. Returns the number of
  /// partitions lost.
  u64 kill_executor(u32 node);

  // --- deterministic injection draws -----------------------------------

  /// Should this (stage attempt, task, attempt) launch fail? Pure function
  /// of the profile seed and the arguments (plus the per-node bias).
  bool draw_task_failure(u64 stage, u32 stage_attempt, u32 task, u32 attempt,
                         u32 node) const;
  /// Is this task a straggler? `copy` distinguishes the original run (0)
  /// from speculative copies (>= 1).
  bool draw_straggler(u64 stage, u32 task, u32 copy) const;

  /// Are the backing bytes of cached partition (rdd, partition) corrupt on
  /// its `access`-th cache hit? Pure function of the corruption profile.
  bool draw_cached_corruption(u32 rdd, u32 partition, u64 access) const {
    return profile_.corrupt.draw_cached(rdd, partition, access);
  }

  // --- placement + blacklisting ----------------------------------------

  /// Simulated placement of task/partition `index`: index % nodes, remapped
  /// to the next healthy node when the home node is blacklisted.
  u32 node_of(u32 index) const;
  /// Nodes currently accepting tasks (total minus blacklisted).
  u32 live_nodes() const {
    return nodes_ - blacklisted_count_.load(std::memory_order_relaxed);
  }

  /// Record an injected task failure on `node`; blacklists it once it
  /// reaches profile().blacklist_after failures (always keeping at least
  /// one node live).
  void note_task_failure(u32 node);

  /// Forget accumulated per-node failure counts and lift blacklists.
  /// Called at every stage-epoch boundary (Context::set_stage_epoch): an
  /// epoch is a recovery point, so any engine state that influences future
  /// scheduling must either live in the caller's snapshot or be reset here
  /// -- otherwise a resumed run (which starts with zero counts) would place
  /// tasks differently from the uninterrupted one. Lifetime counters
  /// (task_failures() etc.) are observability and are NOT reset.
  void reset_epoch_state();

  // --- always-on recovery statistics (independent of obs tracing) ------

  /// Number of partitions recomputed due to loss (bumped by the RDD cache
  /// on a post-loss recompute).
  u64 recomputations() const { return recomputations_.load(); }
  void note_recomputation() {
    recomputations_.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::CounterId::kLineageRecomputes);
  }

  /// A cache hit found corrupt backing bytes; the holder already dropped
  /// its copy (under its own leaf lock) and will recompute from lineage.
  /// Bumps the detection counter and forgets any stale LRU entry.
  void note_cache_corruption(u32 rdd_id, u32 partition);

  u64 cache_corruptions() const { return cache_corruptions_.load(); }

  void note_task_retry() {
    task_retries_.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::CounterId::kTaskRetries);
  }
  void note_stage_retry() {
    stage_retries_.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::CounterId::kStageRetries);
  }
  void note_straggler() {
    stragglers_.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::CounterId::kStragglersInjected);
  }
  void note_speculation(bool win) {
    speculative_launches_.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::CounterId::kSpeculativeLaunches);
    if (win) {
      speculative_wins_.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::CounterId::kSpeculativeWins);
    } else {
      speculative_losses_.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::CounterId::kSpeculativeLosses);
    }
  }

  u64 task_failures() const { return task_failures_.load(); }
  u64 task_retries() const { return task_retries_.load(); }
  u64 stage_retries() const { return stage_retries_.load(); }
  u64 stragglers() const { return stragglers_.load(); }
  u64 speculative_launches() const { return speculative_launches_.load(); }
  u64 speculative_wins() const { return speculative_wins_.load(); }
  u64 speculative_losses() const { return speculative_losses_.load(); }
  u64 cache_evictions() const { return cache_evictions_.load(); }
  u64 cache_evicted_bytes() const { return cache_evicted_bytes_.load(); }
  u64 blacklisted_nodes() const {
    return blacklisted_count_.load(std::memory_order_relaxed);
  }

 private:
  struct CacheEntry {
    u32 rdd_id;
    u32 partition;
    u64 bytes;
  };
  using LruList = std::list<CacheEntry>;

  static u64 entry_key(u32 rdd_id, u32 partition) {
    return (u64{rdd_id} << 32) | partition;
  }

  /// Uniform [0, 1) draw from the profile seed and three salts.
  double draw_uniform(u64 a, u64 b, u64 c) const;

  /// Remove one partition from the LRU accounting (lock held).
  void forget_entry_locked(u32 rdd_id, u32 partition) YAFIM_REQUIRES(mutex_);
  /// Evict LRU partitions until `node` is back under budget (lock held).
  void evict_over_budget_locked(u32 node) YAFIM_REQUIRES(mutex_);

  u32 nodes_;
  FaultProfile profile_;
  u64 cache_budget_per_node_;

  mutable util::Mutex mutex_;
  std::unordered_map<u32, CacheHolder*> holders_ YAFIM_GUARDED_BY(mutex_);

  // Per-node LRU of cached partitions (front = coldest) + byte accounting.
  std::vector<LruList> node_lru_ YAFIM_GUARDED_BY(mutex_);
  std::vector<u64> node_cached_bytes_ YAFIM_GUARDED_BY(mutex_);
  std::unordered_map<u64, std::pair<u32, LruList::iterator>> entries_
      YAFIM_GUARDED_BY(mutex_);

  // Blacklist state (guarded by mutex_; count mirrored in an atomic so
  // node_of can take a fast path while nothing is blacklisted).
  std::vector<u32> node_failures_ YAFIM_GUARDED_BY(mutex_);
  std::vector<bool> node_blacklisted_ YAFIM_GUARDED_BY(mutex_);
  std::atomic<u32> blacklisted_count_{0};

  std::atomic<u64> recomputations_{0};
  std::atomic<u64> task_failures_{0};
  std::atomic<u64> task_retries_{0};
  std::atomic<u64> stage_retries_{0};
  std::atomic<u64> stragglers_{0};
  std::atomic<u64> speculative_launches_{0};
  std::atomic<u64> speculative_wins_{0};
  std::atomic<u64> speculative_losses_{0};
  std::atomic<u64> cache_evictions_{0};
  std::atomic<u64> cache_evicted_bytes_{0};
  std::atomic<u64> cache_corruptions_{0};
};

}  // namespace yafim::engine
