file(REMOVE_RECURSE
  "CMakeFiles/test_itemset.dir/test_itemset.cpp.o"
  "CMakeFiles/test_itemset.dir/test_itemset.cpp.o.d"
  "test_itemset"
  "test_itemset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_itemset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
