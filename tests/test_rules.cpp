// Tests for association-rule generation.
#include <gtest/gtest.h>

#include "fim/apriori_seq.h"
#include "fim/rules.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

FrequentItemsets toy_itemsets() {
  // 10 transactions; sup({1}) = 8, sup({2}) = 5, sup({1,2}) = 4.
  FrequentItemsets fi(2, 10);
  fi.add({1}, 8);
  fi.add({2}, 5);
  fi.add({1, 2}, 4);
  return fi;
}

TEST(Rules, ConfidenceAndLift) {
  RuleOptions opt;
  opt.min_confidence = 0.0;
  const auto rules = generate_rules(toy_itemsets(), opt);
  ASSERT_EQ(rules.size(), 2u);

  // {2} => {1}: conf 4/5 = 0.8, lift 0.8 / (8/10) = 1.0.
  const Rule& strong = rules[0];
  EXPECT_EQ(strong.antecedent, (Itemset{2}));
  EXPECT_EQ(strong.consequent, (Itemset{1}));
  EXPECT_DOUBLE_EQ(strong.confidence, 0.8);
  EXPECT_DOUBLE_EQ(strong.lift, 1.0);
  EXPECT_EQ(strong.support, 4u);

  // {1} => {2}: conf 4/8 = 0.5, lift 0.5 / 0.5 = 1.0.
  EXPECT_DOUBLE_EQ(rules[1].confidence, 0.5);
  EXPECT_DOUBLE_EQ(rules[1].lift, 1.0);
}

TEST(Rules, MinConfidenceFilters) {
  RuleOptions opt;
  opt.min_confidence = 0.6;
  const auto rules = generate_rules(toy_itemsets(), opt);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].antecedent, (Itemset{2}));
}

TEST(Rules, ThreeItemsetGeneratesSixRules) {
  FrequentItemsets fi(1, 10);
  fi.add({1}, 6);
  fi.add({2}, 6);
  fi.add({3}, 6);
  fi.add({1, 2}, 5);
  fi.add({1, 3}, 5);
  fi.add({2, 3}, 5);
  fi.add({1, 2, 3}, 4);
  RuleOptions opt;
  opt.min_confidence = 0.0;
  const auto rules = generate_rules(fi, opt);
  // Each 2-set gives 2 rules, the 3-set gives 2^3 - 2 = 6: total 12.
  EXPECT_EQ(rules.size(), 12u);
}

TEST(Rules, NoRulesFromSingletonsOnly) {
  FrequentItemsets fi(1, 10);
  fi.add({1}, 5);
  fi.add({2}, 5);
  RuleOptions opt;
  EXPECT_TRUE(generate_rules(fi, opt).empty());
}

TEST(Rules, SortedByConfidenceDescending) {
  const auto db_rules = [&] {
    Rng rng(3);
    std::vector<Transaction> tx;
    for (int i = 0; i < 100; ++i) {
      Transaction t;
      for (u32 item = 0; item < 8; ++item) {
        if (rng.bernoulli(0.5)) t.push_back(item);
      }
      if (t.empty()) t.push_back(0);
      tx.push_back(std::move(t));
    }
    TransactionDB db(std::move(tx));
    AprioriOptions opt;
    opt.min_support = 0.2;
    const auto run = apriori_mine(db, opt);
    RuleOptions ropt;
    ropt.min_confidence = 0.3;
    return generate_rules(run.itemsets, ropt);
  }();
  ASSERT_GT(db_rules.size(), 2u);
  for (size_t i = 1; i < db_rules.size(); ++i) {
    EXPECT_GE(db_rules[i - 1].confidence, db_rules[i].confidence);
    EXPECT_GE(db_rules[i].confidence, 0.3);
  }
}

TEST(Rules, RuleMetricsAreInternallyConsistent) {
  Rng rng(9);
  std::vector<Transaction> tx;
  for (int i = 0; i < 150; ++i) {
    Transaction t;
    for (u32 item = 0; item < 10; ++item) {
      if (rng.bernoulli(0.4)) t.push_back(item);
    }
    if (t.empty()) t.push_back(0);
    tx.push_back(std::move(t));
  }
  TransactionDB db(std::move(tx));
  AprioriOptions opt;
  opt.min_support = 0.15;
  const auto run = apriori_mine(db, opt);
  RuleOptions ropt;
  ropt.min_confidence = 0.0;
  for (const Rule& rule : generate_rules(run.itemsets, ropt)) {
    Itemset whole = rule.antecedent;
    whole.insert(whole.end(), rule.consequent.begin(), rule.consequent.end());
    canonicalize(whole);
    EXPECT_EQ(rule.support, db.support(whole));
    EXPECT_DOUBLE_EQ(rule.confidence,
                     static_cast<double>(rule.support) /
                         static_cast<double>(db.support(rule.antecedent)));
    EXPECT_GT(rule.lift, 0.0);
    EXPECT_LE(rule.confidence, 1.0 + 1e-12);
  }
}

TEST(Rules, ParallelMatchesSequentialExactly) {
  Rng rng(21);
  std::vector<Transaction> tx;
  for (int i = 0; i < 200; ++i) {
    Transaction t;
    for (u32 item = 0; item < 11; ++item) {
      if (rng.bernoulli(0.45)) t.push_back(item);
    }
    if (t.empty()) t.push_back(0);
    tx.push_back(std::move(t));
  }
  TransactionDB db(std::move(tx));
  AprioriOptions mine_opt;
  mine_opt.min_support = 0.2;
  const auto run = apriori_mine(db, mine_opt);

  RuleOptions ropt;
  ropt.min_confidence = 0.4;
  const auto sequential = generate_rules(run.itemsets, ropt);

  engine::Context ctx;
  const auto parallel = generate_rules_parallel(ctx, run.itemsets, ropt);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].antecedent, sequential[i].antecedent);
    EXPECT_EQ(parallel[i].consequent, sequential[i].consequent);
    EXPECT_EQ(parallel[i].support, sequential[i].support);
    EXPECT_DOUBLE_EQ(parallel[i].confidence, sequential[i].confidence);
    EXPECT_DOUBLE_EQ(parallel[i].lift, sequential[i].lift);
  }
  // The support table travelled by broadcast.
  EXPECT_GT(ctx.report().total_broadcast_bytes(), 0u);
}

TEST(Rules, ParallelOnEmptyItemsets) {
  engine::Context ctx;
  FrequentItemsets empty(1, 10);
  RuleOptions ropt;
  EXPECT_TRUE(generate_rules_parallel(ctx, empty, ropt).empty());
}

TEST(Rules, MaxItemsetSizeGuard) {
  RuleOptions opt;
  opt.max_itemset_size = 40;
  EXPECT_DEATH(generate_rules(toy_itemsets(), opt), "exponential");
}

// ---- Structured errors on non-downward-closed / non-monotone input -----
// Exact miners cannot produce these collections, but approximate results
// (fim/sampling.h) and hand-built tables can; each case used to surface as
// a divide-by-zero or an abort and must now throw a typed RuleError.

TEST(Rules, MissingAntecedentThrowsTypedError) {
  // {1,2} is present but its subset {1} is not: confidence would divide
  // by sup({1}) = 0.
  FrequentItemsets fi(2, 10);
  fi.add({2}, 8);
  fi.add({1, 2}, 4);
  RuleOptions opt;
  opt.min_confidence = 0.0;
  try {
    generate_rules(fi, opt);
    FAIL() << "expected RuleError";
  } catch (const RuleError& e) {
    EXPECT_EQ(e.kind(), RuleErrorKind::kMissingAntecedent);
    EXPECT_EQ(e.itemset(), (Itemset{1}));
    EXPECT_NE(std::string(e.what()).find("downward-closed"),
              std::string::npos);
  }
}

TEST(Rules, SupportInversionThrowsTypedError) {
  // sup({1}) = 5 < sup({1,2}) = 10: confidence would exceed 1.
  FrequentItemsets fi(2, 20);
  fi.add({1}, 5);
  fi.add({2}, 20);
  fi.add({1, 2}, 10);
  RuleOptions opt;
  opt.min_confidence = 0.0;
  try {
    generate_rules(fi, opt);
    FAIL() << "expected RuleError";
  } catch (const RuleError& e) {
    EXPECT_EQ(e.kind(), RuleErrorKind::kSupportInversion);
    EXPECT_EQ(e.itemset(), (Itemset{1}));
  }
}

TEST(Rules, MissingConsequentThrowsTypedError) {
  // Both antecedent lookups succeed, but lift of {1} => {2} needs
  // sup({2}), which is absent. min_confidence = 0 so the confidence
  // filter cannot hide the lookup.
  FrequentItemsets fi(2, 10);
  fi.add({1}, 10);
  fi.add({1, 2}, 10);
  RuleOptions opt;
  opt.min_confidence = 0.0;
  try {
    generate_rules(fi, opt);
    FAIL() << "expected RuleError";
  } catch (const RuleError& e) {
    EXPECT_EQ(e.kind(), RuleErrorKind::kMissingConsequent);
    EXPECT_EQ(e.itemset(), (Itemset{2}));
  }
}

TEST(Rules, ParallelPathPropagatesRuleError) {
  FrequentItemsets fi(2, 10);
  fi.add({2}, 8);
  fi.add({1, 2}, 4);
  RuleOptions opt;
  opt.min_confidence = 0.0;
  engine::Context ctx;
  EXPECT_THROW(generate_rules_parallel(ctx, fi, opt), RuleError);
}

}  // namespace
}  // namespace yafim::fim
