// Regenerates Fig. 3 (a-d): per-pass execution time of YAFIM vs the
// MapReduce Apriori baseline on the four benchmark datasets, on the
// simulated 12-node / 48-core cluster, plus the paper's summary claims
// (total-time speedup per dataset, average across benchmarks, last-pass
// speedup).
//
// Paper reference points: MushRoom 297s vs 14s (~21x), Chess 378s vs 18s
// (~21x), T10I4D100K ~10x, Pumsb_star ~21x; ~18x average; last-pass gaps up
// to ~37x (MushRoom) and ~55x (Chess).
#include <algorithm>

#include "common.h"

using namespace yafim;
using namespace yafim::benchharness;

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv, /*default_scale=*/1.0);
  const auto cluster = sim::ClusterConfig::paper();

  std::printf("== Fig. 3: per-pass execution time, YAFIM vs MRApriori "
              "(12 nodes x 4 cores, scale=%.2f) ==\n\n",
              args.scale);

  BenchJson json;
  json.note("bench", "fig3");
  json.note("scale", std::to_string(args.scale));
  double speedup_sum = 0.0;
  u32 speedup_count = 0;
  const char subfig[] = {'a', 'b', 'c', 'd'};
  auto benches = datagen::make_paper_benchmarks(args.scale);
  for (size_t i = 0; i < benches.size(); ++i) {
    const auto& bench = benches[i];
    const auto yafim_run = run_yafim(bench, cluster);
    const auto mr_run = run_mr(bench, cluster);
    YAFIM_CHECK(yafim_run.itemsets.same_itemsets(mr_run.itemsets),
                "engines disagree -- correctness bug");

    std::printf("(%c) %s: Sup = %s\n", subfig[i], bench.name.c_str(),
                support_pct(bench.paper_min_support).c_str());
    Table table({"pass", "|Ck|", "|Lk|", "YAFIM(s)", "MRApriori(s)",
                 "speedup"});
    const size_t passes =
        std::min(yafim_run.passes.size(), mr_run.passes.size());
    for (size_t p = 0; p < passes; ++p) {
      const auto& y = yafim_run.passes[p];
      const auto& m = mr_run.passes[p];
      table.add_row({Table::num(u64{y.k}), Table::num(y.candidates),
                     Table::num(y.frequent), Table::num(y.sim_seconds),
                     Table::num(m.sim_seconds),
                     Table::num(m.sim_seconds / y.sim_seconds, 1) + "x"});
      json.add(bench.name + ":yafim_s", double(y.k), y.sim_seconds);
      json.add(bench.name + ":mrapriori_s", double(m.k), m.sim_seconds);
    }
    print_table(table, args);

    const double y_total = yafim_run.total_seconds();
    const double m_total = mr_run.total_seconds();
    const double speedup = m_total / y_total;
    json.add("total_speedup", double(i), speedup);
    speedup_sum += speedup;
    ++speedup_count;
    const auto& y_last = yafim_run.passes[passes - 1];
    const auto& m_last = mr_run.passes[passes - 1];
    std::printf("    total: YAFIM %.1fs, MRApriori %.1fs -> %.1fx"
                " | last pass: %.2fs vs %.2fs -> %.1fx\n\n",
                y_total, m_total, speedup, y_last.sim_seconds,
                m_last.sim_seconds,
                m_last.sim_seconds / y_last.sim_seconds);
  }

  std::printf("average speedup across benchmarks: %.1fx "
              "(paper reports ~18x)\n",
              speedup_sum / speedup_count);
  finish(args, &json);
  return 0;
}
