// The candidate hash tree of Agrawal & Srikant's Apriori, which the paper
// builds over Ck and broadcasts to all workers each iteration to speed up
// subset(Ck, t) (Fig. 2, Algorithm 3).
//
// Interior nodes at depth d hash a transaction item (item % branching) to a
// child; leaves hold buckets of candidate ids. Enumerating the candidates
// contained in a transaction walks every path the transaction's items can
// take and containment-checks the reached leaves, visiting each leaf at most
// once per transaction (stamp-based dedup in Probe).
//
// Storage is arena-allocated and index-linked: the tree is built through
// temporary per-node vectors, then flattened into four contiguous arrays --
// fixed-size Node records, a leaf-bucket arena, an interior-child arena, and
// the candidate item arena (all candidates are size k, so candidate ci's
// items live at [ci*k, (ci+1)*k) with no per-itemset vector header). A probe
// therefore never chases a heap pointer: every hop is an index into one of
// the four arrays, and the broadcast payload is four flat buffers instead of
// a node-count's worth of small allocations.
#pragma once

#include <vector>

#include "engine/work.h"
#include "fim/itemset.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace yafim::fim {

/// How the per-pass counting stage keys its shuffle (shared by both
/// miners; see DESIGN "counting data structures").
enum class CountMode {
  /// Paper-faithful: shuffle keyed on full Itemset vectors.
  kItemsetKey,
  /// Dense: count into fixed-width arrays indexed by candidate id
  /// (tree-local index + the tree's batch-global id offset); itemsets are
  /// materialized from the broadcast tree only for MinSup survivors.
  kCandidateId,
  /// Vertical: per-item transaction bitmaps built once per partition
  /// (fim/bitmap.h); candidate support = popcount of the word-parallel AND
  /// of its item rows. No per-transaction probing at all -- the hash tree
  /// only carries the candidate arena and the dense id space.
  kVerticalBitmap,
};

inline const char* count_mode_name(CountMode mode) {
  switch (mode) {
    case CountMode::kItemsetKey: return "itemset_key";
    case CountMode::kCandidateId: return "candidate_id";
    case CountMode::kVerticalBitmap: return "vertical_bitmap";
  }
  return "unknown";
}

/// How the per-pass candidate structure reaches the workers (shared by
/// both miners; see DESIGN "Memory model & graceful degradation").
enum class BroadcastMode {
  /// Broadcast while the candidate trees fit the executor-memory budget
  /// (engine::MemoryBudget); degrade to the partitioned candidate store
  /// when they would not.
  kAuto,
  /// Always broadcast the full trees. An over-budget payload keeps the
  /// linter's YL002 *error* semantics -- the pre-degradation behavior, and
  /// the CI beyond-memory lane's negative control.
  kFull,
  /// Always use the partitioned candidate store, budget or not.
  kPartitioned,
};

inline const char* broadcast_mode_name(BroadcastMode mode) {
  switch (mode) {
    case BroadcastMode::kAuto: return "auto";
    case BroadcastMode::kFull: return "full";
    case BroadcastMode::kPartitioned: return "partitioned";
  }
  return "unknown";
}

/// Deterministic hash for dense candidate ids (std::hash<u32> is
/// implementation-defined; shuffle partitioning must not depend on it).
struct DenseIdHash {
  size_t operator()(u32 id) const {
    return static_cast<size_t>(mix64(u64{id} + 0x9e3779b97f4a7c15ULL));
  }
};

class HashTree {
 public:
  /// All candidates must be canonical and of equal size k >= 1.
  /// `branching` is the interior fan-out (0 = auto-size from the candidate
  /// count, see default_branching()); `leaf_capacity` the bucket size that
  /// triggers a split (leaves at depth k never split).
  explicit HashTree(std::vector<Itemset> candidates, u32 branching = 0,
                    u32 leaf_capacity = 16);

  /// Fan-out that keeps depth-k leaves near leaf-capacity occupancy:
  /// roughly 2 * n^(1/k), clamped to [8, 1024]. With a fixed small fan-out
  /// a large C2 degenerates to huge leaves that every probe has to scan.
  static u32 default_branching(u64 num_candidates, u32 k);

  u32 k() const { return k_; }
  u32 size() const { return size_; }
  u32 num_leaves() const { return num_leaves_; }
  u32 num_nodes() const { return static_cast<u32>(nodes_.size()); }

  /// Candidate `idx`'s items, a k()-item run in the flat item arena. The
  /// zero-indirection accessor the hot paths (probe containment checks,
  /// bitmap AND loops) read.
  const Item* candidate_items(u32 idx) const {
    return item_arena_.data() + size_t{idx} * k_;
  }

  /// Candidate `idx` materialized as an owning Itemset (driver-side
  /// survivor materialization, MR reducers, tests).
  Itemset candidate(u32 idx) const {
    const Item* items = candidate_items(idx);
    return Itemset(items, items + k_);
  }

  /// All candidates, materialized (tests/debug only -- the tree itself
  /// stores just the arena).
  std::vector<Itemset> candidates() const;

  /// Batch-global id base for this tree's candidates: when several levels
  /// are counted in one pass (combine_passes), tree-local index `ci` maps
  /// to global id `id_offset() + ci` in the shared counting array.
  u64 id_offset() const { return id_offset_; }
  void set_id_offset(u64 offset) { id_offset_ = offset; }

  /// Assign consecutive id ranges to a batch of trees (offset of tree i =
  /// sum of sizes of trees 0..i-1) and return the total id-space width.
  static u64 assign_id_offsets(std::vector<HashTree>& trees) {
    u64 offset = 0;
    for (HashTree& tree : trees) {
      tree.set_id_offset(offset);
      offset += tree.size();
    }
    return offset;
  }

  /// Estimated wire size when broadcast to workers (candidate payload plus
  /// node structure).
  u64 serialized_bytes() const;

  /// Arena introspection (tests): every candidate id sits in exactly one
  /// leaf bucket, so the bucket arena holds exactly size() slots; the child
  /// arena holds branching() slots per interior node.
  u32 bucket_arena_size() const { return static_cast<u32>(bucket_arena_.size()); }
  u32 child_arena_size() const { return static_cast<u32>(child_arena_.size()); }
  u32 branching() const { return branching_; }

  /// Per-thread scratch for containment enumeration. Reusable across
  /// probes and across trees; never share one Probe between threads.
  /// The visit counters are probe-local running totals, flushed to the obs
  /// counter registry once per probed transaction (one relaxed atomic add
  /// instead of one per node) when tracing is enabled.
  struct Probe {
    std::vector<u64> leaf_stamp;
    u64 counter = 0;
    u64 nodes_visited = 0;
    u64 candidate_checks = 0;
  };

  /// Invoke fn(candidate_id) once for every candidate contained in `t`.
  /// Adds engine work units for every node visit and candidate check, so
  /// stage task costs reflect real probe effort.
  template <typename Fn>
  void for_each_contained(const Transaction& t, Probe& probe, Fn&& fn) const {
    if (size_ == 0 || t.size() < k_) return;
    ++probe.counter;
    if (probe.leaf_stamp.size() < num_leaves_) {
      probe.leaf_stamp.resize(num_leaves_, 0);
    }
    const u64 nodes_before = probe.nodes_visited;
    const u64 checks_before = probe.candidate_checks;
    walk(kRoot, t, 0, 0, probe, fn);
    if (obs::enabled()) {
      obs::count(obs::CounterId::kHashTreeNodesVisited,
                 probe.nodes_visited - nodes_before);
      obs::count(obs::CounterId::kHashTreeCandChecks,
                 probe.candidate_checks - checks_before);
    }
  }

  /// Reference containment enumeration without the tree (linear scan over
  /// all candidates); the property tests check the tree against this.
  template <typename Fn>
  void for_each_contained_linear(const Transaction& t, Fn&& fn) const {
    for (u32 i = 0; i < size_; ++i) {
      engine::work::add(1);
      if (contains_candidate(t, i)) fn(i);
    }
    obs::count(obs::CounterId::kHashTreeCandChecks, size_);
  }

 private:
  static constexpr u32 kNone = 0xffffffffu;
  static constexpr u32 kRoot = 0;

  /// Flat arena node: 12 bytes, no owned memory. Leaves (leaf_id != kNone)
  /// index `count` bucket slots starting at bucket_arena_[first]; interior
  /// nodes index branching_ child slots starting at child_arena_[first].
  struct Node {
    u32 first = 0;
    u32 count = 0;
    u32 leaf_id = kNone;
  };

  u32 child_slot(Item item) const { return item % branching_; }

  /// contains_all() against the item arena: linear merge of the (canonical)
  /// transaction and candidate `ci`'s k-item run.
  bool contains_candidate(const Transaction& t, u32 ci) const {
    const Item* c = candidate_items(ci);
    size_t ti = 0;
    for (u32 j = 0; j < k_; ++j) {
      while (ti < t.size() && t[ti] < c[j]) ++ti;
      if (ti == t.size() || t[ti] != c[j]) return false;
      ++ti;
    }
    return true;
  }

  template <typename Fn>
  void walk(u32 node_idx, const Transaction& t, size_t pos, u32 depth,
            Probe& probe, Fn& fn) const {
    const Node& node = nodes_[node_idx];
    engine::work::add(1);
    ++probe.nodes_visited;
    if (node.leaf_id != kNone) {
      if (probe.leaf_stamp[node.leaf_id] == probe.counter) return;
      probe.leaf_stamp[node.leaf_id] = probe.counter;
      const u32* bucket = bucket_arena_.data() + node.first;
      for (u32 b = 0; b < node.count; ++b) {
        engine::work::add(1);
        ++probe.candidate_checks;
        if (contains_candidate(t, bucket[b])) fn(bucket[b]);
      }
      return;
    }
    // Choose the next transaction item; keep enough items in reserve to
    // complete a k-path (candidates have exactly k items).
    const size_t remaining_needed = k_ - depth;
    const u32* children = child_arena_.data() + node.first;
    for (size_t i = pos; i + remaining_needed <= t.size(); ++i) {
      const u32 child = children[child_slot(t[i])];
      if (child != kNone) walk(child, t, i + 1, depth + 1, probe, fn);
    }
  }

  /// Candidate items, size_ * k_ entries; candidate ci at [ci*k_, ci*k_+k_).
  std::vector<Item> item_arena_;
  /// Leaf buckets, concatenated; exactly one slot per candidate.
  std::vector<u32> bucket_arena_;
  /// Interior child tables, concatenated; branching_ slots per interior.
  std::vector<u32> child_arena_;
  std::vector<Node> nodes_;
  u64 id_offset_ = 0;
  u32 size_ = 0;
  u32 k_ = 0;
  u32 branching_ = 8;
  u32 leaf_capacity_ = 16;
  u32 num_leaves_ = 0;
};

// --- partitioned candidate store (broadcast fallback) --------------------
//
// When a pass's candidate trees would not fit next to what the memory
// ledger already places on the tightest executor, the miners shard the
// candidates over the cluster instead of broadcasting the whole structure:
// each shard holds a hash tree over a slice of the candidates, and
// transactions are re-partitioned to the shards they can reach.

/// Deterministic shard of a candidate, keyed on its first (smallest) item.
/// Any transaction containing the candidate also contains that item among
/// its own viable prefix positions, so routing a transaction to the shards
/// of those items reaches every candidate it could support exactly once.
inline u32 candidate_shard(Item first_item, u32 nshards) {
  return static_cast<u32>(mix64(u64{first_item} + 0x9e3779b97f4a7c15ULL) %
                          nshards);
}

/// One shard of the store: a hash tree over the shard's slice of one
/// level's candidates, plus the map from shard-local candidate index back
/// to the source tree's batch-global dense ids. Shard probes increment the
/// same counting cells a full-tree probe would -- which is what keeps the
/// fallback path bit-identical to the broadcast path.
struct TreeShard {
  HashTree tree;
  std::vector<u64> global_ids;
};

/// Split `tree`'s candidates over `nshards` by candidate_shard() of their
/// first item. Every candidate lands in exactly one shard; shards with no
/// candidates get an empty tree (size() == 0, probes return immediately).
std::vector<TreeShard> shard_hash_tree(const HashTree& tree, u32 nshards,
                                       u32 branching, u32 leaf_capacity);

}  // namespace yafim::fim
