file(REMOVE_RECURSE
  "libyafim_sim.a"
)
