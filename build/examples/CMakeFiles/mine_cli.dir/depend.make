# Empty dependencies file for mine_cli.
# This may be replaced when dependencies are built.
