file(REMOVE_RECURSE
  "CMakeFiles/test_condensed.dir/test_condensed.cpp.o"
  "CMakeFiles/test_condensed.dir/test_condensed.cpp.o.d"
  "test_condensed"
  "test_condensed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_condensed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
