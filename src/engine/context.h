// Context: the minispark driver (SparkContext analogue).
//
// Owns the host thread pool, the simulated-cluster configuration and cost
// model, the fault injector, and the run's SimReport. RDDs are created
// through it (see engine/rdd.h for the template methods) and every stage an
// action triggers is recorded here with deterministic work counters.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "engine/detsan.h"
#include "engine/fault.h"
#include "engine/lint.h"
#include "engine/memory.h"
#include "engine/thread_pool.h"
#include "sim/cost_model.h"
#include "sim/metrics.h"
#include "util/common.h"
#include "util/thread_annotations.h"

namespace yafim::simfs {
class SimFS;
}

namespace yafim::engine {

template <typename T>
class RDD;
template <typename T>
class Broadcast;

/// Cap on map-side-combine hash reservations (RDD reduce_by_key and the
/// MapReduce combiner). Reserving one slot per *input pair* is right when
/// keys are mostly distinct, but in counting workloads (pass-2 Apriori:
/// millions of hits, tens of thousands of distinct candidates) it allocates
/// a hash table proportional to the hit count per task; distinct keys
/// beyond the cap still insert normally via rehash.
inline constexpr size_t kCombineReserveCap = size_t{1} << 16;

/// How shared data reaches the workers (paper §IV-C): Spark broadcast
/// variables (tree broadcast, the paper's choice) vs naively shipping a copy
/// with every task through the driver (the bottleneck it calls out).
enum class ShareMode { kBroadcast, kNaiveShip };

/// Construction options for Context. Defined outside the class so it can be
/// used as a default argument (nested classes with default member
/// initializers cannot).
struct ContextOptions {
  sim::ClusterConfig cluster = sim::ClusterConfig::paper();
  /// Host threads doing the real work; 0 = hardware concurrency.
  u32 host_threads = 0;
  /// Default number of RDD partitions; 0 = 2x simulated cores.
  u32 default_partitions = 0;
  ShareMode share_mode = ShareMode::kBroadcast;
  /// Task-level fault injection (engine/fault.h). Defaults to the
  /// YAFIM_FAULT_* environment (disabled when unset), so a whole test or
  /// bench binary can be run under injection without code changes.
  FaultProfile fault = FaultProfile::from_env();
  /// Plan linting (engine/lint.h). Off by default. (The explicit
  /// initializer keeps designated-init call sites clear of
  /// -Wmissing-field-initializers.)
  LintOptions lint = {};
  /// Determinism sanitizer (engine/detsan.h). Off by default; enabling it
  /// also forces the plan linter on (YL007 resolves node names through the
  /// linter's plan shadow).
  DetSanOptions detsan = {};
};

class Context {
 public:
  using Options = ContextOptions;

  explicit Context(Options opts = {});

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  const sim::ClusterConfig& cluster() const { return opts_.cluster; }
  const sim::CostModel& cost_model() const { return model_; }
  ThreadPool& pool() { return pool_; }
  FaultInjector& fault_injector() { return fault_; }
  ShareMode share_mode() const { return opts_.share_mode; }

  /// Per-executor memory ledger (engine/memory.h). Miners consult it
  /// before broadcasting; shuffle paths consult it before buffering.
  MemoryBudget& memory_budget() { return memory_budget_; }
  const MemoryBudget& memory_budget() const { return memory_budget_; }

  /// Filesystem shuffle spill blocks go to when a stage's buffers exceed
  /// the budget (simfs://spill/...). Null (the default) disables spilling
  /// even under a finite shuffle-buffer budget -- the engine cannot spill
  /// to a filesystem it was never handed. Not owned.
  void set_spill_fs(simfs::SimFS* fs) { spill_fs_ = fs; }
  simfs::SimFS* spill_fs() const { return spill_fs_; }
  /// Whether shuffle stages should spill `buffered_bytes` right now.
  bool should_spill(u64 buffered_bytes) const {
    return spill_fs_ != nullptr &&
           memory_budget_.shuffle_should_spill(buffered_bytes);
  }
  /// Compress spilled blocks with the util/bytes yz codec (priced by the
  /// cost model; on by default).
  void set_spill_compress(bool on) { spill_compress_ = on; }
  bool spill_compress() const { return spill_compress_; }
  /// Monotonic id making concurrent spill paths unique within the run.
  u64 next_spill_id() { return spill_seq_.fetch_add(1); }

  /// Lineage plan linter; configured from Options::lint, disabled by
  /// default. RDD nodes register themselves here and actions/shuffles call
  /// before_execute(); tests assert on linter().diagnostics().
  PlanLinter& linter() { return linter_; }
  const PlanLinter& linter() const { return linter_; }

  /// Determinism sanitizer; configured from Options::detsan, disabled by
  /// default. RDD compute paths consult it for sampled replays; mine_cli
  /// reads tasks_replayed()/divergences() for its `# detsan:` summary.
  DetSan& detsan() { return detsan_; }
  const DetSan& detsan() const { return detsan_; }

  // report()/sim_seconds() hand out the report guarded by report_mutex_.
  // Thread-safety analysis is suppressed deliberately: callers read the
  // report from the driver thread after the actions that fill it returned
  // (record() is the only concurrent writer and it has completed by then),
  // so locking here would suggest a protection the accessor cannot provide.
  sim::SimReport& report() YAFIM_NO_THREAD_SAFETY_ANALYSIS { return report_; }
  const sim::SimReport& report() const YAFIM_NO_THREAD_SAFETY_ANALYSIS {
    return report_;
  }

  /// Simulated seconds of everything recorded so far.
  double sim_seconds() const YAFIM_NO_THREAD_SAFETY_ANALYSIS {
    return report_.total_seconds(model_);
  }

  u32 default_partitions() const { return default_partitions_; }
  u32 next_rdd_id() { return next_rdd_id_.fetch_add(1); }

  /// Pass tag applied to stages recorded from now on (Apriori iteration
  /// number; 0 = outside any pass). Pass boundaries are where the memory
  /// ledger releases the previous pass's broadcasts and the
  /// YAFIM_FAULT_MEM_* shrink fires.
  void set_pass(u32 pass) {
    pass_ = pass;
    if (pass != 0) memory_budget_.begin_pass(pass);
  }
  u32 pass() const { return pass_; }

  /// Pin the stage-sequence counter to a per-epoch base (epoch << 20). The
  /// fault injector salts every draw with the stage sequence number, so a
  /// streaming run that restored batches 1..b from a snapshot would
  /// otherwise see *different* injected faults in batch b+1 than the
  /// uninterrupted run (fewer stages executed => lower sequence numbers).
  /// The StreamingMiner calls this at every batch start with the batch
  /// index, making the draw stream a pure function of (profile, batch,
  /// stage-within-batch) -- bit-identity holds across resume even under
  /// task-failure injection. 2^20 stages per epoch is far above any batch.
  ///
  /// Also resets the injector's accumulated per-node failure counts and
  /// blacklists: an epoch is a recovery point, and a resumed run starts
  /// with zero counts -- cross-epoch scheduling state would otherwise make
  /// its task placement (and pricing) drift from the uninterrupted run's.
  void set_stage_epoch(u64 epoch) {
    stage_seq_.store(epoch << 20, std::memory_order_relaxed);
    fault_.reset_epoch_state();
  }

  /// Stage bytes contributed by broadcast() calls since the last stage;
  /// attached to the next recorded stage according to share_mode.
  void add_pending_broadcast(u64 bytes) { pending_broadcast_ += bytes; }

  /// Execute `body(0..ntasks-1)` on the pool, measure per-task work, and
  /// record a StageRecord. `shuffle_bytes` may be filled in by the caller
  /// after the fact via the returned record's index -- reduce_by_key uses
  /// run_stage_with_shuffle instead.
  void run_stage(const std::string& label, u32 ntasks,
                 const std::function<void(u32)>& body);

  /// As run_stage, but also records shuffle bytes produced by the stage.
  /// `shuffle_bytes` is read after the tasks complete, so the body may
  /// accumulate into it.
  void run_stage_with_shuffle(const std::string& label, u32 ntasks,
                              const std::function<void(u32)>& body,
                              const std::atomic<u64>& shuffle_bytes);

  /// Execute `body(0..ntasks-1)` on the pool and return the measured
  /// per-task work, without recording a stage. Building block for
  /// substrates (e.g. MapReduce) that assemble their own StageRecords.
  /// `label` names the per-task wall-clock spans when tracing is on.
  ///
  /// This is also the engine's fault boundary: when the FaultProfile is
  /// enabled, every task launch consults it (injected failures with bounded
  /// retries, blacklist-aware placement, stragglers, speculative copies,
  /// stage retries) and throws StageFailedError once the attempt budget is
  /// exhausted. Because both the RDD scheduler and the MapReduce JobRunner
  /// funnel through here, both substrates face the same failures.
  std::vector<sim::TaskRecord> measure_tasks(
      const std::string& label, u32 ntasks,
      const std::function<void(u32)>& body);

  /// Record driver-side/overhead cost (initial DFS load, candidate
  /// generation, MR job startup).
  void record(sim::StageRecord record);

  // --- RDD factories; definitions in engine/rdd.h ---------------------
  /// Distribute `data` over `nparts` partitions (0 = default_partitions).
  template <typename T>
  RDD<T> parallelize(std::vector<T> data, u32 nparts = 0);

  /// Wrap pre-partitioned data (used by shuffles).
  template <typename T>
  RDD<T> from_partitions(std::vector<std::vector<T>> parts);

  /// Load a text file from the simulated DFS as an RDD of lines (Spark's
  /// textFile). Charges the DFS read plus the per-record input-format
  /// parse cost; definition in engine/rdd.h.
  RDD<std::string> text_file(simfs::SimFS& fs, const std::string& path,
                             u32 min_partitions = 0);

  /// Broadcast a value to all workers; definitions in engine/broadcast.h.
  /// `name` identifies the payload in lint diagnostics (YL002).
  template <typename T>
  Broadcast<T> broadcast(T value, u64 bytes,
                         const std::string& name = "broadcast");

 private:
  /// Faulty-path twin of measure_tasks (attempts, stragglers, speculation).
  std::vector<sim::TaskRecord> measure_tasks_with_faults(
      const std::string& label, u32 ntasks,
      const std::function<void(u32)>& body);

  Options opts_;
  sim::CostModel model_;
  ThreadPool pool_;
  FaultInjector fault_;
  MemoryBudget memory_budget_;
  PlanLinter linter_;
  DetSan detsan_;
  u32 default_partitions_;
  simfs::SimFS* spill_fs_ = nullptr;
  bool spill_compress_ = true;
  std::atomic<u64> spill_seq_{0};
  /// Stages launched so far; salts the deterministic injection draws.
  std::atomic<u64> stage_seq_{0};

  util::Mutex report_mutex_;
  sim::SimReport report_ YAFIM_GUARDED_BY(report_mutex_);

  std::atomic<u32> next_rdd_id_{0};
  u32 pass_ = 0;
  u64 pending_broadcast_ = 0;
};

}  // namespace yafim::engine
