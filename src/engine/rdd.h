// RDD<T>: a typed, lazy, partitioned, immutable dataset -- the minispark
// analogue of Spark's resilient distributed dataset.
//
// * Narrow transformations (map/flatMap/filter/mapPartitions/union/sample)
//   build lineage nodes and are fused at execution: one task computes the
//   whole operator chain for one partition, exactly like a Spark stage.
// * Wide operations (reduce_by_key) are stage boundaries: they execute a
//   map-side-combine stage, hash-partition the results (accounting shuffle
//   bytes), and run a reduce stage into a new materialized RDD.
// * persist() caches computed partitions in (simulated) executor memory;
//   a partition lost to fault injection -- or LRU-evicted under a finite
//   executor memory budget -- is transparently recomputed from lineage
//   (engine/fault.h).
// * Actions (collect/count/reduce) run on the driver thread and record one
//   StageRecord per stage with deterministic per-task work counters.
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/broadcast.h"
#include "engine/bytes_of.h"
#include "engine/context.h"
#include "engine/detsan.h"
#include "engine/error.h"
#include "engine/lint.h"
#include "engine/work.h"
#include "obs/metrics.h"
#include "simfs/simfs.h"
#include "util/bytes.h"
#include "util/canon_hash.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace yafim::engine {

namespace detail {

template <typename P>
struct PairTraits {
  static constexpr bool is_pair = false;
  // Placeholders so default template arguments that name these typedefs are
  // well-formed for non-pair T; the requires-clauses keep them unused.
  using key_type = void;
  using mapped_type = void;
};

template <typename K, typename V>
struct PairTraits<std::pair<K, V>> {
  static constexpr bool is_pair = true;
  using key_type = K;
  using mapped_type = V;
};

template <typename T>
struct ArrayTraits {
  static constexpr bool is_array = false;
  using elem_type = void;
};

template <typename E>
struct ArrayTraits<std::vector<E>> {
  static constexpr bool is_array = true;
  using elem_type = E;
};

// --- DetSan replay support (engine/detsan.h) ----------------------------
//
// Operators re-execute sampled tasks with a permuted input order and
// compare canonical hashes of the two outputs; these helpers hold the
// compare-and-report plumbing so each operator's hook stays a few lines.
// Replays run inside the task's work::Scope and call work::add like the
// primary pass, so their cost is priced into the sim automatically.

/// Index of the first element of `primary` that `replay` cannot account
/// for under multiset equality (primary.size() when replay only has
/// extras). Called on the divergence path only.
template <typename U>
size_t detsan_first_unmatched(const std::vector<U>& primary,
                              const std::vector<U>& replay) {
  std::unordered_map<u64, i64> counts;
  counts.reserve(replay.size());
  for (const U& e : replay) ++counts[util::canon_hash_value(e)];
  for (size_t i = 0; i < primary.size(); ++i) {
    if (--counts[util::canon_hash_value(primary[i])] < 0) return i;
  }
  return primary.size();
}

/// Element-wise operators (map/flat_map/filter): a pure closure over a
/// permuted input must produce the permuted -- i.e. multiset-equal --
/// output.
template <typename U>
void detsan_check_multiset(DetSan& ds, u32 node_id, const char* op,
                           const std::vector<U>& primary,
                           const std::vector<U>& replay) {
  ds.note_replayed();
  if (util::canon_hash_unordered(primary) ==
      util::canon_hash_unordered(replay)) {
    return;
  }
  const size_t at = detsan_first_unmatched(primary, replay);
  ds.report_divergence(node_id, op,
                       "element index " + std::to_string(at) + " of " +
                           std::to_string(primary.size()) +
                           " (replay produced " +
                           std::to_string(replay.size()) + " element(s))");
}

/// Order-contractual operators (map_partitions, sum_arrays accumulators):
/// replaying with the identical input must reproduce the identical output,
/// element for element.
template <typename U>
void detsan_check_ordered(DetSan& ds, u32 node_id, const char* op,
                          const std::vector<U>& primary,
                          const std::vector<U>& replay) {
  ds.note_replayed();
  if (util::canon_hash_ordered(primary) == util::canon_hash_ordered(replay)) {
    return;
  }
  const size_t common = std::min(primary.size(), replay.size());
  size_t at = common;  // only the lengths differ
  for (size_t i = 0; i < common; ++i) {
    if (util::canon_hash_value(primary[i]) !=
        util::canon_hash_value(replay[i])) {
      at = i;
      break;
    }
  }
  ds.report_divergence(node_id, op,
                       "element index " + std::to_string(at) + " of " +
                           std::to_string(primary.size()));
}

/// Map-side combine accumulators (reduce_by_key / aggregate_by_key): the
/// key -> accumulated-value maps of the primary and the permuted-order
/// replay must agree as multisets of (key, value) pairs -- this is exactly
/// the engine's commutativity contract for the combine fn, and it also
/// catches hash-map iteration order leaking *into* the values.
template <typename K, typename V, typename Hash>
void detsan_check_kv(DetSan& ds, u32 node_id, const char* op,
                     const std::unordered_map<K, V, Hash>& primary,
                     const std::unordered_map<K, V, Hash>& replay) {
  ds.note_replayed();
  if (util::canon_hash_unordered(primary) ==
      util::canon_hash_unordered(replay)) {
    return;
  }
  for (const auto& [k, v] : primary) {
    const auto it = replay.find(k);
    if (it != replay.end() &&
        util::canon_hash_value(it->second) == util::canon_hash_value(v)) {
      continue;
    }
    ds.report_divergence(
        node_id, op,
        std::string(it == replay.end() ? "key missing from replay"
                                       : "combined value for key") +
            " (key hash " + std::to_string(util::canon_hash_value(k)) + ", " +
            std::to_string(primary.size()) + " vs " +
            std::to_string(replay.size()) + " key(s))");
    return;
  }
  ds.report_divergence(node_id, op,
                       "replay-only key(s): " + std::to_string(replay.size()) +
                           " vs " + std::to_string(primary.size()));
}

/// Partition fold (RDD::reduce): an associative + commutative f reaches
/// the same accumulator from any fold order.
template <typename T, typename F>
void detsan_replay_fold(DetSan& ds, u32 node_id, u32 pid,
                        const std::vector<T>& in, const T& acc, F& f) {
  if (in.size() < 2 || !ds.should_replay(node_id, pid)) return;
  const std::vector<u32> order =
      DetSan::permutation(in.size(), ds.replay_seed(node_id, pid));
  T racc = in[order[0]];
  for (size_t i = 1; i < order.size(); ++i) {
    work::add(1);
    racc = f(racc, in[order[i]]);
  }
  ds.note_replayed();
  if (util::canon_hash_value(acc) == util::canon_hash_value(racc)) return;
  ds.report_divergence(node_id, "reduce",
                       "partition fold over " + std::to_string(in.size()) +
                           " element(s): permuted fold order disagrees");
}

/// Base lineage node: owns the partition cache and fault-recovery logic.
template <typename T>
class Node : public CacheHolder {
 public:
  using Part = std::shared_ptr<const std::vector<T>>;

  Node(Context& ctx, u32 nparts)
      : CacheHolder(ctx.next_rdd_id(), nparts, &Node::drop_thunk),
        ctx_(ctx),
        nparts_(nparts) {
    YAFIM_CHECK(nparts_ > 0, "an RDD needs at least one partition");
  }

  virtual ~Node() {
    if (persisted_) ctx_.fault_injector().unregister_holder(this);
  }

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Recompute partition `pid` from lineage (never consults the cache).
  virtual std::vector<T> compute(u32 pid) = 0;

  Context& ctx() const { return ctx_; }
  u32 id() const { return holder_id(); }
  u32 num_partitions() const { return nparts_; }

  void persist() {
    {
      util::MutexLock lock(mutex_);
      if (persisted_) return;
      persisted_ = true;
      cache_.resize(nparts_);
      ever_cached_.assign(nparts_, false);
      hit_seq_.assign(nparts_, 0);
    }
    // Outside our (leaf) lock: the injector takes its own lock and may call
    // back into drop_cached (see the locking protocol in engine/fault.h).
    ctx_.fault_injector().register_holder(this);
    if (ctx_.linter().enabled()) ctx_.linter().note_persist(id());
  }

  bool persisted() const {
    util::MutexLock lock(mutex_);
    return persisted_;
  }

  /// Cache-aware partition access.
  virtual Part get(u32 pid) {
    YAFIM_DCHECK(pid < nparts_, "partition out of range");
    FaultInjector& injector = ctx_.fault_injector();
    Part hit;
    bool corrupt = false;
    {
      util::MutexLock lock(mutex_);
      if (persisted_ && cache_[pid]) {
        // Deterministic corruption draw per (rdd, partition, hit#): corrupt
        // backing bytes are discarded here and the fall-through recompute
        // below is the lineage repair (ever_cached_ stays true, so it is
        // counted as a recovery recomputation).
        if (injector.draw_cached_corruption(id(), pid, hit_seq_[pid]++)) {
          cache_[pid].reset();
          corrupt = true;
        } else {
          obs::count(obs::CounterId::kCacheHits);
          hit = cache_[pid];
        }
      }
    }
    // Outside our (leaf) lock: the injector takes its own mutex to forget
    // the stale LRU entry.
    if (corrupt) injector.note_cache_corruption(id(), pid);
    if (hit) {
      // Outside our (leaf) lock: the LRU refresh may race with an eviction
      // of this very partition, but `hit` keeps the data alive either way.
      if (injector.cache_budget_enabled()) injector.note_cache_hit(id(), pid);
      if (ctx_.linter().enabled()) ctx_.linter().note_cache_read(id());
      return hit;
    }
    auto data = std::make_shared<const std::vector<T>>(compute(pid));
    // Priced only under a finite budget; byte_size walks the partition.
    const u64 bytes =
        injector.cache_budget_enabled() ? byte_size(*data) : 0;
    bool inserted = false;
    Part out;
    {
      util::MutexLock lock(mutex_);
      if (!persisted_) return data;
      if (!cache_[pid]) {
        obs::count(obs::CounterId::kCacheMisses);
        // A re-fill after a drop is a lineage recomputation (fault
        // recovery / cache-pressure degradation).
        if (ever_cached_[pid]) injector.note_recomputation();
        cache_[pid] = std::move(data);
        ever_cached_[pid] = true;
        inserted = true;
      }
      out = cache_[pid];
    }
    if (inserted && injector.cache_budget_enabled()) {
      // Outside our lock: admission may LRU-evict (possibly from this very
      // node, taking our lock again from under the injector's).
      injector.note_cache_insert(id(), pid, bytes);
    }
    return out;
  }

 protected:
  /// Lineage-shadow registration for the plan linter (engine/lint.h);
  /// called from derived constructors, which know the operator kind and
  /// parent ids the base cannot.
  void lint_register(PlanOp op, std::initializer_list<u32> parents) {
    if (ctx_.linter().enabled()) {
      ctx_.linter().register_node(id(), op, parents);
    }
  }

 private:
  // CacheHolder drop thunk. Runs with the injector lock held, possibly
  // concurrently with the derived destructors (~MapNode etc.); it must only
  // touch Node<T> members, which are destroyed after ~Node's body has
  // unregistered us.
  static bool drop_thunk(CacheHolder* holder, u32 pid) {
    auto* self = static_cast<Node*>(holder);
    util::MutexLock lock(self->mutex_);
    if (!self->persisted_ || pid >= self->nparts_ || !self->cache_[pid]) {
      return false;
    }
    self->cache_[pid].reset();
    return true;
  }

  Context& ctx_;
  u32 nparts_;

  // Leaf lock in the engine's lock order: nothing is called with mutex_
  // held (injector callbacks happen outside it; see engine/fault.h).
  mutable util::Mutex mutex_;
  bool persisted_ YAFIM_GUARDED_BY(mutex_) = false;
  std::vector<Part> cache_ YAFIM_GUARDED_BY(mutex_);
  std::vector<bool> ever_cached_ YAFIM_GUARDED_BY(mutex_);
  /// Cache hits served per partition; salts the corruption draw so repeat
  /// accesses get independent (but replay-stable) draws.
  std::vector<u64> hit_seq_ YAFIM_GUARDED_BY(mutex_);
};

/// Data already resident per partition (parallelize(), shuffle outputs).
/// Held by the driver, so it is never "lost" and needs no cache.
template <typename T>
class MaterializedNode final : public Node<T> {
 public:
  MaterializedNode(Context& ctx, std::vector<std::vector<T>> parts)
      : Node<T>(ctx, static_cast<u32>(std::max<size_t>(1, parts.size()))) {
    this->lint_register(PlanOp::kSource, {});
    if (parts.empty()) parts.emplace_back();
    data_.reserve(parts.size());
    for (auto& p : parts) {
      data_.push_back(std::make_shared<const std::vector<T>>(std::move(p)));
    }
  }

  std::vector<T> compute(u32 pid) override { return *data_[pid]; }

  typename Node<T>::Part get(u32 pid) override { return data_[pid]; }

 private:
  std::vector<typename Node<T>::Part> data_;
};

template <typename T, typename U, typename F>
class MapNode final : public Node<U> {
 public:
  MapNode(std::shared_ptr<Node<T>> parent, F f)
      : Node<U>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        f_(std::move(f)) {
    this->lint_register(PlanOp::kMap, {parent_->id()});
  }

  std::vector<U> compute(u32 pid) override {
    auto in = parent_->get(pid);
    std::vector<U> out;
    out.reserve(in->size());
    for (const T& x : *in) {
      work::add(1);
      out.push_back(f_(x));
    }
    if constexpr (util::is_canon_hashable_v<U>) {
      DetSan& ds = this->ctx().detsan();
      if (ds.should_replay(this->id(), pid)) {
        std::vector<U> replay;
        replay.reserve(in->size());
        for (u32 i : DetSan::permutation(in->size(),
                                         ds.replay_seed(this->id(), pid))) {
          work::add(1);
          replay.push_back(f_((*in)[i]));
        }
        detsan_check_multiset(ds, this->id(), "map", out, replay);
      }
    }
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F f_;
};

template <typename T, typename U, typename F>
class FlatMapNode final : public Node<U> {
 public:
  FlatMapNode(std::shared_ptr<Node<T>> parent, F f)
      : Node<U>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        f_(std::move(f)) {
    this->lint_register(PlanOp::kFlatMap, {parent_->id()});
  }

  std::vector<U> compute(u32 pid) override {
    auto in = parent_->get(pid);
    std::vector<U> out;
    for (const T& x : *in) {
      auto produced = f_(x);
      work::add(1 + produced.size());
      out.insert(out.end(), std::make_move_iterator(produced.begin()),
                 std::make_move_iterator(produced.end()));
    }
    if constexpr (util::is_canon_hashable_v<U>) {
      DetSan& ds = this->ctx().detsan();
      if (ds.should_replay(this->id(), pid)) {
        std::vector<U> replay;
        for (u32 i : DetSan::permutation(in->size(),
                                         ds.replay_seed(this->id(), pid))) {
          auto produced = f_((*in)[i]);
          work::add(1 + produced.size());
          replay.insert(replay.end(), std::make_move_iterator(produced.begin()),
                        std::make_move_iterator(produced.end()));
        }
        detsan_check_multiset(ds, this->id(), "flat_map", out, replay);
      }
    }
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F f_;
};

template <typename T, typename F>
class FilterNode final : public Node<T> {
 public:
  FilterNode(std::shared_ptr<Node<T>> parent, F f)
      : Node<T>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        f_(std::move(f)) {
    this->lint_register(PlanOp::kFilter, {parent_->id()});
  }

  std::vector<T> compute(u32 pid) override {
    auto in = parent_->get(pid);
    std::vector<T> out;
    for (const T& x : *in) {
      work::add(1);
      if (f_(x)) out.push_back(x);
    }
    if constexpr (util::is_canon_hashable_v<T>) {
      DetSan& ds = this->ctx().detsan();
      if (ds.should_replay(this->id(), pid)) {
        std::vector<T> replay;
        for (u32 i : DetSan::permutation(in->size(),
                                         ds.replay_seed(this->id(), pid))) {
          work::add(1);
          const T& x = (*in)[i];
          if (f_(x)) replay.push_back(x);
        }
        detsan_check_multiset(ds, this->id(), "filter", out, replay);
      }
    }
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F f_;
};

template <typename T, typename U, typename F>
class MapPartitionsNode final : public Node<U> {
 public:
  MapPartitionsNode(std::shared_ptr<Node<T>> parent, F f)
      : Node<U>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        f_(std::move(f)) {
    this->lint_register(PlanOp::kMapPartitions, {parent_->id()});
  }

  std::vector<U> compute(u32 pid) override {
    auto in = parent_->get(pid);
    work::add(in->size());
    std::vector<U> out = f_(*in);
    if constexpr (util::is_canon_hashable_v<U>) {
      // Partition functions may legitimately depend on element order
      // (tid assignment, zips), so the replay feeds the *same* order and
      // only checks the output is a pure function of it.
      DetSan& ds = this->ctx().detsan();
      if (ds.should_replay(this->id(), pid)) {
        work::add(in->size());
        std::vector<U> replay = f_(*in);
        detsan_check_ordered(ds, this->id(), "map_partitions", out, replay);
      }
    }
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F f_;
};

template <typename T>
class UnionNode final : public Node<T> {
 public:
  UnionNode(std::shared_ptr<Node<T>> left, std::shared_ptr<Node<T>> right)
      : Node<T>(left->ctx(),
                left->num_partitions() + right->num_partitions()),
        left_(std::move(left)),
        right_(std::move(right)) {
    YAFIM_CHECK(&left_->ctx() == &right_->ctx(),
                "union of RDDs from different contexts");
    this->lint_register(PlanOp::kUnion, {left_->id(), right_->id()});
  }

  std::vector<T> compute(u32 pid) override {
    if (pid < left_->num_partitions()) return *left_->get(pid);
    return *right_->get(pid - left_->num_partitions());
  }

  typename Node<T>::Part get(u32 pid) override {
    if (this->persisted()) return Node<T>::get(pid);
    if (pid < left_->num_partitions()) return left_->get(pid);
    return right_->get(pid - left_->num_partitions());
  }

 private:
  std::shared_ptr<Node<T>> left_;
  std::shared_ptr<Node<T>> right_;
};

template <typename T>
class SampleNode final : public Node<T> {
 public:
  SampleNode(std::shared_ptr<Node<T>> parent, double fraction, u64 seed)
      : Node<T>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        fraction_(fraction),
        seed_(seed) {
    this->lint_register(PlanOp::kSample, {parent_->id()});
  }

  std::vector<T> compute(u32 pid) override {
    auto in = parent_->get(pid);
    Rng rng = Rng(seed_).split(pid);
    std::vector<T> out;
    for (const T& x : *in) {
      work::add(1);
      if (rng.bernoulli(fraction_)) out.push_back(x);
    }
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  double fraction_;
  u64 seed_;
};

/// One-pass multi-sampling: tags each element with the ids of the samples
/// that keep it, so `n` Bernoulli(fraction) samples (or `n` disjoint
/// splits) are drawn in a single scan of the parent. Each (partition,
/// sample) pair gets its own Rng stream, so sample s's membership is
/// independent of how many sibling samples are drawn alongside it and
/// deterministic in (seed, pid) alone.
template <typename T>
class MultiSampleNode final : public Node<std::pair<u32, T>> {
 public:
  MultiSampleNode(std::shared_ptr<Node<T>> parent, u32 n, double fraction,
                  u64 seed, bool disjoint)
      : Node<std::pair<u32, T>>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        n_(n),
        fraction_(fraction),
        seed_(seed),
        disjoint_(disjoint) {
    YAFIM_CHECK(n_ > 0, "multi-sample needs at least one sample");
    this->lint_register(PlanOp::kSample, {parent_->id()});
  }

  std::vector<std::pair<u32, T>> compute(u32 pid) override {
    auto in = parent_->get(pid);
    std::vector<std::pair<u32, T>> out;
    if (disjoint_) {
      // Round-robin split assignment, offset by pid so split 0 does not
      // collect every partition's first element. Exactly one split per
      // element: the splits partition the parent.
      out.reserve(in->size());
      u64 j = 0;
      for (const T& x : *in) {
        work::add(1);
        out.emplace_back(static_cast<u32>((pid + j++) % n_), x);
      }
      return out;
    }
    std::vector<Rng> streams;
    streams.reserve(n_);
    for (u32 s = 0; s < n_; ++s) {
      streams.push_back(Rng(seed_).split(pid).split(s));
    }
    for (const T& x : *in) {
      work::add(1);
      for (u32 s = 0; s < n_; ++s) {
        if (streams[s].bernoulli(fraction_)) out.emplace_back(s, x);
      }
    }
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  u32 n_;
  double fraction_;
  u64 seed_;
  bool disjoint_;
};

template <typename T>
class CoalesceNode final : public Node<T> {
 public:
  CoalesceNode(std::shared_ptr<Node<T>> parent, u32 num_partitions)
      : Node<T>(parent->ctx(), num_partitions), parent_(std::move(parent)) {
    this->lint_register(PlanOp::kCoalesce, {parent_->id()});
  }

  std::vector<T> compute(u32 pid) override {
    // New partition pid owns the contiguous parent range [begin, end).
    const u32 parents = parent_->num_partitions();
    const u32 mine = this->num_partitions();
    const u32 begin = static_cast<u32>(u64{pid} * parents / mine);
    const u32 end = static_cast<u32>(u64{pid + 1} * parents / mine);
    std::vector<T> out;
    for (u32 p = begin; p < end; ++p) {
      auto part = parent_->get(p);
      work::add(part->size());
      out.insert(out.end(), part->begin(), part->end());
    }
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
};

template <typename T>
class ZipWithIndexNode final : public Node<std::pair<T, u64>> {
 public:
  ZipWithIndexNode(std::shared_ptr<Node<T>> parent, std::vector<u64> offsets)
      : Node<std::pair<T, u64>>(parent->ctx(), parent->num_partitions()),
        parent_(std::move(parent)),
        offsets_(std::move(offsets)) {
    this->lint_register(PlanOp::kZipWithIndex, {parent_->id()});
  }

  std::vector<std::pair<T, u64>> compute(u32 pid) override {
    auto in = parent_->get(pid);
    std::vector<std::pair<T, u64>> out;
    out.reserve(in->size());
    u64 index = offsets_[pid];
    for (const T& x : *in) {
      work::add(1);
      out.emplace_back(x, index++);
    }
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  std::vector<u64> offsets_;
};

// --- shuffle spill (memory-pressure degradation) -----------------------
//
// When a shuffle stage's map-side buffers exceed the per-node budget
// (ClusterConfig::shuffle_buffer_bytes, via Context::should_spill), the
// stage spills its blocks to the context's spill filesystem: each map
// task's output is genuinely serialized, optionally compressed with the
// util/bytes yz codec, written to checksummed simfs (so corruption
// injection covers spilled data like any other block), and read back
// before the reduce stage. The spill and read-back are priced as DFS I/O
// plus codec CPU through the cost model.
//
// Only the element shapes the engine actually spills need a wire format:
// arithmetic scalars, vectors of spillable elements, and pairs of
// spillable halves. Shuffles over any other type keep the in-memory path
// (`if constexpr (is_spillable_v<T>)` at the call sites).

template <typename T>
struct SpillFormat : std::bool_constant<std::is_arithmetic_v<T>> {};
template <typename E>
struct SpillFormat<std::vector<E>> : SpillFormat<E> {};
template <typename A, typename B>
struct SpillFormat<std::pair<A, B>>
    : std::bool_constant<SpillFormat<A>::value && SpillFormat<B>::value> {};
template <typename T>
inline constexpr bool is_spillable_v = SpillFormat<T>::value;

template <typename T>
  requires std::is_arithmetic_v<T>
void spill_put(std::vector<u8>& out, const T& v);
template <typename E>
void spill_put(std::vector<u8>& out, const std::vector<E>& v);
template <typename A, typename B>
void spill_put(std::vector<u8>& out, const std::pair<A, B>& v);

template <typename T>
  requires std::is_arithmetic_v<T>
void spill_put(std::vector<u8>& out, const T& v) {
  const u8* b = reinterpret_cast<const u8*>(&v);
  out.insert(out.end(), b, b + sizeof(T));
}

template <typename E>
void spill_put(std::vector<u8>& out, const std::vector<E>& v) {
  spill_put(out, static_cast<u64>(v.size()));
  if constexpr (std::is_arithmetic_v<E>) {
    const u8* b = reinterpret_cast<const u8*>(v.data());
    out.insert(out.end(), b, b + v.size() * sizeof(E));
  } else {
    for (const E& e : v) spill_put(out, e);
  }
}

template <typename A, typename B>
void spill_put(std::vector<u8>& out, const std::pair<A, B>& v) {
  spill_put(out, v.first);
  spill_put(out, v.second);
}

template <typename T>
  requires std::is_arithmetic_v<T>
void spill_get(std::span<const u8> in, size_t& pos, T& v);
template <typename E>
void spill_get(std::span<const u8> in, size_t& pos, std::vector<E>& v);
template <typename A, typename B>
void spill_get(std::span<const u8> in, size_t& pos, std::pair<A, B>& v);

template <typename T>
  requires std::is_arithmetic_v<T>
void spill_get(std::span<const u8> in, size_t& pos, T& v) {
  YAFIM_CHECK(pos + sizeof(T) <= in.size(), "spill: truncated block");
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
}

template <typename E>
void spill_get(std::span<const u8> in, size_t& pos, std::vector<E>& v) {
  u64 n = 0;
  spill_get(in, pos, n);
  v.clear();
  if constexpr (std::is_arithmetic_v<E>) {
    YAFIM_CHECK(pos + n * sizeof(E) <= in.size(), "spill: truncated block");
    v.resize(static_cast<size_t>(n));
    std::memcpy(v.data(), in.data() + pos, n * sizeof(E));
    pos += n * sizeof(E);
  } else {
    v.resize(static_cast<size_t>(n));
    for (u64 i = 0; i < n; ++i) spill_get(in, pos, v[i]);
  }
}

template <typename A, typename B>
void spill_get(std::span<const u8> in, size_t& pos, std::pair<A, B>& v) {
  spill_get(in, pos, v.first);
  spill_get(in, pos, v.second);
}

/// Per-shuffle spill controller. `Block` is one map task's buffered output
/// (a partial array for sum_arrays, the per-reduce bucket vector for
/// keyed shuffles). Lifecycle, driver thread only:
///   note_buffered(bytes)   -- admit the stage's buffers into the ledger
///   maybe_spill(blocks)    -- serialize + write + free if over budget
///   restore(blocks)        -- read back + deserialize before the reduce
/// The destructor releases the ledger bytes and removes the spill files.
template <typename Block>
class ShuffleSpill {
 public:
  ShuffleSpill(Context& ctx, std::string label)
      : ctx_(ctx), label_(std::move(label)) {}

  ShuffleSpill(const ShuffleSpill&) = delete;
  ShuffleSpill& operator=(const ShuffleSpill&) = delete;

  ~ShuffleSpill() {
    if (buffered_ && !spilled_) {
      ctx_.memory_budget().release_shuffle_buffered(buffered_);
    }
    if (spilled_) {
      for (const std::string& path : paths_) ctx_.spill_fs()->remove(path);
    }
  }

  void note_buffered(u64 bytes) {
    buffered_ = bytes;
    if (bytes) ctx_.memory_budget().note_shuffle_buffered(bytes);
  }

  bool spilled() const { return spilled_; }

  void maybe_spill(std::vector<Block>& blocks) {
    if (!ctx_.should_spill(buffered_)) return;
    simfs::SimFS& fs = *ctx_.spill_fs();
    compress_ = ctx_.spill_compress();
    const std::string prefix =
        "spill/" + label_ + "-" + std::to_string(ctx_.next_spill_id()) + "/";
    u64 raw_total = 0;
    u64 stored_total = 0;
    paths_.reserve(blocks.size());
    for (size_t i = 0; i < blocks.size(); ++i) {
      std::vector<u8> bytes;
      spill_put(bytes, blocks[i]);
      // Serialize-twice check: a block whose wire bytes differ across two
      // serializations of the same data carries uninitialized or
      // address-dependent bytes. Host-only (no work::add): the sim prices
      // the spill itself via record_io, not the encoder's determinism.
      DetSan& ds = ctx_.detsan();
      if (ds.enabled() &&
          ds.should_replay(static_cast<u32>(mix64(
                               xxh64(label_.data(), label_.size(), 0))),
                           static_cast<u32>(i))) {
        std::vector<u8> again;
        spill_put(again, blocks[i]);
        ds.note_replayed();
        if (xxh64(bytes.data(), bytes.size(), 0) !=
            xxh64(again.data(), again.size(), 0)) {
          size_t at = std::min(bytes.size(), again.size());
          for (size_t b = 0; b < std::min(bytes.size(), again.size()); ++b) {
            if (bytes[b] != again[b]) {
              at = b;
              break;
            }
          }
          ds.report_divergence_raw(
              "spill block '" + label_ + "' #" + std::to_string(i),
              "spill-serialize",
              "byte offset " + std::to_string(at) + " of " +
                  std::to_string(bytes.size()));
        }
      }
      const u64 raw = bytes.size();
      if (compress_) bytes = yz_compress(bytes);
      const u64 stored = bytes.size();
      const std::string path = prefix + "block-" + std::to_string(i);
      fs.write(path, std::move(bytes));
      ctx_.memory_budget().note_spill_write(raw, stored);
      raw_total += raw;
      stored_total += stored;
      paths_.push_back(path);
      Block().swap(blocks[i]);  // the buffer is on disk now; free it
    }
    record_io(label_ + ":spill", /*write=*/true, raw_total, stored_total);
    ctx_.memory_budget().release_shuffle_buffered(buffered_);
    raw_total_ = raw_total;
    stored_total_ = stored_total;
    spilled_ = true;
  }

  void restore(std::vector<Block>& blocks) {
    if (!spilled_) return;
    simfs::SimFS& fs = *ctx_.spill_fs();
    YAFIM_CHECK(paths_.size() == blocks.size(), "spill: block count changed");
    for (size_t i = 0; i < paths_.size(); ++i) {
      std::vector<u8> bytes = fs.read(paths_[i]);
      if (compress_) bytes = yz_decompress(bytes);
      size_t pos = 0;
      spill_get(std::span<const u8>(bytes), pos, blocks[i]);
      YAFIM_CHECK(pos == bytes.size(), "spill: trailing bytes in block");
      ctx_.memory_budget().note_spill_read(bytes.size());
    }
    record_io(label_ + ":spill-read", /*write=*/false, raw_total_,
              stored_total_);
  }

 private:
  /// Price one side of the spill round trip: DFS I/O of the stored bytes
  /// plus the codec CPU over the raw bytes (cluster spill_*_work_per_kb).
  void record_io(const std::string& stage_label, bool write, u64 raw_bytes,
                 u64 stored_bytes) {
    const sim::ClusterConfig& cluster = ctx_.cluster();
    sim::StageRecord rec;
    rec.label = stage_label;
    rec.kind = sim::StageKind::kSparkStage;
    rec.pass = ctx_.pass();
    if (write) {
      rec.dfs_write_bytes = stored_bytes;
    } else {
      rec.dfs_read_bytes = stored_bytes;
    }
    const u64 work_per_kb = compress_ ? (write ? cluster.spill_compress_work_per_kb
                                               : cluster.spill_decompress_work_per_kb)
                                      : 0;
    const u32 tasks = static_cast<u32>(std::max<size_t>(
        1, std::min<size_t>(paths_.size(), ctx_.default_partitions())));
    rec.tasks = sim::split_work((raw_bytes / 1024) * work_per_kb, tasks);
    ctx_.record(std::move(rec));
  }

  Context& ctx_;
  std::string label_;
  u64 buffered_ = 0;
  bool spilled_ = false;
  bool compress_ = false;
  u64 raw_total_ = 0;
  u64 stored_total_ = 0;
  std::vector<std::string> paths_;
};

}  // namespace detail

/// Value-semantic handle to a lineage node. Cheap to copy.
template <typename T>
class RDD {
 public:
  using value_type = T;

  explicit RDD(std::shared_ptr<detail::Node<T>> node)
      : node_(std::move(node)) {}

  u32 num_partitions() const { return node_->num_partitions(); }
  u32 id() const { return node_->id(); }
  Context& ctx() const { return node_->ctx(); }

  /// Cache computed partitions in executor memory (Spark's MEMORY_ONLY).
  RDD& persist() {
    node_->persist();
    return *this;
  }
  bool persisted() const { return node_->persisted(); }

  /// Attach a human-readable debug name; lint diagnostics reference it
  /// instead of "rdd#<id>", matching the stage labels in traces. Chainable
  /// at the creation site: `ctx.parallelize(db).named("transactions")`.
  RDD& named(const std::string& name) {
    Context& ctx = node_->ctx();
    if (ctx.linter().enabled()) ctx.linter().set_node_name(id(), name);
    return *this;
  }

  // --- narrow transformations (lazy) ---------------------------------

  template <typename F>
  auto map(F f) const {
    using U = std::decay_t<std::invoke_result_t<F, const T&>>;
    return RDD<U>(std::make_shared<detail::MapNode<T, U, F>>(node_,
                                                             std::move(f)));
  }

  /// `f` must return an iterable container of the output element type.
  template <typename F>
  auto flat_map(F f) const {
    using C = std::decay_t<std::invoke_result_t<F, const T&>>;
    using U = typename C::value_type;
    return RDD<U>(
        std::make_shared<detail::FlatMapNode<T, U, F>>(node_, std::move(f)));
  }

  template <typename F>
  RDD<T> filter(F f) const {
    return RDD<T>(
        std::make_shared<detail::FilterNode<T, F>>(node_, std::move(f)));
  }

  /// `f(const std::vector<T>& partition) -> std::vector<U>`.
  template <typename F>
  auto map_partitions(F f) const {
    using C = std::decay_t<std::invoke_result_t<F, const std::vector<T>&>>;
    using U = typename C::value_type;
    return RDD<U>(std::make_shared<detail::MapPartitionsNode<T, U, F>>(
        node_, std::move(f)));
  }

  RDD<T> union_with(const RDD<T>& other) const {
    return RDD<T>(
        std::make_shared<detail::UnionNode<T>>(node_, other.node_));
  }

  /// Bernoulli sample without replacement; deterministic in `seed`.
  RDD<T> sample(double fraction, u64 seed) const {
    return RDD<T>(
        std::make_shared<detail::SampleNode<T>>(node_, fraction, seed));
  }

  /// Draw `n` independent Bernoulli(fraction) samples in one pass over the
  /// data: emits (sample_id, element) for every sample that keeps the
  /// element. Deterministic in (seed, partition); each sample's membership
  /// is independent of its siblings'.
  RDD<std::pair<u32, T>> sample_each(u32 n, double fraction, u64 seed) const {
    return RDD<std::pair<u32, T>>(std::make_shared<detail::MultiSampleNode<T>>(
        node_, n, fraction, seed, /*disjoint=*/false));
  }

  /// Deterministically scatter elements round-robin into `n` disjoint
  /// splits: emits (split_id, element) with every element in exactly one
  /// split (the SON "mapper split" shape, without a shuffle).
  RDD<std::pair<u32, T>> disjoint_splits(u32 n) const {
    return RDD<std::pair<u32, T>>(std::make_shared<detail::MultiSampleNode<T>>(
        node_, n, /*fraction=*/1.0, /*seed=*/0, /*disjoint=*/true));
  }

  // --- pair-RDD operations --------------------------------------------

  /// Reduce partition count without a shuffle (Spark's coalesce): each new
  /// partition concatenates a contiguous range of parent partitions.
  RDD<T> coalesce(u32 num_partitions) const {
    YAFIM_CHECK(num_partitions > 0, "coalesce() needs >= 1 partition");
    return RDD<T>(std::make_shared<detail::CoalesceNode<T>>(
        node_, std::min(num_partitions, node_->num_partitions())));
  }

  /// Pair every element with its global index in partition order (Spark's
  /// zipWithIndex). Runs one counting stage to learn partition offsets.
  auto zip_with_index(const std::string& label = "zipWithIndex") const {
    Context& ctx = node_->ctx();
    const u32 n = node_->num_partitions();
    lint_consume(PlanLinter::Consume::kAction, label + ":count");
    std::vector<u64> sizes(n, 0);
    ctx.run_stage(label + ":count", n,
                  [&](u32 pid) { sizes[pid] = node_->get(pid)->size(); });
    std::vector<u64> offsets(n, 0);
    for (u32 p = 1; p < n; ++p) offsets[p] = offsets[p - 1] + sizes[p - 1];
    return RDD<std::pair<T, u64>>(
        std::make_shared<detail::ZipWithIndexNode<T>>(node_,
                                                      std::move(offsets)));
  }

  // --- pair-RDD operations (continued) ---------------------------------

  /// Generalised keyed aggregation (Spark's aggregateByKey): values fold
  /// into an accumulator A via `seq` map-side, accumulators merge via
  /// `comb` across the shuffle.
  template <typename A, typename Seq, typename Comb,
            typename Hash = std::hash<typename detail::PairTraits<T>::key_type>>
    requires detail::PairTraits<T>::is_pair
  auto aggregate_by_key(A zero, Seq seq, Comb comb, u32 out_partitions = 0,
                        Hash hash = Hash{},
                        const std::string& label = "aggregateByKey") const {
    using K = typename detail::PairTraits<T>::key_type;

    Context& ctx = node_->ctx();
    const u32 map_tasks = node_->num_partitions();
    const u32 reduce_tasks =
        out_partitions ? out_partitions : node_->num_partitions();

    using KA = std::pair<K, A>;
    lint_consume(PlanLinter::Consume::kShuffle, label);
    std::vector<std::vector<std::vector<KA>>> map_out(map_tasks);
    std::atomic<u64> shuffle_bytes{0};
    ctx.run_stage_with_shuffle(
        label + ":map-combine", map_tasks,
        [&](u32 pid) {
          auto in = node_->get(pid);
          std::unordered_map<K, A, Hash> acc;
          for (const auto& [k, v] : *in) {
            work::add(1);
            auto [it, inserted] = acc.try_emplace(k, zero);
            it->second = seq(std::move(it->second), v);
            (void)inserted;
          }
          if constexpr (util::is_canon_hashable_v<K> &&
                        util::is_canon_hashable_v<A>) {
            DetSan& ds = ctx.detsan();
            if (ds.should_replay(node_->id(), pid)) {
              std::unordered_map<K, A, Hash> racc;
              for (u32 i : DetSan::permutation(
                       in->size(), ds.replay_seed(node_->id(), pid))) {
                work::add(1);
                const auto& [k, v] = (*in)[i];
                auto [it, inserted] = racc.try_emplace(k, zero);
                it->second = seq(std::move(it->second), v);
                (void)inserted;
              }
              detail::detsan_check_kv(ds, node_->id(), "aggregate_by_key",
                                      acc, racc);
            }
          }
          auto& buckets = map_out[pid];
          buckets.resize(reduce_tasks);
          u64 bytes = 0;
          for (auto& [k, a] : acc) {
            const u32 r = static_cast<u32>(hash(k) % reduce_tasks);
            bytes += byte_size(k) + byte_size(a);
            buckets[r].emplace_back(std::move(const_cast<K&>(k)),
                                    std::move(a));
          }
          shuffle_bytes.fetch_add(bytes, std::memory_order_relaxed);
        },
        shuffle_bytes);

    std::vector<std::vector<KA>> out(reduce_tasks);
    ctx.run_stage(label + ":reduce", reduce_tasks, [&](u32 r) {
      std::unordered_map<K, A, Hash> acc;
      for (u32 m = 0; m < map_tasks; ++m) {
        for (auto& [k, a] : map_out[m][r]) {
          work::add(1);
          auto [it, inserted] = acc.try_emplace(std::move(k), std::move(a));
          if (!inserted) it->second = comb(std::move(it->second), a);
        }
      }
      out[r].reserve(acc.size());
      for (auto& [k, a] : acc) {
        out[r].emplace_back(std::move(const_cast<K&>(k)), std::move(a));
      }
    });
    return ctx.from_partitions(std::move(out));
  }

  /// Shuffle + aggregate values per key, with map-side combining (Spark's
  /// reduceByKey). Only available when T is std::pair<K, V>. `Hash` must
  /// hash K deterministically.
  template <typename F,
            typename Hash = std::hash<typename detail::PairTraits<T>::key_type>>
    requires detail::PairTraits<T>::is_pair
  RDD<T> reduce_by_key(F combine, u32 out_partitions = 0, Hash hash = Hash{},
                       const std::string& label = "reduceByKey") const {
    using K = typename detail::PairTraits<T>::key_type;
    using V = typename detail::PairTraits<T>::mapped_type;

    Context& ctx = node_->ctx();
    const u32 map_tasks = node_->num_partitions();
    const u32 reduce_tasks =
        out_partitions ? out_partitions : node_->num_partitions();

    // Map side: combine locally, then hash-partition into reduce buckets.
    lint_consume(PlanLinter::Consume::kShuffle, label);
    std::vector<std::vector<std::vector<T>>> map_out(map_tasks);
    std::atomic<u64> shuffle_bytes{0};
    ctx.run_stage_with_shuffle(
        label + ":map-combine", map_tasks,
        [&](u32 pid) {
          auto in = node_->get(pid);
          std::unordered_map<K, V, Hash> acc;
          acc.reserve(std::min(in->size(), kCombineReserveCap));
          for (const auto& [k, v] : *in) {
            work::add(1);
            auto [it, inserted] = acc.try_emplace(k, v);
            if (!inserted) it->second = combine(it->second, v);
          }
          // The combine fn is checked here at the map-combine stage; the
          // reduce side applies the same fn, so a non-commutative combine
          // cannot slip through unexercised.
          if constexpr (util::is_canon_hashable_v<K> &&
                        util::is_canon_hashable_v<V>) {
            DetSan& ds = ctx.detsan();
            if (ds.should_replay(node_->id(), pid)) {
              std::unordered_map<K, V, Hash> racc;
              racc.reserve(std::min(in->size(), kCombineReserveCap));
              for (u32 i : DetSan::permutation(
                       in->size(), ds.replay_seed(node_->id(), pid))) {
                work::add(1);
                const auto& [k, v] = (*in)[i];
                auto [it, inserted] = racc.try_emplace(k, v);
                if (!inserted) it->second = combine(it->second, v);
              }
              detail::detsan_check_kv(ds, node_->id(), "reduce_by_key", acc,
                                      racc);
            }
          }
          auto& buckets = map_out[pid];
          buckets.resize(reduce_tasks);
          u64 bytes = 0;
          for (auto& [k, v] : acc) {
            const u32 r = static_cast<u32>(hash(k) % reduce_tasks);
            bytes += byte_size(k) + byte_size(v);
            buckets[r].emplace_back(std::move(const_cast<K&>(k)), std::move(v));
          }
          shuffle_bytes.fetch_add(bytes, std::memory_order_relaxed);
        },
        shuffle_bytes);

    // Reduce side: merge this key's contributions from every map task.
    std::vector<std::vector<T>> out(reduce_tasks);
    ctx.run_stage(label + ":reduce", reduce_tasks, [&](u32 r) {
      std::unordered_map<K, V, Hash> acc;
      for (u32 m = 0; m < map_tasks; ++m) {
        for (auto& [k, v] : map_out[m][r]) {
          work::add(1);
          auto [it, inserted] = acc.try_emplace(std::move(k), std::move(v));
          if (!inserted) it->second = combine(it->second, v);
        }
      }
      auto& result = out[r];
      result.reserve(acc.size());
      for (auto& [k, v] : acc) {
        result.emplace_back(std::move(const_cast<K&>(k)), std::move(v));
      }
    });

    return ctx.from_partitions(std::move(out));
  }

  /// Shuffle + gather all values per key (Spark's groupByKey). No map-side
  /// combining is possible, so the full value stream crosses the shuffle --
  /// prefer reduce_by_key when the downstream only folds.
  template <typename Hash = std::hash<typename detail::PairTraits<T>::key_type>>
    requires detail::PairTraits<T>::is_pair
  auto group_by_key(u32 out_partitions = 0, Hash hash = Hash{},
                    const std::string& label = "groupByKey") const {
    using K = typename detail::PairTraits<T>::key_type;
    using V = typename detail::PairTraits<T>::mapped_type;
    using Out = std::pair<K, std::vector<V>>;

    Context& ctx = node_->ctx();
    const u32 map_tasks = node_->num_partitions();
    const u32 reduce_tasks =
        out_partitions ? out_partitions : node_->num_partitions();

    lint_consume(PlanLinter::Consume::kShuffle, label);
    std::vector<std::vector<std::vector<T>>> map_out(map_tasks);
    std::atomic<u64> shuffle_bytes{0};
    ctx.run_stage_with_shuffle(
        label + ":map", map_tasks,
        [&](u32 pid) {
          auto in = node_->get(pid);
          auto& buckets = map_out[pid];
          buckets.resize(reduce_tasks);
          u64 bytes = 0;
          for (const auto& kv : *in) {
            work::add(1);
            const u32 r = static_cast<u32>(hash(kv.first) % reduce_tasks);
            bytes += byte_size(kv);
            buckets[r].push_back(kv);
          }
          shuffle_bytes.fetch_add(bytes, std::memory_order_relaxed);
        },
        shuffle_bytes);

    // Spillable key/value shapes degrade to simfs when the buffered bytes
    // exceed the shuffle budget; other shapes keep the in-memory path.
    std::optional<detail::ShuffleSpill<std::vector<std::vector<T>>>> spill;
    if constexpr (detail::is_spillable_v<T>) {
      spill.emplace(ctx, label);
      spill->note_buffered(shuffle_bytes.load(std::memory_order_relaxed));
      spill->maybe_spill(map_out);
      spill->restore(map_out);
    }

    std::vector<std::vector<Out>> out(reduce_tasks);
    ctx.run_stage(label + ":reduce", reduce_tasks, [&](u32 r) {
      std::unordered_map<K, std::vector<V>, Hash> groups;
      for (u32 m = 0; m < map_tasks; ++m) {
        for (auto& [k, v] : map_out[m][r]) {
          work::add(1);
          groups[std::move(k)].push_back(std::move(v));
        }
      }
      out[r].reserve(groups.size());
      for (auto& [k, vs] : groups) {
        out[r].emplace_back(std::move(const_cast<K&>(k)), std::move(vs));
      }
    });
    return ctx.from_partitions(std::move(out));
  }

  /// Inner join with another pair RDD on the key (Spark's join).
  template <typename W,
            typename Hash = std::hash<typename detail::PairTraits<T>::key_type>>
    requires detail::PairTraits<T>::is_pair
  auto join(const RDD<std::pair<typename detail::PairTraits<T>::key_type, W>>&
                other,
            u32 out_partitions = 0, Hash hash = Hash{},
            const std::string& label = "join") const {
    using K = typename detail::PairTraits<T>::key_type;
    using V = typename detail::PairTraits<T>::mapped_type;
    using Out = std::pair<K, std::pair<V, W>>;

    Context& ctx = node_->ctx();
    YAFIM_CHECK(&ctx == &other.ctx(), "join across contexts");
    const u32 reduce_tasks =
        out_partitions ? out_partitions : node_->num_partitions();

    // Hash-partition both sides.
    auto partition_side = [&](auto node, const char* side) {
      using E = typename decltype(node->get(0))::element_type::value_type;
      const u32 tasks = node->num_partitions();
      std::vector<std::vector<std::vector<E>>> buckets(tasks);
      std::atomic<u64> bytes{0};
      ctx.run_stage_with_shuffle(
          label + ":" + side, tasks,
          [&](u32 pid) {
            auto in = node->get(pid);
            auto& mine = buckets[pid];
            mine.resize(reduce_tasks);
            u64 b = 0;
            for (const auto& kv : *in) {
              work::add(1);
              const u32 r = static_cast<u32>(hash(kv.first) % reduce_tasks);
              b += byte_size(kv);
              mine[r].push_back(kv);
            }
            bytes.fetch_add(b, std::memory_order_relaxed);
          },
          bytes);
      return buckets;
    };
    lint_consume(PlanLinter::Consume::kShuffle, label + ":left");
    auto left = partition_side(node_, "left");
    other.lint_consume(PlanLinter::Consume::kShuffle, label + ":right");
    auto right = partition_side(other.node(), "right");

    std::vector<std::vector<Out>> out(reduce_tasks);
    ctx.run_stage(label + ":reduce", reduce_tasks, [&](u32 r) {
      std::unordered_map<K, std::vector<V>, Hash> left_by_key;
      for (auto& task_buckets : left) {
        for (auto& [k, v] : task_buckets[r]) {
          work::add(1);
          left_by_key[std::move(k)].push_back(std::move(v));
        }
      }
      for (auto& task_buckets : right) {
        for (auto& [k, w] : task_buckets[r]) {
          work::add(1);
          auto it = left_by_key.find(k);
          if (it == left_by_key.end()) continue;
          for (const V& v : it->second) {
            out[r].emplace_back(k, std::make_pair(v, w));
          }
        }
      }
    });
    return ctx.from_partitions(std::move(out));
  }

  /// Globally sort a pair RDD by key (Spark's sortByKey): sample keys on
  /// the driver, range-partition, sort within partitions. The resulting
  /// RDD's partitions are in ascending key ranges and each is sorted, so
  /// collect() returns a fully key-sorted sequence.
  template <typename Dummy = void>
    requires detail::PairTraits<T>::is_pair
  RDD<T> sort_by_key(u32 out_partitions = 0,
                     const std::string& label = "sortByKey") const {
    using K = typename detail::PairTraits<T>::key_type;

    Context& ctx = node_->ctx();
    const u32 map_tasks = node_->num_partitions();
    const u32 reduce_tasks =
        out_partitions ? out_partitions : node_->num_partitions();

    // Driver-side splitter sampling (deterministic: every ~16th key).
    // sort_by_key truthfully consumes its input twice: once for the sample
    // stage and once for the range-partition shuffle.
    lint_consume(PlanLinter::Consume::kAction, label + ":sample");
    std::vector<K> sample;
    {
      std::mutex mutex;
      ctx.run_stage(label + ":sample", map_tasks, [&](u32 pid) {
        auto in = node_->get(pid);
        std::vector<K> local;
        for (size_t i = 0; i < in->size(); i += 16) {
          work::add(1);
          local.push_back((*in)[i].first);
        }
        std::lock_guard<std::mutex> lock(mutex);
        sample.insert(sample.end(), local.begin(), local.end());
      });
    }
    std::sort(sample.begin(), sample.end());
    std::vector<K> splitters;  // reduce_tasks - 1 boundaries
    for (u32 s = 1; s < reduce_tasks; ++s) {
      if (sample.empty()) break;
      splitters.push_back(sample[sample.size() * s / reduce_tasks]);
    }

    auto range_of = [&](const K& k) -> u32 {
      return static_cast<u32>(
          std::upper_bound(splitters.begin(), splitters.end(), k) -
          splitters.begin());
    };

    lint_consume(PlanLinter::Consume::kShuffle, label + ":partition");
    std::vector<std::vector<std::vector<T>>> map_out(map_tasks);
    std::atomic<u64> shuffle_bytes{0};
    ctx.run_stage_with_shuffle(
        label + ":partition", map_tasks,
        [&](u32 pid) {
          auto in = node_->get(pid);
          auto& buckets = map_out[pid];
          buckets.resize(reduce_tasks);
          u64 bytes = 0;
          for (const auto& kv : *in) {
            work::add(1);
            bytes += byte_size(kv);
            buckets[range_of(kv.first)].push_back(kv);
          }
          shuffle_bytes.fetch_add(bytes, std::memory_order_relaxed);
        },
        shuffle_bytes);

    std::vector<std::vector<T>> out(reduce_tasks);
    ctx.run_stage(label + ":sort", reduce_tasks, [&](u32 r) {
      auto& mine = out[r];
      for (u32 m = 0; m < map_tasks; ++m) {
        work::add(map_out[m][r].size());
        mine.insert(mine.end(),
                    std::make_move_iterator(map_out[m][r].begin()),
                    std::make_move_iterator(map_out[m][r].end()));
      }
      std::stable_sort(mine.begin(), mine.end(),
                       [](const T& a, const T& b) {
                         return a.first < b.first;
                       });
    });
    return ctx.from_partitions(std::move(out));
  }

  /// Deduplicate elements (Spark's distinct). `Hash` must hash T.
  template <typename Hash = std::hash<T>>
  RDD<T> distinct(u32 out_partitions = 0, Hash hash = Hash{},
                  const std::string& label = "distinct") const {
    auto paired = map([](const T& x) { return std::pair<T, u8>(x, 1); });
    auto deduped = paired.reduce_by_key([](u8 a, u8) { return a; },
                                        out_partitions, hash, label);
    return deduped.map([](const std::pair<T, u8>& kv) { return kv.first; });
  }

  /// Transform only the values of a pair RDD.
  template <typename F>
    requires detail::PairTraits<T>::is_pair
  auto map_values(F f) const {
    using K = typename detail::PairTraits<T>::key_type;
    using V = typename detail::PairTraits<T>::mapped_type;
    using W = std::decay_t<std::invoke_result_t<F, const V&>>;
    return map([f = std::move(f)](const std::pair<K, V>& kv) {
      return std::pair<K, W>(kv.first, f(kv.second));
    });
  }

  template <typename H = std::hash<typename detail::PairTraits<T>::key_type>>
    requires detail::PairTraits<T>::is_pair
  auto keys() const {
    using K = typename detail::PairTraits<T>::key_type;
    using V = typename detail::PairTraits<T>::mapped_type;
    return map([](const std::pair<K, V>& kv) { return kv.first; });
  }

  // --- actions (eager) -------------------------------------------------

  std::vector<T> collect(const std::string& label = "collect") const {
    Context& ctx = node_->ctx();
    const u32 n = node_->num_partitions();
    lint_consume(PlanLinter::Consume::kAction, label);
    std::vector<typename detail::Node<T>::Part> parts(n);
    ctx.run_stage(label, n, [&](u32 pid) { parts[pid] = node_->get(pid); });

    size_t total = 0;
    for (const auto& p : parts) total += p->size();
    std::vector<T> out;
    out.reserve(total);
    for (const auto& p : parts) out.insert(out.end(), p->begin(), p->end());
    return out;
  }

  u64 count(const std::string& label = "count") const {
    Context& ctx = node_->ctx();
    const u32 n = node_->num_partitions();
    lint_consume(PlanLinter::Consume::kAction, label);
    std::vector<u64> sizes(n, 0);
    ctx.run_stage(label, n,
                  [&](u32 pid) { sizes[pid] = node_->get(pid)->size(); });
    u64 total = 0;
    for (u64 s : sizes) total += s;
    return total;
  }

  /// Fold all elements with an associative, commutative `f`. Aborts on an
  /// empty RDD (mirrors Spark, which throws).
  template <typename F>
  T reduce(F f, const std::string& label = "reduce") const {
    Context& ctx = node_->ctx();
    const u32 n = node_->num_partitions();
    lint_consume(PlanLinter::Consume::kAction, label);
    std::vector<std::optional<T>> partials(n);
    ctx.run_stage(label, n, [&](u32 pid) {
      auto in = node_->get(pid);
      if (in->empty()) return;
      T acc = (*in)[0];
      for (size_t i = 1; i < in->size(); ++i) {
        work::add(1);
        acc = f(acc, (*in)[i]);
      }
      if constexpr (util::is_canon_hashable_v<T>) {
        detail::detsan_replay_fold(ctx.detsan(), node_->id(), pid, *in, acc,
                                   f);
      }
      partials[pid] = std::move(acc);
    });

    std::optional<T> result;
    for (auto& p : partials) {
      if (!p) continue;
      result = result ? f(*result, *p) : std::move(*p);
    }
    if (!result) {
      throw EngineError(EngineErrorKind::kEmptyReduce,
                        "reduce() on an empty RDD");
    }
    return *result;
  }

  /// First n elements in partition order (Spark's take): computes
  /// partitions one by one on the driver until enough elements are seen,
  /// so early partitions short-circuit the rest of the lineage.
  std::vector<T> take(size_t n, const std::string& label = "take") const {
    Context& ctx = node_->ctx();
    lint_consume(PlanLinter::Consume::kAction, label);
    std::vector<T> out;
    std::vector<sim::TaskRecord> tasks;
    for (u32 pid = 0; pid < node_->num_partitions() && out.size() < n;
         ++pid) {
      work::Scope scope;
      auto part = node_->get(pid);
      tasks.push_back(sim::TaskRecord{scope.measured()});
      for (const T& x : *part) {
        if (out.size() == n) break;
        out.push_back(x);
      }
    }
    sim::StageRecord record;
    record.label = label;
    record.kind = sim::StageKind::kSparkStage;
    record.pass = ctx.pass();
    record.tasks = std::move(tasks);
    ctx.record(std::move(record));
    return out;
  }

  /// First element; throws EngineError on an empty RDD (mirrors Spark).
  T first() const {
    auto one = take(1, "first");
    if (one.empty()) {
      throw EngineError(EngineErrorKind::kEmptyFirst,
                        "first() on an empty RDD");
    }
    return std::move(one[0]);
  }

  /// Histogram of element multiplicities (Spark's countByValue).
  template <typename Hash = std::hash<T>>
  auto count_by_value(Hash hash = Hash{},
                      const std::string& label = "countByValue") const {
    auto counted =
        map([](const T& x) { return std::pair<T, u64>(x, 1); })
            .reduce_by_key([](u64 a, u64 b) { return a + b; }, 0, hash,
                           label);
    return counted.template collect_as_map<Hash>(label + ":collect");
  }

  /// Collect a pair RDD into a hash map (keys must be unique, e.g. after
  /// reduce_by_key).
  template <typename Hash = std::hash<typename detail::PairTraits<T>::key_type>>
    requires detail::PairTraits<T>::is_pair
  auto collect_as_map(const std::string& label = "collectAsMap") const {
    using K = typename detail::PairTraits<T>::key_type;
    using V = typename detail::PairTraits<T>::mapped_type;
    std::unordered_map<K, V, Hash> out;
    for (auto& [k, v] : collect(label)) {
      auto [it, inserted] = out.emplace(std::move(k), std::move(v));
      if (!inserted) {
        throw EngineError(EngineErrorKind::kDuplicateKey,
                          "duplicate key in collect_as_map()");
      }
      (void)it;
    }
    return out;
  }

  /// Element-wise sum of fixed-width numeric arrays -- the dense
  /// counterpart of reduce_by_key for counting against a known universe of
  /// `width` candidate ids. Every element must be a std::vector of exactly
  /// `width` cells (EngineError{kArrayWidthMismatch} otherwise).
  ///
  /// Map side folds each partition's arrays into one accumulator, so
  /// exactly one width-cell array per map task crosses the shuffle: priced
  /// bytes are `map_tasks * byte_size(vector<E>(width))`, independent of
  /// how many input arrays (or candidate hits) the partitions held -- the
  /// whole point versus keying the shuffle on itemsets. Reduce side slices
  /// the index space contiguously over tasks and sums the per-map
  /// partials. Returns the fully merged array on the driver.
  template <typename E = typename detail::ArrayTraits<T>::elem_type>
    requires(detail::ArrayTraits<T>::is_array &&
             std::is_arithmetic_v<typename detail::ArrayTraits<T>::elem_type>)
  std::vector<E> sum_arrays(size_t width,
                            const std::string& label = "sumArrays") const {
    Context& ctx = node_->ctx();
    const u32 map_tasks = node_->num_partitions();

    lint_consume(PlanLinter::Consume::kShuffle, label);
    std::vector<std::vector<E>> partials(map_tasks);
    std::atomic<u64> shuffle_bytes{0};
    std::atomic<bool> bad_width{false};
    ctx.run_stage_with_shuffle(
        label + ":map-combine", map_tasks,
        [&](u32 pid) {
          auto in = node_->get(pid);
          std::vector<E> acc(width, E{});
          for (const auto& arr : *in) {
            if (arr.size() != width) {
              bad_width.store(true, std::memory_order_relaxed);
              return;
            }
            work::add(width);
            for (size_t i = 0; i < width; ++i) acc[i] += arr[i];
          }
          // Permuted-order re-accumulation: += over a permuted element
          // order must land on the same cells. Exact for integers; for
          // floating-point cells this is the non-associativity catch.
          DetSan& ds = ctx.detsan();
          if (ds.should_replay(node_->id(), pid)) {
            std::vector<E> racc(width, E{});
            for (u32 i : DetSan::permutation(
                     in->size(), ds.replay_seed(node_->id(), pid))) {
              work::add(width);
              const auto& arr = (*in)[i];
              for (size_t c = 0; c < width; ++c) racc[c] += arr[c];
            }
            detail::detsan_check_ordered(ds, node_->id(), "sum_arrays", acc,
                                         racc);
          }
          shuffle_bytes.fetch_add(byte_size(acc), std::memory_order_relaxed);
          partials[pid] = std::move(acc);
        },
        shuffle_bytes);
    if (bad_width.load(std::memory_order_relaxed)) {
      throw EngineError(
          EngineErrorKind::kArrayWidthMismatch,
          label + ": input array width != " + std::to_string(width));
    }
    obs::count(obs::CounterId::kArrayReduceBytes,
               shuffle_bytes.load(std::memory_order_relaxed));

    // The per-map partials are the stage's in-flight shuffle buffers; over
    // budget they round-trip through (compressed) simfs before the reduce.
    detail::ShuffleSpill<std::vector<E>> spill(ctx, label);
    spill.note_buffered(shuffle_bytes.load(std::memory_order_relaxed));
    spill.maybe_spill(partials);
    spill.restore(partials);

    const u32 reduce_tasks = static_cast<u32>(std::max<size_t>(
        1, std::min<size_t>(ctx.default_partitions(), width)));
    std::vector<E> merged(width, E{});
    ctx.run_stage(label + ":reduce", reduce_tasks, [&](u32 r) {
      const size_t begin = width * r / reduce_tasks;
      const size_t end = width * (r + 1) / reduce_tasks;
      work::add(static_cast<u64>(end - begin) * map_tasks);
      for (u32 m = 0; m < map_tasks; ++m) {
        const auto& part = partials[m];
        for (size_t i = begin; i < end; ++i) merged[i] += part[i];
      }
    });
    obs::count(obs::CounterId::kArrayReduceCells, width);
    return merged;
  }

  std::shared_ptr<detail::Node<T>> node() const { return node_; }

 private:
  template <typename U>
  friend class RDD;

  /// Plan-linter consumption hook, called right before an action/shuffle
  /// pulls this RDD's partitions (engine/lint.h walks the lineage then).
  void lint_consume(PlanLinter::Consume kind, const std::string& label) const {
    Context& ctx = node_->ctx();
    if (ctx.linter().enabled()) {
      ctx.linter().before_execute(node_->id(), kind, label);
    }
  }

  std::shared_ptr<detail::Node<T>> node_;
};

// --- Context factory definitions (declared in engine/context.h) ---------

inline RDD<std::string> Context::text_file(simfs::SimFS& fs,
                                           const std::string& path,
                                           u32 min_partitions) {
  const std::vector<u8> raw = fs.read(path);
  std::vector<std::string> lines;
  size_t start = 0;
  for (size_t i = 0; i <= raw.size(); ++i) {
    if (i == raw.size() || raw[i] == '\n') {
      if (i > start) {
        lines.emplace_back(reinterpret_cast<const char*>(raw.data() + start),
                           i - start);
      }
      start = i + 1;
    }
  }

  const u32 nparts = min_partitions ? min_partitions : default_partitions();
  sim::StageRecord load;
  load.label = "textFile:" + path;
  load.kind = sim::StageKind::kSparkStage;
  load.pass = pass();
  load.dfs_read_bytes = raw.size();
  const u32 tasks = static_cast<u32>(std::max<size_t>(
      1, std::min<size_t>(nparts, std::max<size_t>(1, lines.size()))));
  load.tasks = sim::split_work(
      lines.size() * (1 + cluster().record_parse_work), tasks);
  record(std::move(load));

  return parallelize(std::move(lines), nparts);
}

template <typename T>
RDD<T> Context::from_partitions(std::vector<std::vector<T>> parts) {
  return RDD<T>(
      std::make_shared<detail::MaterializedNode<T>>(*this, std::move(parts)));
}

template <typename T>
RDD<T> Context::parallelize(std::vector<T> data, u32 nparts) {
  if (nparts == 0) nparts = default_partitions();
  const size_t n = data.size();
  nparts = static_cast<u32>(
      std::max<size_t>(1, std::min<size_t>(nparts, std::max<size_t>(1, n))));

  std::vector<std::vector<T>> parts(nparts);
  const size_t base = n / nparts;
  const size_t extra = n % nparts;
  size_t offset = 0;
  for (u32 p = 0; p < nparts; ++p) {
    const size_t len = base + (p < extra ? 1 : 0);
    parts[p].assign(std::make_move_iterator(data.begin() + offset),
                    std::make_move_iterator(data.begin() + offset + len));
    offset += len;
  }
  return from_partitions(std::move(parts));
}

}  // namespace yafim::engine
