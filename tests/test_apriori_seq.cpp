// Tests for the sequential Apriori reference miner, including a brute-force
// oracle on small random databases.
#include <gtest/gtest.h>

#include <functional>

#include "fim/apriori_seq.h"
#include "util/rng.h"

namespace yafim::fim {
namespace {

/// Brute force: enumerate every itemset over the universe and count its
/// support by full scans. Only viable for tiny universes.
FrequentItemsets brute_force_mine(const TransactionDB& db,
                                  double min_support, u32 universe) {
  const u64 min_count = db.min_support_count(min_support);
  FrequentItemsets out(min_count, db.size());
  std::function<void(Itemset&, u32)> rec = [&](Itemset& current, u32 next) {
    for (u32 item = next; item < universe; ++item) {
      current.push_back(item);
      const u64 support = db.support(current);
      if (support >= min_count) {
        out.add(current, support);
        rec(current, item + 1);  // supersets can only be frequent if this is
      }
      current.pop_back();
    }
  };
  Itemset current;
  rec(current, 0);
  return out;
}

TEST(AprioriSeq, HandWorkedExample) {
  // The classic 9-transaction example (Han & Kamber, Table 5.1 style).
  TransactionDB db({{1, 2, 5},
                    {2, 4},
                    {2, 3},
                    {1, 2, 4},
                    {1, 3},
                    {2, 3},
                    {1, 3},
                    {1, 2, 3, 5},
                    {1, 2, 3}});
  AprioriOptions opt;
  opt.min_support = 2.0 / 9.0;  // absolute count 2
  const auto run = apriori_mine(db, opt);

  EXPECT_EQ(run.itemsets.min_support_count(), 2u);
  EXPECT_EQ(run.itemsets.support_of({1}), 6u);
  EXPECT_EQ(run.itemsets.support_of({2}), 7u);
  EXPECT_EQ(run.itemsets.support_of({1, 2}), 4u);
  EXPECT_EQ(run.itemsets.support_of({1, 2, 3}), 2u);
  EXPECT_EQ(run.itemsets.support_of({1, 2, 5}), 2u);
  EXPECT_EQ(run.itemsets.support_of({4}), 2u);
  EXPECT_EQ(run.itemsets.support_of({1, 4}), 0u);  // below threshold
  EXPECT_EQ(run.itemsets.max_k(), 3u);
  EXPECT_EQ(run.itemsets.level(3).size(), 2u);
}

TEST(AprioriSeq, EmptyDatabase) {
  TransactionDB db;
  AprioriOptions opt;
  opt.min_support = 0.5;
  const auto run = apriori_mine(db, opt);
  EXPECT_EQ(run.itemsets.total(), 0u);
}

TEST(AprioriSeq, SupportOneHundredPercent) {
  TransactionDB db({{1, 2}, {1, 2}, {1, 2, 3}});
  AprioriOptions opt;
  opt.min_support = 1.0;
  const auto run = apriori_mine(db, opt);
  EXPECT_EQ(run.itemsets.total(), 3u);  // {1}, {2}, {1,2}
  EXPECT_EQ(run.itemsets.support_of({1, 2}), 3u);
  EXPECT_FALSE(run.itemsets.contains({3}));
}

TEST(AprioriSeq, PassStatsAreConsistent) {
  TransactionDB db({{1, 2, 3}, {1, 2}, {1, 3}, {2, 3}, {1, 2, 3}});
  AprioriOptions opt;
  opt.min_support = 0.5;
  const auto run = apriori_mine(db, opt);
  ASSERT_GE(run.passes.size(), 2u);
  for (size_t i = 0; i < run.passes.size(); ++i) {
    EXPECT_EQ(run.passes[i].k, i + 1);
    EXPECT_GE(run.passes[i].candidates, run.passes[i].frequent);
    EXPECT_EQ(run.passes[i].frequent,
              run.itemsets.level(static_cast<u32>(i + 1)).size());
  }
}

TEST(AprioriSeq, HashTreeAndLinearScanAgree) {
  Rng rng(5);
  std::vector<Transaction> tx;
  for (int i = 0; i < 150; ++i) {
    Transaction t;
    for (u32 item = 0; item < 15; ++item) {
      if (rng.bernoulli(0.4)) t.push_back(item);
    }
    if (t.empty()) t.push_back(0);
    tx.push_back(std::move(t));
  }
  TransactionDB db(std::move(tx));

  AprioriOptions with_tree, without_tree;
  with_tree.min_support = without_tree.min_support = 0.25;
  with_tree.use_hash_tree = true;
  without_tree.use_hash_tree = false;
  const auto a = apriori_mine(db, with_tree);
  const auto b = apriori_mine(db, without_tree);
  EXPECT_TRUE(a.itemsets.same_itemsets(b.itemsets));
  EXPECT_GT(a.itemsets.total(), 0u);
}

/// Property sweep: Apriori equals the brute-force oracle across densities
/// and thresholds.
class AprioriOracleSweep
    : public ::testing::TestWithParam<std::tuple<double, double, u32>> {};

TEST_P(AprioriOracleSweep, MatchesBruteForce) {
  const auto [density, min_support, seed] = GetParam();
  constexpr u32 kUniverse = 10;
  Rng rng(seed);
  std::vector<Transaction> tx;
  for (int i = 0; i < 80; ++i) {
    Transaction t;
    for (u32 item = 0; item < kUniverse; ++item) {
      if (rng.bernoulli(density)) t.push_back(item);
    }
    if (t.empty()) t.push_back(static_cast<Item>(rng.below(kUniverse)));
    tx.push_back(std::move(t));
  }
  TransactionDB db(std::move(tx));

  AprioriOptions opt;
  opt.min_support = min_support;
  const auto run = apriori_mine(db, opt);
  const auto oracle = brute_force_mine(db, min_support, kUniverse);
  EXPECT_TRUE(run.itemsets.same_itemsets(oracle))
      << "density=" << density << " min_support=" << min_support
      << " seed=" << seed << " got=" << run.itemsets.total()
      << " expected=" << oracle.total();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AprioriOracleSweep,
    ::testing::Combine(::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(0.1, 0.3, 0.6),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace yafim::fim
