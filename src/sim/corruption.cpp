#include "sim/corruption.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/rng.h"

namespace yafim::sim {

namespace {

// Strict env parsing, mirroring engine/fault.cpp (this layer sits below the
// engine, so the helpers are duplicated rather than shared): a typo'd value
// must die loudly, not atof to zero and silently disable the axis.
[[noreturn]] void reject_env(const char* name, const char* value,
                             const char* why) {
  std::fprintf(stderr, "yafim: fault env %s='%s' rejected: %s\n", name, value,
               why);
  std::abort();
}

double env_probability(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (!value || !*value) return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE) {
    reject_env(name, value, "not a finite number");
  }
  if (parsed < 0.0 || parsed > 1.0) {
    reject_env(name, value, "probability must be in [0, 1]");
  }
  return parsed;
}

u64 env_u64(const char* name, u64 fallback) {
  const char* value = std::getenv(name);
  if (!value || !*value) return fallback;
  char* end = nullptr;
  errno = 0;
  if (*value == '-') reject_env(name, value, "must be a non-negative integer");
  const u64 parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) {
    reject_env(name, value, "must be a non-negative integer");
  }
  return parsed;
}

/// Uniform [0, 1) from a chain of mixed salts (same construction as the
/// task-level injector's draw_uniform).
double draw_uniform(u64 seed, u64 a, u64 b, u64 c) {
  const u64 h = mix64(seed ^ mix64(a ^ mix64(b ^ mix64(c))));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

CorruptionProfile CorruptionProfile::from_env() {
  CorruptionProfile p;
  p.seed = env_u64("YAFIM_FAULT_SEED", p.seed);
  p.block_p = env_probability("YAFIM_FAULT_CORRUPT_BLOCK_P", p.block_p);
  p.cached_p = env_probability("YAFIM_FAULT_CORRUPT_CACHED_P", p.cached_p);
  return p;
}

bool CorruptionProfile::draw_block(u64 path_hash, u64 block,
                                   u32 attempt) const {
  if (block_p <= 0.0) return false;
  const u64 salt = (u64{attempt} << 48) ^ block;
  return draw_uniform(seed, path_hash, salt, 0xB17F11) < block_p;
}

u64 CorruptionProfile::flip_bit(u64 path_hash, u64 block, u32 attempt,
                                u64 block_bytes) const {
  YAFIM_CHECK(block_bytes > 0, "flip_bit() needs a non-empty block");
  const u64 salt = (u64{attempt} << 48) ^ block;
  const u64 h = mix64(seed ^ mix64(path_hash ^ mix64(salt ^ 0xF11BB17)));
  return h % (block_bytes * 8);
}

bool CorruptionProfile::draw_cached(u64 rdd, u32 partition,
                                    u64 access) const {
  if (cached_p <= 0.0) return false;
  const u64 salt = (u64{partition} << 32) ^ access;
  return draw_uniform(seed, rdd, salt, 0xCAC4ED) < cached_p;
}

}  // namespace yafim::sim
