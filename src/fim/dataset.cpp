#include "fim/dataset.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "util/bytes.h"

namespace yafim::fim {

TransactionDB::TransactionDB(std::vector<Transaction> transactions)
    : tx_(std::move(transactions)) {
#ifndef NDEBUG
  for (const Transaction& t : tx_) {
    YAFIM_DCHECK(is_canonical(t), "transactions must be canonical");
  }
#endif
}

DatasetStats TransactionDB::stats() const {
  DatasetStats s;
  s.num_transactions = tx_.size();
  std::unordered_set<Item> distinct;
  u64 total_len = 0;
  u32 universe = 0;
  for (const Transaction& t : tx_) {
    total_len += t.size();
    s.max_length = std::max<double>(s.max_length, static_cast<double>(t.size()));
    for (Item i : t) {
      distinct.insert(i);
      universe = std::max(universe, i + 1);
    }
  }
  s.num_items = static_cast<u32>(distinct.size());
  s.item_universe = universe;
  if (!tx_.empty()) {
    s.avg_length = static_cast<double>(total_len) /
                   static_cast<double>(tx_.size());
  }
  if (s.num_items > 0) s.density = s.avg_length / s.num_items;
  return s;
}

u64 TransactionDB::min_support_count(double min_support_frac) const {
  YAFIM_CHECK(min_support_frac > 0.0 && min_support_frac <= 1.0,
              "relative support must be in (0, 1]");
  const double raw = min_support_frac * static_cast<double>(tx_.size());
  u64 count = static_cast<u64>(std::ceil(raw - 1e-9));
  return std::max<u64>(count, 1);
}

u64 TransactionDB::support(const Itemset& s) const {
  u64 count = 0;
  for (const Transaction& t : tx_) {
    if (contains_all(t, s)) ++count;
  }
  return count;
}

TransactionDB TransactionDB::replicate(u32 times) const {
  YAFIM_CHECK(times >= 1, "replicate() needs times >= 1");
  std::vector<Transaction> out;
  out.reserve(tx_.size() * times);
  for (u32 r = 0; r < times; ++r) {
    out.insert(out.end(), tx_.begin(), tx_.end());
  }
  return TransactionDB(std::move(out));
}

std::vector<u8> TransactionDB::serialize() const {
  ByteWriter w;
  w.write_u64(tx_.size());
  for (const Transaction& t : tx_) w.write_u32_vec(t);
  return w.take();
}

TransactionDB TransactionDB::deserialize(std::span<const u8> bytes) {
  ByteReader r(bytes);
  const u64 n = r.read_u64();
  std::vector<Transaction> tx;
  tx.reserve(n);
  for (u64 i = 0; i < n; ++i) tx.push_back(r.read_u32_vec());
  YAFIM_CHECK(r.done(), "trailing bytes after TransactionDB payload");
  return TransactionDB(std::move(tx));
}

std::string TransactionDB::to_text() const {
  std::ostringstream out;
  for (const Transaction& t : tx_) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i) out << ' ';
      out << t[i];
    }
    out << '\n';
  }
  return out.str();
}

TransactionDB TransactionDB::from_text(const std::string& text) {
  std::vector<Transaction> tx;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    Transaction t;
    std::istringstream fields(line);
    u64 item;
    while (fields >> item) t.push_back(static_cast<Item>(item));
    canonicalize(t);
    tx.push_back(std::move(t));
  }
  return TransactionDB(std::move(tx));
}

}  // namespace yafim::fim
