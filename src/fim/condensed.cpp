#include "fim/condensed.h"

namespace yafim::fim {

namespace {

/// Visit every (k-subset, k+1-superset) support pair: for each frequent
/// (k+1)-itemset, call fn(subset_support_entry, superset_support) for each
/// of its k-subsets that is frequent.
template <typename Fn>
void for_each_cover_edge(const FrequentItemsets& all, Fn&& fn) {
  for (u32 k = 1; k < all.max_k(); ++k) {
    for (const auto& [superset, superset_support] : all.level(k + 1)) {
      Itemset subset(superset.size() - 1);
      for (size_t skip = 0; skip < superset.size(); ++skip) {
        size_t w = 0;
        for (size_t i = 0; i < superset.size(); ++i) {
          if (i != skip) subset[w++] = superset[i];
        }
        fn(subset, superset_support);
      }
    }
  }
}

}  // namespace

FrequentItemsets closed_itemsets(const FrequentItemsets& all) {
  // An itemset is closed unless some immediate frequent superset matches
  // its support. (Checking immediate supersets suffices: supports are
  // antitone, so a distant superset with equal support forces equality all
  // the way down the chain.)
  SupportMap not_closed;
  for_each_cover_edge(all, [&](const Itemset& subset, u64 superset_support) {
    if (all.support_of(subset) == superset_support) {
      not_closed.emplace(subset, superset_support);
    }
  });

  FrequentItemsets out(all.min_support_count(), all.num_transactions());
  for (const auto& [itemset, support] : all.sorted()) {
    if (!not_closed.count(itemset)) out.add(itemset, support);
  }
  return out;
}

FrequentItemsets maximal_itemsets(const FrequentItemsets& all) {
  SupportMap has_frequent_superset;
  for_each_cover_edge(all, [&](const Itemset& subset, u64 /*unused*/) {
    has_frequent_superset.emplace(subset, 1);
  });

  FrequentItemsets out(all.min_support_count(), all.num_transactions());
  for (const auto& [itemset, support] : all.sorted()) {
    if (!has_frequent_superset.count(itemset)) out.add(itemset, support);
  }
  return out;
}

}  // namespace yafim::fim
