#include "engine/fault.h"

#include "obs/trace.h"

namespace yafim::engine {

void FaultInjector::register_holder(CacheHolder* holder) {
  std::lock_guard<std::mutex> lock(mutex_);
  holders_[holder->holder_id()] = holder;
}

void FaultInjector::unregister_holder(CacheHolder* holder) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = holders_.find(holder->holder_id());
  if (it != holders_.end() && it->second == holder) holders_.erase(it);
}

bool FaultInjector::fail_partition(u32 rdd_id, u32 partition) {
  CacheHolder* holder = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = holders_.find(rdd_id);
    if (it == holders_.end()) return false;
    holder = it->second;
  }
  const bool dropped = holder->drop_cached(partition);
  if (dropped) {
    obs::count(obs::CounterId::kFaultPartitionsDropped);
    obs::instant("fault", "fail_partition",
                 {{"rdd", rdd_id}, {"partition", partition}});
  }
  return dropped;
}

u64 FaultInjector::kill_executor(u32 node) {
  YAFIM_CHECK(node < nodes_, "no such node");
  std::vector<CacheHolder*> holders;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    holders.reserve(holders_.size());
    for (auto& [id, holder] : holders_) holders.push_back(holder);
  }
  u64 lost = 0;
  for (CacheHolder* holder : holders) {
    for (u32 p = node; p < holder->holder_partitions(); p += nodes_) {
      if (holder->drop_cached(p)) ++lost;
    }
  }
  obs::count(obs::CounterId::kFaultPartitionsDropped, lost);
  obs::instant("fault", "kill_executor",
               {{"node", node}, {"partitions_lost", lost}});
  return lost;
}

}  // namespace yafim::engine
