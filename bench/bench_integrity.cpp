// Microbenchmarks (google-benchmark) for the data-integrity layer: what
// does per-block checksum verification cost on the clean path?
//
// Two views:
//   * BM_SimFSRead{Verified,Unverified}: the raw read path. XXH64 runs at
//     multiple GB/s but a SimFS read is little more than a memcpy, so the
//     relative overhead here is the worst case.
//   * BM_YafimMine{Verified,Unverified}: the acceptance view -- a whole
//     mining run, where verification amortizes over real work and the
//     clean-path overhead must stay within ~5% of the no-integrity
//     baseline.
// Plus BM_SnapshotEncode/Decode for the checkpoint codec.
#include <benchmark/benchmark.h>

#include "datagen/benchmarks.h"
#include "fim/checkpoint.h"
#include "fim/yafim.h"
#include "simfs/simfs.h"
#include "util/log.h"

namespace {

using namespace yafim;

std::vector<u8> payload_bytes(size_t n) {
  std::vector<u8> data(n);
  for (size_t i = 0; i < n; ++i) data[i] = static_cast<u8>(i * 131 + 7);
  return data;
}

void bench_read(benchmark::State& state, bool verify) {
  simfs::SimFS fs(sim::ClusterConfig::paper(), sim::CorruptionProfile{});
  fs.set_verify_checksums(verify);
  fs.write("f", payload_bytes(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.read("f"));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

void BM_SimFSReadVerified(benchmark::State& state) {
  bench_read(state, true);
}
BENCHMARK(BM_SimFSReadVerified)->Arg(1 << 20)->Arg(16 << 20);

void BM_SimFSReadUnverified(benchmark::State& state) {
  bench_read(state, false);
}
BENCHMARK(BM_SimFSReadUnverified)->Arg(1 << 20)->Arg(16 << 20);

void bench_mine(benchmark::State& state, bool verify) {
  set_log_level(LogLevel::kWarn);
  const auto bench = datagen::make_mushroom(/*scale=*/0.2);
  fim::YafimOptions opt;
  opt.min_support = bench.paper_min_support;
  for (auto _ : state) {
    engine::Context::Options copts;
    copts.fault = engine::FaultProfile{};
    engine::Context ctx(copts);
    simfs::SimFS fs(ctx.cluster(), sim::CorruptionProfile{});
    fs.set_verify_checksums(verify);
    auto run = fim::yafim_mine(ctx, fs, bench.db, opt);
    benchmark::DoNotOptimize(run.itemsets.total());
  }
}

void BM_YafimMineVerified(benchmark::State& state) {
  bench_mine(state, true);
}
BENCHMARK(BM_YafimMineVerified)->Unit(benchmark::kMillisecond);

void BM_YafimMineUnverified(benchmark::State& state) {
  bench_mine(state, false);
}
BENCHMARK(BM_YafimMineUnverified)->Unit(benchmark::kMillisecond);

fim::CheckpointState snapshot_state(u32 itemsets) {
  fim::CheckpointState state;
  state.fingerprint = 42;
  state.pass = 3;
  state.num_transactions = 100000;
  state.min_support_count = 500;
  state.itemsets = fim::FrequentItemsets(500, 100000);
  for (u32 i = 0; i < itemsets; ++i) {
    state.itemsets.add({i, i + 1, i + 2}, 500 + i);
  }
  state.frontier = {{1, 2, 3}};
  state.passes = {fim::PassStats{1, 100, 50, 1.0},
                  fim::PassStats{2, 80, 40, 2.0},
                  fim::PassStats{3, 60, 30, 3.0}};
  return state;
}

void BM_SnapshotEncode(benchmark::State& state) {
  const auto snap = snapshot_state(static_cast<u32>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fim::encode_snapshot(snap));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SnapshotEncode)->Arg(1000)->Arg(10000);

void BM_SnapshotDecode(benchmark::State& state) {
  const auto snap = snapshot_state(static_cast<u32>(state.range(0)));
  const auto bytes = fim::encode_snapshot(snap);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fim::decode_snapshot(bytes, snap.fingerprint));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SnapshotDecode)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
