// Core frequent-itemset-mining value types.
//
// Following the paper's formulation: I = {i1..in} is the item universe, a
// transaction T = (tid, X) has X ⊆ I, and sup(Y) = |{tid : Y ⊆ X}|.
// Items are dense u32 ids; itemsets and transactions are canonically sorted,
// duplicate-free vectors, which makes subset tests a linear merge and
// lexicographic order the natural candidate-generation order.
#pragma once

#include <string>
#include <vector>

#include "util/common.h"

namespace yafim::fim {

using Item = u32;
using Itemset = std::vector<Item>;
using Transaction = std::vector<Item>;

/// True when `v` is sorted ascending with no duplicates (canonical form).
bool is_canonical(const Itemset& v);

/// Sort + dedupe into canonical form.
void canonicalize(Itemset& v);

/// Subset test by linear merge; both arguments must be canonical.
bool contains_all(const Transaction& t, const Itemset& s);

/// Lexicographic comparison (operator< on vectors does this; named for
/// readability at call sites).
bool lex_less(const Itemset& a, const Itemset& b);

/// "{3, 17, 42}" -- for logs, examples, and test failure messages.
std::string to_string(const Itemset& s);

/// Deterministic hash for use as an unordered_map key and as the shuffle
/// partitioner (must be stable across runs -- do NOT replace with
/// std::hash, which libstdc++ does not guarantee stable for this purpose).
struct ItemsetHash {
  size_t operator()(const Itemset& s) const;
};

struct ItemsetEq {
  bool operator()(const Itemset& a, const Itemset& b) const { return a == b; }
};

}  // namespace yafim::fim
