# Empty compiler generated dependencies file for test_condensed.
# This may be replaced when dependencies are built.
